// Package pgo is a Go reproduction of "P: Safe Asynchronous Event-Driven
// Programming" (PLDI 2013): the P domain-specific language for asynchronous
// state machines, its type system with ghost erasure, its operational
// semantics, a concurrent execution runtime, and the systematic-testing
// tools (depth-bounded and delay-bounded exploration, plus the §3.2
// liveness checks).
//
// The root package only carries documentation; the implementation lives in
// the internal packages:
//
//	internal/lexer, parser, ast, types   P frontend (§3 syntax, §3.3 types)
//	internal/ir                          lowered machine tables + erasure
//	internal/core                        operational semantics (Figures 4–6)
//	internal/check                       systematic testing (§5)
//	internal/live                        liveness checks (§3.2)
//	internal/runtime                     concurrent execution runtime (§4)
//	internal/codegen                     Go code generator (§4)
//	internal/psamples                    benchmark P programs
//
// Command-line tools are under cmd/ (pc, pverify, prun, pfmt) and runnable
// examples under examples/. The benchmark harness regenerating the paper's
// tables and figures is bench_test.go / experiments_test.go at the module
// root; see EXPERIMENTS.md for results.
package pgo

// Sharded key-value store with rebalancing: a router owns the key→shard
// map and forwards client operations; a Rebalance migrates a key to the
// other shard while the ghost session's own traffic is in flight. The
// session asserts read-your-writes. The example verifies the correct
// router (which defers client traffic during a migration), shows the
// seeded ownership-flip bug being caught, and demonstrates the protocol's
// drop-sensitivity: one lost message turns a safe store into a stale read.
package main

import (
	"fmt"
	"log"

	"pgo/internal/check"
	"pgo/internal/compile"
	"pgo/internal/psamples"
)

func main() {
	fmt.Println("Sharded KV: router + 2 shards, rebalancing races a read-your-writes session")
	fmt.Println()
	prog, diags, err := compile.Source("shardkv", psamples.ShardKV())
	if err != nil {
		log.Fatalf("compile: %v\n%s", err, diags.String())
	}
	res, err := check.Explore(prog, check.Options{
		Mode: check.DelayBounded, Bound: 3, MaxStates: 2_000_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	if res.Errored() {
		log.Fatalf("the correct router must verify: %v", res.FirstViolation().Err)
	}
	fmt.Printf("  fault-free, bound 3: %d states, read-your-writes holds\n", res.Stats.DistinctStates)

	fmt.Println()
	fmt.Println("seeded bug (ownership flipped before the handoff lands):")
	bug, diags, err := compile.Source("shardkv-buggy", psamples.ShardKVBuggy())
	if err != nil {
		log.Fatalf("compile: %v\n%s", err, diags.String())
	}
	res, err = check.Explore(bug, check.Options{
		Mode: check.DelayBounded, Bound: 2, StopAtFirstError: true, MaxStates: 2_000_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Errored() {
		log.Fatal("seeded bug not found within delay bound 2")
	}
	v := res.FirstViolation()
	fmt.Printf("  found: %v (schedule length %d)\n", v.Err.Kind, len(v.Trace))

	fmt.Println()
	fmt.Println("drop-sensitivity (the corpus chaos showcase): the CORRECT store breaks")
	fmt.Println("when one message is dropped — a lost Put leaves a stale value behind:")
	res, err = check.Explore(prog, check.Options{
		Mode: check.DelayBounded, Bound: 2,
		Faults: 1, FaultKinds: check.DropFaults,
		StopAtFirstError: true, MaxStates: 2_000_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Errored() {
		log.Fatal("one drop fault must break read-your-writes")
	}
	v = res.FirstViolation()
	fmt.Printf("  one drop fault: %v (schedule length %d)\n", v.Err.Kind, len(v.Trace))
	fmt.Println()
	fmt.Println("serve the store over HTTP and load it with:")
	fmt.Println("  go run ./cmd/pserve sample:shardkv &")
	fmt.Println("  go run ./cmd/pload -scenario shardkv -smoke")
}

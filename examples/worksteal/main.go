// Work-stealing scheduler: three symmetric workers drain local task queues
// and steal from peers when idle; a ghost monitor asserts task conservation
// (no task is completed twice). The example verifies the correct scheduler,
// then shows why the buggy variant needs the LIVENESS checker: its hot
// polling idle loop completes every safety check but can spin forever
// without the system making progress — a defect no assertion can express.
package main

import (
	"fmt"
	"log"

	"pgo/internal/check"
	"pgo/internal/compile"
	"pgo/internal/live"
	"pgo/internal/psamples"
)

func main() {
	fmt.Println("Work stealing: 3 symmetric workers, task-conservation monitor")
	fmt.Println()
	prog, diags, err := compile.Source("worksteal", psamples.WorkSteal())
	if err != nil {
		log.Fatalf("compile: %v\n%s", err, diags.String())
	}
	res, err := check.Explore(prog, check.Options{
		Mode: check.DelayBounded, Bound: 3, MaxStates: 2_000_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	if res.Errored() {
		log.Fatalf("the correct scheduler must verify: %v", res.FirstViolation().Err)
	}
	fmt.Printf("  fault-free, bound 3: %d states, every task completed exactly once\n",
		res.Stats.DistinctStates)

	fmt.Println()
	fmt.Println("seeded bug (hot polling idle loop): safety-clean, liveness-broken")
	bug, diags, err := compile.Source("worksteal-buggy", psamples.WorkStealBuggy())
	if err != nil {
		log.Fatalf("compile: %v\n%s", err, diags.String())
	}
	bres, err := check.Explore(bug, check.Options{
		Mode: check.DelayBounded, Bound: 2, CollectGraph: true, MaxStates: 2_000_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	if bres.Errored() {
		log.Fatalf("the hot-poll bug must pass every safety check, got %v",
			bres.FirstViolation().Err)
	}
	fmt.Printf("  safety: clean across %d states — no assertion can see the defect\n",
		bres.Stats.DistinctStates)
	violations := live.Check(bug, bres.Graph, live.Options{})
	if len(violations) == 0 {
		log.Fatal("the liveness checker must find the hot-poll livelock")
	}
	fmt.Printf("  liveness: %d violation(s); the idle worker can spin on Poll forever\n",
		len(violations))
	fmt.Println()
	fmt.Println("reproduce from the CLI with:")
	fmt.Println("  go run ./cmd/pverify sample:worksteal-buggy            # safe")
	fmt.Println("  go run ./cmd/pverify -liveness sample:worksteal-buggy  # livelock")
}

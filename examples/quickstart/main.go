// Quickstart: the full P workflow on the ping-pong program — compile,
// verify by systematic testing, erase ghosts, and execute on the concurrent
// runtime.
package main

import (
	"fmt"
	"log"
	"time"

	"pgo/internal/check"
	"pgo/internal/compile"
	"pgo/internal/ir"
	"pgo/internal/psamples"
	prt "pgo/internal/runtime"
)

func main() {
	// 1. Compile: parse, type-check (including ghost-erasure legality),
	//    and lower to state-machine tables.
	prog, diags, err := compile.Source("pingpong", psamples.PingPong)
	if err != nil {
		log.Fatalf("compile: %v\n%s", err, diags.String())
	}
	fmt.Printf("compiled: %d events, %d machines\n", len(prog.Events), len(prog.Machines))

	// 2. Verify: explore every schedule within a delay budget, checking for
	//    unhandled events, assertion failures, and sends to dead machines.
	res, err := check.Explore(prog, check.Options{Mode: check.DelayBounded, Bound: 4})
	if err != nil {
		log.Fatalf("verify: %v", err)
	}
	if res.Errored() {
		log.Fatalf("verification found a bug: %v", res.FirstViolation())
	}
	fmt.Printf("verified: %d distinct states, %d transitions, no violations\n",
		res.Stats.DistinctStates, res.Stats.Transitions)

	// 3. Erase ghosts (ping-pong has none, but the pass is the compile
	//    pipeline's last step) and execute on the concurrent runtime:
	//    one goroutine per machine, run-to-completion handlers.
	erased := ir.Erase(prog)
	rt, err := prt.New(erased, prt.Options{})
	if err != nil {
		log.Fatalf("runtime: %v", err)
	}
	defer rt.Stop()
	if _, err := rt.CreateMachine("Pinger", nil, nil); err != nil {
		log.Fatalf("create: %v", err)
	}
	if !rt.Quiesce(5 * time.Second) {
		log.Fatal("run did not quiesce")
	}
	if errs := rt.Errors(); len(errs) > 0 {
		log.Fatalf("runtime errors: %v", errs)
	}
	fmt.Println("executed: 5 ping/pong rounds, both machines exited cleanly")
}

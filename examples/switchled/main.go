// The §4.1 switch-and-LED driver executed against simulated hardware: the
// erased P driver runs on the concurrent runtime with foreign functions
// bound to a software LED, while this program plays OS and switch. It then
// reports the runtime's delivery metrics — the executable counterpart of
// the E1 throughput experiment.
package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"pgo/internal/compile"
	"pgo/internal/core"
	"pgo/internal/psamples"
	prt "pgo/internal/runtime"
)

// led is the simulated hardware: it acknowledges commands asynchronously,
// like a real device raising a completion interrupt.
type led struct {
	lit     atomic.Bool
	changes atomic.Int64
}

func main() {
	prog, diags, err := compile.Erased("switchled", psamples.SwitchLED)
	if err != nil {
		log.Fatalf("compile: %v\n%s", err, diags.String())
	}

	hw := &led{}
	var rt *prt.Runtime
	var driver core.MachineID

	foreign := core.ForeignMap{
		"Driver.ledOn": func(ctx any, args []core.Value) (core.Value, error) {
			hw.lit.Store(true)
			hw.changes.Add(1)
			go rt.Send(driver, "LedOnAck", core.Null) // async completion
			return core.Null, nil
		},
		"Driver.ledOff": func(ctx any, args []core.Value) (core.Value, error) {
			hw.lit.Store(false)
			hw.changes.Add(1)
			go rt.Send(driver, "LedOffAck", core.Null)
			return core.Null, nil
		},
		"Driver.ledReset": func(ctx any, args []core.Value) (core.Value, error) {
			hw.lit.Store(false)
			return core.Null, nil
		},
		"Driver.notifyStarted": func(ctx any, args []core.Value) (core.Value, error) {
			fmt.Println("  driver reports: started")
			return core.Null, nil
		},
		"Driver.notifyStopped": func(ctx any, args []core.Value) (core.Value, error) {
			fmt.Println("  driver reports: stopped")
			return core.Null, nil
		},
	}

	rt, err = prt.New(prog, prt.Options{
		Foreign: foreign,
		OnError: func(e *core.Err) { log.Fatalf("machine error: %v", e) },
	})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Stop()

	driver, err = rt.CreateMachine("Driver", nil, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("switch-and-LED driver on simulated hardware:")
	rt.Send(driver, "StartDevice", core.Null)
	quiesce(rt)

	// Toggle the switch a few times, sleep/resume in between.
	script := []string{
		"SwitchOn", "SwitchOff", "SwitchOn",
		"SleepDevice", "ResumeDevice",
		"SwitchOff", "StopDevice",
	}
	for _, ev := range script {
		if err := rt.Send(driver, ev, core.Null); err != nil {
			log.Fatal(err)
		}
		quiesce(rt)
		st, _ := rt.StateName(driver)
		fmt.Printf("  %-13s -> driver %-10s led lit: %v\n", ev, st, hw.lit.Load())
	}

	m := rt.Metrics()
	fmt.Printf("\nmetrics: %d events delivered, %d deduplicated, %d processed, %d LED changes\n",
		m.EventsDelivered, m.EventsDeduped, m.EventsProcessed, hw.changes.Load())
}

func quiesce(rt *prt.Runtime) {
	if !rt.Quiesce(2 * time.Second) {
		log.Fatal("runtime did not quiesce")
	}
}

// German's cache-coherence protocol (the paper's third Figure-7 benchmark)
// at several system sizes: verify the directory protocol with 1..3 caches,
// show the state-space growth, and demonstrate that the seeded coherence
// bug (a sharer slot skipped during invalidation) is caught within a small
// delay budget while the correct protocol passes.
package main

import (
	"fmt"
	"log"

	"pgo/internal/check"
	"pgo/internal/compile"
	"pgo/internal/psamples"
)

func main() {
	fmt.Println("German's protocol: directory + N caches, ghost stimulus per cache")
	fmt.Println()
	fmt.Println("  N  bound   states  transitions  verdict")
	for n := 1; n <= 3; n++ {
		bound := 2
		prog, diags, err := compile.Source(fmt.Sprintf("german-%d", n), psamples.German(n))
		if err != nil {
			log.Fatalf("compile: %v\n%s", err, diags.String())
		}
		res, err := check.Explore(prog, check.Options{
			Mode: check.DelayBounded, Bound: bound, MaxStates: 2_000_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		verdict := "safe"
		if res.Errored() {
			verdict = "VIOLATION: " + res.FirstViolation().Err.Error()
		}
		fmt.Printf("  %d  %5d  %7d  %11d  %s\n", n, bound, res.Stats.DistinctStates, res.Stats.Transitions, verdict)
		if res.Errored() {
			log.Fatal("correct protocol must verify")
		}
	}

	fmt.Println()
	fmt.Println("seeded bug (skipped sharer slot during exclusive invalidation):")
	prog, diags, err := compile.Source("german-buggy", psamples.GermanBuggy(3))
	if err != nil {
		log.Fatalf("compile: %v\n%s", err, diags.String())
	}
	for d := 0; d <= 3; d++ {
		res, err := check.Explore(prog, check.Options{
			Mode: check.DelayBounded, Bound: d, StopAtFirstError: true, MaxStates: 2_000_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		if res.Errored() {
			v := res.FirstViolation()
			fmt.Printf("  found at delay bound %d: %v (schedule length %d)\n", d, v.Err.Kind, len(v.Trace))
			return
		}
		fmt.Printf("  delay bound %d: not yet\n", d)
	}
	log.Fatal("seeded bug not found within delay bound 3")
}

// The paper's §2 elevator, end to end:
//
//  1. verify the closed system (elevator + ghost User/Door/Timer) with the
//     delay-bounded scheduler, demonstrating that the correct design is
//     safe while the buggy variant (missing CloseDoor deferral) is caught
//     within a small delay budget;
//  2. erase the ghosts and run the bare elevator on the concurrent runtime,
//     with this program playing the role of the environment — exactly the
//     split the paper prescribes between verification and deployment.
package main

import (
	"fmt"
	"log"
	"time"

	"pgo/internal/check"
	"pgo/internal/compile"
	"pgo/internal/core"
	"pgo/internal/psamples"
	prt "pgo/internal/runtime"
)

func main() {
	verifyGood()
	verifyBuggy()
	execute()
}

func verifyGood() {
	prog, diags, err := compile.Source("elevator", psamples.Elevator)
	if err != nil {
		log.Fatalf("compile: %v\n%s", err, diags.String())
	}
	for d := 0; d <= 3; d++ {
		res, err := check.Explore(prog, check.Options{Mode: check.DelayBounded, Bound: d})
		if err != nil {
			log.Fatal(err)
		}
		if res.Errored() {
			log.Fatalf("elevator should be safe at delay %d: %v", d, res.FirstViolation())
		}
		fmt.Printf("elevator       d=%d: %6d states explored, safe\n", d, res.Stats.DistinctStates)
	}
}

func verifyBuggy() {
	prog, diags, err := compile.Source("elevator-buggy", psamples.ElevatorBuggy)
	if err != nil {
		log.Fatalf("compile: %v\n%s", err, diags.String())
	}
	for d := 0; d <= 3; d++ {
		res, err := check.Explore(prog, check.Options{
			Mode: check.DelayBounded, Bound: d, StopAtFirstError: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		if res.Errored() {
			v := res.FirstViolation()
			fmt.Printf("elevator-buggy d=%d: found %q after a %d-step schedule\n",
				d, v.Err.Kind, len(v.Trace))
			return
		}
		fmt.Printf("elevator-buggy d=%d: no violation yet\n", d)
	}
	log.Fatal("seeded bug not found within delay bound 3")
}

// execute drives the erased elevator the way the paper's interface code
// translates OS callbacks into events: this function is the "environment".
func execute() {
	prog, diags, err := compile.Erased("elevator", psamples.Elevator)
	if err != nil {
		log.Fatalf("compile: %v\n%s", err, diags.String())
	}
	rt, err := prt.New(prog, prt.Options{
		OnError: func(e *core.Err) { log.Fatalf("machine error: %v", e) },
	})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Stop()

	id, err := rt.CreateMachine("Elevator", nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	script := []string{
		"OpenDoor",   // user presses open
		"DoorOpened", // door hardware reports open
		"TimerFired", // door-open timer elapses
		"CloseDoor",  // user presses close -> stop timer subroutine
		"TimerStopped",
		"DoorClosed", // door hardware reports closed
	}
	if !rt.Quiesce(time.Second) {
		log.Fatal("no quiescence after creation")
	}
	st, _ := rt.StateName(id)
	fmt.Printf("\nexecution:   created        -> %s\n", st)
	for _, ev := range script {
		if err := rt.Send(id, ev, core.Null); err != nil {
			log.Fatalf("send %s: %v", ev, err)
		}
		if !rt.Quiesce(time.Second) {
			log.Fatalf("no quiescence after %s", ev)
		}
		st, _ := rt.StateName(id)
		fmt.Printf("             %-14s -> %s\n", ev, st)
	}
}

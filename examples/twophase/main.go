// Two-phase commit: a coordinator gathers votes from N participants and
// decides commit or abort; a ghost monitor asserts atomicity (no mixed
// commit/abort outcome). The example verifies the protocol for 2 and 3
// participants, then shows the seeded off-by-one quorum bug — the
// coordinator committing on n-1 yes votes — being caught with a replayable
// counterexample.
package main

import (
	"fmt"
	"log"

	"pgo/internal/check"
	"pgo/internal/compile"
	"pgo/internal/psamples"
)

func main() {
	fmt.Println("Two-phase commit: coordinator + N participants, ghost client, atomicity monitor")
	fmt.Println()
	fmt.Println("   N  bound   states  verdict")
	for n := 2; n <= 3; n++ {
		prog, diags, err := compile.Source(fmt.Sprintf("twophase-%d", n), psamples.TwoPhase(n))
		if err != nil {
			log.Fatalf("compile: %v\n%s", err, diags.String())
		}
		res, err := check.Explore(prog, check.Options{
			Mode: check.DelayBounded, Bound: 2, MaxStates: 2_000_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		verdict := "atomic on every schedule (all commit or all abort)"
		if res.Errored() {
			verdict = "VIOLATION: " + res.FirstViolation().Err.Error()
		}
		fmt.Printf("  %2d  %5d  %7d  %s\n", n, 2, res.Stats.DistinctStates, verdict)
		if res.Errored() {
			log.Fatal("the correct protocol must verify")
		}
	}

	fmt.Println()
	fmt.Println("seeded bug (commit quorum off by one):")
	prog, diags, err := compile.Source("twophase-buggy", psamples.TwoPhaseBuggy(2))
	if err != nil {
		log.Fatalf("compile: %v\n%s", err, diags.String())
	}
	for d := 0; d <= 2; d++ {
		res, err := check.Explore(prog, check.Options{
			Mode: check.DelayBounded, Bound: d, StopAtFirstError: true, MaxStates: 2_000_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		if res.Errored() {
			v := res.FirstViolation()
			fmt.Printf("  found at delay bound %d: %v (schedule length %d)\n",
				d, v.Err.Kind, len(v.Trace))
			fmt.Println()
			fmt.Println("note: 2PC blocks — but never splits — when a message is lost:")
			fmt.Println("  go run ./cmd/pverify -chaos -fault-kinds drop sample:twophase")
			return
		}
	}
	log.Fatal("seeded bug not found within delay bound 2")
}

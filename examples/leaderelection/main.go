// Chang–Roberts leader election on a token ring, demonstrating dynamic
// machine creation (the ring builds itself: each node creates its
// successor) and payload-carrying events. The example verifies rings of
// several sizes, shows the seeded comparison-inversion bug being caught,
// and prints the ring's state diagram location for pdot users.
package main

import (
	"fmt"
	"log"

	"pgo/internal/check"
	"pgo/internal/compile"
	"pgo/internal/psamples"
)

func main() {
	fmt.Println("Chang-Roberts leader election: ring of N real nodes, ghost referee")
	fmt.Println()
	fmt.Println("   N  bound   states  verdict")
	for n := 2; n <= 5; n++ {
		prog, diags, err := compile.Source(fmt.Sprintf("ring-%d", n), psamples.Ring(n))
		if err != nil {
			log.Fatalf("compile: %v\n%s", err, diags.String())
		}
		res, err := check.Explore(prog, check.Options{
			Mode: check.DelayBounded, Bound: 2, MaxStates: 2_000_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		verdict := "unique max-id leader elected on every schedule"
		if res.Errored() {
			verdict = "VIOLATION: " + res.FirstViolation().Err.Error()
		}
		fmt.Printf("  %2d  %5d  %7d  %s\n", n, 2, res.Stats.DistinctStates, verdict)
		if res.Errored() {
			log.Fatal("the correct protocol must verify")
		}
	}

	fmt.Println()
	fmt.Println("seeded bug (inverted forwarding comparison):")
	prog, diags, err := compile.Source("ring-buggy", psamples.RingBuggy(3))
	if err != nil {
		log.Fatalf("compile: %v\n%s", err, diags.String())
	}
	for d := 0; d <= 2; d++ {
		res, err := check.Explore(prog, check.Options{
			Mode: check.DelayBounded, Bound: d, StopAtFirstError: true, MaxStates: 2_000_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		if res.Errored() {
			v := res.FirstViolation()
			fmt.Printf("  found at delay bound %d: %v (schedule length %d)\n",
				d, v.Err.Kind, len(v.Trace))
			fmt.Println()
			fmt.Println("render the node state machine with:")
			fmt.Println("  go run ./cmd/pdot -machine Node sample:ring | dot -Tsvg > ring.svg")
			return
		}
	}
	log.Fatal("seeded bug not found within delay bound 2")
}

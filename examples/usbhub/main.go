// The §6 case study, reproduced on synthetic machines: the four USB hub
// stack state machines (hub HSM, port PSM 3.0 / PSM 2.0, device DSM) sized
// to the paper's Figure 8 profile. For each machine this example prints the
// static P-state / P-transition counts next to the paper's numbers, runs a
// bounded verification against the ghost OS/hardware environment, and
// finally executes the erased hub machine on the concurrent runtime.
package main

import (
	"fmt"
	"log"
	"time"

	"pgo/internal/check"
	"pgo/internal/compile"
	"pgo/internal/core"
	"pgo/internal/ir"
	"pgo/internal/psamples"
	prt "pgo/internal/runtime"
)

type row struct {
	name        string
	machine     string
	source      string
	paperStates int
	paperTrans  int
}

func main() {
	rows := []row{
		{"HSM", "HSM", psamples.USBHub, 196, 361},
		{"PSM 3.0", "PSM30", psamples.USBPort30, 295, 752},
		{"PSM 2.0", "PSM20", psamples.USBPort20, 457, 1386},
		{"DSM", "DSM", psamples.USBDevice, 1919, 4238},
	}

	fmt.Println("machine   P states (paper)   P transitions (paper)   explored states   verdict")
	for _, r := range rows {
		prog, diags, err := compile.Source(r.name, r.source)
		if err != nil {
			log.Fatalf("%s: compile: %v\n%s", r.name, err, diags.String())
		}
		m, ok := prog.MachineByName(r.machine)
		if !ok {
			log.Fatalf("%s: machine %s missing", r.name, r.machine)
		}
		res, err := check.Explore(prog, check.Options{
			Mode: check.DelayBounded, Bound: 1, MaxStates: 200_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		verdict := "safe"
		if res.Errored() {
			verdict = "VIOLATION: " + res.FirstViolation().Err.Error()
		}
		if res.Stats.Truncated {
			verdict += " (truncated)"
		}
		fmt.Printf("%-8s  %6d (%6d)    %8d (%6d)      %12d   %s\n",
			r.name, m.CountPStates(), r.paperStates,
			m.CountPTransitions(), r.paperTrans,
			res.Stats.DistinctStates, verdict)
		if res.Errored() {
			log.Fatal("synthetic USB machine must verify")
		}
	}

	// Execute the erased hub: this process is the "interface code",
	// translating (simulated) OS requests into events and hardware phases
	// into Advance responses.
	fmt.Println()
	fmt.Println("executing erased HSM: operation Op1 through all phases")
	prog, diags, err := compile.Erased("usb-hsm", psamples.USBHub)
	if err != nil {
		log.Fatalf("compile: %v\n%s", err, diags.String())
	}
	rt, err := prt.New(prog, prt.Options{
		OnError: func(e *core.Err) { log.Fatalf("machine error: %v", e) },
	})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Stop()
	id, err := rt.CreateMachine("HSM", nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	if !rt.Quiesce(time.Second) {
		log.Fatal("no quiescence")
	}
	if err := rt.Send(id, "Op1", core.Null); err != nil {
		log.Fatal(err)
	}
	phases := 0
	for {
		if !rt.Quiesce(time.Second) {
			log.Fatal("no quiescence")
		}
		st, ok := rt.StateName(id)
		if !ok {
			log.Fatal("machine vanished")
		}
		if st == "Idle" && phases > 0 {
			break
		}
		// The machine sits in OpkPhasej waiting for hardware; advance it.
		if err := rt.Send(id, "Advance", core.Null); err != nil {
			log.Fatal(err)
		}
		phases++
	}
	fmt.Printf("  completed after %d hardware phases; machine back in Idle\n", phases)

	hsm, _ := prog.MachineByName("HSM")
	fmt.Printf("  (erased HSM still has %d states, %d transitions — only ghost traffic was removed)\n",
		countStates(hsm), countTrans(hsm))
}

func countStates(m *ir.Machine) int { return m.CountPStates() }
func countTrans(m *ir.Machine) int  { return m.CountPTransitions() }

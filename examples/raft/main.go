// Raft-style leader election: three servers time out, stand as candidates
// with a fresh term, request votes, and claim leadership on a majority; a
// ghost monitor asserts at most one leader per term. The example verifies
// the correct election across overlapping candidacies, then shows the
// seeded double-vote bug — a server granting two votes in one term — being
// caught with a replayable two-leaders counterexample.
package main

import (
	"fmt"
	"log"

	"pgo/internal/check"
	"pgo/internal/compile"
	"pgo/internal/psamples"
)

func main() {
	fmt.Println("Raft-style leader election: 3 servers, 2 terms, at-most-one-leader-per-term monitor")
	fmt.Println()
	prog, diags, err := compile.Source("raft", psamples.Raft())
	if err != nil {
		log.Fatalf("compile: %v\n%s", err, diags.String())
	}
	for d := 1; d <= 3; d++ {
		res, err := check.Explore(prog, check.Options{
			Mode: check.DelayBounded, Bound: d, MaxStates: 2_000_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		verdict := "at most one leader per term on every schedule"
		if res.Errored() {
			verdict = "VIOLATION: " + res.FirstViolation().Err.Error()
		}
		fmt.Printf("  bound %d  %7d states  %s\n", d, res.Stats.DistinctStates, verdict)
		if res.Errored() {
			log.Fatal("the correct protocol must verify")
		}
	}

	fmt.Println()
	fmt.Println("seeded bug (a server grants two votes in the same term):")
	prog, diags, err = compile.Source("raft-buggy", psamples.RaftBuggy())
	if err != nil {
		log.Fatalf("compile: %v\n%s", err, diags.String())
	}
	for d := 0; d <= 3; d++ {
		res, err := check.Explore(prog, check.Options{
			Mode: check.DelayBounded, Bound: d, StopAtFirstError: true, MaxStates: 2_000_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		if res.Errored() {
			v := res.FirstViolation()
			fmt.Printf("  found at delay bound %d: %v (schedule length %d)\n",
				d, v.Err.Kind, len(v.Trace))
			fmt.Println()
			fmt.Println("replay the two-leaders schedule with:")
			fmt.Println("  go run ./cmd/pverify -trace sample:raft-buggy")
			return
		}
	}
	log.Fatal("seeded bug not found within delay bound 3")
}

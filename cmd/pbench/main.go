// pbench runs the explorer benchmark corpus — the E2 (Fig 7) delay-bound
// sweeps, the E4 (Fig 8) USB state-machine searches, and the
// fingerprint/clone micro-benchmarks that dominate the explorer's inner
// loop — and emits a machine-readable JSON report (BENCH_explore.json).
// The committed report seeds the repo's perf trajectory: every PR that
// touches the hot path can regenerate it and show its delta.
//
// Usage:
//
//	pbench [-out BENCH_explore.json] [-benchtime 1s] [-iters N] [-filter regexp]
//	pbench -compare BENCH_explore.json [-regress 25]
//
// With -iters N each entry runs exactly N iterations (CI smoke uses
// -iters 1); otherwise entries iterate until -benchtime has elapsed.
// With -compare, the run is additionally diffed against a committed baseline
// report: a per-benchmark delta table goes to the GitHub job summary (when
// $GITHUB_STEP_SUMMARY is set) and the process exits nonzero if any gated
// explorer entry's states/sec fell more than -regress percent.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strings"
	"time"

	"pgo/internal/abstract"
	"pgo/internal/analysis"
	"pgo/internal/check"
	"pgo/internal/compile"
	"pgo/internal/core"
	"pgo/internal/ir"
	"pgo/internal/psamples"
)

// schemaVersion identifies the report layout. Bump on incompatible change.
const schemaVersion = "pbench/3"

// schemaDoc is the embedded header documenting every field of the report;
// it is emitted first so the committed JSON file is self-describing.
var schemaDoc = []string{
	"schema: report layout version (pbench/3: adds per-entry cpus/workers and the depth-mode POR twins POR/chaos-*, POR/live-*; pbench/2: explorer fields always present, zero for micros; adds SPILL entries and their store fields; ABS entries reuse the explorer fields for the coverability search)",
	"go, goos, goarch, cpus: toolchain and host the numbers were taken on",
	"generated: RFC3339 timestamp of the run",
	"entries[].name: unique benchmark id, experiment/sample/parameters",
	"entries[].experiment: E2 (Fig 7 delay sweep), E4 (Fig 8 USB), POR (reduction on/off twin; chaos-*/live-* samples run depth-bounded with faults / a liveness graph), SPILL (disk-backed visited store), ABS (counter-abstraction coverability; states = markings), FP (fingerprint micro), CLONE (global clone micro)",
	"entries[].sample: embedded P sample the entry compiles",
	"entries[].mode: exploration mode for explorer entries",
	"entries[].bound: delay or depth budget for explorer entries",
	"entries[].cpus: runtime.NumCPU() on the measuring host (explorer entries)",
	"entries[].workers: goroutines the search actually ran with, 1 for serial explorers (explorer entries)",
	"entries[].max_states: distinct-state cap for explorer entries (0 = none hit)",
	"entries[].iterations: measured iterations (ops for micros are batched; ns_per_op is per single op)",
	"entries[].ns_per_op: wall nanoseconds per operation",
	"entries[].allocs_per_op: heap allocations per operation",
	"entries[].bytes_per_op: heap bytes per operation",
	"entries[].states: distinct global states discovered (explorer entries)",
	"entries[].transitions: macro steps executed (explorer entries)",
	"entries[].states_per_sec: states / (ns_per_op * 1e-9) (explorer entries)",
	"entries[].por: partial-order reduction was enabled (POR experiment entries)",
	"entries[].reduced_states: search nodes expanded with a singleton ample set (POR entries)",
	"entries[].spilled_entries: visited-store entries spilled to chunk files (SPILL entries)",
	"entries[].chunks: chunk files written by the tiered visited store (SPILL entries)",
	"entries[].disk_bytes: total chunk-file bytes on disk (SPILL entries)",
}

type report struct {
	Schema    string   `json:"schema"`
	SchemaDoc []string `json:"schema_doc"`
	Go        string   `json:"go"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	CPUs      int      `json:"cpus"`
	Generated string   `json:"generated"`
	Entries   []entry  `json:"entries"`
}

// entry is one benchmark row. Every field is always emitted — no omitempty —
// so consumers (and the regression gate) can tell "measured as zero" from
// "absent" and diff rows across reports without guessing at defaults; micro
// entries carry zeros in the explorer fields.
type entry struct {
	Name           string  `json:"name"`
	Experiment     string  `json:"experiment"`
	Sample         string  `json:"sample"`
	Mode           string  `json:"mode"`
	Bound          int     `json:"bound"`
	CPUs           int     `json:"cpus"`
	Workers        int     `json:"workers"`
	MaxStates      int     `json:"max_states"`
	Iterations     int     `json:"iterations"`
	NsPerOp        int64   `json:"ns_per_op"`
	AllocsPerOp    int64   `json:"allocs_per_op"`
	BytesPerOp     int64   `json:"bytes_per_op"`
	States         int     `json:"states"`
	Transitions    int     `json:"transitions"`
	StatesPerSec   float64 `json:"states_per_sec"`
	POR            bool    `json:"por"`
	ReducedStates  int     `json:"reduced_states"`
	SpilledEntries int     `json:"spilled_entries"`
	Chunks         int     `json:"chunks"`
	DiskBytes      int64   `json:"disk_bytes"`
}

// measure runs f (which performs ops operations per call) until iters calls
// (when iters > 0) or benchtime has elapsed, and reports per-op wall time
// and allocation figures.
func measure(benchtime time.Duration, iters, ops int, f func()) (n int, nsPerOp, allocsPerOp, bytesPerOp int64) {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for {
		f()
		n++
		if iters > 0 {
			if n >= iters {
				break
			}
		} else if time.Since(start) >= benchtime {
			break
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	total := int64(n) * int64(ops)
	nsPerOp = elapsed.Nanoseconds() / total
	allocsPerOp = int64(m1.Mallocs-m0.Mallocs) / total
	bytesPerOp = int64(m1.TotalAlloc-m0.TotalAlloc) / total
	return n, nsPerOp, allocsPerOp, bytesPerOp
}

func compileOrDie(name, src string) *ir.Program {
	prog, diags, err := compile.Source(name, src)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pbench: compile %s: %v\n%s", name, err, diags.String())
		os.Exit(1)
	}
	return prog
}

// exploreEntry measures one exploration configuration. name is the full
// entry id; opts carries the exact search configuration (mode, budget,
// faults, graph collection, reduction) so one helper serves the delay
// sweeps and the depth-mode chaos/liveness twins alike.
func exploreEntry(benchtime time.Duration, iters int, name, experiment, sample string, prog *ir.Program, opts check.Options) entry {
	// Pinned so a future change to the default Progress throttle cannot
	// shift the committed numbers.
	opts.ProgressEvery = 4096
	var last *check.Result
	n, ns, allocs, bytes := measure(benchtime, iters, 1, func() {
		res, err := check.Explore(prog, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pbench: %s: %v\n", sample, err)
			os.Exit(1)
		}
		last = res
	})
	e := entry{
		Name:          name,
		Experiment:    experiment,
		Sample:        sample,
		Mode:          opts.Mode.String(),
		Bound:         opts.Bound,
		CPUs:          runtime.NumCPU(),
		Workers:       last.Stats.Workers,
		Iterations:    n,
		NsPerOp:       ns,
		AllocsPerOp:   allocs,
		BytesPerOp:    bytes,
		States:        last.Stats.DistinctStates,
		Transitions:   last.Stats.Transitions,
		POR:           opts.POR,
		ReducedStates: last.Stats.ReducedStates,
	}
	if last.Stats.Truncated {
		e.MaxStates = opts.MaxStates
	}
	if ns > 0 {
		e.StatesPerSec = float64(last.Stats.DistinctStates) / (float64(ns) * 1e-9)
	}
	return e
}

// spillEntry measures a disk-backed exploration: the tiered visited store
// runs with a per-shard memory cap far below the state count, so the search
// exercises the spill path — chunk writes, bloom-filtered disk lookups —
// end to end. Each iteration gets a fresh run directory (reusing one would
// let stale chunk entries dedup away the whole search).
func spillEntry(benchtime time.Duration, iters int, sample string, prog *ir.Program, bound, maxStates, shards, memPerShard int) entry {
	var last *check.Result
	n, ns, allocs, bytes := measure(benchtime, iters, 1, func() {
		dir, err := os.MkdirTemp("", "pbench-spill-")
		if err != nil {
			fmt.Fprintf(os.Stderr, "pbench: %v\n", err)
			os.Exit(1)
		}
		defer os.RemoveAll(dir)
		res, err := check.Explore(prog, check.Options{
			Mode: check.DelayBounded, Bound: bound, MaxStates: maxStates,
			StoreDir: dir, StoreShards: shards, StoreMemPerShard: memPerShard,
			ProgressEvery: 4096,
		})
		if err == nil && res.StoreErr != nil {
			err = res.StoreErr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "pbench: %s: %v\n", sample, err)
			os.Exit(1)
		}
		last = res
	})
	e := entry{
		Name:        fmt.Sprintf("SPILL/%s/d=%d/mem=%d", sample, bound, shards*memPerShard),
		Experiment:  "SPILL",
		Sample:      sample,
		Mode:        check.DelayBounded.String(),
		Bound:       bound,
		CPUs:        runtime.NumCPU(),
		Workers:     last.Stats.Workers,
		Iterations:  n,
		NsPerOp:     ns,
		AllocsPerOp: allocs,
		BytesPerOp:  bytes,
		States:      last.Stats.DistinctStates,
		Transitions: last.Stats.Transitions,
	}
	if last.Stats.Truncated {
		e.MaxStates = maxStates
	}
	if st := last.StoreStats; st != nil {
		e.SpilledEntries = st.SpilledEntries
		e.Chunks = st.Chunks
		e.DiskBytes = st.DiskBytes
	}
	if ns > 0 {
		e.StatesPerSec = float64(last.Stats.DistinctStates) / (float64(ns) * 1e-9)
	}
	return e
}

// absEntry measures the counter-abstraction coverability pass (internal/
// abstract) on one sample: full translation plus the Karp–Miller search.
// The explorer fields are reused — states is the marking count, reduced
// states the POR-reduced expansions — so the regression gate treats
// markings/sec like states/sec.
func absEntry(benchtime time.Duration, iters int, sample string, prog *ir.Program, maxMarkings int) entry {
	rep := analysis.Analyze(prog)
	var last *abstract.Result
	n, ns, allocs, bytes := measure(benchtime, iters, 1, func() {
		last = abstract.Analyze(prog, abstract.Options{Facts: rep, MaxMarkings: maxMarkings})
	})
	e := entry{
		Name:          fmt.Sprintf("ABS/%s", sample),
		Experiment:    "ABS",
		Sample:        sample,
		Mode:          "abstract",
		CPUs:          runtime.NumCPU(),
		Workers:       1,
		Iterations:    n,
		NsPerOp:       ns,
		AllocsPerOp:   allocs,
		BytesPerOp:    bytes,
		States:        last.Markings,
		ReducedStates: last.Reduced,
	}
	if last.Truncated {
		e.MaxStates = maxMarkings
	}
	if ns > 0 {
		e.StatesPerSec = float64(last.Markings) / (float64(ns) * 1e-9)
	}
	return e
}

// advance drives g a few macro steps so its configuration is nontrivial.
func advance(g *core.Global, steps int) {
	for i := 0; i < steps; i++ {
		for _, id := range g.LiveIDs() {
			if g.Enabled(id) {
				g.RunToSchedPoint(id, &core.FixedChoices{}, 0)
				break
			}
		}
	}
}

// fingerprintEntries measures the incremental fingerprint hot path on one
// sample: a single-machine mutation (a ⊕-dropped duplicate send)
// invalidates one per-Config digest, then Hash re-encodes that machine and
// re-combines — the exact cost the explorer pays per macro step.
func fingerprintEntries(benchtime time.Duration, iters int, sample string, prog *ir.Program, steps int) []entry {
	const batch = 1000
	g := core.NewGlobal(prog, nil)
	if _, err := g.CreateMain(); err != nil {
		fmt.Fprintf(os.Stderr, "pbench: %s: %v\n", sample, err)
		os.Exit(1)
	}
	advance(g, steps)
	id := g.LiveIDs()[0]
	if _, err := g.Send(id, 0, core.Null); err != nil { // prime the duplicate
		fmt.Fprintf(os.Stderr, "pbench: %s: %v\n", sample, err)
		os.Exit(1)
	}
	mk := func(kind string, f func()) entry {
		n, ns, allocs, bytes := measure(benchtime, iters, batch, f)
		return entry{
			Name:        fmt.Sprintf("FP/%s/%s", sample, kind),
			Experiment:  "FP",
			Sample:      sample,
			Iterations:  n * batch,
			NsPerOp:     ns,
			AllocsPerOp: allocs,
			BytesPerOp:  bytes,
		}
	}
	return []entry{
		mk("hash-fresh-1mut", func() {
			for i := 0; i < batch; i++ {
				g.Send(id, 0, core.Null)
				g.Hash()
			}
		}),
		mk("hash-cached", func() {
			for i := 0; i < batch; i++ {
				g.Hash()
			}
		}),
		mk("exact-fresh-1mut", func() {
			for i := 0; i < batch; i++ {
				g.Send(id, 0, core.Null)
				g.Fingerprint()
			}
		}),
	}
}

// cloneEntry measures copy-on-write global cloning, the other explorer
// inner-loop cost.
func cloneEntry(benchtime time.Duration, iters int, sample string, prog *ir.Program, steps int) entry {
	const batch = 1000
	g := core.NewGlobal(prog, nil)
	if _, err := g.CreateMain(); err != nil {
		fmt.Fprintf(os.Stderr, "pbench: %s: %v\n", sample, err)
		os.Exit(1)
	}
	advance(g, steps)
	n, ns, allocs, bytes := measure(benchtime, iters, batch, func() {
		for i := 0; i < batch; i++ {
			_ = g.Clone()
		}
	})
	return entry{
		Name:        fmt.Sprintf("CLONE/%s", sample),
		Experiment:  "CLONE",
		Sample:      sample,
		Iterations:  n * batch,
		NsPerOp:     ns,
		AllocsPerOp: allocs,
		BytesPerOp:  bytes,
	}
}

func main() {
	var (
		out       = flag.String("out", "", "write the JSON report to this file (default stdout)")
		benchtime = flag.Duration("benchtime", time.Second, "minimum measuring time per entry")
		iters     = flag.Int("iters", 0, "fixed iteration count per entry (overrides -benchtime; CI smoke uses 1)")
		filter    = flag.String("filter", "", "only run entries whose name matches this regexp")
		compare   = flag.String("compare", "", "compare this run against a baseline JSON report: print a per-benchmark delta table (appended to $GITHUB_STEP_SUMMARY when set) and exit nonzero on regression")
		regress   = flag.Float64("regress", 25, "with -compare, the allowed states/sec drop in percent before the run fails")
	)
	flag.Parse()
	var re *regexp.Regexp
	if *filter != "" {
		var err error
		if re, err = regexp.Compile(*filter); err != nil {
			fmt.Fprintf(os.Stderr, "pbench: bad -filter: %v\n", err)
			os.Exit(2)
		}
	}

	// The corpus: E2 delay sweeps, E4 USB searches at delay budget 1 with
	// the Fig-8 state caps, fingerprint and clone micro-benchmarks.
	type sweep struct {
		sample, src string
		bounds      []int
		cap         int
	}
	e2 := []sweep{
		{"elevator", psamples.Elevator, []int{0, 1, 2, 3}, 2_000_000},
		{"switchled", psamples.SwitchLED, []int{0, 1, 2}, 2_000_000},
		{"german", psamples.German(2), []int{0, 1, 2}, 2_000_000},
	}
	e4 := []sweep{
		{"usb-hsm", psamples.USBHub, []int{1}, 200_000},
		{"usb-psm3", psamples.USBPort30, []int{1}, 200_000},
		{"usb-psm2", psamples.USBPort20, []int{1}, 200_000},
		{"usb-dsm", psamples.USBDevice, []int{1}, 200_000},
	}

	rep := report{
		Schema:    schemaVersion,
		SchemaDoc: schemaDoc,
		Go:        runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Generated: time.Now().UTC().Format(time.RFC3339),
	}
	add := func(e entry) {
		if re != nil && !re.MatchString(e.Name) {
			return
		}
		rep.Entries = append(rep.Entries, e)
		fmt.Fprintf(os.Stderr, "%-40s %12d ns/op %10d allocs/op\n", e.Name, e.NsPerOp, e.AllocsPerOp)
	}
	runSweeps := func(experiment string, sweeps []sweep) {
		for _, s := range sweeps {
			var prog *ir.Program
			for _, d := range s.bounds {
				name := fmt.Sprintf("%s/%s/d=%d", experiment, s.sample, d)
				if re != nil && !re.MatchString(name) {
					continue
				}
				if prog == nil {
					prog = compileOrDie(s.sample, s.src)
				}
				add(exploreEntry(*benchtime, *iters, name, experiment, s.sample, prog,
					check.Options{Mode: check.DelayBounded, Bound: d, MaxStates: s.cap}))
			}
		}
	}
	runSweeps("E2", e2)
	runSweeps("E4", e4)

	// POR: each reduced search next to its unreduced twin, pinning both the
	// reduction and the cost of the ample-set checks. The delay-bounded pair
	// covers the safety reduction; the chaos-* twin runs depth-bounded under
	// a drop-fault budget (the environment-machine composition) and the
	// live-* twin collects the liveness graph (the strict C3 proviso).
	porCorpus := []struct {
		sample, src string
		opts        check.Options
	}{
		{"german-3", psamples.German(3),
			check.Options{Mode: check.DelayBounded, Bound: 2, MaxStates: 2_000_000}},
		{"usb-hsm", psamples.USBHub,
			check.Options{Mode: check.DelayBounded, Bound: 2, MaxStates: 2_000_000}},
		{"chaos-german-4", psamples.German(4),
			check.Options{Mode: check.DepthBounded, Bound: 14, MaxStates: 2_000_000, Faults: 1, FaultKinds: check.DropFaults}},
		{"live-german-4", psamples.German(4),
			check.Options{Mode: check.DepthBounded, Bound: 14, MaxStates: 2_000_000, CollectGraph: true}},
	}
	for _, s := range porCorpus {
		var prog *ir.Program
		for _, por := range []bool{false, true} {
			state := "off"
			if por {
				state = "on"
			}
			name := fmt.Sprintf("POR/%s/d=%d/por=%s", s.sample, s.opts.Bound, state)
			if re != nil && !re.MatchString(name) {
				continue
			}
			if prog == nil {
				prog = compileOrDie(s.sample, s.src)
			}
			opts := s.opts
			opts.POR = por
			add(exploreEntry(*benchtime, *iters, name, "POR", s.sample, prog, opts))
		}
	}

	// SPILL: the same delay-1 searches with the visited store capped at a
	// small resident set, forcing most of the dictionary onto disk; the
	// delta against the matching E2/E4 entries is the price of spilling.
	spillCorpus := []struct {
		sample, src         string
		bound, cap          int
		shards, memPerShard int
	}{
		{"german-3", psamples.German(3), 1, 2_000_000, 8, 512},
		{"usb-hsm", psamples.USBHub, 1, 200_000, 8, 512},
	}
	for _, s := range spillCorpus {
		if re != nil && !re.MatchString(fmt.Sprintf("SPILL/%s/d=%d/mem=%d", s.sample, s.bound, s.shards*s.memPerShard)) {
			continue
		}
		add(spillEntry(*benchtime, *iters, s.sample, compileOrDie(s.sample, s.src), s.bound, s.cap, s.shards, s.memPerShard))
	}

	// ABS: the parameterized coverability pass on the proof benchmark
	// (german-2 closes with a safe verdict), a real-bug benchmark
	// (usb-hsm reaches its counterexamples), and the leader-election ring
	// (a small abstract space with an indefinite counterexample).
	absCorpus := []struct {
		sample, src string
		cap         int
	}{
		{"german-2", psamples.German(2), 400_000},
		{"usb-hsm", psamples.USBHub, 400_000},
		{"ring", psamples.Ring(3), 400_000},
	}
	for _, s := range absCorpus {
		if re != nil && !re.MatchString("ABS/"+s.sample) {
			continue
		}
		add(absEntry(*benchtime, *iters, s.sample, compileOrDie(s.sample, s.src), s.cap))
	}

	if re == nil || re.MatchString("FP/") {
		for _, e := range fingerprintEntries(*benchtime, *iters, "german-3", compileOrDie("german", psamples.German(3)), 30) {
			add(e)
		}
		for _, e := range fingerprintEntries(*benchtime, *iters, "elevator", compileOrDie("elevator", psamples.Elevator), 5) {
			add(e)
		}
	}
	if re == nil || re.MatchString("CLONE/") {
		add(cloneEntry(*benchtime, *iters, "elevator", compileOrDie("elevator", psamples.Elevator), 5))
		add(cloneEntry(*benchtime, *iters, "german-3", compileOrDie("german", psamples.German(3)), 30))
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "pbench: %v\n", err)
		os.Exit(1)
	}

	if *compare != "" {
		if !compareAgainst(*compare, &rep, *regress) {
			os.Exit(1)
		}
	}
}

// gateFloorNs is the baseline ns/op below which an entry is informational
// only: sub-10ms explorations are dominated by scheduler and allocator noise
// at CI iteration counts, and gating on them makes the bench job flap.
const gateFloorNs = 10_000_000

// compareAgainst diffs the freshly measured report against the committed
// baseline at path, emits a per-benchmark markdown delta table (appended to
// the GitHub job summary when $GITHUB_STEP_SUMMARY is set, otherwise to
// stderr), and reports whether the run is within the regression budget: no
// explorer entry's states/sec may drop more than regressPct percent below
// its baseline. Micro-benchmark entries (no states/sec) and entries faster
// than gateFloorNs are informational.
func compareAgainst(path string, cur *report, regressPct float64) bool {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pbench: -compare: %v\n", err)
		return false
	}
	var base report
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "pbench: -compare: parsing %s: %v\n", path, err)
		return false
	}
	baseByName := make(map[string]entry, len(base.Entries))
	for _, e := range base.Entries {
		baseByName[e.Name] = e
	}

	var b strings.Builder
	fmt.Fprintf(&b, "### pbench vs %s (baseline %s, %s)\n\n", path, base.Generated, base.Go)
	fmt.Fprintf(&b, "| benchmark | ns/op | Δ ns/op | states/sec | Δ states/sec | status |\n")
	fmt.Fprintf(&b, "|---|---:|---:|---:|---:|---|\n")
	pct := func(now, was float64) string {
		if was == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%+.1f%%", 100*(now-was)/was)
	}
	ok := true
	for _, e := range cur.Entries {
		be, found := baseByName[e.Name]
		if !found {
			fmt.Fprintf(&b, "| %s | %d | new | %.0f | new | new |\n", e.Name, e.NsPerOp, e.StatesPerSec)
			continue
		}
		status := "ok"
		if be.StatesPerSec > 0 && e.StatesPerSec < be.StatesPerSec*(1-regressPct/100) {
			if be.NsPerOp < gateFloorNs {
				status = "slow (below gate floor)"
			} else {
				status = fmt.Sprintf("**regressed >%g%%**", regressPct)
				ok = false
			}
		}
		fmt.Fprintf(&b, "| %s | %d | %s | %.0f | %s | %s |\n",
			e.Name, e.NsPerOp, pct(float64(e.NsPerOp), float64(be.NsPerOp)),
			e.StatesPerSec, pct(e.StatesPerSec, be.StatesPerSec), status)
	}
	if !ok {
		fmt.Fprintf(&b, "\nsome explorer benchmark fell more than %g%% below the baseline states/sec\n", regressPct)
	}

	table := b.String()
	if sum := os.Getenv("GITHUB_STEP_SUMMARY"); sum != "" {
		f, err := os.OpenFile(sum, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err == nil {
			fmt.Fprintln(f, table)
			f.Close()
		}
	}
	fmt.Fprint(os.Stderr, table)
	return ok
}

// pbench runs the explorer benchmark corpus — the E2 (Fig 7) delay-bound
// sweeps, the E4 (Fig 8) USB state-machine searches, and the
// fingerprint/clone micro-benchmarks that dominate the explorer's inner
// loop — and emits a machine-readable JSON report (BENCH_explore.json).
// The committed report seeds the repo's perf trajectory: every PR that
// touches the hot path can regenerate it and show its delta.
//
// Usage:
//
//	pbench [-out BENCH_explore.json] [-benchtime 1s] [-iters N] [-filter regexp]
//	pbench -compare BENCH_explore.json [-regress 25]
//
// With -iters N each entry runs exactly N iterations (CI smoke uses
// -iters 1); otherwise entries iterate until -benchtime has elapsed.
// With -compare, the run is additionally diffed against a committed baseline
// report: a per-benchmark delta table goes to the GitHub job summary (when
// $GITHUB_STEP_SUMMARY is set) and the process exits nonzero if any gated
// explorer entry's states/sec fell more than -regress percent.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"pgo/internal/abstract"
	"pgo/internal/analysis"
	"pgo/internal/benchfmt"
	"pgo/internal/check"
	"pgo/internal/compile"
	"pgo/internal/core"
	"pgo/internal/ir"
	"pgo/internal/psamples"
	"pgo/internal/server"
)

// The report layout (schema, field docs, entry struct) lives in
// internal/benchfmt, shared with cmd/pload so serving-path load reports and
// explorer reports diff and gate uniformly.
type entry = benchfmt.Entry

// measure runs f (which performs ops operations per call) until iters calls
// (when iters > 0) or benchtime has elapsed, and reports per-op wall time
// and allocation figures.
func measure(benchtime time.Duration, iters, ops int, f func()) (n int, nsPerOp, allocsPerOp, bytesPerOp int64) {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for {
		f()
		n++
		if iters > 0 {
			if n >= iters {
				break
			}
		} else if time.Since(start) >= benchtime {
			break
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	total := int64(n) * int64(ops)
	nsPerOp = elapsed.Nanoseconds() / total
	allocsPerOp = int64(m1.Mallocs-m0.Mallocs) / total
	bytesPerOp = int64(m1.TotalAlloc-m0.TotalAlloc) / total
	return n, nsPerOp, allocsPerOp, bytesPerOp
}

func compileOrDie(name, src string) *ir.Program {
	prog, diags, err := compile.Source(name, src)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pbench: compile %s: %v\n%s", name, err, diags.String())
		os.Exit(1)
	}
	return prog
}

// exploreEntry measures one exploration configuration. name is the full
// entry id; opts carries the exact search configuration (mode, budget,
// faults, graph collection, reduction) so one helper serves the delay
// sweeps and the depth-mode chaos/liveness twins alike.
func exploreEntry(benchtime time.Duration, iters int, name, experiment, sample string, prog *ir.Program, opts check.Options) entry {
	// Pinned so a future change to the default Progress throttle cannot
	// shift the committed numbers.
	opts.ProgressEvery = 4096
	var last *check.Result
	n, ns, allocs, bytes := measure(benchtime, iters, 1, func() {
		res, err := check.Explore(prog, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pbench: %s: %v\n", sample, err)
			os.Exit(1)
		}
		last = res
	})
	e := entry{
		Name:          name,
		Experiment:    experiment,
		Sample:        sample,
		Mode:          opts.Mode.String(),
		Bound:         opts.Bound,
		CPUs:          runtime.NumCPU(),
		Workers:       last.Stats.Workers,
		Iterations:    n,
		NsPerOp:       ns,
		AllocsPerOp:   allocs,
		BytesPerOp:    bytes,
		States:        last.Stats.DistinctStates,
		Transitions:   last.Stats.Transitions,
		POR:           opts.POR,
		ReducedStates: last.Stats.ReducedStates,
	}
	if last.Stats.Truncated {
		e.MaxStates = opts.MaxStates
	}
	if ns > 0 {
		e.StatesPerSec = float64(last.Stats.DistinctStates) / (float64(ns) * 1e-9)
	}
	return e
}

// spillEntry measures a disk-backed exploration: the tiered visited store
// runs with a per-shard memory cap far below the state count, so the search
// exercises the spill path — chunk writes, bloom-filtered disk lookups —
// end to end. Each iteration gets a fresh run directory (reusing one would
// let stale chunk entries dedup away the whole search).
func spillEntry(benchtime time.Duration, iters int, sample string, prog *ir.Program, bound, maxStates, shards, memPerShard int) entry {
	var last *check.Result
	n, ns, allocs, bytes := measure(benchtime, iters, 1, func() {
		dir, err := os.MkdirTemp("", "pbench-spill-")
		if err != nil {
			fmt.Fprintf(os.Stderr, "pbench: %v\n", err)
			os.Exit(1)
		}
		defer os.RemoveAll(dir)
		res, err := check.Explore(prog, check.Options{
			Mode: check.DelayBounded, Bound: bound, MaxStates: maxStates,
			StoreDir: dir, StoreShards: shards, StoreMemPerShard: memPerShard,
			ProgressEvery: 4096,
		})
		if err == nil && res.StoreErr != nil {
			err = res.StoreErr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "pbench: %s: %v\n", sample, err)
			os.Exit(1)
		}
		last = res
	})
	e := entry{
		Name:        fmt.Sprintf("SPILL/%s/d=%d/mem=%d", sample, bound, shards*memPerShard),
		Experiment:  "SPILL",
		Sample:      sample,
		Mode:        check.DelayBounded.String(),
		Bound:       bound,
		CPUs:        runtime.NumCPU(),
		Workers:     last.Stats.Workers,
		Iterations:  n,
		NsPerOp:     ns,
		AllocsPerOp: allocs,
		BytesPerOp:  bytes,
		States:      last.Stats.DistinctStates,
		Transitions: last.Stats.Transitions,
	}
	if last.Stats.Truncated {
		e.MaxStates = maxStates
	}
	if st := last.StoreStats; st != nil {
		e.SpilledEntries = st.SpilledEntries
		e.Chunks = st.Chunks
		e.DiskBytes = st.DiskBytes
	}
	if ns > 0 {
		e.StatesPerSec = float64(last.Stats.DistinctStates) / (float64(ns) * 1e-9)
	}
	return e
}

// absEntry measures the counter-abstraction coverability pass (internal/
// abstract) on one sample: full translation plus the Karp–Miller search.
// The explorer fields are reused — states is the marking count, reduced
// states the POR-reduced expansions — so the regression gate treats
// markings/sec like states/sec.
func absEntry(benchtime time.Duration, iters int, sample string, prog *ir.Program, maxMarkings int) entry {
	rep := analysis.Analyze(prog)
	var last *abstract.Result
	n, ns, allocs, bytes := measure(benchtime, iters, 1, func() {
		last = abstract.Analyze(prog, abstract.Options{Facts: rep, MaxMarkings: maxMarkings})
	})
	e := entry{
		Name:          fmt.Sprintf("ABS/%s", sample),
		Experiment:    "ABS",
		Sample:        sample,
		Mode:          "abstract",
		CPUs:          runtime.NumCPU(),
		Workers:       1,
		Iterations:    n,
		NsPerOp:       ns,
		AllocsPerOp:   allocs,
		BytesPerOp:    bytes,
		States:        last.Markings,
		ReducedStates: last.Reduced,
	}
	if last.Truncated {
		e.MaxStates = maxMarkings
	}
	if ns > 0 {
		e.StatesPerSec = float64(last.Markings) / (float64(ns) * 1e-9)
	}
	return e
}

func erasedOrDie(name, src string) *ir.Program {
	prog, diags, err := compile.Erased(name, src)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pbench: compile %s: %v\n%s", name, err, diags.String())
		os.Exit(1)
	}
	return prog
}

// serveEntry measures the serving path in-process: a fresh sharded actor
// server per iteration, sessions concurrent workers each running rounds of
// the workload, then quiescence. ns_per_op is per ingress request; states
// is the events the shard loops processed per iteration, so states/sec is
// serving throughput in the same column the explorer entries use.
// reqPerRound must match the requests the round closure issues.
func serveEntry(benchtime time.Duration, iters int, scen, sample string, prog *ir.Program,
	sessions, rounds, reqPerRound int, round func(srv *server.Server, add func(time.Duration, error))) entry {
	var mu sync.Mutex
	var lats []int64
	var shedTotal, processedTotal int64
	add := func(d time.Duration, err error) {
		var se *server.ShedError
		mu.Lock()
		lats = append(lats, d.Nanoseconds())
		if errors.As(err, &se) {
			shedTotal++
		}
		mu.Unlock()
	}
	reqPerIter := sessions * rounds * reqPerRound
	n, ns, allocs, bytes := measure(benchtime, iters, reqPerIter, func() {
		srv, err := server.New(prog, server.Options{Shards: 4, Seed: 1})
		if err != nil {
			fmt.Fprintf(os.Stderr, "pbench: %s: %v\n", sample, err)
			os.Exit(1)
		}
		h := server.NewHandler(srv)
		var wg sync.WaitGroup
		for i := 0; i < sessions; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					round(srv, add)
				}
			}()
		}
		wg.Wait()
		if !srv.Quiesce(time.Minute) {
			fmt.Fprintf(os.Stderr, "pbench: %s: serving workload never quiesced\n", sample)
			os.Exit(1)
		}
		processedTotal += h.Varz().Totals.EventsProcessed
		srv.Stop()
	})
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pick := func(p int) int64 {
		if len(lats) == 0 {
			return 0
		}
		i := (len(lats)*p+99)/100 - 1
		if i < 0 {
			i = 0
		}
		return lats[i]
	}
	e := entry{
		Name:        fmt.Sprintf("SERVE/%s/s%d", scen, sessions),
		Experiment:  "SERVE",
		Sample:      sample,
		Mode:        server.ShedRejectIngress.String(),
		Bound:       rounds,
		CPUs:        runtime.NumCPU(),
		Workers:     4,
		Iterations:  n * reqPerIter,
		NsPerOp:     ns,
		AllocsPerOp: allocs,
		BytesPerOp:  bytes,
		States:      int(processedTotal) / n,
		Requests:    len(lats) / n,
		Shed:        int(shedTotal) / n,
		P50Ns:       pick(50),
		P99Ns:       pick(99),
	}
	if wallPerIter := ns * int64(reqPerIter); wallPerIter > 0 {
		e.StatesPerSec = float64(e.States) / (float64(wallPerIter) * 1e-9)
	}
	return e
}

// advance drives g a few macro steps so its configuration is nontrivial.
func advance(g *core.Global, steps int) {
	for i := 0; i < steps; i++ {
		for _, id := range g.LiveIDs() {
			if g.Enabled(id) {
				g.RunToSchedPoint(id, &core.FixedChoices{}, 0)
				break
			}
		}
	}
}

// fingerprintEntries measures the incremental fingerprint hot path on one
// sample: a single-machine mutation (a ⊕-dropped duplicate send)
// invalidates one per-Config digest, then Hash re-encodes that machine and
// re-combines — the exact cost the explorer pays per macro step.
func fingerprintEntries(benchtime time.Duration, iters int, sample string, prog *ir.Program, steps int) []entry {
	const batch = 1000
	g := core.NewGlobal(prog, nil)
	if _, err := g.CreateMain(); err != nil {
		fmt.Fprintf(os.Stderr, "pbench: %s: %v\n", sample, err)
		os.Exit(1)
	}
	advance(g, steps)
	id := g.LiveIDs()[0]
	if _, err := g.Send(id, 0, core.Null); err != nil { // prime the duplicate
		fmt.Fprintf(os.Stderr, "pbench: %s: %v\n", sample, err)
		os.Exit(1)
	}
	mk := func(kind string, f func()) entry {
		n, ns, allocs, bytes := measure(benchtime, iters, batch, f)
		return entry{
			Name:        fmt.Sprintf("FP/%s/%s", sample, kind),
			Experiment:  "FP",
			Sample:      sample,
			Iterations:  n * batch,
			NsPerOp:     ns,
			AllocsPerOp: allocs,
			BytesPerOp:  bytes,
		}
	}
	return []entry{
		mk("hash-fresh-1mut", func() {
			for i := 0; i < batch; i++ {
				g.Send(id, 0, core.Null)
				g.Hash()
			}
		}),
		mk("hash-cached", func() {
			for i := 0; i < batch; i++ {
				g.Hash()
			}
		}),
		mk("exact-fresh-1mut", func() {
			for i := 0; i < batch; i++ {
				g.Send(id, 0, core.Null)
				g.Fingerprint()
			}
		}),
	}
}

// cloneEntry measures copy-on-write global cloning, the other explorer
// inner-loop cost.
func cloneEntry(benchtime time.Duration, iters int, sample string, prog *ir.Program, steps int) entry {
	const batch = 1000
	g := core.NewGlobal(prog, nil)
	if _, err := g.CreateMain(); err != nil {
		fmt.Fprintf(os.Stderr, "pbench: %s: %v\n", sample, err)
		os.Exit(1)
	}
	advance(g, steps)
	n, ns, allocs, bytes := measure(benchtime, iters, batch, func() {
		for i := 0; i < batch; i++ {
			_ = g.Clone()
		}
	})
	return entry{
		Name:        fmt.Sprintf("CLONE/%s", sample),
		Experiment:  "CLONE",
		Sample:      sample,
		Iterations:  n * batch,
		NsPerOp:     ns,
		AllocsPerOp: allocs,
		BytesPerOp:  bytes,
	}
}

func main() {
	var (
		out       = flag.String("out", "", "write the JSON report to this file (default stdout)")
		benchtime = flag.Duration("benchtime", time.Second, "minimum measuring time per entry")
		iters     = flag.Int("iters", 0, "fixed iteration count per entry (overrides -benchtime; CI smoke uses 1)")
		filter    = flag.String("filter", "", "only run entries whose name matches this regexp")
		compare   = flag.String("compare", "", "compare this run against a baseline JSON report: print a per-benchmark delta table (appended to $GITHUB_STEP_SUMMARY when set) and exit nonzero on regression")
		regress   = flag.Float64("regress", 25, "with -compare, the allowed states/sec drop in percent before the run fails")
	)
	flag.Parse()
	var re *regexp.Regexp
	if *filter != "" {
		var err error
		if re, err = regexp.Compile(*filter); err != nil {
			fmt.Fprintf(os.Stderr, "pbench: bad -filter: %v\n", err)
			os.Exit(2)
		}
	}

	// The corpus: E2 delay sweeps, E4 USB searches at delay budget 1 with
	// the Fig-8 state caps, fingerprint and clone micro-benchmarks.
	type sweep struct {
		sample, src string
		bounds      []int
		cap         int
	}
	e2 := []sweep{
		{"elevator", psamples.Elevator, []int{0, 1, 2, 3}, 2_000_000},
		{"switchled", psamples.SwitchLED, []int{0, 1, 2}, 2_000_000},
		{"german", psamples.German(2), []int{0, 1, 2}, 2_000_000},
	}
	e4 := []sweep{
		{"usb-hsm", psamples.USBHub, []int{1}, 200_000},
		{"usb-psm3", psamples.USBPort30, []int{1}, 200_000},
		{"usb-psm2", psamples.USBPort20, []int{1}, 200_000},
		{"usb-dsm", psamples.USBDevice, []int{1}, 200_000},
	}

	rep := benchfmt.NewReport()
	add := func(e entry) {
		if re != nil && !re.MatchString(e.Name) {
			return
		}
		rep.Entries = append(rep.Entries, e)
		fmt.Fprintf(os.Stderr, "%-40s %12d ns/op %10d allocs/op\n", e.Name, e.NsPerOp, e.AllocsPerOp)
	}
	runSweeps := func(experiment string, sweeps []sweep) {
		for _, s := range sweeps {
			var prog *ir.Program
			for _, d := range s.bounds {
				name := fmt.Sprintf("%s/%s/d=%d", experiment, s.sample, d)
				if re != nil && !re.MatchString(name) {
					continue
				}
				if prog == nil {
					prog = compileOrDie(s.sample, s.src)
				}
				add(exploreEntry(*benchtime, *iters, name, experiment, s.sample, prog,
					check.Options{Mode: check.DelayBounded, Bound: d, MaxStates: s.cap}))
			}
		}
	}
	// CORPUS: the distributed-protocols corpus, one sweep per state-space
	// shape — star (2PC's coordinator hub), deep (raft's serialized election
	// rounds), serving (the sharded KV's request/migration pipeline), and
	// symmetric (the identical work-stealing workers). The d=3 legs sit
	// above the gate floor, so the >25% states/sec compare gate covers all
	// three shapes; d=2 is informational context.
	corpus := []sweep{
		{"twophase", psamples.TwoPhase(2), []int{2, 3}, 2_000_000},
		{"raft", psamples.Raft(), []int{2, 3}, 2_000_000},
		{"shardkv", psamples.ShardKV(), []int{2, 3}, 2_000_000},
		{"worksteal", psamples.WorkSteal(), []int{2, 3}, 2_000_000},
	}

	runSweeps("E2", e2)
	runSweeps("E4", e4)
	runSweeps("CORPUS", corpus)

	// POR: each reduced search next to its unreduced twin, pinning both the
	// reduction and the cost of the ample-set checks. The delay-bounded pair
	// covers the safety reduction; the chaos-* twin runs depth-bounded under
	// a drop-fault budget (the environment-machine composition) and the
	// live-* twin collects the liveness graph (the strict C3 proviso).
	porCorpus := []struct {
		sample, src string
		opts        check.Options
	}{
		{"german-3", psamples.German(3),
			check.Options{Mode: check.DelayBounded, Bound: 2, MaxStates: 2_000_000}},
		{"usb-hsm", psamples.USBHub,
			check.Options{Mode: check.DelayBounded, Bound: 2, MaxStates: 2_000_000}},
		{"chaos-german-4", psamples.German(4),
			check.Options{Mode: check.DepthBounded, Bound: 14, MaxStates: 2_000_000, Faults: 1, FaultKinds: check.DropFaults}},
		{"live-german-4", psamples.German(4),
			check.Options{Mode: check.DepthBounded, Bound: 14, MaxStates: 2_000_000, CollectGraph: true}},
	}
	for _, s := range porCorpus {
		var prog *ir.Program
		for _, por := range []bool{false, true} {
			state := "off"
			if por {
				state = "on"
			}
			name := fmt.Sprintf("POR/%s/d=%d/por=%s", s.sample, s.opts.Bound, state)
			if re != nil && !re.MatchString(name) {
				continue
			}
			if prog == nil {
				prog = compileOrDie(s.sample, s.src)
			}
			opts := s.opts
			opts.POR = por
			add(exploreEntry(*benchtime, *iters, name, "POR", s.sample, prog, opts))
		}
	}

	// SPILL: the same delay-1 searches with the visited store capped at a
	// small resident set, forcing most of the dictionary onto disk; the
	// delta against the matching E2/E4 entries is the price of spilling.
	spillCorpus := []struct {
		sample, src         string
		bound, cap          int
		shards, memPerShard int
	}{
		{"german-3", psamples.German(3), 1, 2_000_000, 8, 512},
		{"usb-hsm", psamples.USBHub, 1, 200_000, 8, 512},
	}
	for _, s := range spillCorpus {
		if re != nil && !re.MatchString(fmt.Sprintf("SPILL/%s/d=%d/mem=%d", s.sample, s.bound, s.shards*s.memPerShard)) {
			continue
		}
		add(spillEntry(*benchtime, *iters, s.sample, compileOrDie(s.sample, s.src), s.bound, s.cap, s.shards, s.memPerShard))
	}

	// ABS: the parameterized coverability pass on the proof benchmark
	// (german-2 closes with a safe verdict), a real-bug benchmark
	// (usb-hsm reaches its counterexamples), and the leader-election ring
	// (a small abstract space with an indefinite counterexample).
	absCorpus := []struct {
		sample, src string
		cap         int
	}{
		{"german-2", psamples.German(2), 400_000},
		{"usb-hsm", psamples.USBHub, 400_000},
		{"ring", psamples.Ring(3), 400_000},
	}
	for _, s := range absCorpus {
		if re != nil && !re.MatchString("ABS/"+s.sample) {
			continue
		}
		add(absEntry(*benchtime, *iters, s.sample, compileOrDie(s.sample, s.src), s.cap))
	}

	// SERVE: the sharded actor-server under concurrent sessions, the same
	// workloads cmd/pload drives over HTTP but in-process, so the entries
	// isolate shard-loop throughput from network and JSON costs.
	if re == nil || re.MatchString("SERVE/elevator/s8") {
		prog := erasedOrDie("elevator", psamples.Elevator)
		script := []string{"OpenDoor", "DoorOpened", "TimerFired"}
		add(serveEntry(*benchtime, *iters, "elevator", "elevator", prog, 8, 25, 1+len(script),
			func(srv *server.Server, addReq func(time.Duration, error)) {
				t0 := time.Now()
				id, err := srv.CreateMachine("Elevator", nil)
				addReq(time.Since(t0), err)
				if err != nil {
					return
				}
				for _, ev := range script {
					t0 := time.Now()
					err := srv.Send(id, ev, core.Null)
					addReq(time.Since(t0), err)
				}
			}))
	}
	if re == nil || re.MatchString("SERVE/ring/s4") {
		prog := erasedOrDie("ring", psamples.Ring(3))
		add(serveEntry(*benchtime, *iters, "ring", "ring", prog, 4, 25, 2,
			func(srv *server.Server, addReq func(time.Duration, error)) {
				t0 := time.Now()
				id, err := srv.CreateMachine("Node", map[string]core.Value{
					"myid": core.IntVal(1), "total": core.IntVal(3),
				})
				addReq(time.Since(t0), err)
				if err != nil {
					return
				}
				t0 = time.Now()
				err = srv.Send(id, "Token", core.IntVal(0))
				addReq(time.Since(t0), err)
			}))
	}

	if re == nil || re.MatchString("FP/") {
		for _, e := range fingerprintEntries(*benchtime, *iters, "german-3", compileOrDie("german", psamples.German(3)), 30) {
			add(e)
		}
		for _, e := range fingerprintEntries(*benchtime, *iters, "elevator", compileOrDie("elevator", psamples.Elevator), 5) {
			add(e)
		}
	}
	if re == nil || re.MatchString("CLONE/") {
		add(cloneEntry(*benchtime, *iters, "elevator", compileOrDie("elevator", psamples.Elevator), 5))
		add(cloneEntry(*benchtime, *iters, "german-3", compileOrDie("german", psamples.German(3)), 30))
	}

	if err := rep.WriteFile(*out); err != nil {
		fmt.Fprintf(os.Stderr, "pbench: %v\n", err)
		os.Exit(1)
	}

	if *compare != "" {
		if !compareAgainst(*compare, &rep, *regress, re) {
			os.Exit(1)
		}
	}
}

// gateFloorNs is the baseline ns/op below which an entry is informational
// only: sub-10ms explorations are dominated by scheduler and allocator noise
// at CI iteration counts, and gating on them makes the bench job flap.
const gateFloorNs = 10_000_000

// compareAgainst diffs the freshly measured report against the committed
// baseline at path, emits a per-benchmark markdown delta table (appended to
// the GitHub job summary when $GITHUB_STEP_SUMMARY is set, otherwise to
// stderr), and reports whether the run is within the regression budget: no
// explorer entry's states/sec may drop more than regressPct percent below
// its baseline. Micro-benchmark entries (no states/sec) and entries faster
// than gateFloorNs are informational. Baseline entries that the current run
// did not produce fail the gate by name — a silently vanished (or renamed)
// entry would otherwise read as "no regression"; under -filter only the
// baseline entries the filter selects are required.
func compareAgainst(path string, cur *benchfmt.Report, regressPct float64, filter *regexp.Regexp) bool {
	base, err := benchfmt.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pbench: -compare: %v\n", err)
		return false
	}
	baseByName := make(map[string]entry, len(base.Entries))
	for _, e := range base.Entries {
		baseByName[e.Name] = e
	}
	curNames := make(map[string]bool, len(cur.Entries))
	for _, e := range cur.Entries {
		curNames[e.Name] = true
	}

	var b strings.Builder
	fmt.Fprintf(&b, "### pbench vs %s (baseline %s, %s)\n\n", path, base.Generated, base.Go)
	fmt.Fprintf(&b, "| benchmark | ns/op | Δ ns/op | states/sec | Δ states/sec | status |\n")
	fmt.Fprintf(&b, "|---|---:|---:|---:|---:|---|\n")
	pct := func(now, was float64) string {
		if was == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%+.1f%%", 100*(now-was)/was)
	}
	ok := true
	for _, e := range cur.Entries {
		be, found := baseByName[e.Name]
		if !found {
			fmt.Fprintf(&b, "| %s | %d | new | %.0f | new | new |\n", e.Name, e.NsPerOp, e.StatesPerSec)
			continue
		}
		status := "ok"
		if be.StatesPerSec > 0 && e.StatesPerSec < be.StatesPerSec*(1-regressPct/100) {
			if be.NsPerOp < gateFloorNs {
				status = "slow (below gate floor)"
			} else {
				status = fmt.Sprintf("**regressed >%g%%**", regressPct)
				ok = false
			}
		}
		fmt.Fprintf(&b, "| %s | %d | %s | %.0f | %s | %s |\n",
			e.Name, e.NsPerOp, pct(float64(e.NsPerOp), float64(be.NsPerOp)),
			e.StatesPerSec, pct(e.StatesPerSec, be.StatesPerSec), status)
	}
	var missing []string
	for _, e := range base.Entries {
		if curNames[e.Name] {
			continue
		}
		if filter != nil && !filter.MatchString(e.Name) {
			continue
		}
		missing = append(missing, e.Name)
	}
	sort.Strings(missing)
	for _, name := range missing {
		fmt.Fprintf(&b, "| %s | — | — | — | — | **missing from this run** |\n", name)
		ok = false
	}

	if !ok {
		fmt.Fprintf(&b, "\nsome explorer benchmark fell more than %g%% below the baseline states/sec", regressPct)
		if len(missing) > 0 {
			fmt.Fprintf(&b, ", or a baseline entry is missing: %s", strings.Join(missing, ", "))
		}
		fmt.Fprintf(&b, "\n")
	}

	table := b.String()
	if sum := os.Getenv("GITHUB_STEP_SUMMARY"); sum != "" {
		f, err := os.OpenFile(sum, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err == nil {
			fmt.Fprintln(f, table)
			f.Close()
		}
	}
	fmt.Fprint(os.Stderr, table)
	return ok
}

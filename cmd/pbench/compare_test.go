package main

import (
	"path/filepath"
	"regexp"
	"testing"

	"pgo/internal/benchfmt"
)

func writeBaseline(t *testing.T, entries []benchfmt.Entry) string {
	t.Helper()
	rep := benchfmt.NewReport()
	rep.Entries = entries
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// The compare gate must fail when a baseline entry is absent from the fresh
// run (vanished or renamed), naming the entry — previously such entries
// passed silently because only current entries were iterated.
func TestCompareGateMissingEntry(t *testing.T) {
	t.Setenv("GITHUB_STEP_SUMMARY", "") // keep test output off any real summary
	gated := benchfmt.Entry{Name: "CORPUS/raft/d=3", Experiment: "CORPUS",
		NsPerOp: 2 * gateFloorNs, States: 4000, StatesPerSec: 100_000}
	extra := benchfmt.Entry{Name: "CORPUS/ghost/d=3", Experiment: "CORPUS",
		NsPerOp: 2 * gateFloorNs, States: 4000, StatesPerSec: 100_000}
	path := writeBaseline(t, []benchfmt.Entry{gated, extra})

	cur := benchfmt.NewReport()
	cur.Entries = []benchfmt.Entry{gated}
	if compareAgainst(path, &cur, 25, nil) {
		t.Fatal("gate passed with a baseline entry missing from the run")
	}

	// The same partial run is fine when -filter explains the absence...
	if !compareAgainst(path, &cur, 25, regexp.MustCompile(`raft`)) {
		t.Fatal("gate failed on a baseline entry the -filter excludes")
	}
	// ...but not when the filter selects the missing entry.
	if compareAgainst(path, &cur, 25, regexp.MustCompile(`CORPUS/`)) {
		t.Fatal("gate passed with a filter-selected baseline entry missing")
	}
}

// Regressions beyond the budget still fail, and matching runs still pass —
// the missing-entry check must not disturb the existing gate semantics.
func TestCompareGateRegression(t *testing.T) {
	t.Setenv("GITHUB_STEP_SUMMARY", "")
	base := benchfmt.Entry{Name: "E2/german/d=2", Experiment: "E2",
		NsPerOp: 2 * gateFloorNs, States: 100_000, StatesPerSec: 100_000}
	path := writeBaseline(t, []benchfmt.Entry{base})

	same := benchfmt.NewReport()
	same.Entries = []benchfmt.Entry{base}
	if !compareAgainst(path, &same, 25, nil) {
		t.Fatal("gate failed on an identical run")
	}

	slow := base
	slow.StatesPerSec = base.StatesPerSec * 0.5
	slowRep := benchfmt.NewReport()
	slowRep.Entries = []benchfmt.Entry{slow}
	if compareAgainst(path, &slowRep, 25, nil) {
		t.Fatal("gate passed a 50% states/sec regression")
	}

	// Below the floor the entry is informational: no gate failure.
	floorBase := base
	floorBase.Name = "E2/tiny/d=0"
	floorBase.NsPerOp = gateFloorNs / 2
	path2 := writeBaseline(t, []benchfmt.Entry{floorBase})
	floorSlow := floorBase
	floorSlow.StatesPerSec = floorBase.StatesPerSec * 0.5
	floorRep := benchfmt.NewReport()
	floorRep.Entries = []benchfmt.Entry{floorSlow}
	if !compareAgainst(path2, &floorRep, 25, nil) {
		t.Fatal("gate failed on a sub-floor informational entry")
	}
}

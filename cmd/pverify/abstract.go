package main

import (
	"encoding/json"
	"fmt"
	"os"

	"pgo/internal/abstract"
	"pgo/internal/analysis"
	"pgo/internal/check"
	"pgo/internal/cmdutil"
	"pgo/internal/ir"
)

// runAbstract is the -abstract path: instead of exploring a closed instance,
// it runs the counter-abstraction coverability analysis (internal/abstract),
// which decides assertion and unhandled-event safety for every instance
// count. Abstract counterexamples are replayed concretely through the
// ordinary explorer to confirm them or mark them possibly spurious; the
// exit status is 1 only for a replay-confirmed counterexample (an abstract
// one alone is a warning, not a verdict — the abstraction over-approximates).
func runAbstract(name string, prog *ir.Program, jsonOut, traces bool, maxMarkings int) {
	rep := analysis.Analyze(prog)
	res := abstract.Analyze(prog, abstract.Options{Facts: rep, MaxMarkings: maxMarkings})

	statuses := make([]abstract.ReplayStatus, len(res.Errors))
	var replayRes *check.Result
	if res.Verdict == abstract.VerdictCounterexample {
		sigs := make([]check.AbsSignature, len(res.Errors))
		for i, ae := range res.Errors {
			sigs[i] = check.AbsSignature{Kind: ae.Kind, Type: ae.Machine, Event: ae.Event}
		}
		hits, rres, err := check.ReplaySignatures(prog, sigs, check.DefaultReplayOptions())
		if err != nil {
			fmt.Fprintf(os.Stderr, "pverify: abstract replay: %v\n", err)
		} else {
			replayRes = rres
			for i, hit := range hits {
				if hit {
					statuses[i] = abstract.ReplayConfirmed
				} else {
					statuses[i] = abstract.ReplaySpurious
				}
			}
		}
	}
	findings := res.FindingsWithReplay(statuses)

	confirmed := 0
	for _, s := range statuses {
		if s == abstract.ReplayConfirmed {
			confirmed++
		}
	}

	if jsonOut {
		emitAbstractJSON(name, res, statuses, replayRes, findings, confirmed)
	} else {
		printAbstract(name, res, statuses, replayRes, findings, traces)
	}
	if confirmed > 0 {
		os.Exit(1)
	}
}

func printAbstract(name string, res *abstract.Result, statuses []abstract.ReplayStatus,
	replayRes *check.Result, findings []analysis.Finding, traces bool) {

	singles, counted := 0, 0
	for _, c := range res.Classes {
		if c.Singleton {
			singles++
		} else {
			counted++
		}
	}
	fmt.Printf("%s: abstract coverability: %s — %d markings (%d POR-reduced), %d places, %d singleton + %d counted classes, %v\n",
		name, res.Verdict, res.Markings, res.Reduced, res.Places, singles, counted, res.Elapsed.Round(1_000_000))
	if res.Unsupported != "" {
		fmt.Printf("  unsupported: %s\n", res.Unsupported)
	}
	if res.Truncated {
		fmt.Println("  (budget exhausted: nothing is proven)")
	}
	for _, f := range findings {
		fmt.Printf("  %s\n", f)
	}
	if replayRes != nil {
		trunc := ""
		if replayRes.Stats.Truncated {
			trunc = ", truncated"
		}
		fmt.Printf("  replay: %d distinct concrete states, %d violations%s\n",
			replayRes.Stats.DistinctStates, len(replayRes.Violations), trunc)
	}
	if traces {
		for i, ae := range res.Errors {
			fmt.Printf("abstract trace (%s, %s):\n", ae.Message, statuses[i])
			for _, step := range ae.Trace {
				fmt.Printf("  %s\n", step)
			}
		}
	}
}

// jsonAbstractReport is the -abstract -json schema: the `abstract` block
// carries the coverability outcome (verdict, basis size, marking count), and
// `analysis` renders the same outcome as stable-coded P4xx findings.
type jsonAbstractReport struct {
	Program  string                 `json:"program"`
	Abstract jsonAbstract           `json:"abstract"`
	Analysis []analysis.JSONFinding `json:"analysis"`
	OK       bool                   `json:"ok"`
}

type jsonAbstract struct {
	Verdict     string         `json:"verdict"`
	Unsupported string         `json:"unsupported,omitempty"`
	Truncated   bool           `json:"truncated"`
	Markings    int            `json:"markings"`
	Reduced     int            `json:"reduced"`
	Places      int            `json:"places"`
	ElapsedMS   int64          `json:"elapsed_ms"`
	Classes     []jsonAbsClass `json:"classes"`
	Errors      []jsonAbsError `json:"errors"`
	Omegas      []jsonAbsOmega `json:"omegas"`
	Replay      *jsonAbsReplay `json:"replay,omitempty"`
}

type jsonAbsClass struct {
	Name      string `json:"name"`
	Machine   string `json:"machine"`
	Singleton bool   `json:"singleton"`
}

type jsonAbsError struct {
	Kind     string   `json:"kind"`
	Machine  string   `json:"machine"`
	State    string   `json:"state,omitempty"`
	Event    string   `json:"event,omitempty"`
	Message  string   `json:"message"`
	Definite bool     `json:"definite"`
	Replay   string   `json:"replay"`
	Trace    []string `json:"trace"`
}

type jsonAbsOmega struct {
	Class string `json:"class"`
	Event string `json:"event"`
}

type jsonAbsReplay struct {
	DistinctStates int  `json:"distinct_states"`
	Violations     int  `json:"violations"`
	Truncated      bool `json:"truncated"`
}

func emitAbstractJSON(name string, res *abstract.Result, statuses []abstract.ReplayStatus,
	replayRes *check.Result, findings []analysis.Finding, confirmed int) {

	ab := jsonAbstract{
		Verdict:     res.Verdict.String(),
		Unsupported: res.Unsupported,
		Truncated:   res.Truncated,
		Markings:    res.Markings,
		Reduced:     res.Reduced,
		Places:      res.Places,
		ElapsedMS:   res.Elapsed.Milliseconds(),
		Classes:     []jsonAbsClass{},
		Errors:      []jsonAbsError{},
		Omegas:      []jsonAbsOmega{},
	}
	for _, c := range res.Classes {
		ab.Classes = append(ab.Classes, jsonAbsClass(c))
	}
	for i, ae := range res.Errors {
		ab.Errors = append(ab.Errors, jsonAbsError{
			Kind: ae.Kind.String(), Machine: ae.Machine, State: ae.State,
			Event: ae.Event, Message: ae.Message, Definite: ae.Definite,
			Replay: statuses[i].String(), Trace: ae.Trace,
		})
	}
	for _, oq := range res.Omegas {
		ab.Omegas = append(ab.Omegas, jsonAbsOmega(oq))
	}
	if replayRes != nil {
		ab.Replay = &jsonAbsReplay{
			DistinctStates: replayRes.Stats.DistinctStates,
			Violations:     len(replayRes.Violations),
			Truncated:      replayRes.Stats.Truncated,
		}
	}
	rep := jsonAbstractReport{
		Program:  name,
		Abstract: ab,
		Analysis: analysis.FindingsJSON(findings),
		OK:       confirmed == 0 && res.Verdict != abstract.VerdictUnsupported,
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		cmdutil.Fatalf("pverify: %v", err)
	}
}

package main

import (
	"encoding/json"
	"fmt"
	"os"

	"pgo/internal/cmdutil"
	"pgo/internal/psamples"
	"pgo/internal/verdict"
)

// runExpect is the -expect path: instead of verifying one program under one
// configuration, it evaluates the pinned corpus verdict matrix
// (psamples.Matrix()) — every listed sample under every verification mode —
// and diffs the outcomes. Arguments select matrix samples by name; with no
// arguments the whole matrix runs. The exit status is 1 when any cell
// disagrees with its pinned verdict, so CI can gate on verdict drift.
//
// -json switches the report to machine-readable rows; -expect-summary FILE
// appends a GitHub-flavored markdown table to FILE (pass
// "$GITHUB_STEP_SUMMARY" in CI).
func runExpect(args []string, jsonOut bool, summaryPath string) {
	exps := psamples.Matrix()
	if len(args) > 0 {
		var picked []psamples.Expectation
		for _, name := range args {
			e, ok := psamples.ExpectationFor(name)
			if !ok {
				cmdutil.Fatalf("pverify: -expect: no matrix row for %q", name)
			}
			picked = append(picked, e)
		}
		exps = picked
	}

	var rows []verdict.Row
	bad := false
	for _, e := range exps {
		row, err := verdict.Evaluate(e)
		if err != nil {
			cmdutil.Fatalf("pverify: -expect: %v", err)
		}
		rows = append(rows, row)
		if !row.OK() {
			bad = true
		}
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Rows []verdict.Row `json:"rows"`
			OK   bool          `json:"ok"`
		}{rows, !bad}); err != nil {
			cmdutil.Fatalf("pverify: %v", err)
		}
	} else {
		fmt.Print(verdict.Text(rows))
		for _, r := range rows {
			for _, m := range r.Mismatches() {
				fmt.Printf("MISMATCH: %s\n", m)
			}
		}
		if !bad {
			fmt.Printf("verdict matrix: %d sample(s), all cells match\n", len(rows))
		}
	}

	if summaryPath != "" {
		f, err := os.OpenFile(summaryPath, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			cmdutil.Fatalf("pverify: -expect-summary: %v", err)
		}
		header := "## Corpus verdict matrix\n\n"
		status := fmt.Sprintf("\n%d sample(s), all cells match ✅\n", len(rows))
		if bad {
			status = "\n⚠️ verdict drift detected — see MISMATCH lines in the job log\n"
		}
		if _, err := fmt.Fprintf(f, "%s%s%s", header, verdict.Markdown(rows), status); err != nil {
			cmdutil.Fatalf("pverify: -expect-summary: %v", err)
		}
		if err := f.Close(); err != nil {
			cmdutil.Fatalf("pverify: -expect-summary: %v", err)
		}
	}

	if bad {
		os.Exit(1)
	}
}

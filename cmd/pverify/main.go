// pverify is the systematic-testing tool for P programs (the role Zing
// plays in the paper): it closes the program with its ghost environment and
// explores the operational semantics with depth-bounded or delay-bounded
// search, reporting safety violations (unhandled events, assertion failures,
// sends to null/deleted machines), and optionally the liveness checks of
// §3.2 on the explored state graph.
//
// Large searches can run disk-backed and resumable: -store-dir names a run
// directory whose tiered visited store spills to chunk files when the
// per-shard memory cap (-store-mem) fills, -checkpoint-every and a first
// SIGINT suspend the search into that directory (exit code 3), and
// `pverify -resume <dir>` picks it up where it left off — the run directory
// records the program and the semantic flags, so no other arguments are
// needed.
//
// Usage:
//
//	pverify [flags] <file.p | sample:NAME | ->
//	pverify -resume <dir> [knob flags]
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sync/atomic"

	"pgo/internal/analysis"
	"pgo/internal/check"
	"pgo/internal/cmdutil"
	"pgo/internal/compile"
	"pgo/internal/ir"
	"pgo/internal/live"
	"pgo/internal/store"
	"pgo/internal/trace"
)

func main() {
	var (
		mode      = flag.String("mode", "delay", "bounding strategy: delay, depth, or rr (round-robin ablation)")
		bound     = flag.Int("bound", 2, "delay budget or depth bound")
		maxStates = flag.Int("max-states", 5_000_000, "stop after this many distinct states (0 = unlimited)")
		firstOnly = flag.Bool("first", true, "stop at the first violation")
		liveness  = flag.Bool("liveness", false, "run the liveness checks on the explored graph")
		ghostLive = flag.Bool("liveness-ghost", false, "apply liveness property 1 to ghost machines too")
		traces    = flag.Bool("trace", false, "print the reproducing schedule of each violation")
		workers   = flag.Int("workers", 1, "parallel search workers (delay mode; -1 = all cores)")
		exactFP   = flag.Bool("exact-fp", false, "key visited sets by exact canonical state encodings instead of 128-bit hashes (collision-free auditing mode; slower, more memory)")
		por       = flag.Bool("por", true, "prune commuting interleavings with partial-order reduction (verdict-preserving; composes with -chaos via an environment-machine fault model and with -liveness/-coverage via the C3 cycle proviso)")
		sweep     = flag.Int("sweep", -1, "sweep bounds 0..N and print the states-vs-bound series (Figure 7)")
		jsonOut   = flag.Bool("json", false, "emit a machine-readable JSON report instead of text")
		coverage  = flag.Bool("coverage", false, "report per-machine control states the exploration never visited (implies graph collection)")
		allViol   = flag.Int("max-violations", 20, "print at most this many violations")
		noAnalyze = flag.Bool("no-analyze", false, "skip the IR-level static analysis that runs before exploration")
		chaos     = flag.Bool("chaos", false, "inject environment faults (crash, drop, dup) during exploration; defaults the fault budget to 1")
		faults    = flag.Int("faults", -1, "fault budget: max injected faults along one schedule (implies -chaos; 0 disables)")
		faultKind = flag.String("fault-kinds", "all", "comma-separated fault kinds to inject: crash, drop, dup, or all")

		storeDir    = flag.String("store-dir", "", "run directory for the disk-backed visited store (enables spill-to-disk; required for checkpoints)")
		storeMem    = flag.Int("store-mem", 0, "resident entries per visited-store shard before spilling to chunk files (0 = default)")
		storeShards = flag.Int("store-shards", 0, "visited-store shard count, fixed for the life of a run directory (0 = default)")
		ckptEvery   = flag.Int("checkpoint-every", 0, "write a checkpoint every N distinct states (requires -store-dir)")
		ckptStop    = flag.Int("checkpoint-stop", 0, "checkpoint and suspend once N distinct states are reached — exit code 3 (requires -store-dir)")
		resumeDir   = flag.String("resume", "", "resume a checkpointed run from this run directory (takes no program argument)")
		progress    = flag.Int("progress", 0, "print a live distinct-state counter to stderr every N states (0 = off)")

		abstractMode = flag.Bool("abstract", false, "run the parameterized counter-abstraction coverability analysis (P401/P402/P403) instead of explicit-state exploration; abstract counterexamples are confirmed by concrete replay")
		absMarkings  = flag.Int("abstract-markings", 0, "marking budget for -abstract (0 = default)")

		expectMode    = flag.Bool("expect", false, "evaluate the corpus verdict matrix (optionally restricted to the named samples) and diff every cell against internal/psamples/expectations.go; exit 1 on drift")
		expectSummary = flag.String("expect-summary", "", "with -expect, append a markdown verdict matrix to this file (pass $GITHUB_STEP_SUMMARY in CI)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pverify [flags] <file.p | sample:NAME | ->\n       pverify -resume <dir> [knob flags]\n\nsamples: %s\n\nflags:\n", cmdutil.SampleNames())
		flag.PrintDefaults()
	}
	flag.Parse()

	if *expectMode {
		runExpect(flag.Args(), *jsonOut, *expectSummary)
		return
	}
	if *resumeDir != "" {
		if flag.NArg() != 0 {
			cmdutil.Fatalf("pverify: -resume takes no program argument (the run directory records the program)")
		}
		if *sweep >= 0 || *liveness || *coverage || *abstractMode {
			cmdutil.Fatalf("pverify: -resume is incompatible with -sweep, -liveness, -coverage, and -abstract")
		}
		runResume(*resumeDir, resumeKnobs{
			maxStates: *maxStates, workers: *workers, storeMem: *storeMem,
			ckptEvery: *ckptEvery, ckptStop: *ckptStop, progress: *progress,
			jsonOut: *jsonOut, traces: *traces, allViol: *allViol, noAnalyze: *noAnalyze,
		})
		return
	}
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if *storeDir == "" && (*ckptEvery > 0 || *ckptStop > 0) {
		cmdutil.Fatalf("pverify: -checkpoint-every and -checkpoint-stop require -store-dir")
	}
	name, src, err := cmdutil.LoadSource(flag.Arg(0))
	if err != nil {
		cmdutil.Fatalf("pverify: %v", err)
	}
	prog, diags, err := compile.Source(name, src)
	for _, d := range diags.All() {
		fmt.Fprintln(os.Stderr, d)
	}
	if err != nil {
		os.Exit(1)
	}

	if *abstractMode {
		if *sweep >= 0 || *liveness || *coverage || *chaos || *faults > 0 || *storeDir != "" {
			cmdutil.Fatalf("pverify: -abstract is incompatible with -sweep, -liveness, -coverage, -chaos, -faults, and -store-dir")
		}
		runAbstract(name, prog, *jsonOut, *traces, *absMarkings)
		return
	}

	// Static analysis runs before exploration: its predictions frame what
	// the search then confirms or refutes. Error-severity findings fail the
	// run even if the bounded search happens not to reach the defect.
	findings, analysisBad := analyze(prog, *noAnalyze)

	// -chaos without -faults means a budget of 1; a positive -faults implies
	// chaos on its own.
	budget := 0
	if *faults > 0 {
		budget = *faults
	} else if *chaos && *faults != 0 {
		budget = 1
	}
	var kinds check.FaultSet
	if budget > 0 {
		var kerr error
		kinds, kerr = check.ParseFaultSet(*faultKind)
		if kerr != nil {
			cmdutil.Fatalf("pverify: -fault-kinds: %v", kerr)
		}
	}

	opts := check.Options{
		Bound:             *bound,
		MaxStates:         *maxStates,
		StopAtFirstError:  *firstOnly,
		CollectGraph:      *liveness || *coverage,
		ExactFingerprints: *exactFP,
		Faults:            budget,
		FaultKinds:        kinds,
		StoreDir:          *storeDir,
		StoreMemPerShard:  *storeMem,
		StoreShards:       *storeShards,
		CheckpointEvery:   *ckptEvery,
		CheckpointStop:    *ckptStop,
		ProgramID:         sourceID(src),
	}
	opts.POR = *por
	opts.Workers = *workers
	opts.Mode, err = parseMode(*mode)
	if err != nil {
		cmdutil.Fatalf("pverify: %v", err)
	}
	wireProgress(&opts, *progress)

	if *sweep >= 0 {
		series, err := check.Sweep(prog, opts, *sweep, 0)
		if err != nil {
			cmdutil.Fatalf("pverify: %v", err)
		}
		fmt.Printf("%s: %s sweep 0..%d\n", name, opts.Mode, *sweep)
		fmt.Printf("  %6s %12s %12s %6s %10s\n", "bound", "states", "transitions", "viol", "time")
		for _, pt := range series {
			trunc := ""
			if pt.Truncated {
				trunc = " (truncated)"
			}
			fmt.Printf("  %6d %12d %12d %6d %10v%s\n", pt.Bound, pt.States, pt.Transitions, pt.Violations, pt.Elapsed.Round(1_000_000), trunc)
		}
		if check.Saturated(series) {
			fmt.Println("  series saturated: the last bound exposed no new states")
		}
		return
	}

	if *storeDir != "" {
		if err := writeRunInfo(*storeDir, flag.Arg(0), name, src, opts); err != nil {
			cmdutil.Fatalf("pverify: %v", err)
		}
		wireInterrupt(&opts)
	}

	res, err := check.Explore(prog, opts)
	if err != nil {
		cmdutil.Fatalf("pverify: %v", err)
	}

	report(reportInput{
		name: name, prog: prog, opts: opts, res: res,
		findings: findings, analysisBad: analysisBad,
		jsonOut: *jsonOut, traces: *traces, allViol: *allViol,
		liveness: *liveness, ghostLive: *ghostLive, coverage: *coverage,
		porReason: porNotice(opts),
	})
}

// porNotice surfaces a POR request the explorer force-disabled: a one-line
// stderr notice so the reduced run the user asked for is visibly unreduced,
// and the reason string for the JSON report's por_disabled_reason field
// ("" when reduction is off by choice or actually running).
func porNotice(opts check.Options) string {
	if !opts.POR {
		return ""
	}
	reason := opts.PORDisabledReason()
	if reason != "" {
		fmt.Fprintf(os.Stderr, "pverify: note: -por requested but partial-order reduction is disabled: %s\n", reason)
	}
	return reason
}

func parseMode(s string) (check.Mode, error) {
	switch s {
	case "delay":
		return check.DelayBounded, nil
	case "depth":
		return check.DepthBounded, nil
	case "rr":
		return check.RoundRobinDelay, nil
	}
	return 0, fmt.Errorf("unknown mode %q (want delay, depth, or rr)", s)
}

// modeFlag is the inverse of parseMode: the CLI spelling recorded in
// run.json (Mode.String() is the longer display form).
func modeFlag(m check.Mode) string {
	switch m {
	case check.DepthBounded:
		return "depth"
	case check.RoundRobinDelay:
		return "rr"
	}
	return "delay"
}

func analyze(prog *ir.Program, skip bool) ([]analysis.Finding, bool) {
	if skip {
		return nil, false
	}
	findings := analysis.Analyze(prog).Findings
	bad := false
	for _, f := range findings {
		if f.Severity == analysis.SevInfo {
			continue
		}
		fmt.Fprintf(os.Stderr, "analysis: %s\n", f)
		if f.Severity == analysis.SevError {
			bad = true
		}
	}
	return findings, bad
}

// sourceID is the program identity recorded in checkpoints and run.json: a
// checkpoint only resumes against the byte-identical source.
func sourceID(src string) string {
	sum := sha256.Sum256([]byte(src))
	return "sha256:" + hex.EncodeToString(sum[:])
}

// wireProgress installs the -progress live counter.
func wireProgress(opts *check.Options, every int) {
	if every <= 0 {
		return
	}
	opts.ProgressEvery = every
	opts.Progress = func(n int) { fmt.Fprintf(os.Stderr, "pverify: %d distinct states\n", n) }
}

// wireInterrupt arms checkpoint-on-SIGINT: the first interrupt requests a
// checkpoint at the next search step (the run then suspends with exit code
// 3), a second interrupt kills the process normally.
func wireInterrupt(opts *check.Options) {
	var requested atomic.Bool
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	go func() {
		<-ch
		fmt.Fprintln(os.Stderr, "pverify: interrupt — checkpointing (interrupt again to kill)")
		requested.Store(true)
		signal.Stop(ch)
	}()
	opts.CheckpointRequest = func() bool { return requested.Load() }
}

// runInfo is the run.json schema written into a -store-dir run directory.
// It records everything `pverify -resume <dir>` needs: the program source
// itself (so resume does not depend on the original file still existing, or
// on stdin being replayable) and the semantic flags of the original run.
// Knob flags — workers, memory caps, -max-states, checkpoint cadence — are
// deliberately absent: the resuming session sets its own.
type runInfo struct {
	Format       string `json:"format"`
	Program      string `json:"program"` // the original CLI argument, for display
	ProgramName  string `json:"program_name"`
	SourceSHA256 string `json:"source_sha256"`
	Source       string `json:"source"`
	Mode         string `json:"mode"`
	Bound        int    `json:"bound"`
	First        bool   `json:"stop_at_first_error"`
	ExactFP      bool   `json:"exact_fp"`
	POR          bool   `json:"por"`
	Faults       int    `json:"faults"`
	FaultKinds   string `json:"fault_kinds"`
	StoreShards  int    `json:"store_shards"`
}

const runInfoFormat = "pverify-run/1"

func runInfoPath(dir string) string { return filepath.Join(dir, "run.json") }

func writeRunInfo(dir, arg, name, src string, opts check.Options) error {
	if _, err := os.Stat(runInfoPath(dir)); err == nil {
		return fmt.Errorf("run directory %s already holds a run (its visited store would corrupt a fresh search); resume it with -resume %s or use a fresh directory", dir, dir)
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return err
	}
	kinds := ""
	if opts.Faults > 0 {
		kinds = opts.FaultKinds.String()
	}
	ri := runInfo{
		Format:       runInfoFormat,
		Program:      arg,
		ProgramName:  name,
		SourceSHA256: sourceID(src),
		Source:       src,
		Mode:         modeFlag(opts.Mode),
		Bound:        opts.Bound,
		First:        opts.StopAtFirstError,
		ExactFP:      opts.ExactFingerprints,
		POR:          opts.POR,
		Faults:       opts.Faults,
		FaultKinds:   kinds,
		StoreShards:  opts.StoreShards,
	}
	b, err := json.MarshalIndent(ri, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(runInfoPath(dir), append(b, '\n'), 0o666)
}

func readRunInfo(dir string) (*runInfo, error) {
	b, err := os.ReadFile(runInfoPath(dir))
	if err != nil {
		return nil, fmt.Errorf("reading run directory: %w", err)
	}
	var ri runInfo
	if err := json.Unmarshal(b, &ri); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", runInfoPath(dir), err)
	}
	if ri.Format != runInfoFormat {
		return nil, fmt.Errorf("%s: run format %q not supported (want %q)", runInfoPath(dir), ri.Format, runInfoFormat)
	}
	return &ri, nil
}

// resumeKnobs are the flags a resuming session may set freely; the semantic
// flags come from run.json and may not be changed (explicitly setting one to
// a conflicting value is an error, matching check.Resume's manifest check).
type resumeKnobs struct {
	maxStates, workers, storeMem int
	ckptEvery, ckptStop          int
	progress, allViol            int
	jsonOut, traces, noAnalyze   bool
}

func runResume(dir string, knobs resumeKnobs) {
	ri, err := readRunInfo(dir)
	if err != nil {
		cmdutil.Fatalf("pverify: %v", err)
	}
	prog, diags, err := compile.Source(ri.ProgramName, ri.Source)
	for _, d := range diags.All() {
		fmt.Fprintln(os.Stderr, d)
	}
	if err != nil {
		os.Exit(1)
	}
	findings, analysisBad := analyze(prog, knobs.noAnalyze)

	var kinds check.FaultSet
	if ri.Faults > 0 {
		kinds, err = check.ParseFaultSet(ri.FaultKinds)
		if err != nil {
			cmdutil.Fatalf("pverify: %s records fault kinds %q: %v", runInfoPath(dir), ri.FaultKinds, err)
		}
	}
	opts := check.Options{
		MaxStates:         knobs.maxStates,
		Bound:             ri.Bound,
		StopAtFirstError:  ri.First,
		ExactFingerprints: ri.ExactFP,
		POR:               ri.POR,
		Faults:            ri.Faults,
		FaultKinds:        kinds,
		Workers:           knobs.workers,
		StoreDir:          dir,
		StoreMemPerShard:  knobs.storeMem,
		StoreShards:       ri.StoreShards,
		CheckpointEvery:   knobs.ckptEvery,
		CheckpointStop:    knobs.ckptStop,
		ProgramID:         sourceID(ri.Source),
	}
	opts.Mode, err = parseMode(ri.Mode)
	if err != nil {
		cmdutil.Fatalf("pverify: %s: %v", runInfoPath(dir), err)
	}
	checkSemanticFlags(ri)
	wireProgress(&opts, knobs.progress)
	wireInterrupt(&opts)

	res, err := check.Resume(prog, opts)
	if err != nil {
		cmdutil.Fatalf("pverify: %v", err)
	}
	report(reportInput{
		name: ri.ProgramName, prog: prog, opts: opts, res: res,
		findings: findings, analysisBad: analysisBad,
		jsonOut: knobs.jsonOut, traces: knobs.traces, allViol: knobs.allViol,
		porReason: porNotice(opts),
	})
}

// checkSemanticFlags rejects semantic flags explicitly set on the -resume
// command line to values conflicting with the run directory's record.
// Restating the recorded value is allowed.
func checkSemanticFlags(ri *runInfo) {
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	conflict := func(name string, got, want any) {
		if set[name] && got != want {
			cmdutil.Fatalf("pverify: -%s=%v conflicts with the run directory (recorded %v); semantic flags cannot change on resume", name, got, want)
		}
	}
	conflict("mode", flag.Lookup("mode").Value.String(), ri.Mode)
	conflict("bound", flag.Lookup("bound").Value.String(), fmt.Sprint(ri.Bound))
	conflict("first", flag.Lookup("first").Value.String(), fmt.Sprint(ri.First))
	conflict("exact-fp", flag.Lookup("exact-fp").Value.String(), fmt.Sprint(ri.ExactFP))
	conflict("por", flag.Lookup("por").Value.String(), fmt.Sprint(ri.POR))
	conflict("faults", flag.Lookup("faults").Value.String(), fmt.Sprint(ri.Faults))
	conflict("chaos", flag.Lookup("chaos").Value.String(), fmt.Sprint(ri.Faults > 0))
	if ri.Faults > 0 {
		conflict("fault-kinds", flag.Lookup("fault-kinds").Value.String(), ri.FaultKinds)
	}
	conflict("store-shards", flag.Lookup("store-shards").Value.String(), fmt.Sprint(ri.StoreShards))
}

// reportInput carries one finished (or suspended) run to the reporters.
type reportInput struct {
	name        string
	prog        *ir.Program
	opts        check.Options
	res         *check.Result
	findings    []analysis.Finding
	analysisBad bool
	jsonOut     bool
	traces      bool
	allViol     int
	liveness    bool
	ghostLive   bool
	coverage    bool
	// porReason is the non-empty PORDisabledReason when -por was requested
	// but the explorer force-disabled the reduction.
	porReason string
}

// report prints the run in text or JSON form and exits: 0 clean, 1 on
// violations or analysis errors, 3 when the search suspended at a
// checkpoint (the run is incomplete — no verdict either way).
func report(in reportInput) {
	if in.res.StoreErr != nil {
		fmt.Fprintf(os.Stderr, "pverify: warning: visited store degraded (deduplication may be incomplete): %v\n", in.res.StoreErr)
	}
	if in.jsonOut {
		emitJSON(in)
		return
	}

	res, opts := in.res, in.opts
	st := res.Stats
	fmt.Printf("%s: %s bound %d: %d distinct states, %d transitions, %d search nodes, max depth %d, %d quiescent, %v\n",
		in.name, opts.Mode, opts.Bound, st.DistinctStates, st.Transitions, st.SearchNodes, st.MaxDepth, st.Quiescent, st.Elapsed.Round(1_000_000))
	if st.ReducedStates > 0 {
		fmt.Printf("  por: %d nodes reduced to a single machine, %d schedule options pruned\n", st.ReducedStates, st.AmpleSkips)
	}
	if opts.Faults > 0 {
		fmt.Printf("  chaos: fault budget %d (kinds %s), %d fault steps\n", opts.Faults, opts.FaultKinds, st.FaultSteps)
	}
	if s := res.StoreStats; s != nil {
		fmt.Printf("  store: %d shards, %d resident + %d spilled entries, %d chunks, %d bytes on disk\n",
			s.Shards, s.MemEntries, s.SpilledEntries, s.Chunks, s.DiskBytes)
	}
	if st.Truncated {
		fmt.Println("  (search truncated)")
	}

	bad := false
	for i, v := range res.Violations {
		if i >= in.allViol {
			fmt.Printf("  ... and %d more violations\n", len(res.Violations)-i)
			break
		}
		bad = true
		fmt.Printf("VIOLATION: %v\n", v.Err)
		if in.traces {
			if err := trace.Render(in.prog, &v, os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "pverify: rendering trace: %v\n", err)
			}
		}
	}

	if in.coverage {
		cov := check.CoverageOf(in.prog, res.Graph)
		for _, m := range in.prog.Machines {
			if m.Ghost {
				continue
			}
			if !cov.Instantiated[m.ID] {
				fmt.Printf("coverage: machine %s never instantiated\n", m.Name)
				continue
			}
			unvisited := cov.Unvisited(in.prog, m.ID)
			if len(unvisited) == 0 {
				fmt.Printf("coverage: machine %s: all %d states visited\n", m.Name, len(m.States))
				continue
			}
			fmt.Printf("coverage: machine %s: %d of %d states never visited:", m.Name, len(unvisited), len(m.States))
			for _, s := range unvisited {
				fmt.Printf(" %s", m.States[s].Name)
			}
			fmt.Println()
		}
	}

	if in.liveness {
		vs := live.Check(in.prog, res.Graph, live.Options{IncludeGhost: in.ghostLive})
		for _, v := range vs {
			bad = true
			fmt.Printf("VIOLATION: %v\n", v)
		}
		if len(vs) == 0 {
			fmt.Println("liveness: no violations on the explored graph")
		}
	}

	if res.Checkpointed {
		fmt.Printf("search suspended at a checkpoint (%d violations so far); resume with: pverify -resume %s\n",
			len(res.Violations), opts.StoreDir)
		os.Exit(3)
	}
	if bad || in.analysisBad {
		os.Exit(1)
	}
	fmt.Println("no safety violations")
}

// jsonReport is the machine-readable result schema of -json. The top-level
// mode/bound/faults/fault_kinds fields predate the options block and are kept
// for compatibility; options is the authoritative record of the explorer
// configuration and is always emitted in full, so a clean run and a chaos run
// produce reports with the same shape.
type jsonReport struct {
	Program      string                 `json:"program"`
	Mode         string                 `json:"mode"`
	Bound        int                    `json:"bound"`
	Faults       int                    `json:"faults"`
	FaultKinds   string                 `json:"fault_kinds"`
	Options      jsonOptions            `json:"options"`
	Analysis     []analysis.JSONFinding `json:"analysis,omitempty"`
	Stats        jsonStats              `json:"stats"`
	VisitedStore *store.Stats           `json:"visited_store,omitempty"`
	Checkpointed bool                   `json:"checkpointed"`
	StoreError   string                 `json:"store_error,omitempty"`
	Violations   []jsonViolation        `json:"violations"`
	Liveness     []string               `json:"liveness,omitempty"`
	OK           bool                   `json:"ok"`
}

// jsonOptions mirrors check.Options as resolved for the run — every field is
// always present, with no omitempty, so consumers can diff configurations
// across reports without guessing at defaults.
type jsonOptions struct {
	Mode              string `json:"mode"`
	Bound             int    `json:"bound"`
	MaxStates         int    `json:"max_states"`
	StopAtFirstError  bool   `json:"stop_at_first_error"`
	Workers           int    `json:"workers"`
	ExactFingerprints bool   `json:"exact_fp"`
	POR               bool   `json:"por"`
	// PORDisabledReason is non-empty when POR was requested but the explorer
	// force-disabled the reduction (the run explored unreduced); "" means
	// the POR field tells the whole story.
	PORDisabledReason string `json:"por_disabled_reason"`
	Faults            int    `json:"faults"`
	FaultKinds        string `json:"fault_kinds"`
	StoreDir          string `json:"store_dir"`
	StoreShards       int    `json:"store_shards"`
}

type jsonStats struct {
	DistinctStates int   `json:"distinct_states"`
	Transitions    int   `json:"transitions"`
	SearchNodes    int   `json:"search_nodes"`
	FaultSteps     int   `json:"fault_steps,omitempty"`
	ReducedStates  int   `json:"reduced_states"`
	AmpleSkips     int   `json:"ample_skips"`
	MaxDepth       int   `json:"max_depth"`
	Quiescent      int   `json:"quiescent"`
	Truncated      bool  `json:"truncated"`
	ElapsedMS      int64 `json:"elapsed_ms"`
}

type jsonViolation struct {
	Kind     string     `json:"kind"`
	Message  string     `json:"message"`
	Schedule []jsonStep `json:"schedule"`
}

type jsonStep struct {
	Machine int    `json:"machine"`
	Type    string `json:"type"`
	Delays  int    `json:"delays,omitempty"`
	Choices []bool `json:"choices,omitempty"`
	Outcome string `json:"outcome"`
	Event   string `json:"event,omitempty"`
	Fault   string `json:"fault,omitempty"` // crash, drop, or dup on injected-fault steps
}

func emitJSON(in reportInput) {
	opts, res := in.opts, in.res
	faultKinds := ""
	if opts.Faults > 0 {
		faultKinds = opts.FaultKinds.String()
	}
	rep := jsonReport{
		Program:    in.name,
		Mode:       opts.Mode.String(),
		Bound:      opts.Bound,
		Faults:     opts.Faults,
		FaultKinds: faultKinds,
		Options: jsonOptions{
			Mode:              opts.Mode.String(),
			Bound:             opts.Bound,
			MaxStates:         opts.MaxStates,
			StopAtFirstError:  opts.StopAtFirstError,
			Workers:           opts.Workers,
			ExactFingerprints: opts.ExactFingerprints,
			POR:               opts.POR,
			PORDisabledReason: in.porReason,
			Faults:            opts.Faults,
			FaultKinds:        faultKinds,
			StoreDir:          opts.StoreDir,
			StoreShards:       opts.StoreShards,
		},
		Analysis: analysis.FindingsJSON(in.findings),
		Stats: jsonStats{
			DistinctStates: res.Stats.DistinctStates,
			Transitions:    res.Stats.Transitions,
			SearchNodes:    res.Stats.SearchNodes,
			FaultSteps:     res.Stats.FaultSteps,
			ReducedStates:  res.Stats.ReducedStates,
			AmpleSkips:     res.Stats.AmpleSkips,
			MaxDepth:       res.Stats.MaxDepth,
			Quiescent:      res.Stats.Quiescent,
			Truncated:      res.Stats.Truncated,
			ElapsedMS:      res.Stats.Elapsed.Milliseconds(),
		},
		VisitedStore: res.StoreStats,
		Checkpointed: res.Checkpointed,
		Violations:   []jsonViolation{},
	}
	if res.StoreErr != nil {
		rep.StoreError = res.StoreErr.Error()
	}
	for _, v := range res.Violations {
		jv := jsonViolation{Kind: v.Err.Kind.String(), Message: v.Err.Error()}
		for _, s := range v.Trace {
			step := jsonStep{
				Machine: int(s.Machine),
				Type:    s.Type,
				Delays:  s.Delays,
				Choices: s.Choices,
				Outcome: s.Outcome.String(),
			}
			if s.Fault != check.FaultNone {
				step.Outcome = "fault"
				step.Fault = s.Fault.String()
				step.Delays = 0
			}
			if s.HasEv {
				step.Event = in.prog.Events[s.Event].Name
			}
			jv.Schedule = append(jv.Schedule, step)
		}
		rep.Violations = append(rep.Violations, jv)
	}
	if in.liveness {
		for _, v := range live.Check(in.prog, res.Graph, live.Options{IncludeGhost: in.ghostLive}) {
			rep.Liveness = append(rep.Liveness, v.String())
		}
	}
	rep.OK = len(rep.Violations) == 0 && len(rep.Liveness) == 0 && !in.analysisBad && !rep.Checkpointed
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		cmdutil.Fatalf("pverify: %v", err)
	}
	switch {
	case rep.Checkpointed:
		os.Exit(3)
	case !rep.OK:
		os.Exit(1)
	}
}

// pverify is the systematic-testing tool for P programs (the role Zing
// plays in the paper): it closes the program with its ghost environment and
// explores the operational semantics with depth-bounded or delay-bounded
// search, reporting safety violations (unhandled events, assertion failures,
// sends to null/deleted machines), and optionally the liveness checks of
// §3.2 on the explored state graph.
//
// Usage:
//
//	pverify [flags] <file.p | sample:NAME | ->
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"pgo/internal/analysis"
	"pgo/internal/check"
	"pgo/internal/cmdutil"
	"pgo/internal/compile"
	"pgo/internal/ir"
	"pgo/internal/live"
	"pgo/internal/trace"
)

func main() {
	var (
		mode      = flag.String("mode", "delay", "bounding strategy: delay, depth, or rr (round-robin ablation)")
		bound     = flag.Int("bound", 2, "delay budget or depth bound")
		maxStates = flag.Int("max-states", 5_000_000, "stop after this many distinct states (0 = unlimited)")
		firstOnly = flag.Bool("first", true, "stop at the first violation")
		liveness  = flag.Bool("liveness", false, "run the liveness checks on the explored graph")
		ghostLive = flag.Bool("liveness-ghost", false, "apply liveness property 1 to ghost machines too")
		traces    = flag.Bool("trace", false, "print the reproducing schedule of each violation")
		workers   = flag.Int("workers", 1, "parallel search workers (delay mode; -1 = all cores)")
		exactFP   = flag.Bool("exact-fp", false, "key visited sets by exact canonical state encodings instead of 128-bit hashes (collision-free auditing mode; slower, more memory)")
		por       = flag.Bool("por", true, "prune commuting interleavings with partial-order reduction (safety verdicts preserved; forced off by -chaos, -liveness, and -coverage, which need the unreduced graph)")
		sweep     = flag.Int("sweep", -1, "sweep bounds 0..N and print the states-vs-bound series (Figure 7)")
		jsonOut   = flag.Bool("json", false, "emit a machine-readable JSON report instead of text")
		coverage  = flag.Bool("coverage", false, "report per-machine control states the exploration never visited (implies graph collection)")
		allViol   = flag.Int("max-violations", 20, "print at most this many violations")
		noAnalyze = flag.Bool("no-analyze", false, "skip the IR-level static analysis that runs before exploration")
		chaos     = flag.Bool("chaos", false, "inject environment faults (crash, drop, dup) during exploration; defaults the fault budget to 1")
		faults    = flag.Int("faults", -1, "fault budget: max injected faults along one schedule (implies -chaos; 0 disables)")
		faultKind = flag.String("fault-kinds", "all", "comma-separated fault kinds to inject: crash, drop, dup, or all")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pverify [flags] <file.p | sample:NAME | ->\n\nsamples: %s\n\nflags:\n", cmdutil.SampleNames())
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	name, src, err := cmdutil.LoadSource(flag.Arg(0))
	if err != nil {
		cmdutil.Fatalf("pverify: %v", err)
	}
	prog, diags, err := compile.Source(name, src)
	for _, d := range diags.All() {
		fmt.Fprintln(os.Stderr, d)
	}
	if err != nil {
		os.Exit(1)
	}

	// Static analysis runs before exploration: its predictions frame what
	// the search then confirms or refutes. Error-severity findings fail the
	// run even if the bounded search happens not to reach the defect.
	var findings []analysis.Finding
	analysisBad := false
	if !*noAnalyze {
		findings = analysis.Analyze(prog).Findings
		for _, f := range findings {
			if f.Severity == analysis.SevInfo {
				continue
			}
			fmt.Fprintf(os.Stderr, "analysis: %s\n", f)
			if f.Severity == analysis.SevError {
				analysisBad = true
			}
		}
	}

	// -chaos without -faults means a budget of 1; a positive -faults implies
	// chaos on its own.
	budget := 0
	if *faults > 0 {
		budget = *faults
	} else if *chaos && *faults != 0 {
		budget = 1
	}
	var kinds check.FaultSet
	if budget > 0 {
		var kerr error
		kinds, kerr = check.ParseFaultSet(*faultKind)
		if kerr != nil {
			cmdutil.Fatalf("pverify: -fault-kinds: %v", kerr)
		}
	}

	opts := check.Options{
		Bound:             *bound,
		MaxStates:         *maxStates,
		StopAtFirstError:  *firstOnly,
		CollectGraph:      *liveness || *coverage,
		ExactFingerprints: *exactFP,
		Faults:            budget,
		FaultKinds:        kinds,
	}
	// The reduction preserves safety verdicts, not the full state graph: the
	// liveness checks and coverage reports consume the graph, so they need
	// the unreduced search. (Explore itself additionally gates POR off under
	// chaos fault injection.)
	opts.POR = *por && !opts.CollectGraph && budget == 0
	opts.Workers = *workers
	switch *mode {
	case "delay":
		opts.Mode = check.DelayBounded
	case "depth":
		opts.Mode = check.DepthBounded
	case "rr":
		opts.Mode = check.RoundRobinDelay
	default:
		cmdutil.Fatalf("pverify: unknown mode %q (want delay, depth, or rr)", *mode)
	}

	if *sweep >= 0 {
		series, err := check.Sweep(prog, opts, *sweep, 0)
		if err != nil {
			cmdutil.Fatalf("pverify: %v", err)
		}
		fmt.Printf("%s: %s sweep 0..%d\n", name, opts.Mode, *sweep)
		fmt.Printf("  %6s %12s %12s %6s %10s\n", "bound", "states", "transitions", "viol", "time")
		for _, pt := range series {
			trunc := ""
			if pt.Truncated {
				trunc = " (truncated)"
			}
			fmt.Printf("  %6d %12d %12d %6d %10v%s\n", pt.Bound, pt.States, pt.Transitions, pt.Violations, pt.Elapsed.Round(1_000_000), trunc)
		}
		if check.Saturated(series) {
			fmt.Println("  series saturated: the last bound exposed no new states")
		}
		return
	}

	res, err := check.Explore(prog, opts)
	if err != nil {
		cmdutil.Fatalf("pverify: %v", err)
	}

	if *jsonOut {
		emitJSON(name, prog, opts, res, findings, analysisBad, *liveness, *ghostLive)
		return
	}

	st := res.Stats
	fmt.Printf("%s: %s bound %d: %d distinct states, %d transitions, %d search nodes, max depth %d, %d quiescent, %v\n",
		name, opts.Mode, *bound, st.DistinctStates, st.Transitions, st.SearchNodes, st.MaxDepth, st.Quiescent, st.Elapsed.Round(1_000_000))
	if st.ReducedStates > 0 {
		fmt.Printf("  por: %d nodes reduced to a single machine, %d schedule options pruned\n", st.ReducedStates, st.AmpleSkips)
	}
	if opts.Faults > 0 {
		fmt.Printf("  chaos: fault budget %d (kinds %s), %d fault steps\n", opts.Faults, kinds, st.FaultSteps)
	}
	if st.Truncated {
		fmt.Println("  (search truncated)")
	}

	bad := false
	for i, v := range res.Violations {
		if i >= *allViol {
			fmt.Printf("  ... and %d more violations\n", len(res.Violations)-i)
			break
		}
		bad = true
		fmt.Printf("VIOLATION: %v\n", v.Err)
		if *traces {
			if err := trace.Render(prog, &v, os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "pverify: rendering trace: %v\n", err)
			}
		}
	}

	if *coverage {
		cov := check.CoverageOf(prog, res.Graph)
		for _, m := range prog.Machines {
			if m.Ghost {
				continue
			}
			if !cov.Instantiated[m.ID] {
				fmt.Printf("coverage: machine %s never instantiated\n", m.Name)
				continue
			}
			unvisited := cov.Unvisited(prog, m.ID)
			if len(unvisited) == 0 {
				fmt.Printf("coverage: machine %s: all %d states visited\n", m.Name, len(m.States))
				continue
			}
			fmt.Printf("coverage: machine %s: %d of %d states never visited:", m.Name, len(unvisited), len(m.States))
			for _, s := range unvisited {
				fmt.Printf(" %s", m.States[s].Name)
			}
			fmt.Println()
		}
	}

	if *liveness {
		vs := live.Check(prog, res.Graph, live.Options{IncludeGhost: *ghostLive})
		for _, v := range vs {
			bad = true
			fmt.Printf("VIOLATION: %v\n", v)
		}
		if len(vs) == 0 {
			fmt.Println("liveness: no violations on the explored graph")
		}
	}

	if bad || analysisBad {
		os.Exit(1)
	}
	fmt.Println("no safety violations")
}

// jsonReport is the machine-readable result schema of -json. The top-level
// mode/bound/faults/fault_kinds fields predate the options block and are kept
// for compatibility; options is the authoritative record of the explorer
// configuration and is always emitted in full, so a clean run and a chaos run
// produce reports with the same shape.
type jsonReport struct {
	Program    string                 `json:"program"`
	Mode       string                 `json:"mode"`
	Bound      int                    `json:"bound"`
	Faults     int                    `json:"faults"`
	FaultKinds string                 `json:"fault_kinds"`
	Options    jsonOptions            `json:"options"`
	Analysis   []analysis.JSONFinding `json:"analysis,omitempty"`
	Stats      jsonStats              `json:"stats"`
	Violations []jsonViolation        `json:"violations"`
	Liveness   []string               `json:"liveness,omitempty"`
	OK         bool                   `json:"ok"`
}

// jsonOptions mirrors check.Options as resolved for the run — every field is
// always present, with no omitempty, so consumers can diff configurations
// across reports without guessing at defaults.
type jsonOptions struct {
	Mode              string `json:"mode"`
	Bound             int    `json:"bound"`
	MaxStates         int    `json:"max_states"`
	StopAtFirstError  bool   `json:"stop_at_first_error"`
	Workers           int    `json:"workers"`
	ExactFingerprints bool   `json:"exact_fp"`
	POR               bool   `json:"por"`
	Faults            int    `json:"faults"`
	FaultKinds        string `json:"fault_kinds"`
}

type jsonStats struct {
	DistinctStates int   `json:"distinct_states"`
	Transitions    int   `json:"transitions"`
	SearchNodes    int   `json:"search_nodes"`
	FaultSteps     int   `json:"fault_steps,omitempty"`
	ReducedStates  int   `json:"reduced_states"`
	AmpleSkips     int   `json:"ample_skips"`
	MaxDepth       int   `json:"max_depth"`
	Quiescent      int   `json:"quiescent"`
	Truncated      bool  `json:"truncated"`
	ElapsedMS      int64 `json:"elapsed_ms"`
}

type jsonViolation struct {
	Kind     string     `json:"kind"`
	Message  string     `json:"message"`
	Schedule []jsonStep `json:"schedule"`
}

type jsonStep struct {
	Machine int    `json:"machine"`
	Type    string `json:"type"`
	Delays  int    `json:"delays,omitempty"`
	Choices []bool `json:"choices,omitempty"`
	Outcome string `json:"outcome"`
	Event   string `json:"event,omitempty"`
	Fault   string `json:"fault,omitempty"` // crash, drop, or dup on injected-fault steps
}

func emitJSON(name string, prog *ir.Program, opts check.Options, res *check.Result, findings []analysis.Finding, analysisBad, liveOn, ghostLive bool) {
	faultKinds := ""
	if opts.Faults > 0 {
		faultKinds = opts.FaultKinds.String()
	}
	rep := jsonReport{
		Program:    name,
		Mode:       opts.Mode.String(),
		Bound:      opts.Bound,
		Faults:     opts.Faults,
		FaultKinds: faultKinds,
		Options: jsonOptions{
			Mode:              opts.Mode.String(),
			Bound:             opts.Bound,
			MaxStates:         opts.MaxStates,
			StopAtFirstError:  opts.StopAtFirstError,
			Workers:           opts.Workers,
			ExactFingerprints: opts.ExactFingerprints,
			POR:               opts.POR,
			Faults:            opts.Faults,
			FaultKinds:        faultKinds,
		},
		Analysis: analysis.FindingsJSON(findings),
		Stats: jsonStats{
			DistinctStates: res.Stats.DistinctStates,
			Transitions:    res.Stats.Transitions,
			SearchNodes:    res.Stats.SearchNodes,
			FaultSteps:     res.Stats.FaultSteps,
			ReducedStates:  res.Stats.ReducedStates,
			AmpleSkips:     res.Stats.AmpleSkips,
			MaxDepth:       res.Stats.MaxDepth,
			Quiescent:      res.Stats.Quiescent,
			Truncated:      res.Stats.Truncated,
			ElapsedMS:      res.Stats.Elapsed.Milliseconds(),
		},
		Violations: []jsonViolation{},
	}
	for _, v := range res.Violations {
		jv := jsonViolation{Kind: v.Err.Kind.String(), Message: v.Err.Error()}
		for _, s := range v.Trace {
			step := jsonStep{
				Machine: int(s.Machine),
				Type:    s.Type,
				Delays:  s.Delays,
				Choices: s.Choices,
				Outcome: s.Outcome.String(),
			}
			if s.Fault != check.FaultNone {
				step.Outcome = "fault"
				step.Fault = s.Fault.String()
				step.Delays = 0
			}
			if s.HasEv {
				step.Event = prog.Events[s.Event].Name
			}
			jv.Schedule = append(jv.Schedule, step)
		}
		rep.Violations = append(rep.Violations, jv)
	}
	if liveOn {
		for _, v := range live.Check(prog, res.Graph, live.Options{IncludeGhost: ghostLive}) {
			rep.Liveness = append(rep.Liveness, v.String())
		}
	}
	rep.OK = len(rep.Violations) == 0 && len(rep.Liveness) == 0 && !analysisBad
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		cmdutil.Fatalf("pverify: %v", err)
	}
	if !rep.OK {
		os.Exit(1)
	}
}

// pc is the P compiler: it parses and type-checks a P program, applies
// ghost erasure, and emits a Go source file that reconstructs the compiled
// state-machine tables and runs them on the P runtime — the analog of the
// paper's C code generator for KMDF drivers.
//
// Usage:
//
//	pc [flags] <file.p | sample:NAME | ->
//
// The generated file imports pgo/internal packages, so place it inside this
// module (e.g. under cmd/).
package main

import (
	"flag"
	"fmt"
	"os"

	"pgo/internal/abstract"
	"pgo/internal/analysis"
	"pgo/internal/cmdutil"
	"pgo/internal/codegen"
	"pgo/internal/compile"
	"pgo/internal/ir"
	"pgo/internal/parser"
	"pgo/internal/source"
	"pgo/internal/types"
)

func main() {
	var (
		out       = flag.String("o", "", "output file (default stdout)")
		pkg       = flag.String("pkg", "main", "generated package name")
		emitMain  = flag.Bool("main", true, "emit a func main (requires -pkg main)")
		mainM     = flag.String("machine", "", "machine main() instantiates (default: the program's main machine)")
		checkTo   = flag.Bool("check", false, "type-check and analyze only; emit nothing")
		dumpIR    = flag.Bool("ir", false, "print the lowered tables (before erasure) instead of Go code")
		noAnalyze = flag.Bool("no-analyze", false, "with -check, skip the IR-level static analysis")
		abstr     = flag.Bool("abstract", false, "with -check, also run the parameterized coverability pass (P401/P402/P403)")
		werror    = flag.Bool("Werror", false, "treat lint and analysis warnings as errors")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pc [flags] <file.p | sample:NAME | ->\n\nsamples: %s\n\nflags:\n", cmdutil.SampleNames())
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	name, src, err := cmdutil.LoadSource(flag.Arg(0))
	if err != nil {
		cmdutil.Fatalf("pc: %v", err)
	}

	prog, diags, err := compile.Source(name, src)
	if err == nil && *checkTo {
		// -check also runs the lint pass (hygiene warnings).
		var lintDiags source.DiagList
		relint := parser.Parse(src, &lintDiags)
		chk := types.Check(relint, &lintDiags)
		if !lintDiags.HasErrors() {
			types.Lint(chk, diags)
		}
	}
	for _, d := range diags.All() {
		fmt.Fprintln(os.Stderr, d)
	}
	if err != nil {
		os.Exit(1)
	}
	if *checkTo {
		errs, warns := 0, 0
		if !*noAnalyze {
			rep := analysis.Analyze(prog)
			findings := rep.Findings
			if *abstr {
				res := abstract.Analyze(prog, abstract.Options{Facts: rep})
				findings = append(findings, res.Findings()...)
				analysis.SortFindings(findings)
			}
			for _, f := range findings {
				fmt.Fprintf(os.Stderr, "%s\n", f)
				switch f.Severity {
				case analysis.SevError:
					errs++
				case analysis.SevWarn:
					warns++
				}
			}
		}
		if *werror {
			errs += warns
			if diags.HasWarnings() {
				errs++
			}
		}
		if errs > 0 {
			fmt.Fprintf(os.Stderr, "pc: %s: failing on findings\n", name)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pc: %s: %d events, %d machines, no errors\n", name, len(prog.Events), len(prog.Machines))
		return
	}
	if *dumpIR {
		fmt.Print(ir.Dump(prog))
		return
	}

	erased := ir.Erase(prog)
	code, err := codegen.Generate(erased, codegen.Options{
		Package:     *pkg,
		EmitMain:    *emitMain && *pkg == "main",
		MainMachine: *mainM,
	})
	if err != nil {
		cmdutil.Fatalf("pc: %v", err)
	}
	if *out == "" {
		fmt.Print(code)
		return
	}
	if err := os.WriteFile(*out, []byte(code), 0o644); err != nil {
		cmdutil.Fatalf("pc: %v", err)
	}
	fmt.Fprintf(os.Stderr, "pc: wrote %s\n", *out)
}

// prun executes a P program on the concurrent runtime after ghost erasure,
// with a scripted environment: the host creates an instance of a machine
// and feeds it a sequence of events, printing the state reached after each,
// standing in for the paper's KMDF interface code.
//
// Usage:
//
//	prun [flags] <file.p | sample:NAME | ->
//
// Example:
//
//	prun -machine Elevator -send OpenDoor,DoorOpened,TimerFired sample:elevator
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"pgo/internal/cmdutil"
	"pgo/internal/compile"
	"pgo/internal/core"
	"pgo/internal/ir"
	prt "pgo/internal/runtime"
)

func main() {
	var (
		machine  = flag.String("machine", "", "machine type to instantiate (default: the program's main machine if real)")
		sends    = flag.String("send", "", "comma-separated events to send, each EVENT or EVENT:INTPAYLOAD")
		timeout  = flag.Duration("quiesce", 5*time.Second, "quiescence timeout after each event")
		seed     = flag.Int64("chaos-seed", 0, "seed for transport fault injection")
		drop     = flag.Float64("chaos-drop", 0, "probability a sent event is lost in transit")
		dup      = flag.Float64("chaos-dup", 0, "probability a sent event is delivered twice")
		delay    = flag.Float64("chaos-delay", 0, "probability a sent event's delivery is postponed")
		maxInbox    = flag.Int("max-inbox", 0, "bound each machine's inbox to this many pending events (0 = unbounded)")
		overflow    = flag.String("overflow", "drop-newest", "bounded-inbox overflow policy: drop-newest, drop-oldest, block, or error")
		metrics     = flag.Bool("metrics", false, "print runtime metrics on exit")
		metricsJSON = flag.Bool("metrics-json", false, "print the runtime metrics snapshot as JSON on exit (for scripting)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: prun [flags] <file.p | sample:NAME | ->\n\nsamples: %s\n\nflags:\n", cmdutil.SampleNames())
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	name, src, err := cmdutil.LoadSource(flag.Arg(0))
	if err != nil {
		cmdutil.Fatalf("prun: %v", err)
	}
	prog, diags, err := compile.Erased(name, src)
	for _, d := range diags.All() {
		fmt.Fprintln(os.Stderr, d)
	}
	if err != nil {
		os.Exit(1)
	}

	target := *machine
	if target == "" {
		if mm := prog.Machines[prog.Main]; !mm.ErasedStub {
			target = mm.Name
		} else {
			cmdutil.Fatalf("prun: the program's main machine is ghost; pick a real machine with -machine (one of %s)", realMachines(prog))
		}
	}

	opts := prt.Options{
		OnError:  func(e *core.Err) { fmt.Fprintf(os.Stderr, "prun: machine error: %v\n", e) },
		MaxInbox: *maxInbox,
	}
	if *maxInbox > 0 {
		pol, err := prt.ParseOverflowPolicy(*overflow)
		if err != nil {
			cmdutil.Fatalf("prun: -overflow: %v", err)
		}
		opts.Overflow = pol
	}
	if *drop > 0 || *dup > 0 || *delay > 0 {
		opts.Inject = &prt.Inject{Seed: *seed, Drop: *drop, Dup: *dup, Delay: *delay}
	}
	rt, err := prt.New(prog, opts)
	if err != nil {
		cmdutil.Fatalf("prun: %v", err)
	}
	defer rt.Stop()
	if *metrics {
		defer func() {
			m := rt.Metrics()
			fmt.Printf("metrics: created %d, delivered %d, deduped %d, processed %d, overflowed %d, blocked %d, injected drop/dup/delay %d/%d/%d, panics %d, restarts %d\n",
				m.MachinesCreated, m.EventsDelivered, m.EventsDeduped, m.EventsProcessed, m.EventsOverflowed, m.EventsBlocked,
				m.InjectedDrops, m.InjectedDups, m.InjectedDelays, m.Panics, m.Restarts)
		}()
	}
	if *metricsJSON {
		defer func() {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rt.Metrics()); err != nil {
				fmt.Fprintf(os.Stderr, "prun: %v\n", err)
			}
		}()
	}

	id, err := rt.CreateMachine(target, nil, nil)
	if err != nil {
		cmdutil.Fatalf("prun: %v", err)
	}
	if !rt.Quiesce(*timeout) {
		cmdutil.Fatalf("prun: no quiescence after creating %s", target)
	}
	printState(rt, id, "created "+target)

	if *sends != "" {
		for _, spec := range strings.Split(*sends, ",") {
			spec = strings.TrimSpace(spec)
			if spec == "" {
				continue
			}
			event, payload := spec, core.Null
			if i := strings.IndexByte(spec, ':'); i >= 0 {
				event = spec[:i]
				n, err := strconv.ParseInt(spec[i+1:], 10, 64)
				if err != nil {
					cmdutil.Fatalf("prun: bad payload in %q: %v", spec, err)
				}
				payload = core.IntVal(n)
			}
			if err := rt.Send(id, event, payload); err != nil {
				cmdutil.Fatalf("prun: %v", err)
			}
			if !rt.Quiesce(*timeout) {
				cmdutil.Fatalf("prun: no quiescence after %s", event)
			}
			printState(rt, id, "sent "+spec)
		}
	}

	if errs := rt.Errors(); len(errs) > 0 {
		os.Exit(1)
	}
}

func printState(rt *prt.Runtime, id core.MachineID, what string) {
	if st, ok := rt.StateName(id); ok {
		fmt.Printf("%-28s -> state %s\n", what, st)
	} else {
		fmt.Printf("%-28s -> (machine deleted)\n", what)
	}
}

func realMachines(prog *ir.Program) string {
	var names []string
	for _, m := range prog.Machines {
		if !m.ErasedStub {
			names = append(names, m.Name)
		}
	}
	return strings.Join(names, ", ")
}

// pfmt formats P source files into the canonical style produced by
// internal/printer.
//
// Usage:
//
//	pfmt [-w] <file.p ... | ->
package main

import (
	"flag"
	"fmt"
	"os"

	"pgo/internal/cmdutil"
	"pgo/internal/parser"
	"pgo/internal/printer"
	"pgo/internal/source"
)

func main() {
	write := flag.Bool("w", false, "write result back to the source file instead of stdout")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: pfmt [-w] <file.p ... | ->")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	status := 0
	for _, arg := range flag.Args() {
		name, src, err := cmdutil.LoadSource(arg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pfmt: %v\n", err)
			status = 1
			continue
		}
		var diags source.DiagList
		prog := parser.Parse(src, &diags)
		if diags.HasErrors() {
			fmt.Fprintf(os.Stderr, "pfmt: %s:\n%s", name, diags.String())
			status = 1
			continue
		}
		out := printer.Print(prog)
		if *write && arg != "-" {
			if err := os.WriteFile(arg, []byte(out), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "pfmt: %v\n", err)
				status = 1
			}
			continue
		}
		fmt.Print(out)
	}
	os.Exit(status)
}

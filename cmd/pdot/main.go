// pdot renders a P machine's state diagram, or an explored state graph, in
// Graphviz DOT format — the textual stand-in for the paper's visual
// programming interface.
//
// Usage:
//
//	pdot -machine Elevator sample:elevator          # state diagram
//	pdot -graph -bound 1 sample:pingpong            # explored state space
//	pdot -comm sample:german                        # machine communication graph
package main

import (
	"flag"
	"fmt"
	"os"

	"pgo/internal/check"
	"pgo/internal/cmdutil"
	"pgo/internal/compile"
	"pgo/internal/dot"
)

func main() {
	var (
		machine  = flag.String("machine", "", "machine to render (default: the program's main machine)")
		graph    = flag.Bool("graph", false, "render the explored state graph instead of a machine diagram")
		comm     = flag.Bool("comm", false, "render the machine communication graph instead of a machine diagram")
		bound    = flag.Int("bound", 1, "delay bound for -graph exploration")
		maxNodes = flag.Int("max-nodes", 500, "truncate -graph output beyond this many nodes (0 = no limit)")
		exactFP  = flag.Bool("exact-fp", false, "key the -graph exploration by exact canonical state encodings instead of 128-bit hashes")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pdot [flags] <file.p | sample:NAME | ->\n\nsamples: %s\n\nflags:\n", cmdutil.SampleNames())
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	name, src, err := cmdutil.LoadSource(flag.Arg(0))
	if err != nil {
		cmdutil.Fatalf("pdot: %v", err)
	}
	prog, diags, err := compile.Source(name, src)
	for _, d := range diags.All() {
		fmt.Fprintln(os.Stderr, d)
	}
	if err != nil {
		os.Exit(1)
	}

	if *comm {
		if err := dot.Comm(os.Stdout, prog); err != nil {
			cmdutil.Fatalf("pdot: %v", err)
		}
		return
	}

	if *graph {
		res, err := check.Explore(prog, check.Options{
			Mode: check.DelayBounded, Bound: *bound, CollectGraph: true, MaxStates: 100_000,
			ExactFingerprints: *exactFP,
		})
		if err != nil {
			cmdutil.Fatalf("pdot: %v", err)
		}
		if err := dot.StateGraph(os.Stdout, prog, res.Graph, *maxNodes); err != nil {
			cmdutil.Fatalf("pdot: %v", err)
		}
		return
	}

	target := *machine
	if target == "" {
		target = prog.Machines[prog.Main].Name
	}
	m, ok := prog.MachineByName(target)
	if !ok {
		cmdutil.Fatalf("pdot: no machine %s", target)
	}
	if err := dot.Machine(os.Stdout, prog, m); err != nil {
		cmdutil.Fatalf("pdot: %v", err)
	}
}

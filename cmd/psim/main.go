// psim runs random walks over the closed P program: uniformly random
// scheduling with coin-flip `*` choices. It is the quick, unsound
// complement to pverify — useful for smoke-testing a model and for getting
// a feel for execution lengths before committing to systematic search.
//
// Usage:
//
//	psim -walks 100 -steps 5000 sample:german-buggy
package main

import (
	"flag"
	"fmt"
	"os"

	"pgo/internal/check"
	"pgo/internal/cmdutil"
	"pgo/internal/compile"
	"pgo/internal/trace"
)

func main() {
	var (
		walks = flag.Int("walks", 100, "number of random walks")
		steps = flag.Int("steps", 10_000, "max macro steps per walk")
		seed  = flag.Int64("seed", 1, "seed of the first walk (walk i uses seed+i)")
		show  = flag.Bool("trace", false, "render the first violating walk's schedule")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: psim [flags] <file.p | sample:NAME | ->\n\nsamples: %s\n\nflags:\n", cmdutil.SampleNames())
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	name, src, err := cmdutil.LoadSource(flag.Arg(0))
	if err != nil {
		cmdutil.Fatalf("psim: %v", err)
	}
	prog, diags, err := compile.Source(name, src)
	for _, d := range diags.All() {
		fmt.Fprintln(os.Stderr, d)
	}
	if err != nil {
		os.Exit(1)
	}

	quiescent, violations := 0, 0
	totalSteps := 0
	for i := 0; i < *walks; i++ {
		res, err := check.Simulate(prog, check.SimOptions{Seed: *seed + int64(i), MaxSteps: *steps})
		if err != nil {
			cmdutil.Fatalf("psim: %v", err)
		}
		totalSteps += res.Steps
		if res.Quiescent {
			quiescent++
		}
		if res.Violation != nil {
			violations++
			if violations == 1 {
				fmt.Printf("walk %d (seed %d): VIOLATION after %d steps: %v\n",
					i, *seed+int64(i), res.Steps, res.Violation.Err)
				if *show {
					if err := trace.Render(prog, res.Violation, os.Stdout); err != nil {
						fmt.Fprintf(os.Stderr, "psim: rendering trace: %v\n", err)
					}
				}
			}
		}
	}
	fmt.Printf("%s: %d walks x <=%d steps: %d violating, %d quiescent, avg %d steps\n",
		name, *walks, *steps, violations, quiescent, totalSteps/max(*walks, 1))
	if violations == 0 {
		fmt.Println("no violations found (random walks prove nothing; use pverify)")
	} else {
		os.Exit(1)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// plint is the P static analyzer: it parses, type-checks, and lowers a P
// program, then runs the IR-level flow analyses — unhandled-event
// prediction, the machine communication graph with cycle and send-pump
// detection, and dead-transition detection — together with the frontend
// hygiene lint, reporting every finding with a stable diagnostic code.
//
// Usage:
//
//	plint [flags] <file.p | sample:NAME | -> ...
//
// With several inputs, findings are prefixed by the program name and -json
// emits one report document per input. The exit status is 0 when no input has
// error-severity findings (warnings too, under -Werror), 1 when some input
// does, and 2 when an input cannot be loaded or compiled.
package main

import (
	"flag"
	"fmt"
	"os"

	"pgo/internal/abstract"
	"pgo/internal/analysis"
	"pgo/internal/cmdutil"
)

func main() {
	var (
		jsonOut  = flag.Bool("json", false, "emit a machine-readable JSON report per input")
		werror   = flag.Bool("Werror", false, "count warnings as errors for the exit status")
		abstr    = flag.Bool("abstract", false, "additionally run the parameterized counter-abstraction coverability pass (P401/P402/P403 findings)")
		absLimit = flag.Int("abstract-markings", 0, "marking budget for -abstract (0 = default)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: plint [flags] <file.p | sample:NAME | -> ...\n\nsamples: %s\n\nflags:\n", cmdutil.SampleNames())
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	status := 0
	worsen := func(s int) {
		if s > status {
			status = s
		}
	}
	for _, arg := range flag.Args() {
		name, src, err := cmdutil.LoadSource(arg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "plint: %v\n", err)
			worsen(2)
			continue
		}
		findings, rep, prog, err := analysis.RunWithProgram(name, src)
		if err != nil {
			fmt.Fprintf(os.Stderr, "plint: %v\n", err)
			worsen(2)
			continue
		}
		if *abstr {
			res := abstract.Analyze(prog, abstract.Options{Facts: rep, MaxMarkings: *absLimit})
			findings = append(findings, res.Findings()...)
			analysis.SortFindings(findings)
		}
		if *jsonOut {
			if err := analysis.WriteJSON(os.Stdout, name, findings); err != nil {
				cmdutil.Fatalf("plint: %v", err)
			}
		} else {
			for _, f := range findings {
				if f.Span.IsValid() {
					fmt.Printf("%s:%s\n", name, f)
				} else {
					fmt.Printf("%s: %s\n", name, f)
				}
			}
		}
		errs, warns := 0, 0
		for _, f := range findings {
			switch f.Severity {
			case analysis.SevError:
				errs++
			case analysis.SevWarn:
				warns++
			}
		}
		if !*jsonOut && (errs > 0 || warns > 0) {
			fmt.Printf("%s: %d error(s), %d warning(s)\n", name, errs, warns)
		}
		if errs > 0 || (*werror && warns > 0) {
			worsen(1)
		}
	}
	os.Exit(status)
}

// pserve hosts a compiled P program as a long-lived sharded actor server:
// HTTP/JSON ingress mapped onto machine creation and sends, virtual-actor
// addressing over a fixed shard pool, admission control with load shedding,
// panic supervision with restart budgets and a per-shard circuit breaker,
// and graceful drain on SIGTERM.
//
// Usage:
//
//	pserve [flags] <file.p | sample:NAME | ->
//
// Example:
//
//	pserve -addr 127.0.0.1:8080 sample:elevator
//
// Endpoints:
//
//	POST /machines            {"type":"Elevator","inits":{"myid":1}} -> 201 {"id","shard"}
//	POST /machines/{id}/send  {"event":"OpenDoor","payload":3}       -> 202
//	GET  /machines/{id}       machine status + current P state
//	GET  /healthz, /readyz, /varz
//
// On SIGTERM/SIGINT: ingress starts rejecting with 503, in-flight machine
// work drains under -drain-timeout, the final metrics snapshot is flushed
// to stdout as JSON, and the process exits 0 — or 3 if the drain deadline
// expired with work still in flight (mirroring pverify's "suspended" code).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pgo/internal/cmdutil"
	"pgo/internal/compile"
	"pgo/internal/core"
	prt "pgo/internal/runtime"
	"pgo/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address (use :0 to pick a free port; the bound address is logged)")
		shards       = flag.Int("shards", 0, "event-loop shards hosting the machines (0 = one per CPU, max 8)")
		highWater    = flag.Int("high-water", 1024, "per-shard pending-event watermark for load shedding (-1 = off)")
		shed         = flag.String("shed", "reject-ingress", "shed policy over the watermark: reject-ingress or reject-newest")
		maxInbox     = flag.Int("max-inbox", 256, "per-machine inbox bound (-1 = unbounded)")
		overflow     = flag.String("overflow", "drop-newest", "bounded-inbox overflow policy: drop-newest, drop-oldest, or error")
		maxRestarts  = flag.Int("max-restarts", 3, "restart budget per panicking machine before quarantine (-1 = quarantine on first panic)")
		backoff      = flag.Duration("restart-backoff", time.Millisecond, "initial restart backoff (doubles per restart)")
		maxBackoff   = flag.Duration("restart-max-backoff", 100*time.Millisecond, "restart backoff cap")
		breakerTrips = flag.Int("breaker-trips", 3, "quarantines within -breaker-window that open a shard's circuit breaker (-1 = breaker off)")
		breakerWin   = flag.Duration("breaker-window", 10*time.Second, "circuit breaker trip-counting window")
		breakerCool  = flag.Duration("breaker-cooldown", 5*time.Second, "how long an open breaker sheds the shard's ingress")
		reqTimeout   = flag.Duration("request-timeout", 10*time.Second, "per-request handler timeout (0 = none)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "SIGTERM drain deadline; expiry exits 3")
		maxSteps     = flag.Int("max-steps", 0, "small-step bound per handler burst (0 = default)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pserve [flags] <file.p | sample:NAME | ->\n\nsamples: %s\n\nflags:\n", cmdutil.SampleNames())
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	name, src, err := cmdutil.LoadSource(flag.Arg(0))
	if err != nil {
		cmdutil.Fatalf("pserve: %v", err)
	}
	prog, diags, err := compile.Erased(name, src)
	for _, d := range diags.All() {
		fmt.Fprintln(os.Stderr, d)
	}
	if err != nil {
		os.Exit(1)
	}

	pol, err := prt.ParseOverflowPolicy(*overflow)
	if err != nil {
		cmdutil.Fatalf("pserve: -overflow: %v", err)
	}
	shedPol, err := server.ParseShedPolicy(*shed)
	if err != nil {
		cmdutil.Fatalf("pserve: -shed: %v", err)
	}
	srv, err := server.New(prog, server.Options{
		Shards:         *shards,
		QueueHighWater: *highWater,
		Shed:           shedPol,
		MaxInbox:       *maxInbox,
		Overflow:       pol,
		Restart: prt.RestartPolicy{
			MaxRestarts: *maxRestarts,
			Backoff:     *backoff,
			MaxBackoff:  *maxBackoff,
		},
		BreakerTrips:    *breakerTrips,
		BreakerWindow:   *breakerWin,
		BreakerCooldown: *breakerCool,
		MaxHandlerSteps: *maxSteps,
		OnError: func(e *core.Err) {
			fmt.Fprintf(os.Stderr, "pserve: machine error: %v\n", e)
		},
	})
	if err != nil {
		cmdutil.Fatalf("pserve: %v", err)
	}

	h := server.NewHandler(srv)
	var handler http.Handler = h
	if *reqTimeout > 0 {
		handler = http.TimeoutHandler(handler, *reqTimeout, `{"error":"request timed out"}`)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		cmdutil.Fatalf("pserve: %v", err)
	}
	fmt.Fprintf(os.Stderr, "pserve: serving %s on http://%s (%d shards, high-water %d, shed %s)\n",
		prog.Name, ln.Addr(), len(h.Varz().Shards), *highWater, shedPol)
	httpSrv := &http.Server{Handler: handler}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, os.Interrupt)
	select {
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "pserve: %v: stopping ingress, draining (deadline %s)\n", sig, *drainTimeout)
	case err := <-serveErr:
		cmdutil.Fatalf("pserve: %v", err)
	}

	// Drain flips ingress to 503 immediately, then waits for machine
	// quiescence; the listener shutdown afterwards only has fast rejections
	// left to flush.
	drained := srv.Drain(*drainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "pserve: shutdown: %v\n", err)
	}
	cancel()

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(h.Varz()); err != nil {
		fmt.Fprintf(os.Stderr, "pserve: %v\n", err)
	}
	if !drained {
		fmt.Fprintf(os.Stderr, "pserve: drain deadline expired with work in flight\n")
		os.Exit(3)
	}
	fmt.Fprintln(os.Stderr, "pserve: drained")
}

// pload drives concurrent sessions against a running pserve instance and
// reports throughput, request latency percentiles, and shed rate in the
// pbench JSON format, so serving-path numbers diff and gate exactly like
// the explorer benchmarks.
//
// Usage:
//
//	pload [flags]
//
// Examples:
//
//	pload -addr http://127.0.0.1:8080 -scenario elevator -sessions 8 -rounds 50
//	pload -addr http://127.0.0.1:8080 -scenario ring -smoke
//
// A session round creates one machine and feeds it the scenario's event
// script; every request's latency and status is recorded. 429 responses
// are counted as shed and the session briefly honors the server's
// Retry-After hint instead of hammering. -smoke runs a single round of one
// session and fails loudly on any unexpected status — the CI liveness
// probe for the serving path.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"pgo/internal/benchfmt"
	"pgo/internal/cmdutil"
)

// scenario is one serving workload: which sample pserve must be hosting,
// the create request of a round, and the event script fed to the created
// machine.
type scenario struct {
	sample string
	create map[string]any
	sends  []map[string]any
}

func scenarios(ringSize int) map[string]scenario {
	return map[string]scenario{
		// The paper's §2 elevator, one door cycle per round.
		"elevator": {
			sample: "elevator",
			create: map[string]any{"type": "Elevator"},
			sends: []map[string]any{
				{"event": "OpenDoor"},
				{"event": "DoorOpened"},
				{"event": "TimerFired"},
			},
		},
		// Sharded KV with rebalancing — the corpus serving scenario. One
		// router create grows both shards internally; a round writes both
		// keys, migrates key 1 while its traffic is in flight, and reads
		// both back. Replies to the ghost session are erased server-side,
		// so every request is a plain 202.
		"shardkv": {
			sample: "shardkv",
			create: map[string]any{"type": "Router"},
			sends: []map[string]any{
				{"event": "PutReq", "payload": 9}, // key 1 := 1
				{"event": "Rebalance", "payload": 1},
				{"event": "GetReq", "payload": 1},
				{"event": "PutReq", "payload": 18}, // key 2 := 2
				{"event": "GetReq", "payload": 2},
			},
		},
		// Chang–Roberts leader election: one create grows the whole ring
		// via internal machine creation and runs the election internally;
		// the extra losing token exercises the send path.
		"ring": {
			sample: "leaderelection",
			create: map[string]any{"type": "Node", "inits": map[string]any{"myid": 1, "total": ringSize}},
			sends: []map[string]any{
				{"event": "Token", "payload": 0},
			},
		},
	}
}

// varz mirrors the /varz fields pload consumes.
type varz struct {
	Program    string `json:"program"`
	ShedPolicy string `json:"shed_policy"`
	Shards     []struct {
		Shard int `json:"shard"`
	} `json:"shards"`
	Totals struct {
		EventsProcessed int64 `json:"events_processed"`
		EventsShed      int64 `json:"events_shed"`
	} `json:"totals"`
}

type result struct {
	requests  int
	shed      int
	errors    int
	latencies []time.Duration
}

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8080", "base URL of the pserve instance")
		scen     = flag.String("scenario", "elevator", "workload: elevator, ring, or shardkv")
		sessions = flag.Int("sessions", 8, "concurrent sessions")
		rounds   = flag.Int("rounds", 50, "rounds per session (one create + the event script each)")
		ringSize = flag.Int("ring", 3, "ring size for the ring scenario")
		smoke    = flag.Bool("smoke", false, "single session, single round, fail on any unexpected status")
		out      = flag.String("out", "", "write the pbench JSON report here (default stdout)")
		timeout  = flag.Duration("timeout", 10*time.Second, "per-request client timeout")
	)
	flag.Parse()
	sc, ok := scenarios(*ringSize)[*scen]
	if !ok {
		cmdutil.Fatalf("pload: unknown scenario %q (want elevator, ring, or shardkv)", *scen)
	}
	client := &http.Client{Timeout: *timeout}
	if *smoke {
		runSmoke(client, *addr, sc)
		return
	}

	before, err := fetchVarz(client, *addr)
	if err != nil {
		cmdutil.Fatalf("pload: %s/varz: %v", *addr, err)
	}

	results := make([]result, *sessions)
	var wg sync.WaitGroup
	t0 := time.Now()
	for i := 0; i < *sessions; i++ {
		wg.Add(1)
		go func(res *result) {
			defer wg.Done()
			for r := 0; r < *rounds; r++ {
				runRound(client, *addr, sc, res)
			}
		}(&results[i])
	}
	wg.Wait()
	wall := time.Since(t0)

	after, err := fetchVarz(client, *addr)
	if err != nil {
		cmdutil.Fatalf("pload: %s/varz: %v", *addr, err)
	}

	var total result
	for _, r := range results {
		total.requests += r.requests
		total.shed += r.shed
		total.errors += r.errors
		total.latencies = append(total.latencies, r.latencies...)
	}
	sort.Slice(total.latencies, func(i, j int) bool { return total.latencies[i] < total.latencies[j] })
	processed := after.Totals.EventsProcessed - before.Totals.EventsProcessed

	rep := benchfmt.NewReport()
	e := benchfmt.Entry{
		Name:       fmt.Sprintf("SERVE/%s/s%d", *scen, *sessions),
		Experiment: "SERVE",
		Sample:     sc.sample,
		Mode:       after.ShedPolicy,
		Bound:      *rounds,
		CPUs:       rep.CPUs,
		Workers:    len(after.Shards),
		Iterations: total.requests,
		Requests:   total.requests,
		Shed:       total.shed,
		States:     int(processed),
		P50Ns:      percentile(total.latencies, 50).Nanoseconds(),
		P99Ns:      percentile(total.latencies, 99).Nanoseconds(),
	}
	if total.requests > 0 {
		e.NsPerOp = wall.Nanoseconds() / int64(total.requests)
	}
	if secs := wall.Seconds(); secs > 0 {
		e.StatesPerSec = float64(processed) / secs
	}
	rep.Entries = append(rep.Entries, e)
	if err := rep.WriteFile(*out); err != nil {
		cmdutil.Fatalf("pload: %v", err)
	}
	fmt.Fprintf(os.Stderr, "pload: %d requests (%d shed, %d errors) in %s against %s; %d events processed server-side\n",
		total.requests, total.shed, total.errors, wall.Round(time.Millisecond), after.Program, processed)
	if total.errors > 0 {
		os.Exit(1)
	}
}

// runRound performs one session round: create a machine, then feed it the
// script. A shed or unavailable create abandons the round; a shed send
// honors the Retry-After hint (capped) and moves on without retrying.
func runRound(client *http.Client, addr string, sc scenario, res *result) {
	code, body := request(client, addr, "/machines", sc.create, res)
	switch code {
	case http.StatusCreated:
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		return
	default:
		res.errors++
		return
	}
	var created struct {
		ID int64 `json:"id"`
	}
	if json.Unmarshal(body, &created) != nil || created.ID <= 0 {
		res.errors++
		return
	}
	path := fmt.Sprintf("/machines/%d/send", created.ID)
	for _, send := range sc.sends {
		code, _ := request(client, addr, path, send, res)
		switch code {
		case http.StatusAccepted:
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			// Shed: skip this event, keep the session alive.
		default:
			res.errors++
		}
	}
}

// request POSTs one JSON body, recording latency and shed accounting. On a
// 429 it sleeps the server's retry_after_ms hint, capped so an overloaded
// run still finishes.
func request(client *http.Client, addr, path string, payload map[string]any, res *result) (int, []byte) {
	raw, _ := json.Marshal(payload)
	t0 := time.Now()
	resp, err := client.Post(addr+path, "application/json", bytes.NewReader(raw))
	lat := time.Since(t0)
	res.requests++
	res.latencies = append(res.latencies, lat)
	if err != nil {
		res.errors++
		return 0, nil
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		res.shed++
		var hint struct {
			RetryAfterMs int64 `json:"retry_after_ms"`
		}
		if json.Unmarshal(body, &hint) == nil && hint.RetryAfterMs > 0 {
			d := time.Duration(hint.RetryAfterMs) * time.Millisecond
			if d > 250*time.Millisecond {
				d = 250 * time.Millisecond
			}
			time.Sleep(d)
		}
	}
	return resp.StatusCode, body
}

// runSmoke is the CI probe: healthz, one create, one send, one inspect —
// any unexpected status is fatal.
func runSmoke(client *http.Client, addr string, sc scenario) {
	resp, err := client.Get(addr + "/healthz")
	if err != nil {
		cmdutil.Fatalf("pload: smoke: /healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		cmdutil.Fatalf("pload: smoke: /healthz = %d, want 200", resp.StatusCode)
	}
	var res result
	code, body := request(client, addr, "/machines", sc.create, &res)
	if code != http.StatusCreated {
		cmdutil.Fatalf("pload: smoke: create = %d (%s), want 201", code, bytes.TrimSpace(body))
	}
	var created struct {
		ID int64 `json:"id"`
	}
	if json.Unmarshal(body, &created) != nil || created.ID <= 0 {
		cmdutil.Fatalf("pload: smoke: create response %s has no id", body)
	}
	if len(sc.sends) > 0 {
		code, body = request(client, addr, fmt.Sprintf("/machines/%d/send", created.ID), sc.sends[0], &res)
		if code != http.StatusAccepted {
			cmdutil.Fatalf("pload: smoke: send = %d (%s), want 202", code, bytes.TrimSpace(body))
		}
	}
	resp, err = client.Get(fmt.Sprintf("%s/machines/%d", addr, created.ID))
	if err != nil {
		cmdutil.Fatalf("pload: smoke: inspect: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		cmdutil.Fatalf("pload: smoke: inspect = %d, want 200", resp.StatusCode)
	}
	fmt.Fprintln(os.Stderr, "pload: smoke ok")
}

func fetchVarz(client *http.Client, addr string) (*varz, error) {
	resp, err := client.Get(addr + "/varz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var v varz
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return nil, err
	}
	return &v, nil
}

// percentile picks the p-th latency from an ascending-sorted slice.
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := (len(sorted)*p + 99) / 100
	if i > 0 {
		i--
	}
	return sorted[i]
}

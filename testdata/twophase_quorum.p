// twophase_quorum: a fault-sensitivity sample for chaos mode, 2PC-flavored
// (see examples/twophase for the full protocol).
//
// The Voter casts yes ballots for two transactions and then asks the
// Coordinator to finalize; the Coordinator counts the ballots and asserts
// it holds the full quorum when Finalize arrives. Safe under every
// fault-free schedule, but the quorum check silently assumes a reliable
// transport:
//
//   - drop one Ballot  -> the quorum comes up short and the assert fails;
//   - dup one Ballot   -> the count overshoots and the assert fails;
//   - crash Coordinator -> the Voter's next send hits a deleted machine.
//
// `pverify -chaos -faults=1 testdata/twophase_quorum.p` finds the defect;
// `pverify testdata/twophase_quorum.p` does not.

event Ballot(int);   // payload: transaction number
event Finalize;

machine Voter {
  var coord: id;

  state Casting {
    entry {
      coord = new Coordinator();
      send coord, Ballot, 1;
      send coord, Ballot, 2;
      send coord, Finalize;
      delete;
    }
  }
}

machine Coordinator {
  var quorum: int;

  action Tally {
    quorum = quorum + 1;
  }

  state Collecting {
    entry {
      quorum = 0;
    }
    on Ballot do Tally;
    on Finalize goto Decide;
  }

  state Decide {
    entry {
      assert quorum == 2; // commit needs every ballot
      delete;
    }
  }
}

main Voter();

// worksteal_grant: a fault-sensitivity sample for chaos mode, work-
// stealing-flavored (see examples/worksteal for the full scheduler).
//
// The Victim grants two stolen tasks to the Thief and then says goodbye;
// the Thief counts the tasks it received and asserts none went missing
// when Bye arrives — a task lost in transit is gone from the system, the
// exact conservation property the full sample's Boss audits. Safe under
// every fault-free schedule, but the transfer silently assumes a reliable
// transport:
//
//   - drop one Task  -> the task vanishes and the conservation assert fails;
//   - dup one Task   -> a task is executed twice and the assert fails;
//   - crash Thief    -> the Victim's next send hits a deleted machine.
//
// `pverify -chaos -faults=1 testdata/worksteal_grant.p` finds the defect;
// `pverify testdata/worksteal_grant.p` does not.

event Task(int);   // payload: task number
event Bye;

machine Victim {
  var thief: id;

  state Granting {
    entry {
      thief = new Thief();
      send thief, Task, 1;
      send thief, Task, 2;
      send thief, Bye;
      delete;
    }
  }
}

machine Thief {
  var received: int;

  action Accept {
    received = received + 1;
  }

  state Receiving {
    entry {
      received = 0;
    }
    on Task do Accept;
    on Bye goto Reconcile;
  }

  state Reconcile {
    entry {
      assert received == 2; // task conservation: nothing lost, nothing doubled
      delete;
    }
  }
}

main Victim();

// mutex_param: a parameterized mutual-exclusion service, safe for every
// client count.
//
// A ghost Driver spawns an unbounded number of Clients (the creation site
// sits in a re-entered state, so the abstraction counts Client instances
// rather than tracking them individually). Each client loops: acquire the
// lock, enter its critical section, release, repeat. The Server grants one
// request at a time and asserts on every grant that the lock is free.
//
// `pverify -abstract testdata/mutex_param.p` proves the assertion safe for
// any number of clients (P401) and, because arbitrarily many clients keep
// requesting while the server serializes grants, proves the server's
// pending Acquire backlog unbounded (P403) — the sound upgrade of plint's
// P302–P304 queue-growth heuristics.

event Acquire(id);   // client -> server (payload: requesting client)
event Release(id);   // client -> server (payload: releasing client)
event Grant;         // server -> client
event unit;

machine Server {
  var holder: id;

  state Free {
    entry { skip; }
    on Acquire goto Granting;
  }

  state Granting {
    defer Acquire;
    entry {
      assert holder == null;
      holder = arg;
      send holder, Grant;
      raise unit;
    }
    on unit goto Busy;
  }

  state Busy {
    defer Acquire;
    entry { skip; }
    on Release goto Releasing;
  }

  state Releasing {
    defer Acquire;
    entry {
      holder = null;
      raise unit;
    }
    on unit goto Free;
  }
}

machine Client {
  var server: id;

  state Start {
    entry {
      send server, Acquire, this;
      raise unit;
    }
    on unit goto Waiting;
  }

  state Waiting {
    entry { skip; }
    on Grant goto Critical;
  }

  state Critical {
    entry {
      send server, Release, this;
      raise unit;
    }
    on unit goto Start;
  }
}

// The driver spawns a nondeterministic number of clients: one per loop
// iteration until the else-branch blocks it forever (the raise-driven
// re-entry keeps each spawn inside one abstract step, which keeps the
// coverability search small; contrast testdata/german_unsafe_paramN.p,
// whose driver yields through its inbox so concrete replay can schedule
// spawns one at a time).
ghost machine Driver {
  var server: id;
  var w: id;

  state Spawn {
    entry {
      if * {
        w = new Client(server = server);
        raise unit;
      }
    }
    on unit goto Spawn;
  }
}

ghost machine Env {
  var server: id;
  var d: id;

  state Boot {
    entry {
      server = new Server();
      d = new Driver(server = server);
    }
  }
}

main Env();

// relay: a fault-sensitivity sample for chaos mode (pverify -chaos).
//
// The Sender transmits two Req events with distinct payloads and then a
// Check; the Receiver counts the Reqs and asserts it saw both when the
// Check arrives. The protocol is safe under every fault-free schedule, but
// it silently assumes a reliable transport:
//
//   - drop one Req   -> the count comes up short and the assert fails;
//   - dup one Req    -> the count overshoots and the assert fails;
//   - crash Receiver -> the Sender's next send hits a deleted machine.
//
// `pverify -chaos -faults=1 testdata/relay.p` finds the defect;
// `pverify testdata/relay.p` does not.

event Req(int);   // payload: message sequence stamp
event Check;

machine Sender {
  var peer: id;

  state Init {
    entry {
      peer = new Receiver();
      send peer, Req, 1;
      send peer, Req, 2;
      send peer, Check;
      delete;
    }
  }
}

machine Receiver {
  var count: int;

  action Count {
    count = count + 1;
  }

  state Counting {
    entry {
      count = 0;
    }
    on Req do Count;
    on Check goto Verify;
  }

  state Verify {
    entry {
      assert count == 2;
      delete;
    }
  }
}

main Sender();

// german_unsafe_paramN: a german-style directory sized for two caches,
// driven by an unbounded cache population — unsafe precisely because the
// instance count is a parameter.
//
// The Host grants shared access and records each grantee in one of two
// sharer slots, asserting that a free slot exists. That invariant holds
// for every closed system with at most two caches, but a ghost Driver
// creates caches in a loop: with three or more requesters the insert runs
// out of slots and the assertion fails.
//
// `pverify -abstract testdata/german_unsafe_paramN.p` finds the abstract
// counterexample (P402) and confirms it by concrete replay: the explicit
// explorer reproduces the assertion failure on a real schedule once the
// driver has spawned a third cache.

event ReqShared(id);   // cache -> host (payload: requesting cache)
event GrantShared;     // host -> cache
event unit;

machine Host {
  var shr1: id;
  var shr2: id;

  state Idle {
    entry { skip; }
    on ReqShared goto ProcShared;
  }

  state ProcShared {
    defer ReqShared;
    entry {
      if shr1 == null {
        shr1 = arg;
      } else {
        if shr2 == null {
          shr2 = arg;
        } else {
          assert false;   // no free sharer slot: the directory is oversubscribed
        }
      }
      send arg, GrantShared;
      raise unit;
    }
    on unit goto Idle;
  }
}

machine Cache {
  var host: id;

  state Invalid {
    entry {
      send host, ReqShared, this;
      raise unit;
    }
    on unit goto WaitShared;
  }

  state WaitShared {
    entry { skip; }
    on GrantShared goto Sharer;
  }

  state Sharer {
    entry { skip; }
    // A sharer tolerates a redundant grant: without this, the abstraction's
    // identity collapse (any pooled grant may reach any cache) would add a
    // spurious unhandled-event counterexample next to the real one.
    on GrantShared ignore;
  }
}

// The driver spawns a nondeterministic number of caches: one per loop
// iteration until the else-branch blocks it forever. The loop yields
// through the driver's own inbox (send-to-self, not raise) so each spawn
// is one scheduled step — a raise-driven loop would run every iteration
// inside a single atomic handler and the concrete explorer would have to
// enumerate the whole unbounded choice string at once.
ghost machine Driver {
  var host: id;
  var c: id;

  state Spawn {
    entry {
      if * {
        c = new Cache(host = host);
        send this, unit;
      }
    }
    on unit goto Spawn;
  }
}

ghost machine Env {
  var host: id;
  var d: id;

  state Boot {
    entry {
      host = new Host();
      d = new Driver(host = host);
    }
  }
}

main Env();

// shardkv_handoff: a fault-sensitivity sample for chaos mode, shard-
// migration-flavored (see examples/shardkv for the full protocol).
//
// The Source shard hands its two keys to the Dest shard and then activates
// it; the Dest asserts both slots are populated when Activate arrives —
// serving with a hole would return stale data. Payloads encode key*8+value.
// Safe under every fault-free schedule, but the handoff silently assumes a
// reliable transport:
//
//   - drop one Install -> a slot stays empty and the activation assert fails;
//   - dup one Install  -> harmless here (same slot re-written), but
//     dropping Activate strands the handoff (blocked, not broken);
//   - crash Dest       -> the Source's next send hits a deleted machine.
//
// `pverify -chaos -faults=1 testdata/shardkv_handoff.p` finds the defect;
// `pverify testdata/shardkv_handoff.p` does not.

event Install(int);   // payload: key*8 + value
event Activate;

machine Source {
  var dst: id;

  state Draining {
    entry {
      dst = new Dest();
      send dst, Install, 9;    // key 1, value 1
      send dst, Install, 18;   // key 2, value 2
      send dst, Activate;
      delete;
    }
  }
}

machine Dest {
  var v1: int;
  var v2: int;

  action Store {
    if arg / 8 == 1 {
      v1 = arg % 8;
    } else {
      v2 = arg % 8;
    }
  }

  state Installing {
    entry {
      v1 = 0;
      v2 = 0;
    }
    on Install do Store;
    on Activate goto Serve;
  }

  state Serve {
    entry {
      assert v1 == 1; // serving with a hole returns stale reads
      assert v2 == 2;
      delete;
    }
  }
}

main Source();

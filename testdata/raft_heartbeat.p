// raft_heartbeat: a fault-sensitivity sample for chaos mode, raft-flavored
// (see examples/raft for the full election protocol).
//
// The Leader streams two heartbeats and then checks its lease; the
// Follower counts the heartbeats it saw and asserts the lease is fully
// renewed when LeaseCheck arrives. Safe under every fault-free schedule,
// but the lease accounting silently assumes a reliable transport:
//
//   - drop one Heartbeat -> the renewal count comes up short, assert fails;
//   - dup one Heartbeat  -> the count overshoots and the assert fails;
//   - crash Follower     -> the Leader's next send hits a deleted machine.
//
// `pverify -chaos -faults=1 testdata/raft_heartbeat.p` finds the defect;
// `pverify testdata/raft_heartbeat.p` does not.

event Heartbeat(int);   // payload: heartbeat sequence number
event LeaseCheck;

machine Leader {
  var follower: id;

  state Term {
    entry {
      follower = new Follower();
      send follower, Heartbeat, 1;
      send follower, Heartbeat, 2;
      send follower, LeaseCheck;
      delete;
    }
  }
}

machine Follower {
  var renewals: int;

  action Renew {
    renewals = renewals + 1;
  }

  state Following {
    entry {
      renewals = 0;
    }
    on Heartbeat do Renew;
    on LeaseCheck goto Audit;
  }

  state Audit {
    entry {
      assert renewals == 2; // the lease outlives the term only if every beat landed
      delete;
    }
  }
}

main Leader();

// End-to-end tests of the command-line tools, exercising them exactly as a
// user would via `go run`.
package pgo_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// run executes a tool with args, returning combined output and the exit
// error (nil on success).
func run(t *testing.T, args ...string) (string, error) {
	t.Helper()
	if testing.Short() {
		t.Skip("spawns the go toolchain")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain unavailable")
	}
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestCLIVerifySafeProgram(t *testing.T) {
	out, err := run(t, "./cmd/pverify", "-bound", "2", "sample:pingpong")
	if err != nil {
		t.Fatalf("pverify failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "no safety violations") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestCLIVerifyBuggyProgram(t *testing.T) {
	out, err := run(t, "./cmd/pverify", "-bound", "1", "-trace", "sample:elevator-buggy")
	if err == nil {
		t.Fatalf("pverify should exit nonzero on a violation:\n%s", out)
	}
	for _, want := range []string{"VIOLATION", "unhandled event", "counterexample", "CloseDoor"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIVerifyLiveness(t *testing.T) {
	out, err := run(t, "./cmd/pverify", "-bound", "1", "-liveness", "sample:pingpong")
	if err != nil {
		t.Fatalf("pverify -liveness failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "liveness: no violations") {
		t.Fatalf("output missing liveness verdict:\n%s", out)
	}
}

func TestCLIVerifyParallelWorkers(t *testing.T) {
	out, err := run(t, "./cmd/pverify", "-bound", "2", "-workers", "4", "sample:elevator")
	if err != nil {
		t.Fatalf("parallel pverify failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "no safety violations") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestCLIRunElevator(t *testing.T) {
	out, err := run(t, "./cmd/prun", "-machine", "Elevator",
		"-send", "OpenDoor,DoorOpened,TimerFired,TimerFired,DoorClosed", "sample:elevator")
	if err != nil {
		t.Fatalf("prun failed: %v\n%s", err, out)
	}
	for _, want := range []string{"state Closed", "state Opening", "state Opened", "state OkToClose", "state Closing"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCLICompileAndRunGenerated(t *testing.T) {
	dir := filepath.Join("internal", "codegen", "testdata", "gen_cli")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	genFile := filepath.Join(dir, "main.go")

	out, err := run(t, "./cmd/pc", "-o", genFile, "sample:pingpong")
	if err != nil {
		t.Fatalf("pc failed: %v\n%s", err, out)
	}
	out, err = run(t, "./"+dir)
	if err != nil {
		t.Fatalf("generated program failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "quiescent; no machine errors") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestCLIFormatIdempotent(t *testing.T) {
	once, err := run(t, "./cmd/pfmt", "sample:elevator")
	if err != nil {
		t.Fatalf("pfmt failed: %v\n%s", err, once)
	}
	tmp := filepath.Join(t.TempDir(), "elevator.p")
	if err := os.WriteFile(tmp, []byte(once), 0o644); err != nil {
		t.Fatal(err)
	}
	twice, err := run(t, "./cmd/pfmt", tmp)
	if err != nil {
		t.Fatalf("pfmt reformat failed: %v\n%s", err, twice)
	}
	if once != twice {
		t.Fatal("pfmt is not idempotent")
	}
}

func TestCLIDot(t *testing.T) {
	out, err := run(t, "./cmd/pdot", "-machine", "Elevator", "sample:elevator")
	if err != nil {
		t.Fatalf("pdot failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, `digraph "Elevator"`) {
		t.Fatalf("not a DOT digraph:\n%.200s", out)
	}
	out, err = run(t, "./cmd/pdot", "-graph", "-bound", "1", "sample:pingpong")
	if err != nil {
		t.Fatalf("pdot -graph failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "digraph states") {
		t.Fatalf("not a state graph:\n%.200s", out)
	}
}

func TestCLIBadInput(t *testing.T) {
	out, err := run(t, "./cmd/pverify", "sample:doesnotexist")
	if err == nil {
		t.Fatalf("unknown sample accepted:\n%s", out)
	}
	if !strings.Contains(out, "unknown sample") {
		t.Errorf("unhelpful error:\n%s", out)
	}
	tmp := filepath.Join(t.TempDir(), "bad.p")
	os.WriteFile(tmp, []byte("machine M {"), 0o644)
	out, err = run(t, "./cmd/pc", tmp)
	if err == nil {
		t.Fatalf("syntax error accepted:\n%s", out)
	}
	if !strings.Contains(out, "error") {
		t.Errorf("no diagnostics printed:\n%s", out)
	}
}

func TestCLISimFindsBug(t *testing.T) {
	out, err := run(t, "./cmd/psim", "-walks", "50", "sample:german-buggy")
	if err == nil {
		t.Fatalf("psim should exit nonzero when walks violate:\n%s", out)
	}
	if !strings.Contains(out, "VIOLATION") {
		t.Fatalf("no violation reported:\n%s", out)
	}
}

func TestCLISimCleanProgram(t *testing.T) {
	out, err := run(t, "./cmd/psim", "-walks", "20", "sample:pingpong")
	if err != nil {
		t.Fatalf("psim failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "no violations found") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestCLISweep(t *testing.T) {
	out, err := run(t, "./cmd/pverify", "-sweep", "3", "sample:pingpong")
	if err != nil {
		t.Fatalf("sweep failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "series saturated") {
		t.Fatalf("saturation not detected:\n%s", out)
	}
}

func TestCLILint(t *testing.T) {
	out, err := run(t, "./cmd/plint", "sample:pingpong")
	if err != nil {
		t.Fatalf("plint should exit zero without error findings: %v\n%s", err, out)
	}
	if !strings.Contains(out, "P301") {
		t.Errorf("output missing the communication-cycle info:\n%s", out)
	}

	out, err = run(t, "./cmd/plint", "-json", "sample:elevator-buggy")
	if err != nil {
		t.Fatalf("warnings alone should not fail plint: %v\n%s", err, out)
	}
	for _, want := range []string{`"code": "P102"`, `"machine": "Elevator"`, `"event": "CloseDoor"`, `"ok": true`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON missing %q:\n%s", want, out)
		}
	}

	out, err = run(t, "./cmd/plint", "-Werror", "sample:elevator-buggy")
	if err == nil {
		t.Fatalf("-Werror should fail on warnings:\n%s", out)
	}

	out, err = run(t, "./cmd/plint", filepath.Join("internal", "analysis", "testdata", "unreachable_handler.p"))
	if err == nil {
		t.Fatalf("plint should exit nonzero on an error finding:\n%s", out)
	}
	if !strings.Contains(out, "error[P101]") {
		t.Errorf("output missing the P101 error:\n%s", out)
	}
}

func TestCLIDotComm(t *testing.T) {
	out, err := run(t, "./cmd/pdot", "-comm", "sample:pingpong")
	if err != nil {
		t.Fatalf("pdot -comm failed: %v\n%s", err, out)
	}
	for _, want := range []string{"digraph comm", "Pinger", "Ponger", "Ping, Done"} {
		if !strings.Contains(out, want) {
			t.Errorf("comm graph missing %q:\n%s", want, out)
		}
	}
}

func TestCLICheckWerror(t *testing.T) {
	out, err := run(t, "./cmd/pc", "-check", "sample:elevator-buggy")
	if err != nil {
		t.Fatalf("warnings alone should not fail -check: %v\n%s", err, out)
	}
	if !strings.Contains(out, "warning[P102]") {
		t.Errorf("-check did not surface the analysis warning:\n%s", out)
	}
	out, err = run(t, "./cmd/pc", "-check", "-Werror", "sample:elevator-buggy")
	if err == nil {
		t.Fatalf("-Werror should fail on analysis warnings:\n%s", out)
	}
	out, err = run(t, "./cmd/pc", "-check", "-Werror", "-no-analyze", "sample:elevator-buggy")
	if err != nil {
		t.Fatalf("-no-analyze should skip the analysis findings: %v\n%s", err, out)
	}
}

func TestCLIVerifyRunsAnalysis(t *testing.T) {
	out, err := run(t, "./cmd/pverify", "-bound", "1", "sample:elevator-buggy")
	if err == nil {
		t.Fatalf("pverify should exit nonzero:\n%s", out)
	}
	if !strings.Contains(out, "analysis: 51:9: warning[P102]") {
		t.Errorf("missing the analysis prelude:\n%s", out)
	}
	out, err = run(t, "./cmd/pverify", "-bound", "1", "-no-analyze", "sample:elevator-buggy")
	if err == nil {
		t.Fatalf("pverify should exit nonzero:\n%s", out)
	}
	if strings.Contains(out, "analysis:") {
		t.Errorf("-no-analyze still printed analysis findings:\n%s", out)
	}
}

func TestCLIJSONReport(t *testing.T) {
	out, err := run(t, "./cmd/pverify", "-json", "-bound", "1", "sample:elevator-buggy")
	if err == nil {
		t.Fatalf("should exit nonzero:\n%s", out)
	}
	for _, want := range []string{`"ok": false`, `"kind": "unhandled event"`, `"distinct_states"`, `"schedule"`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON missing %q:\n%s", want, out)
		}
	}
	out, err = run(t, "./cmd/pverify", "-json", "-bound", "1", "sample:pingpong")
	if err != nil {
		t.Fatalf("clean program should exit zero: %v\n%s", err, out)
	}
	// The full explorer-options block is emitted even on a clean run with
	// every setting at its default (regression: faults/fault_kinds used to
	// vanish under omitempty, leaving reports with differing shapes).
	for _, want := range []string{`"ok": true`, `"options"`, `"por": true`, `"max_states": 5000000`,
		`"faults": 0`, `"fault_kinds": ""`, `"reduced_states"`, `"ample_skips"`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON missing %q:\n%s", want, out)
		}
	}
}

func TestCLIChaosFindsRelayDefect(t *testing.T) {
	// Fault-free: clean.
	out, err := run(t, "./cmd/pverify", "testdata/relay.p")
	if err != nil {
		t.Fatalf("relay should verify clean without chaos: %v\n%s", err, out)
	}
	// One dropped message: the assertion fails, with a labeled fault step
	// in the replayed counterexample.
	out, err = run(t, "./cmd/pverify", "-chaos", "-fault-kinds", "drop", "-trace", "testdata/relay.p")
	if err == nil {
		t.Fatalf("pverify -chaos should exit nonzero on relay:\n%s", out)
	}
	for _, want := range []string{
		"chaos: fault budget 1 (kinds drop)",
		"VIOLATION", "assertion failed",
		"loses Req in transit",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// JSON labels the fault step.
	out, err = run(t, "./cmd/pverify", "-faults", "1", "-fault-kinds", "drop", "-json", "testdata/relay.p")
	if err == nil {
		t.Fatalf("should exit nonzero:\n%s", out)
	}
	for _, want := range []string{`"faults": 1`, `"fault_kinds": "drop"`, `"fault": "drop"`, `"outcome": "fault"`, `"fault_steps"`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON missing %q:\n%s", want, out)
		}
	}
}

func TestCLIRunWithInjection(t *testing.T) {
	out, err := run(t, "./cmd/prun",
		"-machine", "Elevator", "-send", "OpenDoor,DoorOpened",
		"-chaos-seed", "7", "-chaos-delay", "0.5", "-metrics", "sample:elevator")
	if err != nil {
		t.Fatalf("prun with injection failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "metrics:") {
		t.Errorf("missing metrics line:\n%s", out)
	}
}

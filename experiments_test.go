// Experiment harness: one test per table/figure of the paper's evaluation.
// Each test prints the regenerated rows/series (run with -v) and asserts
// the qualitative shape the paper reports. EXPERIMENTS.md records a
// captured run next to the paper's numbers.
package pgo_test

import (
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"pgo/internal/check"
	"pgo/internal/compile"
	"pgo/internal/core"
	"pgo/internal/handwritten"
	"pgo/internal/live"
	"pgo/internal/psamples"
)

// ------------------------------------------------------------- E1 (§4.1)

// TestExperimentE1Throughput reproduces §4.1: the P-generated driver and
// the hand-written driver process a 100-events/s workload, and both keep
// the average per-event processing time far below the 10ms budget. It also
// prints the code-size comparison (the paper: 150 lines of P + 1720 foreign
// vs 6000 lines of direct C).
func TestExperimentE1Throughput(t *testing.T) {
	const events = 500
	const interval = 10 * time.Millisecond // 100 events/s

	// --- P-generated driver ---
	rt, id, signal := startGeneratedDriver(t)
	defer func() {
		if errs := rt.Errors(); len(errs) != 0 {
			t.Errorf("machine errors: %v", errs)
		}
		rt.Stop()
	}()

	genPerEvent := drive(t, events, interval, func(i int) {
		ev := "SwitchOn"
		if i%2 == 1 {
			ev = "SwitchOff"
		}
		if err := rt.Send(id, ev, core.Null); err != nil {
			t.Fatal(err)
		}
		<-signal
	})

	// --- hand-written driver ---
	hwSignal := make(chan struct{}, 1)
	var hw *handwritten.Driver
	hw = handwritten.New(handwritten.Callbacks{
		LedOn:         func() { hw.Send(handwritten.LedOnAck); hwSignal <- struct{}{} },
		LedOff:        func() { hw.Send(handwritten.LedOffAck); hwSignal <- struct{}{} },
		NotifyStarted: func() { hwSignal <- struct{}{} },
	})
	defer hw.Close()
	hw.Send(handwritten.StartDevice)
	<-hwSignal
	hwPerEvent := drive(t, events, interval, func(i int) {
		ev := handwritten.SwitchOn
		if i%2 == 1 {
			ev = handwritten.SwitchOff
		}
		hw.Send(ev)
		<-hwSignal
	})

	pLoC := countLines(psamples.SwitchLED)
	hwLoC := fileLines(t, "internal/handwritten/driver.go")

	t.Logf("E1 (§4.1): switch-and-LED at 100 events/s, %d events", events)
	t.Logf("  %-22s %14s %10s", "driver", "avg per event", "LoC")
	t.Logf("  %-22s %14v %10d   (paper: 150 P + env)", "P generated+runtime", genPerEvent, pLoC)
	t.Logf("  %-22s %14v %10d   (paper: ~6000 C)", "hand-written Go", hwPerEvent, hwLoC)

	// The paper's claim: the generated driver keeps up with the event rate
	// (4ms average against a 10ms inter-arrival). Require both drivers to
	// process events well under the interval.
	if genPerEvent > interval/2 {
		t.Errorf("generated driver too slow: %v per event against %v budget", genPerEvent, interval)
	}
	if hwPerEvent > interval/2 {
		t.Errorf("hand-written driver too slow: %v per event", hwPerEvent)
	}
}

// drive sends events at the paced interval and returns the average
// processing time (excluding the pacing wait).
func drive(t *testing.T, events int, interval time.Duration, step func(i int)) time.Duration {
	t.Helper()
	var busy time.Duration
	next := time.Now()
	for i := 0; i < events; i++ {
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		start := time.Now()
		step(i)
		busy += time.Since(start)
		next = next.Add(interval)
		if time.Now().After(next.Add(10 * interval)) {
			// Fall behind by more than 10 ticks: resync rather than burst.
			next = time.Now()
		}
	}
	return busy / time.Duration(events)
}

func countLines(s string) int { return strings.Count(s, "\n") }

func fileLines(t *testing.T, path string) int {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return strings.Count(string(data), "\n")
}

// ------------------------------------------------------------- E2 (Fig 7)

// TestExperimentE2Fig7 regenerates Figure 7: distinct states explored as a
// function of the delay bound for the three benchmark programs. The paper
// scales Switch-LED by 10 and Elevator by 100 for legibility; the same
// scaled series is printed.
func TestExperimentE2Fig7(t *testing.T) {
	type series struct {
		name  string
		src   string
		maxD  int
		scale int
	}
	programs := []series{
		{"elevator", psamples.Elevator, 4, 100},
		{"switchled", psamples.SwitchLED, 3, 10},
		{"german(2)", psamples.German(2), 3, 1},
	}
	t.Log("E2 (Figure 7): states explored vs delay bound (scaled as in the paper)")
	for _, p := range programs {
		prog, diags, err := compile.Source(p.name, p.src)
		if err != nil {
			t.Fatalf("compile %s: %v\n%s", p.name, err, diags.String())
		}
		prev := 0
		var row []string
		for d := 0; d <= p.maxD; d++ {
			res, err := check.Explore(prog, check.Options{
				Mode: check.DelayBounded, Bound: d, MaxStates: 2_000_000,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Errored() {
				t.Fatalf("%s: unexpected violation: %v", p.name, res.FirstViolation())
			}
			if res.Stats.DistinctStates < prev {
				t.Errorf("%s: states not monotone in delay bound at d=%d", p.name, d)
			}
			prev = res.Stats.DistinctStates
			row = append(row, fmt.Sprintf("d=%d:%d", d, res.Stats.DistinctStates*p.scale))
		}
		t.Logf("  %-10s (x%-3d) %s", p.name, p.scale, strings.Join(row, "  "))
		if prev < 100 {
			t.Errorf("%s: exploration suspiciously small (%d states)", p.name, prev)
		}
	}
}

// ------------------------------------------------------------- E3 (§5)

// TestExperimentE3BugsAtLowDelay reproduces the paper's empirical claim:
// seeded bugs in all three benchmarks are found within delay bound 2.
func TestExperimentE3BugsAtLowDelay(t *testing.T) {
	cases := []struct {
		name string
		src  string
		kind core.ErrKind
	}{
		{"elevator-buggy", psamples.ElevatorBuggy, core.ErrUnhandled},
		{"switchled-buggy", psamples.SwitchLEDBuggy, core.ErrUnhandled},
		{"german-buggy(3)", psamples.GermanBuggy(3), core.ErrAssert},
	}
	t.Log("E3 (§5): delay bound at which the seeded bug is found (paper: <= 2)")
	for _, c := range cases {
		prog, diags, err := compile.Source(c.name, c.src)
		if err != nil {
			t.Fatalf("compile %s: %v\n%s", c.name, err, diags.String())
		}
		found := -1
		var states, schedLen int
		for d := 0; d <= 2 && found < 0; d++ {
			res, err := check.Explore(prog, check.Options{
				Mode: check.DelayBounded, Bound: d, StopAtFirstError: true, MaxStates: 2_000_000,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Errored() {
				v := res.FirstViolation()
				if v.Err.Kind != c.kind {
					t.Fatalf("%s: found %v, want %v", c.name, v.Err.Kind, c.kind)
				}
				found, states, schedLen = d, res.Stats.DistinctStates, len(v.Trace)
			}
		}
		if found < 0 {
			t.Errorf("%s: seeded bug not found within delay bound 2", c.name)
			continue
		}
		t.Logf("  %-18s found at d=%d  (%5d states, schedule length %d, %v)", c.name, found, states, schedLen, c.kind)
	}
}

// ------------------------------------------------------------- E4 (Fig 8)

// TestExperimentE4Fig8 regenerates Figure 8 on the synthetic USB machines:
// static P-state/transition counts next to the paper's, plus a bounded
// exploration of each machine against its ghost environment.
func TestExperimentE4Fig8(t *testing.T) {
	rows := []struct {
		name        string
		machine     string
		src         string
		paperStates int
		paperTrans  int
	}{
		{"HSM", "HSM", psamples.USBHub, 196, 361},
		{"PSM 3.0", "PSM30", psamples.USBPort30, 295, 752},
		{"PSM 2.0", "PSM20", psamples.USBPort20, 457, 1386},
		{"DSM", "DSM", psamples.USBDevice, 1919, 4238},
	}
	t.Log("E4 (Figure 8): synthetic USB hub stack")
	t.Log("  machine   P states (paper)  P trans (paper)  explored  time")
	prevStates := 0
	for _, r := range rows {
		prog, diags, err := compile.Source(r.name, r.src)
		if err != nil {
			t.Fatalf("%s: %v\n%s", r.name, err, diags.String())
		}
		m, ok := prog.MachineByName(r.machine)
		if !ok {
			t.Fatalf("%s: missing machine", r.name)
		}
		res, err := check.Explore(prog, check.Options{
			Mode: check.DelayBounded, Bound: 1, MaxStates: 200_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Errored() {
			t.Fatalf("%s: violation: %v", r.name, res.FirstViolation())
		}
		t.Logf("  %-8s %6d (%4d)   %7d (%4d)  %9d  %v",
			r.name, m.CountPStates(), r.paperStates, m.CountPTransitions(), r.paperTrans,
			res.Stats.DistinctStates, res.Stats.Elapsed.Round(time.Millisecond))
		// Shape: P-state counts within 5% of the paper's, and ordered
		// HSM < PSM3.0 < PSM2.0 < DSM like the table.
		if ratio := float64(m.CountPStates()) / float64(r.paperStates); ratio < 0.95 || ratio > 1.05 {
			t.Errorf("%s: P states %d deviate from paper's %d by more than 5%%", r.name, m.CountPStates(), r.paperStates)
		}
		if m.CountPStates() < prevStates {
			t.Errorf("%s: machine-size ordering broken", r.name)
		}
		prevStates = m.CountPStates()
	}
}

// ------------------------------------------------------------- E5 (§5)

// TestExperimentE5DepthVsDelay quantifies the motivation for delay
// bounding: depth-bounded search grows exponentially with depth while the
// delaying scheduler reaches arbitrarily long executions even at d=0.
func TestExperimentE5DepthVsDelay(t *testing.T) {
	prog, diags, err := compile.Source("elevator", psamples.Elevator)
	if err != nil {
		t.Fatalf("%v\n%s", err, diags.String())
	}
	t.Log("E5 (§5): depth bounding vs delay bounding on the elevator")
	var prev int
	growth := []float64{}
	for _, depth := range []int{5, 10, 15, 20} {
		res, err := check.Explore(prog, check.Options{
			Mode: check.DepthBounded, Bound: depth, MaxStates: 2_000_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("  depth-bounded depth=%2d: %7d states, max execution length %d",
			depth, res.Stats.DistinctStates, res.Stats.MaxDepth)
		if prev > 0 {
			growth = append(growth, float64(res.Stats.DistinctStates)/float64(prev))
		}
		prev = res.Stats.DistinctStates
	}
	for _, d := range []int{0, 1, 2} {
		res, err := check.Explore(prog, check.Options{
			Mode: check.DelayBounded, Bound: d, MaxStates: 2_000_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("  delay-bounded d=%d:       %7d states, max execution length %d",
			d, res.Stats.DistinctStates, res.Stats.MaxDepth)
		// The delaying scheduler reaches long executions with few states:
		// its max depth should dwarf the state count ratio of depth search.
		if res.Stats.MaxDepth < 30 {
			t.Errorf("delay-bounded d=%d reached only depth %d; expected long executions", d, res.Stats.MaxDepth)
		}
	}
	if len(growth) > 0 && growth[0] < 1.5 {
		t.Errorf("depth-bounded growth %v does not show the expected blow-up", growth)
	}
}

// ------------------------------------------------------------- E6 (§3.2)

// TestExperimentE6Liveness exercises the liveness checks: an always-
// deferred event is flagged, the postpone annotation excuses it, and the
// shipped benchmark programs are liveness-clean.
func TestExperimentE6Liveness(t *testing.T) {
	explore := func(name, src string, bound int) ([]live.Violation, bool) {
		prog, diags, err := compile.Source(name, src)
		if err != nil {
			t.Fatalf("compile %s: %v\n%s", name, err, diags.String())
		}
		res, err := check.Explore(prog, check.Options{
			Mode: check.DelayBounded, Bound: bound, CollectGraph: true, MaxStates: 500_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		return live.Check(prog, res.Graph, live.Options{}), res.Errored()
	}

	t.Log("E6 (§3.2): liveness checks")
	deferForever := `
event E; event Tick; event unit;
machine M {
  state S { defer E; entry { skip; } on Tick ignore; }
}
ghost machine Env {
  var m: id;
  state Init { entry { m = new M(); send m, E; raise unit; } on unit goto Loop; }
  state Loop {
    entry { if * { send m, Tick; raise unit; } }
    on unit goto Loop;
  }
}
main Env();
`
	vs, _ := explore("defer-forever", deferForever, 2)
	if len(vs) == 0 {
		t.Error("always-deferred event not flagged")
	} else {
		t.Logf("  defer-forever:   %v", vs[0])
	}

	postponed := strings.Replace(deferForever, "defer E;", "defer E; postpone E;", 1)
	vs, _ = explore("postponed", postponed, 2)
	for _, v := range vs {
		if v.Kind == live.DeferredForever {
			t.Errorf("postponed event still flagged: %v", v)
		}
	}
	t.Log("  with postpone:   excused (as specified by the refined property)")

	for _, name := range []string{"pingpong", "elevator", "switchled"} {
		s, _ := psamples.ByName(name)
		vs, errored := explore(name, s.Source, 2)
		if errored {
			t.Errorf("%s: unexpected safety violation during liveness exploration", name)
		}
		if len(vs) != 0 {
			t.Errorf("%s: unexpected liveness findings: %v", name, vs)
		} else {
			t.Logf("  %-16s clean", name+":")
		}
	}
}

// ------------------------------------------------------------ ablation E7

// TestExperimentE7SchedulerAblation compares the causal delaying scheduler
// against the round-robin base order: coverage per budget and bug-finding
// delay bound.
func TestExperimentE7SchedulerAblation(t *testing.T) {
	t.Log("E7 (ablation): causal vs round-robin delaying scheduler, elevator, budget 2")
	prog, diags, err := compile.Source("elevator", psamples.Elevator)
	if err != nil {
		t.Fatalf("%v\n%s", err, diags.String())
	}
	var causal, rr int
	for _, mode := range []check.Mode{check.DelayBounded, check.RoundRobinDelay} {
		res, err := check.Explore(prog, check.Options{Mode: mode, Bound: 2, MaxStates: 2_000_000})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("  %-20s %6d states", mode, res.Stats.DistinctStates)
		if mode == check.DelayBounded {
			causal = res.Stats.DistinctStates
		} else {
			rr = res.Stats.DistinctStates
		}
	}
	if causal <= rr {
		t.Errorf("causal scheduler should cover more states per budget: causal=%d rr=%d", causal, rr)
	}

	bprog, diags, err := compile.Source("german-buggy", psamples.GermanBuggy(3))
	if err != nil {
		t.Fatalf("%v\n%s", err, diags.String())
	}
	for _, mode := range []check.Mode{check.DelayBounded, check.RoundRobinDelay} {
		found := -1
		for d := 0; d <= 3 && found < 0; d++ {
			res, err := check.Explore(bprog, check.Options{
				Mode: mode, Bound: d, StopAtFirstError: true, MaxStates: 2_000_000,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Errored() {
				found = d
			}
		}
		t.Logf("  german-buggy(3) via %-20s bug at d=%d", mode, found)
	}
}

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation, plus the ablations called out in DESIGN.md. The experiment
// tests in experiments_test.go print the corresponding tables; these
// benchmarks provide the timed measurements.
//
//	E1 (§4.1)  BenchmarkSwitchLEDGenerated / BenchmarkSwitchLEDHandwritten
//	E2 (Fig 7) BenchmarkDelayBound{Elevator,SwitchLED,German}
//	E3 (§5)    BenchmarkBugFinding{Elevator,SwitchLED,German}
//	E4 (Fig 8) BenchmarkUSB{HSM,PSM30,PSM20,DSM}
//	E5 (§5)    BenchmarkDepthBoundElevator
//	ablations  BenchmarkAblation{FineGrained,NoDedup,RoundRobin}
package pgo_test

import (
	"fmt"
	"testing"
	"time"

	"pgo/internal/check"
	"pgo/internal/compile"
	"pgo/internal/core"
	"pgo/internal/handwritten"
	"pgo/internal/ir"
	"pgo/internal/psamples"
	prt "pgo/internal/runtime"
)

func compileBench(b *testing.B, name, src string) *ir.Program {
	b.Helper()
	prog, diags, err := compile.Source(name, src)
	if err != nil {
		b.Fatalf("compile %s: %v\n%s", name, err, diags.String())
	}
	return prog
}

// ------------------------------------------------------------- E1 (§4.1)

// startGeneratedDriver boots the erased P switch-and-LED driver with
// foreign bindings that acknowledge LED commands immediately and signal the
// benchmark loop, mirroring the paper's 100-events/s test harness.
func startGeneratedDriver(b testing.TB) (*prt.Runtime, core.MachineID, chan struct{}) {
	b.Helper()
	prog, diags, err := compile.Erased("switchled", psamples.SwitchLED)
	if err != nil {
		b.Fatalf("compile: %v\n%s", err, diags.String())
	}
	signal := make(chan struct{}, 1)
	var rt *prt.Runtime
	var id core.MachineID
	foreign := core.ForeignMap{
		"Driver.ledOn": func(ctx any, args []core.Value) (core.Value, error) {
			rt.Send(id, "LedOnAck", core.Null)
			signal <- struct{}{}
			return core.Null, nil
		},
		"Driver.ledOff": func(ctx any, args []core.Value) (core.Value, error) {
			rt.Send(id, "LedOffAck", core.Null)
			signal <- struct{}{}
			return core.Null, nil
		},
		"Driver.ledReset": func(ctx any, args []core.Value) (core.Value, error) {
			return core.Null, nil
		},
		"Driver.notifyStarted": func(ctx any, args []core.Value) (core.Value, error) {
			signal <- struct{}{}
			return core.Null, nil
		},
		"Driver.notifyStopped": func(ctx any, args []core.Value) (core.Value, error) {
			return core.Null, nil
		},
	}
	rt, err = prt.New(prog, prt.Options{Foreign: foreign})
	if err != nil {
		b.Fatal(err)
	}
	id, err = rt.CreateMachine("Driver", nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	if err := rt.Send(id, "StartDevice", core.Null); err != nil {
		b.Fatal(err)
	}
	<-signal // notifyStarted
	return rt, id, signal
}

// BenchmarkSwitchLEDGenerated measures one full event round trip through
// the P-generated driver: host switch interrupt -> driver handler ->
// foreign LED command -> ack -> back to Ready.
func BenchmarkSwitchLEDGenerated(b *testing.B) {
	rt, id, signal := startGeneratedDriver(b)
	defer rt.Stop()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := "SwitchOn"
		if i%2 == 1 {
			ev = "SwitchOff"
		}
		if err := rt.Send(id, ev, core.Null); err != nil {
			b.Fatal(err)
		}
		<-signal // the LED command issued by the handler
	}
	b.StopTimer()
	if errs := rt.Errors(); len(errs) != 0 {
		b.Fatalf("machine errors: %v", errs)
	}
}

// BenchmarkSwitchLEDHandwritten is the same workload on the §4.1 baseline:
// the driver written directly in Go.
func BenchmarkSwitchLEDHandwritten(b *testing.B) {
	signal := make(chan struct{}, 1)
	var d *handwritten.Driver
	d = handwritten.New(handwritten.Callbacks{
		LedOn:         func() { d.Send(handwritten.LedOnAck); signal <- struct{}{} },
		LedOff:        func() { d.Send(handwritten.LedOffAck); signal <- struct{}{} },
		NotifyStarted: func() { signal <- struct{}{} },
	})
	defer d.Close()
	d.Send(handwritten.StartDevice)
	<-signal
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := handwritten.SwitchOn
		if i%2 == 1 {
			ev = handwritten.SwitchOff
		}
		d.Send(ev)
		<-signal
	}
}

// ------------------------------------------------------------- E2 (Fig 7)

func benchDelayBound(b *testing.B, name, src string, bounds []int) {
	prog := compileBench(b, name, src)
	for _, d := range bounds {
		d := d
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			b.ReportAllocs()
			var states int
			for i := 0; i < b.N; i++ {
				res, err := check.Explore(prog, check.Options{
					Mode: check.DelayBounded, Bound: d, MaxStates: 2_000_000,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Errored() {
					b.Fatalf("unexpected violation: %v", res.FirstViolation())
				}
				states = res.Stats.DistinctStates
			}
			b.ReportMetric(float64(states), "states")
		})
	}
}

func BenchmarkDelayBoundElevator(b *testing.B) {
	benchDelayBound(b, "elevator", psamples.Elevator, []int{0, 1, 2, 3})
}

func BenchmarkDelayBoundSwitchLED(b *testing.B) {
	benchDelayBound(b, "switchled", psamples.SwitchLED, []int{0, 1, 2})
}

func BenchmarkDelayBoundGerman(b *testing.B) {
	benchDelayBound(b, "german", psamples.German(2), []int{0, 1, 2})
}

// --------------------------------------------------------------- E3 (§5)

func benchBugFinding(b *testing.B, name, src string, wantKind core.ErrKind) {
	prog := compileBench(b, name, src)
	b.ResetTimer()
	var depth int
	for i := 0; i < b.N; i++ {
		found := false
		for d := 0; d <= 3 && !found; d++ {
			res, err := check.Explore(prog, check.Options{
				Mode: check.DelayBounded, Bound: d, StopAtFirstError: true, MaxStates: 2_000_000,
			})
			if err != nil {
				b.Fatal(err)
			}
			if res.Errored() {
				if res.FirstViolation().Err.Kind != wantKind {
					b.Fatalf("found %v, want %v", res.FirstViolation().Err.Kind, wantKind)
				}
				found = true
				depth = d
			}
		}
		if !found {
			b.Fatal("seeded bug not found within delay bound 3")
		}
	}
	b.ReportMetric(float64(depth), "delay-bound")
}

func BenchmarkBugFindingElevator(b *testing.B) {
	benchBugFinding(b, "elevator-buggy", psamples.ElevatorBuggy, core.ErrUnhandled)
}

func BenchmarkBugFindingSwitchLED(b *testing.B) {
	benchBugFinding(b, "switchled-buggy", psamples.SwitchLEDBuggy, core.ErrUnhandled)
}

func BenchmarkBugFindingGerman(b *testing.B) {
	benchBugFinding(b, "german-buggy", psamples.GermanBuggy(3), core.ErrAssert)
}

// ------------------------------------------------------------- E4 (Fig 8)

func benchUSB(b *testing.B, name, src string, cap int) {
	prog := compileBench(b, name, src)
	b.ResetTimer()
	var states int
	for i := 0; i < b.N; i++ {
		res, err := check.Explore(prog, check.Options{
			Mode: check.DelayBounded, Bound: 1, MaxStates: cap,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Errored() {
			b.Fatalf("violation: %v", res.FirstViolation())
		}
		states = res.Stats.DistinctStates
	}
	b.ReportMetric(float64(states), "states")
}

func BenchmarkUSBHSM(b *testing.B)   { benchUSB(b, "usb-hsm", psamples.USBHub, 200_000) }
func BenchmarkUSBPSM30(b *testing.B) { benchUSB(b, "usb-psm3", psamples.USBPort30, 200_000) }
func BenchmarkUSBPSM20(b *testing.B) { benchUSB(b, "usb-psm2", psamples.USBPort20, 200_000) }
func BenchmarkUSBDSM(b *testing.B)   { benchUSB(b, "usb-dsm", psamples.USBDevice, 200_000) }

// --------------------------------------------------------------- E5 (§5)

// BenchmarkDepthBoundElevator shows the exponential growth of plain depth
// bounding that motivates delay bounding.
func BenchmarkDepthBoundElevator(b *testing.B) {
	prog := compileBench(b, "elevator", psamples.Elevator)
	for _, depth := range []int{10, 15, 20} {
		depth := depth
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			var states int
			for i := 0; i < b.N; i++ {
				res, err := check.Explore(prog, check.Options{
					Mode: check.DepthBounded, Bound: depth, MaxStates: 2_000_000,
				})
				if err != nil {
					b.Fatal(err)
				}
				states = res.Stats.DistinctStates
			}
			b.ReportMetric(float64(states), "states")
		})
	}
}

// -------------------------------------------------------------- ablations

// BenchmarkAblationFineGrained ablates the atomicity reduction: context
// switches also at every dequeue.
func BenchmarkAblationFineGrained(b *testing.B) {
	prog := compileBench(b, "elevator", psamples.Elevator)
	for _, fine := range []bool{false, true} {
		fine := fine
		name := "sends-only"
		if fine {
			name = "also-dequeues"
		}
		b.Run(name, func(b *testing.B) {
			var states, nodes int
			for i := 0; i < b.N; i++ {
				res, err := check.Explore(prog, check.Options{
					Mode: check.DelayBounded, Bound: 2, MaxStates: 2_000_000, FineGrained: fine,
				})
				if err != nil {
					b.Fatal(err)
				}
				states = res.Stats.DistinctStates
				nodes = res.Stats.SearchNodes
			}
			b.ReportMetric(float64(states), "states")
			b.ReportMetric(float64(nodes), "nodes")
		})
	}
}

// BenchmarkAblationNoDedup ablates the ⊕ queue dedup: queues flood and the
// state space becomes unbounded, so the run is capped and reports the time
// to hit the cap.
func BenchmarkAblationNoDedup(b *testing.B) {
	prog := compileBench(b, "elevator", psamples.Elevator)
	for _, dedup := range []bool{true, false} {
		dedup := dedup
		name := "dedup-on"
		if !dedup {
			name = "dedup-off"
		}
		b.Run(name, func(b *testing.B) {
			var states int
			truncated := false
			for i := 0; i < b.N; i++ {
				res, err := check.Explore(prog, check.Options{
					Mode: check.DelayBounded, Bound: 2, MaxStates: 10_000, DisableDedup: !dedup,
				})
				if err != nil {
					b.Fatal(err)
				}
				states = res.Stats.DistinctStates
				truncated = res.Stats.Truncated
			}
			b.ReportMetric(float64(states), "states")
			if truncated {
				b.ReportMetric(1, "truncated")
			} else {
				b.ReportMetric(0, "truncated")
			}
		})
	}
}

// BenchmarkAblationRoundRobin compares the causal delaying scheduler with a
// round-robin base order at the same budget.
func BenchmarkAblationRoundRobin(b *testing.B) {
	prog := compileBench(b, "elevator", psamples.Elevator)
	for _, mode := range []check.Mode{check.DelayBounded, check.RoundRobinDelay} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			var states int
			for i := 0; i < b.N; i++ {
				res, err := check.Explore(prog, check.Options{
					Mode: mode, Bound: 2, MaxStates: 2_000_000,
				})
				if err != nil {
					b.Fatal(err)
				}
				states = res.Stats.DistinctStates
			}
			b.ReportMetric(float64(states), "states")
		})
	}
}

// BenchmarkRuntimeCreateMachine measures machine instantiation cost
// (goroutine + tables), relevant to the paper's "drivers are parsimonious
// with threads" discussion.
func BenchmarkRuntimeCreateMachine(b *testing.B) {
	prog, diags, err := compile.Erased("pingpong", psamples.PingPong)
	if err != nil {
		b.Fatalf("%v\n%s", err, diags.String())
	}
	rt, err := prt.New(prog, prt.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Stop()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.CreateMachine("Ponger", nil, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	rt.Quiesce(10 * time.Second)
}

// benchFingerprintOn measures global-state fingerprinting — the inner loop
// of the explorer — on one compiled sample. Fingerprints are cached per
// Global, so the cached variants show the steady-state cost of a second
// lookup on the same state (graph interning after dedup), while the fresh
// variants invalidate one machine's cache before each computation via a
// ⊕-dropped duplicate send — a mutation entry point that leaves the
// configuration unchanged. On multi-machine samples the fresh variants
// therefore measure exactly the incremental case the explorer hits after
// every macro step: one machine mutated, the rest untouched.
func benchFingerprintOn(b *testing.B, name, src string, steps int) {
	prog := compileBench(b, name, src)
	g := core.NewGlobal(prog, nil)
	if _, err := g.CreateMain(); err != nil {
		b.Fatal(err)
	}
	// Advance so the configuration is nontrivial (and, for the multi-machine
	// samples, so every machine has been created).
	for i := 0; i < steps; i++ {
		for _, id := range g.LiveIDs() {
			if g.Enabled(id) {
				g.RunToSchedPoint(id, &core.FixedChoices{}, 0)
				break
			}
		}
	}
	b.Logf("%s: %d machines live", name, len(g.LiveIDs()))
	id := g.LiveIDs()[0]
	if _, err := g.Send(id, 0, core.Null); err != nil { // prime the duplicate
		b.Fatal(err)
	}
	invalidate := func() {
		if _, err := g.Send(id, 0, core.Null); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("exact-fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			invalidate()
			_ = g.Fingerprint()
		}
	})
	b.Run("exact-cached", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = g.Fingerprint()
		}
	})
	b.Run("hash-fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			invalidate()
			_ = g.Hash()
		}
	})
	b.Run("hash-cached", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = g.Hash()
		}
	})
}

// BenchmarkFingerprint covers the single-machine-dominated elevator and a
// german-N multi-machine variant where a single machine is mutated between
// samples — the case incremental per-machine fingerprinting turns from
// O(all machines) into O(1 machine + combine).
func BenchmarkFingerprint(b *testing.B) {
	b.Run("elevator", func(b *testing.B) {
		benchFingerprintOn(b, "elevator", psamples.Elevator, 5)
	})
	b.Run("german-3", func(b *testing.B) {
		benchFingerprintOn(b, "german", psamples.German(3), 30)
	})
}

// BenchmarkFingerprintScheme compares the two explorer key schemes end to
// end: hashed 128-bit fingerprints (default) against exact canonical
// strings (-exact-fp), on the same delay-bounded search.
func BenchmarkFingerprintScheme(b *testing.B) {
	prog := compileBench(b, "elevator", psamples.Elevator)
	for _, exact := range []bool{false, true} {
		exact := exact
		name := "hashed"
		if exact {
			name = "exact"
		}
		b.Run(name, func(b *testing.B) {
			var states int
			for i := 0; i < b.N; i++ {
				res, err := check.Explore(prog, check.Options{
					Mode: check.DelayBounded, Bound: 2, MaxStates: 2_000_000,
					ExactFingerprints: exact,
				})
				if err != nil {
					b.Fatal(err)
				}
				states = res.Stats.DistinctStates
			}
			b.ReportMetric(float64(states), "states")
		})
	}
}

// BenchmarkClone measures global-state cloning, the other inner loop.
func BenchmarkClone(b *testing.B) {
	prog := compileBench(b, "elevator", psamples.Elevator)
	g := core.NewGlobal(prog, nil)
	if _, err := g.CreateMain(); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		for _, id := range g.LiveIDs() {
			if g.Enabled(id) {
				g.RunToSchedPoint(id, &core.FixedChoices{}, 0)
				break
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Clone()
	}
}

// BenchmarkParallelExplore measures multicore scaling of the delay-bounded
// search (the paper scaled Zing runs across cores for the USB case study).
func BenchmarkParallelExplore(b *testing.B) {
	prog := compileBench(b, "german", psamples.German(2))
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var states int
			for i := 0; i < b.N; i++ {
				res, err := check.Explore(prog, check.Options{
					Mode: check.DelayBounded, Bound: 2, MaxStates: 2_000_000, Workers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				states = res.Stats.DistinctStates
			}
			b.ReportMetric(float64(states), "states")
		})
	}
}

module pgo

go 1.22

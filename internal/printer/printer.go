// Package printer renders P syntax trees back to canonical source text.
// Printing is deterministic and idempotent: parse(print(ast)) yields an
// equivalent tree, and printing that tree again yields identical text.
package printer

import (
	"fmt"
	"strings"

	"pgo/internal/ast"
)

// Print renders a whole program.
func Print(p *ast.Program) string {
	var pr printer
	for _, e := range p.Events {
		pr.eventDecl(e)
	}
	if len(p.Events) > 0 {
		pr.nl()
	}
	for i, m := range p.Machines {
		if i > 0 {
			pr.nl()
		}
		pr.machineDecl(m)
	}
	if p.Main != nil {
		pr.nl()
		pr.mainDecl(p.Main)
	}
	return pr.b.String()
}

// PrintStmt renders a single statement at the given indent level.
func PrintStmt(s ast.Stmt, indent int) string {
	var pr printer
	pr.indent = indent
	pr.stmt(s)
	return pr.b.String()
}

// PrintExpr renders an expression.
func PrintExpr(e ast.Expr) string {
	var pr printer
	return pr.expr(e)
}

type printer struct {
	b      strings.Builder
	indent int
}

func (p *printer) line(format string, args ...any) {
	p.b.WriteString(strings.Repeat("  ", p.indent))
	fmt.Fprintf(&p.b, format, args...)
	p.b.WriteByte('\n')
}

func (p *printer) nl() { p.b.WriteByte('\n') }

func (p *printer) eventDecl(e *ast.EventDecl) {
	if e.Payload != nil {
		p.line("event %s(%s);", e.Name.Name, e.Payload.Kind)
	} else {
		p.line("event %s;", e.Name.Name)
	}
}

func (p *printer) machineDecl(m *ast.MachineDecl) {
	ghost := ""
	if m.Ghost {
		ghost = "ghost "
	}
	p.line("%smachine %s {", ghost, m.Name.Name)
	p.indent++
	for _, v := range m.Vars {
		g := ""
		if v.Ghost && !m.Ghost {
			g = "ghost "
		}
		p.line("%svar %s: %s;", g, v.Name.Name, v.Type.Kind)
	}
	for _, f := range m.Foreign {
		p.foreignDecl(f)
	}
	for _, a := range m.Actions {
		p.nl()
		p.line("action %s {", a.Name.Name)
		p.blockBody(a.Body)
		p.line("}")
	}
	for _, s := range m.States {
		p.nl()
		p.stateDecl(s)
	}
	p.indent--
	p.line("}")
}

func (p *printer) foreignDecl(f *ast.ForeignDecl) {
	var params []string
	for _, t := range f.Params {
		params = append(params, t.Kind.String())
	}
	sig := fmt.Sprintf("foreign %s(%s)", f.Name.Name, strings.Join(params, ", "))
	if f.Result != nil {
		sig += ": " + f.Result.Kind.String()
	}
	if f.Model == nil {
		p.line("%s;", sig)
		return
	}
	p.line("%s {", sig)
	p.blockBody(f.Model)
	p.line("}")
}

func (p *printer) stateDecl(s *ast.StateDecl) {
	p.line("state %s {", s.Name.Name)
	p.indent++
	if len(s.Deferred) > 0 {
		p.line("defer %s;", names(s.Deferred))
	}
	if len(s.Postponed) > 0 {
		p.line("postpone %s;", names(s.Postponed))
	}
	if s.Entry != nil {
		p.line("entry {")
		p.blockBody(s.Entry)
		p.line("}")
	}
	if s.Exit != nil {
		p.line("exit {")
		p.blockBody(s.Exit)
		p.line("}")
	}
	for _, tr := range s.Trans {
		switch tr.Kind {
		case ast.TransStep:
			p.line("on %s goto %s;", tr.Event.Name, tr.Target.Name)
		case ast.TransCall:
			p.line("on %s push %s;", tr.Event.Name, tr.Target.Name)
		case ast.TransAction:
			p.line("on %s do %s;", tr.Event.Name, tr.Target.Name)
		case ast.TransIgnore:
			p.line("on %s ignore;", tr.Event.Name)
		}
	}
	p.indent--
	p.line("}")
}

func names(ids []*ast.Ident) string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = id.Name
	}
	return strings.Join(out, ", ")
}

func (p *printer) mainDecl(m *ast.MainDecl) {
	p.line("main %s(%s);", m.Machine.Name, p.inits(m.Inits))
}

func (p *printer) inits(inits []*ast.Init) string {
	parts := make([]string, len(inits))
	for i, in := range inits {
		parts[i] = fmt.Sprintf("%s = %s", in.Name.Name, p.expr(in.Expr))
	}
	return strings.Join(parts, ", ")
}

func (p *printer) blockBody(b *ast.Block) {
	p.indent++
	for _, s := range b.Stmts {
		p.stmt(s)
	}
	p.indent--
}

func (p *printer) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.Block:
		p.line("{")
		p.blockBody(s)
		p.line("}")
	case *ast.SkipStmt:
		p.line("skip;")
	case *ast.AssignStmt:
		p.line("%s = %s;", s.Name.Name, p.expr(s.Expr))
	case *ast.NewStmt:
		p.line("%s = new %s(%s);", s.Name.Name, s.Machine.Name, p.inits(s.Inits))
	case *ast.DeleteStmt:
		p.line("delete;")
	case *ast.SendStmt:
		if s.Payload != nil {
			p.line("send %s, %s, %s;", p.expr(s.Target), s.Event.Name, p.expr(s.Payload))
		} else {
			p.line("send %s, %s;", p.expr(s.Target), s.Event.Name)
		}
	case *ast.RaiseStmt:
		if s.Payload != nil {
			p.line("raise %s, %s;", s.Event.Name, p.expr(s.Payload))
		} else {
			p.line("raise %s;", s.Event.Name)
		}
	case *ast.LeaveStmt:
		p.line("leave;")
	case *ast.ReturnStmt:
		p.line("return;")
	case *ast.AssertStmt:
		p.line("assert %s;", p.expr(s.Expr))
	case *ast.IfStmt:
		p.ifStmt(s)
	case *ast.WhileStmt:
		p.line("while %s {", p.expr(s.Cond))
		p.blockBody(s.Body)
		p.line("}")
	case *ast.CallStmt:
		p.line("call %s;", s.State.Name)
	case *ast.ExprStmt:
		p.line("%s;", p.expr(s.Call))
	default:
		p.line("/* unknown statement %T */", s)
	}
}

func (p *printer) ifStmt(s *ast.IfStmt) {
	p.line("if %s {", p.expr(s.Cond))
	p.blockBody(s.Then)
	switch e := s.Else.(type) {
	case nil:
		p.line("}")
	case *ast.Block:
		p.line("} else {")
		p.blockBody(e)
		p.line("}")
	case *ast.IfStmt:
		// Render nested else-if as an explicit else block for canonicality.
		p.line("} else {")
		p.indent++
		p.ifStmt(e)
		p.indent--
		p.line("}")
	default:
		p.line("} else {")
		p.indent++
		p.stmt(e)
		p.indent--
		p.line("}")
	}
}

// expr renders an expression with minimal parentheses: parens are inserted
// exactly where a child's precedence is too low for its context.
func (p *printer) expr(e ast.Expr) string {
	return p.exprPrec(e, 0)
}

func binPrec(op ast.BinaryOp) int {
	switch op {
	case ast.OpOr:
		return 1
	case ast.OpAnd:
		return 2
	case ast.OpEq, ast.OpNeq:
		return 3
	case ast.OpLt, ast.OpLe, ast.OpGt, ast.OpGe:
		return 4
	case ast.OpAdd, ast.OpSub:
		return 5
	default:
		return 6
	}
}

func (p *printer) exprPrec(e ast.Expr, min int) string {
	switch e := e.(type) {
	case *ast.Lit:
		switch e.Kind {
		case ast.LitInt:
			return fmt.Sprintf("%d", e.Int)
		case ast.LitTrue:
			return "true"
		case ast.LitFalse:
			return "false"
		case ast.LitNull:
			return "null"
		case ast.LitThis:
			return "this"
		case ast.LitMsg:
			return "msg"
		case ast.LitArg:
			return "arg"
		case ast.LitChoose:
			return "*"
		}
		return "?"
	case *ast.NameExpr:
		return e.Name.Name
	case *ast.UnaryExpr:
		return e.Op.String() + p.exprPrec(e.X, 7)
	case *ast.BinaryExpr:
		prec := binPrec(e.Op)
		s := fmt.Sprintf("%s %s %s", p.exprPrec(e.X, prec), e.Op, p.exprPrec(e.Y, prec+1))
		if prec < min {
			return "(" + s + ")"
		}
		return s
	case *ast.CallExpr:
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			args[i] = p.exprPrec(a, 0)
		}
		return fmt.Sprintf("%s(%s)", e.Name.Name, strings.Join(args, ", "))
	default:
		return fmt.Sprintf("/* %T */", e)
	}
}

package printer_test

import (
	"fmt"
	"math/rand"
	"testing"

	"pgo/internal/ast"
	"pgo/internal/parser"
	"pgo/internal/printer"
	"pgo/internal/source"
)

// TestRandomProgramsRoundTrip generates random well-formed ASTs, prints
// them, reparses the output, and checks that printing the reparsed tree
// reproduces the text exactly — print ∘ parse is the identity on printed
// programs, for arbitrary program shapes, not just the hand-written samples.
func TestRandomProgramsRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		r := rand.New(rand.NewSource(seed))
		prog := genProgram(r)
		once := printer.Print(prog)
		var diags source.DiagList
		reparsed := parser.Parse(once, &diags)
		if diags.HasErrors() {
			t.Fatalf("seed %d: printed program does not reparse:\n%s\n--- source ---\n%s", seed, diags.String(), once)
		}
		twice := printer.Print(reparsed)
		if once != twice {
			t.Fatalf("seed %d: round trip not stable:\n--- once ---\n%s\n--- twice ---\n%s", seed, once, twice)
		}
	}
}

// --------------------------------------------------------- AST generation

type gen struct {
	r        *rand.Rand
	events   []string
	machines []string
	// per-machine pools while generating a machine body
	vars    []string
	states  []string
	actions []string
	depth   int
}

func genProgram(r *rand.Rand) *ast.Program {
	g := &gen{r: r}
	p := &ast.Program{}
	nEvents := 1 + r.Intn(4)
	for i := 0; i < nEvents; i++ {
		name := fmt.Sprintf("Ev%d", i)
		g.events = append(g.events, name)
		d := &ast.EventDecl{Name: id(name)}
		if r.Intn(3) == 0 {
			d.Payload = &ast.TypeExpr{Kind: ast.TypeInt}
		}
		p.Events = append(p.Events, d)
	}
	nMachines := 1 + r.Intn(3)
	for i := 0; i < nMachines; i++ {
		name := fmt.Sprintf("M%d", i)
		g.machines = append(g.machines, name)
	}
	for i := 0; i < nMachines; i++ {
		p.Machines = append(p.Machines, g.machine(fmt.Sprintf("M%d", i), i > 0 && g.r.Intn(3) == 0))
	}
	p.Main = &ast.MainDecl{Machine: id("M0")}
	return p
}

func id(name string) *ast.Ident { return &ast.Ident{Name: name} }

func (g *gen) machine(name string, ghost bool) *ast.MachineDecl {
	m := &ast.MachineDecl{Ghost: ghost, Name: id(name)}
	g.vars, g.states, g.actions = nil, nil, nil
	nVars := g.r.Intn(4)
	for i := 0; i < nVars; i++ {
		vname := fmt.Sprintf("v%d", i)
		g.vars = append(g.vars, vname)
		kinds := []ast.TypeKind{ast.TypeInt, ast.TypeBool, ast.TypeID, ast.TypeEvent}
		m.Vars = append(m.Vars, &ast.VarDecl{
			Ghost: !ghost && g.r.Intn(4) == 0,
			Name:  id(vname),
			Type:  &ast.TypeExpr{Kind: kinds[g.r.Intn(len(kinds))]},
		})
	}
	nStates := 1 + g.r.Intn(3)
	for i := 0; i < nStates; i++ {
		g.states = append(g.states, fmt.Sprintf("S%d", i))
	}
	nActions := g.r.Intn(2)
	for i := 0; i < nActions; i++ {
		aname := fmt.Sprintf("A%d", i)
		g.actions = append(g.actions, aname)
		m.Actions = append(m.Actions, &ast.ActionDecl{Name: id(aname), Body: g.block()})
	}
	for i := 0; i < nStates; i++ {
		m.States = append(m.States, g.state(fmt.Sprintf("S%d", i)))
	}
	return m
}

func (g *gen) state(name string) *ast.StateDecl {
	s := &ast.StateDecl{Name: id(name)}
	if g.r.Intn(2) == 0 {
		s.Entry = g.block()
	}
	if g.r.Intn(4) == 0 {
		s.Exit = &ast.Block{Stmts: []ast.Stmt{&ast.SkipStmt{}}}
	}
	if g.r.Intn(3) == 0 {
		s.Deferred = []*ast.Ident{id(g.pick(g.events))}
	}
	if g.r.Intn(5) == 0 {
		s.Postponed = []*ast.Ident{id(g.pick(g.events))}
	}
	used := map[string]bool{}
	nTrans := g.r.Intn(3)
	for i := 0; i < nTrans; i++ {
		ev := g.pick(g.events)
		if used[ev] {
			continue
		}
		used[ev] = true
		tr := &ast.TransDecl{Event: id(ev)}
		switch g.r.Intn(4) {
		case 0:
			tr.Kind = ast.TransStep
			tr.Target = id(g.pick(g.states))
		case 1:
			tr.Kind = ast.TransCall
			tr.Target = id(g.pick(g.states))
		case 2:
			if len(g.actions) > 0 {
				tr.Kind = ast.TransAction
				tr.Target = id(g.pick(g.actions))
			} else {
				tr.Kind = ast.TransIgnore
			}
		default:
			tr.Kind = ast.TransIgnore
		}
		s.Trans = append(s.Trans, tr)
	}
	return s
}

func (g *gen) pick(pool []string) string { return pool[g.r.Intn(len(pool))] }

func (g *gen) block() *ast.Block {
	b := &ast.Block{}
	n := 1 + g.r.Intn(3)
	for i := 0; i < n; i++ {
		b.Stmts = append(b.Stmts, g.stmt())
	}
	return b
}

func (g *gen) stmt() ast.Stmt {
	g.depth++
	defer func() { g.depth-- }()
	choices := 8
	if g.depth > 3 {
		choices = 5 // only leaf statements deep down
	}
	switch g.r.Intn(choices) {
	case 0:
		return &ast.SkipStmt{}
	case 1:
		if len(g.vars) == 0 {
			return &ast.SkipStmt{}
		}
		return &ast.AssignStmt{Name: id(g.pick(g.vars)), Expr: g.expr()}
	case 2:
		return &ast.AssertStmt{Expr: g.expr()}
	case 3:
		return &ast.RaiseStmt{Event: id(g.pick(g.events))}
	case 4:
		if len(g.vars) == 0 {
			return &ast.SkipStmt{}
		}
		return &ast.SendStmt{
			Target:  &ast.NameExpr{Name: id(g.pick(g.vars))},
			Event:   id(g.pick(g.events)),
			Payload: g.maybeExpr(),
		}
	case 5:
		n := &ast.IfStmt{Cond: g.expr(), Then: g.block()}
		if g.r.Intn(2) == 0 {
			n.Else = g.block()
		}
		return n
	case 6:
		return &ast.WhileStmt{Cond: g.expr(), Body: g.block()}
	default:
		return &ast.CallStmt{State: id(g.pick(g.states))}
	}
}

func (g *gen) maybeExpr() ast.Expr {
	if g.r.Intn(2) == 0 {
		return nil
	}
	return g.expr()
}

func (g *gen) expr() ast.Expr {
	return g.exprDepth(0)
}

func (g *gen) exprDepth(d int) ast.Expr {
	if d > 2 || g.r.Intn(3) == 0 {
		switch g.r.Intn(6) {
		case 0:
			return &ast.Lit{Kind: ast.LitInt, Int: int64(g.r.Intn(100))}
		case 1:
			return &ast.Lit{Kind: ast.LitTrue}
		case 2:
			return &ast.Lit{Kind: ast.LitNull}
		case 3:
			return &ast.Lit{Kind: ast.LitThis}
		case 4:
			if len(g.vars) > 0 {
				return &ast.NameExpr{Name: id(g.pick(g.vars))}
			}
			return &ast.Lit{Kind: ast.LitArg}
		default:
			return &ast.Lit{Kind: ast.LitChoose}
		}
	}
	switch g.r.Intn(3) {
	case 0:
		op := ast.OpNot
		if g.r.Intn(2) == 0 {
			op = ast.OpNeg
		}
		return &ast.UnaryExpr{Op: op, X: g.exprDepth(d + 1)}
	default:
		ops := []ast.BinaryOp{
			ast.OpAdd, ast.OpSub, ast.OpMul, ast.OpDiv, ast.OpMod,
			ast.OpEq, ast.OpNeq, ast.OpLt, ast.OpLe, ast.OpGt, ast.OpGe,
			ast.OpAnd, ast.OpOr,
		}
		return &ast.BinaryExpr{
			Op: ops[g.r.Intn(len(ops))],
			X:  g.exprDepth(d + 1),
			Y:  g.exprDepth(d + 1),
		}
	}
}

package printer_test

import (
	"strings"
	"testing"

	"pgo/internal/parser"
	"pgo/internal/printer"
	"pgo/internal/psamples"
	"pgo/internal/source"
)

// Printing is idempotent: print(parse(print(parse(src)))) == print(parse(src)).
func TestPrintIdempotent(t *testing.T) {
	for _, s := range psamples.All() {
		if strings.HasPrefix(s.Name, "usb-") {
			continue // large generated sources; covered by TestPrintRoundTripsUSB
		}
		s := s
		t.Run(s.Name, func(t *testing.T) {
			var d1 source.DiagList
			ast1 := parser.Parse(s.Source, &d1)
			if d1.HasErrors() {
				t.Fatalf("parse 1: %s", d1.String())
			}
			once := printer.Print(ast1)
			var d2 source.DiagList
			ast2 := parser.Parse(once, &d2)
			if d2.HasErrors() {
				t.Fatalf("reparse failed:\n%s\nsource:\n%s", d2.String(), once)
			}
			twice := printer.Print(ast2)
			if once != twice {
				t.Fatalf("printing not idempotent:\n--- once ---\n%s\n--- twice ---\n%s", once, twice)
			}
		})
	}
}

func TestPrintRoundTripsUSB(t *testing.T) {
	if testing.Short() {
		t.Skip("large generated source")
	}
	src := psamples.USBMachineSource("T", 3, 4, 1, 1)
	var d1 source.DiagList
	ast1 := parser.Parse(src, &d1)
	if d1.HasErrors() {
		t.Fatalf("parse: %s", d1.String())
	}
	once := printer.Print(ast1)
	var d2 source.DiagList
	ast2 := parser.Parse(once, &d2)
	if d2.HasErrors() {
		t.Fatalf("reparse: %s", d2.String())
	}
	if twice := printer.Print(ast2); once != twice {
		t.Fatal("printing not idempotent on generated USB source")
	}
}

func TestMinimalParens(t *testing.T) {
	src := `
event E;
machine M {
  var x: int;
  var b: bool;
  state S {
    entry {
      x = (1 + 2) * 3;
      x = 1 + 2 * 3;
      b = !(x == 1) && x < 2 || x > 3;
      x = -(x + 1);
    }
  }
}
main M();
`
	var d source.DiagList
	prog := parser.Parse(src, &d)
	if d.HasErrors() {
		t.Fatal(d.String())
	}
	out := printer.Print(prog)
	for _, want := range []string{
		"x = (1 + 2) * 3;",
		"x = 1 + 2 * 3;",
		"b = !(x == 1) && x < 2 || x > 3;",
		"x = -(x + 1);",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("printed output missing %q:\n%s", want, out)
		}
	}
}

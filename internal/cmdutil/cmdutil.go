// Package cmdutil holds small helpers shared by the command-line tools.
package cmdutil

import (
	"fmt"
	"io"
	"os"
	"strings"

	"pgo/internal/psamples"
)

// LoadSource resolves the tool's input argument: "-" reads stdin,
// "sample:<name>" loads an embedded sample, anything else is a file path.
// It returns a display name and the source text.
func LoadSource(arg string) (name, src string, err error) {
	switch {
	case arg == "-":
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			return "", "", fmt.Errorf("reading stdin: %w", err)
		}
		return "<stdin>", string(data), nil
	case strings.HasPrefix(arg, "sample:"):
		sampleName := strings.TrimPrefix(arg, "sample:")
		s, ok := psamples.ByName(sampleName)
		if !ok {
			return "", "", fmt.Errorf("unknown sample %q; available: %s", sampleName, SampleNames())
		}
		return s.Name, s.Source, nil
	default:
		data, err := os.ReadFile(arg)
		if err != nil {
			return "", "", err
		}
		return arg, string(data), nil
	}
}

// SampleNames lists the embedded sample names, comma separated.
func SampleNames() string {
	var names []string
	for _, s := range psamples.All() {
		names = append(names, s.Name)
	}
	return strings.Join(names, ", ")
}

// Fatalf prints to stderr and exits with status 1.
func Fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

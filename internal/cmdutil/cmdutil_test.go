package cmdutil_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pgo/internal/cmdutil"
)

func TestLoadSample(t *testing.T) {
	name, src, err := cmdutil.LoadSource("sample:pingpong")
	if err != nil {
		t.Fatal(err)
	}
	if name != "pingpong" || !strings.Contains(src, "machine Pinger") {
		t.Fatalf("unexpected sample: %s", name)
	}
}

func TestLoadUnknownSample(t *testing.T) {
	_, _, err := cmdutil.LoadSource("sample:zzz")
	if err == nil || !strings.Contains(err.Error(), "unknown sample") {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "pingpong") {
		t.Fatalf("error should list available samples: %v", err)
	}
}

func TestLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.p")
	if err := os.WriteFile(path, []byte("event E;"), 0o644); err != nil {
		t.Fatal(err)
	}
	name, src, err := cmdutil.LoadSource(path)
	if err != nil {
		t.Fatal(err)
	}
	if name != path || src != "event E;" {
		t.Fatalf("got %q %q", name, src)
	}
	if _, _, err := cmdutil.LoadSource(filepath.Join(t.TempDir(), "missing.p")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestSampleNames(t *testing.T) {
	names := cmdutil.SampleNames()
	for _, want := range []string{"pingpong", "elevator", "usb-dsm"} {
		if !strings.Contains(names, want) {
			t.Fatalf("SampleNames missing %s: %s", want, names)
		}
	}
}

package handwritten_test

import (
	"sync/atomic"
	"testing"
	"time"

	"pgo/internal/handwritten"
)

func waitIdle(t *testing.T, d *handwritten.Driver) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !d.Idle() {
		if time.Now().After(deadline) {
			t.Fatal("driver did not go idle")
		}
		time.Sleep(50 * time.Microsecond)
	}
	// One extra beat: Idle is checked before the last handler finishes.
	time.Sleep(time.Millisecond)
}

func TestLifecycle(t *testing.T) {
	var ons, offs, resets, starts, stops atomic.Int64
	d := handwritten.New(handwritten.Callbacks{
		LedOn:         func() { ons.Add(1) },
		LedOff:        func() { offs.Add(1) },
		LedReset:      func() { resets.Add(1) },
		NotifyStarted: func() { starts.Add(1) },
		NotifyStopped: func() { stops.Add(1) },
	})
	defer d.Close()

	d.Send(handwritten.StartDevice)
	waitIdle(t, d)
	if d.State() != "Ready" {
		t.Fatalf("state = %s, want Ready", d.State())
	}
	if starts.Load() != 1 {
		t.Fatalf("starts = %d", starts.Load())
	}

	d.Send(handwritten.SwitchOn)
	waitIdle(t, d)
	if d.State() != "SettingOn" {
		t.Fatalf("state = %s, want SettingOn", d.State())
	}
	d.Send(handwritten.LedOnAck)
	waitIdle(t, d)
	if d.State() != "Ready" || ons.Load() != 1 {
		t.Fatalf("state = %s ons = %d", d.State(), ons.Load())
	}

	d.Send(handwritten.SleepDevice)
	d.Send(handwritten.LedOffAck)
	waitIdle(t, d)
	if d.State() != "Asleep" {
		t.Fatalf("state = %s, want Asleep", d.State())
	}
	d.Send(handwritten.ResumeDevice)
	waitIdle(t, d)
	if d.State() != "Ready" {
		t.Fatalf("state = %s, want Ready", d.State())
	}
	d.Send(handwritten.StopDevice)
	waitIdle(t, d)
	if d.State() != "Stopped" || stops.Load() != 1 {
		t.Fatalf("state = %s stops = %d", d.State(), stops.Load())
	}
}

// Switch toggles arriving before start are deferred, like the P machine.
func TestDeferralBeforeStart(t *testing.T) {
	var ons atomic.Int64
	d := handwritten.New(handwritten.Callbacks{LedOn: func() { ons.Add(1) }})
	defer d.Close()
	d.Send(handwritten.SwitchOn)
	waitIdle(t, d)
	if d.State() != "Init" || ons.Load() != 0 {
		t.Fatalf("toggle not deferred: state %s, ons %d", d.State(), ons.Load())
	}
	d.Send(handwritten.StartDevice)
	waitIdle(t, d)
	// The deferred SwitchOn is delivered after start.
	if d.State() != "SettingOn" || ons.Load() != 1 {
		t.Fatalf("deferred toggle lost: state %s, ons %d", d.State(), ons.Load())
	}
}

func TestQueueDedup(t *testing.T) {
	var ons atomic.Int64
	d := handwritten.New(handwritten.Callbacks{LedOn: func() { ons.Add(1) }})
	defer d.Close()
	// Three identical toggles while deferred collapse to one.
	d.Send(handwritten.SwitchOn)
	d.Send(handwritten.SwitchOn)
	d.Send(handwritten.SwitchOn)
	d.Send(handwritten.StartDevice)
	waitIdle(t, d)
	d.Send(handwritten.LedOnAck)
	waitIdle(t, d)
	if ons.Load() != 1 {
		t.Fatalf("ons = %d, want 1 (dedup)", ons.Load())
	}
}

// Package handwritten is the §4.1 baseline: the switch-and-LED driver
// written directly in Go, the way the paper's comparison driver was written
// directly against KMDF without P. It implements exactly the same state
// machine as the P Driver in internal/psamples (same states, same deferral
// discipline, same run-to-completion processing on a dedicated goroutine
// with a locked queue), but as hand-specialized native code: explicit state
// constants, a hand-maintained deferred list, and switch statements instead
// of interpreted tables.
//
// The point of the experiment is the paper's: the code generated from P
// plus the generic runtime should process events at a rate comparable to
// this hand-written equivalent.
package handwritten

import (
	"sync"
)

// Event enumerates driver inputs.
type Event int

// Driver input events, mirroring the P program's event declarations.
const (
	StartDevice Event = iota
	StopDevice
	SleepDevice
	ResumeDevice
	SwitchOn
	SwitchOff
	LedOnAck
	LedOffAck
	numEvents
)

var eventNames = [...]string{
	"StartDevice", "StopDevice", "SleepDevice", "ResumeDevice",
	"SwitchOn", "SwitchOff", "LedOnAck", "LedOffAck",
}

func (e Event) String() string {
	if int(e) < len(eventNames) {
		return eventNames[e]
	}
	return "event(?)"
}

// state enumerates the driver's control states (same set as the P machine).
type state int

const (
	stInit state = iota
	stStarting
	stReady
	stSettingOn
	stSettingOff
	stSleeping
	stAsleep
	stResuming
	stStopping
	stStopped
)

var stateNames = [...]string{
	"Init", "Starting", "Ready", "SettingOn", "SettingOff",
	"Sleeping", "Asleep", "Resuming", "Stopping", "Stopped",
}

// Callbacks is the driver's data path (the P program's foreign functions).
type Callbacks struct {
	LedOn         func()
	LedOff        func()
	LedReset      func()
	NotifyStarted func()
	NotifyStopped func()
}

func nop() {}

func (c *Callbacks) fill() {
	if c.LedOn == nil {
		c.LedOn = nop
	}
	if c.LedOff == nil {
		c.LedOff = nop
	}
	if c.LedReset == nil {
		c.LedReset = nop
	}
	if c.NotifyStarted == nil {
		c.NotifyStarted = nop
	}
	if c.NotifyStopped == nil {
		c.NotifyStopped = nop
	}
}

// Driver is the hand-written switch-and-LED driver.
type Driver struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Event
	state  state
	closed bool
	done   chan struct{}
	cb     Callbacks
	// pending collects data-path callbacks decided by a handler; they run
	// after the state mutation with the lock released, so a callback may
	// call Send without deadlocking (the reentrancy discipline of the P
	// runtime's foreign calls).
	pending []func()
}

// New starts the driver's processing goroutine.
func New(cb Callbacks) *Driver {
	cb.fill()
	d := &Driver{state: stInit, cb: cb, done: make(chan struct{})}
	d.cond = sync.NewCond(&d.mu)
	go d.loop()
	return d
}

// Send enqueues an event with the same event-dedup the P runtime applies:
// an event already pending is dropped.
func (d *Driver) Send(e Event) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return
	}
	for _, q := range d.queue {
		if q == e {
			return
		}
	}
	d.queue = append(d.queue, e)
	d.cond.Signal()
}

// State returns the current state name (racy snapshot, test use only).
func (d *Driver) State() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return stateNames[d.state]
}

// Idle reports whether the driver has no deliverable pending event.
func (d *Driver) Idle() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.deliverableIndexLocked() < 0
}

// Close shuts the processing goroutine down and waits for it.
func (d *Driver) Close() {
	d.mu.Lock()
	d.closed = true
	d.cond.Broadcast()
	d.mu.Unlock()
	<-d.done
}

// deferred reports whether e is deferred in state s — the hand-maintained
// equivalent of the P machine's per-state deferred sets.
func deferred(s state, e Event) bool {
	switch s {
	case stInit:
		return e == SwitchOn || e == SwitchOff
	case stSettingOn, stSettingOff:
		return e == SwitchOn || e == SwitchOff || e == StopDevice || e == SleepDevice
	case stSleeping:
		return e == SwitchOn || e == SwitchOff || e == StopDevice || e == ResumeDevice
	case stAsleep:
		return e == SwitchOn || e == SwitchOff
	default:
		return false
	}
}

func (d *Driver) deliverableIndexLocked() int {
	for i, e := range d.queue {
		if !deferred(d.state, e) {
			return i
		}
	}
	return -1
}

func (d *Driver) loop() {
	defer close(d.done)
	d.mu.Lock()
	for {
		if d.closed {
			d.mu.Unlock()
			return
		}
		i := d.deliverableIndexLocked()
		if i < 0 {
			d.cond.Wait()
			continue
		}
		e := d.queue[i]
		d.queue = append(d.queue[:i:i], d.queue[i+1:]...)
		// Run-to-completion for the state mutation; the data-path callbacks
		// it scheduled run with the lock released so they may re-enter Send.
		d.handle(e)
		cbs := d.pending
		d.pending = nil
		if len(cbs) > 0 {
			d.mu.Unlock()
			for _, cb := range cbs {
				cb()
			}
			d.mu.Lock()
		}
	}
}

// handle implements the transition relation. Called with d.mu held.
func (d *Driver) handle(e Event) {
	switch d.state {
	case stInit:
		switch e {
		case SleepDevice, ResumeDevice:
			// ignore
		case StartDevice:
			d.enterStarting()
		default:
			d.unhandled(e)
		}
	case stReady:
		switch e {
		case SwitchOn:
			d.state = stSettingOn
			d.pending = append(d.pending, d.cb.LedOn)
		case SwitchOff:
			d.state = stSettingOff
			d.pending = append(d.pending, d.cb.LedOff)
		case SleepDevice:
			d.state = stSleeping
			d.pending = append(d.pending, d.cb.LedOff)
		case ResumeDevice:
			// ignore
		case StopDevice:
			d.enterStopping()
		default:
			d.unhandled(e)
		}
	case stSettingOn:
		switch e {
		case ResumeDevice:
			// ignore
		case LedOnAck:
			d.state = stReady
		default:
			d.unhandled(e)
		}
	case stSettingOff:
		switch e {
		case ResumeDevice:
			// ignore
		case LedOffAck:
			d.state = stReady
		default:
			d.unhandled(e)
		}
	case stSleeping:
		switch e {
		case SleepDevice:
			// ignore
		case LedOffAck:
			d.state = stAsleep
		default:
			d.unhandled(e)
		}
	case stAsleep:
		switch e {
		case SleepDevice:
			// ignore
		case ResumeDevice:
			d.state = stResuming
			d.pending = append(d.pending, d.cb.LedReset)
			// The P machine raises unit and steps straight to Ready.
			d.state = stReady
		case StopDevice:
			d.enterStopping()
		default:
			d.unhandled(e)
		}
	case stStopped:
		switch e {
		case SwitchOn, SwitchOff, SleepDevice, ResumeDevice:
			// ignore
		case StartDevice:
			d.enterStarting()
		default:
			d.unhandled(e)
		}
	default:
		d.unhandled(e)
	}
}

func (d *Driver) enterStarting() {
	d.state = stStarting
	d.pending = append(d.pending, d.cb.LedReset)
	d.pending = append(d.pending, d.cb.NotifyStarted)
	d.state = stReady
}

func (d *Driver) enterStopping() {
	d.state = stStopping
	d.pending = append(d.pending, d.cb.LedReset)
	d.pending = append(d.pending, d.cb.NotifyStopped)
	d.state = stStopped
}

// unhandled drops the event. The hand-written driver silently loses events
// the state machine does not expect — exactly the failure mode P's
// verification exists to rule out; the P variant turns these into detected
// unhandled-event violations instead.
func (d *Driver) unhandled(e Event) {}

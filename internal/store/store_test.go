package store

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// keyN derives a well-distributed test key: sharding uses the top bits of
// Hi, so sequential integers must be mixed first.
func keyN(i int) Key {
	x := uint64(i)*0x9e3779b97f4a7c15 + 1
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 32
	return Key{Hi: x, Lo: x * 0x94d049bb133111eb}
}

func TestSetSemantics(t *testing.T) {
	s, err := New(Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 100; i++ {
		if !s.Claim(keyN(i), nil) {
			t.Fatalf("first claim of key %d rejected", i)
		}
	}
	for i := 0; i < 100; i++ {
		if s.Claim(keyN(i), nil) {
			t.Fatalf("second claim of key %d accepted", i)
		}
		if _, ok := s.Get(keyN(i)); !ok {
			t.Fatalf("key %d missing after claim", i)
		}
	}
	if _, ok := s.Get(keyN(100)); ok {
		t.Fatal("unclaimed key reported present")
	}
	st := s.Stats()
	if st.MemEntries != 100 || st.SpilledEntries != 0 || st.DiskBytes != 0 {
		t.Fatalf("stats = %+v, want 100 mem entries and no disk tier", st)
	}
}

// minMerge keeps the smaller single-byte value — the min-delay claim shape.
func minMerge(existing, proposed []byte) ([]byte, bool) {
	if proposed[0] < existing[0] {
		return proposed, true
	}
	return existing, false
}

func TestMergeSemantics(t *testing.T) {
	s, err := New(Options{Shards: 2, Merge: minMerge})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	k := keyN(7)
	if !s.Claim(k, []byte{5}) {
		t.Fatal("first claim rejected")
	}
	if s.Claim(k, []byte{9}) {
		t.Fatal("worse claim accepted")
	}
	if !s.Claim(k, []byte{3}) {
		t.Fatal("better claim rejected")
	}
	if v, ok := s.Get(k); !ok || len(v) != 1 || v[0] != 3 {
		t.Fatalf("Get = %v, %v; want [3], true", v, ok)
	}
}

func TestSpillAndLookup(t *testing.T) {
	dir := t.TempDir()
	const n = 5000
	s, err := New(Options{Dir: dir, Shards: 8, MemPerShard: 64, Merge: minMerge})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < n; i++ {
		if !s.Claim(keyN(i), []byte{byte(200 + i%50)}) {
			t.Fatalf("first claim of key %d rejected", i)
		}
	}
	st := s.Stats()
	if st.SpilledEntries == 0 || st.Chunks == 0 || st.DiskBytes == 0 {
		t.Fatalf("stats = %+v, want a populated disk tier", st)
	}
	// Every key resolvable across tiers; worse claims rejected, better
	// claims merged back through the chunk tier.
	for i := 0; i < n; i++ {
		k := keyN(i)
		want := byte(200 + i%50)
		if v, ok := s.Get(k); !ok || v[0] != want {
			t.Fatalf("key %d: Get = %v, %v; want [%d], true", i, v, ok, want)
		}
		if s.Claim(k, []byte{255}) {
			t.Fatalf("key %d: worse claim accepted after spill", i)
		}
		if !s.Claim(k, []byte{byte(i % 50)}) {
			t.Fatalf("key %d: better claim rejected after spill", i)
		}
		if v, ok := s.Get(k); !ok || v[0] != byte(i%50) {
			t.Fatalf("key %d: Get after merge = %v, %v", i, v, ok)
		}
	}
	if _, ok := s.Get(keyN(n + 1)); ok {
		t.Fatal("absent key reported present by disk tier")
	}
	if err := s.Err(); err != nil {
		t.Fatalf("latched error: %v", err)
	}
}

func TestFlushOpenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	const n = 3000
	opts := Options{Dir: dir, Shards: 4, MemPerShard: 100, Merge: minMerge}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		s.Claim(keyN(i), []byte{byte(i % 200)})
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.MemEntries != 0 {
		t.Fatalf("mem entries after flush = %d, want 0", st.MemEntries)
	}
	sizes := s.ShardSizes()

	// Post-checkpoint writes that Open must drop.
	for i := n; i < n+500; i++ {
		s.Claim(keyN(i), []byte{1})
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(opts, sizes)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 0; i < n; i++ {
		k := keyN(i)
		if v, ok := r.Get(k); !ok || v[0] != byte(i%200) {
			t.Fatalf("key %d after reopen: Get = %v, %v", i, v, ok)
		}
	}
	// The post-checkpoint keys were truncated away.
	for i := n; i < n+500; i++ {
		if _, ok := r.Get(keyN(i)); ok {
			t.Fatalf("post-checkpoint key %d survived truncation", i)
		}
	}
	// Claims still merge correctly against reopened chunks.
	if r.Claim(keyN(0), []byte{255}) {
		t.Fatal("worse claim accepted after reopen")
	}
	if !r.Claim(keyN(1), []byte{0}) && 1%200 != 0 {
		t.Fatal("better claim rejected after reopen")
	}
}

func TestOpenRejectsCorruptFile(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, Shards: 1, MemPerShard: 4}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		s.Claim(keyN(i), nil)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	sizes := s.ShardSizes()
	s.Close()

	path := filepath.Join(dir, fmt.Sprintf("shard-%04d.pvs", 0))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	copy(raw, "XXXX")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(opts, sizes); err == nil {
		t.Fatal("Open accepted a corrupt chunk file")
	}
}

func TestOpenFreshShardDropsStaleFile(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, Shards: 1, MemPerShard: 4}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		s.Claim(keyN(i), nil)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// A checkpoint taken before the shard ever spilled records size 0;
	// Open must ignore (and remove) the later file.
	r, err := Open(opts, []int64{0})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, ok := r.Get(keyN(0)); ok {
		t.Fatal("stale shard file contents visible after size-0 open")
	}
}

func TestVariableLengthValues(t *testing.T) {
	dir := t.TempDir()
	// Append-only antichain-style merge: concatenate uvarints, improved
	// when the proposed id is unseen.
	merge := func(existing, proposed []byte) ([]byte, bool) {
		want, _ := binary.Uvarint(proposed)
		rest := existing
		for len(rest) > 0 {
			v, n := binary.Uvarint(rest)
			if v == want {
				return existing, false
			}
			rest = rest[n:]
		}
		return append(append([]byte(nil), existing...), proposed...), true
	}
	s, err := New(Options{Dir: dir, Shards: 2, MemPerShard: 8, Merge: merge})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(1))
	want := map[int]map[uint64]bool{}
	for step := 0; step < 4000; step++ {
		i := rng.Intn(60)
		id := uint64(rng.Intn(10))
		var buf [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(buf[:], id)
		improved := s.Claim(keyN(i), buf[:n])
		if want[i] == nil {
			want[i] = map[uint64]bool{}
		}
		if improved != !want[i][id] {
			t.Fatalf("step %d: key %d id %d improved=%v, want %v", step, i, id, improved, !want[i][id])
		}
		want[i][id] = true
	}
	for i, ids := range want {
		v, ok := s.Get(keyN(i))
		if !ok {
			t.Fatalf("key %d missing", i)
		}
		got := map[uint64]bool{}
		for len(v) > 0 {
			u, n := binary.Uvarint(v)
			got[u] = true
			v = v[n:]
		}
		if len(got) != len(ids) {
			t.Fatalf("key %d: got %d ids, want %d", i, len(got), len(ids))
		}
		for id := range ids {
			if !got[id] {
				t.Fatalf("key %d: id %d lost", i, id)
			}
		}
	}
}

func TestConcurrentClaims(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Options{Dir: dir, Shards: 4, MemPerShard: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const workers = 8
	const perWorker = 2000
	wins := make(chan int, workers)
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			n := 0
			for i := 0; i < perWorker; i++ {
				if s.Claim(keyN(i), nil) {
					n++
				}
			}
			wins <- n
			done <- struct{}{}
		}()
	}
	total := 0
	for w := 0; w < workers; w++ {
		<-done
		total += <-wins
	}
	if total != perWorker {
		t.Fatalf("total successful claims = %d, want %d (each key claimed exactly once)", total, perWorker)
	}
	if err := s.Err(); err != nil {
		t.Fatalf("latched error: %v", err)
	}
}

//go:build unix

package store

import (
	"os"
	"syscall"
)

func mmapFile(f *os.File, size int64) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmap(b []byte) error {
	return syscall.Munmap(b)
}

//go:build !unix

package store

import (
	"errors"
	"os"
)

// No memory mapping on this platform; readAt falls back to pread.

func mmapFile(f *os.File, size int64) ([]byte, error) {
	return nil, errors.New("store: mmap unsupported")
}

func munmap(b []byte) error { return nil }

package store

import (
	"encoding/binary"
	"fmt"
	"os"
	"sort"
)

// Chunk format (documented in DESIGN.md; all integers little-endian):
//
//	header (32 bytes):
//	  magic    "PVC1"  (4)
//	  count    uint32  index records
//	  bloomW   uint32  bloom words (8 bytes each)
//	  reserved uint32  zero
//	  valBytes uint64  value-region length
//	  total    uint64  whole-chunk length including this header
//	bloom:  bloomW × uint64 — ~10 bits/key, 4 probes double-hashed from the key
//	index:  count × 20 bytes: Hi uint64 | Lo uint64 | valOff uint32,
//	        sorted by (Hi, Lo); a record's value length is the offset delta
//	        to the next record (valBytes for the last)
//	values: concatenated value bytes
//
// A shard file is a sequence of chunks; total makes the file walkable from
// offset 0, which is how Open rebuilds the chunk directory on resume.
// Chunks are immutable once written: resume-time truncation to the
// checkpointed size is the only mutation the format permits.

const (
	chunkMagic    = "PVC1"
	chunkHdrLen   = 32
	indexRecLen   = 20
	bloomBitsPerK = 10
	bloomProbes   = 4
)

type chunk struct {
	off      int64 // chunk start (header) in the shard file
	count    int
	indexOff int64
	valOff   int64
	valBytes int64
	bloom    []uint64 // heap copy; always available without file reads
}

func bloomWords(count int) int {
	w := (count*bloomBitsPerK + 63) / 64
	if w < 1 {
		w = 1
	}
	return w
}

func bloomSet(bloom []uint64, k Key) {
	m := uint64(len(bloom)) * 64
	h2 := k.Lo | 1
	for i := uint64(0); i < bloomProbes; i++ {
		bit := (k.Hi + i*h2) % m
		bloom[bit/64] |= 1 << (bit % 64)
	}
}

func (c *chunk) mayContain(k Key) bool {
	m := uint64(len(c.bloom)) * 64
	h2 := k.Lo | 1
	for i := uint64(0); i < bloomProbes; i++ {
		bit := (k.Hi + i*h2) % m
		if c.bloom[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// buildChunk serializes the shard's memory tier into one chunk image and
// the chunk's directory entry (relative to file offset base).
func buildChunk(mem map[Key][]byte, base int64) ([]byte, chunk) {
	keys := make([]Key, 0, len(mem))
	for k := range mem {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].less(keys[j]) })

	bw := bloomWords(len(keys))
	valBytes := 0
	for _, k := range keys {
		valBytes += len(mem[k])
	}
	total := chunkHdrLen + bw*8 + len(keys)*indexRecLen + valBytes
	buf := make([]byte, total)

	copy(buf, chunkMagic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(keys)))
	binary.LittleEndian.PutUint32(buf[8:], uint32(bw))
	binary.LittleEndian.PutUint64(buf[16:], uint64(valBytes))
	binary.LittleEndian.PutUint64(buf[24:], uint64(total))

	bloom := make([]uint64, bw)
	idxOff := chunkHdrLen + bw*8
	valOff := idxOff + len(keys)*indexRecLen
	voff := 0
	for i, k := range keys {
		bloomSet(bloom, k)
		rec := buf[idxOff+i*indexRecLen:]
		binary.LittleEndian.PutUint64(rec, k.Hi)
		binary.LittleEndian.PutUint64(rec[8:], k.Lo)
		binary.LittleEndian.PutUint32(rec[16:], uint32(voff))
		voff += copy(buf[valOff+voff:], mem[k])
	}
	for i, w := range bloom {
		binary.LittleEndian.PutUint64(buf[chunkHdrLen+i*8:], w)
	}

	return buf, chunk{
		off:      base,
		count:    len(keys),
		indexOff: base + int64(idxOff),
		valOff:   base + int64(valOff),
		valBytes: int64(valBytes),
		bloom:    bloom,
	}
}

// spillLocked writes the memory tier as a new chunk. The shard lock is
// held. On I/O failure the shard keeps its memory tier and goes memory-only.
func (s *Store) spillLocked(sh *shard) {
	if len(sh.mem) == 0 || sh.broken || s.opts.Dir == "" {
		return
	}
	if sh.f == nil {
		f, err := os.OpenFile(s.shardPath(sh.idx), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			s.latch(err)
			sh.broken = true
			return
		}
		sh.f = f
	}
	img, c := buildChunk(sh.mem, sh.size)
	if _, err := sh.f.WriteAt(img, sh.size); err != nil {
		s.latch(err)
		sh.broken = true
		// Drop any partial write so the file stays chunk-aligned.
		_ = sh.f.Truncate(sh.size)
		return
	}
	sh.size += int64(len(img))
	sh.spilled += c.count
	sh.chunks = append(sh.chunks, c)
	sh.mem = make(map[Key][]byte, len(sh.mem))
	s.remapLocked(sh)
}

// remapLocked refreshes the shard's memory mapping to cover [0, size).
// Mapping failure is not an error: lookups fall back to pread.
func (s *Store) remapLocked(sh *shard) {
	if sh.data != nil {
		_ = munmap(sh.data)
		sh.data = nil
	}
	sh.mapped = false
	if sh.size == 0 || sh.f == nil {
		return
	}
	if b, err := mmapFile(sh.f, sh.size); err == nil {
		sh.data = b
		sh.mapped = true
	}
}

// readAt returns n bytes at off: a zero-copy slice of the mapping, or a
// pread when the platform gave us no mapping. A read failure is latched and
// reported as missing data — sound for a visited store (the worst case is
// re-exploration), and Err surfaces it.
func (s *Store) readAt(sh *shard, off int64, n int) []byte {
	if sh.mapped && off+int64(n) <= int64(len(sh.data)) {
		return sh.data[off : off+int64(n)]
	}
	if sh.f == nil {
		return nil
	}
	buf := make([]byte, n)
	if _, err := sh.f.ReadAt(buf, off); err != nil {
		s.latch(err)
		return nil
	}
	return buf
}

// lookupChunks searches the spilled chunks newest-first. The newest chunk
// containing the key holds the most-merged value (later claims merge chunk
// values back into the memory tier before re-spilling).
func (s *Store) lookupChunks(sh *shard, k Key) ([]byte, bool) {
	for i := len(sh.chunks) - 1; i >= 0; i-- {
		c := &sh.chunks[i]
		if !c.mayContain(k) {
			continue
		}
		if v, ok := s.chunkGet(sh, c, k); ok {
			return v, true
		}
	}
	return nil, false
}

func (s *Store) chunkGet(sh *shard, c *chunk, k Key) ([]byte, bool) {
	lo, hi := 0, c.count
	for lo < hi {
		mid := (lo + hi) / 2
		rec := s.readAt(sh, c.indexOff+int64(mid)*indexRecLen, indexRecLen)
		if rec == nil {
			return nil, false
		}
		rhi := binary.LittleEndian.Uint64(rec)
		rlo := binary.LittleEndian.Uint64(rec[8:])
		switch {
		case k.Hi < rhi || (k.Hi == rhi && k.Lo < rlo):
			hi = mid
		case k.Hi > rhi || (k.Hi == rhi && k.Lo > rlo):
			lo = mid + 1
		default:
			voff := int64(binary.LittleEndian.Uint32(rec[16:]))
			vend := c.valBytes
			if mid+1 < c.count {
				next := s.readAt(sh, c.indexOff+int64(mid+1)*indexRecLen+16, 4)
				if next == nil {
					return nil, false
				}
				vend = int64(binary.LittleEndian.Uint32(next))
			}
			if vend == voff {
				// Present with an empty value (set semantics).
				return nil, true
			}
			v := s.readAt(sh, c.valOff+voff, int(vend-voff))
			return v, v != nil
		}
	}
	return nil, false
}

// openShard reopens shard i's chunk file for resume, truncating to size
// (the checkpointed extent) and walking the chunk headers to rebuild the
// chunk directory and blooms.
func (s *Store) openShard(i int, size int64) error {
	sh := &s.shards[i]
	path := s.shardPath(i)
	if size == 0 {
		// Never spilled before the checkpoint; drop any post-checkpoint file.
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("store: %w", err)
		}
		return nil
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: shard %d: %w", i, err)
	}
	if err := f.Truncate(size); err != nil {
		f.Close()
		return fmt.Errorf("store: shard %d: %w", i, err)
	}
	sh.f = f
	sh.size = size
	s.remapLocked(sh)

	off := int64(0)
	for off < size {
		hdr := s.readAt(sh, off, chunkHdrLen)
		if hdr == nil || string(hdr[:4]) != chunkMagic {
			s.Close()
			return fmt.Errorf("store: shard %d: bad chunk header at %d", i, off)
		}
		count := int(binary.LittleEndian.Uint32(hdr[4:]))
		bw := int(binary.LittleEndian.Uint32(hdr[8:]))
		valBytes := int64(binary.LittleEndian.Uint64(hdr[16:]))
		total := int64(binary.LittleEndian.Uint64(hdr[24:]))
		want := int64(chunkHdrLen + bw*8 + count*indexRecLen + int(valBytes))
		if total != want || off+total > size {
			s.Close()
			return fmt.Errorf("store: shard %d: corrupt chunk at %d", i, off)
		}
		braw := s.readAt(sh, off+chunkHdrLen, bw*8)
		if braw == nil {
			s.Close()
			return fmt.Errorf("store: shard %d: unreadable bloom at %d", i, off)
		}
		bloom := make([]uint64, bw)
		for w := range bloom {
			bloom[w] = binary.LittleEndian.Uint64(braw[w*8:])
		}
		sh.chunks = append(sh.chunks, chunk{
			off:      off,
			count:    count,
			indexOff: off + chunkHdrLen + int64(bw*8),
			valOff:   off + chunkHdrLen + int64(bw*8) + int64(count*indexRecLen),
			valBytes: valBytes,
			bloom:    bloom,
		})
		sh.spilled += count
		off += total
	}
	return nil
}

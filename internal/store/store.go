// Package store implements the explorers' tiered visited store: a sharded
// dictionary from 128-bit state fingerprints to small merge-able values
// whose shards spill from in-memory maps to append-only chunk files once
// they outgrow a configured cap. The shape follows content-addressed block
// stores (dolt's noms store is the structural exemplar): spilled chunks are
// immutable, carry a bloom filter and a sorted index, and are read through a
// memory mapping, so the explorer's resident set stays bounded by the
// per-shard cap while the page cache absorbs the cold tier.
//
// Keys are the explorers' stable 128-bit fingerprints (core.StableHash64 of
// canonical state encodings), already uniformly distributed — the shard is a
// key prefix (the top bits of Key.Hi) and the bloom/index probe bits come
// straight from the key, no re-hashing anywhere.
//
// Claim semantics unify the explorers' visited maps: a set (Merge == nil,
// a key claims once) or a user-merged map (min-delay claims, depth/sleep
// antichains). Merging across the tiers is transparent: a claim that finds
// its key in a spilled chunk merges against the chunk value and re-inserts
// the merged result into the memory tier, so the newest tier always holds
// the most-merged value and lookups scan chunks newest-first.
//
// Spill I/O failures are latched, never fatal: the shard falls back to
// memory-only operation (correct, just unbounded) and Err reports the first
// failure for the CLI to surface.
package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Key is a 128-bit fingerprint key. Both halves are outputs of stable hash
// functions, so bits may be used directly for sharding and bloom probes.
type Key struct{ Hi, Lo uint64 }

func (k Key) less(o Key) bool { return k.Hi < o.Hi || (k.Hi == o.Hi && k.Lo < o.Lo) }

// MergeFunc combines an existing stored value with a newly proposed one.
// It returns the value to store and whether the proposal improved on the
// existing entry — improved claims are the ones that put new work on the
// explorer's frontier. merged may alias either argument; the store copies
// what it retains.
type MergeFunc func(existing, proposed []byte) (merged []byte, improved bool)

// Options configures a Store.
type Options struct {
	// Dir is the spill directory; "" disables the disk tier entirely
	// (the store is then a sharded in-memory map).
	Dir string
	// Shards is the shard count, rounded up to a power of two (default 64).
	Shards int
	// MemPerShard caps in-memory entries per shard before a spill
	// (0 = never spill on size; Flush still spills everything).
	MemPerShard int
	// Merge resolves claims on existing keys. nil means set semantics:
	// a key can be claimed once and values are ignored (stored empty).
	Merge MergeFunc
}

// Stats describes a store's occupancy. SpilledEntries counts chunk records,
// which double-counts keys rewritten by later merges (chunks are immutable).
type Stats struct {
	Shards         int   `json:"shards"`
	MemEntries     int   `json:"mem_entries"`
	SpilledEntries int   `json:"spilled_entries"`
	Chunks         int   `json:"chunks"`
	DiskBytes      int64 `json:"disk_bytes"`
}

// Add accumulates other into s (for reporting several stores as one block).
func (s *Stats) Add(other Stats) {
	if other.Shards > s.Shards {
		s.Shards = other.Shards
	}
	s.MemEntries += other.MemEntries
	s.SpilledEntries += other.SpilledEntries
	s.Chunks += other.Chunks
	s.DiskBytes += other.DiskBytes
}

type shard struct {
	mu      sync.Mutex
	idx     int
	mem     map[Key][]byte
	f       *os.File // append-only chunk file; nil until first spill
	size    int64    // bytes written (chunk-aligned)
	data    []byte   // memory mapping of [0, size), nil when unmapped
	mapped  bool     // mapping succeeded; false falls back to pread
	chunks  []chunk
	spilled int  // records written to chunks
	broken  bool // spill I/O failed; shard is memory-only from here on
}

// Store is the tiered visited store. All methods are safe for concurrent
// use; the unit of locking is the shard.
type Store struct {
	opts      Options
	shardBits uint
	shards    []shard

	errMu sync.Mutex
	err   error
}

const defaultShards = 64

func normalize(o Options) Options {
	if o.Shards <= 0 {
		o.Shards = defaultShards
	}
	n := 1
	for n < o.Shards {
		n <<= 1
	}
	o.Shards = n
	return o
}

func newStore(o Options) *Store {
	o = normalize(o)
	bits := uint(0)
	for 1<<bits < o.Shards {
		bits++
	}
	s := &Store{opts: o, shardBits: bits, shards: make([]shard, o.Shards)}
	for i := range s.shards {
		s.shards[i].idx = i
		s.shards[i].mem = map[Key][]byte{}
	}
	return s
}

// New creates a fresh store. With a non-empty Dir the directory is created
// and any shard files from a previous run are truncated.
func New(o Options) (*Store, error) {
	s := newStore(o)
	if s.opts.Dir != "" {
		if err := os.MkdirAll(s.opts.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		for i := range s.shards {
			// Stale files would otherwise be walked by a later Open.
			if err := os.Remove(s.shardPath(i)); err != nil && !os.IsNotExist(err) {
				return nil, fmt.Errorf("store: %w", err)
			}
		}
	}
	return s, nil
}

// Open reopens a spilled store for resume. sizes holds the per-shard byte
// limits recorded at checkpoint time; each shard file is truncated to its
// limit (dropping chunks appended after the checkpoint) and its chunk
// directory is rebuilt by walking the headers.
func Open(o Options, sizes []int64) (*Store, error) {
	s := newStore(o)
	if s.opts.Dir == "" {
		return nil, fmt.Errorf("store: open requires a directory")
	}
	if len(sizes) != len(s.shards) {
		return nil, fmt.Errorf("store: %d shard sizes for %d shards", len(sizes), len(s.shards))
	}
	for i := range s.shards {
		if err := s.openShard(i, sizes[i]); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

func (s *Store) shardPath(i int) string {
	return filepath.Join(s.opts.Dir, fmt.Sprintf("shard-%04d.pvs", i))
}

func (s *Store) shardOf(k Key) *shard {
	return &s.shards[k.Hi>>(64-s.shardBits)]
}

// latch records the first I/O error for reporting.
func (s *Store) latch(err error) {
	s.errMu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.errMu.Unlock()
}

// Err returns the first spill/read error the store swallowed, if any.
// The store stays correct after an error — affected shards simply stop
// spilling — so callers report it as a warning, not a failure.
func (s *Store) Err() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.err
}

// Interned single-byte values: the explorers' min-delay claims are almost
// always one uvarint byte, and a per-entry heap slice would double the
// memory tier's footprint.
var byteVals = func() (t [256][1]byte) {
	for i := range t {
		t[i][0] = byte(i)
	}
	return
}()

func internVal(v []byte) []byte {
	switch len(v) {
	case 0:
		return nil
	case 1:
		return byteVals[v[0]][:]
	}
	return append([]byte(nil), v...)
}

// Claim proposes val for key k. It returns true when the claim added new
// information: the key was absent, or Merge judged the proposal an
// improvement over the stored value. With Merge == nil only the first claim
// of a key returns true (and values are ignored — stored empty).
//
// This is the explorers' hot path: the set-semantics branch costs a single
// map operation (insert-and-compare-size) until the shard spills, and no
// branch allocates when val points at static memory (see the callers'
// interned value tables).
func (s *Store) Claim(k Key, val []byte) bool {
	sh := s.shardOf(k)
	sh.mu.Lock()
	if s.opts.Merge == nil {
		before := len(sh.mem)
		sh.mem[k] = nil
		if len(sh.mem) == before {
			sh.mu.Unlock()
			return false
		}
		if len(sh.chunks) > 0 {
			if _, ok := s.lookupChunks(sh, k); ok {
				// Already spilled; undo the tentative insert.
				delete(sh.mem, k)
				sh.mu.Unlock()
				return false
			}
		}
		s.maybeSpill(sh)
		sh.mu.Unlock()
		return true
	}
	if v, ok := sh.mem[k]; ok {
		merged, improved := s.opts.Merge(v, val)
		if improved {
			sh.mem[k] = internVal(merged)
		}
		sh.mu.Unlock()
		return improved
	}
	if len(sh.chunks) > 0 {
		if v, ok := s.lookupChunks(sh, k); ok {
			merged, improved := s.opts.Merge(v, val)
			if !improved {
				sh.mu.Unlock()
				return false
			}
			sh.mem[k] = internVal(merged)
			s.maybeSpill(sh)
			sh.mu.Unlock()
			return true
		}
	}
	sh.mem[k] = internVal(val)
	s.maybeSpill(sh)
	sh.mu.Unlock()
	return true
}

// Get returns the stored value for k. The returned slice is valid until the
// next mutation of the store; callers decode immediately.
func (s *Store) Get(k Key) ([]byte, bool) {
	sh := s.shardOf(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if v, ok := sh.mem[k]; ok {
		return v, true
	}
	return s.lookupChunks(sh, k)
}

func (s *Store) maybeSpill(sh *shard) {
	if s.opts.MemPerShard > 0 && s.opts.Dir != "" && !sh.broken && len(sh.mem) >= s.opts.MemPerShard {
		s.spillLocked(sh)
	}
}

// Flush spills every shard's memory tier to disk and syncs the files, so
// the chunk files alone carry the full store — the checkpoint invariant.
// It fails if the store has no directory.
func (s *Store) Flush() error {
	if s.opts.Dir == "" {
		return fmt.Errorf("store: flush requires a directory")
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		s.spillLocked(sh)
		if sh.f != nil {
			if err := sh.f.Sync(); err != nil {
				s.latch(err)
			}
		}
		broken := sh.broken
		sh.mu.Unlock()
		if broken {
			return fmt.Errorf("store: shard %d spill failed: %w", i, s.Err())
		}
	}
	return nil
}

// ShardSizes returns the per-shard chunk-file sizes. Meaningful for a
// checkpoint manifest only immediately after a successful Flush.
func (s *Store) ShardSizes() []int64 {
	sizes := make([]int64, len(s.shards))
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sizes[i] = sh.size
		sh.mu.Unlock()
	}
	return sizes
}

// Stats reports the store's occupancy across both tiers.
func (s *Store) Stats() Stats {
	st := Stats{Shards: len(s.shards)}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		st.MemEntries += len(sh.mem)
		st.SpilledEntries += sh.spilled
		st.Chunks += len(sh.chunks)
		st.DiskBytes += sh.size
		sh.mu.Unlock()
	}
	return st
}

// Close unmaps and closes the shard files. The store must not be used after.
func (s *Store) Close() error {
	var first error
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		if sh.data != nil {
			if err := munmap(sh.data); err != nil && first == nil {
				first = err
			}
			sh.data = nil
		}
		if sh.f != nil {
			if err := sh.f.Close(); err != nil && first == nil {
				first = err
			}
			sh.f = nil
		}
		sh.mu.Unlock()
	}
	return first
}

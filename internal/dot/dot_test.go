package dot_test

import (
	"strings"
	"testing"

	"pgo/internal/check"
	"pgo/internal/compile"
	"pgo/internal/dot"
	"pgo/internal/psamples"
)

func TestMachineDiagram(t *testing.T) {
	prog, diags, err := compile.Source("elevator", psamples.Elevator)
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, diags.String())
	}
	m, ok := prog.MachineByName("Elevator")
	if !ok {
		t.Fatal("no Elevator machine")
	}
	var b strings.Builder
	if err := dot.Machine(&b, prog, m); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`digraph "Elevator"`,
		"peripheries=2",             // initial state doubled
		`defer: CloseDoor`,          // deferred sets in labels
		`label="OpenDoor"`,          // step transition
		`color="black:invis:black"`, // call transition notation
		`label="OpenDoor / Ignore"`, // action binding
		"style=dashed",              // action edge style
	} {
		if !strings.Contains(out, want) {
			t.Errorf("diagram missing %q:\n%s", want, out)
		}
	}
	// Every state appears as a node.
	for _, s := range m.States {
		if !strings.Contains(out, `"`+s.Name) && !strings.Contains(out, s.Name+`"`) && !strings.Contains(out, s.Name+`\n`) {
			t.Errorf("state %s missing from diagram", s.Name)
		}
	}
}

func TestStateGraphExport(t *testing.T) {
	prog, diags, err := compile.Source("pingpong", psamples.PingPong)
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, diags.String())
	}
	res, err := check.Explore(prog, check.Options{
		Mode: check.DelayBounded, Bound: 1, CollectGraph: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := dot.StateGraph(&b, prog, res.Graph, 0); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "digraph states") {
		t.Fatal("missing digraph header")
	}
	if strings.Count(out, "->") == 0 {
		t.Fatal("no edges exported")
	}
	if !strings.Contains(out, "Pinger#") {
		t.Fatalf("edge labels missing machine names:\n%.400s", out)
	}
}

func TestStateGraphTruncation(t *testing.T) {
	prog, diags, err := compile.Source("elevator", psamples.Elevator)
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, diags.String())
	}
	res, err := check.Explore(prog, check.Options{
		Mode: check.DelayBounded, Bound: 1, CollectGraph: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := dot.StateGraph(&b, prog, res.Graph, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "more nodes") {
		t.Fatal("truncation marker missing")
	}
}

func TestCommGraphExport(t *testing.T) {
	s, ok := psamples.ByName("german")
	if !ok {
		t.Fatal("no german sample")
	}
	prog, diags, err := compile.Source(s.Name, s.Source)
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, diags.String())
	}
	var b strings.Builder
	if err := dot.Comm(&b, prog); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"digraph comm",
		`label="Host"`,
		`label="Client"`,
		"style=dashed",  // ghost machines dashed
		"peripheries=2", // main machine doubled
	} {
		if !strings.Contains(out, want) {
			t.Errorf("comm graph missing %q:\n%s", want, out)
		}
	}
}

// Package dot exports P machines and explored state graphs in Graphviz DOT
// format — the textual counterpart of the paper's visual programming
// interface: the machine view shows the state diagram a P programmer draws
// (states, step/call transitions, deferred and action annotations); the
// graph view shows the explored global state space.
package dot

import (
	"fmt"
	"io"
	"strings"

	"pgo/internal/analysis"
	"pgo/internal/check"
	"pgo/internal/ir"
)

// Machine writes machine m of prog as a DOT digraph: states as nodes (the
// initial state doubled), step transitions as solid edges, call transitions
// as double-line edges (matching the paper's Figure 1 notation), action
// bindings as dashed self-loops, and deferred/postponed sets in the node
// labels.
func Machine(w io.Writer, prog *ir.Program, m *ir.Machine) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", m.Name)
	b.WriteString("  rankdir=TB;\n  node [shape=box, style=rounded, fontname=\"Helvetica\"];\n")
	for _, s := range m.States {
		label := s.Name
		if !s.Deferred.IsEmpty() {
			label += "\\ndefer: " + eventNames(prog, s.Deferred)
		}
		if !s.Postponed.IsEmpty() {
			label += "\\npostpone: " + eventNames(prog, s.Postponed)
		}
		attrs := fmt.Sprintf("label=%q", label)
		if s.ID == m.Init {
			attrs += ", peripheries=2"
		}
		fmt.Fprintf(&b, "  s%d [%s];\n", s.ID, attrs)
	}
	for _, s := range m.States {
		for e, tr := range s.Trans {
			switch tr.Kind {
			case ir.TransStep:
				fmt.Fprintf(&b, "  s%d -> s%d [label=%q];\n", s.ID, tr.Target, prog.Events[e].Name)
			case ir.TransCall:
				// Call transitions are drawn as double edges in the paper;
				// DOT approximates with color doubling.
				fmt.Fprintf(&b, "  s%d -> s%d [label=%q, color=\"black:invis:black\"];\n", s.ID, tr.Target, prog.Events[e].Name)
			}
		}
		for e, a := range s.Action {
			if a == ir.NoAction {
				continue
			}
			fmt.Fprintf(&b, "  s%d -> s%d [label=\"%s / %s\", style=dashed];\n",
				s.ID, s.ID, prog.Events[e].Name, m.Actions[a].Name)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func eventNames(prog *ir.Program, set ir.EventSet) string {
	var names []string
	for _, e := range set.Events() {
		names = append(names, prog.Events[e].Name)
	}
	return strings.Join(names, ", ")
}

// Comm writes the machine communication graph of prog as a DOT digraph:
// nodes are the reachable machine types (ghost machines dashed, the main
// machine doubled), edges are aggregated send relationships labelled with
// the events they carry. Edges that exist only through ambiguous targets
// (the sender's id may point elsewhere too) are drawn dotted.
func Comm(w io.Writer, prog *ir.Program) error {
	g := analysis.BuildComm(prog)
	var b strings.Builder
	b.WriteString("digraph comm {\n  rankdir=LR;\n  node [shape=box, fontname=\"Helvetica\"];\n")
	for mi, m := range prog.Machines {
		if !g.Reachable[mi] {
			continue
		}
		attrs := fmt.Sprintf("label=%q", m.Name)
		if m.Ghost {
			attrs += ", style=dashed"
		}
		if ir.MachineTypeID(mi) == prog.Main {
			attrs += ", peripheries=2"
		}
		fmt.Fprintf(&b, "  m%d [%s];\n", mi, attrs)
	}
	for _, e := range g.Edges {
		attrs := fmt.Sprintf("label=%q", eventNames(prog, e.Events))
		if e.Possible {
			attrs += ", style=dotted"
		}
		fmt.Fprintf(&b, "  m%d -> m%d [%s];\n", e.From, e.To, attrs)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// StateGraph writes an explored state graph as a DOT digraph: nodes are
// global configurations (labelled by id), edges by the machine that ran.
// Graphs beyond maxNodes nodes are truncated with a warning node
// (0 = no limit).
func StateGraph(w io.Writer, prog *ir.Program, g *check.Graph, maxNodes int) error {
	var b strings.Builder
	b.WriteString("digraph states {\n  node [shape=circle, fontsize=8];\n")
	n := g.Len()
	truncated := false
	if maxNodes > 0 && n > maxNodes {
		n = maxNodes
		truncated = true
	}
	for i := 0; i < n; i++ {
		attrs := ""
		if check.NodeID(i) == g.Init {
			attrs = " [peripheries=2]"
		}
		fmt.Fprintf(&b, "  n%d%s;\n", i, attrs)
	}
	for from := 0; from < n; from++ {
		for _, e := range g.Edges[from] {
			if int(e.To) >= n {
				continue
			}
			label := "?"
			for _, snap := range g.Nodes[from].Machines {
				if snap.ID == e.Machine {
					label = fmt.Sprintf("%s#%d", prog.Machines[snap.Type].Name, e.Machine)
					break
				}
			}
			fmt.Fprintf(&b, "  n%d -> n%d [label=%q];\n", from, e.To, label)
		}
	}
	if truncated {
		fmt.Fprintf(&b, "  trunc [shape=plaintext, label=\"(%d more nodes)\"];\n", g.Len()-n)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

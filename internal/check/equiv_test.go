package check

import (
	"fmt"
	"testing"

	"pgo/internal/compile"
	"pgo/internal/core"
	"pgo/internal/ir"
	"pgo/internal/psamples"
)

// White-box tests for explorer edge cases and the serial/parallel stats
// contract (see the invariant comment in check.go).

func compileWB(t *testing.T, name string) *ir.Program {
	t.Helper()
	s, ok := psamples.ByName(name)
	if !ok {
		t.Fatalf("no sample %s", name)
	}
	prog, diags, err := compile.Source(name, s.Source)
	if err != nil {
		t.Fatalf("compile %s: %v\n%s", name, err, diags.String())
	}
	return prog
}

// A global configuration with no live machine must be reported as a single
// quiescent state by every explorer, not panic on an empty LiveIDs slice
// (regression: delayBounded and parallelDelayBounded indexed LiveIDs()[0]
// unguarded).
func TestNoLiveMachineQuiescent(t *testing.T) {
	prog := compileWB(t, "pingpong")
	run := func(t *testing.T, mode Mode, explore func(e *explorer, g *core.Global)) {
		e, err := newExplorer(prog, Options{Mode: mode, Bound: 2})
		if err != nil {
			t.Fatal(err)
		}
		defer e.closeStores()
		g := core.NewGlobal(prog, nil) // no CreateMain: zero machines
		explore(e, g)
		st := e.result.Stats
		if st.DistinctStates != 1 {
			t.Errorf("DistinctStates = %d, want 1 (the empty configuration)", st.DistinctStates)
		}
		if st.Quiescent != 1 {
			t.Errorf("Quiescent = %d, want 1", st.Quiescent)
		}
		if st.Transitions != 0 {
			t.Errorf("Transitions = %d, want 0", st.Transitions)
		}
	}
	t.Run("delay", func(t *testing.T) {
		run(t, DelayBounded, func(e *explorer, g *core.Global) { e.delayBounded(g) })
	})
	t.Run("parallel", func(t *testing.T) {
		run(t, DelayBounded, func(e *explorer, g *core.Global) { e.parallelDelayBounded(g, 4) })
	})
	t.Run("rr", func(t *testing.T) {
		run(t, RoundRobinDelay, func(e *explorer, g *core.Global) { e.roundRobinDelay(g) })
	})
	t.Run("depth", func(t *testing.T) {
		run(t, DepthBounded, func(e *explorer, g *core.Global) { e.depthBounded(g) })
	})
}

// With one worker the parallel explorer performs the serial traversal in
// the serial order, so every statistic — not just DistinctStates — must
// match exactly. This pins the noteState/graph/claim/push ordering the two
// implementations share (the invariant documented in check.go).
func TestSerialParallelStatsEquivalence(t *testing.T) {
	for _, name := range []string{"pingpong", "elevator", "switchled", "elevator-buggy"} {
		for _, faults := range []int{0, 1} {
			for _, por := range []bool{false, true} {
				for _, exact := range []bool{false, true} {
					name, faults, por, exact := name, faults, por, exact
					t.Run(fmt.Sprintf("%s/faults=%d/por=%v/exact=%v", name, faults, por, exact), func(t *testing.T) {
						prog := compileWB(t, name)
						explore := func(workers int) (Stats, int) {
							// newExplorer applies Explore's POR gate (inactive
							// under chaos) and builds the visited dictionaries.
							e, err := newExplorer(prog, Options{
								Mode: DelayBounded, Bound: 2, MaxStates: 2_000_000,
								Faults: faults, POR: por, ExactFingerprints: exact,
							})
							if err != nil {
								t.Fatal(err)
							}
							defer e.closeStores()
							g := core.NewGlobal(prog, nil)
							if _, err := g.CreateMain(); err != nil {
								t.Fatal(err)
							}
							if workers > 1 {
								e.parallelDelayBounded(g, workers)
							} else if workers == 1 {
								// Force the parallel machinery with a single worker.
								e.parallelDelayBounded(g, 1)
							} else {
								e.delayBounded(g)
							}
							return e.result.Stats, len(e.result.Violations)
						}
						serial, sv := explore(0)
						parallel, pv := explore(1)
						if serial.DistinctStates != parallel.DistinctStates ||
							serial.Transitions != parallel.Transitions ||
							serial.SearchNodes != parallel.SearchNodes ||
							serial.FaultSteps != parallel.FaultSteps ||
							serial.ReducedStates != parallel.ReducedStates ||
							serial.AmpleSkips != parallel.AmpleSkips ||
							serial.Quiescent != parallel.Quiescent ||
							serial.MaxDepth != parallel.MaxDepth {
							t.Errorf("stats diverge:\n  serial   %+v\n  parallel %+v", serial, parallel)
						}
						// ClaimRaces is the parallel POR race counter: the
						// serial explorer never touches it, and with one
						// worker no claim can be stolen mid-node, so both
						// sides must report exactly zero.
						if serial.ClaimRaces != 0 || parallel.ClaimRaces != 0 {
							t.Errorf("ClaimRaces: serial %d, single-worker parallel %d; want 0, 0",
								serial.ClaimRaces, parallel.ClaimRaces)
						}
						if sv != pv {
							t.Errorf("violations diverge: serial %d, parallel %d", sv, pv)
						}
						if faults > 0 && serial.FaultSteps == 0 {
							t.Error("chaos run produced no fault steps")
						}
					})
				}
			}
		}
	}
}

package check

import (
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"pgo/internal/core"
	"pgo/internal/ir"
	"pgo/internal/store"
)

// Checkpoint/resume. A checkpoint freezes a search as pure data under the
// run directory (Options.StoreDir):
//
//	checkpoint.json  manifest: format tag, fingerprint scheme, program id,
//	                 the semantic options, the statistics so far, and the
//	                 per-shard chunk-file sizes of both tiered stores
//	frontier.gob     the unexpanded search nodes, each as its reproducing
//	                 trace (the same []TraceStep a violation carries) plus
//	                 the scheduler context; violations found so far; and,
//	                 in exact-fingerprint mode, whole-map dumps of the
//	                 visited dictionaries
//	states/, visited/  the tiered stores' chunk files (hashed mode), fully
//	                 spilled by the Flush that precedes every manifest write
//
// Global configurations are never serialized directly: a frontier node is
// restored by replaying its trace from the initial configuration (the same
// machinery that replays a violation), and the replayed state's 128-bit hash
// must equal the recorded one — a program or scheme change between sessions
// is caught per node, not just by the manifest's identity fields.
//
// The write order makes checkpoints atomic: stores are flushed first, then
// the frontier, and the manifest rename commits the checkpoint last. Chunk
// bytes appended after a manifest was written (the run kept going) are
// dropped on resume by truncating each shard file to the manifest's recorded
// size, so a checkpoint plus any later crash always restores to a consistent
// cut. Resumed statistics continue from the manifest's, and replayed trace
// steps are not counted — a run interrupted and resumed reports the same
// Stats as one that was never interrupted (the resume equivalence tests pin
// this).

const (
	ckptFormat       = "pverify-ckpt/1"
	ckptManifestName = "checkpoint.json"
	ckptFrontierName = "frontier.gob"
)

// ckptSemantics is the subset of Options that defines the search space.
// A checkpoint can only be resumed under equal semantics; everything else
// (workers, progress, memory caps, checkpoint cadence) is a knob the
// resuming session may change freely.
type ckptSemantics struct {
	Mode              Mode     `json:"mode"`
	Bound             int      `json:"bound"`
	MaxLocalSteps     int      `json:"max_local_steps"`
	StopAtFirstError  bool     `json:"stop_at_first_error"`
	DisableDedup      bool     `json:"disable_dedup"`
	FineGrained       bool     `json:"fine_grained"`
	ExactFingerprints bool     `json:"exact_fp"`
	POR               bool     `json:"por"`
	Faults            int      `json:"faults"`
	FaultKinds        FaultSet `json:"fault_kinds"`
	StoreShards       int      `json:"store_shards"`
}

func (o Options) semantics() ckptSemantics {
	kinds := FaultSet(0)
	if o.Faults > 0 {
		kinds = o.faultKinds()
	}
	return ckptSemantics{
		Mode:              o.Mode,
		Bound:             o.Bound,
		MaxLocalSteps:     o.MaxLocalSteps,
		StopAtFirstError:  o.StopAtFirstError,
		DisableDedup:      o.DisableDedup,
		FineGrained:       o.FineGrained,
		ExactFingerprints: o.ExactFingerprints,
		POR:               o.POR,
		Faults:            o.Faults,
		FaultKinds:        kinds,
		StoreShards:       o.StoreShards,
	}
}

// ckptManifest is the checkpoint.json schema.
type ckptManifest struct {
	Format       string        `json:"format"`
	Scheme       string        `json:"fingerprint_scheme"`
	ProgramID    string        `json:"program_id,omitempty"`
	Semantics    ckptSemantics `json:"semantics"`
	Stats        Stats         `json:"stats"`
	ElapsedNanos int64         `json:"elapsed_ns"`
	FrontierLen  int           `json:"frontier_len"`
	Violations   int           `json:"violations"`
	// Per-shard chunk-file byte limits of the two tiered stores, recorded
	// right after Flush; store.Open truncates to these on resume. Absent in
	// exact-fingerprint mode (the dictionaries travel in frontier.gob).
	StateSizes   []int64 `json:"state_shard_sizes,omitempty"`
	VisitedSizes []int64 `json:"visited_shard_sizes,omitempty"`
}

// ckptNode is one serialized frontier node. Trace replays to the node's
// global configuration; Stack/Cursor/Sleep restore the scheduler context of
// the configured mode (the other fields stay zero).
type ckptNode struct {
	Trace  []TraceStep
	Stack  []core.MachineID // delay-bounded (serial and parallel)
	Cursor int              // round-robin
	Sleep  []ckptSleep      // depth-bounded POR sleep set
	Delays int
	Faults int
	Depth  int
	Hash   core.Fp // replay verification
}

// ckptSleep mirrors sleepEntry with exported fields for gob.
type ckptSleep struct {
	ID      core.MachineID
	SentTo  []core.MachineID
	Creates bool
}

// ckptExactMinDelay and ckptExactDepth dump the exact-mode dictionaries.
type ckptExactMinDelay struct {
	State, Aux string
	Faults     int
	Delays     int
}

type ckptExactDepth struct {
	State  string
	Faults int
	Depth  int
	Sleep  []core.MachineID
}

// ckptFrontier is the frontier.gob payload.
type ckptFrontier struct {
	Nodes      []ckptNode
	Violations []Violation
	// Exact-fingerprint dictionary dumps; empty in hashed mode.
	ExactStates   []string
	ExactMinDelay []ckptExactMinDelay
	ExactDepth    []ckptExactDepth
}

// checkpointer holds a run's checkpoint configuration and write state.
type checkpointer struct {
	dir        string
	every      int
	stopAt     int
	request    func() bool
	lastStates int // distinct states at the last periodic checkpoint
	err        error
}

func (o *Options) checkpointing() bool {
	return o.CheckpointEvery > 0 || o.CheckpointStop > 0 || o.CheckpointRequest != nil
}

// initCheckpointer validates the checkpoint options and arms e.ckpt.
func (e *explorer) initCheckpointer() error {
	if !e.opts.checkpointing() {
		return nil
	}
	switch {
	case e.opts.StoreDir == "":
		return fmt.Errorf("check: checkpointing requires Options.StoreDir")
	case e.opts.CollectGraph:
		return fmt.Errorf("check: checkpointing is incompatible with CollectGraph (a resumed run cannot reconstruct the pre-checkpoint graph)")
	case e.opts.Foreign != nil:
		return fmt.Errorf("check: checkpointing is incompatible with a host foreign environment (its identity cannot be verified across sessions)")
	}
	e.ckpt = &checkpointer{
		dir:     e.opts.StoreDir,
		every:   e.opts.CheckpointEvery,
		stopAt:  e.opts.CheckpointStop,
		request: e.opts.CheckpointRequest,
	}
	return nil
}

// due reports whether a checkpoint should be written now, and whether the
// search should suspend after it.
func (c *checkpointer) due(states int) (due, stop bool) {
	if c.stopAt > 0 && states >= c.stopAt {
		return true, true
	}
	if c.request != nil && c.request() {
		return true, true
	}
	if c.every > 0 && states-c.lastStates >= c.every {
		return true, false
	}
	return false, false
}

// ckptSerial is the serial explorers' loop-top hook: when a checkpoint is
// due it snapshots the frontier (the callback runs only then) and writes it.
// It returns true when the search should stop — a suspend checkpoint was
// written, or the write failed (the error surfaces through run()).
func (e *explorer) ckptSerial(snapshot func() []ckptNode) bool {
	due, stop := e.ckpt.due(e.result.Stats.DistinctStates)
	if !due {
		return false
	}
	if err := e.writeCheckpoint(snapshot(), e.result.Stats, e.result.Violations); err != nil {
		e.ckpt.err = err
		return true
	}
	if stop {
		e.result.Checkpointed = true
	}
	return stop
}

// writeCheckpoint flushes the stores and commits a checkpoint: frontier
// first, manifest rename last (the commit point).
func (e *explorer) writeCheckpoint(frontier []ckptNode, st Stats, viols []Violation) error {
	c := e.ckpt
	man := ckptManifest{
		Format:       ckptFormat,
		Scheme:       core.FingerprintScheme,
		ProgramID:    e.opts.ProgramID,
		Semantics:    e.opts.semantics(),
		Stats:        st,
		ElapsedNanos: int64(e.prior + time.Since(e.start)),
		FrontierLen:  len(frontier),
		Violations:   len(viols),
	}
	fr := ckptFrontier{Nodes: frontier, Violations: viols}
	if e.opts.ExactFingerprints {
		e.dumpExact(&fr)
	} else {
		for _, s := range e.stores {
			if err := s.Flush(); err != nil {
				return err
			}
		}
		man.StateSizes = e.stores[0].ShardSizes()
		man.VisitedSizes = e.stores[1].ShardSizes()
	}
	if err := writeFileAtomic(filepath.Join(c.dir, ckptFrontierName), func(w io.Writer) error {
		return gob.NewEncoder(w).Encode(&fr)
	}); err != nil {
		return err
	}
	if err := writeFileAtomic(filepath.Join(c.dir, ckptManifestName), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(&man)
	}); err != nil {
		return err
	}
	c.lastStates = st.DistinctStates
	return nil
}

// writeFileAtomic writes via a temp file, syncs, and renames into place.
func writeFileAtomic(path string, write func(io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := write(f); err == nil {
		err = f.Sync()
	} else {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// dumpExact serializes the exact-mode dictionaries into the frontier file.
func (e *explorer) dumpExact(fr *ckptFrontier) {
	for i := range e.states.shards {
		sh := &e.states.shards[i]
		for k := range sh.m {
			fr.ExactStates = append(fr.ExactStates, k)
		}
	}
	if e.visited != nil {
		for i := range e.visited.shards {
			sh := &e.visited.shards[i]
			for k, d := range sh.m {
				fr.ExactMinDelay = append(fr.ExactMinDelay, ckptExactMinDelay{
					State: k.state, Aux: k.aux, Faults: k.faults, Delays: d,
				})
			}
		}
	}
	if e.dvisited != nil {
		for k, recs := range e.dvisited.m {
			for _, r := range recs {
				fr.ExactDepth = append(fr.ExactDepth, ckptExactDepth{
					State: k.state, Faults: k.faults, Depth: r.depth, Sleep: r.sleep,
				})
			}
		}
	}
}

// loadExact restores the exact-mode dictionaries from a frontier dump.
func (e *explorer) loadExact(fr *ckptFrontier) {
	for _, k := range fr.ExactStates {
		sh := &e.states.shards[StateKey{exact: k}.shard()]
		sh.m[k] = struct{}{}
	}
	if e.visited != nil {
		for _, r := range fr.ExactMinDelay {
			sh := &e.visited.shards[StateKey{exact: r.State}.shard()]
			sh.m[exactVisitedKey{state: r.State, aux: r.Aux, faults: r.Faults}] = r.Delays
		}
	}
	if e.dvisited != nil {
		for _, r := range fr.ExactDepth {
			k := exactDVKey{state: r.State, faults: r.Faults}
			e.dvisited.m[k] = append(e.dvisited.m[k], dvVal{depth: r.Depth, sleep: r.Sleep})
		}
	}
}

func readManifest(dir string) (*ckptManifest, error) {
	b, err := os.ReadFile(filepath.Join(dir, ckptManifestName))
	if err != nil {
		return nil, fmt.Errorf("check: reading checkpoint manifest: %w", err)
	}
	var man ckptManifest
	if err := json.Unmarshal(b, &man); err != nil {
		return nil, fmt.Errorf("check: parsing checkpoint manifest: %w", err)
	}
	if man.Format != ckptFormat {
		return nil, fmt.Errorf("check: checkpoint format %q not supported (want %q)", man.Format, ckptFormat)
	}
	return &man, nil
}

func readFrontier(dir string) (*ckptFrontier, error) {
	f, err := os.Open(filepath.Join(dir, ckptFrontierName))
	if err != nil {
		return nil, fmt.Errorf("check: reading checkpoint frontier: %w", err)
	}
	defer f.Close()
	var fr ckptFrontier
	if err := gob.NewDecoder(f).Decode(&fr); err != nil {
		return nil, fmt.Errorf("check: decoding checkpoint frontier: %w", err)
	}
	return &fr, nil
}

// semanticsMismatch spells out the first differing semantic field, so a
// resume under the wrong flags fails with an actionable message.
func semanticsMismatch(got, want ckptSemantics) error {
	type diff struct {
		name      string
		got, want any
	}
	for _, d := range []diff{
		{"mode", got.Mode.String(), want.Mode.String()},
		{"bound", got.Bound, want.Bound},
		{"max local steps", got.MaxLocalSteps, want.MaxLocalSteps},
		{"stop-at-first-error", got.StopAtFirstError, want.StopAtFirstError},
		{"dedup ablation", got.DisableDedup, want.DisableDedup},
		{"fine-grained ablation", got.FineGrained, want.FineGrained},
		{"exact fingerprints", got.ExactFingerprints, want.ExactFingerprints},
		{"partial-order reduction", got.POR, want.POR},
		{"fault budget", got.Faults, want.Faults},
		{"fault kinds", got.FaultKinds.String(), want.FaultKinds.String()},
		{"store shards", got.StoreShards, want.StoreShards},
	} {
		if d.got != d.want {
			return fmt.Errorf("check: resume options mismatch: %s is %v, checkpoint was written with %v", d.name, d.got, d.want)
		}
	}
	return fmt.Errorf("check: resume options mismatch")
}

// Resume restores a checkpointed search from opts.StoreDir and runs it to
// completion (or to the next suspend point — a resumed run may itself
// checkpoint). The semantic options must equal the checkpoint's; workers,
// progress, memory caps, MaxStates, and checkpoint cadence may differ.
func Resume(prog *ir.Program, opts Options) (*Result, error) {
	if opts.StoreDir == "" {
		return nil, fmt.Errorf("check: resume requires Options.StoreDir")
	}
	if opts.CollectGraph {
		return nil, fmt.Errorf("check: resume is incompatible with CollectGraph")
	}
	if opts.Foreign != nil {
		return nil, fmt.Errorf("check: resume is incompatible with a host foreign environment")
	}
	man, err := readManifest(opts.StoreDir)
	if err != nil {
		return nil, err
	}
	if man.Scheme != core.FingerprintScheme {
		return nil, fmt.Errorf("check: checkpoint fingerprint scheme %q differs from this build's %q", man.Scheme, core.FingerprintScheme)
	}
	if man.ProgramID != "" && opts.ProgramID != "" && man.ProgramID != opts.ProgramID {
		return nil, fmt.Errorf("check: checkpoint was written for a different program (id %s, resuming %s)", man.ProgramID, opts.ProgramID)
	}
	if got := opts.semantics(); got != man.Semantics {
		return nil, semanticsMismatch(got, man.Semantics)
	}

	e := &explorer{prog: prog, opts: opts, progEvery: opts.progressEvery(), start: time.Now()}
	if opts.POR && opts.PORDisabledReason() == "" {
		e.por = newReducer(prog)
	}
	if err := e.initCheckpointer(); err != nil {
		return nil, err
	}
	if err := e.openDicts(man); err != nil {
		return nil, err
	}
	fr, err := readFrontier(opts.StoreDir)
	if err != nil {
		e.closeStores()
		return nil, err
	}
	if len(fr.Nodes) != man.FrontierLen || len(fr.Violations) != man.Violations {
		e.closeStores()
		return nil, fmt.Errorf("check: checkpoint frontier does not match its manifest (%d/%d nodes, %d/%d violations)",
			len(fr.Nodes), man.FrontierLen, len(fr.Violations), man.Violations)
	}

	// Continue the recorded statistics; replayed trace steps below are not
	// counted, so the resumed totals line up with an uninterrupted run's.
	e.result.Stats = man.Stats
	e.result.Violations = fr.Violations
	e.states.count.Store(int64(man.Stats.DistinctStates))
	e.prior = time.Duration(man.ElapsedNanos)
	if e.ckpt != nil {
		e.ckpt.lastStates = man.Stats.DistinctStates
	}
	if opts.ExactFingerprints {
		e.loadExact(fr)
	}

	globals := make([]*core.Global, len(fr.Nodes))
	for i := range fr.Nodes {
		g, err := e.replayNode(&fr.Nodes[i])
		if err != nil {
			e.closeStores()
			return nil, err
		}
		globals[i] = g
	}
	if err := e.runFrom(fr.Nodes, globals); err != nil {
		e.closeStores()
		return nil, err
	}
	e.result.Stats.Elapsed = e.prior + time.Since(e.start)
	e.finishStores()
	return &e.result, nil
}

// openDicts is initDicts for a resume: the hashed tiers reopen the spilled
// chunk files truncated to the manifest's recorded sizes.
func (e *explorer) openDicts(man *ckptManifest) error {
	if e.opts.ExactFingerprints {
		return e.initDicts()
	}
	openTier := func(sub string, merge store.MergeFunc, sizes []int64) (*store.Store, error) {
		st, err := store.Open(store.Options{
			Dir:         filepath.Join(e.opts.StoreDir, sub),
			Shards:      e.opts.StoreShards,
			MemPerShard: e.opts.StoreMemPerShard,
			Merge:       merge,
		}, sizes)
		if err != nil {
			return nil, fmt.Errorf("check: reopening visited store: %w", err)
		}
		e.stores = append(e.stores, st)
		return st, nil
	}
	st, err := openTier("states", nil, man.StateSizes)
	if err != nil {
		return err
	}
	e.states = newStateSet(st, false)
	if e.opts.Mode == DepthBounded {
		st, err := openTier("visited", dvMerge, man.VisitedSizes)
		if err != nil {
			return err
		}
		e.dvisited = newDepthVisited(st, false)
	} else {
		st, err := openTier("visited", minDelayMerge, man.VisitedSizes)
		if err != nil {
			return err
		}
		e.visited = newMinDelayMap(st, false)
	}
	return nil
}

// replayNode reconstructs a frontier node's global configuration by
// replaying its trace from the initial configuration. Fault steps replay as
// injections; every other step re-runs the recorded machine under the
// recorded choice bits. The replayed state's hash must match the recorded
// one — a changed program, sample, or hash scheme fails here with a pointed
// error rather than silently exploring the wrong space.
func (e *explorer) replayNode(cn *ckptNode) (*core.Global, error) {
	g := core.NewGlobal(e.prog, nil)
	g.DisableDedup = e.opts.DisableDedup
	g.YieldOnDequeue = e.opts.FineGrained
	if _, err := g.CreateMain(); err != nil {
		return nil, fmt.Errorf("check: resume replay: creating main machine: %w", err)
	}
	for i := range cn.Trace {
		step := &cn.Trace[i]
		if step.Fault != FaultNone {
			ok := false
			switch step.Fault {
			case FaultCrash:
				ok = g.InjectCrash(step.Machine)
			case FaultDrop:
				_, ok = g.InjectDrop(step.Machine)
			case FaultDup:
				_, ok = g.InjectDup(step.Machine)
			}
			if !ok {
				return nil, fmt.Errorf("check: resume replay diverged at step %d: %s fault on machine %d not applicable", i+1, step.Fault, step.Machine)
			}
			continue
		}
		out := g.RunToSchedPoint(step.Machine, &core.FixedChoices{Bits: step.Choices}, e.opts.MaxLocalSteps)
		if out.Kind != step.Outcome {
			return nil, fmt.Errorf("check: resume replay diverged at step %d: machine %d produced %v, checkpoint recorded %v (program changed since the checkpoint?)",
				i+1, step.Machine, out.Kind, step.Outcome)
		}
	}
	if g.Hash() != cn.Hash {
		return nil, fmt.Errorf("check: resume replay reached a different state than the checkpoint recorded (program changed since the checkpoint?)")
	}
	return g, nil
}

// runFrom dispatches the restored frontier to the configured mode's loop.
// The shared search node carries every mode's scheduler context, so the
// restore is uniform; fields a mode never set are zero in the checkpoint
// and stay zero here.
func (e *explorer) runFrom(nodes []ckptNode, globals []*core.Global) error {
	e.result.Stats.Workers = 1 // parallelLoop overwrites with the resolved count
	frontier := make([]node, len(nodes))
	for i := range nodes {
		cn := &nodes[i]
		var sleep []sleepEntry
		if len(cn.Sleep) > 0 {
			sleep = make([]sleepEntry, len(cn.Sleep))
			for j, s := range cn.Sleep {
				sleep[j] = sleepEntry{id: s.ID, sentTo: s.SentTo, creates: s.Creates}
			}
		}
		frontier[i] = node{
			g:      globals[i],
			stack:  schedStack(cn.Stack),
			cursor: cn.Cursor,
			sleep:  sleep,
			delays: cn.Delays,
			faults: cn.Faults,
			depth:  cn.Depth,
			trace:  cn.Trace,
		}
	}
	switch e.opts.Mode {
	case DepthBounded, RoundRobinDelay:
		e.serialLoop(frontier)
	case DelayBounded:
		if e.opts.Workers > 1 || e.opts.Workers < 0 {
			e.parallelLoop(frontier, e.opts.Workers)
		} else {
			e.serialLoop(frontier)
		}
	default:
		return fmt.Errorf("check: unknown mode %d", e.opts.Mode)
	}
	if e.ckpt != nil && e.ckpt.err != nil {
		return fmt.Errorf("check: writing checkpoint: %w", e.ckpt.err)
	}
	return nil
}

// ckptNodes converts a live frontier into serialized nodes. All scheduler
// context travels unconditionally — gob encodes zero values compactly, and
// a mode ignores fields it never set.
func ckptNodes(stack []node) []ckptNode {
	out := make([]ckptNode, len(stack))
	for i := range stack {
		n := &stack[i]
		var sleep []ckptSleep
		if len(n.sleep) > 0 {
			sleep = make([]ckptSleep, len(n.sleep))
			for j := range n.sleep {
				en := &n.sleep[j]
				sleep[j] = ckptSleep{ID: en.id, SentTo: en.sentTo, Creates: en.creates}
			}
		}
		out[i] = ckptNode{
			Trace:  n.trace,
			Stack:  append([]core.MachineID(nil), n.stack...),
			Cursor: n.cursor,
			Sleep:  sleep,
			Delays: n.delays,
			Faults: n.faults,
			Depth:  n.depth,
			Hash:   n.g.Hash(),
		}
	}
	return out
}


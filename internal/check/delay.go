package check

import (
	"encoding/binary"

	"pgo/internal/core"
)

// The delaying scheduler of §5. It maintains a stack S of machine ids and a
// delay budget:
//
//   - the machine on top of S is always the one scheduled next;
//   - when the scheduled machine creates m', m' is pushed;
//   - when it sends to m' and m' ∉ S, m' is pushed — so control follows the
//     causal chain of the message;
//   - a delay moves the top of S to the bottom and consumes budget;
//   - a machine that blocks (or halts) is popped.
//
// With budget d the explorer branches over every number of delays at every
// scheduling point, subject to the budget; delays that merely rotate a
// disabled machine to the top implicitly pop it.

// schedStack is the delaying scheduler's stack. The last element is the top.
// A machine id appears at most once (pushes are guarded by contains or push
// fresh creations), which the rotation-cycle bound in scheduleOptions
// relies on.
type schedStack []core.MachineID

func (s schedStack) top() core.MachineID { return s[len(s)-1] }

func (s schedStack) contains(id core.MachineID) bool {
	for _, m := range s {
		if m == id {
			return true
		}
	}
	return false
}

func (s schedStack) clone() schedStack { return append(schedStack(nil), s...) }

// rotate1InPlace moves the top to the bottom (one delay). The receiver must
// be exclusively owned by the caller.
func (s schedStack) rotate1InPlace() {
	if len(s) < 2 {
		return
	}
	top := s[len(s)-1]
	copy(s[1:], s[:len(s)-1])
	s[0] = top
}

// popDisabled removes disabled or halted machines from the top; they would
// be scheduled and immediately yield.
func (s schedStack) popDisabled(g *core.Global) schedStack {
	out := s
	for len(out) > 0 && !g.Enabled(out[len(out)-1]) {
		out = out[:len(out)-1]
	}
	return out
}

// Seeds for the hashed scheduler-stack digests, independent of the state
// fingerprint seeds. Fixed constants: stack digests are part of the visited
// keys the tiered store persists across processes (checkpoint/resume).
const (
	stackSeedHi uint64 = 0x737461636b2d6869 // "stack-hi"
	stackSeedLo uint64 = 0x737461636b2d6c6f // "stack-lo"
)

// stackKey is the compact comparable form of a scheduler stack used in the
// visited maps: a 128-bit hash of the id sequence by default (computed
// allocation-free from a stack scratch buffer), or the exact varint
// encoding under Options.ExactFingerprints — the same escape hatch the
// state keys use, so the auditing mode is collision-free end to end. A run
// uses one scheme throughout, so keys from the two schemes never mix.
type stackKey struct {
	hash  core.Fp
	exact string
}

// digest computes the visited-map key of the stack under the given scheme.
func (s schedStack) digest(exact bool) stackKey {
	var arr [64]byte
	buf := arr[:0]
	for _, id := range s {
		buf = binary.AppendUvarint(buf, uint64(id))
	}
	if exact {
		return stackKey{exact: string(buf)}
	}
	return stackKey{hash: core.Fp{
		Hi: core.StableHash64(stackSeedHi, buf),
		Lo: core.StableHash64(stackSeedLo, buf),
	}}
}

// The delay-bounded visited dictionary (minDelayMap, visited.go) keys a
// scheduler-stack-qualified state, further qualified by the chaos faults
// already used (a node with fewer faults used has more fault budget left, so
// the partition keeps revisits with spare budget explorable; always 0 with
// chaos off). Claiming a node allocates nothing in the default hashed
// scheme: the components fold into one 128-bit store key.

// scheduleOption is one way to pick the next machine: apply cost delays,
// leaving the stack in stack (top = the machine to run).
type scheduleOption struct {
	cost  int
	stack schedStack
}

// scheduleOptions enumerates the schedulable machines reachable within the
// remaining delay budget: walking the rotation cycle of the stack, popping
// disabled machines for free, stopping after a full cycle.
//
// Cycle detection is arithmetic, not keyed: machine ids on the stack are
// distinct, so rotating a stack of length n repeats its first configuration
// after exactly n pure rotations, and a pop strictly shrinks the multiset —
// a post-pop stack can never equal a pre-pop one. The walk therefore stops
// when the rotations since the last pop reach the current length, without
// building per-iteration keys.
func scheduleOptions(g *core.Global, s schedStack, remaining int) []scheduleOption {
	cur := s.clone().popDisabled(g)
	max := len(cur)
	if remaining+1 < max {
		max = remaining + 1
	}
	if max <= 0 {
		return nil
	}
	opts := make([]scheduleOption, 0, max)
	cost := 0
	rots := 0 // pure rotations since the stack last shrank
	for len(cur) > 0 && cost <= remaining && rots < len(cur) {
		opts = append(opts, scheduleOption{cost: cost, stack: cur.clone()})
		if len(cur) < 2 {
			break
		}
		prev := len(cur)
		cur.rotate1InPlace()
		cur = cur.popDisabled(g)
		cost++
		if len(cur) < prev {
			rots = 0
		} else {
			rots++
		}
	}
	return opts
}

// delayBounded explores the delaying scheduler's schedules within the
// Options.Bound delay budget. The per-node work — schedule options as moves,
// POR, fault branching — lives in the shared core (engine.go); this driver
// only seeds the scheduler stack and runs the serial LIFO loop.
func (e *explorer) delayBounded(g0 *core.Global) {
	fp0 := e.keyOf(g0)
	e.noteState(fp0)
	if e.graph != nil {
		e.graph.Init = e.graph.Node(fp0, g0)
	}

	// A program whose initial configuration has no live machine (possible
	// for degenerate inputs) starts with an empty scheduler stack; the node
	// loop then reports it quiescent instead of panicking.
	var initStack schedStack
	if live := g0.LiveIDs(); len(live) > 0 {
		initStack = schedStack{live[0]}
	}
	e.visited.claim(fp0, initStack.digest(e.opts.ExactFingerprints), 0, 0)
	e.serialLoop([]node{{g: g0, stack: initStack}})
}

// updateStack applies the scheduler's stack rules after machine id ran one
// macro step from the given stack (id on top). The result is a fresh stack
// with one slot of spare capacity for the push cases.
func updateStack(s schedStack, id core.MachineID, out core.Outcome) schedStack {
	next := make(schedStack, len(s), len(s)+1)
	copy(next, s)
	switch out.Kind {
	case core.OutSend:
		if !next.contains(out.SentTo) {
			next = append(next, out.SentTo)
		}
	case core.OutNew:
		next = append(next, out.Created)
	case core.OutBlocked, core.OutHalted:
		// Pop the machine (it is on top).
		if len(next) > 0 && next.top() == id {
			next = next[:len(next)-1]
		}
	}
	return next
}

package check

import (
	"time"

	"pgo/internal/ir"
)

// SweepPoint is one point of a Figure-7-style series.
type SweepPoint struct {
	Bound       int
	States      int
	Transitions int
	Violations  int
	Truncated   bool
	Elapsed     time.Duration
}

// Sweep explores prog at every bound in [0, maxBound], reusing opts for
// everything but the bound, and returns the series — the harness behind
// Figure 7. The sweep stops early (returning the points gathered) when a
// single exploration exceeds pointBudget (0 = no per-point budget) or when
// StopAtFirstError is set and a violation is found.
func Sweep(prog *ir.Program, opts Options, maxBound int, pointBudget time.Duration) ([]SweepPoint, error) {
	var series []SweepPoint
	for d := 0; d <= maxBound; d++ {
		o := opts
		o.Bound = d
		res, err := Explore(prog, o)
		if err != nil {
			return series, err
		}
		series = append(series, SweepPoint{
			Bound:       d,
			States:      res.Stats.DistinctStates,
			Transitions: res.Stats.Transitions,
			Violations:  len(res.Violations),
			Truncated:   res.Stats.Truncated,
			Elapsed:     res.Stats.Elapsed,
		})
		if opts.StopAtFirstError && res.Errored() {
			break
		}
		if pointBudget > 0 && res.Stats.Elapsed > pointBudget {
			break
		}
	}
	return series, nil
}

// Saturated reports whether the series has stopped growing: the last two
// points discovered the same number of distinct states (the plateau of
// Figure 7, where increasing the delay budget exposes nothing new).
func Saturated(series []SweepPoint) bool {
	n := len(series)
	return n >= 2 && series[n-1].States == series[n-2].States
}

package check

import (
	"fmt"
	"strings"

	"pgo/internal/core"
)

// Chaos mode: fault-injecting exploration. Under a fault budget
// (Options.Faults, pverify -faults, mirroring the delay budget d) the
// explorers add nondeterministic *fault successors* at every expanded node:
// a spontaneous machine halt (so later sends to it take the paper's
// SEND-FAIL-2 send-to-deleted transition), a message dropped at dequeue,
// and a duplicate delivery forced past the ⊕ dedup append. A schedule may
// contain at most Faults fault steps, so the fault-free state space is
// always a subgraph of the chaos space and a chaos-clean program is clean
// fault-free too.
//
// Soundness of the visited sets: a state reached with fewer faults used has
// strictly more behaviour left (the remaining fault budget is larger), so
// the visited keys are extended with the faults-used count — the same move
// that qualifies delay-bounded keys with the scheduler stack. Fault steps
// consume no delay budget and execute no machine transition; they are the
// environment's moves, not the scheduler's.

// FaultKind labels one injected environment fault in a trace.
type FaultKind uint8

const (
	// FaultNone marks an ordinary (non-fault) trace step.
	FaultNone FaultKind = iota
	// FaultCrash is a spontaneous machine halt.
	FaultCrash
	// FaultDrop is a message dropped at dequeue.
	FaultDrop
	// FaultDup is a duplicate delivery bypassing the ⊕ dedup.
	FaultDup
)

func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultCrash:
		return "crash"
	case FaultDrop:
		return "drop"
	case FaultDup:
		return "dup"
	default:
		return "fault(?)"
	}
}

// FaultSet selects which fault kinds chaos mode injects.
type FaultSet uint8

const (
	// CrashFaults enables spontaneous machine halts.
	CrashFaults FaultSet = 1 << iota
	// DropFaults enables message drops at dequeue.
	DropFaults
	// DupFaults enables duplicate deliveries.
	DupFaults
	// AllFaults enables every fault kind (the default when
	// Options.FaultKinds is left zero).
	AllFaults = CrashFaults | DropFaults | DupFaults
)

// Has reports whether the set includes fault kind k.
func (s FaultSet) Has(k FaultKind) bool {
	switch k {
	case FaultCrash:
		return s&CrashFaults != 0
	case FaultDrop:
		return s&DropFaults != 0
	case FaultDup:
		return s&DupFaults != 0
	}
	return false
}

func (s FaultSet) String() string {
	var parts []string
	if s.Has(FaultCrash) {
		parts = append(parts, "crash")
	}
	if s.Has(FaultDrop) {
		parts = append(parts, "drop")
	}
	if s.Has(FaultDup) {
		parts = append(parts, "dup")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// ParseFaultSet parses a comma-separated fault-kind list ("crash,drop,dup";
// "all" selects every kind).
func ParseFaultSet(spec string) (FaultSet, error) {
	var s FaultSet
	for _, part := range strings.Split(spec, ",") {
		switch strings.TrimSpace(part) {
		case "":
		case "all":
			s |= AllFaults
		case "crash":
			s |= CrashFaults
		case "drop":
			s |= DropFaults
		case "dup":
			s |= DupFaults
		default:
			return 0, fmt.Errorf("unknown fault kind %q (want crash, drop, dup, or all)", strings.TrimSpace(part))
		}
	}
	if s == 0 {
		return 0, fmt.Errorf("empty fault-kind list")
	}
	return s, nil
}

// faultKinds resolves the configured fault selection (zero = all kinds).
func (o Options) faultKinds() FaultSet {
	if o.FaultKinds == 0 {
		return AllFaults
	}
	return o.FaultKinds
}

// faultBranch is one fault successor of a search node.
type faultBranch struct {
	global *core.Global
	step   TraceStep
	fp     StateKey
}

// faultBranches enumerates the fault successors of g under the configured
// fault kinds: for every live machine a spontaneous crash, and for every
// machine with a deliverable queued event a drop and a duplicate of that
// event. Each branch consumes one unit of fault budget. The enumeration
// order is deterministic (machines in id order, crash/drop/dup per
// machine), which the serial/parallel stats equivalence relies on.
func (e *explorer) faultBranches(g *core.Global) []faultBranch {
	kinds := e.opts.faultKinds()
	var out []faultBranch
	for _, id := range g.LiveIDs() {
		out = e.appendFaultBranches(out, g, id, kinds)
	}
	return out
}

// machineFaultBranches enumerates only machine id's fault branches, in the
// same per-machine order as faultBranches. The shared core uses it at
// POR-reduced nodes: the ample machine's faults belong to the ample set,
// while the coalition's faults commute and regenerate at the descendants.
func (e *explorer) machineFaultBranches(g *core.Global, id core.MachineID) []faultBranch {
	return e.appendFaultBranches(nil, g, id, e.opts.faultKinds())
}

// appendFaultBranches appends machine id's fault branches under kinds.
func (e *explorer) appendFaultBranches(out []faultBranch, g *core.Global, id core.MachineID, kinds FaultSet) []faultBranch {
	typ := e.prog.Machines[g.Lookup(id).Type].Name
	if kinds.Has(FaultCrash) {
		clone := g.Clone()
		if clone.InjectCrash(id) {
			out = append(out, faultBranch{
				global: clone,
				fp:     e.keyOf(clone),
				step:   TraceStep{Machine: id, Type: typ, Outcome: core.OutHalted, Fault: FaultCrash},
			})
		}
	}
	if !kinds.Has(FaultDrop) && !kinds.Has(FaultDup) {
		return out
	}
	if _, ok := g.DeliverableEvent(id); !ok {
		return out
	}
	if kinds.Has(FaultDrop) {
		clone := g.Clone()
		if q, ok := clone.InjectDrop(id); ok {
			out = append(out, faultBranch{
				global: clone,
				fp:     e.keyOf(clone),
				step:   TraceStep{Machine: id, Type: typ, Outcome: core.OutBlocked, Fault: FaultDrop, Event: q.Event, HasEv: true},
			})
		}
	}
	if kinds.Has(FaultDup) {
		clone := g.Clone()
		if q, ok := clone.InjectDup(id); ok {
			out = append(out, faultBranch{
				global: clone,
				fp:     e.keyOf(clone),
				step:   TraceStep{Machine: id, Type: typ, Outcome: core.OutBlocked, Fault: FaultDup, Event: q.Event, HasEv: true},
			})
		}
	}
	return out
}

package check_test

import (
	"testing"

	"pgo/internal/check"
	"pgo/internal/compile"
	"pgo/internal/core"
	"pgo/internal/ir"
	"pgo/internal/psamples"
)

func compileSample(t testing.TB, name string) *ir.Program {
	t.Helper()
	s, ok := psamples.ByName(name)
	if !ok {
		t.Fatalf("no sample %s", name)
	}
	prog, diags, err := compile.Source(name, s.Source)
	if err != nil {
		t.Fatalf("compile %s: %v\n%s", name, err, diags.String())
	}
	return prog
}

func TestPingPongSafeDelayBounded(t *testing.T) {
	prog := compileSample(t, "pingpong")
	res, err := check.Explore(prog, check.Options{Mode: check.DelayBounded, Bound: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errored() {
		t.Fatalf("pingpong should be safe, got %v", res.FirstViolation())
	}
	if res.Stats.DistinctStates < 10 {
		t.Fatalf("suspiciously few states: %d", res.Stats.DistinctStates)
	}
}

func TestPingPongSafeDepthBounded(t *testing.T) {
	prog := compileSample(t, "pingpong")
	res, err := check.Explore(prog, check.Options{Mode: check.DepthBounded, Bound: 60})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errored() {
		t.Fatalf("pingpong should be safe, got %v", res.FirstViolation())
	}
}

func TestElevatorSafe(t *testing.T) {
	prog := compileSample(t, "elevator")
	res, err := check.Explore(prog, check.Options{Mode: check.DelayBounded, Bound: 4, MaxStates: 2_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errored() {
		v := res.FirstViolation()
		t.Fatalf("elevator should be safe, got %v\ntrace:\n%s", v.Err, formatTrace(v.Trace))
	}
	t.Logf("elevator d=4: %d states, %d transitions", res.Stats.DistinctStates, res.Stats.Transitions)
}

func formatTrace(steps []check.TraceStep) string {
	out := ""
	for _, s := range steps {
		out += "  " + s.String() + "\n"
	}
	return out
}

func TestElevatorBuggyFoundAtLowDelay(t *testing.T) {
	prog := compileSample(t, "elevator-buggy")
	found := -1
	for d := 0; d <= 3; d++ {
		res, err := check.Explore(prog, check.Options{
			Mode: check.DelayBounded, Bound: d, StopAtFirstError: true, MaxStates: 2_000_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Errored() {
			found = d
			v := res.FirstViolation()
			if v.Err.Kind != core.ErrUnhandled {
				t.Fatalf("expected unhandled event, got %v", v.Err)
			}
			break
		}
	}
	if found < 0 {
		t.Fatal("seeded elevator bug not found within delay bound 3")
	}
	if found > 2 {
		t.Errorf("bug found only at delay bound %d; the paper reports bugs within 2", found)
	}
	t.Logf("elevator-buggy found at delay bound %d", found)
}

func TestSwitchLEDSafe(t *testing.T) {
	prog := compileSample(t, "switchled")
	res, err := check.Explore(prog, check.Options{Mode: check.DelayBounded, Bound: 3, MaxStates: 2_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errored() {
		v := res.FirstViolation()
		t.Fatalf("switchled should be safe, got %v\ntrace:\n%s", v.Err, formatTrace(v.Trace))
	}
}

func TestSwitchLEDBuggyFound(t *testing.T) {
	prog := compileSample(t, "switchled-buggy")
	found := -1
	for d := 0; d <= 3; d++ {
		res, err := check.Explore(prog, check.Options{
			Mode: check.DelayBounded, Bound: d, StopAtFirstError: true, MaxStates: 2_000_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Errored() {
			found = d
			break
		}
	}
	if found < 0 || found > 2 {
		t.Fatalf("switchled bug found at delay bound %d, want <= 2", found)
	}
	t.Logf("switchled-buggy found at delay bound %d", found)
}

func TestGermanSafe(t *testing.T) {
	prog, diags, err := compile.Source("german", psamples.German(2))
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, diags.String())
	}
	res, err := check.Explore(prog, check.Options{Mode: check.DelayBounded, Bound: 3, MaxStates: 2_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errored() {
		v := res.FirstViolation()
		t.Fatalf("german should be safe, got %v\ntrace:\n%s", v.Err, formatTrace(v.Trace))
	}
	t.Logf("german(2) d=3: %d states", res.Stats.DistinctStates)
}

func TestGermanBuggyFound(t *testing.T) {
	prog, diags, err := compile.Source("german-buggy", psamples.GermanBuggy(2))
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, diags.String())
	}
	found := -1
	for d := 0; d <= 3; d++ {
		res, err := check.Explore(prog, check.Options{
			Mode: check.DelayBounded, Bound: d, StopAtFirstError: true, MaxStates: 2_000_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Errored() {
			v := res.FirstViolation()
			if v.Err.Kind != core.ErrAssert {
				t.Fatalf("expected assertion failure, got %v", v.Err)
			}
			found = d
			break
		}
	}
	if found < 0 || found > 2 {
		t.Fatalf("german bug found at delay bound %d, want <= 2", found)
	}
	t.Logf("german-buggy found at delay bound %d", found)
}

// States explored must be monotone in the delay bound (Figure 7's x-axis).
func TestDelayBoundMonotone(t *testing.T) {
	prog := compileSample(t, "elevator")
	prev := 0
	for d := 0; d <= 3; d++ {
		res, err := check.Explore(prog, check.Options{Mode: check.DelayBounded, Bound: d, MaxStates: 2_000_000})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.DistinctStates < prev {
			t.Fatalf("states decreased: d=%d gives %d < %d", d, res.Stats.DistinctStates, prev)
		}
		prev = res.Stats.DistinctStates
	}
}

// Depth-bounded search must also find the seeded elevator bug, just less
// efficiently (the §5 motivation for delay bounding).
func TestDepthBoundedFindsElevatorBug(t *testing.T) {
	prog := compileSample(t, "elevator-buggy")
	res, err := check.Explore(prog, check.Options{
		Mode: check.DepthBounded, Bound: 30, StopAtFirstError: true, MaxStates: 500_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Errored() {
		t.Fatalf("depth-bounded search (bound 30, %d states) missed the seeded bug", res.Stats.DistinctStates)
	}
}

func TestGraphCollection(t *testing.T) {
	prog := compileSample(t, "pingpong")
	res, err := check.Explore(prog, check.Options{Mode: check.DelayBounded, Bound: 2, CollectGraph: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph == nil || res.Graph.Len() == 0 {
		t.Fatal("graph not collected")
	}
	// Every edge target must be a valid node.
	for from, edges := range res.Graph.Edges {
		for _, e := range edges {
			if int(e.To) < 0 || int(e.To) >= res.Graph.Len() {
				t.Fatalf("edge from %d to invalid node %d", from, e.To)
			}
		}
	}
}

func TestViolationTraceReplays(t *testing.T) {
	prog := compileSample(t, "elevator-buggy")
	res, err := check.Explore(prog, check.Options{
		Mode: check.DelayBounded, Bound: 2, StopAtFirstError: true, MaxStates: 2_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	v := res.FirstViolation()
	if v == nil {
		t.Fatal("no violation")
	}
	// Replay the trace's machine/choice schedule and confirm the same error.
	g := core.NewGlobal(prog, nil)
	if _, err := g.CreateMain(); err != nil {
		t.Fatal(err)
	}
	for i, step := range v.Trace {
		out := g.RunToSchedPoint(step.Machine, &core.FixedChoices{Bits: step.Choices}, 0)
		if out.Kind == core.OutError {
			if i != len(v.Trace)-1 {
				t.Fatalf("error at step %d/%d: %v", i+1, len(v.Trace), out.Err)
			}
			if out.Err.Kind != v.Err.Kind {
				t.Fatalf("replayed error %v, want %v", out.Err.Kind, v.Err.Kind)
			}
			return
		}
	}
	t.Fatal("replay did not reproduce the violation")
}

func TestRingElectsUniqueLeader(t *testing.T) {
	prog := compileSample(t, "ring")
	res, err := check.Explore(prog, check.Options{Mode: check.DelayBounded, Bound: 2, MaxStates: 2_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errored() {
		v := res.FirstViolation()
		t.Fatalf("ring should be safe, got %v\ntrace:\n%s", v.Err, formatTrace(v.Trace))
	}
	t.Logf("ring(3) d=2: %d states", res.Stats.DistinctStates)
}

func TestRingBuggyFound(t *testing.T) {
	prog := compileSample(t, "ring-buggy")
	found := -1
	for d := 0; d <= 2 && found < 0; d++ {
		res, err := check.Explore(prog, check.Options{
			Mode: check.DelayBounded, Bound: d, StopAtFirstError: true, MaxStates: 2_000_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Errored() {
			if res.FirstViolation().Err.Kind != core.ErrAssert {
				t.Fatalf("expected assertion failure, got %v", res.FirstViolation().Err)
			}
			found = d
		}
	}
	if found < 0 {
		t.Fatal("inverted-comparison bug not found within delay bound 2")
	}
	t.Logf("ring-buggy found at delay bound %d", found)
}

func TestBoundedBufferInvariants(t *testing.T) {
	prog := compileSample(t, "boundedbuffer")
	res, err := check.Explore(prog, check.Options{Mode: check.DelayBounded, Bound: 3, MaxStates: 2_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errored() {
		v := res.FirstViolation()
		t.Fatalf("buffer should be safe, got %v\ntrace:\n%s", v.Err, formatTrace(v.Trace))
	}
	t.Logf("boundedbuffer d=3: %d states", res.Stats.DistinctStates)
}

// Sweep produces the Figure-7 series and detects saturation: ping-pong's
// full state space is covered by delay bound 1.
func TestSweepSaturates(t *testing.T) {
	prog := compileSample(t, "pingpong")
	series, err := check.Sweep(prog, check.Options{Mode: check.DelayBounded}, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 5 {
		t.Fatalf("series length = %d, want 5", len(series))
	}
	for i := 1; i < len(series); i++ {
		if series[i].States < series[i-1].States {
			t.Fatalf("series not monotone at bound %d", i)
		}
	}
	if !check.Saturated(series) {
		t.Fatalf("pingpong should saturate within bound 4: %+v", series)
	}
	if series[4].States != series[1].States {
		t.Fatalf("saturation level moved: %d vs %d", series[4].States, series[1].States)
	}
}

// Sweep stops at the first violating bound with StopAtFirstError.
func TestSweepStopsAtViolation(t *testing.T) {
	prog := compileSample(t, "elevator-buggy")
	series, err := check.Sweep(prog, check.Options{
		Mode: check.DelayBounded, StopAtFirstError: true, MaxStates: 2_000_000,
	}, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	last := series[len(series)-1]
	if last.Violations == 0 {
		t.Fatalf("sweep ended without a violation: %+v", series)
	}
	if last.Bound > 2 {
		t.Fatalf("bug found only at bound %d", last.Bound)
	}
}

// The atomicity reduction (§5) is behaviour-preserving for safety: the
// fine-grained ablation (yield at every dequeue) reaches the same verdict
// at the same minimal delay bound on every buggy sample.
func TestFineGrainedSameVerdicts(t *testing.T) {
	for _, name := range []string{"elevator-buggy", "switchled-buggy", "ring-buggy"} {
		name := name
		t.Run(name, func(t *testing.T) {
			prog := compileSample(t, name)
			minBound := func(fine bool) int {
				for d := 0; d <= 3; d++ {
					res, err := check.Explore(prog, check.Options{
						Mode: check.DelayBounded, Bound: d, StopAtFirstError: true,
						MaxStates: 2_000_000, FineGrained: fine,
					})
					if err != nil {
						t.Fatal(err)
					}
					if res.Errored() {
						return d
					}
				}
				return -1
			}
			coarse, fine := minBound(false), minBound(true)
			if coarse != fine {
				t.Fatalf("minimal bug bound differs: coarse %d, fine %d", coarse, fine)
			}
			if coarse < 0 {
				t.Fatal("bug not found by either granularity")
			}
		})
	}
}

func TestCoverage(t *testing.T) {
	prog := compileSample(t, "elevator")
	res, err := check.Explore(prog, check.Options{
		Mode: check.DelayBounded, Bound: 2, CollectGraph: true, MaxStates: 2_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	cov := check.CoverageOf(prog, res.Graph)
	elev, _ := prog.MachineByName("Elevator")
	if !cov.Instantiated[elev.ID] {
		t.Fatal("elevator not instantiated")
	}
	unvisited := cov.Unvisited(prog, elev.ID)
	// Only the transient ReturnState (entry always raises) is unobservable
	// at scheduling points; everything else must be covered at bound 2.
	if len(unvisited) != 1 || elev.States[unvisited[0]].Name != "ReturnState" {
		var names []string
		for _, s := range unvisited {
			names = append(names, elev.States[s].Name)
		}
		t.Fatalf("unvisited = %v, want only the transient ReturnState", names)
	}
	// A machine type never created reports nil (not everything-unvisited).
	fake := ir.MachineTypeID(len(prog.Machines) - 1) // Timer ghost: instantiated
	_ = fake
	cov2 := check.CoverageOf(prog, check.NewGraph())
	if got := cov2.Unvisited(prog, elev.ID); got != nil {
		t.Fatalf("empty graph should report nil, got %v", got)
	}
}

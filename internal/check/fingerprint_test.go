package check_test

import (
	"fmt"
	"testing"

	"pgo/internal/check"
	"pgo/internal/compile"
	"pgo/internal/psamples"
)

// Hashed (default) and exact (-exact-fp) fingerprint modes must agree on
// the number of distinct states: the 128-bit hash is collision-free in
// practice at these scales, and any divergence here would mean dedup
// semantics leaked into the key scheme.
func TestHashedExactSameDistinctStates(t *testing.T) {
	progs := map[string]string{
		"elevator":  psamples.Elevator,
		"switchled": psamples.SwitchLED,
		"german":    psamples.German(2),
	}
	for name, src := range progs {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			prog, diags, err := compile.Source(name, src)
			if err != nil {
				t.Fatalf("compile: %v\n%s", err, diags.String())
			}
			for d := 0; d <= 3; d++ {
				for _, mode := range []check.Mode{check.DelayBounded, check.DepthBounded} {
					bound := d
					if mode == check.DepthBounded {
						bound = d + 6 // depth bounds this small explore trivial prefixes
					}
					run := func(exact bool) *check.Result {
						res, err := check.Explore(prog, check.Options{
							Mode: mode, Bound: bound, MaxStates: 2_000_000,
							ExactFingerprints: exact,
						})
						if err != nil {
							t.Fatal(err)
						}
						return res
					}
					hashed, exact := run(false), run(true)
					if hashed.Stats.DistinctStates != exact.Stats.DistinctStates {
						t.Errorf("%v bound %d: hashed %d states, exact %d states",
							mode, bound, hashed.Stats.DistinctStates, exact.Stats.DistinctStates)
					}
					if hashed.Errored() != exact.Errored() {
						t.Errorf("%v bound %d: verdicts differ", mode, bound)
					}
				}
			}
		})
	}
}

// The cross-scheduler equivalence of DESIGN.md: serial delay-bounded and
// parallel (1, 2, and 8 workers) discover identical distinct-state sets on
// Elevator and German for every delay budget 0..4. Run with -race in CI.
func TestCrossSchedulerEquivalence(t *testing.T) {
	maxBound := 4
	if testing.Short() {
		maxBound = 2
	}
	progs := map[string]string{
		"elevator": psamples.Elevator,
		"german":   psamples.German(2),
	}
	for name, src := range progs {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			prog, diags, err := compile.Source(name, src)
			if err != nil {
				t.Fatalf("compile: %v\n%s", err, diags.String())
			}
			for d := 0; d <= maxBound; d++ {
				serial, err := check.Explore(prog, check.Options{
					Mode: check.DelayBounded, Bound: d, MaxStates: 2_000_000,
				})
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{1, 2, 8} {
					t.Run(fmt.Sprintf("d=%d/workers=%d", d, workers), func(t *testing.T) {
						par, err := check.Explore(prog, check.Options{
							Mode: check.DelayBounded, Bound: d, MaxStates: 2_000_000, Workers: workers,
						})
						if err != nil {
							t.Fatal(err)
						}
						if par.Stats.DistinctStates != serial.Stats.DistinctStates {
							t.Errorf("states differ at d=%d: serial %d, workers=%d %d",
								d, serial.Stats.DistinctStates, workers, par.Stats.DistinctStates)
						}
						if par.Errored() != serial.Errored() {
							t.Errorf("verdicts differ at d=%d workers=%d", d, workers)
						}
					})
				}
			}
		})
	}
}

package check

import (
	"sort"

	"pgo/internal/core"
)

// Sleep sets (the depth explorer's POR refinement, por.go has the overview):
// after machine m's branches have been processed at a node, m "sleeps" in
// the subtrees of its later siblings — its transitions there are the very
// ones just explored, as long as every step on the path commutes with them.
// The conflict filter below wakes m the moment a step could change m's
// transitions or fail to commute with them.

// sleepEntry is one sleeping machine with the footprint of its branches at
// the node where it was expanded: the send targets over all branches and
// whether any branch creates a machine.
type sleepEntry struct {
	id      core.MachineID
	sentTo  []core.MachineID
	creates bool
}

// conflicts reports whether the step out (taken by actor) fails to commute
// with the sleeper's recorded steps: the step appends to the sleeper's
// inbox, the sleeper's steps append to the actor's (whose queue the step
// just changed — a ⊕ dedup decision could flip), both append to a common
// third inbox, or both create machines (NextID allocation order). A
// sleeper's target halting is covered by the t == actor case: a machine
// only halts by acting.
func (en *sleepEntry) conflicts(actor core.MachineID, out *core.Outcome) bool {
	if out.Kind == core.OutSend && out.SentTo == en.id {
		return true
	}
	if en.creates && out.Kind == core.OutNew {
		return true
	}
	for _, t := range en.sentTo {
		if t == actor {
			return true
		}
		if out.Kind == core.OutSend && t == out.SentTo {
			return true
		}
	}
	return false
}

// sleepFootprint summarizes a fully-processed machine's branches.
func sleepFootprint(id core.MachineID, succs []successor) sleepEntry {
	en := sleepEntry{id: id}
	for i := range succs {
		out := &succs[i].outcome
		switch out.Kind {
		case core.OutSend:
			found := false
			for _, t := range en.sentTo {
				if t == out.SentTo {
					found = true
					break
				}
			}
			if !found {
				en.sentTo = append(en.sentTo, out.SentTo)
			}
		case core.OutNew:
			en.creates = true
		}
	}
	return en
}

// childSleep filters base (the parent's sleepers plus earlier-processed
// siblings) against the step just taken, waking every conflicting sleeper.
func childSleep(base []sleepEntry, actor core.MachineID, out *core.Outcome) []sleepEntry {
	var kept []sleepEntry
	for i := range base {
		if !base[i].conflicts(actor, out) {
			kept = append(kept, base[i])
		}
	}
	return kept
}

func sleepingIn(sleep []sleepEntry, id core.MachineID) bool {
	for i := range sleep {
		if sleep[i].id == id {
			return true
		}
	}
	return false
}

// sleepIDs extracts the sorted sleeping ids. The visited map compares sleep
// sets by id only: a machine asleep at a given state key has the transition
// set that state determines, whatever path put it to sleep.
func sleepIDs(sleep []sleepEntry) []core.MachineID {
	if len(sleep) == 0 {
		return nil
	}
	ids := make([]core.MachineID, len(sleep))
	for i := range sleep {
		ids[i] = sleep[i].id
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// idsSubset reports a ⊆ b for sorted id slices.
func idsSubset(a, b []core.MachineID) bool {
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j >= len(b) || b[j] != x {
			return false
		}
		j++
	}
	return true
}

// depthBounded explores all machine interleavings up to Options.Bound macro
// steps with a depth-first search. A state reached at depth d is re-expanded
// only if rediscovered at a strictly smaller depth — or, with POR on, with
// strictly fewer machines asleep: an expansion with more sleepers explored
// fewer branches, so a sleep-incomparable revisit still has work to do. The
// records per (state, faults) key form an antichain under (depth ≤, sleep
// ⊆); sleep sets range over the finitely many live machines, so the
// antichain — and re-expansion per key — stays finite even unbounded.
func (e *explorer) depthBounded(g0 *core.Global) {
	// The visited dictionary (depthVisited, visited.go) qualifies the state
	// fingerprint with the chaos faults already used (always 0 with chaos
	// off): a revisit with fewer faults used still has fault branches left
	// to explore. Each (state, faults) key holds an antichain of
	// (depth, sleeping ids) records; claim covers + records in one step.

	fp0 := e.keyOf(g0)
	e.noteState(fp0)
	e.dvisited.claim(fp0, 0, 0, nil)
	if e.graph != nil {
		e.graph.Init = e.graph.Node(fp0, g0)
	}
	e.serialLoop([]node{{g: g0}})
}

package check

import (
	"sort"

	"pgo/internal/core"
)

// Sleep sets (the depth explorer's POR refinement, por.go has the overview):
// after machine m's branches have been processed at a node, m "sleeps" in
// the subtrees of its later siblings — its transitions there are the very
// ones just explored, as long as every step on the path commutes with them.
// The conflict filter below wakes m the moment a step could change m's
// transitions or fail to commute with them.

// sleepEntry is one sleeping machine with the footprint of its branches at
// the node where it was expanded: the send targets over all branches and
// whether any branch creates a machine.
type sleepEntry struct {
	id      core.MachineID
	sentTo  []core.MachineID
	creates bool
}

// conflicts reports whether the step out (taken by actor) fails to commute
// with the sleeper's recorded steps: the step appends to the sleeper's
// inbox, the sleeper's steps append to the actor's (whose queue the step
// just changed — a ⊕ dedup decision could flip), both append to a common
// third inbox, or both create machines (NextID allocation order). A
// sleeper's target halting is covered by the t == actor case: a machine
// only halts by acting.
func (en *sleepEntry) conflicts(actor core.MachineID, out *core.Outcome) bool {
	if out.Kind == core.OutSend && out.SentTo == en.id {
		return true
	}
	if en.creates && out.Kind == core.OutNew {
		return true
	}
	for _, t := range en.sentTo {
		if t == actor {
			return true
		}
		if out.Kind == core.OutSend && t == out.SentTo {
			return true
		}
	}
	return false
}

// sleepFootprint summarizes a fully-processed machine's branches.
func sleepFootprint(id core.MachineID, succs []successor) sleepEntry {
	en := sleepEntry{id: id}
	for i := range succs {
		out := &succs[i].outcome
		switch out.Kind {
		case core.OutSend:
			found := false
			for _, t := range en.sentTo {
				if t == out.SentTo {
					found = true
					break
				}
			}
			if !found {
				en.sentTo = append(en.sentTo, out.SentTo)
			}
		case core.OutNew:
			en.creates = true
		}
	}
	return en
}

// childSleep filters base (the parent's sleepers plus earlier-processed
// siblings) against the step just taken, waking every conflicting sleeper.
func childSleep(base []sleepEntry, actor core.MachineID, out *core.Outcome) []sleepEntry {
	var kept []sleepEntry
	for i := range base {
		if !base[i].conflicts(actor, out) {
			kept = append(kept, base[i])
		}
	}
	return kept
}

func sleepingIn(sleep []sleepEntry, id core.MachineID) bool {
	for i := range sleep {
		if sleep[i].id == id {
			return true
		}
	}
	return false
}

// sleepIDs extracts the sorted sleeping ids. The visited map compares sleep
// sets by id only: a machine asleep at a given state key has the transition
// set that state determines, whatever path put it to sleep.
func sleepIDs(sleep []sleepEntry) []core.MachineID {
	if len(sleep) == 0 {
		return nil
	}
	ids := make([]core.MachineID, len(sleep))
	for i := range sleep {
		ids[i] = sleep[i].id
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// idsSubset reports a ⊆ b for sorted id slices.
func idsSubset(a, b []core.MachineID) bool {
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j >= len(b) || b[j] != x {
			return false
		}
		j++
	}
	return true
}

// depthBounded explores all machine interleavings up to Options.Bound macro
// steps with a depth-first search. A state reached at depth d is re-expanded
// only if rediscovered at a strictly smaller depth — or, with POR on, with
// strictly fewer machines asleep: an expansion with more sleepers explored
// fewer branches, so a sleep-incomparable revisit still has work to do. The
// records per (state, faults) key form an antichain under (depth ≤, sleep
// ⊆); sleep sets range over the finitely many live machines, so the
// antichain — and re-expansion per key — stays finite even unbounded.
func (e *explorer) depthBounded(g0 *core.Global) {
	// The visited dictionary (depthVisited, visited.go) qualifies the state
	// fingerprint with the chaos faults already used (always 0 with chaos
	// off): a revisit with fewer faults used still has fault branches left
	// to explore. Each (state, faults) key holds an antichain of
	// (depth, sleeping ids) records; claim covers + records in one step.

	fp0 := e.keyOf(g0)
	e.noteState(fp0)
	e.dvisited.claim(fp0, 0, 0, nil)
	if e.graph != nil {
		e.graph.Init = e.graph.Node(fp0, g0)
	}
	e.depthLoop([]depnode{{g: g0, depth: 0}})
}

// depnode is one depth-bounded search node; checkpoints serialize the
// frontier as these (the sleep set travels with its footprints).
type depnode struct {
	g      *core.Global
	depth  int
	faults int
	trace  []TraceStep
	sleep  []sleepEntry
}

// depthLoop runs the depth-bounded search from a frontier (the initial node
// on fresh runs, the restored frontier on resume).
func (e *explorer) depthLoop(stack []depnode) {
	bound := e.opts.Bound

	for len(stack) > 0 && !e.stop {
		if e.ckpt != nil && e.ckptSerial(func() []ckptNode { return ckptDepNodes(stack) }) {
			return
		}
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		e.result.Stats.SearchNodes++
		if n.depth > e.result.Stats.MaxDepth {
			e.result.Stats.MaxDepth = n.depth
		}
		if bound > 0 && n.depth >= bound {
			continue
		}
		var fromNode NodeID
		if e.graph != nil {
			fromNode = e.graph.Node(e.keyOf(n.g), n.g)
		}

		// Candidates: enabled machines not asleep. Sleepers' transitions
		// were explored at the ancestor that put them to sleep.
		var cands []core.MachineID
		anyEnabled := false
		asleep := 0
		for _, id := range n.g.LiveIDs() {
			if !n.g.Enabled(id) {
				continue
			}
			anyEnabled = true
			if sleepingIn(n.sleep, id) {
				asleep++
				continue
			}
			cands = append(cands, id)
		}
		if !anyEnabled {
			e.result.Stats.Quiescent++
			continue
		}
		e.result.Stats.AmpleSkips += asleep

		nd := n.depth + 1
		// process runs the per-successor body for machine id's branches,
		// with base as the child sleep set before conflict filtering. It
		// reports whether any successor entered the frontier as new work.
		process := func(id core.MachineID, succs []successor, base []sleepEntry) bool {
			pushed := false
			for i := range succs {
				s := &succs[i]
				if e.stop {
					return pushed
				}
				e.noteState(s.fp)
				if e.graph != nil {
					to := e.graph.Node(s.fp, s.global)
					e.graph.AddEdge(fromNode, to, id, s.outcome.Dequeued)
				}
				cs := childSleep(base, id, &s.outcome)
				sids := sleepIDs(cs)
				if !e.dvisited.claim(s.fp, n.faults, nd, sids) {
					continue
				}
				step := TraceStep{
					Machine: id,
					Type:    e.prog.Machines[n.g.Lookup(id).Type].Name,
					Choices: s.choices,
					Outcome: s.outcome.Kind,
				}
				trace := make([]TraceStep, len(n.trace)+1)
				copy(trace, n.trace)
				trace[len(n.trace)] = step
				stack = append(stack, depnode{g: s.global, depth: nd, faults: n.faults, trace: trace, sleep: cs})
				pushed = true
			}
			return pushed
		}

		// POR: try the first few candidates as singleton ample seeds. A
		// candidate is expanded before the decision; rejected candidates'
		// branches are reused below, never re-executed.
		var cache [][]successor
		ampleIdx := -1
		if e.por != nil && len(cands) >= 2 {
			for i, id := range cands {
				if i >= porMaxSeeds || e.stop {
					break
				}
				succs := e.expand(n.g, id, n.trace, 0)
				cache = append(cache, succs)
				if e.por.ample(n.g, id, succs) {
					ampleIdx = i
					break
				}
			}
		}
		ampleDone := false
		if ampleIdx >= 0 {
			if process(cands[ampleIdx], cache[ampleIdx], n.sleep) {
				// POR is gated off under chaos, so a reduced node never has
				// fault branches to generate.
				e.result.Stats.ReducedStates++
				e.result.Stats.AmpleSkips += len(cands) - 1
				continue
			}
			// Cycle proviso: every ample successor was already covered, so
			// committing to the seed could postpone the rest of the system
			// forever around a cycle. Expand the node fully instead.
			ampleDone = true
		}

		// Full expansion. With POR on, each processed machine goes to sleep
		// in the subtrees of its later siblings.
		base := n.sleep
		for i, id := range cands {
			if e.stop {
				return
			}
			var succs []successor
			if i < len(cache) {
				succs = cache[i]
			} else {
				succs = e.expand(n.g, id, n.trace, 0)
			}
			if i != ampleIdx || !ampleDone {
				process(id, succs, base)
			}
			if e.por != nil {
				next := make([]sleepEntry, len(base), len(base)+1)
				copy(next, base)
				base = append(next, sleepFootprint(id, succs))
			}
		}
		if e.stop {
			return
		}

		// Chaos mode: fault successors after the ordinary ones. A fault step
		// counts one macro step of depth.
		if n.faults < e.opts.Faults {
			for _, fb := range e.faultBranches(n.g) {
				if e.stop {
					return
				}
				e.result.Stats.FaultSteps++
				e.noteState(fb.fp)
				if e.graph != nil {
					to := e.graph.Node(fb.fp, fb.global)
					e.graph.AddEdge(fromNode, to, fb.step.Machine, nil)
				}
				if !e.dvisited.claim(fb.fp, n.faults+1, nd, nil) {
					continue
				}
				trace := make([]TraceStep, len(n.trace)+1)
				copy(trace, n.trace)
				trace[len(n.trace)] = fb.step
				stack = append(stack, depnode{g: fb.global, depth: nd, faults: n.faults + 1, trace: trace})
			}
		}
	}
}

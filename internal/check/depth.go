package check

import (
	"pgo/internal/core"
)

// depthBounded explores all machine interleavings up to Options.Bound macro
// steps with a depth-first search. A state reached at depth d is re-expanded
// only if rediscovered at a strictly smaller depth, so every execution of
// length <= Bound is covered.
func (e *explorer) depthBounded(g0 *core.Global) {
	bound := e.opts.Bound
	type node struct {
		g      *core.Global
		depth  int
		faults int
		trace  []TraceStep
	}

	// dvKey qualifies the visited fingerprint with the chaos faults already
	// used (always 0 with chaos off): a revisit with fewer faults used still
	// has fault branches left to explore.
	type dvKey struct {
		state  StateKey
		faults int
	}
	visited := map[dvKey]int{} // (fingerprint, faults) -> smallest depth expanded
	fp0 := e.keyOf(g0)
	e.noteState(fp0)
	visited[dvKey{fp0, 0}] = 0
	var init NodeID
	if e.graph != nil {
		init = e.graph.Node(fp0, g0)
		e.graph.Init = init
	}

	stack := []node{{g: g0, depth: 0}}
	for len(stack) > 0 && !e.stop {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		e.result.Stats.SearchNodes++
		if n.depth > e.result.Stats.MaxDepth {
			e.result.Stats.MaxDepth = n.depth
		}
		if bound > 0 && n.depth >= bound {
			continue
		}
		var fromNode NodeID
		if e.graph != nil {
			fromNode = e.graph.Node(e.keyOf(n.g), n.g)
		}
		anyEnabled := false
		for _, id := range n.g.LiveIDs() {
			if !n.g.Enabled(id) {
				continue
			}
			anyEnabled = true
			for _, s := range e.expand(n.g, id, n.trace, 0) {
				if e.stop {
					return
				}
				e.noteState(s.fp)
				if e.graph != nil {
					to := e.graph.Node(s.fp, s.global)
					e.graph.AddEdge(fromNode, to, id, s.outcome.Dequeued)
				}
				nd := n.depth + 1
				if prev, ok := visited[dvKey{s.fp, n.faults}]; ok && prev <= nd {
					continue
				}
				visited[dvKey{s.fp, n.faults}] = nd
				step := TraceStep{
					Machine: id,
					Type:    e.prog.Machines[n.g.Lookup(id).Type].Name,
					Choices: s.choices,
					Outcome: s.outcome.Kind,
				}
				trace := make([]TraceStep, len(n.trace)+1)
				copy(trace, n.trace)
				trace[len(n.trace)] = step
				stack = append(stack, node{g: s.global, depth: nd, faults: n.faults, trace: trace})
			}
			if e.stop {
				return
			}
		}
		if !anyEnabled {
			e.result.Stats.Quiescent++
			continue
		}

		// Chaos mode: fault successors after the ordinary ones. A fault step
		// counts one macro step of depth.
		if n.faults < e.opts.Faults {
			for _, fb := range e.faultBranches(n.g) {
				if e.stop {
					return
				}
				e.result.Stats.FaultSteps++
				e.noteState(fb.fp)
				if e.graph != nil {
					to := e.graph.Node(fb.fp, fb.global)
					e.graph.AddEdge(fromNode, to, fb.step.Machine, nil)
				}
				nd := n.depth + 1
				key := dvKey{fb.fp, n.faults + 1}
				if prev, ok := visited[key]; ok && prev <= nd {
					continue
				}
				visited[key] = nd
				trace := make([]TraceStep, len(n.trace)+1)
				copy(trace, n.trace)
				trace[len(n.trace)] = fb.step
				stack = append(stack, node{g: fb.global, depth: nd, faults: n.faults + 1, trace: trace})
			}
		}
	}
}

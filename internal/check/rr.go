package check

import (
	"pgo/internal/core"
)

// The round-robin visited dictionary reuses minDelayMap with the cursor as
// the scheduler-context qualifier (cursorAux), further qualified by the
// chaos faults already used (always 0 with chaos off).

// roundRobinDelay is the scheduler ablation: the deterministic base
// scheduler cycles over machines in creation order (round-robin), and a
// delay skips the machine that would run next. This is the natural
// "obvious" delaying scheduler; comparing its bug-finding delay budgets and
// state counts against the causal-stack scheduler quantifies the value of
// following the causal order of events (§5).
func (e *explorer) roundRobinDelay(g0 *core.Global) {
	fp0 := e.keyOf(g0)
	e.noteState(fp0)
	if e.graph != nil {
		e.graph.Init = e.graph.Node(fp0, g0)
	}
	e.visited.claim(fp0, cursorAux(0, e.opts.ExactFingerprints), 0, 0)
	e.rrLoop([]rrnode{{g: g0}})
}

// rrnode is one round-robin search node; checkpoints serialize the frontier
// as these.
type rrnode struct {
	g      *core.Global
	cursor int // index into the live-id order where the base scheduler resumes
	delays int
	faults int
	depth  int
	trace  []TraceStep
}

// rrLoop runs the round-robin search from a frontier (the initial node on
// fresh runs, the restored frontier on resume).
func (e *explorer) rrLoop(stack []rrnode) {
	budget := e.opts.Bound
	exactFP := e.opts.ExactFingerprints

	for len(stack) > 0 && !e.stop {
		if e.ckpt != nil && e.ckptSerial(func() []ckptNode { return ckptRRNodes(stack) }) {
			return
		}
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		e.result.Stats.SearchNodes++
		if n.depth > e.result.Stats.MaxDepth {
			e.result.Stats.MaxDepth = n.depth
		}

		// Enabled machines in round-robin order starting at the cursor.
		ids := n.g.IDs()
		if len(ids) == 0 {
			e.result.Stats.Quiescent++
			continue
		}
		type option struct {
			cost   int
			id     core.MachineID
			resume int // cursor after this machine runs
		}
		var opts []option
		cost := 0
		for off := 0; off < len(ids); off++ {
			idx := (n.cursor + off) % len(ids)
			id := ids[idx]
			if !n.g.Enabled(id) {
				continue // skipping a disabled machine is free
			}
			if cost > budget-n.delays {
				break
			}
			opts = append(opts, option{cost: cost, id: id, resume: (idx + 1) % len(ids)})
			cost++ // delaying past an enabled machine costs one delay
		}
		if len(opts) == 0 {
			enabled := false
			for _, id := range ids {
				if n.g.Enabled(id) {
					enabled = true
					break
				}
			}
			if !enabled {
				e.result.Stats.Quiescent++
			}
			continue
		}

		var fromNode NodeID
		if e.graph != nil {
			fromNode = e.graph.Node(e.keyOf(n.g), n.g)
		}

		// process runs the per-successor body for one option, reporting
		// whether any successor entered the frontier as new work.
		process := func(opt option, succs []successor) bool {
			pushed := false
			for i := range succs {
				s := &succs[i]
				if e.stop {
					return pushed
				}
				e.noteState(s.fp)
				if e.graph != nil {
					to := e.graph.Node(s.fp, s.global)
					e.graph.AddEdge(fromNode, to, opt.id, s.outcome.Dequeued)
				}
				delays := n.delays + opt.cost
				// The round-robin cursor resumes after the scheduled
				// machine unless it is still runnable mid-burst (a send or
				// creation keeps it scheduled, matching run-to-completion).
				cursor := opt.resume
				if s.outcome.Kind == core.OutSend || s.outcome.Kind == core.OutNew || s.outcome.Kind == core.OutYield {
					cursor = indexOf(s.global.IDs(), opt.id)
				}
				if !e.visited.claim(s.fp, cursorAux(cursor, exactFP), n.faults, delays) {
					continue
				}
				step := TraceStep{
					Machine: opt.id,
					Type:    e.prog.Machines[n.g.Lookup(opt.id).Type].Name,
					Delays:  opt.cost,
					Choices: s.choices,
					Outcome: s.outcome.Kind,
				}
				trace := make([]TraceStep, len(n.trace)+1)
				copy(trace, n.trace)
				trace[len(n.trace)] = step
				stack = append(stack, rrnode{g: s.global, cursor: cursor, delays: delays, faults: n.faults, depth: n.depth + 1, trace: trace})
				pushed = true
			}
			return pushed
		}

		// POR: the base scheduler's own choice (the zero-delay cursor
		// machine) is the only ample-seed candidate, as in the delay-bounded
		// explorer.
		var cached []successor
		cachedFor, processed0 := false, false
		if e.por != nil && len(opts) >= 2 {
			cached = e.expand(n.g, opts[0].id, n.trace, opts[0].cost)
			cachedFor = true
			if !e.stop && e.por.ample(n.g, opts[0].id, cached) {
				if process(opts[0], cached) {
					e.result.Stats.ReducedStates++
					e.result.Stats.AmpleSkips += len(opts) - 1
					continue
				}
				// Cycle proviso: nothing new entered the frontier — expand
				// every option after all.
				processed0 = true
			}
		}
		for i, opt := range opts {
			if e.stop {
				return
			}
			var succs []successor
			switch {
			case i == 0 && cachedFor:
				if processed0 {
					continue
				}
				succs = cached
			default:
				succs = e.expand(n.g, opt.id, n.trace, opt.cost)
			}
			process(opt, succs)
		}
		if e.stop {
			return
		}

		// Chaos mode: fault successors after the ordinary ones. The cursor is
		// unchanged — a fault is the environment's move, not the scheduler's.
		if n.faults < e.opts.Faults {
			for _, fb := range e.faultBranches(n.g) {
				if e.stop {
					return
				}
				e.result.Stats.FaultSteps++
				e.noteState(fb.fp)
				if e.graph != nil {
					to := e.graph.Node(fb.fp, fb.global)
					e.graph.AddEdge(fromNode, to, fb.step.Machine, nil)
				}
				if !e.visited.claim(fb.fp, cursorAux(n.cursor, exactFP), n.faults+1, n.delays) {
					continue
				}
				trace := make([]TraceStep, len(n.trace)+1)
				copy(trace, n.trace)
				trace[len(n.trace)] = fb.step
				stack = append(stack, rrnode{g: fb.global, cursor: n.cursor, delays: n.delays, faults: n.faults + 1, depth: n.depth + 1, trace: trace})
			}
		}
	}
}

func indexOf(ids []core.MachineID, id core.MachineID) int {
	for i, x := range ids {
		if x == id {
			return i
		}
	}
	return 0
}

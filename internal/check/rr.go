package check

import (
	"pgo/internal/core"
)

// The round-robin visited dictionary reuses minDelayMap with the cursor as
// the scheduler-context qualifier (cursorAux), further qualified by the
// chaos faults already used (always 0 with chaos off).

// roundRobinDelay is the scheduler ablation: the deterministic base
// scheduler cycles over machines in creation order (round-robin), and a
// delay skips the machine that would run next. This is the natural
// "obvious" delaying scheduler; comparing its bug-finding delay budgets and
// state counts against the causal-stack scheduler quantifies the value of
// following the causal order of events (§5).
// The moves it feeds the shared core (engine.go) walk the live-id order
// from the node's cursor, skipping disabled machines for free; the cursor
// handoff per outcome lives in processSuccs.
func (e *explorer) roundRobinDelay(g0 *core.Global) {
	fp0 := e.keyOf(g0)
	e.noteState(fp0)
	if e.graph != nil {
		e.graph.Init = e.graph.Node(fp0, g0)
	}
	e.visited.claim(fp0, cursorAux(0, e.opts.ExactFingerprints), 0, 0)
	e.serialLoop([]node{{g: g0}})
}

func indexOf(ids []core.MachineID, id core.MachineID) int {
	for i, x := range ids {
		if x == id {
			return i
		}
	}
	return 0
}

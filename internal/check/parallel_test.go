package check_test

import (
	"testing"

	"pgo/internal/check"
	"pgo/internal/core"
)

// The parallel search must discover exactly the same distinct states as the
// serial search (the visited discipline is identical; only the expansion
// order differs).
func TestParallelMatchesSerial(t *testing.T) {
	for _, name := range []string{"pingpong", "elevator", "switchled"} {
		name := name
		t.Run(name, func(t *testing.T) {
			prog := compileSample(t, name)
			serial, err := check.Explore(prog, check.Options{
				Mode: check.DelayBounded, Bound: 2, MaxStates: 2_000_000,
			})
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := check.Explore(prog, check.Options{
				Mode: check.DelayBounded, Bound: 2, MaxStates: 2_000_000, Workers: 4,
			})
			if err != nil {
				t.Fatal(err)
			}
			if serial.Stats.DistinctStates != parallel.Stats.DistinctStates {
				t.Fatalf("states differ: serial %d, parallel %d",
					serial.Stats.DistinctStates, parallel.Stats.DistinctStates)
			}
			if serial.Errored() != parallel.Errored() {
				t.Fatalf("verdicts differ: serial %v, parallel %v",
					serial.Errored(), parallel.Errored())
			}
		})
	}
}

func TestParallelFindsBug(t *testing.T) {
	prog := compileSample(t, "elevator-buggy")
	res, err := check.Explore(prog, check.Options{
		Mode: check.DelayBounded, Bound: 2, Workers: -1, StopAtFirstError: true, MaxStates: 2_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Errored() {
		t.Fatal("parallel search missed the seeded bug")
	}
	if res.FirstViolation().Err.Kind != core.ErrUnhandled {
		t.Fatalf("wrong violation: %v", res.FirstViolation())
	}
	// The reported trace must replay (the schedule is self-contained even
	// though workers interleave).
	v := res.FirstViolation()
	g := core.NewGlobal(prog, nil)
	if _, err := g.CreateMain(); err != nil {
		t.Fatal(err)
	}
	for i, step := range v.Trace {
		out := g.RunToSchedPoint(step.Machine, &core.FixedChoices{Bits: step.Choices}, 0)
		if out.Kind == core.OutError {
			if i != len(v.Trace)-1 || out.Err.Kind != v.Err.Kind {
				t.Fatalf("replay diverged at step %d: %v", i+1, out.Err)
			}
			return
		}
	}
	t.Fatal("replay did not reproduce the violation")
}

func TestParallelWithGraph(t *testing.T) {
	prog := compileSample(t, "pingpong")
	res, err := check.Explore(prog, check.Options{
		Mode: check.DelayBounded, Bound: 2, Workers: 4, CollectGraph: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph == nil || res.Graph.Len() != res.Stats.DistinctStates {
		t.Fatalf("graph nodes %v vs states %d", res.Graph.Len(), res.Stats.DistinctStates)
	}
}

func TestParallelRespectsMaxStates(t *testing.T) {
	prog := compileSample(t, "switchled")
	res, err := check.Explore(prog, check.Options{
		Mode: check.DelayBounded, Bound: 3, Workers: 4, MaxStates: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Truncated {
		t.Fatal("cap not honored")
	}
	// Workers may overshoot slightly while draining, but not wildly.
	if res.Stats.DistinctStates > 1200 {
		t.Fatalf("overshoot: %d states against cap 1000", res.Stats.DistinctStates)
	}
}

// Progress must observe a strictly increasing distinct-state count even
// with many workers racing to report, and the MaxStates cap must trip on
// the exact insertion that reaches it (monotone add-and-count). Run under
// -race in CI.
func TestParallelProgressMonotone(t *testing.T) {
	prog := compileSample(t, "switchled")
	var got []int
	res, err := check.Explore(prog, check.Options{
		Mode: check.DelayBounded, Bound: 3, Workers: 8, MaxStates: 1500,
		ProgressEvery: -1, // unthrottled: stress the monotonicity guard
		Progress:      func(n int) { got = append(got, n) }, // serialized by the explorer
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("progress callback never invoked")
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("progress not monotone at %d: %d after %d", i, got[i], got[i-1])
		}
	}
	if !res.Stats.Truncated {
		t.Fatal("cap not honored")
	}
	if res.Stats.DistinctStates < 1500 {
		t.Fatalf("stopped before the cap: %d states", res.Stats.DistinctStates)
	}
}

func TestSimulateQuiescesOrErrors(t *testing.T) {
	good := compileSample(t, "pingpong")
	res, err := check.Simulate(good, check.SimOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Quiescent || res.Violation != nil {
		t.Fatalf("pingpong walk: %+v", res)
	}

	bad := compileSample(t, "german-buggy")
	found := false
	for seed := int64(0); seed < 50 && !found; seed++ {
		res, err := check.Simulate(bad, check.SimOptions{Seed: seed, MaxSteps: 5000})
		if err != nil {
			t.Fatal(err)
		}
		if res.Violation != nil {
			if res.Violation.Err.Kind != core.ErrAssert {
				t.Fatalf("unexpected violation kind: %v", res.Violation.Err)
			}
			found = true
		}
	}
	if !found {
		t.Log("random walks did not hit the seeded bug in 50 seeds (acceptable: simulation is best-effort)")
	}
}

// TestParallelPORChaosCheckpointRace drives the shared successor core
// through the parallel explorer with everything on at once — partial-order
// reduction, a chaos fault budget, and periodic checkpointing — the
// combination where the ample pre-claim check, the fault branches, and the
// checkpoint drain protocol all interleave. Run under -race in CI, it
// asserts the search never panics, that the ClaimRaces counter is wired
// (zero in the serial twin, merely recorded in the parallel one — races are
// scheduling-dependent), and that the verdict and distinct-state count
// match the serial explorer's.
func TestParallelPORChaosCheckpointRace(t *testing.T) {
	for _, name := range []string{"elevator-buggy", "boundedbuffer", "ring"} {
		name := name
		t.Run(name, func(t *testing.T) {
			prog := compileSample(t, name)
			base := check.Options{
				Mode: check.DelayBounded, Bound: 2, MaxStates: 2_000_000,
				POR: true, Faults: 1, FaultKinds: check.DropFaults,
			}
			serial, err := check.Explore(prog, base)
			if err != nil {
				t.Fatal(err)
			}
			if serial.Stats.ClaimRaces != 0 {
				t.Fatalf("serial search counted %d claim races, want 0", serial.Stats.ClaimRaces)
			}
			popts := base
			popts.Workers = 4
			popts.StoreDir = t.TempDir()
			popts.CheckpointEvery = 64
			par, err := check.Explore(prog, popts)
			if err != nil {
				t.Fatal(err)
			}
			if par.Stats.ClaimRaces < 0 {
				t.Fatalf("negative claim-race count: %d", par.Stats.ClaimRaces)
			}
			t.Logf("states=%d reduced=%d claimRaces=%d workers=%d",
				par.Stats.DistinctStates, par.Stats.ReducedStates, par.Stats.ClaimRaces, par.Stats.Workers)
			if par.Stats.Workers != 4 {
				t.Errorf("recorded %d workers, want 4", par.Stats.Workers)
			}
			if serial.Errored() != par.Errored() {
				t.Fatalf("verdicts differ: serial %v, parallel %v", serial.Errored(), par.Errored())
			}
			if serial.Stats.DistinctStates != par.Stats.DistinctStates {
				t.Fatalf("states differ: serial %d, parallel %d",
					serial.Stats.DistinctStates, par.Stats.DistinctStates)
			}
		})
	}
}

package check

import (
	"pgo/internal/core"
)

// The shared successor-generation core. All four explorers — depth-bounded,
// delay-bounded, round-robin-delay, and the parallel delay-bounded pool —
// expand a search node the same way: enumerate the strategy's scheduling
// moves, run the chosen machine under every `*` choice string, note/intern/
// claim/push each successor, try a singleton ample set first when POR is on,
// and branch over the environment's fault moves under a chaos budget. The
// strategies differ only in their frontier discipline (delay budget, depth
// bound, round-robin cursor, worker pool) and in the shape of their visited
// claims; expandNode owns everything else. The drivers in delay.go, rr.go,
// depth.go, and parallel.go supply the move enumeration inputs and an
// emitter for their bookkeeping.

// node is one search node, shared by every explorer. The per-strategy
// scheduler context (delay stack, round-robin cursor, sleep set) rides along
// and is ignored by the other modes; checkpoints serialize the frontier as
// these (ckptNode carries the same fields).
type node struct {
	g      *core.Global
	stack  schedStack   // delay-bounded: the delaying scheduler's stack
	cursor int          // round-robin: resume index into the live-id order
	sleep  []sleepEntry // depth-bounded POR: sleeping machines + footprints
	delays int
	faults int
	depth  int
	trace  []TraceStep
}

// move is one strategy-specific way to pick the next machine at a node.
type move struct {
	id     core.MachineID
	cost   int        // delays applied before the step (delay + rr modes)
	stack  schedStack // delay mode: the post-delay stack, id on top
	resume int        // rr mode: cursor position after id runs
}

// emitter abstracts the serial explorer's direct bookkeeping from the
// parallel explorer's atomics and locks, so expandNode is written once.
// The serial implementation is serialEmitter; the parallel one is
// *pexplorer itself.
type emitter interface {
	// stopped reports that the search is over (state cap, first error).
	stopped() bool
	// note registers a successor fingerprint in the distinct-state set,
	// reporting whether it was globally new (this call inserted it).
	note(fp StateKey) bool
	// violation records an error outcome; trace is freshly allocated.
	violation(err *core.Err, trace []TraceStep)
	countTransition()
	markTruncated()
	// searchNode counts a node taken from the work list and folds its depth
	// into MaxDepth.
	searchNode(depth int)
	quiescentNode()
	countFaultStep()
	// reduced counts a node expanded with a singleton ample set, with the
	// number of pruned moves.
	reduced(skips int)
	// sleepSkips counts enabled machines pruned by sleep sets (depth mode).
	sleepSkips(n int)
	// claimRace counts an ample claim lost to a concurrent worker;
	// tracksRaces gates the pre-check that feeds it (parallel only — the
	// serial explorers never pay for it and report ClaimRaces == 0 by
	// construction).
	claimRace()
	tracksRaces() bool
	graphNode(fp StateKey, g *core.Global) NodeID
	graphEdge(from NodeID, fp StateKey, g *core.Global, m core.MachineID, deq []core.QEntry)
	push(n node)
}

// serialEmitter adapts the single-threaded explorer state to the emitter
// interface. frontier points at the caller's LIFO stack variable.
type serialEmitter struct {
	e        *explorer
	frontier *[]node
}

func (s *serialEmitter) stopped() bool                                 { return s.e.stop }
func (s *serialEmitter) note(fp StateKey) bool                         { return s.e.noteState(fp) }
func (s *serialEmitter) violation(err *core.Err, trace []TraceStep)    { s.e.addViolation(err, trace) }
func (s *serialEmitter) countTransition()                              { s.e.result.Stats.Transitions++ }
func (s *serialEmitter) markTruncated()                                { s.e.result.Stats.Truncated = true }
func (s *serialEmitter) quiescentNode()                                { s.e.result.Stats.Quiescent++ }
func (s *serialEmitter) countFaultStep()                               { s.e.result.Stats.FaultSteps++ }
func (s *serialEmitter) sleepSkips(n int)                              { s.e.result.Stats.AmpleSkips += n }
func (s *serialEmitter) claimRace()                                    {}
func (s *serialEmitter) tracksRaces() bool                             { return false }
func (s *serialEmitter) graphNode(fp StateKey, g *core.Global) NodeID  { return s.e.graph.Node(fp, g) }
func (s *serialEmitter) push(n node)                                   { *s.frontier = append(*s.frontier, n) }

func (s *serialEmitter) searchNode(depth int) {
	s.e.result.Stats.SearchNodes++
	if depth > s.e.result.Stats.MaxDepth {
		s.e.result.Stats.MaxDepth = depth
	}
}

func (s *serialEmitter) reduced(skips int) {
	s.e.result.Stats.ReducedStates++
	s.e.result.Stats.AmpleSkips += skips
}

func (s *serialEmitter) graphEdge(from NodeID, fp StateKey, g *core.Global, m core.MachineID, deq []core.QEntry) {
	to := s.e.graph.Node(fp, g)
	s.e.graph.AddEdge(from, to, m, deq)
}

// serialLoop is the shared single-threaded driver: a LIFO frontier with the
// checkpoint hook at the top of every iteration. All three serial modes run
// through it; the parallel explorer replaces it with the worker pool in
// parallel.go.
func (e *explorer) serialLoop(stack []node) {
	em := &serialEmitter{e: e, frontier: &stack}
	for len(stack) > 0 && !e.stop {
		if e.ckpt != nil && e.ckptSerial(func() []ckptNode { return ckptNodes(stack) }) {
			return
		}
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		e.expandNode(em, &n)
	}
}

// procResult summarizes one processed batch of successors.
type procResult struct {
	pushed bool // at least one successor entered the frontier as new work
	fresh  int  // successors whose state fingerprint was globally new
	total  int  // successors processed before any stop
}

// expandNode is the shared per-node core: move enumeration, quiescence
// accounting, graph interning, POR ample selection with the cycle proviso,
// per-successor processing, and chaos fault branching.
func (e *explorer) expandNode(em emitter, n *node) {
	em.searchNode(n.depth)
	mode := e.opts.Mode

	// Strategy-specific move enumeration. An early return means the node has
	// no work at all (bound reached, or quiescent); a fall-through with no
	// moves still generates fault branches (depth mode: every enabled
	// machine can be asleep while the environment still has moves).
	var moves []move
	switch mode {
	case DepthBounded:
		if e.opts.Bound > 0 && n.depth >= e.opts.Bound {
			return
		}
		// Candidates: enabled machines not asleep. Sleepers' transitions
		// were explored at the ancestor that put them to sleep.
		anyEnabled := false
		asleep := 0
		for _, id := range n.g.LiveIDs() {
			if !n.g.Enabled(id) {
				continue
			}
			anyEnabled = true
			if sleepingIn(n.sleep, id) {
				asleep++
				continue
			}
			moves = append(moves, move{id: id})
		}
		if !anyEnabled {
			em.quiescentNode()
			return
		}
		em.sleepSkips(asleep)
	case DelayBounded:
		sched := n.stack.popDisabled(n.g)
		if len(sched) == 0 {
			// Defensive: the invariant is that every enabled machine is on
			// the stack; re-seed if an enabled machine exists anyway.
			var enabled []core.MachineID
			for _, id := range n.g.LiveIDs() {
				if n.g.Enabled(id) {
					enabled = append(enabled, id)
				}
			}
			if len(enabled) == 0 {
				em.quiescentNode()
				return
			}
			sched = schedStack{enabled[0]}
		}
		for _, opt := range scheduleOptions(n.g, sched, e.opts.Bound-n.delays) {
			moves = append(moves, move{id: opt.stack.top(), cost: opt.cost, stack: opt.stack})
		}
	case RoundRobinDelay:
		ids := n.g.IDs()
		if len(ids) == 0 {
			em.quiescentNode()
			return
		}
		cost := 0
		for off := 0; off < len(ids); off++ {
			idx := (n.cursor + off) % len(ids)
			id := ids[idx]
			if !n.g.Enabled(id) {
				continue // skipping a disabled machine is free
			}
			if cost > e.opts.Bound-n.delays {
				break
			}
			moves = append(moves, move{id: id, cost: cost, resume: (idx + 1) % len(ids)})
			cost++ // delaying past an enabled machine costs one delay
		}
		if len(moves) == 0 {
			enabled := false
			for _, id := range ids {
				if n.g.Enabled(id) {
					enabled = true
					break
				}
			}
			if !enabled {
				em.quiescentNode()
			}
			return
		}
	}

	var fromNode NodeID
	if e.graph != nil {
		// keyOf hits n.g's fingerprint cache (computed when n.g was a
		// successor), so graph interning costs one map lookup.
		fromNode = em.graphNode(e.keyOf(n.g), n.g)
	}

	// pending is the fault kinds the environment can still inject at this
	// node (zero when the budget is spent or chaos is off). It tightens the
	// ample conditions — fault moves must commute with a reduced node's
	// postponed actions too — and drives the fault branching below.
	var pending FaultSet
	if n.faults < e.opts.Faults {
		pending = e.opts.faultKinds()
	}

	// POR: try singleton ample seeds. Delay-based modes try only the
	// scheduler's own zero-cost choice (committing to it prunes every delay
	// branch); the depth mode tries the first porMaxSeeds candidates. A
	// candidate is expanded before the decision; rejected candidates'
	// branches are reused by the full expansion, never re-executed.
	var cache [][]successor
	ampleIdx := -1
	if e.por != nil && len(moves) >= 2 {
		maxSeeds := 1
		if mode == DepthBounded {
			maxSeeds = porMaxSeeds
		}
		for i := range moves {
			if i >= maxSeeds || em.stopped() {
				break
			}
			succs := e.expand(em, n.g, moves[i].id, n.trace, moves[i].cost)
			cache = append(cache, succs)
			if !em.stopped() && e.por.ample(n.g, moves[i].id, succs, pending) {
				ampleIdx = i
				break
			}
		}
	}
	ampleDone := false   // ample seed's successors already processed
	xFaultsDone := false // ample machine's fault branches already processed
	if ampleIdx >= 0 {
		mv := &moves[ampleIdx]
		// The parallel cycle proviso is per-worker and racy — a claim lost
		// to a concurrent worker can force a full expansion a serial search
		// would have reduced — which costs reduction, never soundness: a
		// lost claim means the successor was (or is being) expanded
		// elsewhere. Stats.ClaimRaces counts exactly those losses: a
		// successor whose visited key was still claimable just before
		// processing but whose claim failed anyway was stolen mid-node,
		// whereas a key already covered at the pre-check is the genuine
		// cycle proviso (the outcome a serial search would also reach). With
		// one worker nothing can intervene between the pre-check and the
		// claim, so ClaimRaces stays 0 and the serial stats equivalence
		// holds.
		var claimable []bool
		if em.tracksRaces() {
			claimable = e.preclaimable(n, mv, cache[ampleIdx])
		}
		r := e.processSuccs(em, n, fromNode, mv, cache[ampleIdx], n.sleep)
		// Cycle proviso ("ignoring problem"). Safety-only runs use the
		// visited-set variant: reduce iff an ample successor entered the
		// frontier as new work. Graph-collecting runs (liveness, coverage)
		// use the strict C3 variant: reduce only if every ample successor —
		// fault branches included — is a globally new state, so no cycle of
		// the collected graph consists solely of reduced nodes (DESIGN.md
		// has the discovery-order argument).
		strict := e.graph != nil
		accept := r.pushed
		if strict {
			accept = r.pushed && r.fresh == r.total
		}
		if accept && pending != 0 {
			// Environment-machine chaos at a reduced node: only the ample
			// machine's own fault branches are emitted — the coalition's
			// faults commute with x (the ample conditions checked) and
			// regenerate at descendants with the budget intact.
			fr := e.processFaults(em, n, fromNode, e.machineFaultBranches(n.g, mv.id))
			xFaultsDone = true
			if strict && fr.fresh != fr.total {
				accept = false
			}
		}
		if accept {
			em.reduced(len(moves) - 1)
			return
		}
		if !r.pushed && claimable != nil && !em.stopped() {
			for _, c := range claimable {
				if c {
					em.claimRace()
				}
			}
		}
		ampleDone = true
	}

	// Full expansion. With POR on in depth mode, each processed machine goes
	// to sleep in the subtrees of its later siblings.
	base := n.sleep
	for i := range moves {
		if em.stopped() {
			return
		}
		mv := &moves[i]
		var succs []successor
		if i < len(cache) {
			succs = cache[i]
		} else {
			succs = e.expand(em, n.g, mv.id, n.trace, mv.cost)
		}
		if i != ampleIdx || !ampleDone {
			e.processSuccs(em, n, fromNode, mv, succs, base)
		}
		if mode == DepthBounded && e.por != nil {
			next := make([]sleepEntry, len(base), len(base)+1)
			copy(next, base)
			base = append(next, sleepFootprint(mv.id, succs))
		}
	}
	if em.stopped() {
		return
	}

	// Chaos mode: the environment's fault moves, after the scheduler's, in
	// the deterministic faultBranches order. If the ample path above already
	// emitted the seed machine's branches (a strict-proviso rejection after
	// the fault check), they are skipped here rather than double-counted.
	if pending != 0 {
		var branches []faultBranch
		if mode == DepthBounded && e.por != nil && len(n.sleep) > 0 {
			// Sleep sets prune fault branches too: a sleeping machine's
			// faults were emitted at the node where it fell asleep, and the
			// machine steps since cannot have changed its queue or liveness —
			// a send to it would have woken it, a fault child resets the
			// sleep set, and it only acts (or halts) when scheduled. Its
			// crash/drop/dup branches here are the path-transported copies of
			// branches already explored.
			kinds := e.opts.faultKinds()
			for _, id := range n.g.LiveIDs() {
				if sleepingIn(n.sleep, id) {
					continue
				}
				branches = e.appendFaultBranches(branches, n.g, id, kinds)
			}
		} else {
			branches = e.faultBranches(n.g)
		}
		if xFaultsDone {
			kept := branches[:0]
			for _, fb := range branches {
				if fb.step.Machine != moves[ampleIdx].id {
					kept = append(kept, fb)
				}
			}
			branches = kept
		}
		e.processFaults(em, n, fromNode, branches)
	}
}

// processSuccs runs the per-successor body for one move: note the state,
// intern the graph edge, claim the mode's visited key, and push new work.
func (e *explorer) processSuccs(em emitter, n *node, fromNode NodeID, mv *move, succs []successor, base []sleepEntry) procResult {
	exactFP := e.opts.ExactFingerprints
	mode := e.opts.Mode
	var r procResult
	for i := range succs {
		s := &succs[i]
		if em.stopped() {
			return r
		}
		r.total++
		if em.note(s.fp) {
			r.fresh++
		}
		if e.graph != nil {
			em.graphEdge(fromNode, s.fp, s.global, mv.id, s.outcome.Dequeued)
		}
		child := node{g: s.global, faults: n.faults, depth: n.depth + 1}
		claimed := false
		switch mode {
		case DelayBounded:
			child.stack = updateStack(mv.stack, mv.id, s.outcome)
			child.delays = n.delays + mv.cost
			claimed = e.visited.claim(s.fp, child.stack.digest(exactFP), n.faults, child.delays)
		case RoundRobinDelay:
			// The round-robin cursor resumes after the scheduled machine
			// unless it is still runnable mid-burst (a send or creation
			// keeps it scheduled, matching run-to-completion).
			cursor := mv.resume
			if s.outcome.Kind == core.OutSend || s.outcome.Kind == core.OutNew || s.outcome.Kind == core.OutYield {
				cursor = indexOf(s.global.IDs(), mv.id)
			}
			child.cursor = cursor
			child.delays = n.delays + mv.cost
			claimed = e.visited.claim(s.fp, cursorAux(cursor, exactFP), n.faults, child.delays)
		case DepthBounded:
			child.sleep = childSleep(base, mv.id, &s.outcome)
			claimed = e.dvisited.claim(s.fp, n.faults, child.depth, sleepIDs(child.sleep))
		}
		if !claimed {
			continue
		}
		step := TraceStep{
			Machine: mv.id,
			Type:    e.prog.Machines[n.g.Lookup(mv.id).Type].Name,
			Delays:  mv.cost,
			Choices: s.choices,
			Outcome: s.outcome.Kind,
		}
		if s.outcome.Kind == core.OutSend {
			step.Event = s.outcome.SentEvent
			step.HasEv = true
		}
		child.trace = appendStep(n.trace, step)
		em.push(child)
		r.pushed = true
	}
	return r
}

// processFaults runs the per-successor body for a batch of fault branches.
// Fault steps keep the scheduler context (a crashed machine is popped lazily
// by popDisabled; the round-robin cursor is unchanged — a fault is the
// environment's move, not the scheduler's), consume one unit of fault budget,
// and reset the sleep set (a fault is never asleep, and the sleepers'
// footprints don't cover environment moves).
func (e *explorer) processFaults(em emitter, n *node, fromNode NodeID, branches []faultBranch) procResult {
	exactFP := e.opts.ExactFingerprints
	mode := e.opts.Mode
	var aux stackKey
	switch mode {
	case DelayBounded:
		aux = n.stack.digest(exactFP)
	case RoundRobinDelay:
		aux = cursorAux(n.cursor, exactFP)
	}
	var r procResult
	for i := range branches {
		fb := &branches[i]
		if em.stopped() {
			return r
		}
		em.countFaultStep()
		r.total++
		if em.note(fb.fp) {
			r.fresh++
		}
		if e.graph != nil {
			em.graphEdge(fromNode, fb.fp, fb.global, fb.step.Machine, nil)
		}
		claimed := false
		if mode == DepthBounded {
			claimed = e.dvisited.claim(fb.fp, n.faults+1, n.depth+1, nil)
		} else {
			claimed = e.visited.claim(fb.fp, aux, n.faults+1, n.delays)
		}
		if !claimed {
			continue
		}
		em.push(node{
			g:      fb.global,
			stack:  n.stack,
			cursor: n.cursor,
			delays: n.delays,
			faults: n.faults + 1,
			depth:  n.depth + 1,
			trace:  appendStep(n.trace, fb.step),
		})
		r.pushed = true
	}
	return r
}

// preclaimable records, per ample successor, whether its visited key is
// still claimable just before processing — the parallel ClaimRaces
// pre-check (see the comment at the ample site in expandNode). Only the
// delay-bounded mode runs in parallel.
func (e *explorer) preclaimable(n *node, mv *move, succs []successor) []bool {
	if e.opts.Mode != DelayBounded {
		return nil
	}
	exactFP := e.opts.ExactFingerprints
	delays := n.delays + mv.cost
	out := make([]bool, len(succs))
	for i := range succs {
		s := &succs[i]
		aux := updateStack(mv.stack, mv.id, s.outcome).digest(exactFP)
		prev, ok := e.visited.get(s.fp, aux, n.faults)
		out[i] = !ok || prev > delays
	}
	return out
}

// expand runs machine id from g under every `*` choice string and returns
// the successors. Errors are recorded as violations immediately (with a
// freshly-allocated trace + the failing step).
func (e *explorer) expand(em emitter, g *core.Global, id core.MachineID, trace []TraceStep, delays int) []successor {
	var succs []successor
	cs := &core.FixedChoices{}
	for tries := 0; ; tries++ {
		if tries >= maxChoiceStrings {
			em.markTruncated()
			return succs
		}
		// Stop executing transitions once the search is over (state cap or
		// first error), so Stats.Transitions means the same thing in the
		// serial and parallel explorers.
		if em.stopped() {
			return succs
		}
		clone := g.Clone()
		cs.Reset()
		out := clone.RunToSchedPoint(id, cs, e.opts.MaxLocalSteps)
		em.countTransition()
		bits := append([]bool(nil), cs.Bits...)
		if out.Kind == core.OutError {
			step := TraceStep{
				Machine: id,
				Type:    e.prog.Machines[g.Lookup(id).Type].Name,
				Delays:  delays,
				Choices: bits,
				Outcome: out.Kind,
			}
			em.violation(out.Err, appendStep(trace, step))
			if em.stopped() {
				return succs
			}
		} else {
			succs = append(succs, successor{
				global:  clone,
				outcome: out,
				choices: bits,
				fp:      e.keyOf(clone),
			})
		}
		if !cs.NextString() {
			return succs
		}
	}
}

// appendStep returns a fresh trace extending trace with step; frontier
// traces share no backing arrays.
func appendStep(trace []TraceStep, step TraceStep) []TraceStep {
	out := make([]TraceStep, len(trace)+1)
	copy(out, trace)
	out[len(trace)] = step
	return out
}

package check

import (
	"pgo/internal/core"
	"pgo/internal/ir"
)

// NodeID indexes Graph.Nodes.
type NodeID int

// MachineSnap is the per-machine information the liveness checker needs at
// a state-graph node.
type MachineSnap struct {
	ID      core.MachineID
	Type    ir.MachineTypeID
	Ghost   bool
	Enabled bool
	// CurState is the machine's current control state (-1 if halted).
	CurState ir.StateID
	// Queue is the machine's pending input events.
	Queue []core.QEntry
	// Postponed is the postponed set of the machine's current state (§3.2).
	Postponed ir.EventSet
}

// NodeInfo is a state-graph node: a global configuration summary.
type NodeInfo struct {
	Machines []MachineSnap
}

// Edge is a labeled transition of the state graph: machine Machine ran one
// macro step, dequeuing Dequeued from its own queue along the way.
type Edge struct {
	To       NodeID
	Machine  core.MachineID
	Dequeued []core.QEntry
}

// Graph is the explored state graph, used by the liveness checker
// (internal/live).
type Graph struct {
	ids   map[StateKey]NodeID
	Nodes []NodeInfo
	Edges [][]Edge
	Init  NodeID
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{ids: map[StateKey]NodeID{}}
}

// Len returns the number of nodes.
func (gr *Graph) Len() int { return len(gr.Nodes) }

// Node interns the global configuration with fingerprint fp, snapshotting g
// on first sight, and returns its id. Keys follow the exploring run's
// fingerprint scheme (hashed by default, exact canonical strings under
// Options.ExactFingerprints).
func (gr *Graph) Node(fp StateKey, g *core.Global) NodeID {
	if id, ok := gr.ids[fp]; ok {
		return id
	}
	id := NodeID(len(gr.Nodes))
	gr.ids[fp] = id
	gr.Nodes = append(gr.Nodes, snapshot(g))
	gr.Edges = append(gr.Edges, nil)
	return id
}

// AddEdge records a macro step between interned nodes. Parallel edges with
// identical labels are deduplicated.
func (gr *Graph) AddEdge(from, to NodeID, machine core.MachineID, dequeued []core.QEntry) {
	for _, e := range gr.Edges[from] {
		if e.To == to && e.Machine == machine && qEqual(e.Dequeued, dequeued) {
			return
		}
	}
	gr.Edges[from] = append(gr.Edges[from], Edge{To: to, Machine: machine, Dequeued: append([]core.QEntry(nil), dequeued...)})
}

func qEqual(a, b []core.QEntry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func snapshot(g *core.Global) NodeInfo {
	var info NodeInfo
	for _, id := range g.IDs() {
		c := g.Lookup(id)
		if c == nil {
			continue
		}
		mt := g.Prog.Machines[c.Type]
		snap := MachineSnap{
			ID:      id,
			Type:    c.Type,
			Ghost:   mt.Ghost,
			Enabled: g.Enabled(id),
			Queue:   append([]core.QEntry(nil), c.Queue...),
		}
		snap.CurState = c.CurrentState()
		if snap.CurState >= 0 {
			snap.Postponed = mt.States[snap.CurState].Postponed
		}
		info.Machines = append(info.Machines, snap)
	}
	return info
}

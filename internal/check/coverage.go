package check

import (
	"pgo/internal/ir"
)

// Coverage reports, per machine type, which control states were occupied by
// some instance somewhere in the explored graph. A state the exploration
// never reaches is either dead design or a sign the bound (or the ghost
// environment) is too weak to drive the machine there — the paper's USB
// effort used "fine-grained and explicit states for each step", and this
// report shows which of them verification actually visited.
//
// Snapshots are taken at scheduling points, so a transient state whose
// entry statement always raises (a pure dispatch state like the elevator's
// ReturnState) is never observed even though control passes through it;
// such states showing up as unvisited is expected.
type Coverage struct {
	// Visited[t][s] is true if some instance of machine type t was observed
	// in state s.
	Visited map[ir.MachineTypeID][]bool
	// Instantiated[t] is true if an instance of t ever existed.
	Instantiated map[ir.MachineTypeID]bool
}

// CoverageOf scans the graph's snapshots.
func CoverageOf(prog *ir.Program, g *Graph) *Coverage {
	cov := &Coverage{
		Visited:      map[ir.MachineTypeID][]bool{},
		Instantiated: map[ir.MachineTypeID]bool{},
	}
	for _, m := range prog.Machines {
		cov.Visited[m.ID] = make([]bool, len(m.States))
	}
	for _, node := range g.Nodes {
		for _, snap := range node.Machines {
			cov.Instantiated[snap.Type] = true
			if snap.CurState >= 0 && int(snap.CurState) < len(cov.Visited[snap.Type]) {
				cov.Visited[snap.Type][snap.CurState] = true
			}
		}
	}
	return cov
}

// Unvisited returns the states of machine type t never observed (nil when
// the type was never instantiated — everything would be trivially
// unvisited).
func (c *Coverage) Unvisited(prog *ir.Program, t ir.MachineTypeID) []ir.StateID {
	if !c.Instantiated[t] {
		return nil
	}
	var out []ir.StateID
	for s, seen := range c.Visited[t] {
		if !seen {
			out = append(out, ir.StateID(s))
		}
	}
	return out
}

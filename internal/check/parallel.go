package check

import (
	"hash/maphash"
	"runtime"
	"sync"
	"sync/atomic"

	"pgo/internal/core"
)

// The parallel delay-bounded explorer. The paper notes the USB verification
// runs "used multicores to scale the state exploration"; this is the same
// idea. Node expansion (clone + macro-step + fingerprint) runs without any
// lock; the distinct-state set and the (state, scheduler-stack) visited map
// are sharded dictionaries so dedup scales; the work queue is a single
// locked LIFO (its critical section is tiny); statistics are atomics merged
// into Result at the end.
//
// The set of distinct states discovered is identical to the serial search;
// violation order may differ between runs.

const pshards = 64

var pseed = maphash.MakeSeed()

// shard maps a state key to its dictionary shard. Hashed keys are already
// uniformly distributed; exact keys are hashed here.
func (k StateKey) shard() int {
	if k.exact != "" {
		return int(maphash.String(pseed, k.exact) % pshards)
	}
	return int(k.hash.Lo % pshards)
}

// shardedStates is the distinct-fingerprint set.
type shardedStates struct {
	shards [pshards]struct {
		mu sync.Mutex
		m  map[StateKey]struct{}
	}
	count atomic.Int64
}

func newShardedStates() *shardedStates {
	s := &shardedStates{}
	for i := range s.shards {
		s.shards[i].m = map[StateKey]struct{}{}
	}
	return s
}

// add inserts fp, reporting whether it was new and — when new — the
// running distinct-state count just after the insertion. Counts handed to
// concurrent adders are unique, so each new state observes a distinct
// value and the MaxStates cap triggers on exactly one insertion.
func (s *shardedStates) add(fp StateKey) (isNew bool, count int) {
	sh := &s.shards[fp.shard()]
	sh.mu.Lock()
	_, ok := sh.m[fp]
	if !ok {
		sh.m[fp] = struct{}{}
	}
	sh.mu.Unlock()
	if ok {
		return false, 0
	}
	return true, int(s.count.Add(1))
}

// shardedVisited is the (fingerprint, stack) -> min-delays map.
type shardedVisited struct {
	shards [pshards]struct {
		mu sync.Mutex
		m  map[visitedKey]int
	}
}

func newShardedVisited() *shardedVisited {
	v := &shardedVisited{}
	for i := range v.shards {
		v.shards[i].m = map[visitedKey]int{}
	}
	return v
}

// claim records delays for key unless an entry with <= delays exists; it
// reports whether the caller should expand the node.
func (v *shardedVisited) claim(key visitedKey, delays int) bool {
	sh := &v.shards[key.state.shard()]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if prev, ok := sh.m[key]; ok && prev <= delays {
		return false
	}
	sh.m[key] = delays
	return true
}

type pnode struct {
	g      *core.Global
	stack  schedStack
	delays int
	faults int
	depth  int
	trace  []TraceStep
}

type pexplorer struct {
	e      *explorer
	budget int

	states  *shardedStates
	visited *shardedVisited

	transitions   atomic.Int64
	searchNodes   atomic.Int64
	faultSteps    atomic.Int64
	reducedStates atomic.Int64
	ampleSkips    atomic.Int64
	maxDepth      atomic.Int64
	quiescent     atomic.Int64
	truncated     atomic.Bool
	stopped       atomic.Bool

	vmu sync.Mutex // guards violations + graph + lastProgress

	// lastProgress is the highest count delivered to opts.Progress, so the
	// callback observes a strictly increasing sequence even when workers
	// race to report.
	lastProgress int

	qmu         sync.Mutex
	qcond       *sync.Cond
	work        []pnode
	outstanding int
}

// parallelDelayBounded explores like delayBounded with workers goroutines.
func (e *explorer) parallelDelayBounded(g0 *core.Global, workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &pexplorer{
		e:       e,
		budget:  e.opts.Bound,
		states:  newShardedStates(),
		visited: newShardedVisited(),
	}
	p.qcond = sync.NewCond(&p.qmu)

	fp0 := e.keyOf(g0)
	p.noteState(fp0)
	if e.graph != nil {
		e.graph.Init = e.graph.Node(fp0, g0)
	}
	// Same no-live-machine guard as the serial explorer: an empty scheduler
	// stack makes expandNode report the initial node quiescent.
	var initStack schedStack
	if live := g0.LiveIDs(); len(live) > 0 {
		initStack = schedStack{live[0]}
	}
	p.visited.claim(visitedKey{fp0, initStack.digest(e.opts.ExactFingerprints), 0}, 0)

	p.work = append(p.work, pnode{g: g0, stack: initStack})
	p.outstanding = 1

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.worker()
		}()
	}
	wg.Wait()

	// Merge the atomics into the explorer's result.
	e.result.Stats.DistinctStates = int(p.states.count.Load())
	e.result.Stats.Transitions += int(p.transitions.Load())
	e.result.Stats.SearchNodes += int(p.searchNodes.Load())
	e.result.Stats.FaultSteps += int(p.faultSteps.Load())
	e.result.Stats.ReducedStates += int(p.reducedStates.Load())
	e.result.Stats.AmpleSkips += int(p.ampleSkips.Load())
	e.result.Stats.Quiescent += int(p.quiescent.Load())
	if d := int(p.maxDepth.Load()); d > e.result.Stats.MaxDepth {
		e.result.Stats.MaxDepth = d
	}
	if p.truncated.Load() {
		e.result.Stats.Truncated = true
	}
}

// noteState registers a fingerprint, handling the MaxStates cap and the
// progress callback. The count returned by the combined add-and-count is
// this insertion's own position in the discovery order, so the cap check is
// monotone — the worker that inserts the MaxStates-th state (and only that
// worker) trips the cap, rather than every worker re-reading a count other
// workers are still advancing. Progress likewise only ever sees a higher
// count than the previous call.
func (p *pexplorer) noteState(fp StateKey) {
	isNew, n := p.states.add(fp)
	if !isNew {
		return
	}
	if p.e.opts.Progress != nil {
		p.vmu.Lock()
		if n > p.lastProgress {
			p.lastProgress = n
			p.e.opts.Progress(n)
		}
		p.vmu.Unlock()
	}
	if p.e.opts.MaxStates > 0 && n >= p.e.opts.MaxStates {
		p.truncated.Store(true)
		p.stop()
	}
}

func (p *pexplorer) stop() {
	if p.stopped.Swap(true) {
		return
	}
	p.qmu.Lock()
	p.qcond.Broadcast()
	p.qmu.Unlock()
}

// take pops a node, blocking until work exists or the search is complete.
func (p *pexplorer) take() (pnode, bool) {
	p.qmu.Lock()
	defer p.qmu.Unlock()
	for {
		if p.stopped.Load() || (len(p.work) == 0 && p.outstanding == 0) {
			p.qcond.Broadcast()
			return pnode{}, false
		}
		if len(p.work) > 0 {
			n := p.work[len(p.work)-1]
			p.work = p.work[:len(p.work)-1]
			return n, true
		}
		p.qcond.Wait()
	}
}

// finish marks one taken node fully expanded.
func (p *pexplorer) finish() {
	p.qmu.Lock()
	p.outstanding--
	if p.outstanding == 0 && len(p.work) == 0 {
		p.qcond.Broadcast()
	}
	p.qmu.Unlock()
}

// push enqueues a successor node.
func (p *pexplorer) push(n pnode) {
	p.qmu.Lock()
	p.work = append(p.work, n)
	p.outstanding++
	p.qcond.Signal()
	p.qmu.Unlock()
}

func (p *pexplorer) worker() {
	for {
		n, ok := p.take()
		if !ok {
			return
		}
		p.expandNode(n)
		p.finish()
	}
}

func (p *pexplorer) addViolation(err *core.Err, trace []TraceStep) {
	p.vmu.Lock()
	p.e.result.Violations = append(p.e.result.Violations, Violation{Err: err, Trace: trace})
	p.vmu.Unlock()
	if p.e.opts.StopAtFirstError {
		p.stop()
	}
}

// expandNode performs the per-node work of delayBounded without any global
// lock: schedule options, choice-string expansion, sharded dedup.
func (p *pexplorer) expandNode(n pnode) {
	e := p.e
	p.searchNodes.Add(1)
	for {
		d := p.maxDepth.Load()
		if int64(n.depth) <= d || p.maxDepth.CompareAndSwap(d, int64(n.depth)) {
			break
		}
	}

	sched := n.stack.popDisabled(n.g)
	if len(sched) == 0 {
		var enabled []core.MachineID
		for _, id := range n.g.LiveIDs() {
			if n.g.Enabled(id) {
				enabled = append(enabled, id)
			}
		}
		if len(enabled) == 0 {
			p.quiescent.Add(1)
			return
		}
		sched = schedStack{enabled[0]}
	}

	var fromNode NodeID
	if e.graph != nil {
		// keyOf is computed outside vmu (it touches only n.g, owned by this
		// worker); the graph itself is interned under the lock.
		key := e.keyOf(n.g)
		p.vmu.Lock()
		fromNode = e.graph.Node(key, n.g)
		p.vmu.Unlock()
	}

	// expandSuccs runs machine id under every `*` choice string (the
	// lock-free mirror of explorer.expand): transitions counted, error
	// branches recorded as violations, non-error successors returned.
	expandSuccs := func(id core.MachineID, cost int) []successor {
		var succs []successor
		cs := &core.FixedChoices{}
		for tries := 0; ; tries++ {
			if tries >= maxChoiceStrings {
				p.truncated.Store(true)
				return succs
			}
			if p.stopped.Load() {
				return succs
			}
			clone := n.g.Clone()
			cs.Reset()
			out := clone.RunToSchedPoint(id, cs, e.opts.MaxLocalSteps)
			p.transitions.Add(1)
			bits := append([]bool(nil), cs.Bits...)
			if out.Kind == core.OutError {
				step := TraceStep{
					Machine: id,
					Type:    e.prog.Machines[n.g.Lookup(id).Type].Name,
					Delays:  cost,
					Choices: bits,
					Outcome: out.Kind,
				}
				p.addViolation(out.Err, append(append([]TraceStep(nil), n.trace...), step))
				if p.stopped.Load() {
					return succs
				}
			} else {
				succs = append(succs, successor{global: clone, outcome: out, choices: bits, fp: e.keyOf(clone)})
			}
			if !cs.NextString() {
				return succs
			}
		}
	}
	// process runs the per-successor body for one schedule option,
	// reporting whether any successor entered the frontier as new work.
	process := func(opt scheduleOption, succs []successor) bool {
		id := opt.stack.top()
		pushed := false
		for i := range succs {
			s := &succs[i]
			if p.stopped.Load() {
				return pushed
			}
			p.noteState(s.fp)
			if e.graph != nil {
				p.vmu.Lock()
				to := e.graph.Node(s.fp, s.global)
				e.graph.AddEdge(fromNode, to, id, s.outcome.Dequeued)
				p.vmu.Unlock()
			}
			step := TraceStep{
				Machine: id,
				Type:    e.prog.Machines[n.g.Lookup(id).Type].Name,
				Delays:  opt.cost,
				Choices: s.choices,
				Outcome: s.outcome.Kind,
			}
			if s.outcome.Kind == core.OutSend {
				step.Event = s.outcome.SentEvent
				step.HasEv = true
			}
			next := updateStack(opt.stack, id, s.outcome)
			delays := n.delays + opt.cost
			if p.visited.claim(visitedKey{s.fp, next.digest(e.opts.ExactFingerprints), n.faults}, delays) && !p.stopped.Load() {
				trace := make([]TraceStep, len(n.trace)+1)
				copy(trace, n.trace)
				trace[len(n.trace)] = step
				p.push(pnode{g: s.global, stack: next, delays: delays, faults: n.faults, depth: n.depth + 1, trace: trace})
				pushed = true
			}
		}
		return pushed
	}

	opts := scheduleOptions(n.g, sched, p.budget-n.delays)
	// POR, mirroring delayBounded: the zero-delay top-of-stack machine is
	// the only ample-seed candidate. The cycle proviso is per-worker and
	// racy — a claim lost to a concurrent worker can force a full expansion
	// a serial search would have reduced — which costs reduction, never
	// soundness: a lost claim means the successor was (or is being)
	// expanded elsewhere.
	var cached []successor
	cachedFor, processed0 := false, false
	if e.por != nil && len(opts) >= 2 {
		id := opts[0].stack.top()
		cached = expandSuccs(id, opts[0].cost)
		cachedFor = true
		if !p.stopped.Load() && e.por.ample(n.g, id, cached) {
			if process(opts[0], cached) {
				p.reducedStates.Add(1)
				p.ampleSkips.Add(int64(len(opts) - 1))
				return
			}
			processed0 = true
		}
	}
	for i, opt := range opts {
		if p.stopped.Load() {
			return
		}
		var succs []successor
		switch {
		case i == 0 && cachedFor:
			if processed0 {
				continue
			}
			succs = cached
		default:
			succs = expandSuccs(opt.stack.top(), opt.cost)
		}
		process(opt, succs)
	}
	if p.stopped.Load() {
		return
	}

	// Chaos mode: fault successors after the ordinary ones, in the serial
	// explorer's deterministic order so the stats equivalence holds.
	if n.faults < e.opts.Faults {
		stackDigest := n.stack.digest(e.opts.ExactFingerprints)
		for _, fb := range e.faultBranches(n.g) {
			if p.stopped.Load() {
				return
			}
			p.faultSteps.Add(1)
			p.noteState(fb.fp)
			if e.graph != nil {
				p.vmu.Lock()
				to := e.graph.Node(fb.fp, fb.global)
				e.graph.AddEdge(fromNode, to, fb.step.Machine, nil)
				p.vmu.Unlock()
			}
			key := visitedKey{fb.fp, stackDigest, n.faults + 1}
			if p.visited.claim(key, n.delays) && !p.stopped.Load() {
				trace := make([]TraceStep, len(n.trace)+1)
				copy(trace, n.trace)
				trace[len(n.trace)] = fb.step
				p.push(pnode{g: fb.global, stack: n.stack, delays: n.delays, faults: n.faults + 1, depth: n.depth + 1, trace: trace})
			}
		}
	}
}

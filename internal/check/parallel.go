package check

import (
	"hash/maphash"
	"runtime"
	"sync"
	"sync/atomic"

	"pgo/internal/core"
)

// The parallel delay-bounded explorer. The paper notes the USB verification
// runs "used multicores to scale the state exploration"; this is the same
// idea. Node expansion (clone + macro-step + fingerprint) runs without any
// lock; the distinct-state set and the (state, scheduler-stack) visited map
// are sharded dictionaries so dedup scales; the work queue is a single
// locked LIFO (its critical section is tiny); statistics are atomics merged
// into Result at the end.
//
// The set of distinct states discovered is identical to the serial search;
// violation order may differ between runs.

const pshards = 64

var pseed = maphash.MakeSeed()

func shardOf(key string) int {
	return int(maphash.String(pseed, key) % pshards)
}

// shardedStates is the distinct-fingerprint set.
type shardedStates struct {
	shards [pshards]struct {
		mu sync.Mutex
		m  map[string]struct{}
	}
	count atomic.Int64
}

func newShardedStates() *shardedStates {
	s := &shardedStates{}
	for i := range s.shards {
		s.shards[i].m = map[string]struct{}{}
	}
	return s
}

// add inserts fp, reporting whether it was new.
func (s *shardedStates) add(fp string) bool {
	sh := &s.shards[shardOf(fp)]
	sh.mu.Lock()
	_, ok := sh.m[fp]
	if !ok {
		sh.m[fp] = struct{}{}
	}
	sh.mu.Unlock()
	if !ok {
		s.count.Add(1)
	}
	return !ok
}

// shardedVisited is the (fingerprint|stack) -> min-delays map.
type shardedVisited struct {
	shards [pshards]struct {
		mu sync.Mutex
		m  map[string]int
	}
}

func newShardedVisited() *shardedVisited {
	v := &shardedVisited{}
	for i := range v.shards {
		v.shards[i].m = map[string]int{}
	}
	return v
}

// claim records delays for key unless an entry with <= delays exists; it
// reports whether the caller should expand the node.
func (v *shardedVisited) claim(key string, delays int) bool {
	sh := &v.shards[shardOf(key)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if prev, ok := sh.m[key]; ok && prev <= delays {
		return false
	}
	sh.m[key] = delays
	return true
}

type pnode struct {
	g      *core.Global
	stack  schedStack
	delays int
	depth  int
	trace  []TraceStep
}

type pexplorer struct {
	e      *explorer
	budget int

	states  *shardedStates
	visited *shardedVisited

	transitions atomic.Int64
	searchNodes atomic.Int64
	maxDepth    atomic.Int64
	quiescent   atomic.Int64
	truncated   atomic.Bool
	stopped     atomic.Bool

	vmu sync.Mutex // guards violations + graph

	qmu         sync.Mutex
	qcond       *sync.Cond
	work        []pnode
	outstanding int
}

// parallelDelayBounded explores like delayBounded with workers goroutines.
func (e *explorer) parallelDelayBounded(g0 *core.Global, workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &pexplorer{
		e:       e,
		budget:  e.opts.Bound,
		states:  newShardedStates(),
		visited: newShardedVisited(),
	}
	p.qcond = sync.NewCond(&p.qmu)

	fp0 := g0.Fingerprint()
	p.noteState(fp0)
	if e.graph != nil {
		e.graph.Init = e.graph.Node(fp0, g0)
	}
	initStack := schedStack{g0.LiveIDs()[0]}
	p.visited.claim(fp0+"|"+initStack.key(), 0)

	p.work = append(p.work, pnode{g: g0, stack: initStack})
	p.outstanding = 1

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.worker()
		}()
	}
	wg.Wait()

	// Merge the atomics into the explorer's result.
	e.result.Stats.DistinctStates = int(p.states.count.Load())
	e.result.Stats.Transitions += int(p.transitions.Load())
	e.result.Stats.SearchNodes += int(p.searchNodes.Load())
	e.result.Stats.Quiescent += int(p.quiescent.Load())
	if d := int(p.maxDepth.Load()); d > e.result.Stats.MaxDepth {
		e.result.Stats.MaxDepth = d
	}
	if p.truncated.Load() {
		e.result.Stats.Truncated = true
	}
}

// noteState registers a fingerprint, handling the MaxStates cap and the
// progress callback.
func (p *pexplorer) noteState(fp string) {
	if !p.states.add(fp) {
		return
	}
	n := int(p.states.count.Load())
	if p.e.opts.Progress != nil {
		p.vmu.Lock()
		p.e.opts.Progress(n)
		p.vmu.Unlock()
	}
	if p.e.opts.MaxStates > 0 && n >= p.e.opts.MaxStates {
		p.truncated.Store(true)
		p.stop()
	}
}

func (p *pexplorer) stop() {
	if p.stopped.Swap(true) {
		return
	}
	p.qmu.Lock()
	p.qcond.Broadcast()
	p.qmu.Unlock()
}

// take pops a node, blocking until work exists or the search is complete.
func (p *pexplorer) take() (pnode, bool) {
	p.qmu.Lock()
	defer p.qmu.Unlock()
	for {
		if p.stopped.Load() || (len(p.work) == 0 && p.outstanding == 0) {
			p.qcond.Broadcast()
			return pnode{}, false
		}
		if len(p.work) > 0 {
			n := p.work[len(p.work)-1]
			p.work = p.work[:len(p.work)-1]
			return n, true
		}
		p.qcond.Wait()
	}
}

// finish marks one taken node fully expanded.
func (p *pexplorer) finish() {
	p.qmu.Lock()
	p.outstanding--
	if p.outstanding == 0 && len(p.work) == 0 {
		p.qcond.Broadcast()
	}
	p.qmu.Unlock()
}

// push enqueues a successor node.
func (p *pexplorer) push(n pnode) {
	p.qmu.Lock()
	p.work = append(p.work, n)
	p.outstanding++
	p.qcond.Signal()
	p.qmu.Unlock()
}

func (p *pexplorer) worker() {
	for {
		n, ok := p.take()
		if !ok {
			return
		}
		p.expandNode(n)
		p.finish()
	}
}

func (p *pexplorer) addViolation(err *core.Err, trace []TraceStep) {
	p.vmu.Lock()
	p.e.result.Violations = append(p.e.result.Violations, Violation{Err: err, Trace: trace})
	p.vmu.Unlock()
	if p.e.opts.StopAtFirstError {
		p.stop()
	}
}

// expandNode performs the per-node work of delayBounded without any global
// lock: schedule options, choice-string expansion, sharded dedup.
func (p *pexplorer) expandNode(n pnode) {
	e := p.e
	p.searchNodes.Add(1)
	for {
		d := p.maxDepth.Load()
		if int64(n.depth) <= d || p.maxDepth.CompareAndSwap(d, int64(n.depth)) {
			break
		}
	}

	sched := n.stack.popDisabled(n.g)
	if len(sched) == 0 {
		var enabled []core.MachineID
		for _, id := range n.g.LiveIDs() {
			if n.g.Enabled(id) {
				enabled = append(enabled, id)
			}
		}
		if len(enabled) == 0 {
			p.quiescent.Add(1)
			return
		}
		sched = schedStack{enabled[0]}
	}

	var fromNode NodeID
	if e.graph != nil {
		p.vmu.Lock()
		fromNode = e.graph.Node(n.g.Fingerprint(), n.g)
		p.vmu.Unlock()
	}

	for _, opt := range scheduleOptions(n.g, sched, p.budget-n.delays) {
		id := opt.stack.top()
		cs := &core.FixedChoices{}
		for tries := 0; ; tries++ {
			if tries >= maxChoiceStrings {
				p.truncated.Store(true)
				break
			}
			clone := n.g.Clone()
			cs.Reset()
			out := clone.RunToSchedPoint(id, cs, e.opts.MaxLocalSteps)
			p.transitions.Add(1)
			bits := append([]bool(nil), cs.Bits...)

			step := TraceStep{
				Machine: id,
				Type:    e.prog.Machines[n.g.Lookup(id).Type].Name,
				Delays:  opt.cost,
				Choices: bits,
				Outcome: out.Kind,
			}
			if out.Kind == core.OutError {
				p.addViolation(out.Err, append(append([]TraceStep(nil), n.trace...), step))
			} else {
				if out.Kind == core.OutSend {
					step.Event = out.SentEvent
					step.HasEv = true
				}
				fp := clone.Fingerprint()
				p.noteState(fp)
				if e.graph != nil {
					p.vmu.Lock()
					to := e.graph.Node(fp, clone)
					e.graph.AddEdge(fromNode, to, id, out.Dequeued)
					p.vmu.Unlock()
				}
				next := updateStack(opt.stack, id, out)
				delays := n.delays + opt.cost
				if p.visited.claim(fp+"|"+next.key(), delays) && !p.stopped.Load() {
					trace := make([]TraceStep, len(n.trace)+1)
					copy(trace, n.trace)
					trace[len(n.trace)] = step
					p.push(pnode{g: clone, stack: next, delays: delays, depth: n.depth + 1, trace: trace})
				}
			}
			if p.stopped.Load() {
				return
			}
			if !cs.NextString() {
				break
			}
		}
	}
}

package check

import (
	"runtime"
	"sync"
	"sync/atomic"

	"pgo/internal/core"
)

// The parallel delay-bounded explorer. The paper notes the USB verification
// runs "used multicores to scale the state exploration"; this is the same
// idea. Node expansion (clone + macro-step + fingerprint) runs without any
// lock; the distinct-state set and the (state, scheduler-stack) visited map
// are the shared sharded dictionaries of visited.go (tiered-store-backed in
// hashed mode) so dedup scales; the work queue is a single locked LIFO (its
// critical section is tiny); statistics are atomics merged into Result at
// the end.
//
// The set of distinct states discovered is identical to the serial search
// (with POR off; reduction makes node-interleaving choices order-dependent);
// violation order may differ between runs.

// pnode is a parallel work item — the same shape as a serial delay-bounded
// node, so checkpoints written by either explorer resume into either.
type pnode = dnode

type pexplorer struct {
	e      *explorer
	budget int

	transitions   atomic.Int64
	searchNodes   atomic.Int64
	faultSteps    atomic.Int64
	reducedStates atomic.Int64
	ampleSkips    atomic.Int64
	claimRaces    atomic.Int64
	maxDepth      atomic.Int64
	quiescent     atomic.Int64
	truncated     atomic.Bool
	stopped       atomic.Bool

	vmu sync.Mutex // guards violations + graph + lastProgress

	// lastProgress is the highest count delivered to opts.Progress, so the
	// callback observes a strictly increasing sequence even when workers
	// race to report.
	lastProgress int

	qmu         sync.Mutex
	qcond       *sync.Cond
	work        []pnode
	outstanding int
	// ckptActive marks a checkpoint in progress (guarded by qmu): the worker
	// that armed it drains the in-flight nodes and writes the checkpoint
	// while the others park in take without claiming work.
	ckptActive bool
}

// parallelDelayBounded explores like delayBounded with workers goroutines.
func (e *explorer) parallelDelayBounded(g0 *core.Global, workers int) {
	fp0 := e.keyOf(g0)
	e.noteState(fp0)
	if e.graph != nil {
		e.graph.Init = e.graph.Node(fp0, g0)
	}
	// Same no-live-machine guard as the serial explorer: an empty scheduler
	// stack makes expandNode report the initial node quiescent.
	var initStack schedStack
	if live := g0.LiveIDs(); len(live) > 0 {
		initStack = schedStack{live[0]}
	}
	e.visited.claim(fp0, initStack.digest(e.opts.ExactFingerprints), 0, 0)
	e.parallelLoop([]dnode{{g: g0, stack: initStack}}, workers)
}

// parallelLoop runs the worker pool over a frontier (one initial node on
// fresh runs, the restored frontier on resume).
func (e *explorer) parallelLoop(frontier []dnode, workers int) {
	if e.stop {
		// The initial configuration already tripped the state cap.
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &pexplorer{
		e:      e,
		budget: e.opts.Bound,
	}
	p.qcond = sync.NewCond(&p.qmu)
	p.lastProgress = e.result.Stats.DistinctStates
	p.work = frontier
	p.outstanding = len(p.work)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.worker()
		}()
	}
	wg.Wait()

	e.result.Stats = p.statsSnapshot()
}

// statsSnapshot merges the atomics over the result's baseline stats (the
// checkpoint's on a resumed run, zero otherwise). Used for the final merge
// and for mid-run checkpoint manifests.
func (p *pexplorer) statsSnapshot() Stats {
	st := p.e.result.Stats
	st.DistinctStates = int(p.e.states.count.Load())
	st.Transitions += int(p.transitions.Load())
	st.SearchNodes += int(p.searchNodes.Load())
	st.FaultSteps += int(p.faultSteps.Load())
	st.ReducedStates += int(p.reducedStates.Load())
	st.AmpleSkips += int(p.ampleSkips.Load())
	st.ClaimRaces += int(p.claimRaces.Load())
	st.Quiescent += int(p.quiescent.Load())
	if d := int(p.maxDepth.Load()); d > st.MaxDepth {
		st.MaxDepth = d
	}
	if p.truncated.Load() {
		st.Truncated = true
	}
	return st
}

// noteState registers a fingerprint, handling the MaxStates cap and the
// progress callback. The count returned by the combined add-and-count is
// this insertion's own position in the discovery order, so the cap check is
// monotone — the worker that inserts the MaxStates-th state (and only that
// worker) trips the cap, rather than every worker re-reading a count other
// workers are still advancing. Progress likewise only ever sees a higher
// count than the previous call.
func (p *pexplorer) noteState(fp StateKey) {
	isNew, n := p.e.states.add(fp)
	if !isNew {
		return
	}
	// The throttle interval divides the unique counts, so each reported
	// count is produced by exactly one worker; lastProgress keeps the
	// delivery order monotone when those workers race to report.
	if p.e.opts.Progress != nil && n%p.e.progEvery == 0 {
		p.vmu.Lock()
		if n > p.lastProgress {
			p.lastProgress = n
			p.e.opts.Progress(n)
		}
		p.vmu.Unlock()
	}
	if p.e.opts.MaxStates > 0 && n >= p.e.opts.MaxStates {
		p.truncated.Store(true)
		p.stop()
	}
}

func (p *pexplorer) stop() {
	if p.stopped.Swap(true) {
		return
	}
	p.qmu.Lock()
	p.qcond.Broadcast()
	p.qmu.Unlock()
}

// take pops a node, blocking until work exists or the search is complete.
// It is also the parallel checkpoint point: a worker that finds a checkpoint
// due pauses the pool (everyone else parks here without claiming work),
// waits for the in-flight nodes to finish — the queue is then exactly the
// frontier — and writes the checkpoint before work resumes.
func (p *pexplorer) take() (pnode, bool) {
	e := p.e
	p.qmu.Lock()
	defer p.qmu.Unlock()
	for {
		if p.stopped.Load() || (len(p.work) == 0 && p.outstanding == 0) {
			p.qcond.Broadcast()
			return pnode{}, false
		}
		if e.ckpt != nil && !p.ckptActive {
			if due, stop := e.ckpt.due(int(e.states.count.Load())); due {
				p.checkpoint(stop)
				continue
			}
		}
		if p.ckptActive {
			// Another worker is checkpointing; park without claiming work
			// (a parked worker holds no node, so the drain terminates).
			p.qcond.Wait()
			continue
		}
		if len(p.work) > 0 {
			n := p.work[len(p.work)-1]
			p.work = p.work[:len(p.work)-1]
			return n, true
		}
		p.qcond.Wait()
	}
}

// checkpoint drains the in-flight nodes and writes a checkpoint from the
// queue. Called with qmu held by the worker that found the checkpoint due;
// stop suspends the search after the write.
func (p *pexplorer) checkpoint(stop bool) {
	e := p.e
	p.ckptActive = true
	// outstanding counts queued + in-flight nodes, so the pool is drained
	// exactly when every outstanding node is still queued.
	for p.outstanding > len(p.work) && !p.stopped.Load() {
		p.qcond.Wait()
	}
	if p.stopped.Load() {
		p.ckptActive = false
		return
	}
	frontier := ckptDNodes(p.work)
	st := p.statsSnapshot()
	p.vmu.Lock()
	viols := append([]Violation(nil), e.result.Violations...)
	p.vmu.Unlock()
	err := e.writeCheckpoint(frontier, st, viols)
	p.ckptActive = false
	if err != nil {
		e.ckpt.err = err
		p.stopped.Store(true)
	} else if stop {
		// Read by the main goroutine after wg.Wait, never by other workers.
		e.result.Checkpointed = true
		p.stopped.Store(true)
	}
	p.qcond.Broadcast()
}

// finish marks one taken node fully expanded.
func (p *pexplorer) finish() {
	p.qmu.Lock()
	p.outstanding--
	if p.ckptActive || (p.outstanding == 0 && len(p.work) == 0) {
		p.qcond.Broadcast()
	}
	p.qmu.Unlock()
}

// push enqueues a successor node.
func (p *pexplorer) push(n pnode) {
	p.qmu.Lock()
	p.work = append(p.work, n)
	p.outstanding++
	if p.ckptActive {
		// A signal could wake a parked worker instead of the draining
		// checkpointer; broadcast so the drain loop always re-checks.
		p.qcond.Broadcast()
	} else {
		p.qcond.Signal()
	}
	p.qmu.Unlock()
}

func (p *pexplorer) worker() {
	for {
		n, ok := p.take()
		if !ok {
			return
		}
		p.expandNode(n)
		p.finish()
	}
}

func (p *pexplorer) addViolation(err *core.Err, trace []TraceStep) {
	p.vmu.Lock()
	p.e.result.Violations = append(p.e.result.Violations, Violation{Err: err, Trace: trace})
	p.vmu.Unlock()
	if p.e.opts.StopAtFirstError {
		p.stop()
	}
}

// expandNode performs the per-node work of delayBounded without any global
// lock: schedule options, choice-string expansion, sharded dedup.
func (p *pexplorer) expandNode(n pnode) {
	e := p.e
	p.searchNodes.Add(1)
	for {
		d := p.maxDepth.Load()
		if int64(n.depth) <= d || p.maxDepth.CompareAndSwap(d, int64(n.depth)) {
			break
		}
	}

	sched := n.stack.popDisabled(n.g)
	if len(sched) == 0 {
		var enabled []core.MachineID
		for _, id := range n.g.LiveIDs() {
			if n.g.Enabled(id) {
				enabled = append(enabled, id)
			}
		}
		if len(enabled) == 0 {
			p.quiescent.Add(1)
			return
		}
		sched = schedStack{enabled[0]}
	}

	var fromNode NodeID
	if e.graph != nil {
		// keyOf is computed outside vmu (it touches only n.g, owned by this
		// worker); the graph itself is interned under the lock.
		key := e.keyOf(n.g)
		p.vmu.Lock()
		fromNode = e.graph.Node(key, n.g)
		p.vmu.Unlock()
	}

	// expandSuccs runs machine id under every `*` choice string (the
	// lock-free mirror of explorer.expand): transitions counted, error
	// branches recorded as violations, non-error successors returned.
	expandSuccs := func(id core.MachineID, cost int) []successor {
		var succs []successor
		cs := &core.FixedChoices{}
		for tries := 0; ; tries++ {
			if tries >= maxChoiceStrings {
				p.truncated.Store(true)
				return succs
			}
			if p.stopped.Load() {
				return succs
			}
			clone := n.g.Clone()
			cs.Reset()
			out := clone.RunToSchedPoint(id, cs, e.opts.MaxLocalSteps)
			p.transitions.Add(1)
			bits := append([]bool(nil), cs.Bits...)
			if out.Kind == core.OutError {
				step := TraceStep{
					Machine: id,
					Type:    e.prog.Machines[n.g.Lookup(id).Type].Name,
					Delays:  cost,
					Choices: bits,
					Outcome: out.Kind,
				}
				p.addViolation(out.Err, append(append([]TraceStep(nil), n.trace...), step))
				if p.stopped.Load() {
					return succs
				}
			} else {
				succs = append(succs, successor{global: clone, outcome: out, choices: bits, fp: e.keyOf(clone)})
			}
			if !cs.NextString() {
				return succs
			}
		}
	}
	// process runs the per-successor body for one schedule option,
	// reporting whether any successor entered the frontier as new work.
	process := func(opt scheduleOption, succs []successor) bool {
		id := opt.stack.top()
		pushed := false
		for i := range succs {
			s := &succs[i]
			if p.stopped.Load() {
				return pushed
			}
			p.noteState(s.fp)
			if e.graph != nil {
				p.vmu.Lock()
				to := e.graph.Node(s.fp, s.global)
				e.graph.AddEdge(fromNode, to, id, s.outcome.Dequeued)
				p.vmu.Unlock()
			}
			step := TraceStep{
				Machine: id,
				Type:    e.prog.Machines[n.g.Lookup(id).Type].Name,
				Delays:  opt.cost,
				Choices: s.choices,
				Outcome: s.outcome.Kind,
			}
			if s.outcome.Kind == core.OutSend {
				step.Event = s.outcome.SentEvent
				step.HasEv = true
			}
			next := updateStack(opt.stack, id, s.outcome)
			delays := n.delays + opt.cost
			if e.visited.claim(s.fp, next.digest(e.opts.ExactFingerprints), n.faults, delays) && !p.stopped.Load() {
				trace := make([]TraceStep, len(n.trace)+1)
				copy(trace, n.trace)
				trace[len(n.trace)] = step
				p.push(pnode{g: s.global, stack: next, delays: delays, faults: n.faults, depth: n.depth + 1, trace: trace})
				pushed = true
			}
		}
		return pushed
	}

	opts := scheduleOptions(n.g, sched, p.budget-n.delays)
	// POR, mirroring delayBounded: the zero-delay top-of-stack machine is
	// the only ample-seed candidate. The cycle proviso is per-worker and
	// racy — a claim lost to a concurrent worker can force a full expansion
	// a serial search would have reduced — which costs reduction, never
	// soundness: a lost claim means the successor was (or is being)
	// expanded elsewhere. Stats.ClaimRaces counts exactly those losses: a
	// successor whose visited key was still claimable just before process()
	// but whose claim failed anyway was stolen mid-node, whereas a key
	// already covered at the pre-check is the genuine cycle proviso (the
	// outcome a serial search would also reach). With one worker nothing can
	// intervene between the pre-check and the claim, so ClaimRaces stays 0
	// and the serial stats equivalence holds.
	var cached []successor
	cachedFor, processed0 := false, false
	if e.por != nil && len(opts) >= 2 {
		id := opts[0].stack.top()
		cached = expandSuccs(id, opts[0].cost)
		cachedFor = true
		if !p.stopped.Load() && e.por.ample(n.g, id, cached) {
			delays := n.delays + opts[0].cost
			claimable := make([]bool, len(cached))
			for i := range cached {
				s := &cached[i]
				aux := updateStack(opts[0].stack, id, s.outcome).digest(e.opts.ExactFingerprints)
				prev, ok := e.visited.get(s.fp, aux, n.faults)
				claimable[i] = !ok || prev > delays
			}
			if process(opts[0], cached) {
				p.reducedStates.Add(1)
				p.ampleSkips.Add(int64(len(opts) - 1))
				return
			}
			if !p.stopped.Load() {
				for _, c := range claimable {
					if c {
						p.claimRaces.Add(1)
					}
				}
			}
			processed0 = true
		}
	}
	for i, opt := range opts {
		if p.stopped.Load() {
			return
		}
		var succs []successor
		switch {
		case i == 0 && cachedFor:
			if processed0 {
				continue
			}
			succs = cached
		default:
			succs = expandSuccs(opt.stack.top(), opt.cost)
		}
		process(opt, succs)
	}
	if p.stopped.Load() {
		return
	}

	// Chaos mode: fault successors after the ordinary ones, in the serial
	// explorer's deterministic order so the stats equivalence holds.
	if n.faults < e.opts.Faults {
		stackDigest := n.stack.digest(e.opts.ExactFingerprints)
		for _, fb := range e.faultBranches(n.g) {
			if p.stopped.Load() {
				return
			}
			p.faultSteps.Add(1)
			p.noteState(fb.fp)
			if e.graph != nil {
				p.vmu.Lock()
				to := e.graph.Node(fb.fp, fb.global)
				e.graph.AddEdge(fromNode, to, fb.step.Machine, nil)
				p.vmu.Unlock()
			}
			if e.visited.claim(fb.fp, stackDigest, n.faults+1, n.delays) && !p.stopped.Load() {
				trace := make([]TraceStep, len(n.trace)+1)
				copy(trace, n.trace)
				trace[len(n.trace)] = fb.step
				p.push(pnode{g: fb.global, stack: n.stack, delays: n.delays, faults: n.faults + 1, depth: n.depth + 1, trace: trace})
			}
		}
	}
}

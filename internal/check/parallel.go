package check

import (
	"runtime"
	"sync"
	"sync/atomic"

	"pgo/internal/core"
)

// The parallel delay-bounded explorer. The paper notes the USB verification
// runs "used multicores to scale the state exploration"; this is the same
// idea. Node expansion (clone + macro-step + fingerprint) runs without any
// lock; the distinct-state set and the (state, scheduler-stack) visited map
// are the shared sharded dictionaries of visited.go (tiered-store-backed in
// hashed mode) so dedup scales; the work queue is a single locked LIFO (its
// critical section is tiny); statistics are atomics merged into Result at
// the end. The per-node work itself is the shared core of engine.go —
// pexplorer is just its emitter, swapping the serial explorer's direct
// bookkeeping for atomics and the vmu-guarded graph/violations.
//
// The set of distinct states discovered is identical to the serial search
// (with POR off; reduction makes node-interleaving choices order-dependent);
// violation order may differ between runs.

type pexplorer struct {
	e      *explorer
	budget int

	transitions   atomic.Int64
	searchNodes   atomic.Int64
	faultSteps    atomic.Int64
	reducedStates atomic.Int64
	ampleSkips    atomic.Int64
	claimRaces    atomic.Int64
	maxDepth      atomic.Int64
	quiescent     atomic.Int64
	truncated     atomic.Bool
	halted        atomic.Bool

	vmu sync.Mutex // guards violations + graph + lastProgress

	// lastProgress is the highest count delivered to opts.Progress, so the
	// callback observes a strictly increasing sequence even when workers
	// race to report.
	lastProgress int

	qmu         sync.Mutex
	qcond       *sync.Cond
	work        []node
	outstanding int
	// ckptActive marks a checkpoint in progress (guarded by qmu): the worker
	// that armed it drains the in-flight nodes and writes the checkpoint
	// while the others park in take without claiming work.
	ckptActive bool
}

// parallelDelayBounded explores like delayBounded with workers goroutines.
func (e *explorer) parallelDelayBounded(g0 *core.Global, workers int) {
	fp0 := e.keyOf(g0)
	e.noteState(fp0)
	if e.graph != nil {
		e.graph.Init = e.graph.Node(fp0, g0)
	}
	// Same no-live-machine guard as the serial explorer: an empty scheduler
	// stack makes expandNode report the initial node quiescent.
	var initStack schedStack
	if live := g0.LiveIDs(); len(live) > 0 {
		initStack = schedStack{live[0]}
	}
	e.visited.claim(fp0, initStack.digest(e.opts.ExactFingerprints), 0, 0)
	e.parallelLoop([]node{{g: g0, stack: initStack}}, workers)
}

// parallelLoop runs the worker pool over a frontier (one initial node on
// fresh runs, the restored frontier on resume).
func (e *explorer) parallelLoop(frontier []node, workers int) {
	if e.stop {
		// The initial configuration already tripped the state cap.
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e.result.Stats.Workers = workers
	p := &pexplorer{
		e:      e,
		budget: e.opts.Bound,
	}
	p.qcond = sync.NewCond(&p.qmu)
	p.lastProgress = e.result.Stats.DistinctStates
	p.work = frontier
	p.outstanding = len(p.work)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.worker()
		}()
	}
	wg.Wait()

	e.result.Stats = p.statsSnapshot()
}

// statsSnapshot merges the atomics over the result's baseline stats (the
// checkpoint's on a resumed run, zero otherwise). Used for the final merge
// and for mid-run checkpoint manifests.
func (p *pexplorer) statsSnapshot() Stats {
	st := p.e.result.Stats
	st.DistinctStates = int(p.e.states.count.Load())
	st.Transitions += int(p.transitions.Load())
	st.SearchNodes += int(p.searchNodes.Load())
	st.FaultSteps += int(p.faultSteps.Load())
	st.ReducedStates += int(p.reducedStates.Load())
	st.AmpleSkips += int(p.ampleSkips.Load())
	st.ClaimRaces += int(p.claimRaces.Load())
	st.Quiescent += int(p.quiescent.Load())
	if d := int(p.maxDepth.Load()); d > st.MaxDepth {
		st.MaxDepth = d
	}
	if p.truncated.Load() {
		st.Truncated = true
	}
	return st
}

// note registers a fingerprint, handling the MaxStates cap and the progress
// callback, and reports whether this call inserted it. The count returned by
// the combined add-and-count is this insertion's own position in the
// discovery order, so the cap check is monotone — the worker that inserts
// the MaxStates-th state (and only that worker) trips the cap, rather than
// every worker re-reading a count other workers are still advancing.
// Progress likewise only ever sees a higher count than the previous call.
func (p *pexplorer) note(fp StateKey) bool {
	isNew, n := p.e.states.add(fp)
	if !isNew {
		return false
	}
	// The throttle interval divides the unique counts, so each reported
	// count is produced by exactly one worker; lastProgress keeps the
	// delivery order monotone when those workers race to report.
	if p.e.opts.Progress != nil && n%p.e.progEvery == 0 {
		p.vmu.Lock()
		if n > p.lastProgress {
			p.lastProgress = n
			p.e.opts.Progress(n)
		}
		p.vmu.Unlock()
	}
	if p.e.opts.MaxStates > 0 && n >= p.e.opts.MaxStates {
		p.truncated.Store(true)
		p.halt()
	}
	return true
}

func (p *pexplorer) halt() {
	if p.halted.Swap(true) {
		return
	}
	p.qmu.Lock()
	p.qcond.Broadcast()
	p.qmu.Unlock()
}

// take pops a node, blocking until work exists or the search is complete.
// It is also the parallel checkpoint point: a worker that finds a checkpoint
// due pauses the pool (everyone else parks here without claiming work),
// waits for the in-flight nodes to finish — the queue is then exactly the
// frontier — and writes the checkpoint before work resumes.
func (p *pexplorer) take() (node, bool) {
	e := p.e
	p.qmu.Lock()
	defer p.qmu.Unlock()
	for {
		if p.halted.Load() || (len(p.work) == 0 && p.outstanding == 0) {
			p.qcond.Broadcast()
			return node{}, false
		}
		if e.ckpt != nil && !p.ckptActive {
			if due, stop := e.ckpt.due(int(e.states.count.Load())); due {
				p.checkpoint(stop)
				continue
			}
		}
		if p.ckptActive {
			// Another worker is checkpointing; park without claiming work
			// (a parked worker holds no node, so the drain terminates).
			p.qcond.Wait()
			continue
		}
		if len(p.work) > 0 {
			n := p.work[len(p.work)-1]
			p.work = p.work[:len(p.work)-1]
			return n, true
		}
		p.qcond.Wait()
	}
}

// checkpoint drains the in-flight nodes and writes a checkpoint from the
// queue. Called with qmu held by the worker that found the checkpoint due;
// stop suspends the search after the write.
func (p *pexplorer) checkpoint(stop bool) {
	e := p.e
	p.ckptActive = true
	// outstanding counts queued + in-flight nodes, so the pool is drained
	// exactly when every outstanding node is still queued.
	for p.outstanding > len(p.work) && !p.halted.Load() {
		p.qcond.Wait()
	}
	if p.halted.Load() {
		p.ckptActive = false
		return
	}
	frontier := ckptNodes(p.work)
	st := p.statsSnapshot()
	p.vmu.Lock()
	viols := append([]Violation(nil), e.result.Violations...)
	p.vmu.Unlock()
	err := e.writeCheckpoint(frontier, st, viols)
	p.ckptActive = false
	if err != nil {
		e.ckpt.err = err
		p.halted.Store(true)
	} else if stop {
		// Read by the main goroutine after wg.Wait, never by other workers.
		e.result.Checkpointed = true
		p.halted.Store(true)
	}
	p.qcond.Broadcast()
}

// finish marks one taken node fully expanded.
func (p *pexplorer) finish() {
	p.qmu.Lock()
	p.outstanding--
	if p.ckptActive || (p.outstanding == 0 && len(p.work) == 0) {
		p.qcond.Broadcast()
	}
	p.qmu.Unlock()
}

// push enqueues a successor node.
func (p *pexplorer) push(n node) {
	p.qmu.Lock()
	p.work = append(p.work, n)
	p.outstanding++
	if p.ckptActive {
		// A signal could wake a parked worker instead of the draining
		// checkpointer; broadcast so the drain loop always re-checks.
		p.qcond.Broadcast()
	} else {
		p.qcond.Signal()
	}
	p.qmu.Unlock()
}

func (p *pexplorer) worker() {
	for {
		n, ok := p.take()
		if !ok {
			return
		}
		p.e.expandNode(p, &n)
		p.finish()
	}
}

// The remaining emitter methods (engine.go): the atomic mirrors of the
// serial explorer's stats fields, and the vmu-guarded graph and violation
// sinks.

func (p *pexplorer) stopped() bool { return p.halted.Load() }

func (p *pexplorer) violation(err *core.Err, trace []TraceStep) {
	p.vmu.Lock()
	p.e.result.Violations = append(p.e.result.Violations, Violation{Err: err, Trace: trace})
	p.vmu.Unlock()
	if p.e.opts.StopAtFirstError {
		p.halt()
	}
}

func (p *pexplorer) countTransition() { p.transitions.Add(1) }
func (p *pexplorer) markTruncated()   { p.truncated.Store(true) }

func (p *pexplorer) searchNode(depth int) {
	p.searchNodes.Add(1)
	for {
		d := p.maxDepth.Load()
		if int64(depth) <= d || p.maxDepth.CompareAndSwap(d, int64(depth)) {
			return
		}
	}
}

func (p *pexplorer) quiescentNode()  { p.quiescent.Add(1) }
func (p *pexplorer) countFaultStep() { p.faultSteps.Add(1) }

func (p *pexplorer) reduced(skips int) {
	p.reducedStates.Add(1)
	p.ampleSkips.Add(int64(skips))
}

func (p *pexplorer) sleepSkips(n int) { p.ampleSkips.Add(int64(n)) }
func (p *pexplorer) claimRace()       { p.claimRaces.Add(1) }
func (p *pexplorer) tracksRaces() bool { return true }

// graphNode interns under vmu; the caller computes the key outside the lock
// (it touches only the node's Global, owned by one worker).
func (p *pexplorer) graphNode(fp StateKey, g *core.Global) NodeID {
	p.vmu.Lock()
	defer p.vmu.Unlock()
	return p.e.graph.Node(fp, g)
}

func (p *pexplorer) graphEdge(from NodeID, fp StateKey, g *core.Global, m core.MachineID, deq []core.QEntry) {
	p.vmu.Lock()
	to := p.e.graph.Node(fp, g)
	p.e.graph.AddEdge(from, to, m, deq)
	p.vmu.Unlock()
}

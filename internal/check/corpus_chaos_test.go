package check_test

import (
	"os"
	"strings"
	"testing"

	"pgo/internal/check"
	"pgo/internal/compile"
	"pgo/internal/core"
	"pgo/internal/ir"
	"pgo/internal/trace"
)

// Golden chaos counterexamples for the corpus fault-sensitivity samples in
// testdata/ — the protocol-flavored siblings of relay.p. Each sample is
// safe under every fault-free schedule, broken by a single dropped message,
// and its drop counterexample replays deterministically: the rendered trace
// is pinned so schedule regressions (or replay divergence) surface as a
// diff.

func compileTestdata(t *testing.T, name string) *ir.Program {
	t.Helper()
	src, err := os.ReadFile("../../testdata/" + name + ".p")
	if err != nil {
		t.Fatalf("reading %s sample: %v", name, err)
	}
	prog, diags, err := compile.Source(name, string(src))
	if err != nil {
		t.Fatalf("compile %s: %v\n%s", name, err, diags.String())
	}
	return prog
}

func TestCorpusChaosGoldenTraces(t *testing.T) {
	cases := []struct {
		name   string
		golden string
	}{
		{
			name: "twophase_quorum",
			golden: `counterexample: assertion failed in machine Coordinator#2 (state Decide) at 51:7
schedule (8 steps):
   1. Voter#1  @Casting       creates Coordinator#2
   2. [1 delays]
   2. Voter#1  @Casting       sends Ballot to Coordinator#2
   3. Coordinator#2  ⚡fault         loses Ballot in transit
   4. [1 delays]
   4. Coordinator#2  @Collecting    blocks
   5. Voter#1  @Casting       sends Ballot to Coordinator#2
   6. Coordinator#2  @Collecting    blocks
      └ consumed Ballot
   7. Voter#1  @Casting       sends Finalize to Coordinator#2
   8. Coordinator#2  Collecting→Decide ERROR: assertion failed in machine Coordinator#2 (state Decide) at 51:7
`,
		},
		{
			name: "raft_heartbeat",
			golden: `counterexample: assertion failed in machine Follower#2 (state Audit) at 50:7
schedule (8 steps):
   1. Leader#1  @Term          creates Follower#2
   2. [1 delays]
   2. Leader#1  @Term          sends Heartbeat to Follower#2
   3. Follower#2  ⚡fault         loses Heartbeat in transit
   4. [1 delays]
   4. Follower#2  @Following     blocks
   5. Leader#1  @Term          sends Heartbeat to Follower#2
   6. Follower#2  @Following     blocks
      └ consumed Heartbeat
   7. Leader#1  @Term          sends LeaseCheck to Follower#2
   8. Follower#2  Following→Audit ERROR: assertion failed in machine Follower#2 (state Audit) at 50:7
`,
		},
		{
			name: "shardkv_handoff",
			golden: `counterexample: assertion failed in machine Dest#2 (state Serve) at 58:7
schedule (8 steps):
   1. Source#1  @Draining      creates Dest#2
   2. [1 delays]
   2. Source#1  @Draining      sends Install to Dest#2
   3. Dest#2  ⚡fault         loses Install in transit
   4. [1 delays]
   4. Dest#2  @Installing    blocks
   5. Source#1  @Draining      sends Install to Dest#2
   6. Dest#2  @Installing    blocks
      └ consumed Install
   7. Source#1  @Draining      sends Activate to Dest#2
   8. Dest#2  Installing→Serve ERROR: assertion failed in machine Dest#2 (state Serve) at 58:7
`,
		},
		{
			name: "worksteal_grant",
			golden: `counterexample: assertion failed in machine Thief#2 (state Reconcile) at 52:7
schedule (8 steps):
   1. Victim#1  @Granting      creates Thief#2
   2. [1 delays]
   2. Victim#1  @Granting      sends Task to Thief#2
   3. Thief#2  ⚡fault         loses Task in transit
   4. [1 delays]
   4. Thief#2  @Receiving     blocks
   5. Victim#1  @Granting      sends Task to Thief#2
   6. Thief#2  @Receiving     blocks
      └ consumed Task
   7. Victim#1  @Granting      sends Bye to Thief#2
   8. Thief#2  Receiving→Reconcile ERROR: assertion failed in machine Thief#2 (state Reconcile) at 52:7
`,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			prog := compileTestdata(t, tc.name)

			// Fault-free: the sample must be clean.
			clean, err := check.Explore(prog, check.Options{Mode: check.DelayBounded, Bound: 2})
			if err != nil {
				t.Fatal(err)
			}
			if clean.Errored() {
				t.Fatalf("fault-free exploration found a violation: %v", clean.FirstViolation())
			}

			// One drop fault: the conservation assert must fail, with
			// exactly one fault step on the reproducing schedule.
			res, err := check.Explore(prog, check.Options{
				Mode:             check.DelayBounded,
				Bound:            2,
				Faults:           1,
				FaultKinds:       check.DropFaults,
				StopAtFirstError: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			v := res.FirstViolation()
			if v == nil {
				t.Fatal("chaos exploration with one drop fault found no violation")
			}
			if v.Err.Kind != core.ErrAssert {
				t.Fatalf("violation kind = %v, want ErrAssert", v.Err.Kind)
			}
			drops := 0
			for _, s := range v.Trace {
				if s.Fault == check.FaultDrop {
					drops++
				}
			}
			if drops != 1 {
				t.Fatalf("trace has %d drop fault steps, want exactly 1:\n%v", drops, v.Trace)
			}

			// The counterexample replays deterministically into the pinned
			// rendering.
			var b strings.Builder
			if err := trace.Render(prog, v, &b); err != nil {
				t.Fatalf("replay diverged: %v", err)
			}
			if got := b.String(); got != tc.golden {
				t.Errorf("rendered trace diverges from golden:\n--- got ---\n%s--- want ---\n%s", got, tc.golden)
			}
		})
	}
}

package check

import (
	"pgo/internal/core"
	"pgo/internal/ir"
)

// Concrete replay of abstract counterexamples. The counter abstraction
// (internal/abstract) over-approximates: a P402 abstract counterexample may
// be an artifact of pooled inbox reordering or widened values. Replay runs
// the ordinary explicit-state explorer over the same program — a concrete
// instantiation at whatever instance count the program's ghost environment
// builds — and checks whether a violation of the same class shows up. A hit
// confirms the abstract finding on a real schedule; a miss within the
// bounded search marks it possibly spurious (the abstract error may still
// be real at larger N or deeper schedules).
//
// The signature type deliberately mirrors abstract.AbsError without
// importing it (the dependency points the other way: callers that hold both
// packages, like cmd/pverify, convert), and matching is by error class —
// kind, machine type, and event — not by state or schedule: the abstract
// trace's interleavings need not be concretely executable even when the
// defect is real.

// AbsSignature identifies an abstract error class for concrete replay.
type AbsSignature struct {
	Kind core.ErrKind
	Type string // machine type name
	// Event is the involved event's name; "" matches violations regardless
	// of event.
	Event string
}

// DefaultReplayOptions is the bounded exploration replay uses unless the
// caller overrides it: a depth-bounded search truncated at a state cap, so
// replay stays a quick confirmation pass rather than a second full
// verification. Depth bounding (rather than the delay bounding pverify
// defaults to) matters here because parameterized programs drive machine
// creation from an unbounded ghost loop: a delaying scheduler happily runs
// the spawner forever, and every spawn grows the global state, so the
// search gets slower with each level. A depth bound caps the trace length
// and with it the instance count, keeping replay terminating on exactly
// the programs the abstraction is for. Bound is the deepest rung of the
// iterative-deepening ladder ReplaySignatures climbs; MaxStates is the
// per-rung budget.
func DefaultReplayOptions() Options {
	return Options{
		Mode:      DepthBounded,
		Bound:     32,
		MaxStates: 200_000,
		POR:       true,
	}
}

// replayLadder is the iterative-deepening schedule: the first rung and the
// increment between rungs. Parameterized state spaces grow by a large
// constant factor per depth level, so each rung costs a fraction of the
// next and the ladder's total work is dominated by the deepest rung run.
const (
	replayFirstDepth = 8
	replayDepthStep  = 4
)

// ReplaySignatures explores prog concretely and reports, per signature,
// whether a violation of the same class was found. The returned Result
// carries the deepest underlying exploration (its Stats.Truncated tells
// callers whether a miss is exhaustive up to the bound or merely
// budget-limited).
//
// In depth-bounded mode the search iteratively deepens from a small bound
// up to opts.Bound, stopping early when every signature has been matched —
// so a shallow real bug is confirmed in milliseconds — or when a rung
// exhausts opts.MaxStates, since any deeper rung explores a superset of
// the flooded one and would only drown the same way. Hits accumulate
// across rungs. Other modes run a single exploration with opts as given.
func ReplaySignatures(prog *ir.Program, sigs []AbsSignature, opts Options) ([]bool, *Result, error) {
	hits := make([]bool, len(sigs))
	mark := func(res *Result) bool {
		all := true
		for _, v := range res.Violations {
			for i, sig := range sigs {
				if !hits[i] && sig.matches(prog, v.Err) {
					hits[i] = true
				}
			}
		}
		for _, h := range hits {
			all = all && h
		}
		return all
	}

	if opts.Mode != DepthBounded {
		res, err := Explore(prog, opts)
		if err != nil {
			return nil, nil, err
		}
		mark(res)
		return hits, res, nil
	}

	var res *Result
	for depth := replayFirstDepth; ; depth += replayDepthStep {
		if depth > opts.Bound {
			depth = opts.Bound
		}
		ropts := opts
		ropts.Bound = depth
		var err error
		res, err = Explore(prog, ropts)
		if err != nil {
			return nil, nil, err
		}
		if mark(res) || res.Stats.Truncated || depth >= opts.Bound {
			return hits, res, nil
		}
	}
}

func (sig AbsSignature) matches(prog *ir.Program, e *core.Err) bool {
	if e == nil || e.Kind != sig.Kind || e.Type != sig.Type {
		return false
	}
	if sig.Event == "" {
		return true
	}
	return e.HasEv && prog.Events[e.Event].Name == sig.Event
}

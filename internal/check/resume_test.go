package check_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"pgo/internal/check"
)

// The resume equivalence contract: a run checkpointed mid-search and resumed
// must report exactly the Stats and violations of a run that was never
// interrupted. Serial explorers are deterministic, so the tests below pin
// full Stats equality; the parallel explorer's traversal order varies, so
// its lanes pin the verdict and (with POR off) the distinct-state count.

// normStats strips the fields that legitimately differ between an
// interrupted-and-resumed run and an uninterrupted one (wall-clock time).
func normStats(s check.Stats) check.Stats {
	s.Elapsed = 0
	return s
}

// violationKeys summarizes a violation list as a sorted multiset of error
// descriptions, ignoring discovery order.
func violationKeys(vs []check.Violation) []string {
	keys := make([]string, len(vs))
	for i, v := range vs {
		keys[i] = fmt.Sprintf("%v @ machine %d", v.Err, v.Err.Machine)
	}
	sort.Strings(keys)
	return keys
}

// runInterrupted explores with a stop-checkpoint at stopAt states, asserts
// the run actually suspended, and returns the partial result.
func runInterrupted(t *testing.T, sample string, opts check.Options, stopAt int) *check.Result {
	t.Helper()
	prog := compileSample(t, sample)
	opts.CheckpointStop = stopAt
	res, err := check.Explore(prog, opts)
	if err != nil {
		t.Fatalf("interrupted explore: %v", err)
	}
	if !res.Checkpointed {
		t.Fatalf("expected the run to suspend at a checkpoint (stop at %d states, saw %d)", stopAt, res.Stats.DistinctStates)
	}
	return res
}

// roundTrip runs sample uninterrupted, then interrupted-at-half plus
// resumed, and returns both final results for comparison.
func roundTrip(t *testing.T, sample string, opts check.Options) (baseline, resumed *check.Result) {
	t.Helper()
	prog := compileSample(t, sample)
	baseline, err := check.Explore(prog, opts)
	if err != nil {
		t.Fatalf("baseline explore: %v", err)
	}
	if baseline.Stats.DistinctStates < 4 {
		t.Fatalf("sample too small to interrupt meaningfully: %d states", baseline.Stats.DistinctStates)
	}

	ckptOpts := opts
	ckptOpts.StoreDir = t.TempDir()
	partial := runInterrupted(t, sample, ckptOpts, baseline.Stats.DistinctStates/2)
	if partial.Stats.DistinctStates >= baseline.Stats.DistinctStates {
		t.Fatalf("checkpoint did not trigger mid-run: %d of %d states already explored",
			partial.Stats.DistinctStates, baseline.Stats.DistinctStates)
	}

	resumeOpts := ckptOpts
	resumeOpts.CheckpointStop = 0
	resumed, err = check.Resume(prog, resumeOpts)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	return baseline, resumed
}

func assertEquivalent(t *testing.T, baseline, resumed *check.Result) {
	t.Helper()
	if got, want := normStats(resumed.Stats), normStats(baseline.Stats); got != want {
		t.Errorf("resumed stats diverge from uninterrupted run:\n  resumed:  %+v\n  baseline: %+v", got, want)
	}
	got, want := violationKeys(resumed.Violations), violationKeys(baseline.Violations)
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("resumed violations diverge:\n  resumed:  %v\n  baseline: %v", got, want)
	}
}

// TestResumeRoundTripSerial pins exact equivalence across the serial
// explorer matrix: german(3) and usb-hsm, all three modes, hashed and exact
// fingerprints, POR on and off, and a chaos lane exercising fault-step
// replay.
func TestResumeRoundTripSerial(t *testing.T) {
	lanes := []struct {
		name   string
		sample string
		opts   check.Options
	}{
		{"german/delay/hashed", "german", check.Options{Mode: check.DelayBounded, Bound: 1}},
		{"german/delay/hashed/por", "german", check.Options{Mode: check.DelayBounded, Bound: 1, POR: true}},
		{"german/delay/exact", "german", check.Options{Mode: check.DelayBounded, Bound: 1, ExactFingerprints: true}},
		{"german/delay/exact/por", "german", check.Options{Mode: check.DelayBounded, Bound: 1, ExactFingerprints: true, POR: true}},
		{"german/rr/hashed", "german", check.Options{Mode: check.RoundRobinDelay, Bound: 1}},
		{"german/depth/hashed", "german", check.Options{Mode: check.DepthBounded, Bound: 6}},
		{"german/depth/hashed/por", "german", check.Options{Mode: check.DepthBounded, Bound: 6, POR: true}},
		{"german/delay/chaos", "german", check.Options{Mode: check.DelayBounded, Bound: 1, Faults: 1}},
		{"usb-hsm/delay/hashed", "usb-hsm", check.Options{Mode: check.DelayBounded, Bound: 1}},
		{"usb-hsm/delay/hashed/por", "usb-hsm", check.Options{Mode: check.DelayBounded, Bound: 2, POR: true}},
	}
	for _, lane := range lanes {
		lane := lane
		t.Run(lane.name, func(t *testing.T) {
			t.Parallel()
			baseline, resumed := roundTrip(t, lane.sample, lane.opts)
			assertEquivalent(t, baseline, resumed)
		})
	}
}

// TestResumeRoundTripViolations checkpoints a buggy program mid-run so
// violations recorded before the checkpoint travel through frontier.gob and
// merge with ones found after resume.
func TestResumeRoundTripViolations(t *testing.T) {
	baseline, resumed := roundTrip(t, "german-buggy", check.Options{Mode: check.DelayBounded, Bound: 1})
	if len(baseline.Violations) == 0 {
		t.Fatal("expected german-buggy to produce violations")
	}
	assertEquivalent(t, baseline, resumed)
}

// TestResumeRoundTripParallel checkpoints under the worker pool's drain
// protocol and resumes with the same worker count. Parallel traversal order
// is nondeterministic, so only order-independent facts are pinned: the
// verdict always, and the distinct-state count when POR is off (the reduced
// search's explored subset is order-dependent).
func TestResumeRoundTripParallel(t *testing.T) {
	lanes := []struct {
		name string
		opts check.Options
	}{
		{"german/workers4", check.Options{Mode: check.DelayBounded, Bound: 1, Workers: 4}},
		{"german/workers4/por", check.Options{Mode: check.DelayBounded, Bound: 1, Workers: 4, POR: true}},
	}
	for _, lane := range lanes {
		lane := lane
		t.Run(lane.name, func(t *testing.T) {
			t.Parallel()
			baseline, resumed := roundTrip(t, "german", lane.opts)
			if baseline.Errored() != resumed.Errored() {
				t.Errorf("verdict diverged: baseline errored=%v, resumed errored=%v", baseline.Errored(), resumed.Errored())
			}
			if !lane.opts.POR && baseline.Stats.DistinctStates != resumed.Stats.DistinctStates {
				t.Errorf("distinct states diverged: baseline %d, resumed %d",
					baseline.Stats.DistinctStates, resumed.Stats.DistinctStates)
			}
		})
	}
}

// TestResumeAcrossWorkerCounts pins that worker count is a free knob: a
// serial checkpoint resumes under the parallel explorer and vice versa
// (pnode and dnode share one shape).
func TestResumeAcrossWorkerCounts(t *testing.T) {
	prog := compileSample(t, "german")
	base := check.Options{Mode: check.DelayBounded, Bound: 1}
	baseline, err := check.Explore(prog, base)
	if err != nil {
		t.Fatal(err)
	}

	opts := base
	opts.StoreDir = t.TempDir()
	runInterrupted(t, "german", opts, baseline.Stats.DistinctStates/2)

	opts.CheckpointStop = 0
	opts.Workers = 4
	resumed, err := check.Resume(compileSample(t, "german"), opts)
	if err != nil {
		t.Fatalf("resuming a serial checkpoint with workers: %v", err)
	}
	if baseline.Stats.DistinctStates != resumed.Stats.DistinctStates {
		t.Errorf("distinct states diverged: baseline %d, resumed %d",
			baseline.Stats.DistinctStates, resumed.Stats.DistinctStates)
	}
}

// TestResumeSemanticsMismatch pins that resuming under different semantic
// options fails with an error naming the differing field, and that knob
// fields are not semantic.
func TestResumeSemanticsMismatch(t *testing.T) {
	prog := compileSample(t, "german")
	opts := check.Options{Mode: check.DelayBounded, Bound: 1, StoreDir: t.TempDir()}
	runInterrupted(t, "german", opts, 500)

	bad := opts
	bad.CheckpointStop = 0
	bad.Bound = 2
	if _, err := check.Resume(prog, bad); err == nil || !strings.Contains(err.Error(), "bound") {
		t.Errorf("resume with a different bound: want an error naming bound, got %v", err)
	}

	bad = opts
	bad.CheckpointStop = 0
	bad.POR = true
	if _, err := check.Resume(prog, bad); err == nil || !strings.Contains(err.Error(), "partial-order") {
		t.Errorf("resume with POR flipped: want an error naming partial-order reduction, got %v", err)
	}
}

// TestResumeProgramIDMismatch pins the program-identity check.
func TestResumeProgramIDMismatch(t *testing.T) {
	prog := compileSample(t, "german")
	opts := check.Options{Mode: check.DelayBounded, Bound: 1, StoreDir: t.TempDir(), ProgramID: "sha256:aaaa"}
	runInterrupted(t, "german", opts, 500)

	opts.CheckpointStop = 0
	opts.ProgramID = "sha256:bbbb"
	if _, err := check.Resume(prog, opts); err == nil || !strings.Contains(err.Error(), "different program") {
		t.Errorf("resume with a different program id: want identity error, got %v", err)
	}
}

// TestResumeRepeatedCheckpoints drives a run through several
// checkpoint/resume cycles — each resumed session suspends again — and pins
// that the final totals still equal the uninterrupted run's.
func TestResumeRepeatedCheckpoints(t *testing.T) {
	prog := compileSample(t, "german")
	base := check.Options{Mode: check.DelayBounded, Bound: 1}
	baseline, err := check.Explore(prog, base)
	if err != nil {
		t.Fatal(err)
	}
	total := baseline.Stats.DistinctStates

	opts := base
	opts.StoreDir = t.TempDir()
	res := runInterrupted(t, "german", opts, total/4)
	for _, frac := range []int{2, 4 * total} { // suspend again at half, then run out
		opts.CheckpointStop = 0
		if frac <= 4 {
			opts.CheckpointStop = total / frac
		}
		res, err = check.Resume(prog, opts)
		if err != nil {
			t.Fatalf("resume (stop at %d): %v", opts.CheckpointStop, err)
		}
	}
	if res.Checkpointed {
		t.Fatal("final resume should run to completion, not suspend")
	}
	assertEquivalent(t, baseline, res)
}

// TestDepthSpillEquivalence pins the ISSUE hard constraint: a german(3)
// depth-mode run with the per-shard memory cap far below the state count
// must complete by spilling to chunk files, with verdict and distinct-state
// count identical to the unbounded in-memory run.
func TestDepthSpillEquivalence(t *testing.T) {
	prog := compileSample(t, "german")
	opts := check.Options{Mode: check.DepthBounded, Bound: 9}
	baseline, err := check.Explore(prog, opts)
	if err != nil {
		t.Fatal(err)
	}

	opts.StoreDir = t.TempDir()
	opts.StoreShards = 4
	opts.StoreMemPerShard = 64 // 256 resident entries, far below the state count
	spilled, err := check.Explore(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if baseline.Stats.DistinctStates <= 4*64 {
		t.Fatalf("state count %d not above the memory cap; raise the bound", baseline.Stats.DistinctStates)
	}
	if spilled.StoreStats == nil || spilled.StoreStats.Chunks == 0 {
		t.Fatalf("expected spilled chunk files, got store stats %+v", spilled.StoreStats)
	}
	if spilled.StoreErr != nil {
		t.Fatalf("store error during spill run: %v", spilled.StoreErr)
	}
	if baseline.Stats.DistinctStates != spilled.Stats.DistinctStates {
		t.Errorf("spill run diverged: baseline %d states, spilled %d",
			baseline.Stats.DistinctStates, spilled.Stats.DistinctStates)
	}
	if baseline.Errored() != spilled.Errored() {
		t.Errorf("verdict diverged: baseline errored=%v, spilled errored=%v", baseline.Errored(), spilled.Errored())
	}
}

// TestResumeWithSpill combines both halves of the tentpole: the first
// session spills under a tight memory cap, checkpoints, and the resumed
// session (same cap) reopens the chunk files and finishes with the
// uninterrupted totals.
func TestResumeWithSpill(t *testing.T) {
	prog := compileSample(t, "german")
	base := check.Options{Mode: check.DelayBounded, Bound: 1}
	baseline, err := check.Explore(prog, base)
	if err != nil {
		t.Fatal(err)
	}

	opts := base
	opts.StoreDir = t.TempDir()
	opts.StoreShards = 4
	opts.StoreMemPerShard = 64
	partial := runInterrupted(t, "german", opts, baseline.Stats.DistinctStates/2)
	if partial.StoreStats == nil || partial.StoreStats.Chunks == 0 {
		t.Fatalf("expected the interrupted session to have spilled, got %+v", partial.StoreStats)
	}

	opts.CheckpointStop = 0
	resumed, err := check.Resume(prog, opts)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	assertEquivalent(t, baseline, resumed)
}

// TestProgressThrottle pins the ProgressEvery contract: the default batches
// callbacks, an explicit interval is honored, and a negative interval
// reports every state.
func TestProgressThrottle(t *testing.T) {
	prog := compileSample(t, "german")
	run := func(every int) (calls, states int) {
		res, err := check.Explore(prog, check.Options{
			Mode:          check.DelayBounded,
			Bound:         1,
			ProgressEvery: every,
			Progress:      func(int) { calls++ },
		})
		if err != nil {
			t.Fatal(err)
		}
		return calls, res.Stats.DistinctStates
	}

	calls, states := run(1000)
	if want := states / 1000; calls != want {
		t.Errorf("ProgressEvery=1000: %d calls over %d states, want %d", calls, states, want)
	}
	calls, states = run(-1)
	if calls != states {
		t.Errorf("ProgressEvery=-1: %d calls over %d states, want one per state", calls, states)
	}
	calls, states = run(0)
	if want := states / 4096; calls != want {
		t.Errorf("default throttle: %d calls over %d states, want %d", calls, states, want)
	}
}

package check

import (
	"encoding/binary"
	"hash/maphash"
	"sync"
	"sync/atomic"

	"pgo/internal/core"
	"pgo/internal/store"
)

// The explorers' visited dictionaries. In the default hashed-fingerprint
// scheme they are backed by the tiered store (internal/store): per-shard
// in-memory maps that spill to append-only chunk files once Options.StoreDir
// is set and a shard outgrows Options.StoreMemPerShard, so exploration
// memory stays bounded by the cap instead of the state count. Composite keys
// (state fingerprint, scheduler context, fault budget used) are folded into
// one 128-bit store key with fixed constants — folded keys persist across
// processes, which checkpoint/resume relies on.
//
// The exact-fingerprint auditing scheme (Options.ExactFingerprints) keys by
// variable-length canonical encodings the 128-bit store cannot carry; it
// keeps sharded in-memory maps as an escape hatch and is serialized whole
// into checkpoints instead of spilling.

const pshards = 64

// pseed hashes exact-mode string keys onto in-memory shards. Per-process
// seeding is fine here: exact-mode dictionaries never persist by shard.
var pseed = maphash.MakeSeed()

// shard maps a state key to its in-memory dictionary shard. Hashed keys are
// already uniformly distributed; exact keys are hashed first.
func (k StateKey) shard() int {
	if k.exact != "" {
		return int(maphash.String(pseed, k.exact) % pshards)
	}
	return int(k.hash.Lo % pshards)
}

// fold64 mixes one key half with its qualifiers: two rounds of xor-multiply
// chaining (the splitmix64 constants) and a murmur-style tail so every input
// bit reaches every output bit. Must stay fixed forever — folded keys live
// in on-disk stores (the scheme is covered by core.FingerprintScheme).
const (
	foldM1 = 0x9e3779b97f4a7c15
	foldM2 = 0xbf58476d1ce4e5b9
)

func fold64(a, b, c uint64) uint64 {
	h := (a ^ b*foldM1) * foldM2
	h = (h ^ c*foldM2) * foldM1
	h ^= h >> 32
	h *= 0xff51afd7ed558ccd
	h ^= h >> 29
	return h
}

// foldKey folds (state fingerprint, scheduler-context qualifier, faults
// used) into a 128-bit store key. The halves stay independent hashes: each
// folds its own input halves, with distinct fault tags.
func foldKey(state core.Fp, aux core.Fp, faults int) store.Key {
	return store.Key{
		Hi: fold64(state.Hi, aux.Hi, uint64(faults)),
		Lo: fold64(state.Lo, aux.Lo, uint64(faults)^foldM1),
	}
}

// cursorAux encodes the round-robin explorer's cursor as a scheduler-context
// qualifier, mirroring the delay explorer's stack digests.
func cursorAux(cursor int, exact bool) stackKey {
	if exact {
		var b [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(b[:], uint64(cursor))
		return stackKey{exact: string(b[:n])}
	}
	u := uint64(cursor)
	return stackKey{hash: core.Fp{Hi: u, Lo: u}}
}

// stateSet is the distinct-state set shared by the serial and parallel
// explorers. add reports whether fp was new and, when new, its unique
// position in the discovery order — the monotone add-and-count the parallel
// MaxStates cap and progress reporting rely on.
type stateSet struct {
	st     *store.Store // hashed mode
	count  atomic.Int64
	exact  bool
	shards [pshards]struct {
		mu sync.Mutex
		m  map[string]struct{}
	}
}

func newStateSet(st *store.Store, exact bool) *stateSet {
	s := &stateSet{st: st, exact: exact}
	if exact {
		for i := range s.shards {
			s.shards[i].m = map[string]struct{}{}
		}
	}
	return s
}

func (s *stateSet) add(fp StateKey) (isNew bool, count int) {
	if s.exact {
		sh := &s.shards[fp.shard()]
		sh.mu.Lock()
		_, ok := sh.m[fp.exact]
		if !ok {
			sh.m[fp.exact] = struct{}{}
		}
		sh.mu.Unlock()
		if ok {
			return false, 0
		}
	} else if !s.st.Claim(store.Key{Hi: fp.hash.Hi, Lo: fp.hash.Lo}, nil) {
		return false, 0
	}
	return true, int(s.count.Add(1))
}

// minDelayMap is the delay-bounded and round-robin visited dictionary:
// (state, scheduler context, faults used) -> the smallest delay count the
// node was expanded with. A claim succeeds when the key is new or the
// proposed delay count is strictly smaller — a revisit with at least as many
// delays used can only explore a subset of schedules.
type minDelayMap struct {
	st     *store.Store // hashed mode
	exact  bool
	shards [pshards]struct {
		mu sync.Mutex
		m  map[exactVisitedKey]int
	}
}

type exactVisitedKey struct {
	state  string
	aux    string
	faults int
}

func newMinDelayMap(st *store.Store, exact bool) *minDelayMap {
	v := &minDelayMap{st: st, exact: exact}
	if exact {
		for i := range v.shards {
			v.shards[i].m = map[exactVisitedKey]int{}
		}
	}
	return v
}

// minDelayMerge is the store merge for min-delay claims: values are single
// uvarints, smaller wins.
func minDelayMerge(existing, proposed []byte) ([]byte, bool) {
	e, _ := binary.Uvarint(existing)
	p, _ := binary.Uvarint(proposed)
	if p < e {
		return proposed, true
	}
	return existing, false
}

// uvarintVals pre-encodes small uvarint store values (delay counts, depths)
// so hot-path claims hand the store pointers into static memory and never
// allocate; larger values fall back to a heap encode.
var uvarintVals = func() (t [4096][]byte) {
	for i := range t {
		t[i] = binary.AppendUvarint(nil, uint64(i))
	}
	return
}()

func uvarintVal(v int) []byte {
	if v >= 0 && v < len(uvarintVals) {
		return uvarintVals[v]
	}
	return binary.AppendUvarint(nil, uint64(v))
}

func (v *minDelayMap) claim(state StateKey, aux stackKey, faults, delays int) bool {
	if v.exact {
		sh := &v.shards[state.shard()]
		key := exactVisitedKey{state.exact, aux.exact, faults}
		sh.mu.Lock()
		defer sh.mu.Unlock()
		if prev, ok := sh.m[key]; ok && prev <= delays {
			return false
		}
		sh.m[key] = delays
		return true
	}
	return v.st.Claim(foldKey(state.hash, aux.hash, faults), uvarintVal(delays))
}

// get returns the recorded minimum delay count for the key, if any.
func (v *minDelayMap) get(state StateKey, aux stackKey, faults int) (int, bool) {
	if v.exact {
		sh := &v.shards[state.shard()]
		key := exactVisitedKey{state.exact, aux.exact, faults}
		sh.mu.Lock()
		defer sh.mu.Unlock()
		prev, ok := sh.m[key]
		return prev, ok
	}
	b, ok := v.st.Get(foldKey(state.hash, aux.hash, faults))
	if !ok {
		return 0, false
	}
	u, _ := binary.Uvarint(b)
	return int(u), true
}

// depthVisited is the depth-bounded visited dictionary: (state, faults used)
// -> an antichain of (depth, sleeping ids) records under (depth ≤, sleep ⊆).
// A claim succeeds when no existing record covers the proposal (smaller-or-
// equal depth with a subset of sleepers); it then drops the records the
// proposal dominates. The depth search is serial, so the exact-mode map is
// unlocked (the store locks per shard regardless).
type depthVisited struct {
	st    *store.Store // hashed mode
	exact bool
	m     map[exactDVKey][]dvVal
}

type exactDVKey struct {
	state  string
	faults int
}

// dvVal is one exact-mode antichain record.
type dvVal struct {
	depth int
	sleep []core.MachineID
}

func newDepthVisited(st *store.Store, exact bool) *depthVisited {
	v := &depthVisited{st: st, exact: exact}
	if exact {
		v.m = map[exactDVKey][]dvVal{}
	}
	return v
}

// Store values are concatenated records: uvarint depth, uvarint id count,
// then the sorted sleeping ids as uvarints.

func appendDVRecord(buf []byte, depth int, ids []core.MachineID) []byte {
	buf = binary.AppendUvarint(buf, uint64(depth))
	buf = binary.AppendUvarint(buf, uint64(len(ids)))
	for _, id := range ids {
		buf = binary.AppendUvarint(buf, uint64(id))
	}
	return buf
}

// dvDecode reads one record, returning the remainder. ids is nil for the
// common empty sleep set (POR off), so those claims never allocate here.
func dvDecode(b []byte) (depth uint64, ids []uint64, rest []byte) {
	depth, n := binary.Uvarint(b)
	b = b[n:]
	cnt, n := binary.Uvarint(b)
	b = b[n:]
	if cnt > 0 {
		ids = make([]uint64, cnt)
		for i := range ids {
			ids[i], n = binary.Uvarint(b)
			b = b[n:]
		}
	}
	return depth, ids, b
}

// uidsSubset is idsSubset over decoded sorted id lists.
func uidsSubset(a, b []uint64) bool {
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j >= len(b) || b[j] != x {
			return false
		}
		j++
	}
	return true
}

// dvMerge merges a single proposed record into a stored antichain.
func dvMerge(existing, proposed []byte) ([]byte, bool) {
	pd, pids, _ := dvDecode(proposed)
	for rest := existing; len(rest) > 0; {
		d, ids, r := dvDecode(rest)
		if d <= pd && uidsSubset(ids, pids) {
			return existing, false
		}
		rest = r
	}
	out := make([]byte, 0, len(existing)+len(proposed))
	for rest := existing; len(rest) > 0; {
		d, ids, r := dvDecode(rest)
		if !(pd <= d && uidsSubset(pids, ids)) {
			out = append(out, rest[:len(rest)-len(r)]...)
		}
		rest = r
	}
	out = append(out, proposed...)
	return out, true
}

func (v *depthVisited) claim(state StateKey, faults, depth int, sleep []core.MachineID) bool {
	if v.exact {
		key := exactDVKey{state.exact, faults}
		recs := v.m[key]
		for _, r := range recs {
			if r.depth <= depth && idsSubset(r.sleep, sleep) {
				return false
			}
		}
		kept := recs[:0]
		for _, r := range recs {
			if !(depth <= r.depth && idsSubset(sleep, r.sleep)) {
				kept = append(kept, r)
			}
		}
		v.m[key] = append(kept, dvVal{depth: depth, sleep: sleep})
		return true
	}
	var rec []byte
	if len(sleep) == 0 {
		// The POR-off common case: a record is just (depth, 0), served from
		// the static table so the claim never allocates.
		rec = dvEmptyRecs(depth)
	} else {
		rec = appendDVRecord(make([]byte, 0, 2+2*len(sleep)), depth, sleep)
	}
	return v.st.Claim(foldKey(state.hash, core.Fp{}, faults), rec)
}

var dvEmptyRecTab = func() (t [4096][]byte) {
	for i := range t {
		t[i] = appendDVRecord(nil, i, nil)
	}
	return
}()

func dvEmptyRecs(depth int) []byte {
	if depth >= 0 && depth < len(dvEmptyRecTab) {
		return dvEmptyRecTab[depth]
	}
	return appendDVRecord(nil, depth, nil)
}

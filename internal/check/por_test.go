package check_test

import (
	"fmt"
	"io"
	"os"
	"sort"
	"testing"

	"pgo/internal/check"
	"pgo/internal/compile"
	"pgo/internal/core"
	"pgo/internal/ir"
	"pgo/internal/live"
	"pgo/internal/psamples"
	"pgo/internal/trace"
)

// crossCheckPrograms returns every shipped sample plus testdata/relay.p,
// the corpus the POR cross-check runs over.
func crossCheckPrograms(t *testing.T) map[string]*ir.Program {
	t.Helper()
	progs := map[string]*ir.Program{}
	for _, s := range psamples.All() {
		progs[s.Name] = compileSample(t, s.Name)
	}
	src, err := os.ReadFile("../../testdata/relay.p")
	if err != nil {
		t.Fatalf("reading relay sample: %v", err)
	}
	prog, diags, err := compile.Source("relay", string(src))
	if err != nil {
		t.Fatalf("compile relay: %v\n%s", err, diags.String())
	}
	progs["relay"] = prog
	return progs
}

// violationSet projects a result's violations onto a canonical, order- and
// multiplicity-insensitive summary: the set of (error kind, machine id,
// machine type, state). The reduced search prunes interleavings, so it may
// encounter the same error state along fewer paths, but every distinct error
// state reachable without reduction must still be reported with reduction.
func violationSet(res *check.Result) []string {
	set := map[string]bool{}
	for i := range res.Violations {
		e := res.Violations[i].Err
		set[fmt.Sprintf("%v/#%d/%s/%s", e.Kind, e.Machine, e.Type, e.State)] = true
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// liveSet projects liveness violations onto a canonical set, dropping the
// witnessing SCC (the reduced graph has fewer nodes, so witnesses differ).
func liveSet(prog *ir.Program, res *check.Result) []string {
	set := map[string]bool{}
	for _, v := range live.Check(prog, res.Graph, live.Options{}) {
		set[fmt.Sprintf("%v/#%d/%s/%s", v.Kind, v.Machine, v.Type, v.EvName)] = true
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TestPORCrossCheck runs every shipped sample (plus relay.p) with partial-
// order reduction off and on and asserts the verdicts agree exactly: same
// ok/violation outcome and the same set of distinct error states. Every
// counterexample trace found under reduction must also replay cleanly.
//
// DelayBounded bound 2 is pverify's default configuration, so every program
// is cross-checked there; the cheaper programs are additionally cross-checked
// under the depth-bounded and round-robin explorers, and — pinning the
// reduction's two lifted gates — under chaos (a drop-fault budget, the
// environment-machine composition) and with graph collection (the strict C3
// proviso), where the liveness verdicts (live.Check) and the control-state
// coverage (CoverageOf) must also agree.
func TestPORCrossCheck(t *testing.T) {
	progs := crossCheckPrograms(t)

	// Samples small enough to sweep across every mode and dimension. The
	// german family and the full usbhub device model are restricted to
	// cheaper configurations to keep runtimes reasonable (german under a
	// delay-2 fault budget alone overflows a 2M-state cap).
	small := map[string]bool{
		"pingpong": true, "elevator": true, "elevator-buggy": true,
		"switchled": true, "switchled-buggy": true, "ring": true,
		"ring-buggy": true, "boundedbuffer": true, "usb-hsm": true,
		"usb-psm3": true, "usb-psm2": true, "relay": true,
	}

	type cfg struct {
		mode  check.Mode
		bound int
		chaos bool // one drop fault: the chaos x POR dimension
		graph bool // collect the graph: the liveness/coverage x POR dimension
	}
	for name, prog := range progs {
		cfgs := []cfg{
			{mode: check.DelayBounded, bound: 2},
			{mode: check.DelayBounded, bound: 2, graph: true},
		}
		if small[name] {
			cfgs = append(cfgs,
				cfg{mode: check.DepthBounded, bound: 12},
				cfg{mode: check.RoundRobinDelay, bound: 2},
				cfg{mode: check.DelayBounded, bound: 2, chaos: true},
				cfg{mode: check.DepthBounded, bound: 12, chaos: true},
				cfg{mode: check.DepthBounded, bound: 12, graph: true},
			)
		} else {
			// The german family still gets a chaos dimension at the delay
			// budget its fault-extended space fits under.
			cfgs = append(cfgs, cfg{mode: check.DelayBounded, bound: 1, chaos: true})
		}
		for _, c := range cfgs {
			c := c
			label := fmt.Sprintf("%s/%v-%d", name, c.mode, c.bound)
			if c.chaos {
				label += "-chaos"
			}
			if c.graph {
				label += "-graph"
			}
			t.Run(label, func(t *testing.T) {
				if testing.Short() && (name == "german" || name == "german-buggy") {
					t.Skip("large state space")
				}
				// The depth-12 spaces dwarf the delay-2 ones; under -short
				// (the CI race leg) the delay-2 legs alone carry the chaos
				// and graph dimensions.
				if testing.Short() && c.mode == check.DepthBounded {
					t.Skip("large state space under -race")
				}
				run := func(por bool) *check.Result {
					opts := check.Options{
						Mode: c.mode, Bound: c.bound, MaxStates: 2_000_000, POR: por,
						CollectGraph: c.graph,
					}
					if c.chaos {
						opts.Faults = 1
						opts.FaultKinds = check.DropFaults
					}
					res, err := check.Explore(prog, opts)
					if err != nil {
						t.Fatal(err)
					}
					if res.Stats.Truncated {
						t.Fatalf("truncated at MaxStates; cross-check needs a complete search")
					}
					return res
				}
				off := run(false)
				on := run(true)
				if off.Errored() != on.Errored() {
					t.Fatalf("verdict mismatch: POR off errored=%v, POR on errored=%v", off.Errored(), on.Errored())
				}
				vOff, vOn := violationSet(off), violationSet(on)
				if !equalStrings(vOff, vOn) {
					t.Fatalf("violation sets differ:\n  off: %v\n  on:  %v", vOff, vOn)
				}
				if on.Stats.DistinctStates > off.Stats.DistinctStates {
					t.Errorf("POR explored more states than the full search: %d > %d",
						on.Stats.DistinctStates, off.Stats.DistinctStates)
				}
				if c.graph {
					lOff, lOn := liveSet(prog, off), liveSet(prog, on)
					if !equalStrings(lOff, lOn) {
						t.Errorf("liveness verdicts differ:\n  off: %v\n  on:  %v", lOff, lOn)
					}
					covOff := check.CoverageOf(prog, off.Graph)
					covOn := check.CoverageOf(prog, on.Graph)
					for _, m := range prog.Machines {
						offUnv := covOff.Unvisited(prog, m.ID)
						onUnv := covOn.Unvisited(prog, m.ID)
						if fmt.Sprint(offUnv) != fmt.Sprint(onUnv) {
							t.Errorf("%s coverage differs: off unvisited %v, on unvisited %v",
								m.Name, offUnv, onUnv)
						}
					}
				}
				for i := range on.Violations {
					if err := trace.Render(prog, &on.Violations[i], io.Discard); err != nil {
						t.Errorf("POR trace %d does not replay: %v", i, err)
					}
				}
			})
		}
	}
}

// TestPORMatrixVerdicts is the property-style matrix over the public API:
// POR on/off × hashed/exact fingerprints × serial/parallel workers × fault
// budget 0/1 must all agree per fault budget on the verdict and the set of
// distinct error states, and every counterexample trace must replay. (Exact
// per-statistic equality between the serial and one-worker parallel
// explorers is pinned separately by the white-box
// TestSerialParallelStatsEquivalence.)
func TestPORMatrixVerdicts(t *testing.T) {
	for _, name := range []string{"pingpong", "elevator-buggy", "switchled-buggy", "ring-buggy", "boundedbuffer"} {
		name := name
		t.Run(name, func(t *testing.T) {
			prog := compileSample(t, name)
			type verdict struct {
				cfg  string
				errd bool
				set  []string
			}
			// Chaos enlarges the reachable error set, so verdicts are
			// compared within each fault budget, not across.
			// Exact fingerprints are orthogonal to the concurrency the race
			// leg is after (TestHashedExactSameDistinctStates keeps them
			// raced); -short halves the matrix by dropping them.
			exacts := []bool{false, true}
			if testing.Short() {
				exacts = exacts[:1]
			}
			for _, faults := range []int{0, 1} {
				var verdicts []verdict
				for _, por := range []bool{false, true} {
					for _, exact := range exacts {
						for _, workers := range []int{1, 4} {
							res, err := check.Explore(prog, check.Options{
								Mode: check.DelayBounded, Bound: 2, MaxStates: 2_000_000,
								POR: por, ExactFingerprints: exact, Workers: workers,
								Faults: faults,
							})
							if err != nil {
								t.Fatal(err)
							}
							cfg := fmt.Sprintf("por=%v exact=%v workers=%d faults=%d", por, exact, workers, faults)
							if res.Stats.Truncated {
								t.Fatalf("%s: truncated", cfg)
							}
							for i := range res.Violations {
								if err := trace.Render(prog, &res.Violations[i], io.Discard); err != nil {
									t.Errorf("%s: trace %d does not replay: %v", cfg, i, err)
								}
							}
							verdicts = append(verdicts, verdict{cfg, res.Errored(), violationSet(res)})
						}
					}
				}
				base := verdicts[0]
				for _, v := range verdicts[1:] {
					if v.errd != base.errd || !equalStrings(v.set, base.set) {
						t.Errorf("verdict diverges:\n  %s: errored=%v %v\n  %s: errored=%v %v",
							base.cfg, base.errd, base.set, v.cfg, v.errd, v.set)
					}
				}
			}
		})
	}
}

// TestPORReductionPinned pins the reduction the ample-set machinery achieves
// on the two acceptance benchmarks, german(3) and the usbhub HSM, so a
// regression that silently turns the reducer into a no-op fails loudly. The
// ceilings carry slack over the measured ratios; exploration is
// deterministic, so the "strictly fewer" half of each pin is exact.
func TestPORReductionPinned(t *testing.T) {
	if testing.Short() {
		t.Skip("large state space")
	}
	for _, tc := range []struct {
		name       string
		mode       check.Mode
		bound      int
		maxPctSt   int // ceiling for 100*on.states/off.states
		maxPctTr   int // ceiling for 100*on.transitions/off.transitions (0 = no pin)
		wantStrict bool
	}{
		// pverify defaults (delay-bounded, bound 2): the acceptance pins.
		{"german", check.DelayBounded, 2, 100, 0, true},
		{"usb-hsm", check.DelayBounded, 2, 97, 0, true},
		// Depth-bounded german is where the reduction bites hardest:
		// measured 47% of the states and 13% of the transitions.
		{"german", check.DepthBounded, 14, 60, 20, true},
	} {
		t.Run(fmt.Sprintf("%s/%v-%d", tc.name, tc.mode, tc.bound), func(t *testing.T) {
			prog := compileSample(t, tc.name)
			run := func(por bool) check.Stats {
				res, err := check.Explore(prog, check.Options{
					Mode: tc.mode, Bound: tc.bound, MaxStates: 2_000_000, POR: por,
				})
				if err != nil {
					t.Fatal(err)
				}
				if res.Stats.Truncated {
					t.Fatalf("truncated at MaxStates")
				}
				return res.Stats
			}
			off := run(false)
			on := run(true)
			t.Logf("states %d -> %d, transitions %d -> %d, reduced=%d skips=%d",
				off.DistinctStates, on.DistinctStates, off.Transitions, on.Transitions,
				on.ReducedStates, on.AmpleSkips)
			if tc.wantStrict && on.DistinctStates >= off.DistinctStates {
				t.Errorf("want strictly fewer states with POR: %d vs %d", on.DistinctStates, off.DistinctStates)
			}
			if 100*on.DistinctStates > tc.maxPctSt*off.DistinctStates {
				t.Errorf("state reduction regressed: %d/%d exceeds %d%%", on.DistinctStates, off.DistinctStates, tc.maxPctSt)
			}
			if tc.maxPctTr > 0 && 100*on.Transitions > tc.maxPctTr*off.Transitions {
				t.Errorf("transition reduction regressed: %d/%d exceeds %d%%", on.Transitions, off.Transitions, tc.maxPctTr)
			}
			if on.ReducedStates == 0 {
				t.Errorf("reducer accepted no ample sets")
			}
		})
	}
}

// TestPORDisabledReason pins the conditions under which a requested
// reduction is forced off — after the chaos and graph gates were lifted,
// only host foreign functions and fine-grained scheduling remain — and
// that each carries a human-readable reason (surfaced by pverify's notice
// and its JSON por_disabled_reason field).
func TestPORDisabledReason(t *testing.T) {
	if r := (&check.Options{}).PORDisabledReason(); r != "" {
		t.Errorf("default options: unexpected reason %q", r)
	}
	for _, o := range []check.Options{
		{CollectGraph: true},
		{Faults: 2},
		{CollectGraph: true, Faults: 1},
	} {
		if r := (&o).PORDisabledReason(); r != "" {
			t.Errorf("%+v: POR should stay active, got reason %q", o, r)
		}
	}
	if r := (&check.Options{FineGrained: true}).PORDisabledReason(); r == "" {
		t.Error("fine-grained mode should disable POR with a reason")
	}
	if r := (&check.Options{Foreign: core.ForeignMap{}}).PORDisabledReason(); r == "" {
		t.Error("a foreign environment should disable POR with a reason")
	}
}

// Package check implements systematic testing of P programs (§5 of the
// paper): explicit-state exploration of the closed program's operational
// semantics with the two bounding techniques the paper uses — depth
// bounding and delay-bounded scheduling with a causal-order delaying
// scheduler — plus the safety checks of Figure 6.
//
// The explorer interprets internal/core directly (the role Zing plays in
// the paper). Context switches happen only after sends and machine
// creations, the paper's atomicity reduction.
package check

import (
	"fmt"
	"path/filepath"
	"time"

	"pgo/internal/core"
	"pgo/internal/ir"
	"pgo/internal/store"
)

// Mode selects the bounding strategy.
type Mode int

const (
	// DepthBounded explores all interleavings up to a macro-step depth.
	DepthBounded Mode = iota
	// DelayBounded explores the schedules of the causal delaying scheduler
	// within a delay budget.
	DelayBounded
	// RoundRobinDelay is an ablation: a delaying scheduler whose base order
	// is round-robin over machine ids instead of the causal stack. The
	// paper's claim is that the causal order finds bugs at lower delay
	// budgets; this mode provides the comparison point.
	RoundRobinDelay
)

func (m Mode) String() string {
	switch m {
	case DepthBounded:
		return "depth-bounded"
	case DelayBounded:
		return "delay-bounded"
	case RoundRobinDelay:
		return "round-robin-delay"
	default:
		return "mode(?)"
	}
}

// Options configures an exploration.
type Options struct {
	Mode Mode
	// Bound is the depth bound (macro steps) or the delay budget.
	Bound int
	// MaxStates stops the search after this many distinct global states
	// (0 = unlimited). The search result is then marked truncated.
	MaxStates int
	// MaxLocalSteps bounds the small steps inside one atomic handler; an
	// overrun is a divergence violation (0 = core.DefaultMaxSteps).
	MaxLocalSteps int
	// StopAtFirstError ends the search at the first violation.
	StopAtFirstError bool
	// CollectGraph retains the explored state graph for liveness analysis.
	CollectGraph bool
	// Foreign supplies host foreign functions usable during verification
	// (pure data-path helpers); model bodies still take precedence.
	Foreign core.ForeignEnv
	// Progress, if non-nil, receives the running distinct-state count, at
	// most once per ProgressEvery distinct states.
	Progress func(states int)
	// ProgressEvery is the distinct-state interval between Progress calls:
	// 0 picks a default (4096), negative reports every distinct state. The
	// throttle keeps -progress runs off the exploration hot path.
	ProgressEvery int
	// StoreDir enables the tiered visited store's disk tier: shards of the
	// visited dictionaries spill to append-only chunk files under this
	// directory once they exceed StoreMemPerShard entries, bounding resident
	// memory. "" keeps every shard in memory. Requires the default hashed
	// fingerprint scheme; under ExactFingerprints the dictionaries stay
	// in-memory maps regardless (the auditing escape hatch).
	StoreDir string
	// StoreMemPerShard caps in-memory entries per store shard before a spill
	// (0 = never spill on size). Only meaningful with StoreDir set.
	StoreMemPerShard int
	// StoreShards is the store shard count (0 = default 64), rounded up to a
	// power of two.
	StoreShards int
	// CheckpointEvery writes a checkpoint under StoreDir every N distinct
	// states discovered (0 = no periodic checkpoints). Checkpointing requires
	// StoreDir and is incompatible with CollectGraph and Foreign.
	CheckpointEvery int
	// CheckpointStop suspends the search once N distinct states have been
	// discovered: a final checkpoint is written and the run ends with
	// Result.Checkpointed set (the CI kill-and-resume hook, and a way to
	// slice a long run into bounded sessions). 0 disables.
	CheckpointStop int
	// CheckpointRequest, if non-nil, is polled between search nodes; when it
	// returns true a checkpoint is written and the search suspends as with
	// CheckpointStop. pverify points it at a flag its SIGINT handler sets.
	CheckpointRequest func() bool
	// ProgramID identifies the program being checked (pverify uses the
	// SHA-256 of the source text). Recorded in checkpoint manifests; Resume
	// refuses a checkpoint whose ProgramID differs.
	ProgramID string
	// DisableDedup turns off the ⊕ queue dedup append (flooding ablation).
	DisableDedup bool
	// FineGrained also treats every event dequeue as a scheduling point,
	// ablating §5's atomicity reduction.
	FineGrained bool
	// Workers > 1 runs the delay-bounded search with that many goroutines
	// (0 or 1 = serial; negative = GOMAXPROCS). Only DelayBounded mode
	// parallelizes; other modes ignore Workers.
	Workers int
	// ExactFingerprints keys the visited and distinct-state sets by the
	// full canonical state encoding instead of its 128-bit hash. Slower and
	// much heavier on memory, but immune to hash collisions — an auditing
	// escape hatch (pverify -exact-fp). Both modes report identical
	// DistinctStates absent a collision.
	ExactFingerprints bool
	// POR enables partial-order reduction (por.go): nodes whose next
	// machine's macro steps provably commute with the rest of the system
	// expand only that machine. Verdict-preserving for the safety checks.
	// Composes with chaos (Faults > 0): faults are modeled as actions of an
	// implicit environment machine with their own independence conditions.
	// Composes with CollectGraph runs (liveness, coverage): the reducer then
	// additionally enforces the C3 cycle proviso, so every cycle in the
	// reduced graph retains a fully expanded node and lasso/coverage
	// analyses stay sound. Silently inactive under host foreign functions
	// (outside the static analysis) and the fine-grained ablation
	// (sub-macro-step scheduling points); see PORDisabledReason.
	POR bool
	// Faults is the chaos-mode fault budget: the maximum number of injected
	// environment faults (spontaneous crash, message drop, duplicate
	// delivery — see faults.go) along any single schedule. 0 disables fault
	// injection. Mirrors the delay budget: the explorers branch over every
	// fault placement within the budget.
	Faults int
	// FaultKinds selects which fault kinds chaos mode injects; the zero
	// value selects AllFaults. Ignored when Faults is 0.
	FaultKinds FaultSet
}

// StateKey identifies a distinct global configuration in the explorers'
// visited and distinct-state maps: the 128-bit hashed fingerprint by
// default, or the exact canonical serialization when
// Options.ExactFingerprints is set (hash left zero). A run uses one scheme
// throughout, so keys from the two schemes never mix in one map.
type StateKey struct {
	hash  core.Fp
	exact string
}

// keyOf fingerprints g under the configured scheme. Both Global.Hash and
// Global.Fingerprint cache per Global, so calling keyOf twice on the same
// unmutated Global (dedup + graph interning) computes the encoding once.
func (e *explorer) keyOf(g *core.Global) StateKey {
	if e.opts.ExactFingerprints {
		return StateKey{exact: g.Fingerprint()}
	}
	return StateKey{hash: g.Hash()}
}

// TraceStep is one scheduling decision, sufficient to replay a violation.
// A step with Fault != FaultNone is an injected environment fault (chaos
// mode), not a machine transition: Machine identifies the faulted machine,
// Event the dropped or duplicated entry, and Outcome/Delays/Choices are
// meaningless.
type TraceStep struct {
	Machine core.MachineID
	Type    string // machine type name
	Delays  int    // delays applied before this step (delay-bounded mode)
	Choices []bool // `*` outcomes consumed during the step
	Outcome core.OutKind
	Event   ir.EventID // sent event, when Outcome == OutSend; faulted event for drop/dup
	HasEv   bool
	Fault   FaultKind // FaultNone for ordinary steps
}

func (s TraceStep) String() string {
	if s.Fault != FaultNone {
		return fmt.Sprintf("%s#%d fault:%s", s.Type, s.Machine, s.Fault)
	}
	d := ""
	if s.Delays > 0 {
		d = fmt.Sprintf(" after %d delays", s.Delays)
	}
	return fmt.Sprintf("%s#%d %s%s", s.Type, s.Machine, s.Outcome, d)
}

// Violation is a safety violation with its reproducing schedule.
type Violation struct {
	Err   *core.Err
	Trace []TraceStep
}

func (v *Violation) String() string {
	return fmt.Sprintf("%v (schedule length %d)", v.Err, len(v.Trace))
}

// Stats summarizes an exploration.
type Stats struct {
	DistinctStates int // distinct global configurations discovered
	Transitions    int // macro steps executed
	SearchNodes    int // scheduler-state-qualified nodes visited
	FaultSteps     int // fault successors produced (chaos mode)
	ReducedStates  int // search nodes expanded with a singleton ample set (POR)
	AmpleSkips     int // enabled machines / schedule options pruned at reduced nodes (POR)
	ClaimRaces     int // parallel POR ample claims lost to a concurrent worker (always 0 serially)
	Workers        int // goroutines the search actually ran with (1 for the serial explorers)
	MaxDepth       int
	Quiescent      int // terminal states with no enabled machine
	Truncated      bool
	Elapsed        time.Duration
}

// Result is the outcome of an exploration.
type Result struct {
	Violations []Violation
	Stats      Stats
	Graph      *Graph // non-nil iff Options.CollectGraph
	// StoreStats summarizes the tiered visited stores (both dictionaries
	// combined); nil under ExactFingerprints, which bypasses the store.
	StoreStats *store.Stats
	// StoreErr is the first spill/read error the stores latched, if any. The
	// search result is still correct — affected shards fall back to
	// memory-only operation — but the memory bound may not have held.
	StoreErr error
	// Checkpointed reports that the search was suspended at a checkpoint
	// (CheckpointStop or CheckpointRequest) rather than run to completion;
	// the run directory can be resumed with Resume. Stats and Violations
	// cover the work done so far.
	Checkpointed bool
}

// Errored reports whether any violation was found.
func (r *Result) Errored() bool { return len(r.Violations) > 0 }

// FirstViolation returns the first violation or nil.
func (r *Result) FirstViolation() *Violation {
	if len(r.Violations) == 0 {
		return nil
	}
	return &r.Violations[0]
}

// Explore runs the configured search over prog, starting from the closed
// program's initial configuration (one instance of the main machine).
func Explore(prog *ir.Program, opts Options) (*Result, error) {
	e, err := newExplorer(prog, opts)
	if err != nil {
		return nil, err
	}
	g := core.NewGlobal(prog, opts.Foreign)
	g.DisableDedup = opts.DisableDedup
	g.YieldOnDequeue = opts.FineGrained
	if _, err := g.CreateMain(); err != nil {
		e.closeStores()
		return nil, fmt.Errorf("check: creating main machine: %w", err)
	}
	if err := e.run(g); err != nil {
		e.closeStores()
		return nil, err
	}
	e.result.Stats.Elapsed = e.prior + time.Since(e.start)
	e.result.Graph = e.graph
	e.finishStores()
	return &e.result, nil
}

// newExplorer builds an explorer with its visited dictionaries. The caller
// owns the stores afterwards (finishStores/closeStores).
func newExplorer(prog *ir.Program, opts Options) (*explorer, error) {
	e := &explorer{prog: prog, opts: opts, progEvery: opts.progressEvery(), start: time.Now()}
	if opts.CollectGraph {
		e.graph = NewGraph()
	}
	if opts.POR && opts.PORDisabledReason() == "" {
		e.por = newReducer(prog)
	}
	if err := e.initCheckpointer(); err != nil {
		return nil, err
	}
	if err := e.initDicts(); err != nil {
		return nil, err
	}
	return e, nil
}

// PORDisabledReason explains why a POR request would be (or was) forced
// off: a non-empty string names the incompatible option, "" means reduction
// runs. Callers surface it to users (pverify prints a notice and records it
// in the JSON report) so a -por run that silently explores unreduced is
// visible.
func (o *Options) PORDisabledReason() string {
	switch {
	case o.Foreign != nil:
		return "host foreign functions are outside the static independence analysis"
	case o.FineGrained:
		return "fine-grained mode adds sub-macro-step scheduling points the reducer does not model"
	}
	return ""
}

// run dispatches to the configured search from the initial configuration.
func (e *explorer) run(g *core.Global) error {
	e.result.Stats.Workers = 1 // parallelLoop overwrites with the resolved count
	switch e.opts.Mode {
	case DepthBounded:
		e.depthBounded(g)
	case DelayBounded:
		if e.opts.Workers > 1 || e.opts.Workers < 0 {
			e.parallelDelayBounded(g, e.opts.Workers)
		} else {
			e.delayBounded(g)
		}
	case RoundRobinDelay:
		e.roundRobinDelay(g)
	default:
		return fmt.Errorf("check: unknown mode %d", e.opts.Mode)
	}
	if e.ckpt != nil && e.ckpt.err != nil {
		return fmt.Errorf("check: writing checkpoint: %w", e.ckpt.err)
	}
	return nil
}

// initDicts builds the distinct-state set and the mode's visited dictionary:
// tiered stores in the default hashed scheme (spilling under StoreDir when
// set), sharded in-memory maps under ExactFingerprints.
func (e *explorer) initDicts() error {
	exact := e.opts.ExactFingerprints
	newTier := func(sub string, merge store.MergeFunc) (*store.Store, error) {
		dir := ""
		if e.opts.StoreDir != "" {
			dir = filepath.Join(e.opts.StoreDir, sub)
		}
		st, err := store.New(store.Options{
			Dir:         dir,
			Shards:      e.opts.StoreShards,
			MemPerShard: e.opts.StoreMemPerShard,
			Merge:       merge,
		})
		if err != nil {
			return nil, fmt.Errorf("check: visited store: %w", err)
		}
		e.stores = append(e.stores, st)
		return st, nil
	}
	if exact {
		e.states = newStateSet(nil, true)
	} else {
		st, err := newTier("states", nil)
		if err != nil {
			return err
		}
		e.states = newStateSet(st, false)
	}
	switch {
	case exact && e.opts.Mode == DepthBounded:
		e.dvisited = newDepthVisited(nil, true)
	case e.opts.Mode == DepthBounded:
		st, err := newTier("visited", dvMerge)
		if err != nil {
			return err
		}
		e.dvisited = newDepthVisited(st, false)
	case exact:
		e.visited = newMinDelayMap(nil, true)
	default:
		st, err := newTier("visited", minDelayMerge)
		if err != nil {
			return err
		}
		e.visited = newMinDelayMap(st, false)
	}
	return nil
}

// finishStores folds the stores' occupancy and latched errors into the
// result, then closes them.
func (e *explorer) finishStores() {
	if len(e.stores) > 0 {
		agg := store.Stats{}
		for _, st := range e.stores {
			agg.Add(st.Stats())
			if err := st.Err(); err != nil && e.result.StoreErr == nil {
				e.result.StoreErr = err
			}
		}
		e.result.StoreStats = &agg
	}
	e.closeStores()
}

func (e *explorer) closeStores() {
	for _, st := range e.stores {
		st.Close()
	}
	e.stores = nil
}

type explorer struct {
	prog   *ir.Program
	opts   Options
	result Result
	graph  *Graph
	// por is the partial-order reducer, nil when reduction is off or gated
	// off (foreign env, fine-grained mode — see Options.PORDisabledReason).
	por *reducer

	// states is the distinct-state set; visited (delay-bounded, round-robin)
	// or dvisited (depth-bounded) is the mode's re-expansion dictionary.
	// stores holds the tiered stores behind them (empty in exact mode).
	states   *stateSet
	visited  *minDelayMap
	dvisited *depthVisited
	stores   []*store.Store

	// progEvery is the resolved Progress throttle interval.
	progEvery int
	// stop is set when the search should end (first error, state cap).
	stop bool

	// ckpt drives checkpoint writes, nil when checkpointing is off. start is
	// this process's run start; prior is the elapsed time recorded by the
	// checkpoint a resumed run continues from (zero for fresh runs).
	ckpt  *checkpointer
	start time.Time
	prior time.Duration
}

// defaultProgressEvery is the Progress throttle when ProgressEvery is 0:
// frequent enough for a live counter, far off the per-state hot path.
const defaultProgressEvery = 4096

func (o *Options) progressEvery() int {
	switch {
	case o.ProgressEvery > 0:
		return o.ProgressEvery
	case o.ProgressEvery < 0:
		return 1
	}
	return defaultProgressEvery
}

// Stats invariant, shared by the serial and parallel explorers so the
// numbers mean the same thing in both:
//
//  1. DistinctStates counts every successor fingerprint ever produced,
//     noted immediately after the macro step — before (and regardless of)
//     the visited-set claim that decides re-expansion.
//  2. Transitions counts every RunToSchedPoint call, including error
//     outcomes and `*` choice-string retries; once the search is stopped
//     (cap or first error) no further transitions are executed.
//  3. SearchNodes counts nodes taken from the work list for expansion.
//  4. Quiescent counts expanded nodes with no enabled machine (including
//     an initial configuration with no live machine at all).
//  5. FaultSteps counts fault successors processed (chaos mode): faults
//     are generated after a node's ordinary successors, in the
//     deterministic faultBranches order, and only for nodes with at least
//     one enabled machine; a stopped search processes no further faults.
//     At a node reduced to machine x's ample set, only x's own fault
//     branches are emitted (the environment machine's other faults commute
//     with x and regenerate at the descendants with the budget intact);
//     each such branch is counted exactly once even when the strict cycle
//     proviso examines it before accepting the reduction.
//
// The order per successor (ordinary and fault alike) is: note state ->
// intern graph node -> claim visited -> push.
//
// Partial-order reduction bends rule 1 in one documented way: an
// ample-seed candidate is expanded before the reducer decides whether to
// keep it (its Transitions are counted and its error branches recorded as
// violations either way), but its non-error successors are noted only when
// they are actually processed — i.e. when the seed is accepted, or when
// the node falls back to full expansion. A rejected candidate at an
// accepted node contributes Transitions without DistinctStates.
// TestSerialParallelStatsEquivalence asserts the equivalence on real
// programs, with chaos both off and on, and POR both off and on.

// noteState registers a global fingerprint, returning true if it is new.
func (e *explorer) noteState(fp StateKey) bool {
	isNew, n := e.states.add(fp)
	if !isNew {
		return false
	}
	e.result.Stats.DistinctStates = n
	if e.opts.Progress != nil && n%e.progEvery == 0 {
		e.opts.Progress(n)
	}
	if e.opts.MaxStates > 0 && n >= e.opts.MaxStates {
		e.result.Stats.Truncated = true
		e.stop = true
	}
	return true
}

func (e *explorer) addViolation(err *core.Err, trace []TraceStep) {
	e.result.Violations = append(e.result.Violations, Violation{
		Err:   err,
		Trace: append([]TraceStep(nil), trace...),
	})
	if e.opts.StopAtFirstError {
		e.stop = true
	}
}

// successor holds one expanded macro step from a search node.
type successor struct {
	global  *core.Global
	outcome core.Outcome
	choices []bool
	fp      StateKey
}

// maxChoiceStrings caps the `*` choice strings enumerated per macro step.
// A well-formed ghost machine reaches a scheduling point after a bounded
// number of choices; the cap is a defense against ghost code that loops on
// choices without ever sending (the overflow marks the search truncated).
const maxChoiceStrings = 4096

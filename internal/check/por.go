package check

import (
	"sync"

	"pgo/internal/analysis"
	"pgo/internal/core"
	"pgo/internal/ir"
)

// Partial-order reduction (por.go): at a search node, instead of branching
// over every enabled machine (or schedule option), the explorers may commit
// to a single machine x — a singleton ample set — when every macro step of x
// from this state commutes with anything the rest of the system can do
// before x moves. Commuting steps reach the same successor states in either
// order, so exploring only "x first" preserves reachability of every local
// error state (the safety properties of Figure 6 are all local).
//
// Whether steps commute is decided from two sources:
//
//   - Static facts (analysis.PORFacts): which events a machine type can
//     still send to which types, and whether it can still create machines,
//     from each control state onward. Per-state granularity matters: ghost
//     environments create the world in a boot state and then settle into a
//     request loop, and only the loop's capabilities should count.
//   - Dynamic capabilities: machine ids are unforgeable, so a machine can
//     only be sent to by someone who holds its id (core.HeldIDs), and only
//     machines that are enabled now — or transitively woken by enabled ones —
//     can act at all before x moves. This instance-level "acting coalition"
//     is what makes the reduction effective on star-shaped programs
//     (german, usbhub) where type-level facts alone collapse to "everything
//     touches everything".
//
// The dedup-append queue semantics (⊕) make same-inbox operations
// non-commuting in general: an append's dedup decision reads the whole
// queue, and a dequeue changes it. The ample conditions below therefore
// require that the events x dequeues are disjoint from the events the
// coalition can append to x (then removals cannot flip any dedup decision),
// and that nobody else can touch any inbox x appends to. Machine creation
// orders the NextID counter, so two creations never commute.
//
// Soundness of the selective search additionally needs the standard cycle
// proviso (the "ignoring problem"): a reduced node must not postpone the
// rest of the system forever around a cycle. The explorers implement two
// variants. Safety-only runs use the weak visited-set form — if no ample
// successor enters the search frontier as new work, the node is expanded
// fully after all. Graph-collecting runs (liveness, coverage) use the
// strict C3 form — the reduction is accepted only if every ample successor
// (including the ample machine's fault branches) is a globally new state,
// so no cycle in the reduced graph can consist solely of reduced nodes.
// See DESIGN.md for both arguments, including why they survive the
// parallel explorer's racy claims.
//
// Chaos mode (Options.Faults > 0) composes with the reduction by modeling
// the fault injector as an implicit environment machine: a crash, drop, or
// duplication at machine m is an action that touches only m (its liveness
// or its inbox). While fault budget remains, ample additionally requires
// (see the chaos conditions in ample) that the coalition cannot append to
// x's inbox at all — a coalition append both changes which drop/dup faults
// at x exist and interferes with x's dequeues — and that x sends to no
// machine that currently has a deliverable event (a drop of that event
// flips the ⊕ dedup decision of x's append) nor, under crash faults, to
// any other machine at all (crash(t) before x's send yields SEND-FAIL-2 in
// one order only). Faults targeting machines other than x commute with x's
// accepted steps and are regenerated at the descendants with the budget
// intact (machine steps consume no fault budget), so a reduced node emits
// only x's own fault branches.

// porMaxSeeds bounds how many enabled machines the depth explorer tries as
// ample-seed candidates per node before giving up and expanding fully.
// Trying a seed costs its expansion (which full expansion needs anyway), so
// this only bounds wasted ample() checks.
const porMaxSeeds = 4

// reducer holds the static half of the independence relation. The scratch
// pool recycles coalition workspaces across ample calls — the depth
// explorer tries up to porMaxSeeds seeds per node, and the parallel
// explorer calls ample from every worker, so per-call map allocation was a
// measurable share of reduced runs.
type reducer struct {
	prog    *ir.Program
	pf      *analysis.PORFacts
	scratch sync.Pool
}

func newReducer(p *ir.Program) *reducer {
	return &reducer{prog: p, pf: analysis.PORIndependence(p)}
}

// coalition accumulates what the machines that can act before x moves are
// able to do: canSend[t] is the events they may append to an inbox of type
// t, creates whether any of them can reach a `new`. Spawned types
// contribute their initial-state capabilities — a fresh instance acts on
// the coalition's behalf. act and carried are indexed by core.MachineID,
// which NextID allocates densely from 1.
type coalition struct {
	r       *reducer
	act     []bool
	carried []bool
	canSend []ir.EventSet
	spawned []bool
	creates bool
}

// grab fetches a reset coalition workspace sized for g from the pool.
func (r *reducer) grab(g *core.Global) *coalition {
	co, _ := r.scratch.Get().(*coalition)
	if co == nil {
		co = &coalition{r: r}
	}
	ids := int(g.NextID)
	co.act = resetBools(co.act, ids)
	co.carried = resetBools(co.carried, ids)
	co.spawned = resetBools(co.spawned, len(r.prog.Machines))
	if cap(co.canSend) < len(r.prog.Machines) {
		co.canSend = make([]ir.EventSet, len(r.prog.Machines))
	} else {
		co.canSend = co.canSend[:len(r.prog.Machines)]
		for i := range co.canSend {
			co.canSend[i].Clear()
		}
	}
	co.creates = false
	return co
}

// resetBools returns b resized to n with every element false.
func resetBools(b []bool, n int) []bool {
	if cap(b) < n {
		return make([]bool, n)
	}
	b = b[:n]
	for i := range b {
		b[i] = false
	}
	return b
}

func (co *coalition) addStateCaps(t ir.MachineTypeID, s ir.StateID) {
	pf := co.r.pf
	for ti := range co.canSend {
		co.canSend[ti].UnionWith(pf.SendEventsFrom[t][s][ti])
	}
	if pf.CreatesFrom[t][s] {
		co.creates = true
	}
	for _, sp := range pf.SpawnsFrom[t][s] {
		co.addSpawn(sp)
	}
}

func (co *coalition) addSpawn(t ir.MachineTypeID) {
	if co.spawned[t] {
		return
	}
	co.spawned[t] = true
	co.addStateCaps(t, co.r.pf.InitState[t])
}

// join adds machine id to the acting coalition: its held ids become
// nameable, and the capabilities of every frame state count — a pop lands
// on a lower frame, so the union over the stack covers all return paths.
func (co *coalition) join(g *core.Global, id core.MachineID) {
	co.act[id] = true
	c := g.Lookup(id)
	for _, h := range g.HeldIDs(c) {
		if int(h) < len(co.carried) {
			co.carried[h] = true
		}
	}
	for i := range c.Stack {
		co.addStateCaps(c.Type, c.Stack[i].State)
	}
}

// ample reports whether {x} is a valid singleton ample set at g, given x's
// already-expanded successors (error branches excluded — they are recorded
// as violations at expansion and stay reachable under any reordering, since
// nothing the coalition does can disturb a step the conditions accept).
//
// The acting coalition Act is the set of machines other than x that can
// take a step before x moves: every enabled one, closed under waking — a
// disabled machine joins if the coalition holds its id and can send to its
// type. Machines outside Act stay frozen until x moves, so only Act's
// effects matter for commutation.
//
// With eOut = the events the coalition may append to x's inbox, {x} is
// ample iff x has at least one non-error successor and every successor u
// satisfies:
//
//  1. No entry u dequeues has an event in eOut — then coalition appends to
//     x land at the tail, past x's deliverable scan, and x's removals can
//     never flip a dedup decision on them (⊕ compares events).
//  2. If u blocks or halts, eOut is empty — a block re-reads the whole
//     queue (an append could un-block x), and a send to a halted machine
//     errors in one order but not the other.
//  3. If u sends to x itself, eOut is empty (two appenders to one ⊕ inbox
//     never commute); if u sends to another machine t, then t ∉ Act — x
//     must be t's only writer, and t must stay frozen (an acting t could
//     dequeue, block, or even halt, turning x's send into SEND-FAIL-2).
//     Act membership subsumes "coalition can send to t": the wake closure
//     joined every carried, send-reachable machine — including machines
//     only a freshly spawned instance could reach, since a fresh instance
//     can name t only through ids the coalition carries.
//  4. If u creates a machine, the coalition must be unable to — creation
//     order determines NextID allocation, so creations never commute.
//
// When chaos faults are pending (chaos != 0: fault budget remains, with
// the given kinds enabled), two further conditions make x's steps commute
// with the environment machine's postponed faults:
//
//  5. eOut must be empty outright. Under crash kinds, a coalition member
//     that can send to x could be crashed first, erasing the send (x sees
//     different inboxes depending on order). Under drop/dup kinds, a
//     coalition append to x materializes new fault branches at x and its
//     removal/duplication interacts with x's dequeue scan.
//  6. If u sends to a machine t ≠ x: under crash kinds the send is
//     rejected (crash(t) before the send turns it into SEND-FAIL-2; after,
//     it doesn't); under drop/dup kinds it is rejected when t currently
//     has a deliverable event — dropping or duplicating that entry changes
//     the queue contents x's append ⊕-dedups against. An empty-inbox t is
//     fine: there is nothing to drop, and x's append commutes with faults
//     that don't exist yet (condition 3 already froze t, so no coalition
//     append can create one first).
//
// Faults aimed at x itself are members of the ample set, not postponed
// actions, so they need no condition here; processFaults emits them at the
// reduced node.
//
// Over-approximating Act, Carried, or eOut only rejects more seeds.
func (r *reducer) ample(g *core.Global, x core.MachineID, succs []successor, chaos FaultSet) bool {
	if len(succs) == 0 {
		return false
	}
	live := g.LiveIDs()
	co := r.grab(g)
	defer r.scratch.Put(co)
	for _, id := range live {
		if id != x && g.Enabled(id) {
			co.join(g, id)
		}
	}
	for changed := true; changed; {
		changed = false
		for _, id := range live {
			if id == x || co.act[id] || !co.carried[id] {
				continue
			}
			if !co.canSend[g.Lookup(id).Type].IsEmpty() {
				co.join(g, id)
				changed = true
			}
		}
	}
	var eOut ir.EventSet
	if co.carried[x] {
		eOut = co.canSend[g.Lookup(x).Type]
	}
	if chaos != 0 && !eOut.IsEmpty() {
		// Condition 5: pending faults forbid any coalition append to x.
		return false
	}

	for i := range succs {
		out := &succs[i].outcome
		for _, q := range out.Dequeued {
			if eOut.Contains(q.Event) {
				return false
			}
		}
		switch out.Kind {
		case core.OutBlocked, core.OutHalted:
			if !eOut.IsEmpty() {
				return false
			}
		case core.OutSend:
			if out.SentTo == x {
				if !eOut.IsEmpty() {
					return false
				}
			} else if co.act[out.SentTo] {
				return false
			} else if chaos.Has(FaultCrash) {
				// Condition 6: a pending crash(t) inverts SEND-FAIL-2.
				return false
			} else if chaos.Has(FaultDrop) || chaos.Has(FaultDup) {
				if _, ok := g.DeliverableEvent(out.SentTo); ok {
					// Condition 6: a drop/dup at t changes what x's append
					// ⊕-dedups against.
					return false
				}
			}
		case core.OutNew:
			if co.creates {
				return false
			}
		}
	}
	return true
}

package check_test

import (
	"os"
	"strings"
	"testing"

	"pgo/internal/check"
	"pgo/internal/compile"
	"pgo/internal/core"
	"pgo/internal/ir"
	"pgo/internal/psamples"
	"pgo/internal/trace"
)

// Chaos-mode tests: the fault-sensitivity sample, the pinned expectations
// for the shipped samples, and the cross-scheme/cross-explorer agreement
// with fault injection on.

func compileRelay(t *testing.T) *ir.Program {
	t.Helper()
	src, err := os.ReadFile("../../testdata/relay.p")
	if err != nil {
		t.Fatalf("reading relay sample: %v", err)
	}
	prog, diags, err := compile.Source("relay", string(src))
	if err != nil {
		t.Fatalf("compile relay: %v\n%s", err, diags.String())
	}
	return prog
}

// relay.p is safe under every fault-free schedule but assumes a reliable
// transport: dropping one message makes its assertion fail. Chaos mode
// with a budget of one fault must find that defect; the fault-free search
// must not.
func TestChaosFindsRelayDefect(t *testing.T) {
	prog := compileRelay(t)

	clean, err := check.Explore(prog, check.Options{Mode: check.DelayBounded, Bound: 2})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Errored() {
		t.Fatalf("fault-free exploration found a violation: %v", clean.FirstViolation())
	}

	res, err := check.Explore(prog, check.Options{
		Mode:             check.DelayBounded,
		Bound:            2,
		Faults:           1,
		FaultKinds:       check.DropFaults,
		StopAtFirstError: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	v := res.FirstViolation()
	if v == nil {
		t.Fatal("chaos exploration with one drop fault found no violation")
	}
	if v.Err.Kind != core.ErrAssert {
		t.Fatalf("violation kind = %v, want ErrAssert", v.Err.Kind)
	}
	drops := 0
	for _, s := range v.Trace {
		if s.Fault == check.FaultDrop {
			drops++
		}
	}
	if drops != 1 {
		t.Fatalf("trace has %d drop fault steps, want exactly 1:\n%v", drops, v.Trace)
	}
	if res.Stats.FaultSteps == 0 {
		t.Fatal("Stats.FaultSteps is 0 on a chaos run")
	}
}

// The drop counterexample replays deterministically: the rendered trace is
// pinned so schedule regressions (or replay divergence) surface as a diff.
func TestChaosRelayGoldenTrace(t *testing.T) {
	prog := compileRelay(t)
	res, err := check.Explore(prog, check.Options{
		Mode:             check.DelayBounded,
		Bound:            2,
		Faults:           1,
		FaultKinds:       check.DropFaults,
		StopAtFirstError: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	v := res.FirstViolation()
	if v == nil {
		t.Fatal("no violation to render")
	}
	var b strings.Builder
	if err := trace.Render(prog, v, &b); err != nil {
		t.Fatalf("replay diverged: %v", err)
	}
	const golden = `counterexample: assertion failed in machine Receiver#2 (state Verify) at 49:7
schedule (8 steps):
   1. Sender#1  @Init          creates Receiver#2
   2. [1 delays]
   2. Sender#1  @Init          sends Req to Receiver#2
   3. Receiver#2  ⚡fault         loses Req in transit
   4. [1 delays]
   4. Receiver#2  @Counting      blocks
   5. Sender#1  @Init          sends Req to Receiver#2
   6. Receiver#2  @Counting      blocks
      └ consumed Req
   7. Sender#1  @Init          sends Check to Receiver#2
   8. Receiver#2  Counting→Verify ERROR: assertion failed in machine Receiver#2 (state Verify) at 49:7
`
	if got := b.String(); got != golden {
		t.Errorf("rendered trace diverges from golden:\n--- got ---\n%s--- want ---\n%s", got, golden)
	}
}

// Pinned chaos expectations for the shipped samples. Drop tolerance is the
// interesting axis: the request/response samples survive a lost message
// (they block harmlessly), while the protocol samples legitimately assume
// reliable transport. Crash and dup are documented residuals for every
// sample: after a crash any further send to the machine is the paper's
// send-to-deleted error, and a forced duplicate is exactly the hazard the
// ⊕ dedup semantics exists to suppress — both are real findings about the
// samples' environment assumptions, not checker noise.
func TestChaosSampleExpectations(t *testing.T) {
	cases := []struct {
		sample string
		kinds  check.FaultSet
		clean  bool
	}{
		{"pingpong", check.DropFaults, true},
		{"elevator", check.DropFaults, true},
		{"switchled", check.DropFaults, true},
		{"ring", check.DropFaults, true},
		{"boundedbuffer", check.DropFaults, true},
		{"german", check.DropFaults, false},
		{"usb-hsm", check.DropFaults, false},
		// The protocols corpus: 2PC blocks (never splits) under loss, an
		// election without messages elects nobody, and a lost steal request
		// just idles a worker — but a dropped shard write is a stale read.
		{"twophase", check.DropFaults, true},
		{"raft", check.DropFaults, true},
		{"worksteal", check.DropFaults, true},
		{"shardkv", check.DropFaults, false},
		// Documented residuals: no sample survives a machine crash or a
		// forced duplicate.
		{"pingpong", check.CrashFaults, false},
		{"pingpong", check.DupFaults, false},
		{"elevator", check.CrashFaults, false},
		{"elevator", check.DupFaults, false},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.sample+"/"+tc.kinds.String(), func(t *testing.T) {
			t.Parallel()
			s, ok := psamples.ByName(tc.sample)
			if !ok {
				t.Fatalf("no sample %s", tc.sample)
			}
			prog, diags, err := compile.Source(tc.sample, s.Source)
			if err != nil {
				t.Fatalf("compile: %v\n%s", err, diags.String())
			}
			res, err := check.Explore(prog, check.Options{
				Mode:             check.DelayBounded,
				Bound:            2,
				Faults:           1,
				FaultKinds:       tc.kinds,
				MaxStates:        500_000,
				StopAtFirstError: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := !res.Errored(); got != tc.clean {
				t.Errorf("chaos(%s) clean = %v, want %v (first: %v)",
					tc.kinds, got, tc.clean, res.FirstViolation())
			}
		})
	}
}

// Hashed and exact fingerprints, and the serial and parallel explorers,
// must agree on the distinct-state count and fault-step count with chaos
// on — the fault-qualified visited keys behave identically in all four
// combinations.
func TestChaosSchemeAndSchedulerAgreement(t *testing.T) {
	for _, name := range []string{"pingpong", "switchled"} {
		name := name
		t.Run(name, func(t *testing.T) {
			s, ok := psamples.ByName(name)
			if !ok {
				t.Fatalf("no sample %s", name)
			}
			prog, diags, err := compile.Source(name, s.Source)
			if err != nil {
				t.Fatalf("compile: %v\n%s", err, diags.String())
			}
			type combo struct {
				exact   bool
				workers int
			}
			var base *check.Result
			for _, c := range []combo{{false, 1}, {true, 1}, {false, 4}, {true, 4}} {
				res, err := check.Explore(prog, check.Options{
					Mode:              check.DelayBounded,
					Bound:             2,
					Faults:            1,
					Workers:           c.workers,
					ExactFingerprints: c.exact,
				})
				if err != nil {
					t.Fatal(err)
				}
				if base == nil {
					base = res
					continue
				}
				if res.Stats.DistinctStates != base.Stats.DistinctStates {
					t.Errorf("exact=%v workers=%d: distinct states %d, want %d",
						c.exact, c.workers, res.Stats.DistinctStates, base.Stats.DistinctStates)
				}
				if res.Stats.FaultSteps != base.Stats.FaultSteps {
					t.Errorf("exact=%v workers=%d: fault steps %d, want %d",
						c.exact, c.workers, res.Stats.FaultSteps, base.Stats.FaultSteps)
				}
			}
		})
	}
}

// The fault budget strictly widens the search: everything reachable with
// faults=0 stays reachable (and counted) with faults=1.
func TestFaultBudgetMonotone(t *testing.T) {
	prog := compileRelay(t)
	s0, err := check.Explore(prog, check.Options{Mode: check.DelayBounded, Bound: 2})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := check.Explore(prog, check.Options{Mode: check.DelayBounded, Bound: 2, Faults: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s1.Stats.DistinctStates < s0.Stats.DistinctStates {
		t.Errorf("faults=1 found %d states, fewer than faults=0's %d",
			s1.Stats.DistinctStates, s0.Stats.DistinctStates)
	}
}

// Every explorer mode honors the fault budget, not just delay-bounded.
func TestChaosAcrossModes(t *testing.T) {
	prog := compileRelay(t)
	for _, mode := range []check.Mode{check.DepthBounded, check.DelayBounded, check.RoundRobinDelay} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			bound := 2
			if mode == check.DepthBounded {
				bound = 12
			}
			res, err := check.Explore(prog, check.Options{
				Mode:             mode,
				Bound:            bound,
				Faults:           1,
				FaultKinds:       check.DropFaults,
				StopAtFirstError: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Errored() {
				t.Errorf("%v with one drop fault missed the relay defect", mode)
			}
		})
	}
}

func TestParseFaultSet(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want check.FaultSet
		bad  bool
	}{
		{"all", check.AllFaults, false},
		{"crash", check.CrashFaults, false},
		{"drop,dup", check.DropFaults | check.DupFaults, false},
		{" crash , drop ", check.CrashFaults | check.DropFaults, false},
		{"", 0, true},
		{"bogus", 0, true},
	} {
		got, err := check.ParseFaultSet(tc.in)
		if tc.bad {
			if err == nil {
				t.Errorf("ParseFaultSet(%q) = %v, want error", tc.in, got)
			}
			continue
		}
		if err != nil || got != tc.want {
			t.Errorf("ParseFaultSet(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
}

package check

import (
	"math/rand"

	"pgo/internal/core"
	"pgo/internal/ir"
)

// SimOptions configures random simulation.
type SimOptions struct {
	// Seed makes the walk reproducible.
	Seed int64
	// MaxSteps bounds the number of macro steps (0 = 10_000).
	MaxSteps int
	// MaxLocalSteps bounds small steps per handler (0 = core default).
	MaxLocalSteps int
	// Foreign supplies host foreign functions.
	Foreign core.ForeignEnv
}

// SimResult reports one random walk.
type SimResult struct {
	Steps     int
	Violation *Violation // nil if the walk ended without error
	Quiescent bool       // the walk reached a state with no enabled machine
}

// randChoices drives `*` expressions from a PRNG.
type randChoices struct{ r *rand.Rand }

func (rc randChoices) Choose() bool { return rc.r.Intn(2) == 0 }

// Simulate performs a single random walk through the closed program:
// uniformly random machine scheduling and coin-flip `*` choices. It is the
// cheap complement to systematic exploration — useful as a smoke test and
// for profiling long executions; it proves nothing when it finds nothing.
func Simulate(prog *ir.Program, opts SimOptions) (SimResult, error) {
	g := core.NewGlobal(prog, opts.Foreign)
	if _, err := g.CreateMain(); err != nil {
		return SimResult{}, err
	}
	r := rand.New(rand.NewSource(opts.Seed))
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 10_000
	}
	var res SimResult
	var trace []TraceStep
	for res.Steps < maxSteps {
		var enabled []core.MachineID
		for _, id := range g.LiveIDs() {
			if g.Enabled(id) {
				enabled = append(enabled, id)
			}
		}
		if len(enabled) == 0 {
			res.Quiescent = true
			return res, nil
		}
		id := enabled[r.Intn(len(enabled))]
		out := g.RunToSchedPoint(id, randChoices{r: r}, opts.MaxLocalSteps)
		res.Steps++
		trace = append(trace, TraceStep{
			Machine: id,
			Type:    g.Prog.Machines[g.Lookup(id).Type].Name,
			Outcome: out.Kind,
		})
		if out.Kind == core.OutError {
			res.Violation = &Violation{Err: out.Err, Trace: trace}
			return res, nil
		}
	}
	return res, nil
}

package live_test

import (
	"testing"

	"pgo/internal/check"
	"pgo/internal/compile"
	"pgo/internal/ir"
	"pgo/internal/live"
	"pgo/internal/psamples"
)

func explore(t *testing.T, name, src string, bound int) (*ir.Program, *check.Graph) {
	t.Helper()
	prog, diags, err := compile.Source(name, src)
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, diags.String())
	}
	res, err := check.Explore(prog, check.Options{
		Mode: check.DelayBounded, Bound: bound, CollectGraph: true, MaxStates: 500_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errored() {
		t.Fatalf("unexpected safety violation: %v", res.FirstViolation())
	}
	return prog, res.Graph
}

func TestPingPongLivenessClean(t *testing.T) {
	prog, g := explore(t, "pingpong", psamples.PingPong, 3)
	if vs := live.Check(prog, g, live.Options{}); len(vs) != 0 {
		t.Fatalf("pingpong should be liveness-clean, got %v", vs)
	}
}

const deferForeverProgram = `
event E; event Tick; event unit;

machine M {
  state S {
    defer E;
    entry { skip; }
    on Tick ignore;
  }
}

ghost machine Env {
  var m: id;
  state Init {
    entry {
      m = new M();
      send m, E;
      raise unit;
    }
    on unit goto Loop;
  }
  state Loop {
    entry {
      if * {
        send m, Tick;
        raise unit;
      }
    }
    on unit goto Loop;
  }
}

main Env();
`

func TestDeferredForeverDetected(t *testing.T) {
	prog, g := explore(t, "deferforever", deferForeverProgram, 2)
	vs := live.Check(prog, g, live.Options{})
	found := false
	for _, v := range vs {
		if v.Kind == live.DeferredForever && v.EvName == "E" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected deferred-forever violation for E, got %v", vs)
	}
}

const postponedProgram = `
event E; event Tick; event unit;

machine M {
  state S {
    defer E;
    postpone E;
    entry { skip; }
    on Tick ignore;
  }
}

ghost machine Env {
  var m: id;
  state Init {
    entry {
      m = new M();
      send m, E;
      raise unit;
    }
    on unit goto Loop;
  }
  state Loop {
    entry {
      if * {
        send m, Tick;
        raise unit;
      }
    }
    on unit goto Loop;
  }
}

main Env();
`

// The postpone annotation (§3.2's refinement) excuses the deferred event.
func TestPostponeExcusesDeferral(t *testing.T) {
	prog, g := explore(t, "postponed", postponedProgram, 2)
	for _, v := range live.Check(prog, g, live.Options{}) {
		if v.Kind == live.DeferredForever && v.EvName == "E" {
			t.Fatalf("postponed event still reported: %v", v)
		}
	}
}

const spinnerProgram = `
event Tick;
machine M {
  state S {
    entry { send this, Tick; }
    on Tick goto S;
  }
}
main M();
`

// A real machine that perpetually sends itself events violates property 1:
// it can be scheduled forever without being disabled.
func TestRunsForeverDetected(t *testing.T) {
	prog, g := explore(t, "spinner", spinnerProgram, 1)
	vs := live.Check(prog, g, live.Options{})
	found := false
	for _, v := range vs {
		if v.Kind == live.RunsForever && v.Type == "M" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected runs-forever violation, got %v", vs)
	}
}

// Ghost spinners are excluded from property 1 by default but reported with
// IncludeGhost.
func TestGhostSpinnerExcluded(t *testing.T) {
	prog, g := explore(t, "elevator", psamples.Elevator, 1)
	for _, v := range live.Check(prog, g, live.Options{}) {
		if v.Kind == live.RunsForever {
			t.Fatalf("runs-forever reported for %s without IncludeGhost", v.Type)
		}
	}
}

func TestSCCsSane(t *testing.T) {
	_, g := explore(t, "pingpong", psamples.PingPong, 2)
	comps := live.SCCs(g)
	total := 0
	seen := map[check.NodeID]bool{}
	for _, c := range comps {
		for _, n := range c {
			if seen[n] {
				t.Fatalf("node %d in two components", n)
			}
			seen[n] = true
		}
		total += len(c)
	}
	if total != g.Len() {
		t.Fatalf("components cover %d of %d nodes", total, g.Len())
	}
}

// A liveness violation comes with a concrete lasso witness: a stem from the
// initial configuration and a cycle inside the witnessing component.
func TestLassoWitness(t *testing.T) {
	prog, g := explore(t, "deferforever", deferForeverProgram, 2)
	vs := live.Check(prog, g, live.Options{})
	if len(vs) == 0 {
		t.Fatal("no violation")
	}
	lasso, ok := live.Witness(g, vs[0])
	if !ok {
		t.Fatal("no lasso witness extracted")
	}
	if len(lasso.Stem) == 0 || lasso.Stem[0] != g.Init {
		t.Fatalf("stem must start at init: %v", lasso.Stem)
	}
	if len(lasso.Cycle) < 2 || lasso.Cycle[0] != lasso.Cycle[len(lasso.Cycle)-1] {
		t.Fatalf("cycle must close: %v", lasso.Cycle)
	}
	if lasso.Stem[len(lasso.Stem)-1] != lasso.Cycle[0] {
		t.Fatalf("stem must end at the cycle entry: stem %v, cycle %v", lasso.Stem, lasso.Cycle)
	}
	// Every cycle edge must exist in the graph.
	for i := 0; i+1 < len(lasso.Cycle); i++ {
		found := false
		for _, e := range g.Edges[lasso.Cycle[i]] {
			if e.To == lasso.Cycle[i+1] {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("cycle edge %d -> %d not in graph", lasso.Cycle[i], lasso.Cycle[i+1])
		}
	}
	// Same for the stem.
	for i := 0; i+1 < len(lasso.Stem); i++ {
		found := false
		for _, e := range g.Edges[lasso.Stem[i]] {
			if e.To == lasso.Stem[i+1] {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("stem edge %d -> %d not in graph", lasso.Stem[i], lasso.Stem[i+1])
		}
	}
}

package live

import (
	"pgo/internal/check"
)

// Lasso is a concrete liveness counterexample: a stem from the initial
// configuration to the witnessing component and a cycle inside it. The LTL
// violations of §3.2 are exactly infinite executions of this shape.
type Lasso struct {
	Stem  []check.NodeID // init ... entry (inclusive)
	Cycle []check.NodeID // entry ... entry (first == last)
}

// Witness extracts a lasso for violation v on graph g: a shortest stem from
// g.Init to the violation's SCC and a cycle through the entry node staying
// inside the SCC. ok is false if the component is unreachable (should not
// happen for graphs produced by exploration) or acyclic.
func Witness(g *check.Graph, v Violation) (Lasso, bool) {
	member := inSCC(v.SCC)

	// Shortest stem: BFS from init to any SCC node.
	type pred struct {
		node check.NodeID
		ok   bool
	}
	preds := make([]pred, g.Len())
	seen := make([]bool, g.Len())
	queue := []check.NodeID{g.Init}
	seen[g.Init] = true
	var entry check.NodeID = -1
	if member[g.Init] {
		entry = g.Init
	}
	for len(queue) > 0 && entry < 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range g.Edges[n] {
			if seen[e.To] {
				continue
			}
			seen[e.To] = true
			preds[e.To] = pred{node: n, ok: true}
			if member[e.To] {
				entry = e.To
				break
			}
			queue = append(queue, e.To)
		}
	}
	if entry < 0 {
		return Lasso{}, false
	}
	var stem []check.NodeID
	for n := entry; ; {
		stem = append([]check.NodeID{n}, stem...)
		p := preds[n]
		if !p.ok {
			break
		}
		n = p.node
	}

	// Cycle: DFS inside the SCC from entry back to entry.
	cycle, ok := cycleThrough(g, member, entry)
	if !ok {
		return Lasso{}, false
	}
	return Lasso{Stem: stem, Cycle: cycle}, true
}

// cycleThrough finds a path entry -> ... -> entry using only SCC-internal
// edges. Self-loops count.
func cycleThrough(g *check.Graph, member map[check.NodeID]bool, entry check.NodeID) ([]check.NodeID, bool) {
	// BFS from the successors of entry back to entry.
	type pred struct {
		node check.NodeID
		ok   bool
	}
	preds := map[check.NodeID]pred{}
	var queue []check.NodeID
	for _, e := range g.Edges[entry] {
		if !member[e.To] {
			continue
		}
		if e.To == entry {
			return []check.NodeID{entry, entry}, true
		}
		if _, seen := preds[e.To]; !seen {
			preds[e.To] = pred{node: entry, ok: true}
			queue = append(queue, e.To)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range g.Edges[n] {
			if !member[e.To] {
				continue
			}
			if e.To == entry {
				// Reconstruct entry -> ... -> n -> entry.
				var path []check.NodeID
				for m := n; ; {
					path = append([]check.NodeID{m}, path...)
					p := preds[m]
					if !p.ok || p.node == entry {
						break
					}
					m = p.node
				}
				out := append([]check.NodeID{entry}, path...)
				return append(out, entry), true
			}
			if _, seen := preds[e.To]; !seen {
				preds[e.To] = pred{node: n, ok: true}
				queue = append(queue, e.To)
			}
		}
	}
	return nil, false
}

// Package live checks the liveness properties of §3.2 on an explored state
// graph:
//
//  1. No machine may execute indefinitely without getting disabled
//     (∃m. ◇□ sched(m) is erroneous). On a finite graph this is a reachable
//     cycle all of whose steps belong to one machine. Divergence inside a
//     single atomic handler is caught separately by the step budget in
//     internal/core.
//
//  2. Under fair scheduling, an event must not be enqueued and then deferred
//     forever (∀m fair(m) ∧ ∃ enq(m,e,m') never followed by deq(m',e) is
//     erroneous), refined by per-state postponed sets: a pending event whose
//     target state postpones it somewhere on the cycle is excused.
//
// Both checks are evaluated per strongly connected component, the standard
// finite-graph rendering of the LTL specifications: a violating lasso exists
// iff a reachable SCC exhibits the condition. The SCC granularity is a sound
// approximation — see DESIGN.md for the exact statement.
package live

import (
	"fmt"

	"pgo/internal/check"
	"pgo/internal/core"
	"pgo/internal/ir"
)

// Kind classifies a liveness violation.
type Kind int

const (
	// RunsForever is property 1: a machine can be scheduled forever while
	// other machines starve.
	RunsForever Kind = iota
	// DeferredForever is property 2: an event stays queued forever on a
	// fair cycle without being postponed.
	DeferredForever
)

func (k Kind) String() string {
	if k == RunsForever {
		return "machine can run forever"
	}
	return "event can be deferred forever"
}

// Violation is one liveness finding.
type Violation struct {
	Kind    Kind
	Machine core.MachineID // the spinning machine / the event's target
	Type    string         // machine type name
	Event   ir.EventID     // DeferredForever only
	EvName  string
	SCC     []check.NodeID // the witnessing component
}

func (v Violation) String() string {
	switch v.Kind {
	case RunsForever:
		return fmt.Sprintf("liveness: machine %s#%d can run forever without being disabled (cycle of %d states)", v.Type, v.Machine, len(v.SCC))
	default:
		return fmt.Sprintf("liveness: event %s queued at machine %s#%d can be deferred forever under fair scheduling (cycle of %d states)", v.EvName, v.Type, v.Machine, len(v.SCC))
	}
}

// Options configures the liveness analysis.
type Options struct {
	// IncludeGhost also applies property 1 to ghost machines. Ghost
	// environments commonly spin by design (they model open-ended stimulus),
	// so the default is to check real machines only.
	IncludeGhost bool
}

// Check analyzes the graph and returns all liveness violations found.
func Check(prog *ir.Program, g *check.Graph, opts Options) []Violation {
	if g == nil || g.Len() == 0 {
		return nil
	}
	var out []Violation
	for _, scc := range SCCs(g) {
		if !hasInternalCycle(g, scc) {
			continue
		}
		out = append(out, checkRunsForever(prog, g, scc, opts)...)
		out = append(out, checkDeferredForever(prog, g, scc)...)
	}
	return out
}

// inSCC builds a membership set.
func inSCC(scc []check.NodeID) map[check.NodeID]bool {
	m := make(map[check.NodeID]bool, len(scc))
	for _, n := range scc {
		m[n] = true
	}
	return m
}

// hasInternalCycle reports whether the component contains a cycle: more than
// one node, or a self-loop.
func hasInternalCycle(g *check.Graph, scc []check.NodeID) bool {
	if len(scc) > 1 {
		return true
	}
	n := scc[0]
	for _, e := range g.Edges[n] {
		if e.To == n {
			return true
		}
	}
	return false
}

// checkRunsForever finds machines that own a full cycle inside the SCC: a
// sub-cycle all of whose edges belong to one machine. We approximate at SCC
// granularity: machine m qualifies if every node of the SCC has an outgoing
// internal m-edge, which guarantees an infinite m-only path (hence an
// m-only cycle by finiteness).
func checkRunsForever(prog *ir.Program, g *check.Graph, scc []check.NodeID, opts Options) []Violation {
	member := inSCC(scc)
	// Candidate machines: those with an internal edge from every SCC node.
	// Collect candidates from the first node, then intersect.
	candidates := map[core.MachineID]bool{}
	for _, e := range g.Edges[scc[0]] {
		if member[e.To] {
			candidates[e.Machine] = true
		}
	}
	for _, n := range scc[1:] {
		if len(candidates) == 0 {
			return nil
		}
		present := map[core.MachineID]bool{}
		for _, e := range g.Edges[n] {
			if member[e.To] {
				present[e.Machine] = true
			}
		}
		for m := range candidates {
			if !present[m] {
				delete(candidates, m)
			}
		}
	}
	var out []Violation
	for m := range candidates {
		snap := findSnap(g, scc[0], m)
		if snap == nil {
			continue
		}
		if snap.Ghost && !opts.IncludeGhost {
			continue
		}
		out = append(out, Violation{
			Kind:    RunsForever,
			Machine: m,
			Type:    prog.Machines[snap.Type].Name,
			SCC:     scc,
		})
	}
	return out
}

func findSnap(g *check.Graph, n check.NodeID, m core.MachineID) *check.MachineSnap {
	for i := range g.Nodes[n].Machines {
		if g.Nodes[n].Machines[i].ID == m {
			return &g.Nodes[n].Machines[i]
		}
	}
	return nil
}

// checkDeferredForever finds queue entries pending at every node of a fair
// SCC that no internal edge dequeues and that are not postponed anywhere on
// the component.
func checkDeferredForever(prog *ir.Program, g *check.Graph, scc []check.NodeID) []Violation {
	member := inSCC(scc)

	// Fairness: every machine enabled somewhere in the SCC must take an
	// internal step somewhere in the SCC. Otherwise no fair run stays in
	// this component forever and the cycle is not a counterexample.
	enabledSomewhere := map[core.MachineID]bool{}
	scheduled := map[core.MachineID]bool{}
	for _, n := range scc {
		for _, ms := range g.Nodes[n].Machines {
			if ms.Enabled {
				enabledSomewhere[ms.ID] = true
			}
		}
		for _, e := range g.Edges[n] {
			if member[e.To] {
				scheduled[e.Machine] = true
			}
		}
	}
	for m := range enabledSomewhere {
		if !scheduled[m] {
			return nil // unfair component
		}
	}

	// Candidate entries: pending at the first node.
	type key struct {
		m core.MachineID
		q core.QEntry
	}
	candidates := map[key]bool{}
	for _, ms := range g.Nodes[scc[0]].Machines {
		for _, q := range ms.Queue {
			candidates[key{ms.ID, q}] = true
		}
	}
	if len(candidates) == 0 {
		return nil
	}

	// Must be pending at every node, never postponed, and never dequeued by
	// an internal edge.
	for _, n := range scc {
		for k := range candidates {
			snap := findSnap(g, n, k.m)
			if snap == nil {
				delete(candidates, k)
				continue
			}
			found := false
			for _, q := range snap.Queue {
				if q == k.q {
					found = true
					break
				}
			}
			if !found || snap.Postponed.Contains(k.q.Event) {
				delete(candidates, k)
			}
		}
		for _, e := range g.Edges[n] {
			if !member[e.To] {
				continue
			}
			for _, dq := range e.Dequeued {
				delete(candidates, key{e.Machine, dq})
			}
		}
	}

	var out []Violation
	for k := range candidates {
		snap := findSnap(g, scc[0], k.m)
		if snap == nil {
			continue
		}
		out = append(out, Violation{
			Kind:    DeferredForever,
			Machine: k.m,
			Type:    prog.Machines[snap.Type].Name,
			Event:   k.q.Event,
			EvName:  prog.Events[k.q.Event].Name,
			SCC:     scc,
		})
	}
	return out
}

// SCCs computes the strongly connected components of g with Tarjan's
// algorithm (iterative, to handle deep graphs). Components are returned in
// reverse topological order.
func SCCs(g *check.Graph) [][]check.NodeID {
	n := g.Len()
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []check.NodeID
	var comps [][]check.NodeID
	counter := 0

	type frame struct {
		v    check.NodeID
		edge int
	}
	for root := 0; root < n; root++ {
		if index[root] != -1 {
			continue
		}
		var callStack []frame
		callStack = append(callStack, frame{v: check.NodeID(root)})
		index[root] = counter
		low[root] = counter
		counter++
		stack = append(stack, check.NodeID(root))
		onStack[root] = true

		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			if f.edge < len(g.Edges[f.v]) {
				w := g.Edges[f.v][f.edge].To
				f.edge++
				if index[w] == -1 {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					callStack = append(callStack, frame{v: w})
				} else if onStack[w] {
					if index[w] < low[f.v] {
						low[f.v] = index[w]
					}
				}
				continue
			}
			// Post-process v.
			v := f.v
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				p := &callStack[len(callStack)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []check.NodeID
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				comps = append(comps, comp)
			}
		}
	}
	return comps
}

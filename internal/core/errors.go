package core

import (
	"fmt"

	"pgo/internal/ir"
	"pgo/internal/source"
)

// ErrKind classifies the error transitions of Figure 6 plus the dynamic
// errors the implementation can detect.
type ErrKind int

const (
	// ErrAssert is a failed assertion (ASSERT-FAIL).
	ErrAssert ErrKind = iota
	// ErrSendNull is a send whose target evaluated to ⊥ (SEND-FAIL-1).
	ErrSendNull
	// ErrSendDeleted is a send to a deleted or never-created machine
	// (SEND-FAIL-2).
	ErrSendDeleted
	// ErrUnhandled is a pop of the empty stack (POP-FAIL): an event arrived
	// that no state on the call stack handles.
	ErrUnhandled
	// ErrUndefCond is a conditional or assertion whose condition evaluated
	// to ⊥; no rule of the semantics applies, so the machine is stuck.
	ErrUndefCond
	// ErrForeignMissing is a foreign call with no host binding and no model.
	ErrForeignMissing
	// ErrForeign is an error returned by a host foreign function.
	ErrForeign
	// ErrDivergence is a machine exceeding the local step budget inside one
	// atomic handler: evidence for the first liveness property of §3.2
	// (◇□ sched(m)).
	ErrDivergence
	// ErrStub is an attempt to instantiate an erased ghost machine.
	ErrStub
	// ErrPanic is a host-level panic (a foreign function or runtime
	// internals) recovered by the supervised concurrent runtime. The
	// machine is halted or restarted per the runtime's RestartPolicy; the
	// process survives.
	ErrPanic
	// ErrInboxOverflow is an event arriving at a full bounded inbox under
	// the concurrent runtime's error overflow policy; the event is dropped.
	ErrInboxOverflow
	// ErrClosed is a machine creation or send on a runtime that has been
	// stopped (or is draining).
	ErrClosed
)

func (k ErrKind) String() string {
	switch k {
	case ErrAssert:
		return "assertion failed"
	case ErrSendNull:
		return "send to undefined machine identifier"
	case ErrSendDeleted:
		return "send to deleted machine"
	case ErrUnhandled:
		return "unhandled event"
	case ErrUndefCond:
		return "condition evaluated to null"
	case ErrForeignMissing:
		return "foreign function has no binding"
	case ErrForeign:
		return "foreign function error"
	case ErrDivergence:
		return "machine diverges without reaching a scheduling point"
	case ErrStub:
		return "erased ghost machine instantiated"
	case ErrPanic:
		return "machine panicked"
	case ErrInboxOverflow:
		return "inbox overflow"
	case ErrClosed:
		return "runtime stopped"
	default:
		return fmt.Sprintf("error(%d)", int(k))
	}
}

// Err is a runtime error of a P machine, carrying enough context to report
// a usable message.
type Err struct {
	Kind    ErrKind
	Machine MachineID
	Type    string // machine type name
	State   string // current state name, if known
	Event   ir.EventID
	HasEv   bool
	Span    source.Span
	Detail  string
}

func (e *Err) Error() string {
	msg := fmt.Sprintf("%s in machine %s#%d", e.Kind, e.Type, e.Machine)
	if e.State != "" {
		msg += fmt.Sprintf(" (state %s)", e.State)
	}
	if e.Detail != "" {
		msg += ": " + e.Detail
	}
	if e.Span.IsValid() {
		msg += " at " + e.Span.Start.String()
	}
	return msg
}

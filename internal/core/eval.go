package core

import (
	"pgo/internal/ir"
	"pgo/internal/source"
)

// ChoiceSource supplies the values of nondeterministic `*` expressions.
// During model checking the explorer enumerates all supplied bit strings;
// during concrete simulation a random or scripted source may be used.
// The erased programs executed by the concurrent runtime contain no `*`.
type ChoiceSource interface {
	Choose() bool
}

// FixedChoices is a ChoiceSource that replays a recorded bit string and
// appends a false bit whenever execution demands more choices than recorded.
// After a run, Bits holds the complete string consumed, enabling systematic
// enumeration of the choice tree.
type FixedChoices struct {
	Bits []bool
	pos  int
}

// Choose implements ChoiceSource.
func (f *FixedChoices) Choose() bool {
	if f.pos < len(f.Bits) {
		b := f.Bits[f.pos]
		f.pos++
		return b
	}
	f.Bits = append(f.Bits, false)
	f.pos++
	return false
}

// Reset rewinds the replay position, keeping the recorded bits.
func (f *FixedChoices) Reset() { f.pos = 0 }

// NextString advances Bits to the next string in the depth-first
// enumeration of the binary choice tree: the last false bit becomes true and
// everything after it is discarded. It reports false when the enumeration is
// exhausted.
func (f *FixedChoices) NextString() bool {
	i := len(f.Bits) - 1
	for i >= 0 && f.Bits[i] {
		i--
	}
	if i < 0 {
		return false
	}
	f.Bits[i] = true
	f.Bits = f.Bits[:i+1]
	f.pos = 0
	return true
}

// modelStepBudget bounds statement execution inside foreign model bodies so
// a buggy model cannot hang the verifier.
const modelStepBudget = 100_000

// eval evaluates expression e in the context of machine configuration c
// (which may be nil only for constant expressions, e.g. main initializers).
// ⊥ propagates through arithmetic, comparison, and logical operators;
// equality is total.
func (x *Exec) eval(c *Config, e *ir.Expr, cs ChoiceSource) (Value, *Err) {
	switch e.Op {
	case ir.EInt:
		return IntVal(e.Int), nil
	case ir.EBool:
		return BoolVal(e.Int != 0), nil
	case ir.ENull:
		return Null, nil
	case ir.EThis:
		return MachineVal(c.ID), nil
	case ir.EMsg:
		return c.Msg, nil
	case ir.EArg:
		return c.Arg, nil
	case ir.EChoose:
		if cs == nil {
			return Null, x.errAt(c, ErrUndefCond, e.Span, "nondeterministic choice evaluated without a choice source")
		}
		return BoolVal(cs.Choose()), nil
	case ir.EVar:
		return c.Vars[e.Var], nil
	case ir.EEvent:
		return EventVal(e.Event), nil
	case ir.ENot:
		v, err := x.eval(c, e.X, cs)
		if err != nil {
			return Null, err
		}
		if b, ok := v.AsBool(); ok {
			return BoolVal(!b), nil
		}
		return Null, nil // ⊥ propagation
	case ir.ENeg:
		v, err := x.eval(c, e.X, cs)
		if err != nil {
			return Null, err
		}
		if n, ok := v.AsInt(); ok {
			return IntVal(-n), nil
		}
		return Null, nil
	case ir.EBinary:
		return x.evalBinary(c, e, cs)
	case ir.ECall:
		return x.evalCall(c, e, cs)
	default:
		return Null, x.errAt(c, ErrUndefCond, e.Span, "unknown expression operator")
	}
}

func (x *Exec) evalBinary(c *Config, e *ir.Expr, cs ChoiceSource) (Value, *Err) {
	xv, err := x.eval(c, e.X, cs)
	if err != nil {
		return Null, err
	}
	// Short-circuit boolean operators, matching conventional evaluation; a
	// ⊥ left operand still yields ⊥.
	switch e.Bin {
	case ir.And:
		if b, ok := xv.AsBool(); ok && !b {
			return BoolVal(false), nil
		}
	case ir.Or:
		if b, ok := xv.AsBool(); ok && b {
			return BoolVal(true), nil
		}
	}
	y, err := x.eval(c, e.Y, cs)
	if err != nil {
		return Null, err
	}

	switch e.Bin {
	case ir.Eq:
		// Equality is total: ⊥ compares equal only to ⊥. This deviates from
		// strict ⊥ propagation so that `x == null` is usable as an
		// initialization test (see DESIGN.md).
		return BoolVal(xv == y), nil
	case ir.Neq:
		return BoolVal(xv != y), nil
	}

	switch e.Bin {
	case ir.Add, ir.Sub, ir.Mul, ir.Div, ir.Mod, ir.Lt, ir.Le, ir.Gt, ir.Ge:
		a, okA := xv.AsInt()
		b, okB := y.AsInt()
		if !okA || !okB {
			return Null, nil // ⊥ propagation
		}
		switch e.Bin {
		case ir.Add:
			return IntVal(a + b), nil
		case ir.Sub:
			return IntVal(a - b), nil
		case ir.Mul:
			return IntVal(a * b), nil
		case ir.Div:
			if b == 0 {
				return Null, nil // x/0 is ⊥
			}
			return IntVal(a / b), nil
		case ir.Mod:
			if b == 0 {
				return Null, nil
			}
			return IntVal(a % b), nil
		case ir.Lt:
			return BoolVal(a < b), nil
		case ir.Le:
			return BoolVal(a <= b), nil
		case ir.Gt:
			return BoolVal(a > b), nil
		case ir.Ge:
			return BoolVal(a >= b), nil
		}
	case ir.And, ir.Or:
		a, okA := xv.AsBool()
		b, okB := y.AsBool()
		if !okA || !okB {
			return Null, nil
		}
		if e.Bin == ir.And {
			return BoolVal(a && b), nil
		}
		return BoolVal(a || b), nil
	}
	return Null, x.errAt(c, ErrUndefCond, e.Span, "unknown binary operator")
}

// evalCall evaluates a foreign function call. During verification the model
// body (if any) executes and the call yields ⊥; otherwise the host binding
// runs. A missing binding without a model is an error only when the call's
// result is semantically demanded (we return ⊥ and no error, matching the
// paper's treatment of foreign functions as data-path code — configurable
// via Global.StrictForeign in future work; here we always report it).
func (x *Exec) evalCall(c *Config, e *ir.Expr, cs ChoiceSource) (Value, *Err) {
	mt := x.Prog.Machines[c.Type]
	f := &mt.Foreigns[e.ForeignFn]
	args := make([]Value, len(e.Args))
	for i, a := range e.Args {
		v, err := x.eval(c, a, cs)
		if err != nil {
			return Null, err
		}
		args[i] = v
	}
	// Model body takes precedence during verification.
	if f.Model != nil {
		budget := modelStepBudget
		if err := x.execModel(c, f.Model, cs, &budget); err != nil {
			return Null, err
		}
		return Null, nil
	}
	if x.Foreign != nil {
		if fn := x.Foreign.Lookup(mt.Name, f.Name); fn != nil {
			v, err := fn(c.Ctx, args)
			if err != nil {
				return Null, x.errAt(c, ErrForeign, e.Span, f.Name+": "+err.Error())
			}
			return v, nil
		}
	}
	return Null, x.errAt(c, ErrForeignMissing, e.Span, f.Name)
}

// execModel executes a foreign model body: a local, erasable statement list
// (only skip/assign/assert/if/while and nested calls are permitted by the
// type checker).
func (x *Exec) execModel(c *Config, body []*ir.Stmt, cs ChoiceSource, budget *int) *Err {
	for _, s := range body {
		if *budget <= 0 {
			return x.errAt(c, ErrDivergence, s.Span, "foreign model body exceeded step budget")
		}
		*budget--
		switch s.Op {
		case ir.SSkip:
		case ir.SAssign:
			v, err := x.eval(c, s.Expr, cs)
			if err != nil {
				return err
			}
			c.Vars[s.Var] = v
		case ir.SAssert:
			v, err := x.eval(c, s.Expr, cs)
			if err != nil {
				return err
			}
			b, ok := v.AsBool()
			if !ok {
				return x.errAt(c, ErrUndefCond, s.Span, "assert condition is null")
			}
			if !b {
				return x.errAt(c, ErrAssert, s.Span, "in foreign model")
			}
		case ir.SIf:
			v, err := x.eval(c, s.Expr, cs)
			if err != nil {
				return err
			}
			b, ok := v.AsBool()
			if !ok {
				return x.errAt(c, ErrUndefCond, s.Span, "if condition is null")
			}
			branch := s.Body
			if !b {
				branch = s.Else
			}
			if err := x.execModel(c, branch, cs, budget); err != nil {
				return err
			}
		case ir.SWhile:
			for {
				if *budget <= 0 {
					return x.errAt(c, ErrDivergence, s.Span, "foreign model body exceeded step budget")
				}
				v, err := x.eval(c, s.Expr, cs)
				if err != nil {
					return err
				}
				b, ok := v.AsBool()
				if !ok {
					return x.errAt(c, ErrUndefCond, s.Span, "while condition is null")
				}
				if !b {
					break
				}
				if err := x.execModel(c, s.Body, cs, budget); err != nil {
					return err
				}
			}
		case ir.SForeign:
			call := &ir.Expr{Op: ir.ECall, ForeignFn: s.Foreign, Args: s.Args, Span: s.Span}
			if _, err := x.eval(c, call, cs); err != nil {
				return err
			}
		default:
			return x.errAt(c, ErrUndefCond, s.Span, "statement not permitted in foreign model body")
		}
	}
	return nil
}

// errAt builds an Err with machine context.
func (x *Exec) errAt(c *Config, kind ErrKind, span source.Span, detail string) *Err {
	e := &Err{Kind: kind, Span: span, Detail: detail}
	if c != nil {
		e.Machine = c.ID
		mt := x.Prog.Machines[c.Type]
		e.Type = mt.Name
		if len(c.Stack) > 0 {
			e.State = mt.States[c.top().State].Name
		}
	}
	return e
}

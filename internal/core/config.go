package core

import (
	"fmt"
	"strings"
	"sync/atomic"

	"pgo/internal/ir"
)

// Cont is an immutable continuation: the sequence of statements remaining to
// execute, as a cons list. Nodes are never mutated after creation, so
// continuations may be shared freely between cloned configurations.
type Cont struct {
	S    *ir.Stmt
	Next *Cont
}

// push prepends the statements of body (in order) to k.
func push(body []*ir.Stmt, k *Cont) *Cont {
	for i := len(body) - 1; i >= 0; i-- {
		k = &Cont{S: body[i], Next: k}
	}
	return k
}

// inheritNone marks an event with no inherited handler (the ⊥ of the a map).
const inheritNone int16 = -1

// inheritDefer marks an inherited deferral (the T of the a map).
const inheritDefer int16 = -2

// Frame is one entry of a machine's call stack: the current state plus the
// handler map inherited from callers (the (n, a) pairs of the semantics).
// Inherited is indexed by EventID: inheritNone, inheritDefer, or an
// ActionID. Inherited is immutable after frame creation and may be shared.
// ReturnCont is non-nil only for frames pushed by the `call` statement: the
// continuation to resume when the frame is popped by return.
type Frame struct {
	State      ir.StateID
	Inherited  []int16
	ReturnCont *Cont
}

// QEntry is one input-queue entry: an event with its payload.
type QEntry struct {
	Event ir.EventID
	Val   Value
}

// Mode describes what a machine configuration is doing.
type Mode uint8

const (
	// ModeRun executes the continuation; when it drains the machine
	// attempts to dequeue an event.
	ModeRun Mode = iota
	// ModeRaise runs the pre-raise statements (the exit preamble) and then
	// handles the raised event via STEP/ACTION/CALL/POP1.
	ModeRaise
	// ModeReturn runs the exit statement and then pops the stack (POP2).
	ModeReturn
	// ModeHalted marks a deleted machine (kept as a tombstone in Global so
	// sends to it can be diagnosed as SEND-FAIL-2).
	ModeHalted
)

// Config is the configuration of one machine instance: the (σ-stack, s, s̄, q)
// tuple of the semantics plus the mode bookkeeping described above.
type Config struct {
	ID   MachineID
	Type ir.MachineTypeID

	// gid identifies the Global that owns this configuration for
	// copy-on-write cloning: a Global may mutate a Config only when the
	// generations match, and copies it first otherwise.
	gid uint64

	Stack []Frame // index 0 = bottom, last = top
	Vars  []Value
	Msg   Value // the `msg` special variable (an event value or ⊥)
	Arg   Value // the `arg` special variable

	Cont *Cont
	Mode Mode

	// Raised is the event being handled in ModeRaise, with its payload.
	Raised    ir.EventID
	RaisedVal Value
	// ExitRun records that the exit preamble for the current raise has
	// already run at the current top frame.
	ExitRun bool

	Queue []QEntry

	// Cached fingerprints of this one configuration (see fingerprint.go):
	// fp is valid iff fpOK, fpStr is valid iff non-empty. Invalidated by the
	// mutation funnel (own/invalidateFp), shared by copy-on-write clones,
	// and written only while exclusively owned (gid matches the owning
	// Global), so shared configurations can be fingerprinted concurrently.
	fp    Fp
	fpOK  bool
	fpStr string

	// Cached held-machine-id set (see ids.go); valid iff heldOK. Same
	// discipline as the fingerprint caches.
	held   []MachineID
	heldOK bool

	// Ctx is an opaque host context pointer (the SMGetContext analog). It is
	// ignored by fingerprinting and cloning; only the concurrent runtime
	// uses it.
	Ctx any
}

// invalidateFp drops the configuration's cached fingerprints. Called by the
// mutation funnel (Global.own) before the caller mutates.
func (c *Config) invalidateFp() {
	c.fpOK = false
	c.fpStr = ""
	c.heldOK = false
	c.held = nil
}

// top returns the top stack frame. Callers must ensure the stack is nonempty.
func (c *Config) top() *Frame { return &c.Stack[len(c.Stack)-1] }

// Depth returns the call-stack depth.
func (c *Config) Depth() int { return len(c.Stack) }

// CurrentState returns the state id at the top of the stack, or -1 if the
// stack is empty or the machine halted.
func (c *Config) CurrentState() ir.StateID {
	if c.Mode == ModeHalted || len(c.Stack) == 0 {
		return -1
	}
	return c.top().State
}

// clone returns a deep copy of the configuration. Continuations and
// inherited maps are shared (immutable). append-style copies skip the
// make+copy double write (no zeroing pass) and allocate nothing for empty
// slices — queues are empty in most explorer states.
func (c *Config) clone() *Config {
	n := *c
	n.Stack = append([]Frame(nil), c.Stack...)
	n.Vars = append([]Value(nil), c.Vars...)
	n.Queue = append([]QEntry(nil), c.Queue...)
	return &n
}

// enqueue appends (e, v) with the ⊕ dedup semantics: if an identical
// event-value pair is already queued, the queue is unchanged. It reports
// whether the entry was added. dedup false disables the check (the
// flooding ablation).
func (c *Config) enqueue(e ir.EventID, v Value, dedup bool) bool {
	if dedup {
		for _, q := range c.Queue {
			if q.Event == e && q.Val == v {
				return false
			}
		}
	}
	c.Queue = append(c.Queue, QEntry{Event: e, Val: v})
	return true
}

// globalGen allocates copy-on-write generations for Globals.
var globalGen atomic.Uint64

// Global is a global configuration: the map M from machine identifiers to
// machine configurations, plus the id allocator. Machine ids are allocated
// sequentially from 1, so the configurations live in a slice indexed by
// id-1; deleted machines keep a halted tombstone in place.
//
// Globals clone copy-on-write: Clone shares the machine configurations and
// a mutation first copies the configuration being touched. This makes the
// explorer's clone-per-branch discipline cheap.
type Global struct {
	Prog     *ir.Program
	machines []*Config
	gid      uint64
	NextID   MachineID

	// Cached whole-global fingerprints (see fingerprint.go): fp is valid iff
	// fpOK, fpStr is valid iff non-empty. These cache the positional combine
	// over the per-Config digests; computed lazily, dropped on mutation, and
	// inherited by clones (a clone is semantically identical until one side
	// mutates, and mutation funnels through own/CreateMachine).
	fp    Fp
	fpOK  bool
	fpStr string

	// Foreign supplies host implementations of foreign functions; may be nil
	// during verification (models or ⊥ results are used instead).
	Foreign ForeignEnv

	// DisableDedup turns the ⊕ queue dedup append into a plain append — an
	// ablation showing why the paper dedups hardware-generated events.
	DisableDedup bool

	// YieldOnDequeue makes every event dequeue a scheduling point in
	// addition to sends and creations — the ablation of §5's atomicity
	// reduction (a receive is a right mover, so yielding there only grows
	// the schedule space).
	YieldOnDequeue bool
}

// ForeignEnv resolves host implementations of foreign functions.
type ForeignEnv interface {
	// Lookup returns the host implementation of function fn declared in
	// machine type machine, or nil if none is bound.
	Lookup(machine, fn string) ForeignFn
}

// ForeignFn is a host foreign function. It receives the calling machine's
// context pointer (SMGetContext analog) and evaluated arguments.
type ForeignFn func(ctx any, args []Value) (Value, error)

// ForeignMap is a simple ForeignEnv keyed by "Machine.fn".
type ForeignMap map[string]ForeignFn

// Lookup implements ForeignEnv.
func (m ForeignMap) Lookup(machine, fn string) ForeignFn {
	return m[machine+"."+fn]
}

// NewGlobal returns an empty global configuration for prog.
func NewGlobal(prog *ir.Program, foreign ForeignEnv) *Global {
	return &Global{
		Prog:    prog,
		gid:     globalGen.Add(1),
		NextID:  1,
		Foreign: foreign,
	}
}

// Clone returns a logically deep copy of the global configuration. Machine
// configurations are shared copy-on-write: the clone (and the original)
// copy a configuration the first time they mutate it. Both sides therefore
// receive fresh generations — after Clone, neither owns the shared
// configurations.
func (g *Global) Clone() *Global {
	g.gid = globalGen.Add(1)
	n := &Global{
		Prog:           g.Prog,
		machines:       append([]*Config(nil), g.machines...),
		gid:            globalGen.Add(1),
		NextID:         g.NextID,
		Foreign:        g.Foreign,
		DisableDedup:   g.DisableDedup,
		YieldOnDequeue: g.YieldOnDequeue,
		fp:             g.fp,
		fpOK:           g.fpOK,
		fpStr:          g.fpStr,
	}
	return n
}

// Lookup returns the configuration of machine id including halted
// tombstones, or nil if the id was never allocated. The returned
// configuration must be treated as read-only.
func (g *Global) Lookup(id MachineID) *Config {
	i := int(id) - 1
	if i < 0 || i >= len(g.machines) {
		return nil
	}
	return g.machines[i]
}

// own returns a mutable configuration for machine id, copying it first if
// it is shared with other clones. Returns nil like Lookup for unknown ids.
func (g *Global) own(id MachineID) *Config {
	c := g.Lookup(id)
	if c == nil {
		return nil
	}
	// The caller is about to mutate: conservatively drop the Global-level
	// combine cache and the touched Config's own cache (even a ⊕-dropped
	// send invalidates; correctness over precision — the re-encode then
	// reproduces the same digest, so the global key is unchanged). Only the
	// mutated machine loses its cache; the others keep theirs, which is what
	// makes re-fingerprinting after a macro step O(1 machine + combine).
	g.invalidateFingerprint()
	if c.gid == g.gid {
		c.invalidateFp()
		return c
	}
	cp := c.clone()
	cp.gid = g.gid
	cp.invalidateFp()
	g.machines[int(id)-1] = cp
	return cp
}

// IDs returns all machine ids in creation order, including halted ones.
func (g *Global) IDs() []MachineID {
	out := make([]MachineID, len(g.machines))
	for i := range g.machines {
		out[i] = MachineID(i + 1)
	}
	return out
}

// LiveIDs returns the ids of machines that have not been deleted.
func (g *Global) LiveIDs() []MachineID {
	out := make([]MachineID, 0, len(g.machines))
	for i, c := range g.machines {
		if c != nil && c.Mode != ModeHalted {
			out = append(out, MachineID(i+1))
		}
	}
	return out
}

// Get returns the configuration of machine id, or nil if it never existed
// or was deleted.
func (g *Global) Get(id MachineID) *Config {
	c := g.Lookup(id)
	if c == nil || c.Mode == ModeHalted {
		return nil
	}
	return c
}

// MachineType returns the ir machine type of configuration c.
func (g *Global) MachineType(c *Config) *ir.Machine { return g.Prog.Machines[c.Type] }

// InitVal is a pre-evaluated variable initializer for machine creation.
type InitVal struct {
	Var ir.VarID
	Val Value
}

// NewConfig builds the initial configuration of machine type mt with id:
// variables at ⊥ overwritten by vals, initial state pushed with an empty
// inherited map, entry statement pending, empty queue (the NEW rule).
func NewConfig(prog *ir.Program, id MachineID, t ir.MachineTypeID, vals []InitVal) *Config {
	mt := prog.Machines[t]
	c := &Config{
		ID:   id,
		Type: t,
		Vars: make([]Value, len(mt.Vars)),
	}
	for i := range c.Vars {
		c.Vars[i] = Null
	}
	for _, iv := range vals {
		c.Vars[iv.Var] = iv.Val
	}
	inherited := make([]int16, len(prog.Events))
	for i := range inherited {
		inherited[i] = inheritNone
	}
	c.Stack = []Frame{{State: mt.Init, Inherited: inherited}}
	c.Cont = push(mt.States[mt.Init].Entry, nil)
	c.Mode = ModeRun
	return c
}

// CreateMachine implements World for the verification world.
func (g *Global) CreateMachine(t ir.MachineTypeID, vals []InitVal) (MachineID, *Err) {
	mt := g.Prog.Machines[t]
	if mt.ErasedStub {
		return 0, &Err{Kind: ErrStub, Type: mt.Name, Detail: "ghost machines are erased from compiled programs"}
	}
	c := NewConfig(g.Prog, g.NextID, t, vals)
	c.gid = g.gid
	g.invalidateFingerprint()
	g.NextID++
	g.machines = append(g.machines, c)
	return c.ID, nil
}

// SendEvent implements World for the verification world.
func (g *Global) SendEvent(target MachineID, e ir.EventID, v Value) (delivered, found bool) {
	c := g.Lookup(target)
	if c == nil || c.Mode == ModeHalted {
		return false, false
	}
	c = g.own(target)
	return c.enqueue(e, v, !g.DisableDedup), true
}

// Create instantiates machine type t (the NEW rule): variables initialized
// to ⊥ then overwritten by inits evaluated in the creator's configuration
// (creator may be nil for the program's initial machine, in which case the
// initializer expressions must be constant).
func (g *Global) Create(t ir.MachineTypeID, inits []ir.Init, creator *Config, cs ChoiceSource) (*Config, *Err) {
	x := &Exec{Prog: g.Prog, World: g, Foreign: g.Foreign}
	vals := make([]InitVal, 0, len(inits))
	for _, init := range inits {
		v, err := x.eval(creator, init.Expr, cs)
		if err != nil {
			return nil, err
		}
		vals = append(vals, InitVal{Var: init.Var, Val: v})
	}
	id, err := g.CreateMachine(t, vals)
	if err != nil {
		return nil, err
	}
	return g.Lookup(id), nil
}

// CreateMain instantiates the program's main machine with its constant
// initializers (the closed program's starting configuration).
func (g *Global) CreateMain() (*Config, *Err) {
	return g.Create(g.Prog.Main, g.Prog.MainInits, nil, nil)
}

// String renders a short human-readable summary of the global configuration.
func (g *Global) String() string {
	var b strings.Builder
	for i, c := range g.machines {
		id := MachineID(i + 1)
		if c == nil || c.Mode == ModeHalted {
			fmt.Fprintf(&b, "#%d: halted\n", id)
			continue
		}
		mt := g.Prog.Machines[c.Type]
		fmt.Fprintf(&b, "#%d %s @%s depth=%d queue=%d\n", id, mt.Name,
			mt.States[c.top().State].Name, len(c.Stack), len(c.Queue))
	}
	return b.String()
}

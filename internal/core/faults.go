package core

// Environment fault transitions. These extend the step semantics additively:
// each models one hostile-environment move that the paper's ghost machines
// can only approximate by sending events — a machine dying without running
// its delete path, and the transport dropping or re-delivering a message.
// The checker's chaos mode (internal/check, pverify -chaos) branches over
// them under a fault budget; none of them is reachable without it.
//
// All three funnel mutations through Global.own, so copy-on-write sharing
// and the incremental fingerprint caches stay coherent: a fault successor
// fingerprints exactly like any other successor.

// InjectCrash halts machine id as if the environment killed it: the
// configuration becomes a halted tombstone indistinguishable from one left
// by the delete statement, so a later send to it takes the paper's
// SEND-FAIL-2 (send to deleted machine) error transition. It reports
// whether the machine was live.
func (g *Global) InjectCrash(id MachineID) bool {
	c := g.Lookup(id)
	if c == nil || c.Mode == ModeHalted {
		return false
	}
	c = g.own(id)
	c.Mode = ModeHalted
	c.Cont = nil
	c.Stack = nil
	c.Queue = nil
	return true
}

// InjectDrop removes the event machine id would dequeue next (its first
// deliverable queue entry), modeling a message lost in transit. It returns
// the dropped entry, or ok=false if the machine is not live or has no
// deliverable event.
func (g *Global) InjectDrop(id MachineID) (QEntry, bool) {
	c := g.Lookup(id)
	if c == nil || c.Mode == ModeHalted {
		return QEntry{}, false
	}
	i := deliverableIndex(g.Prog, c)
	if i < 0 {
		return QEntry{}, false
	}
	c = g.own(id)
	q := c.Queue[i]
	c.Queue = append(c.Queue[:i:i], c.Queue[i+1:]...)
	return q, true
}

// InjectDup appends a second copy of the event machine id would dequeue
// next to the tail of its queue, bypassing the ⊕ dedup append — the
// re-delivery the dedup semantics exists to suppress, forced through by the
// environment (the paper's motivating example is hardware re-raising an
// interrupt). It returns the duplicated entry, or ok=false if the machine
// is not live or has no deliverable event.
func (g *Global) InjectDup(id MachineID) (QEntry, bool) {
	c := g.Lookup(id)
	if c == nil || c.Mode == ModeHalted {
		return QEntry{}, false
	}
	i := deliverableIndex(g.Prog, c)
	if i < 0 {
		return QEntry{}, false
	}
	c = g.own(id)
	q := c.Queue[i]
	c.Queue = append(c.Queue, q)
	return q, true
}

package core

import (
	"encoding/binary"
	"math/bits"
)

// Stable hashing for fingerprints. The original fingerprint scheme hashed
// canonical encodings with hash/maphash, whose seeds are per-process: fine
// for in-memory visited sets, useless the moment fingerprints are written to
// disk. The tiered visited store (internal/store) persists fingerprint-keyed
// chunks and checkpoint/resume reloads them in a different process, so the
// fingerprint hash must be a pure function of the encoding. StableHash64 is
// xxHash64 with fixed seeds: well mixed, ~constant-factor of maphash on the
// short (tens to hundreds of bytes) per-machine encodings this hot path
// hashes, and identical across processes, runs, and architectures.

// FingerprintScheme names the persistent fingerprint scheme. It is recorded
// in checkpoint manifests and store directories; a mismatch means fingerprint
// keys on disk were produced by an incompatible hash and must not be reused.
const FingerprintScheme = "fp/xxh64/1"

// xxHash64 primes.
const (
	xxPrime1 = 0x9E3779B185EBCA87
	xxPrime2 = 0xC2B2AE3D27D4EB4F
	xxPrime3 = 0x165667B19E3779F9
	xxPrime4 = 0x85EBCA77C2B2AE63
	xxPrime5 = 0x27D4EB2F165667C5
)

func xxRound(acc, input uint64) uint64 {
	acc += input * xxPrime2
	acc = bits.RotateLeft64(acc, 31)
	acc *= xxPrime1
	return acc
}

func xxMergeRound(acc, val uint64) uint64 {
	acc ^= xxRound(0, val)
	return acc*xxPrime1 + xxPrime4
}

// StableHash64 computes xxHash64(seed, b). Distinct seeds give independent
// hash functions; the 128-bit fingerprint uses two.
func StableHash64(seed uint64, b []byte) uint64 {
	n := uint64(len(b))
	var h uint64
	if len(b) >= 32 {
		v1 := seed + xxPrime1 + xxPrime2
		v2 := seed + xxPrime2
		v3 := seed
		v4 := seed - xxPrime1
		for len(b) >= 32 {
			v1 = xxRound(v1, binary.LittleEndian.Uint64(b))
			v2 = xxRound(v2, binary.LittleEndian.Uint64(b[8:]))
			v3 = xxRound(v3, binary.LittleEndian.Uint64(b[16:]))
			v4 = xxRound(v4, binary.LittleEndian.Uint64(b[24:]))
			b = b[32:]
		}
		h = bits.RotateLeft64(v1, 1) + bits.RotateLeft64(v2, 7) +
			bits.RotateLeft64(v3, 12) + bits.RotateLeft64(v4, 18)
		h = xxMergeRound(h, v1)
		h = xxMergeRound(h, v2)
		h = xxMergeRound(h, v3)
		h = xxMergeRound(h, v4)
	} else {
		h = seed + xxPrime5
	}
	h += n
	for len(b) >= 8 {
		h ^= xxRound(0, binary.LittleEndian.Uint64(b))
		h = bits.RotateLeft64(h, 27)*xxPrime1 + xxPrime4
		b = b[8:]
	}
	if len(b) >= 4 {
		h ^= uint64(binary.LittleEndian.Uint32(b)) * xxPrime1
		h = bits.RotateLeft64(h, 23)*xxPrime2 + xxPrime3
		b = b[4:]
	}
	for _, c := range b {
		h ^= uint64(c) * xxPrime5
		h = bits.RotateLeft64(h, 11) * xxPrime1
	}
	h ^= h >> 33
	h *= xxPrime2
	h ^= h >> 29
	h *= xxPrime3
	h ^= h >> 32
	return h
}

package core_test

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"pgo/internal/core"
	"pgo/internal/ir"
	"pgo/internal/psamples"
)

// msg and arg track the last dequeued event and payload (DEQUEUE rule).
const msgArgProgram = `
event Data(int);
event Probe;
machine M {
  var lastWasData: bool;
  var sum: int;
  state S {
    entry { sum = 0; }
    on Data do Accumulate;
    on Probe do CheckMsg;
  }
  action Accumulate {
    lastWasData = msg == Data;
    sum = sum + arg;
  }
  action CheckMsg {
    lastWasData = msg == Data;
  }
}
main M();
`

func TestMsgAndArg(t *testing.T) {
	prog := mustCompile(t, "msgarg", msgArgProgram)
	g := core.NewGlobal(prog, nil)
	m, _ := g.CreateMain()
	data, _ := prog.EventByName("Data")
	probe, _ := prog.EventByName("Probe")
	g.Send(m.ID, data, core.IntVal(4))
	g.Send(m.ID, data, core.IntVal(5))
	if err := runRoundRobin(t, g, 100); err != nil {
		t.Fatal(err)
	}
	if m.Vars[1] != core.IntVal(9) {
		t.Fatalf("sum = %v, want 9", m.Vars[1])
	}
	if m.Vars[0] != core.BoolVal(true) {
		t.Fatal("msg did not equal Data inside the Data handler")
	}
	g.Send(m.ID, probe, core.Null)
	if err := runRoundRobin(t, g, 100); err != nil {
		t.Fatal(err)
	}
	if m.Vars[0] != core.BoolVal(false) {
		t.Fatal("msg still Data inside the Probe handler")
	}
}

// The call *statement* saves the continuation: after the callee returns,
// execution resumes with the statements following the call.
const callStmtProgram = `
event Done; event unit;
machine M {
  var trace: int;
  state Root {
    entry {
      trace = trace * 10 + 1;
      call Sub;
      trace = trace * 10 + 3;
      raise unit;
    }
    on unit goto Fin;
  }
  state Sub {
    entry {
      trace = trace * 10 + 2;
      return;
    }
  }
  state Fin {
    entry { trace = trace * 10 + 4; }
    on Done goto Fin;
  }
}
main M(trace = 0);
`

func TestCallStatementResumesContinuation(t *testing.T) {
	prog := mustCompile(t, "callstmt", callStmtProgram)
	g := core.NewGlobal(prog, nil)
	m, _ := g.CreateMain()
	if err := runRoundRobin(t, g, 100); err != nil {
		t.Fatal(err)
	}
	if m.Vars[0] != core.IntVal(1234) {
		t.Fatalf("trace = %v, want 1234 (call resumes after return)", m.Vars[0])
	}
	if m.Depth() != 1 {
		t.Fatalf("depth = %d after return, want 1", m.Depth())
	}
}

// An unhandled event in a state entered by a call statement discards the
// saved continuation (POP1) and the caller handles the event.
const callStmtPopProgram = `
event E; event unit;
machine M {
  var trace: int;
  state Root {
    entry {
      call Sub;
      trace = trace * 10 + 9;
    }
    on E goto Handled;
  }
  state Sub {
    entry {
      trace = trace * 10 + 1;
      raise E;
    }
  }
  state Handled {
    entry { trace = trace * 10 + 2; }
    on E goto Handled;
  }
}
main M(trace = 0);
`

func TestCallStatementPopDiscardsContinuation(t *testing.T) {
	prog := mustCompile(t, "callpop", callStmtPopProgram)
	g := core.NewGlobal(prog, nil)
	m, _ := g.CreateMain()
	if err := runRoundRobin(t, g, 100); err != nil {
		t.Fatal(err)
	}
	// 1 (Sub entry) then 2 (Handled); the ...9 continuation must NOT run.
	if m.Vars[0] != core.IntVal(12) {
		t.Fatalf("trace = %v, want 12", m.Vars[0])
	}
}

// Foreign model bodies execute during verification and may use `*` and
// update ghost variables.
const foreignModelProgram = `
event unit;
ghost machine G { state S { entry { skip; } } }
machine M {
  ghost var calls: int;
  var x: int;
  foreign tick(): void {
    calls = calls + 1;
    if * { calls = calls + 100; }
  }
  state S {
    entry {
      calls = 0;
      tick();
      tick();
      assert calls >= 2;
      x = 1;
    }
  }
}
main M();
`

func TestForeignModelExecutes(t *testing.T) {
	prog := mustCompile(t, "fmodel", foreignModelProgram)
	g := core.NewGlobal(prog, nil)
	m, _ := g.CreateMain()
	out := g.RunToSchedPoint(m.ID, &core.FixedChoices{Bits: []bool{true, false}}, 0)
	if out.Kind == core.OutError {
		t.Fatalf("run: %v", out.Err)
	}
	// calls = 1 + 100 (first tick chose true) + 1 = 102.
	if m.Vars[0] != core.IntVal(102) {
		t.Fatalf("calls = %v, want 102", m.Vars[0])
	}
	if m.Vars[1] != core.IntVal(1) {
		t.Fatalf("x = %v, want 1", m.Vars[1])
	}
}

// ⊥ propagation: operators on null produce null; conditions on null error.
const nullProgram = `
event unit;
machine M {
  var a: int;
  var b: int;
  var undefSum: bool;
  var undefDiv: bool;
  var eqNull: bool;
  state S {
    entry {
      b = 7;
      undefSum = a + b == null;
      undefDiv = b / 0 == null;
      eqNull = a == null;
    }
  }
}
main M();
`

func TestNullPropagation(t *testing.T) {
	prog := mustCompile(t, "null", nullProgram)
	g := core.NewGlobal(prog, nil)
	m, _ := g.CreateMain()
	if err := runRoundRobin(t, g, 100); err != nil {
		t.Fatal(err)
	}
	for i, name := range []string{"undefSum", "undefDiv", "eqNull"} {
		if m.Vars[i+2] != core.BoolVal(true) {
			t.Errorf("%s = %v, want true", name, m.Vars[i+2])
		}
	}
}

func TestNullConditionIsError(t *testing.T) {
	prog := mustCompile(t, "nullcond", `
event unit;
machine M {
  var b: bool;
  state S {
    entry { if b { skip; } }
  }
}
main M();
`)
	g := core.NewGlobal(prog, nil)
	g.CreateMain()
	err := runRoundRobin(t, g, 100)
	if err == nil || err.Kind != core.ErrUndefCond {
		t.Fatalf("expected undefined-condition error, got %v", err)
	}
}

// Short-circuit evaluation: the right operand of && / || is skipped when
// the left decides, so a null right side does not poison the result.
const shortCircuitProgram = `
event unit;
machine M {
  var undef: bool;
  var a: bool;
  var b: bool;
  state S {
    entry {
      a = false && undef;
      b = true || undef;
    }
  }
}
main M();
`

func TestShortCircuit(t *testing.T) {
	prog := mustCompile(t, "shortcircuit", shortCircuitProgram)
	g := core.NewGlobal(prog, nil)
	m, _ := g.CreateMain()
	if err := runRoundRobin(t, g, 100); err != nil {
		t.Fatal(err)
	}
	if m.Vars[1] != core.BoolVal(false) {
		t.Fatalf("false && undef = %v, want false", m.Vars[1])
	}
	if m.Vars[2] != core.BoolVal(true) {
		t.Fatalf("true || undef = %v, want true", m.Vars[2])
	}
}

// ------------------------------------------------------------ properties

// Property: cloning commutes with running — running the same schedule on a
// clone produces the same fingerprint as running it on the original.
func TestCloneRunCommutes(t *testing.T) {
	prog := mustCompile(t, "elevator", psamples.Elevator)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := core.NewGlobal(prog, nil)
		if _, err := g.CreateMain(); err != nil {
			return false
		}
		// Random warm-up walk.
		for i := 0; i < 10; i++ {
			ids := g.LiveIDs()
			var enabled []core.MachineID
			for _, id := range ids {
				if g.Enabled(id) {
					enabled = append(enabled, id)
				}
			}
			if len(enabled) == 0 {
				break
			}
			id := enabled[r.Intn(len(enabled))]
			bits := randomBits(r, 8)
			g.RunToSchedPoint(id, &core.FixedChoices{Bits: bits}, 0)
		}
		clone := g.Clone()
		if clone.Fingerprint() != g.Fingerprint() {
			return false
		}
		// The same step on both must agree.
		var enabled []core.MachineID
		for _, id := range g.LiveIDs() {
			if g.Enabled(id) {
				enabled = append(enabled, id)
			}
		}
		if len(enabled) == 0 {
			return true
		}
		id := enabled[r.Intn(len(enabled))]
		bits := randomBits(r, 8)
		g.RunToSchedPoint(id, &core.FixedChoices{Bits: bits}, 0)
		clone.RunToSchedPoint(id, &core.FixedChoices{Bits: bits}, 0)
		return clone.Fingerprint() == g.Fingerprint()
	}
	cfg := &quick.Config{
		MaxCount: 40,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(r.Int63())
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func randomBits(r *rand.Rand, n int) []bool {
	bits := make([]bool, n)
	for i := range bits {
		bits[i] = r.Intn(2) == 0
	}
	return bits
}

// Property: the queue never contains a duplicate (event, value) pair, for
// any random sequence of sends (the ⊕ invariant).
func TestQueueDedupInvariant(t *testing.T) {
	prog := mustCompile(t, "pingpong", psamples.PingPong)
	f := func(events []uint8) bool {
		g := core.NewGlobal(prog, nil)
		m, err := g.CreateMain()
		if err != nil {
			return false
		}
		for _, b := range events {
			e := ir.EventID(int(b) % len(prog.Events))
			v := core.IntVal(int64(b) % 3)
			g.Send(m.ID, e, v)
		}
		seen := map[core.QEntry]bool{}
		for _, q := range m.Queue {
			if seen[q] {
				return false
			}
			seen[q] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: fingerprints are injective on the states reachable in a short
// random walk — two globals with equal fingerprints render identically.
func TestFingerprintConsistentWithString(t *testing.T) {
	prog := mustCompile(t, "boundedbuffer", psamples.BoundedBuffer)
	byFP := map[string]string{}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := core.NewGlobal(prog, nil)
		if _, err := g.CreateMain(); err != nil {
			return false
		}
		for i := 0; i < 15; i++ {
			var enabled []core.MachineID
			for _, id := range g.LiveIDs() {
				if g.Enabled(id) {
					enabled = append(enabled, id)
				}
			}
			if len(enabled) == 0 {
				break
			}
			id := enabled[r.Intn(len(enabled))]
			g.RunToSchedPoint(id, &core.FixedChoices{Bits: randomBits(r, 6)}, 0)
			fp := g.Fingerprint()
			if prev, ok := byFP[fp]; ok {
				if prev != g.String() {
					return false
				}
			} else {
				byFP[fp] = g.String()
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 40,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(r.Int63())
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Exit statements run when a state is popped by an unhandled event (POP1
// with exit preamble).
const exitOnPopProgram = `
event E; event Back;
machine M {
  var trace: int;
  state Root {
    entry { skip; }
    on E push Sub;
    on Back goto Fin;
  }
  state Sub {
    entry { trace = trace * 10 + 1; }
    exit { trace = trace * 10 + 2; }
  }
  state Fin {
    entry { trace = trace * 10 + 3; }
    on E goto Fin;
    on Back goto Fin;
  }
}
main M(trace = 0);
`

func TestExitRunsOnPop(t *testing.T) {
	prog := mustCompile(t, "exitpop", exitOnPopProgram)
	g := core.NewGlobal(prog, nil)
	m, _ := g.CreateMain()
	e, _ := prog.EventByName("E")
	back, _ := prog.EventByName("Back")
	g.Send(m.ID, e, core.Null)    // push Sub
	g.Send(m.ID, back, core.Null) // unhandled in Sub: exit, pop, Root handles
	if err := runRoundRobin(t, g, 100); err != nil {
		t.Fatal(err)
	}
	if m.Vars[0] != core.IntVal(123) {
		t.Fatalf("trace = %v, want 123 (Sub entry, Sub exit on pop, Fin entry)", m.Vars[0])
	}
}

// A deleted machine's tombstone keeps diagnosing sends (SEND-FAIL-2), and
// the machine no longer appears among live ids.
func TestTombstoneSemantics(t *testing.T) {
	prog := mustCompile(t, "pingpong", psamples.PingPong)
	g := core.NewGlobal(prog, nil)
	m, _ := g.CreateMain()
	if err := runRoundRobin(t, g, 10_000); err != nil {
		t.Fatal(err)
	}
	if len(g.LiveIDs()) != 0 {
		t.Fatal("machines should have deleted themselves")
	}
	pong, _ := prog.EventByName("Pong")
	if _, err := g.Send(m.ID, pong, core.Null); err == nil || err.Kind != core.ErrSendDeleted {
		t.Fatalf("send to tombstone: %v", err)
	}
	if g.Get(m.ID) != nil {
		t.Fatal("Get should not return a halted machine")
	}
}

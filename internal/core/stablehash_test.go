package core_test

import (
	"testing"

	"pgo/internal/core"
)

// The disk-backed visited store and checkpoint/resume persist fingerprint
// keys across processes, so StableHash64 must be exactly xxHash64 forever:
// these are the canonical reference vectors. If this test fails, on-disk
// stores and checkpoints from earlier builds are unreadable and
// core.FingerprintScheme must be bumped.
func TestStableHash64Vectors(t *testing.T) {
	cases := []struct {
		in   string
		seed uint64
		want uint64
	}{
		{"", 0, 0xEF46DB3751D8E999},
		{"a", 0, 0xD24EC4F1A98C6E5B},
		{"abc", 0, 0x44BC2CF5AD770999},
		{"message digest", 0, 0x066ED728FCEEB3BE},
		{"abcdefghijklmnopqrstuvwxyz", 0, 0xCFE1F278FA89835C},
		{"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789", 0, 0xAAA46907D3047814},
		{"12345678901234567890123456789012345678901234567890123456789012345678901234567890", 0, 0xE04A477F19EE145D},
	}
	for _, c := range cases {
		if got := core.StableHash64(c.seed, []byte(c.in)); got != c.want {
			t.Errorf("StableHash64(%d, %q) = %#x, want %#x", c.seed, c.in, got, c.want)
		}
	}
	// Seeded variant: distinct seeds must give distinct functions.
	if core.StableHash64(1, []byte("abc")) == core.StableHash64(2, []byte("abc")) {
		t.Error("seeds 1 and 2 collide on \"abc\"")
	}
}

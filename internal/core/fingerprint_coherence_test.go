package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"pgo/internal/compile"
	"pgo/internal/core"
	"pgo/internal/ir"
	"pgo/internal/psamples"
)

// The incremental fingerprint scheme must be observationally identical to
// recomputing the whole-global encoding from scratch. This property test
// drives random mutation sequences (macro steps, copy-on-write clones,
// ⊕-dropped duplicate sends) over compiled samples and asserts after every
// action that
//
//	(a) a clone and its original keep equal keys until one side mutates,
//	    and the unmutated side's key is unaffected by the other's mutation;
//	(b) a ⊕-dropped duplicate send leaves the key unchanged (the mutation
//	    funnel invalidates the cache, the re-encode reproduces the digest);
//	(c) the incremental Hash/Fingerprint equal a from-scratch recomputation
//	    after every step.

func compileCoherence(t *testing.T, name, src string) *ir.Program {
	t.Helper()
	prog, diags, err := compile.Source(name, src)
	if err != nil {
		t.Fatalf("compile %s: %v\n%s", name, err, diags.String())
	}
	return prog
}

// assertCoherent checks property (c) on one global configuration.
func assertCoherent(t *testing.T, g *core.Global, ctx string) {
	t.Helper()
	if got, want := g.Hash(), g.HashFromScratch(); got != want {
		t.Fatalf("%s: incremental Hash %x/%x != from-scratch %x/%x",
			ctx, got.Hi, got.Lo, want.Hi, want.Lo)
	}
	if got, want := g.Fingerprint(), g.FingerprintFromScratch(); got != want {
		t.Fatalf("%s: incremental Fingerprint diverges from from-scratch encoding (%d vs %d bytes)",
			ctx, len(got), len(want))
	}
}

func TestFingerprintCoherence(t *testing.T) {
	samples := map[string]string{
		"elevator":  psamples.Elevator,
		"switchled": psamples.SwitchLED,
		"german":    psamples.German(2),
		"ring":      psamples.Ring(3),
	}
	for name, src := range samples {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			prog := compileCoherence(t, name, src)
			for seed := int64(0); seed < 4; seed++ {
				rng := rand.New(rand.NewSource(seed))
				g := core.NewGlobal(prog, nil)
				if _, err := g.CreateMain(); err != nil {
					t.Fatal(err)
				}
				assertCoherent(t, g, "initial")

				// pool holds independently evolving CoW relatives.
				pool := []*core.Global{g}
				for step := 0; step < 120; step++ {
					cur := pool[rng.Intn(len(pool))]
					ctx := fmt.Sprintf("seed %d step %d", seed, step)
					switch action := rng.Intn(10); {
					case action == 0 && len(pool) < 8:
						// Clone: equal keys while both sides are unmutated (a).
						before := cur.Hash()
						cl := cur.Clone()
						if cl.Hash() != before || cur.Hash() != before {
							t.Fatalf("%s: clone changed keys", ctx)
						}
						if cl.Fingerprint() != cur.Fingerprint() {
							t.Fatalf("%s: clone exact keys differ", ctx)
						}
						assertCoherent(t, cl, ctx+" (clone)")
						pool = append(pool, cl)
					case action == 1:
						// ⊕-dropped duplicate send: key must not move (b).
						id, q, ok := queuedEntry(cur)
						if !ok {
							continue
						}
						before, beforeStr := cur.Hash(), cur.Fingerprint()
						delivered, err := cur.Send(id, q.Event, q.Val)
						if err != nil {
							t.Fatalf("%s: duplicate send: %v", ctx, err)
						}
						if delivered {
							t.Fatalf("%s: duplicate send was not ⊕-dropped", ctx)
						}
						if cur.Hash() != before || cur.Fingerprint() != beforeStr {
							t.Fatalf("%s: ⊕-dropped send changed the key", ctx)
						}
						assertCoherent(t, cur, ctx+" (dup send)")
					default:
						// Macro step on a random enabled machine; a CoW
						// relative must keep its key (a).
						id, ok := enabledMachine(cur, rng)
						if !ok {
							continue
						}
						witness := pool[rng.Intn(len(pool))]
						witnessKey := core.Fp{}
						if witness != cur {
							witnessKey = witness.Hash()
						}
						cur.RunToSchedPoint(id, &core.FixedChoices{}, 0)
						assertCoherent(t, cur, ctx+" (step)")
						if witness != cur && witness.Hash() != witnessKey {
							t.Fatalf("%s: mutating one CoW relative moved another's key", ctx)
						}
					}
				}
			}
		})
	}
}

// enabledMachine picks a random enabled machine of g, if any.
func enabledMachine(g *core.Global, rng *rand.Rand) (core.MachineID, bool) {
	var enabled []core.MachineID
	for _, id := range g.LiveIDs() {
		if g.Enabled(id) {
			enabled = append(enabled, id)
		}
	}
	if len(enabled) == 0 {
		return 0, false
	}
	return enabled[rng.Intn(len(enabled))], true
}

// queuedEntry finds a live machine with a pending queue entry to duplicate.
func queuedEntry(g *core.Global) (core.MachineID, core.QEntry, bool) {
	for _, id := range g.LiveIDs() {
		c := g.Get(id)
		if c != nil && len(c.Queue) > 0 {
			return id, c.Queue[0], true
		}
	}
	return 0, core.QEntry{}, false
}

package core_test

import (
	"strings"
	"testing"

	"pgo/internal/compile"
	"pgo/internal/core"
	"pgo/internal/ir"
	"pgo/internal/psamples"
)

// runRoundRobin drives g with a deterministic round-robin scheduler until
// quiescence or an error, returning the error (nil on quiescence). All `*`
// choices evaluate to false.
func runRoundRobin(t *testing.T, g *core.Global, maxMacro int) *core.Err {
	t.Helper()
	for i := 0; i < maxMacro; i++ {
		ran := false
		for _, id := range g.LiveIDs() {
			if !g.Enabled(id) {
				continue
			}
			ran = true
			out := g.RunToSchedPoint(id, &core.FixedChoices{}, 0)
			if out.Kind == core.OutError {
				return out.Err
			}
			break
		}
		if !ran {
			return nil
		}
	}
	t.Fatalf("no quiescence after %d macro steps", maxMacro)
	return nil
}

func mustCompile(t *testing.T, name, src string) *ir.Program {
	t.Helper()
	prog, diags, err := compile.Source(name, src)
	if err != nil {
		t.Fatalf("compile %s: %v\n%s", name, err, diags.String())
	}
	return prog
}

func TestPingPongRunsToQuiescence(t *testing.T) {
	prog := mustCompile(t, "pingpong", psamples.PingPong)
	g := core.NewGlobal(prog, nil)
	if _, err := g.CreateMain(); err != nil {
		t.Fatalf("create main: %v", err)
	}
	if err := runRoundRobin(t, g, 10_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	// Both machines delete themselves.
	if live := g.LiveIDs(); len(live) != 0 {
		t.Fatalf("expected all machines deleted, live = %v\n%s", live, g.String())
	}
}

func TestQueueDedup(t *testing.T) {
	prog := mustCompile(t, "pingpong", psamples.PingPong)
	g := core.NewGlobal(prog, nil)
	main, err := g.CreateMain()
	if err != nil {
		t.Fatalf("create main: %v", err)
	}
	ev, ok := prog.EventByName("Pong")
	if !ok {
		t.Fatal("no Pong event")
	}
	if added, err := g.Send(main.ID, ev, core.Null); err != nil || !added {
		t.Fatalf("first send: added=%v err=%v", added, err)
	}
	if added, err := g.Send(main.ID, ev, core.Null); err != nil || added {
		t.Fatalf("duplicate send should dedup: added=%v err=%v", added, err)
	}
	// A different payload is a different queue entry.
	ping, _ := prog.EventByName("Ping")
	if added, err := g.Send(main.ID, ping, core.IntVal(1)); err != nil || !added {
		t.Fatalf("payload send: added=%v err=%v", added, err)
	}
	if added, err := g.Send(main.ID, ping, core.IntVal(2)); err != nil || !added {
		t.Fatalf("distinct payload should enqueue: added=%v err=%v", added, err)
	}
}

const deferProgram = `
event A; event B; event Go;
machine M {
  var got: int;
  state S1 {
    defer A;
    entry { skip; }
    on B goto S2;
    on Go goto S1;
  }
  state S2 {
    entry { skip; }
    on A goto S3;
  }
  state S3 {
    entry { got = 1; }
    on A goto S3;
    on B goto S3;
  }
}
main M();
`

func TestDeferredEventSkipped(t *testing.T) {
	prog := mustCompile(t, "defer", deferProgram)
	g := core.NewGlobal(prog, nil)
	m, err := g.CreateMain()
	if err != nil {
		t.Fatal(err)
	}
	a, _ := prog.EventByName("A")
	b, _ := prog.EventByName("B")
	// Queue [A, B]: in S1, A is deferred, so B is dequeued first (-> S2),
	// then the deferred A is delivered (-> S3).
	g.Send(m.ID, a, core.Null)
	g.Send(m.ID, b, core.Null)
	if err := runRoundRobin(t, g, 100); err != nil {
		t.Fatalf("run: %v", err)
	}
	mt := g.Prog.Machines[m.Type]
	if got := mt.States[m.CurrentState()].Name; got != "S3" {
		t.Fatalf("expected to end in S3, got %s", got)
	}
	if m.Vars[0] != core.IntVal(1) {
		t.Fatalf("entry of S3 did not run: got=%v", m.Vars[0])
	}
}

const callProgram = `
event E; event F; event Back; event unit;
machine M {
  var trace: int;
  state Root {
    defer F;
    entry { skip; }
    on E push Sub;
    on Back goto Done;
  }
  state Sub {
    entry { trace = trace * 10 + 1; }
    on F goto SubNext;
  }
  state SubNext {
    entry {
      trace = trace * 10 + 2;
      raise Back;
    }
  }
  state Done {
    entry { trace = trace * 10 + 3; }
    on E goto Done;
    on F goto Done;
  }
}
main M(trace = 0);
`

// TestCallTransition checks the push/pop protocol: the call transition
// pushes Sub; the raised Back event is unhandled in the callee and pops to
// Root (POP1), where the step transition to Done fires.
func TestCallTransition(t *testing.T) {
	prog := mustCompile(t, "call", callProgram)
	g := core.NewGlobal(prog, nil)
	m, err := g.CreateMain()
	if err != nil {
		t.Fatal(err)
	}
	e, _ := prog.EventByName("E")
	f, _ := prog.EventByName("F")
	g.Send(m.ID, e, core.Null)
	g.Send(m.ID, f, core.Null)
	if err := runRoundRobin(t, g, 100); err != nil {
		t.Fatalf("run: %v", err)
	}
	if m.Vars[0] != core.IntVal(123) {
		t.Fatalf("trace = %v, want 123 (Sub entry, SubNext entry, Done entry)", m.Vars[0])
	}
	if m.Depth() != 1 {
		t.Fatalf("stack depth = %d after pop, want 1", m.Depth())
	}
}

// The callee inherits the caller's deferred set through the a' map: F is
// deferred by Root (not by Sub), yet must stay deferred inside Sub when the
// call transition pushes it — unless Sub handles it.
const inheritProgram = `
event E; event F; event G; event Back;
machine M {
  var order: int;
  state Root {
    defer F;
    entry { skip; }
    on E push Sub;
    on Back goto Fin;
  }
  state Sub {
    entry { skip; }
    on G goto SubDone;
  }
  state SubDone {
    entry { raise Back; }
  }
  state Fin {
    entry { order = order * 10 + 1; }
    on F goto TookF;
  }
  state TookF {
    entry { order = order * 10 + 2; }
    on E goto TookF;
    on G goto TookF;
  }
}
main M(order = 0);
`

func TestInheritedDefer(t *testing.T) {
	prog := mustCompile(t, "inherit", inheritProgram)
	g := core.NewGlobal(prog, nil)
	m, err := g.CreateMain()
	if err != nil {
		t.Fatal(err)
	}
	e, _ := prog.EventByName("E")
	f, _ := prog.EventByName("F")
	gg, _ := prog.EventByName("G")
	// E pushes Sub. F arrives next but Root deferred it, and Sub inherits
	// the deferral, so G is dequeued first (Sub -> SubDone -> raise Back
	// pops to Root -> Fin). Only then is F delivered, in Fin.
	g.Send(m.ID, e, core.Null)
	g.Send(m.ID, f, core.Null)
	g.Send(m.ID, gg, core.Null)
	if err := runRoundRobin(t, g, 100); err != nil {
		t.Fatalf("run: %v", err)
	}
	if m.Vars[0] != core.IntVal(12) {
		t.Fatalf("order = %v, want 12 (Fin before TookF)", m.Vars[0])
	}
}

const unhandledProgram = `
event A; event B;
machine M {
  state S {
    entry { skip; }
    on A goto S;
  }
}
main M();
`

func TestUnhandledEventError(t *testing.T) {
	prog := mustCompile(t, "unhandled", unhandledProgram)
	g := core.NewGlobal(prog, nil)
	m, _ := g.CreateMain()
	b, _ := prog.EventByName("B")
	g.Send(m.ID, b, core.Null)
	err := runRoundRobin(t, g, 100)
	if err == nil {
		t.Fatal("expected unhandled-event error")
	}
	if err.Kind != core.ErrUnhandled {
		t.Fatalf("kind = %v, want ErrUnhandled", err.Kind)
	}
	if !strings.Contains(err.Error(), "B") {
		t.Fatalf("error should name the event: %v", err)
	}
}

const assertProgram = `
event unit;
machine M {
  var x: int;
  state S {
    entry {
      x = 3;
      assert x > 2;
      assert x > 3;
    }
  }
}
main M();
`

func TestAssertFailure(t *testing.T) {
	prog := mustCompile(t, "assert", assertProgram)
	g := core.NewGlobal(prog, nil)
	g.CreateMain()
	err := runRoundRobin(t, g, 100)
	if err == nil || err.Kind != core.ErrAssert {
		t.Fatalf("expected assertion failure, got %v", err)
	}
}

const sendDeletedProgram = `
event Hi; event unit;
machine M {
  var other: id;
  state S {
    entry {
      other = new Victim();
      raise unit;
    }
    on unit goto Poke;
  }
  state Poke {
    entry { send other, Hi; }
  }
}
machine Victim {
  state V { entry { delete; } }
}
main M();
`

func TestSendToDeleted(t *testing.T) {
	prog := mustCompile(t, "senddeleted", sendDeletedProgram)
	g := core.NewGlobal(prog, nil)
	m, _ := g.CreateMain()
	// Schedule explicitly: M creates Victim (sched point), then Victim runs
	// and deletes itself, then M sends to the tombstone.
	out := g.RunToSchedPoint(m.ID, &core.FixedChoices{}, 0)
	if out.Kind != core.OutNew {
		t.Fatalf("expected creation sched point, got %v", out.Kind)
	}
	vict := g.RunToSchedPoint(out.Created, &core.FixedChoices{}, 0)
	if vict.Kind != core.OutHalted {
		t.Fatalf("expected victim to halt, got %v", vict.Kind)
	}
	fin := g.RunToSchedPoint(m.ID, &core.FixedChoices{}, 0)
	if fin.Kind != core.OutError || fin.Err.Kind != core.ErrSendDeleted {
		t.Fatalf("expected send-to-deleted error, got %v / %v", fin.Kind, fin.Err)
	}
}

const sendNullProgram = `
event Hi;
machine M {
  var other: id;
  state S {
    entry { send other, Hi; }
  }
}
main M();
`

func TestSendToNull(t *testing.T) {
	prog := mustCompile(t, "sendnull", sendNullProgram)
	g := core.NewGlobal(prog, nil)
	g.CreateMain()
	err := runRoundRobin(t, g, 100)
	if err == nil || err.Kind != core.ErrSendNull {
		t.Fatalf("expected send-to-null error, got %v", err)
	}
}

const divergeProgram = `
event unit;
machine M {
  var x: int;
  state S {
    entry {
      while true { x = x + 1; }
    }
  }
}
main M();
`

func TestDivergenceDetected(t *testing.T) {
	prog := mustCompile(t, "diverge", divergeProgram)
	g := core.NewGlobal(prog, nil)
	m, _ := g.CreateMain()
	out := g.RunToSchedPoint(m.ID, &core.FixedChoices{}, 1000)
	if out.Kind != core.OutError || out.Err.Kind != core.ErrDivergence {
		t.Fatalf("expected divergence error, got %v / %v", out.Kind, out.Err)
	}
}

func TestFingerprintStability(t *testing.T) {
	prog := mustCompile(t, "pingpong", psamples.PingPong)
	g := core.NewGlobal(prog, nil)
	g.CreateMain()
	fp1 := g.Fingerprint()
	clone := g.Clone()
	if got := clone.Fingerprint(); got != fp1 {
		t.Fatal("clone fingerprint differs from original")
	}
	// A step must change the fingerprint.
	clone.RunToSchedPoint(clone.LiveIDs()[0], &core.FixedChoices{}, 0)
	if clone.Fingerprint() == fp1 {
		t.Fatal("fingerprint unchanged after a macro step")
	}
	// And the original is untouched.
	if g.Fingerprint() != fp1 {
		t.Fatal("running a clone mutated the original")
	}
}

// Hash must behave exactly like Fingerprint under cloning and mutation,
// and its per-Global cache must invalidate on every mutation path: a macro
// step, a direct send — even a ⊕-dropped duplicate send that leaves the
// queue unchanged recomputes (conservative invalidation, same value).
func TestHashCacheInvalidation(t *testing.T) {
	prog := mustCompile(t, "pingpong", psamples.PingPong)
	g := core.NewGlobal(prog, nil)
	m, err := g.CreateMain()
	if err != nil {
		t.Fatal(err)
	}
	h1 := g.Hash()
	if g.Hash() != h1 {
		t.Fatal("repeated Hash changed without mutation")
	}
	clone := g.Clone()
	if clone.Hash() != h1 {
		t.Fatal("clone hash differs from original")
	}
	// A step must change the hash; the original keeps its cached value.
	clone.RunToSchedPoint(clone.LiveIDs()[0], &core.FixedChoices{}, 0)
	if clone.Hash() == h1 {
		t.Fatal("hash unchanged after a macro step")
	}
	if g.Hash() != h1 {
		t.Fatal("running a clone mutated the original's hash")
	}
	// Hash and Fingerprint agree on equality: same canonical encoding.
	if g.Fingerprint() == clone.Fingerprint() {
		t.Fatal("fingerprints equal but hashes differ")
	}
	// An enqueue invalidates and changes the hash.
	e := ir.EventID(0)
	if _, err := g.Send(m.ID, e, core.Null); err != nil {
		t.Fatal(err)
	}
	h2 := g.Hash()
	if h2 == h1 {
		t.Fatal("hash unchanged after enqueue")
	}
	// A ⊕-dropped duplicate send mutates nothing: the recomputed hash (the
	// cache is dropped conservatively) must equal the cached one.
	if added, err := g.Send(m.ID, e, core.Null); err != nil || added {
		t.Fatalf("duplicate send: added=%v err=%v", added, err)
	}
	if g.Hash() != h2 {
		t.Fatal("no-op mutation changed the hash")
	}
}

func TestChoiceEnumeration(t *testing.T) {
	f := &core.FixedChoices{}
	// Simulate a run demanding 2 choices.
	demand2 := func() (bool, bool) { a := f.Choose(); b := f.Choose(); return a, b }
	a, b := demand2()
	if a || b {
		t.Fatal("first string should be all false")
	}
	var seen [][2]bool
	seen = append(seen, [2]bool{a, b})
	for f.NextString() {
		a, b := demand2()
		seen = append(seen, [2]bool{a, b})
	}
	if len(seen) != 4 {
		t.Fatalf("enumerated %d strings, want 4: %v", len(seen), seen)
	}
}

const leaveProgram = `
event A;
machine M {
  var x: int;
  state S {
    entry {
      x = 1;
      leave;
      x = 2;
    }
    on A goto S;
  }
}
main M();
`

func TestLeaveSkipsRest(t *testing.T) {
	prog := mustCompile(t, "leave", leaveProgram)
	g := core.NewGlobal(prog, nil)
	m, _ := g.CreateMain()
	if err := runRoundRobin(t, g, 100); err != nil {
		t.Fatalf("run: %v", err)
	}
	if m.Vars[0] != core.IntVal(1) {
		t.Fatalf("x = %v, want 1 (leave must skip the rest of entry)", m.Vars[0])
	}
}

const exitProgram = `
event A; event B;
machine M {
  var trace: int;
  state S1 {
    entry { trace = trace * 10 + 1; }
    exit { trace = trace * 10 + 9; }
    on A goto S2;
    on B do NoOp;
  }
  state S2 {
    entry { trace = trace * 10 + 2; }
    on A goto S2;
    on B goto S2;
  }
  action NoOp { skip; }
}
main M(trace = 0);
`

// TestExitOnlyOnLeaving: exit runs when a step transition leaves the state,
// but not when an action handles an event in place.
func TestExitOnlyOnLeaving(t *testing.T) {
	prog := mustCompile(t, "exit", exitProgram)
	g := core.NewGlobal(prog, nil)
	m, _ := g.CreateMain()
	b, _ := prog.EventByName("B")
	a, _ := prog.EventByName("A")
	g.Send(m.ID, b, core.Null) // handled by action: no exit
	g.Send(m.ID, a, core.Null) // step: exit then entry of S2
	if err := runRoundRobin(t, g, 100); err != nil {
		t.Fatalf("run: %v", err)
	}
	if m.Vars[0] != core.IntVal(192) {
		t.Fatalf("trace = %v, want 192 (enter S1, exit S1, enter S2)", m.Vars[0])
	}
}

// Erasing the elevator program must remove the ghost machines and all sends
// to them, and the erased Elevator machine must still be executable.
func TestEraseElevator(t *testing.T) {
	prog := mustCompile(t, "elevator", psamples.Elevator)
	erased := ir.Erase(prog)
	if err := erased.Validate(); err != nil {
		t.Fatalf("erased program invalid: %v", err)
	}
	for _, m := range erased.Machines {
		if m.Ghost && !m.ErasedStub {
			t.Fatalf("ghost machine %s not stubbed", m.Name)
		}
	}
	elev, ok := erased.MachineByName("Elevator")
	if !ok {
		t.Fatal("no Elevator in erased program")
	}
	if elev.ErasedStub {
		t.Fatal("real machine stubbed by erasure")
	}
	// The erased elevator must contain no sends (all targets were ghost).
	var count func(ss []*ir.Stmt) int
	count = func(ss []*ir.Stmt) int {
		n := 0
		for _, s := range ss {
			if s.Op == ir.SSend || s.Op == ir.SNew {
				n++
			}
			n += count(s.Body) + count(s.Else)
		}
		return n
	}
	for _, st := range elev.States {
		if n := count(st.Entry) + count(st.Exit); n != 0 {
			t.Fatalf("state %s retains %d ghost operations after erasure", st.Name, n)
		}
	}
	// The erased elevator runs standalone: drive it with environment sends.
	g := core.NewGlobal(erased, nil)
	c, err := g.Create(elev.ID, nil, nil, nil)
	if err != nil {
		t.Fatalf("create erased elevator: %v", err)
	}
	open, _ := erased.EventByName("OpenDoor")
	opened, _ := erased.EventByName("DoorOpened")
	g.Send(c.ID, open, core.Null)
	if e := runRoundRobin(t, g, 100); e != nil {
		t.Fatalf("run: %v", e)
	}
	names := erased.Machines[c.Type].States
	if names[c.CurrentState()].Name != "Opening" {
		t.Fatalf("after OpenDoor expected Opening, got %s", names[c.CurrentState()].Name)
	}
	g.Send(c.ID, opened, core.Null)
	if e := runRoundRobin(t, g, 100); e != nil {
		t.Fatalf("run: %v", e)
	}
	if names[c.CurrentState()].Name != "Opened" {
		t.Fatalf("after DoorOpened expected Opened, got %s", names[c.CurrentState()].Name)
	}
}

func TestSamplesCompile(t *testing.T) {
	for _, s := range psamples.All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			prog, diags, err := compile.Source(s.Name, s.Source)
			if err != nil {
				t.Fatalf("compile: %v\n%s", err, diags.String())
			}
			if err := prog.Validate(); err != nil {
				t.Fatalf("validate: %v", err)
			}
			erased := ir.Erase(prog)
			if err := erased.Validate(); err != nil {
				t.Fatalf("validate erased: %v", err)
			}
		})
	}
}

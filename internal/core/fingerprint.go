package core

import (
	"encoding/binary"
	"sync"
)

// Fp is a compact 128-bit fingerprint of a global configuration: two
// independent 64-bit hashes. It is the explorers' default visited-set key;
// at 2^128 the collision probability is negligible even for billion-state
// searches, and the exact string encoding remains available as an auditing
// escape hatch (check.Options.ExactFingerprints, pverify -exact-fp).
type Fp struct {
	Hi, Lo uint64
}

// The two seeds make the halves of an Fp independent hash functions. They
// are fixed constants, so Fp values are stable across runs and processes —
// the disk-backed visited store and checkpoint/resume persist them (the
// scheme is versioned as FingerprintScheme).
const (
	fpSeedHi uint64 = 0x5150564552494659 // "QPVERIFY"
	fpSeedLo uint64 = 0x70676f2d66702d6c // "pgo-fp-l"
)

// fpBufs recycles canonical-encoding scratch buffers across fingerprint
// computations; each Global is typically fingerprinted exactly once, so a
// per-Global buffer would not amortize.
var fpBufs = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

// Fingerprinting is incremental: each Config caches a 128-bit digest of its
// own canonical encoding (and, in exact mode, the encoding itself), and the
// Global-level fingerprint combines the per-machine digests positionally.
// One macro step mutates exactly one machine configuration, so after a
// transition the Global re-encodes that one machine and re-combines —
// O(mutated machine + #machines) instead of O(world).
//
// Cache discipline. A Config's cache is valid iff fpOK (hashed) / fpStr
// non-empty (exact; a config encoding is never the empty string). Every
// mutation funnels through Global.own or CreateMachine, which invalidate
// the touched Config's cache (and the Global-level combine cache).
// Copy-on-write clones share Configs *and* their cached digests: a shared
// Config is immutable, so the cache stays valid on both sides until one of
// them owns-and-mutates it, which replaces the Config on that side only.
//
// Concurrency. A shared Config may be fingerprinted by several explorer
// workers at once, so cache *writes* are gated on exclusive ownership
// (c.gid == g.gid): generations are globally unique, only the Global that
// created or last CoW-copied a Config within its current epoch matches, and
// that Global is only ever touched by one goroutine before it is handed off
// through the work queue (whose lock orders the cache write before any
// cross-thread read). A shared Config that was never fingerprinted by its
// owner is simply re-encoded on each use — correct, just not cached.
//
// Fingerprints must only be taken between macro steps (configurations at
// rest): own invalidates once up front, not on every individual mutation.

// configFp returns the 128-bit digest of configuration c's canonical
// encoding, using scratch as the encode buffer, and caches it on c when c
// is exclusively owned by g. It returns the (possibly grown) scratch.
func (g *Global) configFp(c *Config, scratch []byte) (Fp, []byte) {
	if c.fpOK {
		return c.fp, scratch
	}
	scratch = c.appendFingerprint(scratch[:0])
	fp := Fp{Hi: StableHash64(fpSeedHi, scratch), Lo: StableHash64(fpSeedLo, scratch)}
	if c.gid == g.gid {
		c.fp = fp
		c.fpOK = true
	}
	return fp, scratch
}

// configFpStr returns (and, when exclusively owned, caches) the canonical
// string encoding of configuration c.
func (g *Global) configFpStr(c *Config, scratch []byte) (string, []byte) {
	if c.fpStr != "" {
		return c.fpStr, scratch
	}
	scratch = c.appendFingerprint(scratch[:0])
	s := string(scratch)
	if c.gid == g.gid {
		c.fpStr = s
	}
	return s, scratch
}

// Fingerprint returns a canonical, collision-free encoding of the global
// configuration as a string suitable for use as a visited-set key. Two
// globals have equal fingerprints iff they are semantically identical
// (same machines, stacks, stores, continuations, modes, and queues).
//
// Continuations are encoded as the sequence of program-unique statement
// indices along the cons list; inherited handler maps and event sets are
// encoded verbatim. Host context pointers (Config.Ctx) and the foreign
// environment are deliberately excluded: they are execution-only state.
//
// The result is assembled from the per-Config encoding caches and cached on
// the Global: repeated calls between mutations are free, unmutated clones
// inherit both cache levels, and a mutation re-encodes only the touched
// machine.
func (g *Global) Fingerprint() string {
	if g.fpStr != "" {
		return g.fpStr
	}
	bp := fpBufs.Get().(*[]byte)
	sp := fpBufs.Get().(*[]byte)
	buf, scratch := (*bp)[:0], (*sp)[:0]
	buf = appendUvarint(buf, uint64(g.NextID))
	buf = appendUvarint(buf, uint64(len(g.machines)))
	for _, c := range g.machines {
		if c == nil || c.Mode == ModeHalted {
			buf = append(buf, 0xFF)
			continue
		}
		var s string
		s, scratch = g.configFpStr(c, scratch)
		buf = append(buf, s...)
	}
	g.fpStr = string(buf)
	*bp, *sp = buf, scratch
	fpBufs.Put(bp)
	fpBufs.Put(sp)
	return g.fpStr
}

// fpCombine accumulates per-machine digests into a positional 128-bit
// combine: each half chains h = (h ^ input) * oddConstant, a bijection of h
// for fixed input and of input for fixed h, so the result depends on every
// digest and on its position. Inputs are maphash outputs (already uniform),
// which keeps the 2×64-bit collision story: per-machine digests are 128-bit
// maphashes of the machine's canonical encoding, and the combine behaves
// like a random function of the digest sequence. sum applies a murmur-style
// finalizer so the low bits (used for dictionary sharding) are well mixed.
type fpCombine struct{ hi, lo uint64 }

// The multipliers are the splitmix64 increment/multiplier constants; the
// halted marker is an arbitrary odd constant distinct from any digest tag.
const (
	fpCombM1     = 0x9e3779b97f4a7c15
	fpCombM2     = 0xbf58476d1ce4e5b9
	fpCombHalted = 0x94d049bb133111eb
)

func newFpCombine(nextID MachineID, machines int) fpCombine {
	return fpCombine{
		hi: (uint64(nextID) ^ uint64(machines)<<32) * fpCombM1,
		lo: (uint64(machines) ^ uint64(nextID)<<32) * fpCombM2,
	}
}

func (h *fpCombine) add(fp Fp) {
	h.hi = (h.hi ^ fp.Hi) * fpCombM1
	h.lo = (h.lo ^ fp.Lo) * fpCombM2
}

func (h *fpCombine) halted() {
	h.hi = (h.hi ^ fpCombHalted) * fpCombM1
	h.lo = (h.lo ^ fpCombHalted) * fpCombM2
}

// fmix64 is the murmur3 64-bit finalizer.
func fmix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

func (h *fpCombine) sum() Fp { return Fp{Hi: fmix64(h.hi), Lo: fmix64(h.lo)} }

// Hash returns the 128-bit hashed fingerprint of the global configuration:
// the positional fpCombine over the per-machine 128-bit digests plus the
// id-allocator header, with halted tombstones marked. Like Fingerprint, the
// result is cached until the next mutation and inherited by unmutated
// clones; after one machine mutates, recomputing costs one machine encode
// plus an O(#machines) combine.
func (g *Global) Hash() Fp {
	if g.fpOK {
		return g.fp
	}
	// Per-config encodings use an on-stack scratch buffer; only unusually
	// large configurations spill to the heap via append.
	var arr [512]byte
	scratch := arr[:0]
	h := newFpCombine(g.NextID, len(g.machines))
	for _, c := range g.machines {
		if c == nil || c.Mode == ModeHalted {
			h.halted()
			continue
		}
		var fp Fp
		fp, scratch = g.configFp(c, scratch)
		h.add(fp)
	}
	g.fp = h.sum()
	g.fpOK = true
	return g.fp
}

// hashFromScratch recomputes the hashed fingerprint ignoring both cache
// levels (per-Config and per-Global) and without writing them. It is the
// reference implementation the coherence property test checks the
// incremental scheme against.
func (g *Global) hashFromScratch() Fp {
	var scratch []byte
	h := newFpCombine(g.NextID, len(g.machines))
	for _, c := range g.machines {
		if c == nil || c.Mode == ModeHalted {
			h.halted()
			continue
		}
		scratch = c.appendFingerprint(scratch[:0])
		h.add(Fp{Hi: StableHash64(fpSeedHi, scratch), Lo: StableHash64(fpSeedLo, scratch)})
	}
	return h.sum()
}

// fingerprintFromScratch recomputes the canonical string encoding ignoring
// the caches; reference counterpart of hashFromScratch.
func (g *Global) fingerprintFromScratch() string {
	return string(g.appendFingerprint(nil))
}

// invalidateFingerprint drops the Global-level combine caches. Called by
// every mutation entry point (own, CreateMachine); the copy-on-write clone
// discipline funnels all configuration mutations through those, which also
// invalidate the touched Config's own cache (Config.invalidateFp).
func (g *Global) invalidateFingerprint() {
	g.fpOK = false
	g.fpStr = ""
}

// appendFingerprint appends the full canonical encoding of g to buf,
// bypassing the per-Config caches (from-scratch reference).
func (g *Global) appendFingerprint(buf []byte) []byte {
	buf = appendUvarint(buf, uint64(g.NextID))
	buf = appendUvarint(buf, uint64(len(g.machines)))
	for _, c := range g.machines {
		if c == nil || c.Mode == ModeHalted {
			buf = append(buf, 0xFF)
			continue
		}
		buf = c.appendFingerprint(buf)
	}
	return buf
}

func (c *Config) appendFingerprint(buf []byte) []byte {
	buf = append(buf, byte(c.Mode))
	buf = appendUvarint(buf, uint64(c.Type))

	buf = appendUvarint(buf, uint64(len(c.Stack)))
	for i := range c.Stack {
		fr := &c.Stack[i]
		buf = appendUvarint(buf, uint64(fr.State))
		// Inherited entries are int16 (action ids or the two negative
		// markers); fixed 2-byte little-endian is injective and much cheaper
		// than varints on this hot inner loop. The entry count is implied by
		// the program's event count, constant across all fingerprints.
		for _, h := range fr.Inherited {
			buf = append(buf, byte(uint16(h)), byte(uint16(h)>>8))
		}
		buf = appendCont(buf, fr.ReturnCont)
	}

	buf = appendUvarint(buf, uint64(len(c.Vars)))
	for _, v := range c.Vars {
		buf = appendValue(buf, v)
	}
	buf = appendValue(buf, c.Msg)
	buf = appendValue(buf, c.Arg)

	buf = appendCont(buf, c.Cont)

	buf = appendUvarint(buf, uint64(c.Raised))
	buf = appendValue(buf, c.RaisedVal)
	if c.ExitRun {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}

	buf = appendUvarint(buf, uint64(len(c.Queue)))
	for _, q := range c.Queue {
		buf = appendUvarint(buf, uint64(q.Event))
		buf = appendValue(buf, q.Val)
	}
	return buf
}

func appendValue(buf []byte, v Value) []byte {
	buf = append(buf, byte(v.Kind))
	return appendVarint(buf, v.N)
}

func appendCont(buf []byte, k *Cont) []byte {
	n := 0
	for p := k; p != nil; p = p.Next {
		n++
	}
	buf = appendUvarint(buf, uint64(n))
	for p := k; p != nil; p = p.Next {
		buf = appendUvarint(buf, uint64(p.S.Index))
	}
	return buf
}

func appendUvarint(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}

func appendVarint(buf []byte, v int64) []byte {
	return binary.AppendVarint(buf, v)
}

package core

import (
	"encoding/binary"
)

// Fingerprint returns a canonical, collision-free encoding of the global
// configuration as a string suitable for use as a visited-set key. Two
// globals have equal fingerprints iff they are semantically identical
// (same machines, stacks, stores, continuations, modes, and queues).
//
// Continuations are encoded as the sequence of program-unique statement
// indices along the cons list; inherited handler maps and event sets are
// encoded verbatim. Host context pointers (Config.Ctx) and the foreign
// environment are deliberately excluded: they are execution-only state.
func (g *Global) Fingerprint() string {
	buf := make([]byte, 0, 256)
	buf = appendUvarint(buf, uint64(g.NextID))
	buf = appendUvarint(buf, uint64(len(g.machines)))
	for _, c := range g.machines {
		if c == nil || c.Mode == ModeHalted {
			buf = append(buf, 0xFF)
			continue
		}
		buf = c.appendFingerprint(buf)
	}
	return string(buf)
}

func (c *Config) appendFingerprint(buf []byte) []byte {
	buf = append(buf, byte(c.Mode))
	buf = appendUvarint(buf, uint64(c.Type))

	buf = appendUvarint(buf, uint64(len(c.Stack)))
	for i := range c.Stack {
		fr := &c.Stack[i]
		buf = appendUvarint(buf, uint64(fr.State))
		for _, h := range fr.Inherited {
			buf = appendVarint(buf, int64(h))
		}
		buf = appendCont(buf, fr.ReturnCont)
	}

	buf = appendUvarint(buf, uint64(len(c.Vars)))
	for _, v := range c.Vars {
		buf = appendValue(buf, v)
	}
	buf = appendValue(buf, c.Msg)
	buf = appendValue(buf, c.Arg)

	buf = appendCont(buf, c.Cont)

	buf = appendUvarint(buf, uint64(c.Raised))
	buf = appendValue(buf, c.RaisedVal)
	if c.ExitRun {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}

	buf = appendUvarint(buf, uint64(len(c.Queue)))
	for _, q := range c.Queue {
		buf = appendUvarint(buf, uint64(q.Event))
		buf = appendValue(buf, q.Val)
	}
	return buf
}

func appendValue(buf []byte, v Value) []byte {
	buf = append(buf, byte(v.Kind))
	return appendVarint(buf, v.N)
}

func appendCont(buf []byte, k *Cont) []byte {
	n := 0
	for p := k; p != nil; p = p.Next {
		n++
	}
	buf = appendUvarint(buf, uint64(n))
	for p := k; p != nil; p = p.Next {
		buf = appendUvarint(buf, uint64(p.S.Index))
	}
	return buf
}

func appendUvarint(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}

func appendVarint(buf []byte, v int64) []byte {
	return binary.AppendVarint(buf, v)
}

package core

import (
	"encoding/binary"
	"hash/maphash"
	"sync"
)

// Fp is a compact 128-bit fingerprint of a global configuration: two
// independent 64-bit hashes of the canonical encoding produced by
// Fingerprint. It is the explorers' default visited-set key; at 2^128 the
// collision probability is negligible even for billion-state searches, and
// the exact string encoding remains available as an auditing escape hatch
// (check.Options.ExactFingerprints, pverify -exact-fp).
type Fp struct {
	Hi, Lo uint64
}

// The two seeds make the halves of an Fp independent hash functions. They
// are per-process, so Fp values are not stable across runs — fine for
// in-memory visited sets, unsuitable for persistence.
var (
	fpSeedHi = maphash.MakeSeed()
	fpSeedLo = maphash.MakeSeed()
)

// fpBufs recycles canonical-encoding scratch buffers across fingerprint
// computations; each Global is typically fingerprinted exactly once, so a
// per-Global buffer would not amortize.
var fpBufs = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

// Fingerprint returns a canonical, collision-free encoding of the global
// configuration as a string suitable for use as a visited-set key. Two
// globals have equal fingerprints iff they are semantically identical
// (same machines, stacks, stores, continuations, modes, and queues).
//
// Continuations are encoded as the sequence of program-unique statement
// indices along the cons list; inherited handler maps and event sets are
// encoded verbatim. Host context pointers (Config.Ctx) and the foreign
// environment are deliberately excluded: they are execution-only state.
//
// The result is cached on the Global: repeated calls between mutations are
// free, and unmutated clones inherit the cache.
func (g *Global) Fingerprint() string {
	if g.fpStr != "" {
		return g.fpStr
	}
	bp := fpBufs.Get().(*[]byte)
	buf := g.appendFingerprint((*bp)[:0])
	g.fpStr = string(buf)
	*bp = buf
	fpBufs.Put(bp)
	return g.fpStr
}

// Hash returns the 128-bit hashed fingerprint of the global configuration,
// built over the same canonical encoding as Fingerprint but without
// materializing the string. Like Fingerprint, the result is cached until
// the next mutation and inherited by unmutated clones.
func (g *Global) Hash() Fp {
	if g.fpOK {
		return g.fp
	}
	bp := fpBufs.Get().(*[]byte)
	buf := g.appendFingerprint((*bp)[:0])
	g.fp = Fp{Hi: maphash.Bytes(fpSeedHi, buf), Lo: maphash.Bytes(fpSeedLo, buf)}
	g.fpOK = true
	*bp = buf
	fpBufs.Put(bp)
	return g.fp
}

// invalidateFingerprint drops the cached fingerprints. Called by every
// mutation entry point (own, CreateMachine); the copy-on-write clone
// discipline funnels all configuration mutations through those.
func (g *Global) invalidateFingerprint() {
	g.fpOK = false
	g.fpStr = ""
}

// appendFingerprint appends the canonical encoding of g to buf.
func (g *Global) appendFingerprint(buf []byte) []byte {
	buf = appendUvarint(buf, uint64(g.NextID))
	buf = appendUvarint(buf, uint64(len(g.machines)))
	for _, c := range g.machines {
		if c == nil || c.Mode == ModeHalted {
			buf = append(buf, 0xFF)
			continue
		}
		buf = c.appendFingerprint(buf)
	}
	return buf
}

func (c *Config) appendFingerprint(buf []byte) []byte {
	buf = append(buf, byte(c.Mode))
	buf = appendUvarint(buf, uint64(c.Type))

	buf = appendUvarint(buf, uint64(len(c.Stack)))
	for i := range c.Stack {
		fr := &c.Stack[i]
		buf = appendUvarint(buf, uint64(fr.State))
		for _, h := range fr.Inherited {
			buf = appendVarint(buf, int64(h))
		}
		buf = appendCont(buf, fr.ReturnCont)
	}

	buf = appendUvarint(buf, uint64(len(c.Vars)))
	for _, v := range c.Vars {
		buf = appendValue(buf, v)
	}
	buf = appendValue(buf, c.Msg)
	buf = appendValue(buf, c.Arg)

	buf = appendCont(buf, c.Cont)

	buf = appendUvarint(buf, uint64(c.Raised))
	buf = appendValue(buf, c.RaisedVal)
	if c.ExitRun {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}

	buf = appendUvarint(buf, uint64(len(c.Queue)))
	for _, q := range c.Queue {
		buf = appendUvarint(buf, uint64(q.Event))
		buf = appendValue(buf, q.Val)
	}
	return buf
}

func appendValue(buf []byte, v Value) []byte {
	buf = append(buf, byte(v.Kind))
	return appendVarint(buf, v.N)
}

func appendCont(buf []byte, k *Cont) []byte {
	n := 0
	for p := k; p != nil; p = p.Next {
		n++
	}
	buf = appendUvarint(buf, uint64(n))
	for p := k; p != nil; p = p.Next {
		buf = appendUvarint(buf, uint64(p.S.Index))
	}
	return buf
}

func appendUvarint(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}

func appendVarint(buf []byte, v int64) []byte {
	return binary.AppendVarint(buf, v)
}

// Package core implements the operational semantics of P (Figures 4–6 of
// the paper): machine configurations with call stacks, variable stores,
// continuations and input queues; the small-step statement and
// event-handling rules; and error transitions. Both the model checker
// (internal/check) and the concurrent runtime (internal/runtime) drive this
// engine.
package core

import (
	"fmt"

	"pgo/internal/ir"
)

// MachineID identifies a dynamically created machine instance. IDs are
// allocated sequentially per Global, starting at 1; 0 is never a valid id.
type MachineID int

// ValueKind enumerates the dynamic value kinds.
type ValueKind uint8

const (
	// KNull is the undefined value ⊥: the value of uninitialized variables
	// and the result of operators applied to ⊥.
	KNull ValueKind = iota
	// KBool is a boolean.
	KBool
	// KInt is a 64-bit integer.
	KInt
	// KEvent is an event constant.
	KEvent
	// KMachine is a machine identifier.
	KMachine
)

// Value is a P runtime value. Values are small comparable structs so queue
// deduplication (the ⊕ operator) and state fingerprinting are cheap.
type Value struct {
	Kind ValueKind
	N    int64
}

// Null is the ⊥ value.
var Null = Value{}

// BoolVal returns b as a P value.
func BoolVal(b bool) Value {
	if b {
		return Value{Kind: KBool, N: 1}
	}
	return Value{Kind: KBool, N: 0}
}

// IntVal returns n as a P value.
func IntVal(n int64) Value { return Value{Kind: KInt, N: n} }

// EventVal returns the event constant e as a P value.
func EventVal(e ir.EventID) Value { return Value{Kind: KEvent, N: int64(e)} }

// MachineVal returns the machine identifier id as a P value.
func MachineVal(id MachineID) Value { return Value{Kind: KMachine, N: int64(id)} }

// IsNull reports whether v is ⊥.
func (v Value) IsNull() bool { return v.Kind == KNull }

// AsBool returns the boolean content; ok is false if v is not a bool.
func (v Value) AsBool() (b, ok bool) {
	if v.Kind != KBool {
		return false, false
	}
	return v.N != 0, true
}

// AsInt returns the integer content; ok is false if v is not an int.
func (v Value) AsInt() (int64, bool) {
	if v.Kind != KInt {
		return 0, false
	}
	return v.N, true
}

// AsMachine returns the machine id content; ok is false otherwise.
func (v Value) AsMachine() (MachineID, bool) {
	if v.Kind != KMachine {
		return 0, false
	}
	return MachineID(v.N), true
}

// AsEvent returns the event content; ok is false otherwise.
func (v Value) AsEvent() (ir.EventID, bool) {
	if v.Kind != KEvent {
		return 0, false
	}
	return ir.EventID(v.N), true
}

func (v Value) String() string {
	switch v.Kind {
	case KNull:
		return "null"
	case KBool:
		if v.N != 0 {
			return "true"
		}
		return "false"
	case KInt:
		return fmt.Sprintf("%d", v.N)
	case KEvent:
		return fmt.Sprintf("event(%d)", v.N)
	case KMachine:
		return fmt.Sprintf("machine(%d)", v.N)
	default:
		return "value(?)"
	}
}

// DefaultValue returns the initial value of a variable of type t: ⊥, matching
// the paper ("⊥ arises ... if an expression reads a variable whose value is
// uninitialized").
func DefaultValue(t ir.Type) Value { return Null }

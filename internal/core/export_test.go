package core

// Test hooks: from-scratch fingerprint recomputation, bypassing both the
// per-Config and the Global-level caches. The coherence property test
// checks the incremental scheme against these references.

// HashFromScratch recomputes the hashed fingerprint ignoring every cache.
func (g *Global) HashFromScratch() Fp { return g.hashFromScratch() }

// FingerprintFromScratch recomputes the canonical encoding ignoring every
// cache.
func (g *Global) FingerprintFromScratch() string { return g.fingerprintFromScratch() }

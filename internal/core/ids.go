package core

import "sort"

// Held-machine-id sets back the checker's partial-order reduction: machine
// ids are unforgeable capabilities (a machine can only ever send to an id it
// holds, receives, or creates), so the set of ids reachable from a
// configuration over-approximates the machine's future send targets until
// someone mails it a new id. HeldIDs materializes that set.
//
// The cache follows the fingerprint discipline (see fingerprint.go): valid
// iff heldOK, invalidated through the own/invalidateFp mutation funnel,
// shared by copy-on-write clones, and written only while exclusively owned
// (gid match), so shared configurations can be scanned concurrently. The
// cached slice is never mutated after publication — recomputation allocates
// afresh.

// HeldIDs returns the sorted set of machine ids reachable from
// configuration c: c's own id plus every machine-valued variable, msg, arg,
// raised payload, and queued payload. The result is cached on c and must be
// treated as read-only.
func (g *Global) HeldIDs(c *Config) []MachineID {
	if c.heldOK {
		return c.held
	}
	ids := make([]MachineID, 0, 4)
	ids = append(ids, c.ID)
	add := func(v Value) {
		if m, ok := v.AsMachine(); ok && m != 0 {
			ids = append(ids, m)
		}
	}
	for _, v := range c.Vars {
		add(v)
	}
	add(c.Msg)
	add(c.Arg)
	add(c.RaisedVal)
	for _, q := range c.Queue {
		add(q.Val)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	// Dedup in place.
	w := 0
	for i, id := range ids {
		if i > 0 && id == ids[w-1] {
			continue
		}
		ids[w] = id
		w++
	}
	ids = ids[:w]
	if c.gid == g.gid {
		c.held = ids
		c.heldOK = true
	}
	return ids
}

package core

import (
	"pgo/internal/ir"
	"pgo/internal/source"
)

// OutKind classifies how a macro step ended.
type OutKind uint8

const (
	// OutSend: the machine completed a send statement. A scheduling point
	// per §5: context switches are needed only after sends and creations.
	OutSend OutKind = iota
	// OutNew: the machine completed a machine creation.
	OutNew
	// OutBlocked: the continuation drained and no queued event is
	// deliverable; the machine is disabled until a new event arrives.
	OutBlocked
	// OutHalted: the machine executed delete.
	OutHalted
	// OutError: an error transition fired (Figure 6) or the divergence
	// budget was exceeded.
	OutError
	// OutYield: with Exec.YieldOnDequeue set, the machine paused just
	// before dequeuing a second event in the same burst (the fine-grained
	// scheduling ablation). The machine remains enabled.
	OutYield
)

func (k OutKind) String() string {
	switch k {
	case OutSend:
		return "send"
	case OutNew:
		return "new"
	case OutBlocked:
		return "blocked"
	case OutHalted:
		return "halted"
	case OutError:
		return "error"
	case OutYield:
		return "yield"
	default:
		return "outcome(?)"
	}
}

// Outcome describes the result of running one machine to its next
// scheduling point.
type Outcome struct {
	Kind OutKind
	Err  *Err

	// For OutSend.
	SentTo    MachineID
	SentEvent ir.EventID
	SentVal   Value
	Delivered bool // false if the ⊕ dedup dropped the entry

	// For OutNew.
	Created     MachineID
	CreatedType ir.MachineTypeID

	// Dequeued lists the events this machine consumed from its own queue
	// during the macro step (used by the liveness checker).
	Dequeued []QEntry

	// Steps is the number of small steps executed.
	Steps int
}

// World is the cross-machine interface the executor uses for machine
// creation and event delivery. Global implements it for verification; the
// concurrent runtime implements it with per-instance locks.
type World interface {
	// CreateMachine instantiates machine type t with pre-evaluated variable
	// initializers and returns the new machine's id.
	CreateMachine(t ir.MachineTypeID, vals []InitVal) (MachineID, *Err)
	// SendEvent appends (e, v) to the target's queue with ⊕ dedup. found is
	// false if the target machine is deleted or never existed; delivered is
	// false if dedup dropped the entry.
	SendEvent(target MachineID, e ir.EventID, v Value) (delivered, found bool)
}

// Exec drives a single machine configuration against a World. It holds no
// per-machine state itself and may be shared.
type Exec struct {
	Prog    *ir.Program
	World   World
	Foreign ForeignEnv

	// YieldOnDequeue makes the second and subsequent dequeues of a burst
	// scheduling points (ablation of the atomicity reduction).
	YieldOnDequeue bool
}

// DefaultMaxSteps bounds the small steps inside one macro step. Exceeding it
// is reported as divergence (liveness property 1 of §3.2: a machine must not
// run forever without being disabled).
const DefaultMaxSteps = 100_000

// Enabled reports whether machine id can take a step: it is live and either
// has pending work or a deliverable queued event.
func (g *Global) Enabled(id MachineID) bool {
	c := g.Lookup(id)
	if c == nil || c.Mode == ModeHalted {
		return false
	}
	if c.Cont != nil || c.Mode == ModeRaise || c.Mode == ModeReturn {
		return true
	}
	return deliverableIndex(g.Prog, c) >= 0
}

// deliverableIndex returns the queue index of the first event not suppressed
// by the effective deferred set of the current state (DEQUEUE rule):
// d' = ({e | a(e)=T} ∪ Deferred(m,n)) − {e | Trans(m,n,e)≠⊥ ∨ Action(m,n,e)≠⊥}.
func deliverableIndex(prog *ir.Program, c *Config) int {
	if len(c.Stack) == 0 {
		return -1
	}
	fr := c.top()
	st := prog.Machines[c.Type].States[fr.State]
	for i, q := range c.Queue {
		e := q.Event
		handled := st.Trans[e].Kind != ir.TransNone || st.Action[e] != ir.NoAction
		deferred := fr.Inherited[e] == inheritDefer || st.Deferred.Contains(e)
		if handled || !deferred {
			return i
		}
	}
	return -1
}

// DeliverableIndex returns the queue index of the first deliverable event
// of configuration c under prog, or -1. Exported for the runtime.
func DeliverableIndex(prog *ir.Program, c *Config) int { return deliverableIndex(prog, c) }

// DeliverableEvent returns the event a blocked-or-resting machine would
// dequeue next, for diagnostics; ok is false if none is deliverable.
func (g *Global) DeliverableEvent(id MachineID) (QEntry, bool) {
	c := g.Lookup(id)
	if c == nil || c.Mode == ModeHalted {
		return QEntry{}, false
	}
	i := deliverableIndex(g.Prog, c)
	if i < 0 {
		return QEntry{}, false
	}
	return c.Queue[i], true
}

// RunToSchedPoint executes machine id until its next scheduling point:
// completion of a send or new (§5's atomicity reduction makes finer context
// switches redundant), blocking on an empty-or-all-deferred queue, halting,
// or an error. cs supplies `*` choices; maxSteps bounds small steps
// (<= 0 selects DefaultMaxSteps).
func (g *Global) RunToSchedPoint(id MachineID, cs ChoiceSource, maxSteps int) Outcome {
	c := g.Lookup(id)
	if c == nil || c.Mode == ModeHalted {
		return Outcome{Kind: OutHalted}
	}
	c = g.own(id)
	x := &Exec{Prog: g.Prog, World: g, Foreign: g.Foreign, YieldOnDequeue: g.YieldOnDequeue}
	return x.Run(c, cs, maxSteps, true)
}

// Run executes configuration c until a stopping condition: blocked, halted,
// error, or — when stopAtSched is true — the completion of a send or
// machine creation (a scheduling point). With stopAtSched false the machine
// runs to completion, the behaviour of the concurrent runtime.
func (x *Exec) Run(c *Config, cs ChoiceSource, maxSteps int, stopAtSched bool) Outcome {
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}
	out := Outcome{}
	if c.Mode == ModeHalted {
		out.Kind = OutHalted
		return out
	}
	for out.Steps < maxSteps {
		out.Steps++
		switch c.Mode {
		case ModeHalted:
			out.Kind = OutHalted
			return out
		case ModeRun:
			if c.Cont == nil {
				// Attempt DEQUEUE.
				i := deliverableIndex(x.Prog, c)
				if i < 0 {
					out.Kind = OutBlocked
					return out
				}
				if x.YieldOnDequeue && stopAtSched && len(out.Dequeued) > 0 {
					out.Kind = OutYield
					return out
				}
				q := c.Queue[i]
				c.Queue = append(c.Queue[:i:i], c.Queue[i+1:]...)
				out.Dequeued = append(out.Dequeued, q)
				c.Msg = EventVal(q.Event)
				c.Arg = q.Val
				c.Raised = q.Event
				c.RaisedVal = q.Val
				c.Mode = ModeRaise
				c.ExitRun = false
				continue
			}
			if done, err := x.execStmt(c, cs, &out, stopAtSched); err != nil {
				out.Kind = OutError
				out.Err = err
				return out
			} else if done {
				return out
			}
		case ModeRaise:
			if c.Cont != nil {
				if done, err := x.execStmt(c, cs, &out, stopAtSched); err != nil {
					out.Kind = OutError
					out.Err = err
					return out
				} else if done {
					return out
				}
				continue
			}
			if err := x.resolveRaise(c); err != nil {
				out.Kind = OutError
				out.Err = err
				return out
			}
		case ModeReturn:
			if c.Cont != nil {
				if done, err := x.execStmt(c, cs, &out, stopAtSched); err != nil {
					out.Kind = OutError
					out.Err = err
					return out
				} else if done {
					return out
				}
				continue
			}
			if err := x.pop2(c); err != nil {
				out.Kind = OutError
				out.Err = err
				return out
			}
		}
	}
	out.Kind = OutError
	out.Err = x.errAt(c, ErrDivergence, source.Span{}, "")
	out.Err.Detail = "exceeded local step budget"
	return out
}

// execStmt executes the next statement of c's continuation. It returns
// done=true when the statement was a scheduling point or terminated the
// machine (out filled in accordingly).
func (x *Exec) execStmt(c *Config, cs ChoiceSource, out *Outcome, stopAtSched bool) (done bool, err *Err) {
	s := c.Cont.S
	c.Cont = c.Cont.Next
	switch s.Op {
	case ir.SSkip:
		return false, nil
	case ir.SAssign:
		v, err := x.eval(c, s.Expr, cs)
		if err != nil {
			return false, err
		}
		c.Vars[s.Var] = v
		return false, nil
	case ir.SNew:
		vals := make([]InitVal, 0, len(s.Inits))
		for _, init := range s.Inits {
			v, err := x.eval(c, init.Expr, cs)
			if err != nil {
				return false, err
			}
			vals = append(vals, InitVal{Var: init.Var, Val: v})
		}
		id, err := x.World.CreateMachine(s.Machine, vals)
		if err != nil {
			if err.Machine == 0 {
				err.Machine = c.ID
			}
			return false, err
		}
		c.Vars[s.Var] = MachineVal(id)
		out.Kind = OutNew
		out.Created = id
		out.CreatedType = s.Machine
		return stopAtSched, nil
	case ir.SDelete:
		c.Mode = ModeHalted
		c.Cont = nil
		c.Stack = nil
		c.Queue = nil
		out.Kind = OutHalted
		return true, nil
	case ir.SSend:
		tv, err := x.eval(c, s.Target, cs)
		if err != nil {
			return false, err
		}
		if tv.IsNull() {
			return false, x.errAt(c, ErrSendNull, s.Span, "")
		}
		tid, ok := tv.AsMachine()
		if !ok {
			return false, x.errAt(c, ErrSendNull, s.Span, "send target is not a machine identifier")
		}
		payload := Null
		if s.Expr != nil {
			payload, err = x.eval(c, s.Expr, cs)
			if err != nil {
				return false, err
			}
		}
		delivered, found := x.World.SendEvent(tid, s.Event, payload)
		if !found {
			e := x.errAt(c, ErrSendDeleted, s.Span, "")
			e.Event = s.Event
			e.HasEv = true
			return false, e
		}
		out.Kind = OutSend
		out.SentTo = tid
		out.SentEvent = s.Event
		out.SentVal = payload
		out.Delivered = delivered
		return stopAtSched, nil
	case ir.SRaise:
		payload := Null
		if s.Expr != nil {
			v, err := x.eval(c, s.Expr, cs)
			if err != nil {
				return false, err
			}
			payload = v
		}
		// raise terminates evaluation of the surrounding statement (RAISE
		// rule): the remaining continuation is discarded.
		c.Cont = nil
		c.Msg = EventVal(s.Event)
		c.Arg = payload
		c.Raised = s.Event
		c.RaisedVal = payload
		c.Mode = ModeRaise
		c.ExitRun = false
		return false, nil
	case ir.SLeave:
		// Jump to the end of the entry function and wait for an event.
		c.Cont = nil
		return false, nil
	case ir.SReturn:
		// RETURN rule: run the exit statement, then pop (POP2).
		mt := x.Prog.Machines[c.Type]
		st := mt.States[c.top().State]
		c.Cont = push(st.Exit, nil)
		c.Mode = ModeReturn
		return false, nil
	case ir.SAssert:
		v, err := x.eval(c, s.Expr, cs)
		if err != nil {
			return false, err
		}
		b, ok := v.AsBool()
		if !ok {
			return false, x.errAt(c, ErrUndefCond, s.Span, "assert condition is null")
		}
		if !b {
			return false, x.errAt(c, ErrAssert, s.Span, "")
		}
		return false, nil
	case ir.SIf:
		v, err := x.eval(c, s.Expr, cs)
		if err != nil {
			return false, err
		}
		b, ok := v.AsBool()
		if !ok {
			return false, x.errAt(c, ErrUndefCond, s.Span, "if condition is null")
		}
		if b {
			c.Cont = push(s.Body, c.Cont)
		} else {
			c.Cont = push(s.Else, c.Cont)
		}
		return false, nil
	case ir.SWhile:
		v, err := x.eval(c, s.Expr, cs)
		if err != nil {
			return false, err
		}
		b, ok := v.AsBool()
		if !ok {
			return false, x.errAt(c, ErrUndefCond, s.Span, "while condition is null")
		}
		if b {
			// Execute the body, then re-examine the loop.
			c.Cont = push(s.Body, &Cont{S: s, Next: c.Cont})
		}
		return false, nil
	case ir.SCallState:
		// The call statement pushes the target state like a call transition
		// but saves the current continuation for resumption at return.
		mt := x.Prog.Machines[c.Type]
		fr := c.top()
		st := mt.States[fr.State]
		c.Stack = append(c.Stack, Frame{
			State:      s.State,
			Inherited:  computeInherited(x.Prog, st, fr.Inherited),
			ReturnCont: c.Cont,
		})
		c.Cont = push(mt.States[s.State].Entry, nil)
		return false, nil
	case ir.SForeign:
		call := &ir.Expr{Op: ir.ECall, ForeignFn: s.Foreign, Args: s.Args, Span: s.Span}
		if _, err := x.eval(c, call, cs); err != nil {
			return false, err
		}
		return false, nil
	default:
		return false, x.errAt(c, ErrUndefCond, s.Span, "unknown statement operator")
	}
}

// computeInherited builds the callee's handler map a' per the CALL rule:
// a'(e) = ⊥ if a transition is defined on e in the caller state; else the
// caller state's action binding if any; else T if e is deferred there; else
// the caller frame's inherited value.
func computeInherited(prog *ir.Program, st *ir.State, parent []int16) []int16 {
	out := make([]int16, len(prog.Events))
	for e := range out {
		switch {
		case st.Trans[e].Kind != ir.TransNone:
			out[e] = inheritNone
		case st.Action[e] != ir.NoAction:
			out[e] = int16(st.Action[e])
		case st.Deferred.Contains(ir.EventID(e)):
			out[e] = inheritDefer
		default:
			out[e] = parent[e]
		}
	}
	return out
}

// resolveRaise applies one of STEP / CALL / ACTION / POP1 to the raised
// event at the current top frame, inserting the exit preamble first when the
// outcome leaves the state (step or pop), per the RAISE and DEQUEUE rules.
func (x *Exec) resolveRaise(c *Config) *Err {
	if len(c.Stack) == 0 {
		// POP-FAIL: the stack emptied while an event was still unhandled.
		err := x.errAt(c, ErrUnhandled, source.Span{}, x.Prog.Events[c.Raised].Name)
		err.Event = c.Raised
		err.HasEv = true
		return err
	}
	mt := x.Prog.Machines[c.Type]
	fr := c.top()
	st := mt.States[fr.State]
	e := c.Raised

	tr := st.Trans[e]
	switch tr.Kind {
	case ir.TransStep:
		if !c.ExitRun {
			c.Cont = push(st.Exit, nil)
			c.ExitRun = true
			return nil
		}
		fr.State = tr.Target
		c.Mode = ModeRun
		c.ExitRun = false
		c.Cont = push(mt.States[tr.Target].Entry, nil)
		return nil
	case ir.TransCall:
		c.Stack = append(c.Stack, Frame{
			State:     tr.Target,
			Inherited: computeInherited(x.Prog, st, fr.Inherited),
		})
		c.Mode = ModeRun
		c.ExitRun = false
		c.Cont = push(mt.States[tr.Target].Entry, nil)
		return nil
	}

	// ACTION rule: a statically bound action overrides an inherited one.
	act := st.Action[e]
	if act == ir.NoAction && fr.Inherited[e] >= 0 {
		act = ir.ActionID(fr.Inherited[e])
	}
	if act != ir.NoAction {
		c.Mode = ModeRun
		c.ExitRun = false
		c.Cont = push(mt.Actions[act].Body, nil)
		return nil
	}

	// POP1: no transition, no action; run the exit preamble, then pop and
	// re-raise in the caller frame. The continuation saved by a call
	// statement is discarded — the unhandled event takes control.
	if !c.ExitRun {
		c.Cont = push(st.Exit, nil)
		c.ExitRun = true
		return nil
	}
	c.Stack = c.Stack[:len(c.Stack)-1]
	c.ExitRun = false
	if len(c.Stack) == 0 {
		err := x.errAt(c, ErrUnhandled, source.Span{}, x.Prog.Events[e].Name)
		err.Type = mt.Name
		err.State = st.Name
		err.Event = e
		err.HasEv = true
		return err
	}
	return nil
}

// pop2 implements the POP2 rule after the exit statement of a return has
// run: pop the frame; resume the saved continuation if the frame was pushed
// by a call statement.
func (x *Exec) pop2(c *Config) *Err {
	fr := c.Stack[len(c.Stack)-1]
	c.Stack = c.Stack[:len(c.Stack)-1]
	if len(c.Stack) == 0 {
		mt := x.Prog.Machines[c.Type]
		err := x.errAt(c, ErrUnhandled, source.Span{}, "return from bottom state")
		err.Type = mt.Name
		return err
	}
	c.Mode = ModeRun
	c.Cont = fr.ReturnCont
	return nil
}

// Send enqueues an event into machine id from the environment (the
// SMAddEvent analog used by the runtime's interface code and by tests).
// It reports whether the entry was actually added (⊕ dedup).
func (g *Global) Send(id MachineID, e ir.EventID, v Value) (bool, *Err) {
	c := g.Lookup(id)
	if c == nil || c.Mode == ModeHalted {
		err := &Err{Kind: ErrSendDeleted, Machine: id, Event: e, HasEv: true}
		return false, err
	}
	return g.own(id).enqueue(e, v, !g.DisableDedup), nil
}

package core_test

import (
	"errors"
	"fmt"
	"testing"

	"pgo/internal/core"
)

// Arithmetic and comparison semantics, exercised through a generated
// program per case (each expression is evaluated by the real machinery,
// not a unit-tested helper).
func TestArithmeticTable(t *testing.T) {
	cases := []struct {
		expr string
		want int64
	}{
		{"1 + 2", 3},
		{"7 - 10", -3},
		{"6 * 7", 42},
		{"17 / 5", 3},
		{"-17 / 5", -3}, // Go-style truncated division
		{"17 % 5", 2},
		{"-17 % 5", -2},
		{"2 + 3 * 4", 14},
		{"(2 + 3) * 4", 20},
		{"-(3 + 4)", -7},
		{"1 - 2 - 3", -4}, // left associative
	}
	for _, c := range cases {
		c := c
		t.Run(c.expr, func(t *testing.T) {
			src := fmt.Sprintf(`
event unit;
machine M {
  var x: int;
  state S { entry { x = %s; } }
}
main M();
`, c.expr)
			prog := mustCompile(t, "arith", src)
			g := core.NewGlobal(prog, nil)
			m, _ := g.CreateMain()
			if err := runRoundRobin(t, g, 100); err != nil {
				t.Fatal(err)
			}
			if m.Vars[0] != core.IntVal(c.want) {
				t.Fatalf("%s = %v, want %d", c.expr, m.Vars[0], c.want)
			}
		})
	}
}

func TestBooleanTable(t *testing.T) {
	cases := []struct {
		expr string
		want bool
	}{
		{"1 < 2", true},
		{"2 <= 2", true},
		{"3 > 3", false},
		{"3 >= 3", true},
		{"1 == 1 && 2 == 2", true},
		{"1 == 2 || 2 == 2", true},
		{"!(1 == 1)", false},
		{"true && !false", true},
		{"1 != 2", true},
	}
	for _, c := range cases {
		c := c
		t.Run(c.expr, func(t *testing.T) {
			src := fmt.Sprintf(`
event unit;
machine M {
  var b: bool;
  state S { entry { b = %s; } }
}
main M();
`, c.expr)
			prog := mustCompile(t, "boolean", src)
			g := core.NewGlobal(prog, nil)
			m, _ := g.CreateMain()
			if err := runRoundRobin(t, g, 100); err != nil {
				t.Fatal(err)
			}
			if m.Vars[0] != core.BoolVal(c.want) {
				t.Fatalf("%s = %v, want %v", c.expr, m.Vars[0], c.want)
			}
		})
	}
}

const whileProgram = `
event unit;
machine M {
  var i: int;
  var sum: int;
  state S {
    entry {
      i = 0;
      sum = 0;
      while i < 10 {
        i = i + 1;
        if i % 2 == 0 {
          sum = sum + i;
        }
      }
    }
  }
}
main M();
`

func TestWhileLoop(t *testing.T) {
	prog := mustCompile(t, "while", whileProgram)
	g := core.NewGlobal(prog, nil)
	m, _ := g.CreateMain()
	if err := runRoundRobin(t, g, 100); err != nil {
		t.Fatal(err)
	}
	if m.Vars[1] != core.IntVal(30) { // 2+4+6+8+10
		t.Fatalf("sum = %v, want 30", m.Vars[1])
	}
}

// A host foreign binding may also be used during verification (pure
// data-path helpers), taking effect when no model body exists.
const hostForeignProgram = `
event unit;
machine M {
  var x: int;
  foreign double(int): int;
  state S {
    entry { x = double(21); }
  }
}
main M();
`

func TestHostForeignDuringVerification(t *testing.T) {
	prog := mustCompile(t, "hostforeign", hostForeignProgram)
	foreign := core.ForeignMap{
		"M.double": func(ctx any, args []core.Value) (core.Value, error) {
			n, ok := args[0].AsInt()
			if !ok {
				return core.Null, errors.New("not an int")
			}
			return core.IntVal(2 * n), nil
		},
	}
	g := core.NewGlobal(prog, foreign)
	m, _ := g.CreateMain()
	if err := runRoundRobin(t, g, 100); err != nil {
		t.Fatal(err)
	}
	if m.Vars[0] != core.IntVal(42) {
		t.Fatalf("x = %v, want 42", m.Vars[0])
	}
}

// A host foreign function returning an error surfaces as ErrForeign.
func TestHostForeignError(t *testing.T) {
	prog := mustCompile(t, "hostforeign", hostForeignProgram)
	foreign := core.ForeignMap{
		"M.double": func(ctx any, args []core.Value) (core.Value, error) {
			return core.Null, errors.New("device unplugged")
		},
	}
	g := core.NewGlobal(prog, foreign)
	g.CreateMain()
	err := runRoundRobin(t, g, 100)
	if err == nil || err.Kind != core.ErrForeign {
		t.Fatalf("expected foreign error, got %v", err)
	}
}

// Self-send: the machine enqueues to itself mid-handler and processes the
// event in a later macro step.
const selfSendProgram = `
event Kick(int);
machine M {
  var hops: int;
  state S {
    entry {
      hops = 0;
      send this, Kick, 1;
    }
    on Kick do Hop;
  }
  action Hop {
    hops = hops + 1;
    if hops < 3 {
      send this, Kick, hops + 1;
    }
  }
}
main M();
`

func TestSelfSend(t *testing.T) {
	prog := mustCompile(t, "selfsend", selfSendProgram)
	g := core.NewGlobal(prog, nil)
	m, _ := g.CreateMain()
	if err := runRoundRobin(t, g, 100); err != nil {
		t.Fatal(err)
	}
	if m.Vars[0] != core.IntVal(3) {
		t.Fatalf("hops = %v, want 3", m.Vars[0])
	}
}

// Raise with payload sets msg and arg exactly like a dequeue.
const raisePayloadProgram = `
event Carry(int);
event unit;
machine M {
  var got: int;
  var wasCarry: bool;
  state S {
    entry { raise Carry, 99; }
    on Carry goto Landed;
  }
  state Landed {
    entry {
      got = arg;
      wasCarry = msg == Carry;
    }
  }
}
main M();
`

func TestRaisePayload(t *testing.T) {
	prog := mustCompile(t, "raisepayload", raisePayloadProgram)
	g := core.NewGlobal(prog, nil)
	m, _ := g.CreateMain()
	if err := runRoundRobin(t, g, 100); err != nil {
		t.Fatal(err)
	}
	if m.Vars[0] != core.IntVal(99) {
		t.Fatalf("got = %v, want 99", m.Vars[0])
	}
	if m.Vars[1] != core.BoolVal(true) {
		t.Fatal("msg inside handler should be Carry")
	}
}

// The NEW rule: creation initializers are evaluated in the creator's
// context, and the created machine starts in its first state with ⊥
// elsewhere.
const createInitProgram = `
event unit;
machine Parent {
  var child: id;
  var base: int;
  state S {
    entry {
      base = 10;
      child = new Child(seed = base * 2, who = this);
    }
  }
}
machine Child {
  var seed: int;
  var who: id;
  var blank: int;
  var ok: bool;
  state T {
    entry {
      ok = seed == 20 && who != null && blank == null;
    }
  }
}
main Parent();
`

func TestCreationInitializers(t *testing.T) {
	prog := mustCompile(t, "createinit", createInitProgram)
	g := core.NewGlobal(prog, nil)
	g.CreateMain()
	if err := runRoundRobin(t, g, 100); err != nil {
		t.Fatal(err)
	}
	var child *core.Config
	for _, id := range g.LiveIDs() {
		c := g.Get(id)
		if g.Prog.Machines[c.Type].Name == "Child" {
			child = c
		}
	}
	if child == nil {
		t.Fatal("child not created")
	}
	if child.Vars[3] != core.BoolVal(true) {
		t.Fatalf("child invariants: seed=%v who=%v blank=%v ok=%v",
			child.Vars[0], child.Vars[1], child.Vars[2], child.Vars[3])
	}
}

// OutYield ablation: with YieldOnDequeue, a burst handling two queued
// events yields between them.
const yieldProgram = `
event A; event B;
machine M {
  var seen: int;
  state S {
    entry { seen = 0; }
    on A do Bump;
    on B do Bump;
  }
  action Bump { seen = seen + 1; }
}
main M();
`

func TestYieldOnDequeue(t *testing.T) {
	prog := mustCompile(t, "yield", yieldProgram)
	g := core.NewGlobal(prog, nil)
	g.YieldOnDequeue = true
	m, _ := g.CreateMain()
	a, _ := prog.EventByName("A")
	b, _ := prog.EventByName("B")
	// Let the entry run first.
	if out := g.RunToSchedPoint(m.ID, nil, 0); out.Kind != core.OutBlocked {
		t.Fatalf("setup: %v", out.Kind)
	}
	g.Send(m.ID, a, core.Null)
	g.Send(m.ID, b, core.Null)
	out := g.RunToSchedPoint(m.ID, nil, 0)
	if out.Kind != core.OutYield {
		t.Fatalf("expected yield after first dequeue, got %v", out.Kind)
	}
	if len(out.Dequeued) != 1 {
		t.Fatalf("dequeued %d events before yield, want 1", len(out.Dequeued))
	}
	out = g.RunToSchedPoint(m.ID, nil, 0)
	if out.Kind != core.OutBlocked {
		t.Fatalf("expected blocked after second burst, got %v", out.Kind)
	}
	if m.Vars[0] != core.IntVal(2) {
		t.Fatalf("seen = %v, want 2", m.Vars[0])
	}
}

// Without the ablation the same burst handles both events atomically.
func TestNoYieldByDefault(t *testing.T) {
	prog := mustCompile(t, "yield", yieldProgram)
	g := core.NewGlobal(prog, nil)
	m, _ := g.CreateMain()
	a, _ := prog.EventByName("A")
	b, _ := prog.EventByName("B")
	if out := g.RunToSchedPoint(m.ID, nil, 0); out.Kind != core.OutBlocked {
		t.Fatalf("setup: %v", out.Kind)
	}
	g.Send(m.ID, a, core.Null)
	g.Send(m.ID, b, core.Null)
	out := g.RunToSchedPoint(m.ID, nil, 0)
	if out.Kind != core.OutBlocked || len(out.Dequeued) != 2 {
		t.Fatalf("expected one atomic burst of 2 dequeues, got %v with %d", out.Kind, len(out.Dequeued))
	}
}

// Dedup ablation: with DisableDedup duplicates pile up.
func TestDisableDedup(t *testing.T) {
	prog := mustCompile(t, "yield", yieldProgram)
	g := core.NewGlobal(prog, nil)
	g.DisableDedup = true
	m, _ := g.CreateMain()
	a, _ := prog.EventByName("A")
	for i := 0; i < 3; i++ {
		if added, err := g.Send(m.ID, a, core.Null); err != nil || !added {
			t.Fatalf("send %d: added=%v err=%v", i, added, err)
		}
	}
	if len(m.Queue) != 3 {
		t.Fatalf("queue = %d entries, want 3 without dedup", len(m.Queue))
	}
}

// Package runtime executes erased P programs concurrently: one goroutine
// per machine instance, a lock-protected inbox per instance, and
// run-to-completion event handling — the architecture of the paper's §4
// runtime for KMDF drivers, with goroutines standing in for kernel threads
// calling into the driver.
//
// The public API mirrors the paper's three runtime entry points:
//
//	SMCreateMachine → Runtime.CreateMachine
//	SMAddEvent      → Runtime.Send
//	SMGetContext    → Runtime.Context
//
// Ghost machines must be erased before execution (ir.Erase); attempting to
// run a program whose ghosts are intact is rejected, enforcing the type
// system's erasure guarantee at the runtime boundary.
package runtime

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pgo/internal/core"
	"pgo/internal/ir"
)

// Options configures a Runtime.
type Options struct {
	// Foreign supplies the host implementations of foreign functions.
	Foreign core.ForeignEnv
	// OnError is invoked (on the failing machine's goroutine) when a
	// machine hits an error transition; the machine then halts. Errors are
	// also collected and available via Errors.
	OnError func(*core.Err)
	// MaxHandlerSteps bounds the small steps of one run-to-completion burst
	// (0 = core.DefaultMaxSteps). Exceeding it is a divergence error.
	MaxHandlerSteps int
}

// Runtime executes one erased P program.
type Runtime struct {
	prog *ir.Program
	opts Options

	mu        sync.Mutex
	instances map[core.MachineID]*instance
	nextID    core.MachineID
	closed    bool

	emu  sync.Mutex
	errs []*core.Err

	wg sync.WaitGroup

	// metrics
	created   atomic.Int64
	delivered atomic.Int64
	dropped   atomic.Int64 // dedup-dropped enqueue attempts
	processed atomic.Int64 // events dequeued by machines
}

// Metrics is a snapshot of the runtime's counters.
type Metrics struct {
	MachinesCreated int64
	EventsDelivered int64
	EventsDeduped   int64
	EventsProcessed int64
}

// Metrics returns the current counter values.
func (rt *Runtime) Metrics() Metrics {
	return Metrics{
		MachinesCreated: rt.created.Load(),
		EventsDelivered: rt.delivered.Load(),
		EventsDeduped:   rt.dropped.Load(),
		EventsProcessed: rt.processed.Load(),
	}
}

// MachineInfo describes one live machine instance.
type MachineInfo struct {
	ID    core.MachineID
	Type  string
	State string // empty while the machine is running
	Idle  bool
}

// Machines lists the live machine instances in id order.
func (rt *Runtime) Machines() []MachineInfo {
	rt.mu.Lock()
	ins := make([]*instance, 0, len(rt.instances))
	for _, in := range rt.instances {
		ins = append(ins, in)
	}
	rt.mu.Unlock()
	sort.Slice(ins, func(i, j int) bool { return ins[i].id < ins[j].id })
	out := make([]MachineInfo, 0, len(ins))
	for _, in := range ins {
		info := MachineInfo{ID: in.id, Type: rt.prog.Machines[in.cfg.Type].Name}
		in.mu.Lock()
		info.Idle = in.idle
		if in.idle || in.halted {
			if st := in.cfg.CurrentState(); st >= 0 {
				info.State = rt.prog.Machines[in.cfg.Type].States[st].Name
			}
		}
		in.mu.Unlock()
		out = append(out, info)
	}
	return out
}

// instance is one machine: its configuration is owned by its goroutine;
// the inbox and flags are guarded by mu, which also orders external reads
// of the configuration while the machine is idle.
type instance struct {
	rt  *Runtime
	id  core.MachineID
	cfg *core.Config

	mu     sync.Mutex
	cond   *sync.Cond
	inbox  []core.QEntry
	idle   bool // machine parked, cfg readable under mu
	halted bool
}

// New creates a runtime for prog. The program must contain no live ghost
// machines: either compiled from ghost-free source or passed through
// ir.Erase.
func New(prog *ir.Program, opts Options) (*Runtime, error) {
	for _, m := range prog.Machines {
		if m.Ghost && !m.ErasedStub {
			return nil, fmt.Errorf("runtime: program %s has live ghost machine %s; apply ir.Erase before execution", prog.Name, m.Name)
		}
	}
	return &Runtime{
		prog:      prog,
		opts:      opts,
		instances: map[core.MachineID]*instance{},
		nextID:    1,
	}, nil
}

// Program returns the program the runtime executes.
func (rt *Runtime) Program() *ir.Program { return rt.prog }

// CreateMachine instantiates machine type name with the given variable
// initializers and host context pointer, starting its goroutine. This is
// the SMCreateMachine analog used by interface code.
func (rt *Runtime) CreateMachine(name string, inits map[string]core.Value, ctx any) (core.MachineID, error) {
	mt, ok := rt.prog.MachineByName(name)
	if !ok {
		return 0, fmt.Errorf("runtime: unknown machine type %s", name)
	}
	var vals []core.InitVal
	for varName, v := range inits {
		vid, ok := mt.VarByName(varName)
		if !ok {
			return 0, fmt.Errorf("runtime: machine %s has no variable %s", name, varName)
		}
		vals = append(vals, core.InitVal{Var: vid, Val: v})
	}
	id, cerr := rt.spawn(mt.ID, vals, ctx)
	if cerr != nil {
		return 0, cerr
	}
	return id, nil
}

func (rt *Runtime) spawn(t ir.MachineTypeID, vals []core.InitVal, ctx any) (core.MachineID, *core.Err) {
	mt := rt.prog.Machines[t]
	if mt.ErasedStub {
		return 0, &core.Err{Kind: core.ErrStub, Type: mt.Name}
	}
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return 0, &core.Err{Kind: core.ErrStub, Type: mt.Name, Detail: "runtime stopped"}
	}
	id := rt.nextID
	rt.nextID++
	cfg := core.NewConfig(rt.prog, id, t, vals)
	cfg.Ctx = ctx
	in := &instance{rt: rt, id: id, cfg: cfg}
	in.cond = sync.NewCond(&in.mu)
	rt.instances[id] = in
	rt.wg.Add(1)
	rt.mu.Unlock()
	rt.created.Add(1)
	go in.loop()
	return id, nil
}

// world adapts Runtime to core.World.
type world Runtime

// CreateMachine implements core.World.
func (w *world) CreateMachine(t ir.MachineTypeID, vals []core.InitVal) (core.MachineID, *core.Err) {
	return (*Runtime)(w).spawn(t, vals, nil)
}

// SendEvent implements core.World.
func (w *world) SendEvent(target core.MachineID, e ir.EventID, v core.Value) (delivered, found bool) {
	rt := (*Runtime)(w)
	rt.mu.Lock()
	in := rt.instances[target]
	rt.mu.Unlock()
	if in == nil {
		return false, false
	}
	return in.enqueue(e, v)
}

// Send enqueues an event into machine id from host code (the SMAddEvent
// analog). It returns an error if the machine is unknown or deleted, or if
// the event name is not declared.
func (rt *Runtime) Send(id core.MachineID, event string, payload core.Value) error {
	e, ok := rt.prog.EventByName(event)
	if !ok {
		return fmt.Errorf("runtime: unknown event %s", event)
	}
	rt.mu.Lock()
	in := rt.instances[id]
	rt.mu.Unlock()
	if in == nil {
		return fmt.Errorf("runtime: machine #%d does not exist", id)
	}
	if _, found := in.enqueue(e, payload); !found {
		return fmt.Errorf("runtime: machine #%d is deleted", id)
	}
	return nil
}

// Context returns the host context pointer of machine id (the SMGetContext
// analog), or nil if the machine is unknown.
func (rt *Runtime) Context(id core.MachineID) any {
	rt.mu.Lock()
	in := rt.instances[id]
	rt.mu.Unlock()
	if in == nil {
		return nil
	}
	return in.cfg.Ctx // Ctx is immutable after creation
}

// StateName returns the current state of machine id. It is valid only while
// the machine is parked (idle or halted); ok is false otherwise.
func (rt *Runtime) StateName(id core.MachineID) (string, bool) {
	rt.mu.Lock()
	in := rt.instances[id]
	rt.mu.Unlock()
	if in == nil {
		return "", false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if !in.idle && !in.halted {
		return "", false
	}
	st := in.cfg.CurrentState()
	if st < 0 {
		return "", false
	}
	return rt.prog.Machines[in.cfg.Type].States[st].Name, true
}

// Errors returns the machine errors collected so far.
func (rt *Runtime) Errors() []*core.Err {
	rt.emu.Lock()
	defer rt.emu.Unlock()
	return append([]*core.Err(nil), rt.errs...)
}

func (rt *Runtime) recordError(err *core.Err) {
	rt.emu.Lock()
	rt.errs = append(rt.errs, err)
	rt.emu.Unlock()
	if rt.opts.OnError != nil {
		rt.opts.OnError(err)
	}
}

// Quiesce blocks until every machine is parked with an empty inbox (or
// halted), or the timeout expires. It reports whether quiescence was
// reached. Quiescence is stable only if host code sends no further events.
func (rt *Runtime) Quiesce(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if rt.quiescent() {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func (rt *Runtime) quiescent() bool {
	rt.mu.Lock()
	ins := make([]*instance, 0, len(rt.instances))
	for _, in := range rt.instances {
		ins = append(ins, in)
	}
	rt.mu.Unlock()
	for _, in := range ins {
		in.mu.Lock()
		ok := in.halted || (in.idle && len(in.inbox) == 0)
		in.mu.Unlock()
		if !ok {
			return false
		}
	}
	return true
}

// Stop shuts the runtime down: machine goroutines exit at their next park
// and Stop waits for them. Pending events are discarded.
func (rt *Runtime) Stop() {
	rt.mu.Lock()
	rt.closed = true
	ins := make([]*instance, 0, len(rt.instances))
	for _, in := range rt.instances {
		ins = append(ins, in)
	}
	rt.mu.Unlock()
	for _, in := range ins {
		in.mu.Lock()
		in.cond.Broadcast()
		in.mu.Unlock()
	}
	rt.wg.Wait()
}

// ------------------------------------------------------------- instance

// enqueue appends (e, v) to the inbox with ⊕ dedup against pending inbox
// entries, waking the machine. found is false if the machine halted.
//
// Note on dedup granularity: the verification semantics dedups against the
// whole queue; the concurrent runtime dedups against the not-yet-drained
// inbox only, matching the lock granularity of the paper's C runtime (the
// drain also drops entries already present in the machine's queue).
func (in *instance) enqueue(e ir.EventID, v core.Value) (delivered, found bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.halted {
		return false, false
	}
	for _, q := range in.inbox {
		if q.Event == e && q.Val == v {
			in.rt.dropped.Add(1)
			return false, true
		}
	}
	in.inbox = append(in.inbox, core.QEntry{Event: e, Val: v})
	in.cond.Signal()
	in.rt.delivered.Add(1)
	return true, true
}

// drain moves inbox entries into the machine's queue (owner goroutine only),
// applying dedup against the queue.
func (in *instance) drain() {
	for _, q := range in.inbox {
		dup := false
		for _, p := range in.cfg.Queue {
			if p == q {
				dup = true
				break
			}
		}
		if !dup {
			in.cfg.Queue = append(in.cfg.Queue, q)
		}
	}
	in.inbox = in.inbox[:0]
}

// loop is the machine goroutine: run to completion, park, repeat.
func (in *instance) loop() {
	defer in.rt.wg.Done()
	x := &core.Exec{
		Prog:    in.rt.prog,
		World:   (*world)(in.rt),
		Foreign: in.rt.opts.Foreign,
	}
	for {
		in.mu.Lock()
		in.drain()
		closed := in.rt.isClosed()
		in.mu.Unlock()
		if closed {
			return
		}

		out := x.Run(in.cfg, nil, in.rt.opts.MaxHandlerSteps, false)
		in.rt.processed.Add(int64(len(out.Dequeued)))
		switch out.Kind {
		case core.OutBlocked:
			in.mu.Lock()
			in.idle = true
			for len(in.inbox) == 0 && !in.rt.isClosed() {
				in.cond.Wait()
			}
			in.idle = false
			closed := in.rt.isClosed()
			in.mu.Unlock()
			if closed {
				return
			}
		case core.OutHalted:
			in.mu.Lock()
			in.halted = true
			in.inbox = nil
			in.mu.Unlock()
			in.rt.removeInstance(in.id)
			return
		case core.OutError:
			in.rt.recordError(out.Err)
			in.mu.Lock()
			in.halted = true
			in.inbox = nil
			in.mu.Unlock()
			in.rt.removeInstance(in.id)
			return
		default:
			// OutSend/OutNew cannot occur with stopAtSched == false.
			in.rt.recordError(&core.Err{
				Kind:    core.ErrDivergence,
				Machine: in.id,
				Detail:  fmt.Sprintf("unexpected outcome %v from run-to-completion", out.Kind),
			})
			return
		}
	}
}

func (rt *Runtime) isClosed() bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.closed
}

// removeInstance tombstones a halted machine: it stays absent from the map
// so sends to it report deletion.
func (rt *Runtime) removeInstance(id core.MachineID) {
	rt.mu.Lock()
	delete(rt.instances, id)
	rt.mu.Unlock()
}

// Package runtime executes erased P programs concurrently: one goroutine
// per machine instance, a lock-protected inbox per instance, and
// run-to-completion event handling — the architecture of the paper's §4
// runtime for KMDF drivers, with goroutines standing in for kernel threads
// calling into the driver.
//
// The public API mirrors the paper's three runtime entry points:
//
//	SMCreateMachine → Runtime.CreateMachine
//	SMAddEvent      → Runtime.Send
//	SMGetContext    → Runtime.Context
//
// Ghost machines must be erased before execution (ir.Erase); attempting to
// run a program whose ghosts are intact is rejected, enforcing the type
// system's erasure guarantee at the runtime boundary.
//
// Machines are supervised: a panic escaping a handler (typically a foreign
// function) is recovered on the machine's goroutine, recorded as a
// core.ErrPanic, and halts — or, under a RestartPolicy, restarts — only
// that machine; the process and every other machine survive. Inboxes may be
// bounded (Options.MaxInbox + Options.Overflow) and the transport can
// inject seeded faults (Options.Inject) to exercise the same drop/duplicate
// behaviors the checker's chaos mode explores exhaustively.
package runtime

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pgo/internal/core"
	"pgo/internal/ir"
)

// ErrClosed is returned by host-facing Send and CreateMachine once the
// runtime has been stopped or is draining.
var ErrClosed = errors.New("runtime: stopped")

// OverflowPolicy selects what happens when an event arrives at a machine
// whose inbox already holds Options.MaxInbox entries.
type OverflowPolicy int

const (
	// OverflowUnbounded ignores MaxInbox: inboxes grow without limit (the
	// verification semantics, and the zero value).
	OverflowUnbounded OverflowPolicy = iota
	// OverflowDropNewest silently drops the arriving event, counting it in
	// Metrics.EventsOverflowed.
	OverflowDropNewest
	// OverflowError drops the arriving event and records a
	// core.ErrInboxOverflow through the error path (Errors, OnError).
	OverflowError
	// OverflowDropOldest evicts the oldest pending inbox entry to make room
	// for the arriving event. The evicted event counts in
	// Metrics.EventsOverflowed; the arriving one is delivered.
	OverflowDropOldest
	// OverflowBlock parks the sender until the inbox has room. Each send
	// that had to wait counts once in Metrics.EventsBlocked; a wait
	// abandoned because the machine halted or the runtime stopped drops the
	// event and counts it in Metrics.EventsOverflowed. Blocking applies to
	// every sender, including machine goroutines mid-burst, so programs
	// with send cycles can deadlock against full inboxes exactly like any
	// bounded blocking queue; Stop always breaks the wait.
	OverflowBlock
)

func (p OverflowPolicy) String() string {
	switch p {
	case OverflowUnbounded:
		return "unbounded"
	case OverflowDropNewest:
		return "drop-newest"
	case OverflowError:
		return "error"
	case OverflowDropOldest:
		return "drop-oldest"
	case OverflowBlock:
		return "block"
	default:
		return fmt.Sprintf("overflow(%d)", int(p))
	}
}

// ParseOverflowPolicy maps the flag spellings used by prun and pserve to a
// policy. Unbounded is spelled "unbounded".
func ParseOverflowPolicy(s string) (OverflowPolicy, error) {
	switch s {
	case "unbounded":
		return OverflowUnbounded, nil
	case "drop-newest":
		return OverflowDropNewest, nil
	case "error":
		return OverflowError, nil
	case "drop-oldest":
		return OverflowDropOldest, nil
	case "block":
		return OverflowBlock, nil
	default:
		return 0, fmt.Errorf("unknown overflow policy %q (want unbounded, drop-newest, drop-oldest, block, or error)", s)
	}
}

// RestartPolicy configures supervision of panicked machines. The zero value
// never restarts: a panicked machine halts (its id becomes a tombstone,
// like delete).
type RestartPolicy struct {
	// MaxRestarts is the number of times one machine instance may be
	// restarted after a panic before it is halted for good.
	MaxRestarts int
	// Backoff is the wait before the first restart; each further restart
	// doubles it (capped by MaxBackoff). 0 restarts immediately.
	Backoff time.Duration
	// MaxBackoff caps the exponential backoff (0 = uncapped).
	MaxBackoff time.Duration
}

// Inject configures seeded probabilistic fault injection on the transport:
// every dispatched event independently rolls for loss, duplication, and
// delay. This is the runtime-world sibling of the checker's chaos mode —
// probabilistic where the checker is exhaustive.
type Inject struct {
	// Seed makes the injection sequence reproducible.
	Seed int64
	// Drop is the probability an event is lost in transit (the sender
	// cannot tell).
	Drop float64
	// Dup is the probability an event is delivered a second time, bypassing
	// inbox dedup by arriving asynchronously.
	Dup float64
	// Delay is the probability an event's delivery is postponed.
	Delay float64
	// MaxDelay bounds injected delivery delays (default 1ms).
	MaxDelay time.Duration
}

// Options configures a Runtime.
type Options struct {
	// Foreign supplies the host implementations of foreign functions.
	Foreign core.ForeignEnv
	// OnError is invoked (on the failing machine's goroutine) when a
	// machine hits an error transition; the machine then halts or restarts.
	// Errors are also collected and available via Errors.
	OnError func(*core.Err)
	// MaxHandlerSteps bounds the small steps of one run-to-completion burst
	// (0 = core.DefaultMaxSteps). Exceeding it is a divergence error.
	MaxHandlerSteps int
	// MaxInbox bounds each machine's not-yet-drained inbox; what happens at
	// the bound is Overflow's choice. 0 = unbounded.
	MaxInbox int
	// Overflow selects the full-inbox behavior when MaxInbox > 0.
	Overflow OverflowPolicy
	// Restart supervises panicked machines; the zero value halts them.
	Restart RestartPolicy
	// Inject, when non-nil, enables seeded transport fault injection.
	Inject *Inject
}

// Runtime executes one erased P program.
type Runtime struct {
	prog *ir.Program
	opts Options

	mu        sync.Mutex
	instances map[core.MachineID]*instance
	nextID    core.MachineID
	closed    bool
	draining  bool

	// done is closed by Stop; backoff waits and pending injected
	// redeliveries select on it.
	done     chan struct{}
	stopOnce sync.Once

	// Quiescence accounting. active counts machine instances that are not
	// parked-with-empty-inbox (plus pending injected redeliveries); qcond is
	// broadcast when it reaches zero. qmu is a leaf lock: it is taken with
	// in.mu or rt.mu held, never the reverse.
	qmu    sync.Mutex
	qcond  *sync.Cond
	active int

	emu  sync.Mutex
	errs []*core.Err

	wg sync.WaitGroup

	// injmu guards rng (only allocated when opts.Inject != nil).
	injmu sync.Mutex
	rng   *rand.Rand

	// closedFlag mirrors closed for lock-free checks from wait loops that
	// already hold an instance lock (OverflowBlock) and cannot take rt.mu.
	closedFlag atomic.Bool

	// cmu guards counts: every counter increment and the Metrics snapshot
	// happen under this one lock, so a snapshot is coherent — it can never
	// observe, say, a delivery without the dedup/overflow accounting that
	// preceded it on the same goroutine. cmu is a leaf lock: it may be
	// taken while rt.mu or an instance lock is held, never the reverse.
	cmu    sync.Mutex
	counts Metrics
}

// Metrics is a snapshot of the runtime's counters. The JSON field names are
// the stable scripting interface of `prun -metrics-json` and pserve /varz.
type Metrics struct {
	MachinesCreated  int64 `json:"machines_created"`
	EventsDelivered  int64 `json:"events_delivered"`
	EventsDeduped    int64 `json:"events_deduped"`
	EventsProcessed  int64 `json:"events_processed"`
	EventsOverflowed int64 `json:"events_overflowed"` // rejected or evicted by a bounded inbox
	EventsBlocked    int64 `json:"events_blocked"`    // sends that waited under OverflowBlock
	InjectedDrops    int64 `json:"injected_drops"`
	InjectedDups     int64 `json:"injected_dups"`
	InjectedDelays   int64 `json:"injected_delays"`
	Panics           int64 `json:"panics"`   // panics recovered by supervision
	Restarts         int64 `json:"restarts"` // machines restarted after a panic
}

// Metrics returns a coherent snapshot of the counters: the increments are
// serialized with the read under one lock, so the returned struct is a
// point-in-time cut of the accounting rather than a field-by-field torn
// read.
func (rt *Runtime) Metrics() Metrics {
	rt.cmu.Lock()
	defer rt.cmu.Unlock()
	return rt.counts
}

// count applies one accounting update under the metrics lock.
func (rt *Runtime) count(f func(*Metrics)) {
	rt.cmu.Lock()
	f(&rt.counts)
	rt.cmu.Unlock()
}

// MachineInfo describes one live machine instance.
type MachineInfo struct {
	ID    core.MachineID
	Type  string
	State string // empty while the machine is running
	Idle  bool
}

// Machines lists the live machine instances in id order.
func (rt *Runtime) Machines() []MachineInfo {
	rt.mu.Lock()
	ins := make([]*instance, 0, len(rt.instances))
	for _, in := range rt.instances {
		ins = append(ins, in)
	}
	rt.mu.Unlock()
	sort.Slice(ins, func(i, j int) bool { return ins[i].id < ins[j].id })
	out := make([]MachineInfo, 0, len(ins))
	for _, in := range ins {
		in.mu.Lock()
		info := MachineInfo{ID: in.id, Type: rt.prog.Machines[in.cfg.Type].Name}
		info.Idle = in.idle
		if in.idle || in.halted {
			if st := in.cfg.CurrentState(); st >= 0 {
				info.State = rt.prog.Machines[in.cfg.Type].States[st].Name
			}
		}
		in.mu.Unlock()
		out = append(out, info)
	}
	return out
}

// instance is one machine: its configuration is owned by its goroutine;
// the inbox and flags are guarded by mu, which also orders external reads
// of the configuration while the machine is idle.
type instance struct {
	rt   *Runtime
	id   core.MachineID
	cfg  *core.Config
	vals []core.InitVal // initializers, kept for supervised restarts

	mu     sync.Mutex
	cond   *sync.Cond
	space  *sync.Cond // waited on by OverflowBlock senders; signaled when the inbox shrinks
	inbox  []core.QEntry
	idle   bool // machine parked, cfg readable under mu
	halted bool

	// quiet mirrors this instance's contribution to rt.active; guarded by
	// rt.qmu, not mu.
	quiet bool
	// restarts counts supervised restarts of this instance (owner goroutine
	// only).
	restarts int
}

// New creates a runtime for prog. The program must contain no live ghost
// machines: either compiled from ghost-free source or passed through
// ir.Erase.
func New(prog *ir.Program, opts Options) (*Runtime, error) {
	for _, m := range prog.Machines {
		if m.Ghost && !m.ErasedStub {
			return nil, fmt.Errorf("runtime: program %s has live ghost machine %s; apply ir.Erase before execution", prog.Name, m.Name)
		}
	}
	rt := &Runtime{
		prog:      prog,
		opts:      opts,
		instances: map[core.MachineID]*instance{},
		nextID:    1,
		done:      make(chan struct{}),
	}
	rt.qcond = sync.NewCond(&rt.qmu)
	if opts.Inject != nil {
		rt.rng = rand.New(rand.NewSource(opts.Inject.Seed))
	}
	return rt, nil
}

// Program returns the program the runtime executes.
func (rt *Runtime) Program() *ir.Program { return rt.prog }

// CreateMachine instantiates machine type name with the given variable
// initializers and host context pointer, starting its goroutine. This is
// the SMCreateMachine analog used by interface code. After Stop or during
// Drain it returns ErrClosed.
func (rt *Runtime) CreateMachine(name string, inits map[string]core.Value, ctx any) (core.MachineID, error) {
	mt, ok := rt.prog.MachineByName(name)
	if !ok {
		return 0, fmt.Errorf("runtime: unknown machine type %s", name)
	}
	if rt.closedOrDraining() {
		return 0, ErrClosed
	}
	var vals []core.InitVal
	for varName, v := range inits {
		vid, ok := mt.VarByName(varName)
		if !ok {
			return 0, fmt.Errorf("runtime: machine %s has no variable %s", name, varName)
		}
		vals = append(vals, core.InitVal{Var: vid, Val: v})
	}
	id, cerr := rt.spawn(mt.ID, vals, ctx)
	if cerr != nil {
		if cerr.Kind == core.ErrClosed {
			return 0, ErrClosed
		}
		return 0, cerr
	}
	return id, nil
}

func (rt *Runtime) spawn(t ir.MachineTypeID, vals []core.InitVal, ctx any) (core.MachineID, *core.Err) {
	mt := rt.prog.Machines[t]
	if mt.ErasedStub {
		return 0, &core.Err{Kind: core.ErrStub, Type: mt.Name}
	}
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return 0, &core.Err{Kind: core.ErrClosed, Type: mt.Name}
	}
	id := rt.nextID
	rt.nextID++
	cfg := core.NewConfig(rt.prog, id, t, vals)
	cfg.Ctx = ctx
	in := &instance{rt: rt, id: id, cfg: cfg, vals: vals}
	in.cond = sync.NewCond(&in.mu)
	in.space = sync.NewCond(&in.mu)
	rt.instances[id] = in
	rt.wg.Add(1)
	rt.mu.Unlock()
	rt.addActive(1) // the new machine starts busy (entry of the start state)
	rt.count(func(m *Metrics) { m.MachinesCreated++ })
	go in.loop()
	return id, nil
}

// world adapts Runtime to core.World.
type world Runtime

// CreateMachine implements core.World.
func (w *world) CreateMachine(t ir.MachineTypeID, vals []core.InitVal) (core.MachineID, *core.Err) {
	return (*Runtime)(w).spawn(t, vals, nil)
}

// SendEvent implements core.World.
func (w *world) SendEvent(target core.MachineID, e ir.EventID, v core.Value) (delivered, found bool) {
	rt := (*Runtime)(w)
	rt.mu.Lock()
	in := rt.instances[target]
	rt.mu.Unlock()
	if in == nil {
		return false, false
	}
	return rt.dispatch(in, e, v)
}

// Send enqueues an event into machine id from host code (the SMAddEvent
// analog). It returns an error if the machine is unknown or deleted, if
// the event name is not declared, or — as ErrClosed — if the runtime has
// been stopped or is draining.
func (rt *Runtime) Send(id core.MachineID, event string, payload core.Value) error {
	e, ok := rt.prog.EventByName(event)
	if !ok {
		return fmt.Errorf("runtime: unknown event %s", event)
	}
	if rt.closedOrDraining() {
		return ErrClosed
	}
	rt.mu.Lock()
	in := rt.instances[id]
	rt.mu.Unlock()
	if in == nil {
		return fmt.Errorf("runtime: machine #%d does not exist", id)
	}
	if _, found := rt.dispatch(in, e, payload); !found {
		return fmt.Errorf("runtime: machine #%d is deleted", id)
	}
	return nil
}

// dispatch delivers one event to in, applying transport fault injection
// when configured.
func (rt *Runtime) dispatch(in *instance, e ir.EventID, v core.Value) (delivered, found bool) {
	if inj := rt.opts.Inject; inj != nil {
		drop, dup, delay := rt.roll(inj)
		switch {
		case drop:
			// Lost in transit: the sender cannot tell, exactly like the
			// checker's drop fault.
			rt.count(func(m *Metrics) { m.InjectedDrops++ })
			return true, true
		case delay:
			rt.count(func(m *Metrics) { m.InjectedDelays++ })
			rt.deliverLater(in, e, v, rt.randDelay(inj))
			return true, true
		case dup:
			// Deliver now and once more later; the asynchronous second copy
			// is what defeats inbox dedup, like the checker's dup fault.
			rt.count(func(m *Metrics) { m.InjectedDups++ })
			rt.deliverLater(in, e, v, rt.randDelay(inj))
		}
	}
	return in.enqueue(e, v)
}

// roll samples the injection dice for one dispatched event.
func (rt *Runtime) roll(inj *Inject) (drop, dup, delay bool) {
	rt.injmu.Lock()
	defer rt.injmu.Unlock()
	drop = inj.Drop > 0 && rt.rng.Float64() < inj.Drop
	if drop {
		return true, false, false
	}
	dup = inj.Dup > 0 && rt.rng.Float64() < inj.Dup
	if !dup {
		delay = inj.Delay > 0 && rt.rng.Float64() < inj.Delay
	}
	return drop, dup, delay
}

func (rt *Runtime) randDelay(inj *Inject) time.Duration {
	max := inj.MaxDelay
	if max <= 0 {
		max = time.Millisecond
	}
	rt.injmu.Lock()
	defer rt.injmu.Unlock()
	return time.Duration(rt.rng.Int63n(int64(max))) + 1
}

// deliverLater redelivers (e, v) to in after d on a fresh goroutine. The
// pending redelivery counts against quiescence, and Stop cancels it.
func (rt *Runtime) deliverLater(in *instance, e ir.EventID, v core.Value, d time.Duration) {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return
	}
	// wg.Add happens under rt.mu with closed false, so it is ordered before
	// Stop's wg.Wait.
	rt.wg.Add(1)
	rt.mu.Unlock()
	rt.addActive(1)
	go func() {
		defer rt.wg.Done()
		defer rt.addActive(-1)
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
			in.enqueue(e, v)
		case <-rt.done:
		}
	}()
}

// Context returns the host context pointer of machine id (the SMGetContext
// analog), or nil if the machine is unknown.
func (rt *Runtime) Context(id core.MachineID) any {
	rt.mu.Lock()
	in := rt.instances[id]
	rt.mu.Unlock()
	if in == nil {
		return nil
	}
	return in.cfg.Ctx // Ctx is immutable after creation
}

// StateName returns the current state of machine id. It is valid only while
// the machine is parked (idle or halted); ok is false otherwise.
func (rt *Runtime) StateName(id core.MachineID) (string, bool) {
	rt.mu.Lock()
	in := rt.instances[id]
	rt.mu.Unlock()
	if in == nil {
		return "", false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if !in.idle && !in.halted {
		return "", false
	}
	st := in.cfg.CurrentState()
	if st < 0 {
		return "", false
	}
	return rt.prog.Machines[in.cfg.Type].States[st].Name, true
}

// Errors returns the machine errors collected so far.
func (rt *Runtime) Errors() []*core.Err {
	rt.emu.Lock()
	defer rt.emu.Unlock()
	return append([]*core.Err(nil), rt.errs...)
}

func (rt *Runtime) recordError(err *core.Err) {
	rt.emu.Lock()
	rt.errs = append(rt.errs, err)
	rt.emu.Unlock()
	if rt.opts.OnError != nil {
		rt.opts.OnError(err)
	}
}

// ---------------------------------------------------------- quiescence

// addActive adjusts the busy count, broadcasting when it reaches zero.
func (rt *Runtime) addActive(delta int) {
	rt.qmu.Lock()
	rt.active += delta
	if rt.active == 0 {
		rt.qcond.Broadcast()
	}
	rt.qmu.Unlock()
}

// setQuiet flips this instance's contribution to the busy count. Called
// with in.mu possibly held; qmu is a leaf lock so the nesting is safe.
func (in *instance) setQuiet(q bool) {
	rt := in.rt
	rt.qmu.Lock()
	if in.quiet != q {
		in.quiet = q
		if q {
			rt.active--
			if rt.active == 0 {
				rt.qcond.Broadcast()
			}
		} else {
			rt.active++
		}
	}
	rt.qmu.Unlock()
}

// Quiesce blocks until every machine is parked with an empty inbox (or
// halted) and no injected redelivery is pending, or until the timeout
// expires. It reports whether quiescence was reached; it is notification-
// based, not polling. Quiescence is stable only if host code sends no
// further events.
func (rt *Runtime) Quiesce(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	expired := time.AfterFunc(timeout, func() {
		rt.qmu.Lock()
		rt.qcond.Broadcast()
		rt.qmu.Unlock()
	})
	defer expired.Stop()
	rt.qmu.Lock()
	defer rt.qmu.Unlock()
	for rt.active > 0 {
		if !time.Now().Before(deadline) {
			return false
		}
		rt.qcond.Wait()
	}
	return true
}

// Drain gracefully shuts the runtime down: host-facing Send and
// CreateMachine start returning ErrClosed, in-flight work (including
// machine-to-machine sends) runs to quiescence or the timeout, then the
// runtime stops. It reports whether quiescence was reached in time.
func (rt *Runtime) Drain(timeout time.Duration) bool {
	rt.mu.Lock()
	rt.draining = true
	rt.mu.Unlock()
	ok := rt.Quiesce(timeout)
	rt.Stop()
	return ok
}

// Stop shuts the runtime down: machine goroutines exit at their next park
// and Stop waits for them. Pending events are discarded. Stop is
// idempotent and safe to call concurrently; every caller blocks until the
// machines have exited.
func (rt *Runtime) Stop() {
	rt.stopOnce.Do(func() {
		rt.mu.Lock()
		rt.closed = true
		rt.closedFlag.Store(true)
		close(rt.done)
		ins := make([]*instance, 0, len(rt.instances))
		for _, in := range rt.instances {
			ins = append(ins, in)
		}
		rt.mu.Unlock()
		for _, in := range ins {
			in.mu.Lock()
			in.cond.Broadcast()
			in.space.Broadcast() // abandon OverflowBlock waits
			in.mu.Unlock()
		}
	})
	rt.wg.Wait()
}

// ------------------------------------------------------------- instance

// enqueue appends (e, v) to the inbox with ⊕ dedup against pending inbox
// entries, waking the machine. found is false if the machine halted.
//
// Note on dedup granularity: the verification semantics dedups against the
// whole queue; the concurrent runtime dedups against the not-yet-drained
// inbox only, matching the lock granularity of the paper's C runtime (the
// drain also drops entries already present in the machine's queue).
//
// Accounting per overflow policy at a full inbox:
//   - DropNewest: the arriving event is rejected, EventsOverflowed++.
//   - Error: as DropNewest, plus an ErrInboxOverflow through the error path.
//   - DropOldest: the head entry is evicted (EventsOverflowed++ for it) and
//     the arriving event is delivered (EventsDelivered++).
//   - Block: the sender waits for room; the first wait of a send counts
//     EventsBlocked++. A wait abandoned by Stop drops the event with
//     EventsOverflowed++; one abandoned by halt reports found=false like
//     any send to a deleted machine.
func (in *instance) enqueue(e ir.EventID, v core.Value) (delivered, found bool) {
	opts := &in.rt.opts
	bounded := opts.Overflow != OverflowUnbounded && opts.MaxInbox > 0
	blocked := false
	in.mu.Lock()
	for {
		if in.halted {
			in.mu.Unlock()
			return false, false
		}
		for _, q := range in.inbox {
			if q.Event == e && q.Val == v {
				in.mu.Unlock()
				in.rt.count(func(m *Metrics) { m.EventsDeduped++ })
				return false, true
			}
		}
		if !bounded || len(in.inbox) < opts.MaxInbox {
			break
		}
		switch opts.Overflow {
		case OverflowDropOldest:
			copy(in.inbox, in.inbox[1:])
			in.inbox = in.inbox[:len(in.inbox)-1]
			in.rt.count(func(m *Metrics) { m.EventsOverflowed++ })
			// Loop: the freed slot admits (e, v) via the append below (the
			// dedup re-check is vacuous — the entry was absent above and the
			// inbox only shrank).
		case OverflowBlock:
			if in.rt.closedFlag.Load() {
				in.mu.Unlock()
				in.rt.count(func(m *Metrics) { m.EventsOverflowed++ })
				return false, true
			}
			if !blocked {
				blocked = true
				in.rt.count(func(m *Metrics) { m.EventsBlocked++ })
			}
			in.space.Wait()
		default: // DropNewest, Error: reject the arriving event.
			var err *core.Err
			if opts.Overflow == OverflowError {
				err = &core.Err{
					Kind:    core.ErrInboxOverflow,
					Machine: in.id,
					Type:    in.rt.prog.Machines[in.cfg.Type].Name,
					Event:   e,
					HasEv:   true,
					Detail:  fmt.Sprintf("inbox at its bound of %d", opts.MaxInbox),
				}
			}
			in.mu.Unlock()
			in.rt.count(func(m *Metrics) { m.EventsOverflowed++ })
			// recordError outside in.mu: OnError is user code.
			if err != nil {
				in.rt.recordError(err)
			}
			return false, true
		}
	}
	in.inbox = append(in.inbox, core.QEntry{Event: e, Val: v})
	in.setQuiet(false)
	in.cond.Signal()
	in.mu.Unlock()
	in.rt.count(func(m *Metrics) { m.EventsDelivered++ })
	return true, true
}

// drain moves inbox entries into the machine's queue (owner goroutine only),
// applying dedup against the queue.
func (in *instance) drain() {
	for _, q := range in.inbox {
		dup := false
		for _, p := range in.cfg.Queue {
			if p == q {
				dup = true
				break
			}
		}
		if !dup {
			in.cfg.Queue = append(in.cfg.Queue, q)
		}
	}
	if len(in.inbox) > 0 {
		in.inbox = in.inbox[:0]
		in.space.Broadcast() // room for OverflowBlock senders
	}
}

// runBurst executes one run-to-completion burst under a recover: a panic
// escaping a handler (typically a foreign function) becomes a core.ErrPanic
// outcome instead of crashing the process.
func (in *instance) runBurst(x *core.Exec) (out core.Outcome) {
	defer func() {
		if r := recover(); r != nil {
			in.rt.count(func(m *Metrics) { m.Panics++ })
			st := ""
			if s := in.cfg.CurrentState(); s >= 0 {
				st = in.rt.prog.Machines[in.cfg.Type].States[s].Name
			}
			out = core.Outcome{Kind: core.OutError, Err: &core.Err{
				Kind:    core.ErrPanic,
				Machine: in.id,
				Type:    in.rt.prog.Machines[in.cfg.Type].Name,
				State:   st,
				Detail:  fmt.Sprintf("recovered: %v", r),
			}}
		}
	}()
	return x.Run(in.cfg, nil, in.rt.opts.MaxHandlerSteps, false)
}

// restartAfterPanic applies the RestartPolicy to a panicked machine: it
// waits out the capped exponential backoff (abandoned if the runtime stops)
// and replaces the possibly-corrupt configuration with a fresh incarnation
// — same id, same initializers, same host context, entry of the start state
// runs again. Inbox events sent while the machine was down are kept; the
// crashed incarnation's internal queue is lost with it. It reports whether
// the machine should resume its loop.
func (in *instance) restartAfterPanic() bool {
	pol := in.rt.opts.Restart
	if in.restarts >= pol.MaxRestarts {
		return false
	}
	in.restarts++
	in.rt.count(func(m *Metrics) { m.Restarts++ })
	if d := pol.Backoff; d > 0 {
		shift := in.restarts - 1
		if shift > 16 {
			shift = 16
		}
		d <<= shift
		if pol.MaxBackoff > 0 && d > pol.MaxBackoff {
			d = pol.MaxBackoff
		}
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
		case <-in.rt.done:
			return false
		}
	}
	if in.rt.isClosed() {
		return false
	}
	cfg := core.NewConfig(in.rt.prog, in.id, in.cfg.Type, in.vals)
	cfg.Ctx = in.cfg.Ctx
	in.mu.Lock()
	in.cfg = cfg
	in.mu.Unlock()
	return true
}

// halt tombstones the machine: sends to its id now report deletion.
func (in *instance) halt() {
	in.mu.Lock()
	in.halted = true
	in.inbox = nil
	in.space.Broadcast() // blocked senders observe the halt
	in.mu.Unlock()
	in.rt.removeInstance(in.id)
}

// loop is the machine goroutine: run to completion, park, repeat.
func (in *instance) loop() {
	defer in.rt.wg.Done()
	defer in.setQuiet(true)
	x := &core.Exec{
		Prog:    in.rt.prog,
		World:   (*world)(in.rt),
		Foreign: in.rt.opts.Foreign,
	}
	for {
		in.mu.Lock()
		in.drain()
		in.mu.Unlock()
		if in.rt.isClosed() {
			return
		}

		out := in.runBurst(x)
		if n := len(out.Dequeued); n > 0 {
			in.rt.count(func(m *Metrics) { m.EventsProcessed += int64(n) })
		}
		switch out.Kind {
		case core.OutBlocked:
			in.mu.Lock()
			in.idle = true
			for len(in.inbox) == 0 && !in.rt.isClosed() {
				// Quiet while parked on an empty inbox; enqueue flips it
				// back under in.mu before signaling.
				in.setQuiet(true)
				in.cond.Wait()
			}
			in.idle = false
			in.mu.Unlock()
			if in.rt.isClosed() {
				return
			}
		case core.OutHalted:
			in.halt()
			return
		case core.OutError:
			in.rt.recordError(out.Err)
			if out.Err.Kind == core.ErrPanic && in.restartAfterPanic() {
				continue
			}
			in.halt()
			return
		default:
			// OutSend/OutNew cannot occur with stopAtSched == false.
			in.rt.recordError(&core.Err{
				Kind:    core.ErrDivergence,
				Machine: in.id,
				Detail:  fmt.Sprintf("unexpected outcome %v from run-to-completion", out.Kind),
			})
			return
		}
	}
}

func (rt *Runtime) isClosed() bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.closed
}

func (rt *Runtime) closedOrDraining() bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.closed || rt.draining
}

// removeInstance tombstones a halted machine: it stays absent from the map
// so sends to it report deletion.
func (rt *Runtime) removeInstance(id core.MachineID) {
	rt.mu.Lock()
	delete(rt.instances, id)
	rt.mu.Unlock()
}

package runtime_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"pgo/internal/core"
	"pgo/internal/psamples"
	prt "pgo/internal/runtime"
)

// Tests for the supervision, backpressure, and fault-injection features:
// panic recovery and restart policies, bounded inboxes, graceful drain,
// post-Stop error reporting, and the seeded transport chaos knobs.

const panicProgram = `
event Boom; event Poke; event unit;
machine M {
  var count: int;
  foreign explode(): void;
  state S {
    entry { count = 0; }
    on Boom do DoBoom;
    on Poke do Bump;
  }
  action DoBoom { explode(); }
  action Bump { count = count + 1; }
}
main M();
`

func explodingForeign() core.ForeignMap {
	return core.ForeignMap{
		"M.explode": func(ctx any, args []core.Value) (core.Value, error) {
			panic("kaboom")
		},
	}
}

// A foreign-function panic must halt only the panicking machine: the error
// is recorded as ErrPanic, the process and every other machine survive.
func TestPanicHaltsOnlyThatMachine(t *testing.T) {
	prog := erased(t, "panic", panicProgram)
	rt, err := prt.New(prog, prt.Options{Foreign: explodingForeign()})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	victim, err := rt.CreateMachine("M", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	bystander, err := rt.CreateMachine("M", nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	if err := rt.Send(victim, "Boom", core.Null); err != nil {
		t.Fatal(err)
	}
	if !rt.Quiesce(5 * time.Second) {
		t.Fatal("no quiescence after panic")
	}
	errs := rt.Errors()
	if len(errs) != 1 || errs[0].Kind != core.ErrPanic {
		t.Fatalf("errors = %v, want one ErrPanic", errs)
	}
	if err := rt.Send(victim, "Poke", core.Null); err == nil {
		t.Fatal("send to panicked machine succeeded; it should be halted")
	}

	// The bystander is untouched.
	if err := rt.Send(bystander, "Poke", core.Null); err != nil {
		t.Fatal(err)
	}
	if !rt.Quiesce(5 * time.Second) {
		t.Fatal("no quiescence after poking the bystander")
	}
	if st, ok := rt.StateName(bystander); !ok || st != "S" {
		t.Fatalf("bystander state = %q, %v; want S, true", st, ok)
	}
	m := rt.Metrics()
	if m.Panics != 1 || m.Restarts != 0 {
		t.Fatalf("panics/restarts = %d/%d, want 1/0", m.Panics, m.Restarts)
	}
}

// Under a RestartPolicy a panicked machine comes back as a fresh
// incarnation (same id, entry runs again) until the restart budget is
// exhausted, with exponential backoff between attempts.
func TestPanicRestartPolicy(t *testing.T) {
	prog := erased(t, "panic", panicProgram)
	rt, err := prt.New(prog, prt.Options{
		Foreign: explodingForeign(),
		Restart: prt.RestartPolicy{
			MaxRestarts: 2,
			Backoff:     time.Millisecond,
			MaxBackoff:  4 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	id, err := rt.CreateMachine("M", nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	// First panic: restarted and usable again.
	if err := rt.Send(id, "Boom", core.Null); err != nil {
		t.Fatal(err)
	}
	if !rt.Quiesce(5 * time.Second) {
		t.Fatal("no quiescence after first panic")
	}
	if err := rt.Send(id, "Poke", core.Null); err != nil {
		t.Fatalf("restarted machine rejected a send: %v", err)
	}
	if !rt.Quiesce(5 * time.Second) {
		t.Fatal("no quiescence after poke")
	}
	if st, ok := rt.StateName(id); !ok || st != "S" {
		t.Fatalf("restarted machine state = %q, %v; want S, true", st, ok)
	}

	// Exhaust the restart budget: panic two more times.
	for i := 0; i < 2; i++ {
		if err := rt.Send(id, "Boom", core.Null); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		if !rt.Quiesce(5 * time.Second) {
			t.Fatalf("no quiescence after panic %d", i)
		}
	}
	if err := rt.Send(id, "Poke", core.Null); err == nil {
		t.Fatal("machine survived past its restart budget")
	}
	m := rt.Metrics()
	if m.Panics != 3 || m.Restarts != 2 {
		t.Fatalf("panics/restarts = %d/%d, want 3/2", m.Panics, m.Restarts)
	}
}

const gateProgram = `
event Go; event Inc(int); event unit;
machine G {
  foreign wait(): void;
  state S {
    entry { skip; }
    on Go do DoWait;
    on Inc do Nop;
  }
  action DoWait { wait(); }
  action Nop { skip; }
}
main G();
`

// gate returns a foreign map whose G.wait blocks the machine goroutine
// until release is closed, signaling entered first.
func gate(entered chan<- struct{}, release <-chan struct{}) core.ForeignMap {
	return core.ForeignMap{
		"G.wait": func(ctx any, args []core.Value) (core.Value, error) {
			entered <- struct{}{}
			<-release
			return core.Null, nil
		},
	}
}

// With a bounded inbox and the drop-newest policy, events beyond the bound
// are silently rejected and counted.
func TestBoundedInboxDropNewest(t *testing.T) {
	prog := erased(t, "gate", gateProgram)
	entered := make(chan struct{})
	release := make(chan struct{})
	rt, err := prt.New(prog, prt.Options{
		Foreign:  gate(entered, release),
		MaxInbox: 2,
		Overflow: prt.OverflowDropNewest,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	id, err := rt.CreateMachine("G", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Send(id, "Go", core.Null); err != nil {
		t.Fatal(err)
	}
	<-entered // the machine is now stuck in the handler; its inbox backs up

	for i := 0; i < 5; i++ {
		if err := rt.Send(id, "Inc", core.IntVal(int64(i))); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	close(release)
	if !rt.Quiesce(5 * time.Second) {
		t.Fatal("no quiescence")
	}
	m := rt.Metrics()
	if m.EventsOverflowed != 3 {
		t.Fatalf("overflowed = %d, want 3 (5 sends, inbox bound 2)", m.EventsOverflowed)
	}
	if errs := rt.Errors(); len(errs) != 0 {
		t.Fatalf("drop-newest recorded errors: %v", errs)
	}
}

// The error overflow policy records an ErrInboxOverflow per rejected event
// through the normal error path (Errors + OnError).
func TestBoundedInboxErrorPolicy(t *testing.T) {
	prog := erased(t, "gate", gateProgram)
	entered := make(chan struct{})
	release := make(chan struct{})
	var onErr []core.ErrKind
	var mu sync.Mutex
	rt, err := prt.New(prog, prt.Options{
		Foreign:  gate(entered, release),
		MaxInbox: 1,
		Overflow: prt.OverflowError,
		OnError: func(e *core.Err) {
			mu.Lock()
			onErr = append(onErr, e.Kind)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	id, err := rt.CreateMachine("G", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Send(id, "Go", core.Null); err != nil {
		t.Fatal(err)
	}
	<-entered

	for i := 0; i < 3; i++ {
		if err := rt.Send(id, "Inc", core.IntVal(int64(i))); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	close(release)
	if !rt.Quiesce(5 * time.Second) {
		t.Fatal("no quiescence")
	}
	errs := rt.Errors()
	if len(errs) != 2 {
		t.Fatalf("errors = %d, want 2 (3 sends, inbox bound 1)", len(errs))
	}
	for _, e := range errs {
		if e.Kind != core.ErrInboxOverflow {
			t.Fatalf("error kind = %v, want ErrInboxOverflow", e.Kind)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(onErr) != 2 {
		t.Fatalf("OnError invoked %d times, want 2", len(onErr))
	}
}

// After Stop (or during Drain), host-facing Send and CreateMachine report
// ErrClosed, recognizable with errors.Is.
func TestPostStopErrClosed(t *testing.T) {
	prog := erased(t, "gate", gateProgram)
	rt, err := prt.New(prog, prt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	id, err := rt.CreateMachine("G", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rt.Stop()
	if err := rt.Send(id, "Inc", core.Null); !errors.Is(err, prt.ErrClosed) {
		t.Fatalf("Send after Stop = %v, want ErrClosed", err)
	}
	if _, err := rt.CreateMachine("G", nil, nil); !errors.Is(err, prt.ErrClosed) {
		t.Fatalf("CreateMachine after Stop = %v, want ErrClosed", err)
	}
}

// Drain lets in-flight work finish, then refuses new host work.
func TestDrainGraceful(t *testing.T) {
	prog := erased(t, "pingpong", psamples.PingPong)
	rt, err := prt.New(prog, prt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.CreateMachine("Pinger", nil, nil); err != nil {
		t.Fatal(err)
	}
	if !rt.Drain(10 * time.Second) {
		t.Fatal("Drain did not reach quiescence")
	}
	if _, err := rt.CreateMachine("Pinger", nil, nil); !errors.Is(err, prt.ErrClosed) {
		t.Fatalf("CreateMachine after Drain = %v, want ErrClosed", err)
	}
	if errs := rt.Errors(); len(errs) != 0 {
		t.Fatalf("machine errors: %v", errs)
	}
}

// Stop, Send, CreateMachine, Quiesce, and Metrics racing one another must
// be safe (run under -race) and must terminate.
func TestConcurrentStopSendQuiesce(t *testing.T) {
	prog := erased(t, "gate", gateProgram)
	rt, err := prt.New(prog, prt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	id, err := rt.CreateMachine("G", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stopped := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stopped:
					return
				default:
				}
				switch w {
				case 0:
					rt.Send(id, "Inc", core.IntVal(int64(i)))
				case 1:
					rt.Quiesce(time.Millisecond)
				case 2:
					rt.CreateMachine("G", nil, nil)
				case 3:
					rt.Metrics()
					rt.Machines()
				}
			}
		}(w)
	}
	time.Sleep(20 * time.Millisecond)
	done := make(chan struct{})
	go func() { rt.Stop(); rt.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Stop did not terminate under concurrent load")
	}
	close(stopped)
	wg.Wait()
}

// Seeded injection is reproducible: the same seed yields the same fault
// sequence, and the drop accounting closes (every send is delivered,
// deduped, or dropped by injection).
func TestSeededInjectionDeterminism(t *testing.T) {
	prog := erased(t, "gate", gateProgram)
	run := func() prt.Metrics {
		rt, err := prt.New(prog, prt.Options{
			Inject: &prt.Inject{Seed: 42, Drop: 0.5},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Stop()
		id, err := rt.CreateMachine("G", nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			if err := rt.Send(id, "Inc", core.IntVal(int64(i))); err != nil {
				t.Fatal(err)
			}
		}
		if !rt.Quiesce(5 * time.Second) {
			t.Fatal("no quiescence")
		}
		return rt.Metrics()
	}
	a, b := run(), run()
	if a.InjectedDrops == 0 {
		t.Fatal("Drop=0.5 over 100 sends injected no drops")
	}
	if a.InjectedDrops != b.InjectedDrops {
		t.Fatalf("same seed, different drops: %d vs %d", a.InjectedDrops, b.InjectedDrops)
	}
	if a.EventsDelivered+a.EventsDeduped+a.InjectedDrops != 100 {
		t.Fatalf("accounting leak: delivered %d + deduped %d + dropped %d != 100",
			a.EventsDelivered, a.EventsDeduped, a.InjectedDrops)
	}
}

// An injected duplicate arrives asynchronously, so it can defeat inbox
// dedup — the behavior the ⊕ append exists to suppress, and the chaos
// checker's dup fault explores exhaustively.
func TestInjectedDuplicateDelivery(t *testing.T) {
	prog := erased(t, "gate", gateProgram)
	rt, err := prt.New(prog, prt.Options{
		Inject: &prt.Inject{Seed: 7, Dup: 1.0},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	id, err := rt.CreateMachine("G", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Send(id, "Inc", core.IntVal(1)); err != nil {
		t.Fatal(err)
	}
	// Quiesce waits out the pending injected redelivery too.
	if !rt.Quiesce(5 * time.Second) {
		t.Fatal("no quiescence")
	}
	m := rt.Metrics()
	if m.InjectedDups != 1 {
		t.Fatalf("injected dups = %d, want 1", m.InjectedDups)
	}
	if m.EventsDelivered+m.EventsDeduped != 2 {
		t.Fatalf("delivered %d + deduped %d != 2 (original + duplicate)",
			m.EventsDelivered, m.EventsDeduped)
	}
}

// OnError invocations and the Errors() log observe the same order: each
// error is appended to the log before its callback fires.
func TestOnErrorOrderMatchesLog(t *testing.T) {
	prog := erased(t, "panic", panicProgram)
	var mu sync.Mutex
	var seen []*core.Err
	rt, err := prt.New(prog, prt.Options{
		Foreign: explodingForeign(),
		OnError: func(e *core.Err) {
			mu.Lock()
			seen = append(seen, e)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	for i := 0; i < 4; i++ {
		id, err := rt.CreateMachine("M", nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.Send(id, "Boom", core.Null); err != nil {
			t.Fatal(err)
		}
	}
	if !rt.Quiesce(5 * time.Second) {
		t.Fatal("no quiescence")
	}
	logged := rt.Errors()
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != len(logged) || len(seen) != 4 {
		t.Fatalf("OnError saw %d errors, log has %d, want 4", len(seen), len(logged))
	}
	for i := range seen {
		if seen[i] != logged[i] {
			t.Fatalf("order diverges at %d: callback %v, log %v", i, seen[i], logged[i])
		}
	}
}

package runtime_test

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pgo/internal/compile"
	"pgo/internal/core"
	"pgo/internal/ir"
	"pgo/internal/psamples"
	prt "pgo/internal/runtime"
)

func erased(t testing.TB, name, src string) *ir.Program {
	t.Helper()
	prog, diags, err := compile.Erased(name, src)
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, diags.String())
	}
	return prog
}

func TestRejectUnerasedGhosts(t *testing.T) {
	prog, diags, err := compile.Source("elevator", psamples.Elevator)
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, diags.String())
	}
	if _, err := prt.New(prog, prt.Options{}); err == nil {
		t.Fatal("runtime accepted a program with live ghost machines")
	}
}

func TestPingPongConcurrent(t *testing.T) {
	prog := erased(t, "pingpong", psamples.PingPong)
	rt, err := prt.New(prog, prt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	if _, err := rt.CreateMachine("Pinger", nil, nil); err != nil {
		t.Fatal(err)
	}
	if !rt.Quiesce(5 * time.Second) {
		t.Fatal("no quiescence")
	}
	if errs := rt.Errors(); len(errs) != 0 {
		t.Fatalf("machine errors: %v", errs)
	}
}

func TestErasedElevatorDrivenByHost(t *testing.T) {
	prog := erased(t, "elevator", psamples.Elevator)
	rt, err := prt.New(prog, prt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	id, err := rt.CreateMachine("Elevator", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rt.Quiesce(5 * time.Second) {
		t.Fatal("no quiescence after creation")
	}
	if st, ok := rt.StateName(id); !ok || st != "Closed" {
		t.Fatalf("state = %q (%v), want Closed", st, ok)
	}

	// Host plays the role of the interface code, translating OS callbacks
	// into events.
	steps := []struct {
		event string
		state string
	}{
		{"OpenDoor", "Opening"},
		{"DoorOpened", "Opened"},
		{"TimerFired", "OkToClose"},
		{"TimerFired", "Closing"},
		{"DoorClosed", "Closed"},
	}
	for _, s := range steps {
		if err := rt.Send(id, s.event, core.Null); err != nil {
			t.Fatal(err)
		}
		if !rt.Quiesce(5 * time.Second) {
			t.Fatalf("no quiescence after %s", s.event)
		}
		if st, ok := rt.StateName(id); !ok || st != s.state {
			t.Fatalf("after %s: state = %q (%v), want %s", s.event, st, ok, s.state)
		}
	}
	if errs := rt.Errors(); len(errs) != 0 {
		t.Fatalf("machine errors: %v", errs)
	}
}

const contextProgram = `
event Poke; event unit;
machine M {
  foreign bump(): void;
  state S {
    entry { skip; }
    on Poke do DoBump;
  }
  action DoBump { bump(); }
}
main M();
`

// Foreign functions receive the per-machine context pointer (SMGetContext).
func TestForeignAndContext(t *testing.T) {
	prog := erased(t, "context", contextProgram)
	var calls atomic.Int64
	foreign := core.ForeignMap{
		"M.bump": func(ctx any, args []core.Value) (core.Value, error) {
			ctr, ok := ctx.(*atomic.Int64)
			if !ok {
				return core.Null, errors.New("missing context")
			}
			ctr.Add(1)
			return core.Null, nil
		},
	}
	rt, err := prt.New(prog, prt.Options{Foreign: foreign})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	id, err := rt.CreateMachine("M", nil, &calls)
	if err != nil {
		t.Fatal(err)
	}
	if got := rt.Context(id); got != &calls {
		t.Fatal("Context returned wrong pointer")
	}
	for i := 0; i < 3; i++ {
		if err := rt.Send(id, "Poke", core.IntVal(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if !rt.Quiesce(5 * time.Second) {
		t.Fatal("no quiescence")
	}
	if calls.Load() != 3 {
		t.Fatalf("bump called %d times, want 3", calls.Load())
	}
}

func TestMissingForeignReported(t *testing.T) {
	prog := erased(t, "context", contextProgram)
	var reported atomic.Int64
	rt, err := prt.New(prog, prt.Options{
		OnError: func(e *core.Err) { reported.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	id, _ := rt.CreateMachine("M", nil, nil)
	rt.Send(id, "Poke", core.Null)
	if !rt.Quiesce(5 * time.Second) {
		t.Fatal("no quiescence")
	}
	errs := rt.Errors()
	if len(errs) != 1 || errs[0].Kind != core.ErrForeignMissing {
		t.Fatalf("errors = %v, want one ErrForeignMissing", errs)
	}
	if reported.Load() != 1 {
		t.Fatal("OnError not invoked")
	}
}

func TestSendToDeletedMachine(t *testing.T) {
	prog := erased(t, "pingpong", psamples.PingPong)
	rt, err := prt.New(prog, prt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	id, _ := rt.CreateMachine("Pinger", nil, nil)
	if !rt.Quiesce(5 * time.Second) {
		t.Fatal("no quiescence")
	}
	// Both machines deleted themselves; a host send must fail.
	if err := rt.Send(id, "Pong", core.Null); err == nil {
		t.Fatal("send to deleted machine succeeded")
	}
}

const counterProgram = `
event Inc(int); event unit;
machine Counter {
  var total: int;
  foreign report(int): void;
  state S {
    entry { total = 0; }
    on Inc do Add;
  }
  action Add {
    total = total + arg;
    report(total);
  }
}
main Counter();
`

// Many concurrent senders with distinct payloads: every event is delivered
// exactly once and handlers run run-to-completion (no torn updates).
func TestConcurrentSenders(t *testing.T) {
	prog := erased(t, "counter", counterProgram)
	var last atomic.Int64
	foreign := core.ForeignMap{
		"Counter.report": func(ctx any, args []core.Value) (core.Value, error) {
			if n, ok := args[0].AsInt(); ok {
				last.Store(n)
			}
			return core.Null, nil
		},
	}
	rt, err := prt.New(prog, prt.Options{Foreign: foreign})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	id, _ := rt.CreateMachine("Counter", nil, nil)

	const senders = 8
	const perSender = 50
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				// Distinct payloads so ⊕ dedup never drops an event.
				payload := int64(s*perSender+i)*1000 + 1
				if err := rt.Send(id, "Inc", core.IntVal(payload)); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	if !rt.Quiesce(10 * time.Second) {
		t.Fatal("no quiescence")
	}
	var want int64
	for s := 0; s < senders; s++ {
		for i := 0; i < perSender; i++ {
			want += int64(s*perSender+i)*1000 + 1
		}
	}
	if last.Load() != want {
		t.Fatalf("total = %d, want %d", last.Load(), want)
	}
	if errs := rt.Errors(); len(errs) != 0 {
		t.Fatalf("machine errors: %v", errs)
	}
}

func TestStopIsIdempotentAndTerminates(t *testing.T) {
	prog := erased(t, "pingpong", psamples.PingPong)
	rt, err := prt.New(prog, prt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rt.CreateMachine("Ponger", nil, nil)
	done := make(chan struct{})
	go func() { rt.Stop(); rt.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop did not terminate")
	}
}

func TestManyMachines(t *testing.T) {
	prog := erased(t, "pingpong", psamples.PingPong)
	rt, err := prt.New(prog, prt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	for i := 0; i < 100; i++ {
		if _, err := rt.CreateMachine("Pinger", nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	if !rt.Quiesce(30 * time.Second) {
		t.Fatal("no quiescence with 100 ping-pong pairs")
	}
	if errs := rt.Errors(); len(errs) != 0 {
		t.Fatalf("machine errors (first): %v", errs[0])
	}
}

func ExampleRuntime() {
	prog, _, err := compile.Erased("pingpong", psamples.PingPong)
	if err != nil {
		panic(err)
	}
	rt, err := prt.New(prog, prt.Options{})
	if err != nil {
		panic(err)
	}
	defer rt.Stop()
	rt.CreateMachine("Pinger", nil, nil)
	rt.Quiesce(time.Second)
	fmt.Println("errors:", len(rt.Errors()))
	// Output: errors: 0
}

func TestMetricsAndMachineListing(t *testing.T) {
	prog := erased(t, "elevator", psamples.Elevator)
	rt, err := prt.New(prog, prt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	id, _ := rt.CreateMachine("Elevator", nil, nil)
	rt.Send(id, "OpenDoor", core.Null)
	rt.Send(id, "OpenDoor", core.Null) // dedup candidate while in flight
	if !rt.Quiesce(5 * time.Second) {
		t.Fatal("no quiescence")
	}
	m := rt.Metrics()
	if m.MachinesCreated != 1 {
		t.Fatalf("created = %d, want 1", m.MachinesCreated)
	}
	if m.EventsDelivered < 1 {
		t.Fatalf("delivered = %d, want >= 1", m.EventsDelivered)
	}
	if m.EventsProcessed < 1 {
		t.Fatalf("processed = %d, want >= 1", m.EventsProcessed)
	}
	if m.EventsDelivered+m.EventsDeduped != 2 {
		t.Fatalf("delivered %d + deduped %d != 2 sends", m.EventsDelivered, m.EventsDeduped)
	}

	machines := rt.Machines()
	if len(machines) != 1 {
		t.Fatalf("machines = %d, want 1", len(machines))
	}
	if machines[0].Type != "Elevator" || !machines[0].Idle || machines[0].State != "Opening" {
		t.Fatalf("listing wrong: %+v", machines[0])
	}
}

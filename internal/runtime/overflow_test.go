package runtime_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"pgo/internal/core"
	prt "pgo/internal/runtime"
)

// Tests for the drop-oldest and block overflow policies and for the
// coherence of the Metrics snapshot, pinning each policy's
// EventsOverflowed / EventsBlocked accounting.

// With drop-oldest, a full inbox evicts its head to admit the newest event:
// each eviction counts in EventsOverflowed, the arriving event still counts
// in EventsDelivered, and only the surviving tail is processed.
func TestBoundedInboxDropOldest(t *testing.T) {
	prog := erased(t, "gate", gateProgram)
	entered := make(chan struct{})
	release := make(chan struct{})
	rt, err := prt.New(prog, prt.Options{
		Foreign:  gate(entered, release),
		MaxInbox: 2,
		Overflow: prt.OverflowDropOldest,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	id, err := rt.CreateMachine("G", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Send(id, "Go", core.Null); err != nil {
		t.Fatal(err)
	}
	<-entered // the machine is stuck in the handler; its inbox backs up

	for i := 0; i < 5; i++ {
		if err := rt.Send(id, "Inc", core.IntVal(int64(i))); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	close(release)
	if !rt.Quiesce(5 * time.Second) {
		t.Fatal("no quiescence")
	}
	m := rt.Metrics()
	// 5 sends into a bound of 2: Inc0..Inc2 evicted in arrival order,
	// Inc3/Inc4 survive. Every arriving event was admitted (delivered),
	// every eviction counted.
	if m.EventsOverflowed != 3 {
		t.Fatalf("overflowed = %d, want 3 (5 sends, inbox bound 2, oldest evicted)", m.EventsOverflowed)
	}
	if m.EventsDelivered != 6 {
		t.Fatalf("delivered = %d, want 6 (Go + 5 admitted Incs)", m.EventsDelivered)
	}
	if m.EventsProcessed != 3 {
		t.Fatalf("processed = %d, want 3 (Go + the 2 surviving Incs)", m.EventsProcessed)
	}
	if m.EventsBlocked != 0 {
		t.Fatalf("blocked = %d, want 0 under drop-oldest", m.EventsBlocked)
	}
	if errs := rt.Errors(); len(errs) != 0 {
		t.Fatalf("drop-oldest recorded errors: %v", errs)
	}
}

// With block, a sender hitting a full inbox parks until the machine drains:
// the wait counts once in EventsBlocked, nothing is overflowed, and the
// event is eventually delivered and processed.
func TestBoundedInboxBlockDeliversAfterDrain(t *testing.T) {
	prog := erased(t, "gate", gateProgram)
	entered := make(chan struct{})
	release := make(chan struct{})
	rt, err := prt.New(prog, prt.Options{
		Foreign:  gate(entered, release),
		MaxInbox: 1,
		Overflow: prt.OverflowBlock,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	id, err := rt.CreateMachine("G", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Send(id, "Go", core.Null); err != nil {
		t.Fatal(err)
	}
	<-entered
	if err := rt.Send(id, "Inc", core.IntVal(0)); err != nil { // fills the inbox
		t.Fatal(err)
	}

	sent := make(chan error, 1)
	go func() { sent <- rt.Send(id, "Inc", core.IntVal(1)) }()

	// The second send must block, not return: wait until the accounting
	// shows the parked sender, then confirm Send has not completed.
	deadline := time.Now().Add(5 * time.Second)
	for rt.Metrics().EventsBlocked == 0 {
		if time.Now().After(deadline) {
			t.Fatal("sender never blocked on the full inbox")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case err := <-sent:
		t.Fatalf("blocked send returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(release) // the machine drains; the blocked sender gets its slot
	if err := <-sent; err != nil {
		t.Fatalf("blocked send failed after drain: %v", err)
	}
	if !rt.Quiesce(5 * time.Second) {
		t.Fatal("no quiescence")
	}
	m := rt.Metrics()
	if m.EventsBlocked != 1 {
		t.Fatalf("blocked = %d, want 1", m.EventsBlocked)
	}
	if m.EventsOverflowed != 0 {
		t.Fatalf("overflowed = %d, want 0 (block never drops)", m.EventsOverflowed)
	}
	if m.EventsDelivered != 3 || m.EventsProcessed != 3 {
		t.Fatalf("delivered/processed = %d/%d, want 3/3 (Go, Inc0, Inc1)", m.EventsDelivered, m.EventsProcessed)
	}
}

// Stop abandons a blocked sender: the send returns (the event is dropped
// and counted in EventsOverflowed) instead of deadlocking shutdown.
func TestBoundedInboxBlockAbandonedByStop(t *testing.T) {
	prog := erased(t, "gate", gateProgram)
	entered := make(chan struct{})
	release := make(chan struct{})
	rt, err := prt.New(prog, prt.Options{
		Foreign:  gate(entered, release),
		MaxInbox: 1,
		Overflow: prt.OverflowBlock,
	})
	if err != nil {
		t.Fatal(err)
	}
	id, err := rt.CreateMachine("G", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Send(id, "Go", core.Null); err != nil {
		t.Fatal(err)
	}
	<-entered
	if err := rt.Send(id, "Inc", core.IntVal(0)); err != nil {
		t.Fatal(err)
	}
	sent := make(chan error, 1)
	go func() { sent <- rt.Send(id, "Inc", core.IntVal(1)) }()
	deadline := time.Now().Add(5 * time.Second)
	for rt.Metrics().EventsBlocked == 0 {
		if time.Now().After(deadline) {
			t.Fatal("sender never blocked on the full inbox")
		}
		time.Sleep(time.Millisecond)
	}

	stopped := make(chan struct{})
	go func() { rt.Stop(); close(stopped) }()
	// The blocked sender must be released by Stop even while the machine
	// is still wedged in its handler.
	select {
	case <-sent:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop did not release the blocked sender")
	}
	close(release) // let the machine goroutine exit so Stop can finish
	select {
	case <-stopped:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop did not terminate")
	}
	m := rt.Metrics()
	if m.EventsBlocked != 1 {
		t.Fatalf("blocked = %d, want 1", m.EventsBlocked)
	}
	if m.EventsOverflowed != 1 {
		t.Fatalf("overflowed = %d, want 1 (the abandoned event)", m.EventsOverflowed)
	}
}

// Metrics must be a coherent snapshot, not a field-by-field torn read: in
// any observed snapshot every processed event was delivered first, so
// EventsProcessed can never exceed EventsDelivered even while senders and
// the machine race the reader.
func TestMetricsSnapshotCoherence(t *testing.T) {
	prog := erased(t, "gate", gateProgram)
	rt, err := prt.New(prog, prt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	id, err := rt.CreateMachine("G", nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				rt.Send(id, "Inc", core.IntVal(int64(w*1_000_000+i)))
			}
		}(w)
	}
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		m := rt.Metrics()
		if m.EventsProcessed > m.EventsDelivered {
			t.Fatalf("torn snapshot: processed %d > delivered %d", m.EventsProcessed, m.EventsDelivered)
		}
	}
	close(stop)
	wg.Wait()
}

// Drain racing a storm of concurrent sends on a full bounded inbox (block
// policy — the hardest case) must terminate, and every send issued after
// the drain began reports ErrClosed.
func TestDrainRacingSendsOnFullBoundedInbox(t *testing.T) {
	prog := erased(t, "gate", gateProgram)
	entered := make(chan struct{})
	release := make(chan struct{})
	rt, err := prt.New(prog, prt.Options{
		Foreign:  gate(entered, release),
		MaxInbox: 2,
		Overflow: prt.OverflowBlock,
	})
	if err != nil {
		t.Fatal(err)
	}
	id, err := rt.CreateMachine("G", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Send(id, "Go", core.Null); err != nil {
		t.Fatal(err)
	}
	<-entered // wedge the machine so the inbox fills and senders block

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				err := rt.Send(id, "Inc", core.IntVal(int64(w*1_000_000+i)))
				if errors.Is(err, prt.ErrClosed) {
					return
				}
			}
		}(w)
	}

	time.Sleep(20 * time.Millisecond) // let the inbox fill and senders park
	drained := make(chan bool, 1)
	go func() { drained <- rt.Drain(10 * time.Second) }()
	time.Sleep(10 * time.Millisecond)
	close(release) // un-wedge the machine so in-flight work can finish

	select {
	case ok := <-drained:
		if !ok {
			t.Fatal("Drain timed out instead of reaching quiescence")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Drain deadlocked on the full bounded inbox")
	}
	wg.Wait() // every sender saw ErrClosed

	if err := rt.Send(id, "Inc", core.Null); !errors.Is(err, prt.ErrClosed) {
		t.Fatalf("post-drain Send = %v, want ErrClosed", err)
	}
}

// A drain whose deadline expires while the machine is wedged and senders
// are blocked must still return (false) — Stop breaks the blocked waits —
// rather than deadlock.
func TestDrainTimeoutNeverDeadlocks(t *testing.T) {
	prog := erased(t, "gate", gateProgram)
	entered := make(chan struct{})
	release := make(chan struct{})
	rt, err := prt.New(prog, prt.Options{
		Foreign:  gate(entered, release),
		MaxInbox: 1,
		Overflow: prt.OverflowBlock,
	})
	if err != nil {
		t.Fatal(err)
	}
	id, err := rt.CreateMachine("G", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Send(id, "Go", core.Null); err != nil {
		t.Fatal(err)
	}
	<-entered
	if err := rt.Send(id, "Inc", core.IntVal(0)); err != nil {
		t.Fatal(err)
	}
	sent := make(chan error, 1)
	go func() { sent <- rt.Send(id, "Inc", core.IntVal(1)) }()
	deadline := time.Now().Add(5 * time.Second)
	for rt.Metrics().EventsBlocked == 0 {
		if time.Now().After(deadline) {
			t.Fatal("sender never blocked")
		}
		time.Sleep(time.Millisecond)
	}

	drained := make(chan bool, 1)
	go func() { drained <- rt.Drain(50 * time.Millisecond) }()
	// Drain's deadline fires with the machine still wedged; its Stop must
	// release the blocked sender. The machine itself is stuck in foreign
	// code until we release the gate, so unblock it right after.
	select {
	case <-sent:
	case <-time.After(5 * time.Second):
		t.Fatal("expired Drain did not release the blocked sender")
	}
	close(release)
	select {
	case ok := <-drained:
		if ok {
			t.Fatal("Drain reported quiescence despite the wedged machine")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Drain deadlocked after its deadline expired")
	}
}

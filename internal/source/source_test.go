package source_test

import (
	"strings"
	"testing"

	"pgo/internal/source"
)

func TestPosOrdering(t *testing.T) {
	a := source.Pos{Line: 1, Col: 5}
	b := source.Pos{Line: 1, Col: 9}
	c := source.Pos{Line: 2, Col: 1}
	if !a.Before(b) || !b.Before(c) || c.Before(a) || a.Before(a) {
		t.Fatal("Before ordering wrong")
	}
}

func TestPosValidity(t *testing.T) {
	if (source.Pos{}).IsValid() {
		t.Fatal("zero Pos should be invalid")
	}
	if (source.Pos{}).String() != "-" {
		t.Fatal("invalid Pos should print -")
	}
	if got := (source.Pos{Line: 3, Col: 7}).String(); got != "3:7" {
		t.Fatalf("String = %q", got)
	}
}

func TestDiagListSortingAndSeverity(t *testing.T) {
	var l source.DiagList
	l.Warningf(source.Span{Start: source.Pos{Line: 2, Col: 1}}, "later warning")
	l.Errorf(source.Span{Start: source.Pos{Line: 1, Col: 1}}, "early error")
	l.Notef(source.Span{Start: source.Pos{Line: 1, Col: 1}}, "early note")
	all := l.All()
	if len(all) != 3 {
		t.Fatalf("len = %d", len(all))
	}
	if all[0].Severity != source.Error {
		t.Fatalf("first should be the early error, got %v", all[0])
	}
	if all[2].Message != "later warning" {
		t.Fatalf("last = %v", all[2])
	}
	if !l.HasErrors() || len(l.Errors()) != 1 {
		t.Fatal("error accounting wrong")
	}
}

func TestDiagListErr(t *testing.T) {
	var l source.DiagList
	if l.Err() != nil {
		t.Fatal("empty list should have nil Err")
	}
	l.Warningf(source.Span{}, "just a warning")
	if l.Err() != nil {
		t.Fatal("warnings only should have nil Err")
	}
	l.Errorf(source.Span{Start: source.Pos{Line: 1, Col: 1}}, "boom")
	l.Errorf(source.Span{Start: source.Pos{Line: 2, Col: 1}}, "boom2")
	err := l.Err()
	if err == nil || !strings.Contains(err.Error(), "boom") || !strings.Contains(err.Error(), "1 more") {
		t.Fatalf("Err = %v", err)
	}
}

func TestMerge(t *testing.T) {
	var a, b source.DiagList
	a.Errorf(source.Span{}, "one")
	b.Warningf(source.Span{}, "two")
	a.Merge(&b)
	if a.Len() != 2 {
		t.Fatalf("merged len = %d", a.Len())
	}
}

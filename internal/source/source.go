// Package source provides source positions, spans, and diagnostics shared by
// every stage of the P compiler and verifier.
package source

import (
	"fmt"
	"sort"
	"strings"
)

// Pos is a position in a source file. Line and Col are 1-based; a zero Pos
// (Line == 0) means "no position".
type Pos struct {
	Line int
	Col  int
}

// IsValid reports whether p refers to an actual source location.
func (p Pos) IsValid() bool { return p.Line > 0 }

// Before reports whether p occurs strictly before q.
func (p Pos) Before(q Pos) bool {
	return p.Line < q.Line || (p.Line == q.Line && p.Col < q.Col)
}

func (p Pos) String() string {
	if !p.IsValid() {
		return "-"
	}
	return fmt.Sprintf("%d:%d", p.Line, p.Col)
}

// Span is a half-open region [Start, End) of a source file.
type Span struct {
	Start Pos
	End   Pos
}

// IsValid reports whether the span has a valid start position.
func (s Span) IsValid() bool { return s.Start.IsValid() }

func (s Span) String() string { return s.Start.String() }

// Severity classifies a diagnostic.
type Severity int

const (
	// Error diagnostics prevent later compilation stages from running.
	Error Severity = iota
	// Warning diagnostics do not stop compilation.
	Warning
	// Note diagnostics carry supplementary information.
	Note
)

func (s Severity) String() string {
	switch s {
	case Error:
		return "error"
	case Warning:
		return "warning"
	case Note:
		return "note"
	default:
		return fmt.Sprintf("severity(%d)", int(s))
	}
}

// Diagnostic is a single message attached to a source location. Code, when
// non-empty, is a stable machine-readable identifier ("P004") shared with
// the plint static-analysis tool; codes never change meaning across
// releases, so build systems may filter or suppress on them.
type Diagnostic struct {
	Severity Severity
	Span     Span
	Message  string
	Code     string
}

func (d Diagnostic) String() string {
	sev := d.Severity.String()
	if d.Code != "" {
		sev = fmt.Sprintf("%s[%s]", sev, d.Code)
	}
	if d.Span.IsValid() {
		return fmt.Sprintf("%s: %s: %s", d.Span.Start, sev, d.Message)
	}
	return fmt.Sprintf("%s: %s", sev, d.Message)
}

// DiagList accumulates diagnostics. The zero value is ready to use.
type DiagList struct {
	diags []Diagnostic
}

// Errorf appends an error diagnostic at span.
func (l *DiagList) Errorf(span Span, format string, args ...any) {
	l.diags = append(l.diags, Diagnostic{Severity: Error, Span: span, Message: fmt.Sprintf(format, args...)})
}

// Warningf appends a warning diagnostic at span.
func (l *DiagList) Warningf(span Span, format string, args ...any) {
	l.diags = append(l.diags, Diagnostic{Severity: Warning, Span: span, Message: fmt.Sprintf(format, args...)})
}

// Notef appends a note diagnostic at span.
func (l *DiagList) Notef(span Span, format string, args ...any) {
	l.diags = append(l.diags, Diagnostic{Severity: Note, Span: span, Message: fmt.Sprintf(format, args...)})
}

// Codef appends a diagnostic carrying a stable code (e.g. "P004").
func (l *DiagList) Codef(sev Severity, code string, span Span, format string, args ...any) {
	l.diags = append(l.diags, Diagnostic{Severity: sev, Span: span, Message: fmt.Sprintf(format, args...), Code: code})
}

// Add appends a prebuilt diagnostic.
func (l *DiagList) Add(d Diagnostic) { l.diags = append(l.diags, d) }

// Merge appends all diagnostics from other.
func (l *DiagList) Merge(other *DiagList) {
	l.diags = append(l.diags, other.diags...)
}

// HasWarnings reports whether any diagnostic has severity Warning (used by
// the tools' -Werror mode).
func (l *DiagList) HasWarnings() bool {
	for _, d := range l.diags {
		if d.Severity == Warning {
			return true
		}
	}
	return false
}

// HasErrors reports whether any diagnostic has severity Error.
func (l *DiagList) HasErrors() bool {
	for _, d := range l.diags {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// Len returns the number of diagnostics.
func (l *DiagList) Len() int { return len(l.diags) }

// All returns the diagnostics sorted by position, errors first within a
// position. The returned slice is a copy.
func (l *DiagList) All() []Diagnostic {
	out := make([]Diagnostic, len(l.diags))
	copy(out, l.diags)
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i].Span.Start, out[j].Span.Start
		if a != b {
			return a.Before(b)
		}
		return out[i].Severity < out[j].Severity
	})
	return out
}

// Errors returns only the error-severity diagnostics, sorted by position.
func (l *DiagList) Errors() []Diagnostic {
	var out []Diagnostic
	for _, d := range l.All() {
		if d.Severity == Error {
			out = append(out, d)
		}
	}
	return out
}

// String renders every diagnostic on its own line.
func (l *DiagList) String() string {
	var b strings.Builder
	for _, d := range l.All() {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Err returns an error summarizing the list if it contains errors, else nil.
func (l *DiagList) Err() error {
	if !l.HasErrors() {
		return nil
	}
	errs := l.Errors()
	if len(errs) == 1 {
		return fmt.Errorf("%s", errs[0])
	}
	return fmt.Errorf("%s (and %d more errors)", errs[0], len(errs)-1)
}

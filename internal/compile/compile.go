// Package compile ties the frontend pipeline together: parse → semantic
// analysis → lowering, with optional ghost erasure. It is the entry point
// used by the command-line tools, the model checker, and the tests.
package compile

import (
	"fmt"

	"pgo/internal/ir"
	"pgo/internal/parser"
	"pgo/internal/source"
	"pgo/internal/types"
)

// Result bundles the artifacts of a successful compilation.
type Result struct {
	AST     *ir.Program // lowered program with ghosts intact (for verification)
	Checked *types.Checked
	Diags   *source.DiagList
}

// Source compiles P source text into a lowered program. The returned
// DiagList always carries all diagnostics; on error the program is nil.
func Source(name, src string) (*ir.Program, *source.DiagList, error) {
	var diags source.DiagList
	prog := parser.Parse(src, &diags)
	if diags.HasErrors() {
		return nil, &diags, fmt.Errorf("%s: parse failed: %w", name, diags.Err())
	}
	chk := types.Check(prog, &diags)
	if diags.HasErrors() {
		return nil, &diags, fmt.Errorf("%s: type check failed: %w", name, diags.Err())
	}
	lowered, err := ir.Lower(name, chk)
	if err != nil {
		return nil, &diags, fmt.Errorf("%s: lowering failed: %w", name, err)
	}
	return lowered, &diags, nil
}

// MustSource compiles src and panics on failure; intended for embedded
// sample programs whose validity is guaranteed by the test suite.
func MustSource(name, src string) *ir.Program {
	prog, diags, err := Source(name, src)
	if err != nil {
		panic(fmt.Sprintf("compile %s: %v\n%s", name, err, diags.String()))
	}
	return prog
}

// Erased compiles src and applies ghost erasure, producing the executable
// program (the analog of the paper's generated driver code).
func Erased(name, src string) (*ir.Program, *source.DiagList, error) {
	prog, diags, err := Source(name, src)
	if err != nil {
		return nil, diags, err
	}
	return ir.Erase(prog), diags, nil
}

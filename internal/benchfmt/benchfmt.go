// Package benchfmt defines the pbench JSON report format shared by the
// benchmark harness (cmd/pbench), the serving-path load harness (cmd/pload),
// and the CI regression gate. The committed BENCH_explore.json baseline is a
// Report; every producer emits the same self-describing layout so reports
// from different tools diff and gate uniformly.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"
)

// SchemaVersion identifies the report layout. Bump on incompatible change.
const SchemaVersion = "pbench/4"

// SchemaDoc is the embedded header documenting every field of the report;
// it is emitted first so a committed JSON file is self-describing.
var SchemaDoc = []string{
	"schema: report layout version (pbench/4: adds the SERVE serving-path entries and their requests/shed/p50_ns/p99_ns fields; pbench/3: adds per-entry cpus/workers and the depth-mode POR twins POR/chaos-*, POR/live-*; pbench/2: explorer fields always present, zero for micros; adds SPILL entries and their store fields; ABS entries reuse the explorer fields for the coverability search)",
	"go, goos, goarch, cpus: toolchain and host the numbers were taken on",
	"generated: RFC3339 timestamp of the run",
	"entries[].name: unique benchmark id, experiment/sample/parameters",
	"entries[].experiment: E2 (Fig 7 delay sweep), E4 (Fig 8 USB), CORPUS (distributed-protocols corpus delay sweep: star/deep/serving/symmetric state-space shapes), POR (reduction on/off twin; chaos-*/live-* samples run depth-bounded with faults / a liveness graph), SPILL (disk-backed visited store), ABS (counter-abstraction coverability; states = markings), SERVE (sharded actor-server under load; states = events processed by the shard loops), FP (fingerprint micro), CLONE (global clone micro)",
	"entries[].sample: embedded P sample the entry compiles",
	"entries[].mode: exploration mode for explorer entries; shed policy for SERVE entries",
	"entries[].bound: delay or depth budget for explorer entries",
	"entries[].cpus: runtime.NumCPU() on the measuring host (explorer entries)",
	"entries[].workers: goroutines the search actually ran with, 1 for serial explorers; shard count for SERVE entries",
	"entries[].max_states: distinct-state cap for explorer entries (0 = none hit)",
	"entries[].iterations: measured iterations (ops for micros are batched; ns_per_op is per single op)",
	"entries[].ns_per_op: wall nanoseconds per operation (per request for SERVE entries)",
	"entries[].allocs_per_op: heap allocations per operation",
	"entries[].bytes_per_op: heap bytes per operation",
	"entries[].states: distinct global states discovered (explorer entries); events processed (SERVE entries)",
	"entries[].transitions: macro steps executed (explorer entries)",
	"entries[].states_per_sec: states / (ns_per_op * 1e-9) (explorer entries); events processed per second (SERVE entries)",
	"entries[].por: partial-order reduction was enabled (POR experiment entries)",
	"entries[].reduced_states: search nodes expanded with a singleton ample set (POR entries)",
	"entries[].spilled_entries: visited-store entries spilled to chunk files (SPILL entries)",
	"entries[].chunks: chunk files written by the tiered visited store (SPILL entries)",
	"entries[].disk_bytes: total chunk-file bytes on disk (SPILL entries)",
	"entries[].requests: ingress requests issued (SERVE entries)",
	"entries[].shed: ingress requests rejected by admission control with 429 (SERVE entries)",
	"entries[].p50_ns / entries[].p99_ns: request latency percentiles (SERVE entries)",
}

// Report is one benchmark run: host provenance plus the measured entries.
type Report struct {
	Schema    string   `json:"schema"`
	SchemaDoc []string `json:"schema_doc"`
	Go        string   `json:"go"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	CPUs      int      `json:"cpus"`
	Generated string   `json:"generated"`
	Entries   []Entry  `json:"entries"`
}

// Entry is one benchmark row. Every field is always emitted — no omitempty —
// so consumers (and the regression gate) can tell "measured as zero" from
// "absent" and diff rows across reports without guessing at defaults; micro
// entries carry zeros in the explorer fields, explorer entries carry zeros
// in the serving fields.
type Entry struct {
	Name           string  `json:"name"`
	Experiment     string  `json:"experiment"`
	Sample         string  `json:"sample"`
	Mode           string  `json:"mode"`
	Bound          int     `json:"bound"`
	CPUs           int     `json:"cpus"`
	Workers        int     `json:"workers"`
	MaxStates      int     `json:"max_states"`
	Iterations     int     `json:"iterations"`
	NsPerOp        int64   `json:"ns_per_op"`
	AllocsPerOp    int64   `json:"allocs_per_op"`
	BytesPerOp     int64   `json:"bytes_per_op"`
	States         int     `json:"states"`
	Transitions    int     `json:"transitions"`
	StatesPerSec   float64 `json:"states_per_sec"`
	POR            bool    `json:"por"`
	ReducedStates  int     `json:"reduced_states"`
	SpilledEntries int     `json:"spilled_entries"`
	Chunks         int     `json:"chunks"`
	DiskBytes      int64   `json:"disk_bytes"`
	Requests       int     `json:"requests"`
	Shed           int     `json:"shed"`
	P50Ns          int64   `json:"p50_ns"`
	P99Ns          int64   `json:"p99_ns"`
}

// NewReport returns a report shell stamped with the current schema, host,
// and time.
func NewReport() Report {
	return Report{
		Schema:    SchemaVersion,
		SchemaDoc: SchemaDoc,
		Go:        runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Generated: time.Now().UTC().Format(time.RFC3339),
	}
}

// Write encodes the report as indented JSON.
func (r *Report) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to path, or to stdout when path is empty.
func (r *Report) WriteFile(path string) error {
	if path == "" {
		return r.Write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile parses a report from path. Older schema versions parse fine —
// unknown fields are zero — so the regression gate can diff a new run
// against an older committed baseline.
func ReadFile(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return &r, nil
}

package psamples

// ShardKV returns a P implementation of a sharded key-value store with key
// rebalancing and a read-your-writes client session — the serving-shaped
// corpus protocol (it also backs the pserve/pload `shardkv` scenario). A
// router owns the key→shard map and forwards client operations; a
// Rebalance request migrates a key's value from its current owner to the
// other shard. The ghost Session writes a key, optionally rebalances it
// mid-session, then reads it back and asserts it sees its own write.
//
// Payload encoding (events carry one value): key*8 + value, with keys 1..2
// and values 1..2; bare keys ride alone in Rebalance/Migrate.
//
// The correct router defers client traffic while a migration is in flight,
// so the session is safe under plain exploration but drop-SENSITIVE under
// chaos: dropping the Put (or the Handoff's Install) leaves a stale value
// for the read to find.
func ShardKV() string { return shardKVSource(false) }

// ShardKVBuggy seeds the classic ownership-flip defect: the router updates
// the key→shard map as soon as it *requests* the migration, before the
// handoff lands. A Get racing the in-flight Handoff reads the new owner's
// stale (zero-initialized) copy and the session's read-your-writes
// assertion fails.
func ShardKVBuggy() string { return shardKVSource(true) }

func shardKVSource(buggy bool) string {
	if buggy {
		return shardKVPrelude + shardKVRouterBuggy + shardKVShard + shardKVSession
	}
	return shardKVPrelude + shardKVRouter + shardKVShard + shardKVSession
}

const shardKVPrelude = `
// Sharded KV store: router + 2 shards, ghost client session.

// session -> router: client operations (payload: key*8 + value, or key)
event PutReq(int);
event GetReq(int);
event Rebalance(int);
// router -> shard: forwarded operations
event Put(int);
event Get(int);
// router -> shard: migration protocol (payload: key, then key*8 + value)
event Migrate(int);
event Install(int);
// shard -> router: replies (payload: key*8 + value)
event Reply(int);
event Handoff(int);
// router -> session: the read result (payload: key*8 + value)
event GotVal(int);
// local
event unit;
`

const shardKVRouter = `
machine Router {
  var sa: id;
  var sb: id;
  var o1: int; // owner of key 1: 1 = sa, 2 = sb
  var o2: int; // owner of key 2
  var dst: id; // migration destination
  ghost var client: id;

  state Start {
    entry {
      sa = new Shard(rtr = this);
      sb = new Shard(rtr = this);
      o1 = 1;
      o2 = 2;
      raise unit;
    }
    on unit goto Serving;
  }

  state Serving {
    entry { skip; }
    on PutReq goto DoPut;
    on GetReq goto DoGet;
    on Rebalance goto StartMig;
    on Reply goto Fwd;
  }

  state DoPut {
    entry {
      if arg / 8 == 1 {
        if o1 == 1 {
          send sa, Put, arg;
        } else {
          send sb, Put, arg;
        }
      } else {
        if o2 == 1 {
          send sa, Put, arg;
        } else {
          send sb, Put, arg;
        }
      }
      raise unit;
    }
    on unit goto Serving;
  }

  state DoGet {
    entry {
      if arg == 1 {
        if o1 == 1 {
          send sa, Get, arg;
        } else {
          send sb, Get, arg;
        }
      } else {
        if o2 == 1 {
          send sa, Get, arg;
        } else {
          send sb, Get, arg;
        }
      }
      raise unit;
    }
    on unit goto Serving;
  }

  state Fwd {
    entry {
      send client, GotVal, arg;
      raise unit;
    }
    on unit goto Serving;
  }

  state StartMig {
    entry {
      if arg == 1 {
        if o1 == 1 {
          send sa, Migrate, arg;
          dst = sb;
        } else {
          send sb, Migrate, arg;
          dst = sa;
        }
      } else {
        if o2 == 1 {
          send sa, Migrate, arg;
          dst = sb;
        } else {
          send sb, Migrate, arg;
          dst = sa;
        }
      }
      raise unit;
    }
    on unit goto Migrating;
  }

  state Migrating {
    // block client traffic until the value has landed at its new home
    defer PutReq, GetReq, Rebalance;
    entry { skip; }
    on Handoff goto FinishMig;
    on Reply goto FwdMig;
  }

  state FwdMig {
    // a read that was already in flight at the old owner
    entry {
      send client, GotVal, arg;
      raise unit;
    }
    on unit goto Migrating;
  }

  state FinishMig {
    entry {
      send dst, Install, arg;
      if arg / 8 == 1 {
        o1 = 3 - o1; // flip ownership only once the value moved
      } else {
        o2 = 3 - o2;
      }
      raise unit;
    }
    on unit goto Serving;
  }
}
`

const shardKVRouterBuggy = `
machine Router {
  var sa: id;
  var sb: id;
  var o1: int; // owner of key 1: 1 = sa, 2 = sb
  var o2: int; // owner of key 2
  var dst: id; // migration destination
  ghost var client: id;

  state Start {
    entry {
      sa = new Shard(rtr = this);
      sb = new Shard(rtr = this);
      o1 = 1;
      o2 = 2;
      raise unit;
    }
    on unit goto Serving;
  }

  state Serving {
    entry { skip; }
    on PutReq goto DoPut;
    on GetReq goto DoGet;
    on Rebalance goto StartMig;
    on Reply goto Fwd;
    on Handoff goto FinishMig;
  }

  state DoPut {
    entry {
      if arg / 8 == 1 {
        if o1 == 1 {
          send sa, Put, arg;
        } else {
          send sb, Put, arg;
        }
      } else {
        if o2 == 1 {
          send sa, Put, arg;
        } else {
          send sb, Put, arg;
        }
      }
      raise unit;
    }
    on unit goto Serving;
  }

  state DoGet {
    entry {
      if arg == 1 {
        if o1 == 1 {
          send sa, Get, arg;
        } else {
          send sb, Get, arg;
        }
      } else {
        if o2 == 1 {
          send sa, Get, arg;
        } else {
          send sb, Get, arg;
        }
      }
      raise unit;
    }
    on unit goto Serving;
  }

  state Fwd {
    entry {
      send client, GotVal, arg;
      raise unit;
    }
    on unit goto Serving;
  }

  state StartMig {
    entry {
      if arg == 1 {
        if o1 == 1 {
          send sa, Migrate, arg;
          dst = sb;
        } else {
          send sb, Migrate, arg;
          dst = sa;
        }
        o1 = 3 - o1; // BUG: flips ownership before the handoff lands
      } else {
        if o2 == 1 {
          send sa, Migrate, arg;
          dst = sb;
        } else {
          send sb, Migrate, arg;
          dst = sa;
        }
        o2 = 3 - o2; // BUG: flips ownership before the handoff lands
      }
      raise unit;
    }
    on unit goto Serving; // BUG: keeps serving while the value is in flight
  }

  state FinishMig {
    entry {
      send dst, Install, arg;
      raise unit;
    }
    on unit goto Serving;
  }
}
`

const shardKVShard = `
machine Shard {
  var rtr: id;
  var v1: int; // value stored under key 1 (0 = absent)
  var v2: int; // value stored under key 2

  action StoreVal {
    if arg / 8 == 1 {
      v1 = arg % 8;
    } else {
      v2 = arg % 8;
    }
  }

  state Init {
    entry {
      v1 = 0;
      v2 = 0;
      raise unit;
    }
    on unit goto Main;
  }

  state Main {
    entry { skip; }
    on Put do StoreVal;
    on Install do StoreVal;
    on Get goto ServeGet;
    on Migrate goto ServeMig;
  }

  state ServeGet {
    entry {
      if arg == 1 {
        send rtr, Reply, 8 + v1;
      } else {
        send rtr, Reply, 16 + v2;
      }
      raise unit;
    }
    on unit goto Main;
  }

  state ServeMig {
    entry {
      if arg == 1 {
        send rtr, Handoff, 8 + v1;
        v1 = 0;
      } else {
        send rtr, Handoff, 16 + v2;
        v2 = 0;
      }
      raise unit;
    }
    on unit goto Main;
  }
}
`

const shardKVSession = `
// The session writes a key, maybe rebalances it while its own traffic is
// in flight, then reads it back: read-your-writes is the safety spec.
ghost machine Session {
  var rtr: id;
  var r: int; // rounds completed
  var k: int; // key under test this round
  var w: int; // value written this round

  state Boot {
    entry {
      r = 0;
      rtr = new Router(client = this);
      raise unit;
    }
    on unit goto Loop;
  }

  state Loop {
    entry {
      if r < 2 {
        raise unit;
      }
      skip;
    }
    on unit goto DoRound;
  }

  state DoRound {
    entry {
      r = r + 1;
      k = (r + 1) % 2 + 1; // round 1 tests key 1, round 2 key 2
      if * {
        w = 1;
      } else {
        w = 2;
      }
      send rtr, PutReq, k * 8 + w;
      if * {
        send rtr, Rebalance, k; // migration races the session's own ops
      }
      send rtr, GetReq, k;
      raise unit;
    }
    on unit goto Await;
  }

  state Await {
    entry { skip; }
    on GotVal goto Verify;
  }

  state Verify {
    entry {
      assert arg == k * 8 + w; // read-your-writes
      raise unit;
    }
    on unit goto Loop;
  }
}

main Session();
`

package psamples

// BoundedBuffer is a flow-control sample built on the paper's deferred
// events: a real Buffer machine with capacity 2 serves Put and Get requests
// from a ghost producer and consumer. Put is deferred while the buffer is
// full and Get while it is empty — the buffer's states encode the fill
// level, the idiomatic P rendering of guarded commands. Occupancy
// invariants are asserted on every transition. The producer stamps items
// with a modular sequence number so the ⊕ queue dedup never merges two
// outstanding Puts.
const BoundedBuffer = `
// Bounded buffer with capacity 2: defer-based flow control.

event Put(int);   // payload: item stamp (modular sequence number)
event Get(id);    // payload: the consumer to reply to
event Item(int);  // payload: remaining occupancy after the take
event unit;
event toEmpty;
event toPartial;
event toFull;

machine Buffer {
  var count: int;
  var capacity: int;

  state Empty {
    defer Get;
    entry {
      assert count == 0;
    }
    on Put goto DidPut;
  }

  state Partial {
    entry {
      assert count > 0;
      assert count < capacity;
    }
    on Put goto DidPut;
    on Get goto DidGet;
  }

  state Full {
    defer Put;
    entry {
      assert count == capacity;
    }
    on Get goto DidGet;
  }

  state DidPut {
    defer Put, Get;
    entry {
      count = count + 1;
      assert count <= capacity;
      if count == capacity {
        raise toFull;
      } else {
        raise toPartial;
      }
    }
    on toFull goto Full;
    on toPartial goto Partial;
  }

  state DidGet {
    defer Put, Get;
    entry {
      count = count - 1;
      assert count >= 0;
      send arg, Item, count;
      if count == 0 {
        raise toEmpty;
      } else {
        raise toPartial;
      }
    }
    on toEmpty goto Empty;
    on toPartial goto Partial;
  }
}

ghost machine Producer {
  var buf: id;
  var seq: int;

  state Loop {
    entry {
      if * {
        send buf, Put, seq;
        seq = (seq + 1) % 4;
        raise unit;
      }
    }
    on unit goto Loop;
  }
}

ghost machine Consumer {
  var buf: id;

  state Loop {
    entry {
      if * {
        send buf, Get, this;
        raise unit;
      }
    }
    on unit goto Await;
  }

  state Await {
    entry { skip; }
    on Item goto Loop;
  }
}

ghost machine Env {
  var buf: id;
  var prod: id;
  var cons: id;

  state Boot {
    entry {
      buf = new Buffer(count = 0, capacity = 2);
      prod = new Producer(buf = buf, seq = 0);
      cons = new Consumer(buf = buf);
    }
  }
}

main Env();
`

package psamples

import (
	"fmt"
	"strings"
)

// The §6 case study: the Windows 8 USB hub driver stack. The production
// machines are proprietary, so we synthesize machines with the same
// structural profile as Figure 8 — hub (HSM), 3.0 port (PSM 3.0),
// 2.0 port (PSM 2.0), and device (DSM) state machines whose P-state and
// P-transition counts approximate the paper's table:
//
//	machine    P states  P transitions   (paper: 196/361, 295/752,
//	HSM        ~196      ~360             457/1386, 1919/4238)
//	PSM 3.0    ~295      ~750
//	PSM 2.0    ~457      ~1380
//	DSM        ~1919     ~4230
//
// Each machine processes "operations" issued by a ghost OS: an operation
// walks a chain of hardware phases; each phase asks the ghost hardware to
// advance and the hardware nondeterministically advances or aborts. A
// Cancel request can arrive at any time and is deferred until the current
// phase completes, mirroring the hub driver's handling of uncoordinated
// events. Transition density is tuned per machine with extra ignore
// bindings so the transitions/states ratio tracks the paper's table.

// USBHub is the synthetic hub state machine (HSM row of Figure 8):
// 200 P states vs the paper's 196.
var USBHub = USBMachineSource("HSM", 13, 15, 0, 0)

// USBPort30 is the synthetic USB 3.0 port state machine (PSM 3.0 row):
// 299 P states vs the paper's 295.
var USBPort30 = USBMachineSource("PSM30", 21, 14, 1, 2)

// USBPort20 is the synthetic USB 2.0 port state machine (PSM 2.0 row):
// 455 P states vs the paper's 457.
var USBPort20 = USBMachineSource("PSM20", 30, 15, 1, 1)

// USBDevice is the synthetic device state machine (DSM row):
// 1925 P states vs the paper's 1919.
var USBDevice = USBMachineSource("DSM", 60, 32, 1, 5)

// USBMachineSource synthesizes a P program with one real machine named
// name that serves ops operations, each a chain of chainLen hardware
// phases, plus extraIgnores additional ignore bindings on the chain states
// whose phase index is a multiple of extraEvery (0 disables them), to tune
// transition density. The ghost environment is an OS issuing operations and
// cancels, and hardware answering phase requests.
func USBMachineSource(name string, ops, chainLen, extraIgnores, extraEvery int) string {
	if ops < 1 {
		ops = 1
	}
	if chainLen < 1 {
		chainLen = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "// Synthetic USB machine %s: %d operations x %d phases.\n\n", name, ops, chainLen)

	// Events.
	for i := 1; i <= ops; i++ {
		fmt.Fprintf(&b, "event Op%d;\n", i)
	}
	b.WriteString(`event Cancel;
event Suspend;
event ResumeOp;
event PhaseReq(id);
event Advance;
event Abort;
event Completed;
event Cancelled;
event unit;
event resumedLocal;
`)

	// ---- the device machine ----
	fmt.Fprintf(&b, "\nmachine %s {\n", name)
	b.WriteString("  ghost var os: id;\n  ghost var hw: id;\n\n")
	b.WriteString("  action Nop { skip; }\n\n")
	b.WriteString("  state Idle {\n    entry { skip; }\n    on Cancel ignore;\n")
	b.WriteString("    on Suspend push Suspended;\n    on resumedLocal do Nop;\n")
	for i := 1; i <= ops; i++ {
		fmt.Fprintf(&b, "    on Op%d goto Op%dPhase1;\n", i, i)
	}
	b.WriteString("  }\n\n")
	// The suspend/resume subroutine the machines share: entered by a call
	// transition from Idle or the first phase of any operation, it defers
	// all in-flight hardware traffic until the OS resumes, then returns by
	// raising an event no state of the subroutine handles — the pop lands
	// back in the caller, whose Nop binding consumes it (the paper's
	// sub-state-machine pattern for factoring common event handling).
	b.WriteString(`  state Suspended {
    defer Advance, Abort, Cancel;
    entry { skip; }
    on ResumeOp goto Returning;
  }

  state Returning {
    entry { raise resumedLocal; }
  }

`)

	for i := 1; i <= ops; i++ {
		for j := 1; j <= chainLen; j++ {
			fmt.Fprintf(&b, "  state Op%dPhase%d {\n", i, j)
			if j == 1 {
				b.WriteString("    defer Cancel;\n")
				b.WriteString("    on Suspend push Suspended;\n    on resumedLocal do Nop;\n")
			} else {
				b.WriteString("    defer Cancel, Suspend, ResumeOp;\n")
			}
			fmt.Fprintf(&b, "    entry { send hw, PhaseReq, this; }\n")
			if j < chainLen {
				fmt.Fprintf(&b, "    on Advance goto Op%dPhase%d;\n", i, j+1)
			} else {
				fmt.Fprintf(&b, "    on Advance goto Finish;\n")
			}
			b.WriteString("    on Abort goto Abandon;\n")
			// Extra ignore bindings padding the transition count; they bind
			// operation requests that cannot arrive mid-operation (the OS
			// waits for completion) and are therefore inert.
			if extraEvery > 0 && j%extraEvery == 0 {
				for k := 1; k <= extraIgnores && k <= ops; k++ {
					fmt.Fprintf(&b, "    on Op%d ignore;\n", (i+k-1)%ops+1)
				}
			}
			b.WriteString("  }\n")
		}
		b.WriteByte('\n')
	}

	b.WriteString(`  state Finish {
    entry {
      send os, Completed;
      raise unit;
    }
    on unit goto Idle;
  }

  state Abandon {
    entry {
      send os, Cancelled;
      raise unit;
    }
    on unit goto Idle;
  }
}
`)

	// ---- ghost OS ----
	fmt.Fprintf(&b, "\nghost machine OS {\n  var dev: id;\n  var hw: id;\n\n")
	fmt.Fprintf(&b, `  state Boot {
    entry {
      hw = new HW();
      dev = new %s(os = this, hw = hw);
      raise unit;
    }
    on unit goto Pick;
  }

`, name)
	// Pick: nondeterministically choose an operation with a binary decision
	// tree of * expressions.
	b.WriteString("  state Pick {\n    entry {\n")
	for i := 1; i <= ops; i++ {
		indent := strings.Repeat("  ", i+2)
		if i < ops {
			fmt.Fprintf(&b, "%sif * {\n%s  send dev, Op%d;\n%s} else {\n", indent, indent, i, indent)
		} else {
			fmt.Fprintf(&b, "%ssend dev, Op%d;\n", indent, i)
		}
	}
	for i := ops - 1; i >= 1; i-- {
		indent := strings.Repeat("  ", i+2)
		fmt.Fprintf(&b, "%s}\n", indent)
	}
	b.WriteString(`      raise unit;
    }
    on unit goto Await;
  }

  state Await {
    entry {
      if * { send dev, Cancel; }
      if * {
        send dev, Suspend;
        send dev, ResumeOp;
      }
    }
    on Completed goto Pick;
    on Cancelled goto Pick;
  }
}
`)

	// ---- ghost hardware ----
	// HW answers each PhaseReq (whose payload names the requester) with
	// Advance or Abort, nondeterministically.
	b.WriteString(`
ghost machine HW {
  var client: id;

  state Serve {
    entry { skip; }
    on PhaseReq goto Answer;
  }

  state Answer {
    entry {
      client = arg;
      if * {
        send client, Advance;
      } else {
        send client, Abort;
      }
      raise unit;
    }
    on unit goto Serve;
  }
}

main OS();
`)
	return b.String()
}

package psamples

// SwitchLED models the §4.1 evaluation device: a driver for a simple
// switch-and-LED device. The real Driver machine serializes uncoordinated
// events from four ghost machines: the OS PnP manager (start/stop with
// completion acks), an unconstrained OS power manager (sleep/resume spam),
// the switch hardware (toggle interrupts), and the LED hardware
// (command/ack). The driver owns the LED reference in a ghost variable, so
// LED commands erase at compile time like the elevator's door commands.
const SwitchLED = switchLEDCommon + switchLEDDriverGood + switchLEDEnv

// SwitchLEDBuggy forgets to defer StopDevice while a LED command is in
// flight in SettingOn, so a stop request racing a switch toggle hits an
// unhandled event.
const SwitchLEDBuggy = switchLEDCommon + switchLEDDriverBuggy + switchLEDEnv

const switchLEDCommon = `
// Switch-and-LED driver (§4.1).

// OS PnP -> driver
event StartDevice;
event StopDevice;
// driver -> OS PnP
event StartCompleted;
event StopCompleted;
// OS power -> driver (unconstrained)
event SleepDevice;
event ResumeDevice;
// switch hardware -> driver
event SwitchOn;
event SwitchOff;
// driver -> LED hardware
event CmdLedOn;
event CmdLedOff;
event CmdLedReset;
// LED hardware -> driver
event LedOnAck;
event LedOffAck;
// local
event unit;
`

const switchLEDDriverGood = `
machine Driver {
  // Foreign functions carry the data path to the host (the paper's
  // driver-specific foreign code); the skip models make them erasable
  // no-ops during verification.
  foreign ledOn(): void { skip; }
  foreign ledOff(): void { skip; }
  foreign ledReset(): void { skip; }
  foreign notifyStarted(): void { skip; }
  foreign notifyStopped(): void { skip; }
  ghost var os: id;
  ghost var ledV: id;

  state Init {
    defer SwitchOn, SwitchOff;
    postpone SwitchOn, SwitchOff;
    entry { ledV = new LED(client = this); }
    on SleepDevice ignore;
    on ResumeDevice ignore;
    on StartDevice goto Starting;
  }

  state Starting {
    entry {
      ledReset();
      send ledV, CmdLedReset;
      notifyStarted();
      send os, StartCompleted;
      raise unit;
    }
    on unit goto Ready;
  }

  state Ready {
    entry { skip; }
    on SwitchOn goto SettingOn;
    on SwitchOff goto SettingOff;
    on SleepDevice goto Sleeping;
    on ResumeDevice ignore;
    on StopDevice goto Stopping;
  }

  state SettingOn {
    defer SwitchOn, SwitchOff, StopDevice, SleepDevice;
    entry {
      ledOn();
      send ledV, CmdLedOn;
    }
    on ResumeDevice ignore;
    on LedOnAck goto Ready;
  }

  state SettingOff {
    defer SwitchOn, SwitchOff, StopDevice, SleepDevice;
    entry {
      ledOff();
      send ledV, CmdLedOff;
    }
    on ResumeDevice ignore;
    on LedOffAck goto Ready;
  }

  state Sleeping {
    defer SwitchOn, SwitchOff, StopDevice, ResumeDevice;
    entry {
      ledOff();
      send ledV, CmdLedOff;
    }
    on SleepDevice ignore;
    on LedOffAck goto Asleep;
  }

  state Asleep {
    defer SwitchOn, SwitchOff;
    postpone SwitchOn, SwitchOff;
    entry { skip; }
    on SleepDevice ignore;
    on ResumeDevice goto Resuming;
    on StopDevice goto Stopping;
  }

  state Resuming {
    entry {
      ledReset();
      send ledV, CmdLedReset;
      raise unit;
    }
    on unit goto Ready;
  }

  state Stopping {
    entry {
      ledReset();
      send ledV, CmdLedReset;
      notifyStopped();
      send os, StopCompleted;
      raise unit;
    }
    on unit goto Stopped;
  }

  state Stopped {
    entry { skip; }
    on SwitchOn ignore;
    on SwitchOff ignore;
    on SleepDevice ignore;
    on ResumeDevice ignore;
    on StartDevice goto Starting;
  }
}
`

const switchLEDDriverBuggy = `
machine Driver {
  // Foreign functions carry the data path to the host (the paper's
  // driver-specific foreign code); the skip models make them erasable
  // no-ops during verification.
  foreign ledOn(): void { skip; }
  foreign ledOff(): void { skip; }
  foreign ledReset(): void { skip; }
  foreign notifyStarted(): void { skip; }
  foreign notifyStopped(): void { skip; }
  ghost var os: id;
  ghost var ledV: id;

  state Init {
    defer SwitchOn, SwitchOff;
    postpone SwitchOn, SwitchOff;
    entry { ledV = new LED(client = this); }
    on SleepDevice ignore;
    on ResumeDevice ignore;
    on StartDevice goto Starting;
  }

  state Starting {
    entry {
      ledReset();
      send ledV, CmdLedReset;
      notifyStarted();
      send os, StartCompleted;
      raise unit;
    }
    on unit goto Ready;
  }

  state Ready {
    entry { skip; }
    on SwitchOn goto SettingOn;
    on SwitchOff goto SettingOff;
    on SleepDevice goto Sleeping;
    on ResumeDevice ignore;
    on StopDevice goto Stopping;
  }

  // BUG: StopDevice is neither deferred nor handled while the LED command
  // is in flight, so a PnP stop racing a switch toggle is unhandled.
  state SettingOn {
    defer SwitchOn, SwitchOff, SleepDevice;
    entry {
      ledOn();
      send ledV, CmdLedOn;
    }
    on ResumeDevice ignore;
    on LedOnAck goto Ready;
  }

  state SettingOff {
    defer SwitchOn, SwitchOff, StopDevice, SleepDevice;
    entry {
      ledOff();
      send ledV, CmdLedOff;
    }
    on ResumeDevice ignore;
    on LedOffAck goto Ready;
  }

  state Sleeping {
    defer SwitchOn, SwitchOff, StopDevice, ResumeDevice;
    entry {
      ledOff();
      send ledV, CmdLedOff;
    }
    on SleepDevice ignore;
    on LedOffAck goto Asleep;
  }

  state Asleep {
    defer SwitchOn, SwitchOff;
    postpone SwitchOn, SwitchOff;
    entry { skip; }
    on SleepDevice ignore;
    on ResumeDevice goto Resuming;
    on StopDevice goto Stopping;
  }

  state Resuming {
    entry {
      ledReset();
      send ledV, CmdLedReset;
      raise unit;
    }
    on unit goto Ready;
  }

  state Stopping {
    entry {
      ledReset();
      send ledV, CmdLedReset;
      notifyStopped();
      send os, StopCompleted;
      raise unit;
    }
    on unit goto Stopped;
  }

  state Stopped {
    entry { skip; }
    on SwitchOn ignore;
    on SwitchOff ignore;
    on SleepDevice ignore;
    on ResumeDevice ignore;
    on StartDevice goto Starting;
  }
}
`

const switchLEDEnv = `
// ---- ghost environment: four machines ----

// The PnP manager follows the start/stop protocol with completion acks.
ghost machine OSPnP {
  var driver: id;
  var sw: id;
  var pw: id;

  state Boot {
    entry {
      driver = new Driver(os = this);
      sw = new Switch(client = driver);
      pw = new OSPower(client = driver);
      raise unit;
    }
    on unit goto Stopped;
  }

  state Stopped {
    entry {
      if * {
        send driver, StartDevice;
        raise unit;
      }
    }
    on unit goto WaitStart;
  }

  state WaitStart {
    entry { skip; }
    on StartCompleted goto Started;
  }

  state Started {
    entry {
      if * {
        send driver, StopDevice;
        raise unit;
      }
    }
    on unit goto WaitStop;
  }

  state WaitStop {
    entry { skip; }
    on StopCompleted goto Stopped;
  }
}

// The power manager is deliberately unconstrained: sleep/resume can arrive
// at any moment, like the "uncoordinated events" of the USB case study.
ghost machine OSPower {
  var client: id;

  state Loop {
    entry {
      if * {
        send client, SleepDevice;
        raise unit;
      } else {
        if * {
          send client, ResumeDevice;
          raise unit;
        }
      }
      // Neither branch: the machine blocks forever (stimulus stops), which
      // keeps every path through this state on a scheduling point.
    }
    on unit goto Loop;
  }
}

// The switch fires toggle interrupts at any moment.
ghost machine Switch {
  var client: id;

  state Loop {
    entry {
      if * {
        send client, SwitchOn;
        raise unit;
      } else {
        if * {
          send client, SwitchOff;
          raise unit;
        }
      }
      // Neither branch: the machine blocks forever (stimulus stops), which
      // keeps every path through this state on a scheduling point.
    }
    on unit goto Loop;
  }
}

// The LED acknowledges every command.
ghost machine LED {
  var client: id;

  state Waiting {
    entry { skip; }
    on CmdLedReset ignore;
    on CmdLedOn goto AckOn;
    on CmdLedOff goto AckOff;
  }

  state AckOn {
    entry {
      send client, LedOnAck;
      raise unit;
    }
    on unit goto Waiting;
  }

  state AckOff {
    entry {
      send client, LedOffAck;
      raise unit;
    }
    on unit goto Waiting;
  }
}

main OSPnP();
`

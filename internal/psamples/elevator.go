package psamples

// Elevator is the paper's §2 example: a real Elevator machine controlled by
// a ghost User and ghost Door/Timer devices. The Elevator holds references
// to the ghost devices in ghost variables, so every command it sends to them
// is erased at compile time (the production driver would issue those
// commands through foreign functions instead). The StoppingTimer /
// WaitingForTimer / ReturnState triple is the paper's call-transition
// "subroutine", invoked from both Opened and OkToClose and returning by
// raising StopTimerReturned.
const Elevator = elevatorCommon + elevatorMachineGood + elevatorEnv

// ElevatorBuggy drops the CloseDoor deferral (and its ignore binding) from
// the Opening state, so a user pressing Close while the door opens produces
// an unhandled-event violation — the most common bug class the paper
// reports from the USB effort.
const ElevatorBuggy = elevatorCommon + elevatorMachineBuggy + elevatorEnv

const elevatorCommon = `
// The paper's elevator (§2, Figures 1 and 2).

// user -> elevator
event OpenDoor;
event CloseDoor;
// elevator -> door
event SendCmdToOpen;
event SendCmdToClose;
event SendCmdToStop;
event SendCmdToReset;
// door -> elevator
event DoorOpened;
event DoorClosed;
event DoorStopped;
event ObjectDetected;
// elevator -> timer
event StartTimer;
event StopTimer;
// timer -> elevator
event TimerFired;
event TimerStopped;
// local events
event unit;
event StopTimerReturned;
event objectEncountered;
`

const elevatorMachineGood = `
machine Elevator {
  ghost var TimerV: id;
  ghost var DoorV: id;

  action Ignore { skip; }

  state Init {
    entry {
      TimerV = new Timer(client = this);
      DoorV = new Door(client = this);
      raise unit;
    }
    on unit goto Closed;
  }

  state Closed {
    entry { send DoorV, SendCmdToReset; }
    on CloseDoor ignore;
    on OpenDoor goto Opening;
  }

  state Opening {
    defer CloseDoor;
    entry { send DoorV, SendCmdToOpen; }
    on OpenDoor do Ignore;
    on DoorOpened goto Opened;
  }

  state Opened {
    defer CloseDoor;
    entry {
      send DoorV, SendCmdToReset;
      send TimerV, StartTimer;
    }
    on TimerFired goto OkToClose;
    on StopTimerReturned goto Opened;
    on OpenDoor push StoppingTimer;
  }

  state OkToClose {
    entry { send TimerV, StartTimer; }
    on OpenDoor ignore;
    on TimerFired goto Closing;
    on StopTimerReturned goto Closing;
    on CloseDoor push StoppingTimer;
  }

  state Closing {
    entry { send DoorV, SendCmdToClose; }
    on CloseDoor ignore;
    on DoorClosed goto Closed;
    on ObjectDetected goto Opening;
    on OpenDoor goto StoppingDoor;
  }

  state StoppingDoor {
    defer CloseDoor;
    entry { send DoorV, SendCmdToStop; }
    on OpenDoor ignore;
    on DoorStopped goto Opening;
    on DoorClosed goto Closed;
    on ObjectDetected goto Opening;
  }

  // Subroutine: stop the timer and return via StopTimerReturned.
  state StoppingTimer {
    defer OpenDoor, CloseDoor;
    entry {
      send TimerV, StopTimer;
      raise unit;
    }
    on unit goto WaitingForTimer;
  }

  state WaitingForTimer {
    defer OpenDoor, CloseDoor;
    entry { skip; }
    on TimerFired do Ignore;
    on TimerStopped goto ReturnState;
  }

  state ReturnState {
    entry { raise StopTimerReturned; }
  }
}
`

const elevatorMachineBuggy = `
machine Elevator {
  ghost var TimerV: id;
  ghost var DoorV: id;

  action Ignore { skip; }

  state Init {
    entry {
      TimerV = new Timer(client = this);
      DoorV = new Door(client = this);
      raise unit;
    }
    on unit goto Closed;
  }

  state Closed {
    entry { send DoorV, SendCmdToReset; }
    on CloseDoor ignore;
    on OpenDoor goto Opening;
  }

  // BUG: CloseDoor is neither deferred nor handled here, so a user pressing
  // Close while the door opens is an unhandled event.
  state Opening {
    entry { send DoorV, SendCmdToOpen; }
    on OpenDoor do Ignore;
    on DoorOpened goto Opened;
  }

  state Opened {
    defer CloseDoor;
    entry {
      send DoorV, SendCmdToReset;
      send TimerV, StartTimer;
    }
    on TimerFired goto OkToClose;
    on StopTimerReturned goto Opened;
    on OpenDoor push StoppingTimer;
  }

  state OkToClose {
    entry { send TimerV, StartTimer; }
    on OpenDoor ignore;
    on TimerFired goto Closing;
    on StopTimerReturned goto Closing;
    on CloseDoor push StoppingTimer;
  }

  state Closing {
    entry { send DoorV, SendCmdToClose; }
    on CloseDoor ignore;
    on DoorClosed goto Closed;
    on ObjectDetected goto Opening;
    on OpenDoor goto StoppingDoor;
  }

  state StoppingDoor {
    defer CloseDoor;
    entry { send DoorV, SendCmdToStop; }
    on OpenDoor ignore;
    on DoorStopped goto Opening;
    on DoorClosed goto Closed;
    on ObjectDetected goto Opening;
  }

  state StoppingTimer {
    defer OpenDoor, CloseDoor;
    entry {
      send TimerV, StopTimer;
      raise unit;
    }
    on unit goto WaitingForTimer;
  }

  state WaitingForTimer {
    defer OpenDoor, CloseDoor;
    entry { skip; }
    on TimerFired do Ignore;
    on TimerStopped goto ReturnState;
  }

  state ReturnState {
    entry { raise StopTimerReturned; }
  }
}
`

const elevatorEnv = `
// ---- ghost environment (Figure 2) ----

ghost machine User {
  var elevator: id;

  state Init {
    entry {
      elevator = new Elevator();
      raise unit;
    }
    on unit goto Loop;
  }

  state Loop {
    entry {
      if * {
        send elevator, OpenDoor;
        raise unit;
      } else {
        if * {
          send elevator, CloseDoor;
          raise unit;
        }
      }
      // Neither branch: the machine blocks forever (stimulus stops), which
      // keeps every path through this state on a scheduling point.
    }
    on unit goto Loop;
  }
}

ghost machine Door {
  var client: id;

  state Waiting {
    entry { skip; }
    on SendCmdToReset ignore;
    on SendCmdToStop ignore;
    on SendCmdToOpen goto Opening;
    on SendCmdToClose goto Closing;
  }

  state Opening {
    entry {
      send client, DoorOpened;
      raise unit;
    }
    on unit goto Waiting;
  }

  // While closing, the door nondeterministically finishes, detects an
  // object, or keeps moving until told to stop.
  state Closing {
    entry {
      if * {
        raise unit;
      } else {
        if * {
          raise objectEncountered;
        }
      }
    }
    on unit goto SendClosed;
    on objectEncountered goto SendObject;
    on SendCmdToStop goto SendStopped;
  }

  state SendClosed {
    entry {
      send client, DoorClosed;
      raise unit;
    }
    on unit goto Waiting;
  }

  state SendObject {
    entry {
      send client, ObjectDetected;
      raise unit;
    }
    on unit goto Waiting;
  }

  state SendStopped {
    entry {
      send client, DoorStopped;
      raise unit;
    }
    on unit goto Waiting;
  }
}

ghost machine Timer {
  var client: id;

  state Idle {
    entry { skip; }
    on StartTimer goto Started;
    on StopTimer goto SendStopped;
  }

  // The paper's TimerStarted: on entry the timer nondeterministically fires.
  state Started {
    entry {
      if * { raise unit; }
    }
    on unit goto Fired;
    on StopTimer goto SendStopped;
  }

  state Fired {
    entry {
      send client, TimerFired;
      raise unit;
    }
    on unit goto Idle;
  }

  state SendStopped {
    entry {
      send client, TimerStopped;
      raise unit;
    }
    on unit goto Idle;
  }
}

main User();
`

package psamples

// PingPong is the quickstart program: a Pinger creates a Ponger and they
// exchange five ping/pong rounds. The Ping event carries the pinger's
// machine identifier as payload; the Ponger replies through `arg`. Both
// machines are real (no ghosts), so the same program verifies and executes.
const PingPong = `
// Quickstart: two real machines exchanging messages.
event Ping(id);   // payload: the machine to reply to
event Pong;
event Done;
event unit;

machine Pinger {
  var server: id;
  var count: int;

  state Init {
    entry {
      count = 0;
      server = new Ponger();
      raise unit;
    }
    on unit goto SendPing;
  }

  state SendPing {
    entry {
      count = count + 1;
      if count > 5 {
        send server, Done;
        raise unit;
      } else {
        send server, Ping, this;
      }
    }
    on Pong goto SendPing;
    on unit goto Finish;
  }

  state Finish {
    entry { delete; }
  }
}

machine Ponger {
  action Reply {
    send arg, Pong;
  }

  state WaitPing {
    entry { skip; }
    on Ping do Reply;
    on Done goto Finish;
  }

  state Finish {
    entry { delete; }
  }
}

main Pinger();
`

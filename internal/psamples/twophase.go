package psamples

import (
	"fmt"
	"strings"
)

// TwoPhase returns a P implementation of two-phase commit with one
// coordinator and n participants — the star-shaped corpus protocol: every
// message flows through the coordinator hub. A ghost Client closes the
// system: it creates the machines, introduces the participants to the
// coordinator, nondeterministically decides each participant's vote (the
// environment's "whim"), and then monitors the outcome, asserting
// atomicity — no participant may commit while another aborts.
//
// The protocol is drop-tolerant for safety (the textbook observation that
// 2PC *blocks* under message loss but never splits the decision): dropping
// any single message leaves some machine waiting forever, which a safety
// search cannot distinguish from success.
func TwoPhase(n int) string { return twoPhaseSource(n, false) }

// TwoPhaseBuggy seeds the classic premature-commit defect: the coordinator
// commits after n-1 yes votes instead of n, so one yes vote plus one
// unilateral abort (a no voter) yields a mixed outcome and the Client's
// atomicity assertion fails.
func TwoPhaseBuggy(n int) string { return twoPhaseSource(n, true) }

func twoPhaseSource(n int, buggy bool) string {
	if n < 2 {
		n = 2
	}
	quorum := "n"
	comment := "// all yes votes in: commit"
	if buggy {
		quorum = "n - 1"
		comment = "// BUG: quorum off by one — commits with a vote outstanding"
	}
	var b strings.Builder
	fmt.Fprintf(&b, `
// Two-phase commit: coordinator + %d participants, ghost client environment.

// client -> coordinator: participant enrollment (payload: participant)
event Join(id);
// coordinator -> participant: phase one (payload: coordinator, so the
// participant learns its reply target from the request itself)
event Prepare(id);
// participant -> coordinator (payload: voter, so the queue dedup operator
// cannot merge votes from different participants)
event VoteYes(id);
event VoteNo(id);
// coordinator -> participant: phase two
event DoCommit;
event DoAbort;
// client -> participant: the environment decides the vote
event WhimYes;
event WhimNo;
// participant -> client: observed outcome (payload: participant)
event TxCommitted(id);
event TxAborted(id);
// local
event unit;
event go;
event decided;
`, n)

	// ---- Coordinator ----
	b.WriteString("\nmachine Coordinator {\n  var n: int;\n  var joined: int;\n  var yes: int;\n")
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&b, "  var p%d: id;\n", i)
	}
	b.WriteString(`
  state Start {
    entry {
      joined = 0;
      yes = 0;
      raise unit;
    }
    on unit goto Gather;
  }

  state Gather {
    entry { skip; }
    on Join goto AddParticipant;
  }

  state AddParticipant {
    entry {
`)
	// Store arg into the first free participant slot.
	for i := 1; i <= n; i++ {
		indent := strings.Repeat("  ", i+2)
		fmt.Fprintf(&b, "%sif p%d == null {\n%s  p%d = arg;\n%s} else {\n", indent, i, indent, i, indent)
	}
	fmt.Fprintf(&b, "%sassert false;\n", strings.Repeat("  ", n+3))
	for i := n; i >= 1; i-- {
		fmt.Fprintf(&b, "%s}\n", strings.Repeat("  ", i+2))
	}
	b.WriteString(`      joined = joined + 1;
      if joined == n {
        raise go;
      }
      raise unit;
    }
    on unit goto Gather;
    on go goto SendPrepare;
  }

  state SendPrepare {
    entry {
`)
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&b, "      send p%d, Prepare, this;\n", i)
	}
	b.WriteString(`      raise unit;
    }
    on unit goto Collect;
  }

  state Collect {
    entry { skip; }
    on VoteYes goto Tally;
    on VoteNo goto Abort;
  }

  state Tally {
    entry {
      yes = yes + 1;
`)
	fmt.Fprintf(&b, "      if yes == %s { %s\n", quorum, comment)
	b.WriteString(`        raise decided;
      }
      raise unit;
    }
    on unit goto Collect;
    on decided goto Commit;
  }

  state Commit {
    entry {
`)
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&b, "      send p%d, DoCommit;\n", i)
	}
	b.WriteString(`    }
    on VoteYes ignore;
    on VoteNo ignore;
  }

  state Abort {
    entry {
`)
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&b, "      send p%d, DoAbort;\n", i)
	}
	b.WriteString(`    }
    on VoteYes ignore;
    on VoteNo ignore;
  }
}
`)

	// ---- Participant ----
	b.WriteString(`
machine Participant {
  var coord: id;
  ghost var mon: id;

  state Undecided {
    defer Prepare, DoCommit;
    entry { skip; }
    on WhimYes goto WillVoteYes;
    on WhimNo goto WillVoteNo;
    on DoAbort goto Aborted;
  }

  state WillVoteYes {
    defer DoCommit;
    entry { skip; }
    on Prepare goto SendYes;
    on DoAbort goto Aborted;
  }

  state WillVoteNo {
    defer DoCommit;
    entry { skip; }
    on Prepare goto SendNo;
    on DoAbort goto Aborted;
  }

  state SendYes {
    entry {
      coord = arg;
      send coord, VoteYes, this;
      raise unit;
    }
    on unit goto Uncertain;
  }

  state SendNo {
    entry {
      coord = arg;
      send coord, VoteNo, this;
      raise unit;
    }
    on unit goto Aborted;
  }

  state Uncertain {
    entry { skip; }
    on Prepare ignore;
    on DoCommit goto Committed;
    on DoAbort goto Aborted;
  }

  state Committed {
    entry { send mon, TxCommitted, this; }
    on Prepare ignore;
    on DoCommit ignore;
  }

  state Aborted {
    entry { send mon, TxAborted, this; }
    on Prepare ignore;
    on DoAbort ignore;
    on DoCommit ignore;
    on WhimYes ignore;
    on WhimNo ignore;
  }
}
`)

	// ---- ghost client environment + atomicity monitor ----
	b.WriteString(`
// The client builds the system, decides every vote nondeterministically,
// and then watches the outcome: a commit and an abort in the same
// transaction is the 2PC atomicity violation.
ghost machine Client {
  var coord: id;
  var committed: int;
  var aborted: int;
`)
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&b, "  var q%d: id;\n", i)
	}
	fmt.Fprintf(&b, `
  state Boot {
    entry {
      committed = 0;
      aborted = 0;
      coord = new Coordinator(n = %d);
`, n)
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&b, "      q%d = new Participant(mon = this);\n", i)
		fmt.Fprintf(&b, "      send coord, Join, q%d;\n", i)
	}
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&b, `      if * {
        send q%d, WhimYes;
      } else {
        send q%d, WhimNo;
      }
`, i, i)
	}
	b.WriteString(`      raise unit;
    }
    on unit goto Watch;
  }

  state Watch {
    entry { skip; }
    on TxCommitted goto SawCommit;
    on TxAborted goto SawAbort;
  }

  state SawCommit {
    entry {
      committed = committed + 1;
      assert aborted == 0;
      raise unit;
    }
    on unit goto Watch;
  }

  state SawAbort {
    entry {
      aborted = aborted + 1;
      assert committed == 0;
      raise unit;
    }
    on unit goto Watch;
  }
}

main Client();
`)
	return b.String()
}

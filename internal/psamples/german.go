package psamples

import (
	"fmt"
	"strings"
)

// German returns a P implementation of German's cache-coherence protocol
// with n clients (the third Figure-7 benchmark). The directory (Host) and
// the caches (Client) are real machines; each client is driven by a ghost
// Stim machine that nondeterministically requests shared or exclusive
// access. The Host tracks sharers in n id-typed slots, invalidates before
// granting, and asserts the coherence invariant at every grant: no sharer
// and no owner may survive an exclusive grant, and no owner may survive a
// shared grant.
func German(n int) string { return germanSource(n, false) }

// GermanBuggy seeds the classic coherence bug: when invalidating for an
// exclusive request the Host skips one sharer slot, so an exclusive grant
// can coexist with a live sharer and the invariant assertion fails. The
// skipped slot is the highest one fillable while a requester remains free
// (slot n-1, or slot 1 when n < 3), so the bug is reachable for any n >= 2.
func GermanBuggy(n int) string { return germanSource(n, true) }

func germanSource(n int, buggy bool) string {
	if n < 1 {
		n = 1
	}
	var b strings.Builder
	b.WriteString(`
// German's cache coherence protocol: directory Host + clients.

// stimulus -> client
event DoReqS;
event DoReqE;
// client -> host (payload: requesting client)
event ReqShared(id);
event ReqExclusive(id);
// host -> client
event Inv;
event GrantShared;
event GrantExclusive;
// client -> host (payload: acking client, so the queue dedup operator
// cannot merge acks from different caches — the paper's counter-payload idiom)
event InvAck(id);
// local
event unit;
event needInv;
event granted;
event ackDone;
`)

	// ---- Host ----
	b.WriteString("\nmachine Host {\n")
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&b, "  var shr%d: id;\n", i)
	}
	b.WriteString("  var own: id;\n  var cur: id;\n  var pending: int;\n\n")

	// Idle state: accept one request at a time.
	b.WriteString(`  state Idle {
    entry { skip; }
    on ReqShared goto ProcShared;
    on ReqExclusive goto ProcExclusive;
  }

  state ProcShared {
    defer ReqShared, ReqExclusive;
    entry {
      cur = arg;
      pending = 0;
      if own != null {
        send own, Inv;
        own = null;
        pending = pending + 1;
        raise needInv;
      } else {
        raise granted;
      }
    }
    on needInv goto WaitAcksShared;
    on granted goto DoGrantShared;
  }

  state WaitAcksShared {
    defer ReqShared, ReqExclusive;
    entry {
      if pending == 0 { raise ackDone; }
    }
    on InvAck goto DecAckShared;
    on ackDone goto DoGrantShared;
  }

  state DecAckShared {
    defer ReqShared, ReqExclusive;
    entry {
      pending = pending - 1;
      raise unit;
    }
    on unit goto WaitAcksShared;
  }

  state DoGrantShared {
    defer ReqShared, ReqExclusive;
    entry {
      assert own == null;
`)
	// Put cur into the first free sharer slot.
	writeSlotInsert(&b, n)
	b.WriteString(`      send cur, GrantShared;
      raise unit;
    }
    on unit goto Idle;
  }

  state ProcExclusive {
    defer ReqShared, ReqExclusive;
    entry {
      cur = arg;
      pending = 0;
      if own != null {
        send own, Inv;
        own = null;
        pending = pending + 1;
      }
`)
	// Invalidate every sharer slot (the buggy variant skips one).
	skip := 0
	if buggy {
		skip = n - 1
		if skip < 1 {
			skip = 1
		}
		fmt.Fprintf(&b, "      // BUG: sharer slot %d is never invalidated.\n", skip)
	}
	for i := 1; i <= n; i++ {
		if i == skip {
			continue
		}
		fmt.Fprintf(&b, `      if shr%d != null {
        send shr%d, Inv;
        shr%d = null;
        pending = pending + 1;
      }
`, i, i, i)
	}
	b.WriteString(`      raise needInv;
    }
    on needInv goto WaitAcksExclusive;
  }

  state WaitAcksExclusive {
    defer ReqShared, ReqExclusive;
    entry {
      if pending == 0 { raise ackDone; }
    }
    on InvAck goto DecAckExclusive;
    on ackDone goto DoGrantExclusive;
  }

  state DecAckExclusive {
    defer ReqShared, ReqExclusive;
    entry {
      pending = pending - 1;
      raise unit;
    }
    on unit goto WaitAcksExclusive;
  }

  state DoGrantExclusive {
    defer ReqShared, ReqExclusive;
    entry {
      assert own == null;
`)
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&b, "      assert shr%d == null;\n", i)
	}
	b.WriteString(`      own = cur;
      send cur, GrantExclusive;
      raise unit;
    }
    on unit goto Idle;
  }
}
`)

	// ---- Client ----
	b.WriteString(`
machine Client {
  var host: id;

  state Invalid {
    entry { skip; }
    on DoReqS goto SendReqS;
    on DoReqE goto SendReqE;
    on Inv ignore;
  }

  state SendReqS {
    defer DoReqS, DoReqE;
    entry {
      send host, ReqShared, this;
      raise unit;
    }
    on unit goto WaitShared;
  }

  state WaitShared {
    defer DoReqS, DoReqE;
    entry { skip; }
    on GrantShared goto Sharer;
  }

  state SendReqE {
    defer DoReqS, DoReqE;
    entry {
      send host, ReqExclusive, this;
      raise unit;
    }
    on unit goto WaitExclusive;
  }

  state WaitExclusive {
    defer DoReqS, DoReqE;
    entry { skip; }
    on GrantExclusive goto Owner;
  }

  state Sharer {
    entry { skip; }
    on DoReqS ignore;
    on DoReqE ignore;
    on Inv goto AckInvalidate;
  }

  state Owner {
    entry { skip; }
    on DoReqS ignore;
    on DoReqE ignore;
    on Inv goto AckInvalidate;
  }

  state AckInvalidate {
    defer DoReqS, DoReqE;
    entry {
      send host, InvAck, this;
      raise unit;
    }
    on unit goto Invalid;
  }
}
`)

	// ---- ghost environment ----
	b.WriteString(`
// The stimulus drives one client with nondeterministic requests.
ghost machine Stim {
  var client: id;

  state Loop {
    entry {
      if * {
        send client, DoReqS;
        raise unit;
      } else {
        if * {
          send client, DoReqE;
          raise unit;
        }
      }
      // Neither branch: the machine blocks forever (stimulus stops), which
      // keeps every path through this state on a scheduling point.
    }
    on unit goto Loop;
  }
}

ghost machine Env {
  var host: id;
`)
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&b, "  var c%d: id;\n  var st%d: id;\n", i, i)
	}
	b.WriteString(`
  state Boot {
    entry {
      host = new Host();
`)
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&b, "      c%d = new Client(host = host);\n", i)
		fmt.Fprintf(&b, "      st%d = new Stim(client = c%d);\n", i, i)
	}
	b.WriteString(`    }
  }
}

main Env();
`)
	return b.String()
}

// writeSlotInsert emits the nested if chain storing `cur` into the first
// free sharer slot. With n slots and at most n clients each holding at most
// one grant, a free slot always exists; the final branch asserts that.
func writeSlotInsert(b *strings.Builder, n int) {
	for i := 1; i <= n; i++ {
		indent := strings.Repeat("  ", i+2)
		fmt.Fprintf(b, "%sif shr%d == null {\n%s  shr%d = cur;\n%s} else {\n", indent, i, indent, i, indent)
	}
	indent := strings.Repeat("  ", n+3)
	fmt.Fprintf(b, "%sassert false;\n", indent)
	for i := n; i >= 1; i-- {
		indent := strings.Repeat("  ", i+2)
		fmt.Fprintf(b, "%s}\n", indent)
	}
}

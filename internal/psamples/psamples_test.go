package psamples_test

import (
	"strings"
	"testing"

	"pgo/internal/compile"
	"pgo/internal/psamples"
)

func TestRegistry(t *testing.T) {
	all := psamples.All()
	if len(all) < 10 {
		t.Fatalf("only %d samples registered", len(all))
	}
	seen := map[string]bool{}
	buggy := 0
	for _, s := range all {
		if seen[s.Name] {
			t.Fatalf("duplicate sample name %s", s.Name)
		}
		seen[s.Name] = true
		if s.Source == "" || s.Description == "" {
			t.Fatalf("sample %s incomplete", s.Name)
		}
		if s.Buggy {
			buggy++
			if !strings.Contains(s.Name, "buggy") {
				t.Errorf("buggy sample %s not named *-buggy", s.Name)
			}
		}
		got, ok := psamples.ByName(s.Name)
		if !ok || got.Name != s.Name {
			t.Fatalf("ByName(%s) failed", s.Name)
		}
	}
	if buggy < 3 {
		t.Fatalf("want at least 3 buggy variants, got %d", buggy)
	}
	if _, ok := psamples.ByName("nope"); ok {
		t.Fatal("ByName invented a sample")
	}
}

// Generators clamp degenerate parameters and still produce valid programs.
func TestGeneratorBounds(t *testing.T) {
	cases := map[string]string{
		"german-0":  psamples.German(0),
		"german-1":  psamples.German(1),
		"ring-0":    psamples.Ring(0),
		"ring-2":    psamples.Ring(2),
		"usb-min":   psamples.USBMachineSource("Min", 0, 0, 0, 0),
		"usb-small": psamples.USBMachineSource("Small", 2, 3, 2, 1),
	}
	for name, src := range cases {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			if _, diags, err := compile.Source(name, src); err != nil {
				t.Fatalf("generated program invalid: %v\n%s", err, diags.String())
			}
		})
	}
}

// The buggy variants differ from their good counterparts only in the
// seeded defect region (sanity: they are not accidentally identical).
func TestBuggyVariantsDiffer(t *testing.T) {
	pairs := [][2]string{
		{"elevator", "elevator-buggy"},
		{"switchled", "switchled-buggy"},
		{"german", "german-buggy"},
		{"ring", "ring-buggy"},
		{"twophase", "twophase-buggy"},
		{"raft", "raft-buggy"},
		{"shardkv", "shardkv-buggy"},
		{"worksteal", "worksteal-buggy"},
	}
	for _, p := range pairs {
		good, _ := psamples.ByName(p[0])
		bad, _ := psamples.ByName(p[1])
		if good.Source == bad.Source {
			t.Errorf("%s and %s have identical sources", p[0], p[1])
		}
	}
}

func TestGermanScalesWithN(t *testing.T) {
	if !strings.Contains(psamples.German(4), "shr4") {
		t.Fatal("German(4) missing the fourth sharer slot")
	}
	if strings.Contains(psamples.German(2), "shr3") {
		t.Fatal("German(2) has a third sharer slot")
	}
}

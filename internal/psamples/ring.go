package psamples

import "fmt"

// Ring returns a P implementation of Chang–Roberts leader election on a
// unidirectional token ring of n real Node machines. The first node builds
// the ring by creating its successor, which creates its own successor, and
// so on — the paper's dynamic machine creation — with the ring closed by
// threading the first node's identifier through the creation parameters.
// Every node circulates its own candidacy; a node forwards tokens carrying
// ids larger than its own, drops smaller ones, and wins when its own id
// returns. The ghost Referee asserts that the winner is the maximum id and
// that at most one leader is ever announced.
func Ring(n int) string { return ringSource(n, false) }

// RingBuggy inverts the forwarding comparison (smaller ids survive), so
// several nodes can see their ids return: the Referee's single-leader
// assertion fails.
func RingBuggy(n int) string { return ringSource(n, true) }

func ringSource(n int, buggy bool) string {
	if n < 2 {
		n = 2
	}
	forward := "arg > myid"
	comment := "// forward tokens that can still win (larger id)"
	if buggy {
		forward = "arg < myid"
		comment = "// BUG: comparison inverted — losing tokens survive"
	}
	return fmt.Sprintf(`
// Chang-Roberts leader election on a ring of %[1]d nodes.

event Token(int);         // the candidate id in flight
event LeaderElected(int); // winner announcement to the referee
event unit;
event won;

machine Node {
  var myid: int;
  var total: int;
  var firstRef: id;
  var next: id;
  ghost var referee: id;

  state Build {
    defer Token;
    entry {
      if firstRef == null {
        firstRef = this;
      }
      if myid < total {
        next = new Node(myid = myid + 1, total = total,
                        firstRef = firstRef, referee = referee);
      } else {
        next = firstRef;
      }
      raise unit;
    }
    on unit goto SendOwn;
  }

  state SendOwn {
    defer Token;
    entry {
      send next, Token, myid;
      raise unit;
    }
    on unit goto Running;
  }

  state Running {
    entry { skip; }
    on Token goto Examine;
  }

  state Examine {
    entry {
      if arg == myid {
        raise won;
      } else {
        if %[2]s { %[3]s
          send next, Token, arg;
        }
        raise unit;
      }
    }
    on unit goto Running;
    on won goto Leader;
  }

  state Leader {
    entry { send referee, LeaderElected, myid; }
    on Token ignore;
  }
}

// The referee observes announcements: the winner must be the highest id,
// and a second announcement is a protocol violation.
ghost machine Referee {
  var root: id;
  var total: int;

  state Boot {
    entry {
      root = new Node(myid = 1, total = total, referee = this);
      raise unit;
    }
    on unit goto AwaitLeader;
  }

  state AwaitLeader {
    entry { skip; }
    on LeaderElected goto CheckLeader;
  }

  state CheckLeader {
    entry {
      assert arg == total;
      raise unit;
    }
    on unit goto Done;
  }

  state Done {
    entry { skip; }
    on LeaderElected goto TwoLeaders;
  }

  state TwoLeaders {
    entry { assert false; }
  }
}

main Referee(total = %[1]d);
`, n, forward, comment)
}

package psamples

import (
	"fmt"
	"strings"
)

// Raft returns a P implementation of raft-style leader election over three
// servers and (at most) two terms — the deep-and-narrow corpus protocol:
// the intro handshake and the election rounds serialize, so the state space
// grows in depth rather than width. Each server votes at most once per term
// (for itself when it stands, or for the first candidate whose request it
// sees), a candidate needs a majority (2 of 3), and a ghost Nature machine
// both drives the election timeouts nondeterministically and monitors the
// announcements, asserting at most one leader per term.
//
// Integer payload encoding (events carry one value): term*4 + serverIndex,
// with indexes 1..3 and terms 1..2.
func Raft() string { return raftSource(false) }

// RaftBuggy seeds the classic double-vote defect: the voting guard uses >=
// instead of >, so a server that has already voted in a term grants a
// second request for the same term — two candidates can both reach a
// majority and Nature's one-leader-per-term assertion fails.
func RaftBuggy() string { return raftSource(true) }

func raftSource(buggy bool) string {
	guard := "arg / 4 > voted"
	comment := "// grant at most one vote per term"
	if buggy {
		guard = "arg / 4 >= voted"
		comment = "// BUG: >= lets a second same-term request through"
	}
	var b strings.Builder
	fmt.Fprintf(&b, `
// Raft-style leader election: 3 servers, bounded terms, ghost Nature.

// environment -> server: peer introductions (ring order: PeerA is the next
// server, PeerB the one after)
event PeerA(id);
event PeerB(id);
// environment -> server: election timeout
event Timeout;
// candidate -> voter: vote request (payload: term*4 + candidate index)
event AskVote(int);
// voter -> candidate: vote granted (payload: term*4 + voter index, so the
// queue dedup operator cannot merge grants from different voters)
event Grant(int);
// server -> nature: leadership announcement (payload: term*4 + leader index)
event IsLeader(int);
// local
event unit;
event won;

machine Server {
  var myidx: int;
  var term: int;
  var voted: int;
  var votes: int;
  var paidx: int;
  var pbidx: int;
  var pa: id;
  var pb: id;
  ghost var mon: id;

  action HandleAsk {
    if %s { %s
      voted = arg / 4;
      if arg %% 4 == paidx {
        send pa, Grant, (arg / 4) * 4 + myidx;
      } else {
        if arg %% 4 == pbidx {
          send pb, Grant, (arg / 4) * 4 + myidx;
        }
      }
    }
  }

  state Start {
    defer AskVote, Timeout;
    entry {
      term = 0;
      voted = 0;
      votes = 0;
      paidx = myidx %% 3 + 1;
      pbidx = paidx %% 3 + 1;
      raise unit;
    }
    on unit goto AwaitPeerA;
  }

  state AwaitPeerA {
    defer AskVote, Timeout, PeerB;
    entry { skip; }
    on PeerA goto SetPeerA;
  }

  state SetPeerA {
    entry {
      pa = arg;
      raise unit;
    }
    on unit goto AwaitPeerB;
  }

  state AwaitPeerB {
    defer AskVote, Timeout;
    entry { skip; }
    on PeerB goto SetPeerB;
  }

  state SetPeerB {
    entry {
      pb = arg;
      raise unit;
    }
    on unit goto Follower;
  }

  state Follower {
    entry { skip; }
    on Timeout goto StartElection;
    on AskVote do HandleAsk;
  }

  state StartElection {
    entry {
      term = voted + 1; // stand past anything already voted for
      voted = term;     // standing is voting for yourself
      votes = 1;
      send pa, AskVote, term * 4 + myidx;
      send pb, AskVote, term * 4 + myidx;
      raise unit;
    }
    on unit goto Candidate;
  }

  state Candidate {
    entry { skip; }
    on Grant goto CountVote;
    on AskVote do HandleAsk;
    on Timeout goto StartElection;
  }

  state CountVote {
    entry {
      if arg / 4 == term { // grants for stale terms are void
        votes = votes + 1;
        if votes >= 2 {
          raise won;
        }
      }
      raise unit;
    }
    on unit goto Candidate;
    on won goto Announce;
  }

  state Announce {
    entry {
      send mon, IsLeader, term * 4 + myidx;
      raise unit;
    }
    on unit goto Leader;
  }

  state Leader {
    entry { skip; }
    on Timeout ignore;
    on Grant ignore;
    on AskVote do HandleAsk;
  }
}

// Nature builds the cluster, fires a bounded number of election timeouts
// (one guaranteed, up to two more chosen nondeterministically — enough for
// a split vote and a second term), and asserts at most one leader per term.
ghost machine Nature {
  var s1: id;
  var s2: id;
  var s3: id;
  var l1: int;
  var l2: int;
  var l3: int;

  state Boot {
    entry {
      l1 = 0;
      l2 = 0;
      l3 = 0;
      s1 = new Server(myidx = 1, mon = this);
      s2 = new Server(myidx = 2, mon = this);
      s3 = new Server(myidx = 3, mon = this);
      send s1, PeerA, s2;
      send s1, PeerB, s3;
      send s2, PeerA, s3;
      send s2, PeerB, s1;
      send s3, PeerA, s1;
      send s3, PeerB, s2;
      send s1, Timeout;
      if * {
        send s2, Timeout; // concurrent candidacy: the split-vote race
      }
      if * {
        send s1, Timeout; // re-election bumps s1 into term 2
      }
      raise unit;
    }
    on unit goto Watch;
  }

  state Watch {
    entry { skip; }
    on IsLeader goto CheckLeader;
  }

  state CheckLeader {
    entry {
      if arg / 4 == 1 {
        assert l1 == 0; // at most one leader in term 1
        l1 = arg %% 4;
      } else {
        if arg / 4 == 2 {
          assert l2 == 0; // at most one leader in term 2
          l2 = arg %% 4;
        } else {
          assert l3 == 0; // at most one leader in term 3
          l3 = arg %% 4;
        }
      }
      raise unit;
    }
    on unit goto Watch;
  }
}

main Nature();
`, guard, comment)
	return b.String()
}

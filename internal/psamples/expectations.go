package psamples

// This file is the machine-readable verdict matrix for the
// distributed-protocols corpus: for every corpus sample it pins the outcome
// each verification mode must produce. The matrix is enforced twice — by
// the TestVerdictMatrix test in internal/verdict, and by the CI
// verdict-matrix job driving `pverify -expect` — so a regression in any
// subsystem (the searches, POR, chaos injection, the liveness checker, the
// counter-abstraction) surfaces as a named cell flip, not a silent drift.

// ModeVerdict is the expected outcome of one verification mode on one
// sample: "safe" means the run completes with no findings, "unsafe" means
// it must report at least one violation.
type ModeVerdict string

const (
	// VerdictSafe: no safety violations (and, for the liveness column, no
	// liveness violations; for the abstract column, no replay-confirmed
	// counterexample).
	VerdictSafe ModeVerdict = "safe"
	// VerdictUnsafe: at least one violation must be reported.
	VerdictUnsafe ModeVerdict = "unsafe"
)

// Shape classifies the state-space geometry a corpus protocol stresses.
type Shape string

const (
	// ShapeStar: every message flows through one hub machine (2PC's
	// coordinator), so the frontier fans out around a single queue.
	ShapeStar Shape = "star"
	// ShapeDeep: rounds serialize (raft's intro handshake then election
	// terms), so the space grows in depth rather than width.
	ShapeDeep Shape = "deep"
	// ShapeServing: request/reply pipelines with migration epochs (the
	// sharded KV), the geometry the pserve/pload stack sees.
	ShapeServing Shape = "serving"
	// ShapeSymmetric: identical replicated machines (the work-stealing
	// workers), the geometry POR and the counter abstraction exploit.
	ShapeSymmetric Shape = "symmetric"
)

// Expectation pins one row of the verdict matrix. The explicit-state
// columns run delay-bounded search at Bound; Chaos adds a one-fault drop
// budget; Liveness runs the §3.2 liveness checks over the explored graph;
// Abstract runs the counter-abstraction coverability analysis with
// concrete replay. NoPOR re-runs the Plain column with reduction disabled
// and must agree with Plain — partial-order reduction is verdict-preserving
// by construction, and this is the cross-check that keeps it that way.
type Expectation struct {
	Sample string
	Shape  Shape
	// Bound is the delay budget for the explicit-state columns.
	Bound int

	Plain    ModeVerdict
	NoPOR    ModeVerdict
	Chaos    ModeVerdict // drop faults only; crash/dup are documented residuals
	Liveness ModeVerdict
	Abstract ModeVerdict

	// ViolationKind is the error-kind string (core.ErrKind.String()) every
	// explicit-state violation must carry, for rows with an unsafe
	// explicit-state cell; empty when only liveness finds the defect.
	ViolationKind string
	// LivenessOnly marks defects invisible to every safety mode: the
	// liveness column must be unsafe with zero safety violations.
	LivenessOnly bool
	// AbstractMarkings overrides the coverability marking budget
	// (0 = the analysis default).
	AbstractMarkings int
	// PlintCodes pins the exact set of static-analysis finding codes
	// (sorted, unique) the sample must produce — none of them of error
	// severity for non-buggy samples.
	PlintCodes []string
}

// Matrix returns the pinned verdict matrix for the corpus. Every sample
// registered here must exist in All(); the verdict evaluator and the CI job
// iterate this slice in order.
func Matrix() []Expectation {
	return []Expectation{
		{
			Sample: "twophase", Shape: ShapeStar, Bound: 2,
			Plain: VerdictSafe, NoPOR: VerdictSafe, Chaos: VerdictSafe,
			Liveness: VerdictSafe, Abstract: VerdictSafe,
			// 2PC blocks under message loss but never splits the decision:
			// the chaos cell is safe because a dropped vote leaves the
			// coordinator waiting, which no safety property distinguishes
			// from success.
			PlintCodes: []string{"P301"},
		},
		{
			Sample: "twophase-buggy", Shape: ShapeStar, Bound: 2,
			Plain: VerdictUnsafe, NoPOR: VerdictUnsafe, Chaos: VerdictUnsafe,
			Liveness: VerdictUnsafe, Abstract: VerdictUnsafe,
			ViolationKind: "assertion failed",
			PlintCodes:    []string{"P301"},
		},
		{
			Sample: "raft", Shape: ShapeDeep, Bound: 2,
			Plain: VerdictSafe, NoPOR: VerdictSafe, Chaos: VerdictSafe,
			Liveness: VerdictSafe, Abstract: VerdictSafe,
			// Dropping election traffic can only prevent a leader, never
			// elect two: drop-chaos stays safe.
			PlintCodes: []string{"P301"},
		},
		{
			Sample: "raft-buggy", Shape: ShapeDeep, Bound: 2,
			Plain: VerdictUnsafe, NoPOR: VerdictUnsafe, Chaos: VerdictUnsafe,
			Liveness: VerdictUnsafe, Abstract: VerdictUnsafe,
			ViolationKind: "assertion failed",
			PlintCodes:    []string{"P301"},
		},
		{
			Sample: "shardkv", Shape: ShapeServing, Bound: 2,
			Plain: VerdictSafe, NoPOR: VerdictSafe, Chaos: VerdictUnsafe,
			Liveness: VerdictSafe, Abstract: VerdictSafe,
			// The fault-sensitive row: correct under every fault-free mode,
			// but one dropped Put (or Install) leaves a stale value for the
			// session's read-your-writes assertion to find.
			ViolationKind: "assertion failed",
			PlintCodes:    []string{"P102", "P301"},
		},
		{
			Sample: "shardkv-buggy", Shape: ShapeServing, Bound: 2,
			Plain: VerdictUnsafe, NoPOR: VerdictUnsafe, Chaos: VerdictUnsafe,
			Liveness: VerdictUnsafe, Abstract: VerdictUnsafe,
			ViolationKind: "assertion failed",
			PlintCodes:    []string{"P102", "P301"},
		},
		{
			Sample: "worksteal", Shape: ShapeSymmetric, Bound: 2,
			Plain: VerdictSafe, NoPOR: VerdictSafe, Chaos: VerdictSafe,
			Liveness: VerdictSafe, Abstract: VerdictSafe,
			PlintCodes: []string{"P301"},
		},
		{
			Sample: "worksteal-buggy", Shape: ShapeSymmetric, Bound: 2,
			// The liveness-only row: the hot-polling idle loop preserves
			// every safety property (all safety cells safe, including the
			// abstraction), and only the liveness checker's forever-enabled
			// cycle detection — under the C3 proviso when POR is on — flags
			// the livelock.
			Plain: VerdictSafe, NoPOR: VerdictSafe, Chaos: VerdictSafe,
			Liveness: VerdictUnsafe, Abstract: VerdictSafe,
			LivenessOnly: true,
			PlintCodes:   []string{"P301"},
		},
	}
}

// ExpectationFor returns the matrix row for a sample, or false.
func ExpectationFor(sample string) (Expectation, bool) {
	for _, e := range Matrix() {
		if e.Sample == sample {
			return e, true
		}
	}
	return Expectation{}, false
}

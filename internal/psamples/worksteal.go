package psamples

// WorkSteal returns a P implementation of a work-stealing scheduler over
// three symmetric workers — the symmetric corpus protocol (all workers run
// the same machine, so symmetry-aware abstractions and POR both bite).
// Workers burn down a local task count, notifying a ghost Boss per task;
// an idle worker tries to steal from each peer in turn and rests only
// after both report empty. The Boss asserts task conservation (no task is
// completed twice) and, under the liveness checker, the built-in property
// 1 (no machine left forever-enabled) doubles as a starvation spec: a
// worker must not spin without making progress.
//
// Payload encoding: TaskDone carries workerIndex*8 + perWorkerCounter so
// the queue dedup operator cannot merge completions.
func WorkSteal() string { return workStealSource(false) }

// WorkStealBuggy seeds a hot-polling idle loop: instead of quiescing, a
// rested worker posts Poll to itself forever. Safety is untouched (the
// task-conservation assertion still holds on every run) but the scheduler
// livelocks — the liveness checker flags the eternally self-enabled
// worker, the plain safety search reports the program clean.
func WorkStealBuggy() string { return workStealSource(true) }

func workStealSource(buggy bool) string {
	polldecl := ""
	pollwait := ""
	rest := `  state Rest {
    entry { skip; }
    on Tick ignore;
    on Steal do HandleSteal;
  }`
	if buggy {
		polldecl = "// worker -> worker (self): the buggy variant's idle poll\nevent Poll;\n"
		pollwait = "\n    on Poll ignore;"
		rest = `  state Rest {
    entry {
      send this, Poll; // BUG: hot-polls instead of quiescing
    }
    on Tick ignore;
    on Poll goto Rest;
    on Steal do HandleSteal;
  }`
	}
	return `
// Work-stealing scheduler: 3 symmetric workers, ghost Boss auditor.

// environment -> worker: peer introductions
event PeerA(id);
event PeerB(id);
// thief -> victim: steal request (payload: thief)
event Steal(id);
// victim -> thief: one task transferred (payload: victim)
event Task(id);
// victim -> thief: nothing to steal (payload: victim)
event NoWork(id);
// worker -> boss: one task completed (payload: workerIndex*8 + counter,
// unique per completion so the queue dedup operator cannot merge them)
event TaskDone(int);
// worker -> worker (self): budget one task per dequeue so steal requests
// interleave with local work
event Tick;
` + polldecl + `// local
event unit;
event empty;

machine Worker {
  var myidx: int;
  var t: int; // local task count
  var e: int; // completions, for unique TaskDone stamps
  var pa: id;
  var pb: id;
  ghost var aud: id;

  action HandleSteal {
    if t > 0 {
      t = t - 1;
      send arg, Task, this;
    } else {
      send arg, NoWork, this;
    }
  }

  state Start {
    defer Steal;
    entry {
      e = 0;
      raise unit;
    }
    on unit goto AwaitPeerA;
  }

  state AwaitPeerA {
    defer Steal, PeerB, Tick;` + pollwait + `
    entry { skip; }
    on PeerA goto SetPeerA;
  }

  state SetPeerA {
    entry {
      pa = arg;
      raise unit;
    }
    on unit goto AwaitPeerB;
  }

  state AwaitPeerB {
    defer Steal, Tick;` + pollwait + `
    entry { skip; }
    on PeerB goto SetPeerB;
  }

  state SetPeerB {
    entry {
      pb = arg;
      raise unit;
    }
    on unit goto Busy;
  }

  state Busy {
    entry {
      if t == 0 {
        raise empty;
      }
      t = t - 1;
      e = e + 1;
      send aud, TaskDone, myidx * 8 + e;
      send this, Tick; // dequeue between tasks so thieves get served
    }
    on Tick goto Busy;` + pollwait + `
    on Steal do HandleSteal;
    on empty goto Hunt;
  }

  state Hunt {
    entry {
      send pa, Steal, this;
      raise unit;
    }
    on unit goto AwaitA;
  }

  state AwaitA {
    entry { skip; }
    on Tick ignore;` + pollwait + `
    on Task goto Recv;
    on NoWork goto HuntB;
    on Steal do HandleSteal;
  }

  state HuntB {
    entry {
      send pb, Steal, this;
      raise unit;
    }
    on unit goto AwaitB;
  }

  state AwaitB {
    entry { skip; }
    on Tick ignore;` + pollwait + `
    on Task goto Recv;
    on NoWork goto Rest;
    on Steal do HandleSteal;
  }

  state Recv {
    entry {
      t = t + 1;
      raise unit;
    }
    on unit goto Busy;
  }

` + rest + `
}

// The Boss seeds an uneven task distribution and audits completions:
// more completions than tasks means a task was duplicated or invented.
ghost machine Boss {
  var w1: id;
  var w2: id;
  var w3: id;
  var total: int;
  var done: int;

  state Boot {
    entry {
      total = 4;
      done = 0;
      w1 = new Worker(myidx = 1, t = 2, aud = this);
      w2 = new Worker(myidx = 2, t = 2, aud = this);
      w3 = new Worker(myidx = 3, t = 0, aud = this);
      send w1, PeerA, w2;
      send w1, PeerB, w3;
      send w2, PeerA, w3;
      send w2, PeerB, w1;
      send w3, PeerA, w1;
      send w3, PeerB, w2;
      raise unit;
    }
    on unit goto Watch;
  }

  state Watch {
    entry { skip; }
    on TaskDone goto Count;
  }

  state Count {
    entry {
      done = done + 1;
      assert done <= total; // task conservation
      raise unit;
    }
    on unit goto Watch;
  }
}

main Boss();
`
}

// Package psamples embeds the P programs used by the examples, tests, and
// the benchmark harness: the quickstart ping-pong, the paper's §2 elevator
// with its ghost environment, the switch-and-LED device driver of §4.1,
// German's cache-coherence protocol, the synthetic USB hub stack of the §6
// case study, and buggy variants of the Figure-7 benchmarks for the
// bug-finding experiment (§5).
package psamples

// Sample pairs a program name with its P source text.
type Sample struct {
	Name   string
	Source string
	// Buggy marks variants seeded with a defect that verification must find.
	Buggy bool
	// Description summarizes what the program models.
	Description string
}

// All returns every embedded sample.
func All() []Sample {
	return []Sample{
		{Name: "pingpong", Source: PingPong, Description: "quickstart: two real machines exchanging ping/pong with payloads"},
		{Name: "elevator", Source: Elevator, Description: "the paper's §2 elevator with ghost User/Door/Timer environment"},
		{Name: "elevator-buggy", Source: ElevatorBuggy, Buggy: true, Description: "elevator with a missing CloseDoor deferral (unhandled event)"},
		{Name: "switchled", Source: SwitchLED, Description: "the §4.1 switch-and-LED device driver with ghost environment"},
		{Name: "switchled-buggy", Source: SwitchLEDBuggy, Buggy: true, Description: "switch-and-LED with a dropped state invariant (assertion failure)"},
		{Name: "german", Source: German(3), Description: "German's cache coherence protocol (directory + 3 clients)"},
		{Name: "german-buggy", Source: GermanBuggy(3), Buggy: true, Description: "German's protocol granting exclusive while shared is held"},
		{Name: "ring", Source: Ring(3), Description: "Chang-Roberts leader election on a 3-node token ring"},
		{Name: "ring-buggy", Source: RingBuggy(3), Buggy: true, Description: "leader election with an inverted forwarding comparison (wrong/multiple leaders)"},
		{Name: "boundedbuffer", Source: BoundedBuffer, Description: "capacity-2 bounded buffer with defer-based flow control"},
		{Name: "usb-hsm", Source: USBHub, Description: "synthetic USB hub state machine (HSM) with ghost OS/hardware"},
		{Name: "usb-psm3", Source: USBPort30, Description: "synthetic USB 3.0 port state machine (PSM 3.0)"},
		{Name: "usb-psm2", Source: USBPort20, Description: "synthetic USB 2.0 port state machine (PSM 2.0)"},
		{Name: "usb-dsm", Source: USBDevice, Description: "synthetic USB device state machine (DSM)"},
		{Name: "twophase", Source: TwoPhase(2), Description: "two-phase commit (coordinator + 2 participants, ghost client, atomicity monitor)"},
		{Name: "twophase-buggy", Source: TwoPhaseBuggy(2), Buggy: true, Description: "two-phase commit with an off-by-one commit quorum (mixed commit/abort outcome)"},
		{Name: "raft", Source: Raft(), Description: "raft-style leader election (3 servers, 2 terms, at-most-one-leader-per-term monitor)"},
		{Name: "raft-buggy", Source: RaftBuggy(), Buggy: true, Description: "raft-style election granting two votes in one term (two leaders per term)"},
		{Name: "shardkv", Source: ShardKV(), Description: "sharded KV store with key rebalancing and a read-your-writes client session"},
		{Name: "shardkv-buggy", Source: ShardKVBuggy(), Buggy: true, Description: "sharded KV flipping ownership before the handoff lands (stale read)"},
		{Name: "worksteal", Source: WorkSteal(), Description: "work-stealing scheduler (3 symmetric workers, task-conservation monitor)"},
		{Name: "worksteal-buggy", Source: WorkStealBuggy(), Buggy: true, Description: "work-stealing scheduler with a hot-polling idle loop (liveness violation)"},
	}
}

// ByName returns the sample with the given name, or false.
func ByName(name string) (Sample, bool) {
	for _, s := range All() {
		if s.Name == name {
			return s, true
		}
	}
	return Sample{}, false
}

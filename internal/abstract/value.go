// Package abstract implements parameterized verification of P programs by
// counter abstraction and coverability (the ROADMAP's "parameterized /
// unbounded verification via abstraction" item, following Ganty & Majumdar's
// Petri-net view of asynchronous programs and Liu/Wahl/Lal's partial
// abstract transformers).
//
// Machine instances are grouped into creation-site classes. A class whose
// site provably executes at most once keeps an exact local configuration,
// including a bounded FIFO prefix of its inbox; classes that may be
// instantiated unboundedly are counted per abstract configuration, and
// their inboxes become occurrence counters (multisets) of pending events —
// FIFO order and instance identity are lost soundly: the abstraction
// over-approximates, so it can flag spurious errors but never miss real
// assertion or unhandled-event violations reachable at any instance count.
// A Karp–Miller coverability search with ω-acceleration then decides
// whether an error configuration is coverable for any N.
package abstract

import (
	"fmt"

	"pgo/internal/ir"
)

// intCap bounds the magnitude of exactly-tracked integers. Larger values
// widen to VAnyInt so the abstract value domain stays finite (a requirement
// for termination of the coverability search).
const intCap = 64

// VKind enumerates abstract value kinds. The exact kinds mirror
// core.ValueKind; the Any kinds are the widened points of the domain.
type VKind uint8

const (
	// VNull is exactly the ⊥/null value.
	VNull VKind = iota
	// VBool is an exact boolean (N is 0 or 1).
	VBool
	// VInt is an exact integer with |N| <= intCap.
	VInt
	// VEvent is an exact event constant (N is the EventID).
	VEvent
	// VMach is a reference to some instance of class N. It denotes a unique
	// machine exactly when the class is a singleton.
	VMach
	// VSelf is `this` inside a machine of a non-singleton class: definitely
	// the executing instance, translated to VMach(own class) whenever the
	// value escapes the machine (send payload or init value).
	VSelf
	// VAnyBool is an unknown boolean.
	VAnyBool
	// VAnyInt is an unknown integer.
	VAnyInt
	// VAny is a completely unknown value (any kind, including null).
	VAny
)

// Val is an abstract P value. Vals are small comparable structs so they can
// key queue entries, pool places, and interned configurations.
type Val struct {
	Kind VKind
	N    int64
}

var vNull = Val{Kind: VNull}

func vBool(b bool) Val {
	if b {
		return Val{Kind: VBool, N: 1}
	}
	return Val{Kind: VBool, N: 0}
}

func vInt(n int64) Val {
	if n > intCap || n < -intCap {
		return Val{Kind: VAnyInt}
	}
	return Val{Kind: VInt, N: n}
}

func vEvent(e ir.EventID) Val   { return Val{Kind: VEvent, N: int64(e)} }
func vMach(c classID) Val       { return Val{Kind: VMach, N: int64(c)} }
func (v Val) class() classID    { return classID(v.N) }
func (v Val) isExactBool() bool { return v.Kind == VBool }

// tri is a three-valued truth value.
type tri uint8

const (
	triFalse tri = iota
	triTrue
	triBoth
)

// boolPoss returns which outcomes are possible when v is used where a
// boolean is demanded: true, false, or "other" (null or a non-bool value,
// which the concrete semantics treats as ⊥).
func boolPoss(v Val) (canTrue, canFalse, canOther bool) {
	switch v.Kind {
	case VBool:
		return v.N != 0, v.N == 0, false
	case VAnyBool:
		return true, true, false
	case VAny:
		return true, true, true
	default:
		return false, false, true
	}
}

// intPoss returns whether v can be an integer and whether it can be a
// non-integer (⊥ for arithmetic purposes). exact is valid when v is VInt.
func intPoss(v Val) (canInt, canOther bool, exact bool, n int64) {
	switch v.Kind {
	case VInt:
		return true, false, true, v.N
	case VAnyInt:
		return true, false, false, 0
	case VAny:
		return true, true, false, 0
	default:
		return false, true, false, 0
	}
}

// String renders v for trace labels.
func (v Val) String() string {
	switch v.Kind {
	case VNull:
		return "null"
	case VBool:
		if v.N != 0 {
			return "true"
		}
		return "false"
	case VInt:
		return fmt.Sprintf("%d", v.N)
	case VEvent:
		return fmt.Sprintf("event(%d)", v.N)
	case VMach:
		return fmt.Sprintf("mach(c%d)", v.N)
	case VSelf:
		return "this"
	case VAnyBool:
		return "bool(*)"
	case VAnyInt:
		return "int(*)"
	default:
		return "*"
	}
}

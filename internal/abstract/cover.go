package abstract

import (
	"fmt"
	"slices"

	"pgo/internal/analysis"
	"pgo/internal/core"
	"pgo/internal/ir"
)

// kmNode is one node of the Karp–Miller coverability tree. The incoming
// edge (fired place, optional consumed pool place, effect) is stored
// compactly so counterexample traces can be rendered lazily by walking the
// parent chain.
type kmNode struct {
	m      marking
	parent *kmNode
	// exact: every edge from the root took only decisions a concrete
	// execution could take (no abstraction-induced branching, no pool
	// reordering). An error reached exactly is a definite violation.
	exact bool
	fired int32 // cfg place that stepped; -1 at the root
	pool  int32 // pool place consumed by the delivery; -1 if none
	eff   effect
	depth int32
}

// errRecord is one deduplicated abstract error outcome.
type errRecord struct {
	info  errInfo
	node  *kmNode // node at which the error edge fired
	pool  int32
	eff   effect
	exact bool
}

// errSigKey identifies an error class for deduplication.
type errSigKey struct {
	kind  uint8
	mtype ir.MachineTypeID
	state string
	event ir.EventID
	hasEv bool
}

// maxErrSigs caps the distinct error signatures collected per run.
const maxErrSigs = 32

// engine drives the coverability search.
type engine struct {
	t  *tr
	pf *analysis.PORFacts

	visited map[string]struct{}
	queue   []*kmNode

	errs     map[errSigKey]*errRecord
	errOrd   []errSigKey
	omegas   map[poolKey]struct{}
	omegaOrd []poolKey

	markings  int
	reduced   int // markings expanded with a singleton ample set
	truncated bool
	buf       []byte
	fireBuf   []int32 // reusable sorted-fire-order scratch for expand
}

func newEngine(t *tr) *engine {
	return &engine{
		t:       t,
		pf:      t.por,
		visited: map[string]struct{}{},
		errs:    map[errSigKey]*errRecord{},
		omegas:  map[poolKey]struct{}{},
	}
}

// run explores the coverability tree from the initial marking.
func (e *engine) run(init marking) {
	root := &kmNode{m: init, exact: true, fired: -1, pool: -1}
	e.enqueue(root)
	for len(e.queue) > 0 && e.t.unsupported == "" {
		if e.markings >= e.t.opts.MaxMarkings {
			e.truncated = true
			return
		}
		n := e.queue[0]
		e.queue = e.queue[1:]
		e.markings++
		e.expand(n)
	}
}

// enqueue adds n to the frontier; false if its marking was already visited.
// With symmetry enabled, the visited set is keyed by the orbit-canonical
// encoding, so only one representative per symmetry orbit is explored.
func (e *engine) enqueue(n *kmNode) bool {
	var key string
	if e.t.sym != nil {
		key = e.t.sym.canonKey(n.m)
	} else {
		key, e.buf = n.m.key(e.buf)
	}
	if _, ok := e.visited[key]; ok {
		return false
	}
	e.visited[key] = struct{}{}
	e.queue = append(e.queue, n)
	return true
}

// expand fires every enabled place of n's marking, unless a POR-reduced
// expansion commits to a single token.
func (e *engine) expand(n *kmNode) {
	if e.expandReduced(n) {
		return
	}
	in := e.t.in
	// Fire in place-id order: map iteration order would otherwise vary the
	// worklist order run to run, and with it the marking count and the
	// shape of counterexample traces. The analysis is order-insensitive in
	// its verdicts, but reproducible numbers matter for goldens and
	// benchmarks.
	fires := e.fireBuf[:0]
	for p, cnt := range n.m {
		if cnt > 0 {
			fires = append(fires, p)
		}
	}
	slices.Sort(fires)
	e.fireBuf = fires
	for _, p := range fires {
		pl := in.places[p]
		if pl.cfg == nil {
			continue // pool places never fire on their own
		}
		meta := in.metas[p]
		if meta.enabled {
			e.apply(n, p, -1, e.t.closureRun(p))
			continue
		}
		// At rest: deliver. The exact prefix is scanned first — a
		// deliverable prefix entry is strictly ahead of every pooled entry,
		// so while one exists the FIFO-exact prefix dequeue is the only
		// transition. Only when the prefix yields nothing may a pooled
		// (order-abstracted) entry be delivered.
		if firstDeliverable(pl.cfg, meta) >= 0 {
			e.apply(n, p, -1, e.t.closureDeliverPrefix(p))
			continue
		}
		for _, poolID := range in.poolsByClass[meta.class] {
			if n.m.get(poolID) <= 0 {
				continue
			}
			pk := in.places[poolID].pool
			if !meta.deliv[pk.ev] {
				continue // suppressed by the effective deferred set
			}
			e.apply(n, p, poolID, e.t.closureDeliverPool(p, pk))
		}
	}
}

// apply routes the effects of firing place fired (consuming poolID if ≥ 0)
// into successor nodes and error records, returning the number of new
// frontier nodes produced.
func (e *engine) apply(n *kmNode, fired int32, poolID int32, effs []effect) int {
	in := e.t.in
	base := n.m.clone()
	base.add(fired, -1)
	if poolID >= 0 {
		base.add(poolID, -1)
	}
	added := 0
	for _, eff := range effs {
		switch eff.kind {
		case oUnsup:
			return added
		case oErr:
			e.recordErr(n, fired, poolID, eff)
		case oRest:
			succ := base.clone()
			succ.add(eff.next, 1)
			added += e.child(n, fired, poolID, eff, succ, eff.exact)
		case oHalt:
			added += e.child(n, fired, poolID, eff, base.clone(), eff.exact)
		case oNew:
			if e.t.singleton(eff.childClass) && e.classAlive(base, eff.childClass) {
				// The singleton classification was refuted dynamically (a
				// second instance while the first lives) — bail out rather
				// than risk an unsound identity collapse.
				e.t.unsup("singleton creation site re-executed while its instance is alive")
				return added
			}
			succ := base.clone()
			succ.add(eff.next, 1)
			succ.add(eff.child, 1)
			added += e.child(n, fired, poolID, eff, succ, eff.exact)
		case oSend:
			if eff.folded {
				succ := base.clone()
				succ.add(eff.next, 1)
				if eff.poolAdd != nil {
					succ.add(in.poolPlace(*eff.poolAdd), 1)
				}
				added += e.child(n, fired, poolID, eff, succ, eff.exact)
				continue
			}
			added += e.applyCrossSend(n, fired, poolID, eff, base)
		}
	}
	return added
}

// applyCrossSend routes a cross-machine send to its receiver class.
func (e *engine) applyCrossSend(n *kmNode, fired int32, poolID int32, eff effect, base marking) int {
	in := e.t.in
	tc := eff.tgtClass
	added := 0
	if e.t.singleton(tc) {
		found := false
		for p, cnt := range base {
			if cnt <= 0 {
				continue
			}
			pl := in.places[p]
			if pl.cfg == nil || pl.cfg.class != tc {
				continue
			}
			found = true
			for _, alt := range e.t.enqueue(pl.cfg, eff.ev, eff.val) {
				succ := base.clone()
				succ.add(p, -1)
				succ.add(eff.next, 1)
				succ.add(in.intern(alt.c), 1)
				if alt.poolAdd != nil {
					succ.add(in.poolPlace(*alt.poolAdd), 1)
				}
				added += e.child(n, fired, poolID, eff, succ, eff.exact && alt.exact)
			}
		}
		if !found {
			// The singleton's token is gone: it halted (or was never
			// created, impossible while a reference exists). SEND-FAIL-2.
			e.recordErr(n, fired, poolID, e.sendDeletedEffect(eff, eff.exact))
		}
		return added
	}
	// Many class: the pooled inbox is shared by all instances.
	if !e.classAlive(base, tc) {
		e.recordErr(n, fired, poolID, e.sendDeletedEffect(eff, eff.exact))
		return added
	}
	succ := base.clone()
	succ.add(eff.next, 1)
	succ.add(in.poolPlace(poolKey{class: tc, ev: eff.ev, val: eff.val}), 1)
	added += e.child(n, fired, poolID, eff, succ, eff.exact)
	if e.t.canHalt[e.t.classes[tc].typ] {
		// Some instance is alive, but the referenced one may have halted.
		e.recordErr(n, fired, poolID, e.sendDeletedEffect(eff, false))
	}
	return added
}

func (e *engine) sendDeletedEffect(send effect, exact bool) effect {
	return effect{
		kind:  oErr,
		exact: exact,
		err: errInfo{
			kind:  core.ErrSendDeleted,
			mtype: e.t.classes[e.t.in.metas[send.next].class].typ,
			event: send.ev,
			hasEv: true,
			detail: fmt.Sprintf("send %s to a deleted %s instance",
				e.t.p.Events[send.ev].Name, e.t.className(send.tgtClass)),
		},
	}
}

// classAlive reports whether any cfg token of class c exists in m.
func (e *engine) classAlive(m marking, c classID) bool {
	for p, cnt := range m {
		if cnt <= 0 {
			continue
		}
		if pl := e.t.in.places[p]; pl.cfg != nil && pl.cfg.class == c {
			return true
		}
	}
	return false
}

// child accelerates succ against n's ancestor chain, then enqueues it,
// returning 1 if the successor was new to the frontier.
func (e *engine) child(n *kmNode, fired int32, poolID int32, eff effect, succ marking, edgeExact bool) int {
	// ω-acceleration: an ancestor marking strictly dominated by succ
	// witnesses a pumpable transition sequence, so every strictly grown
	// place can be pumped arbitrarily high. Iterate to a fixpoint: new ωs
	// can expose further dominated ancestors.
	for changed := true; changed; {
		changed = false
		for anc := n; anc != nil; anc = anc.parent {
			if !anc.m.leq(succ) || succ.leq(anc.m) {
				continue
			}
			for p, v := range succ {
				if v != omega && v > anc.m.get(p) {
					succ[p] = omega
					changed = true
					if pl := e.t.in.places[p]; pl.cfg == nil {
						e.recordOmega(pl.pool)
					}
				}
			}
		}
	}
	if e.enqueue(&kmNode{
		m: succ, parent: n, exact: n.exact && edgeExact,
		fired: fired, pool: poolID, eff: eff, depth: n.depth + 1,
	}) {
		return 1
	}
	return 0
}

func (e *engine) recordOmega(pk poolKey) {
	if _, ok := e.omegas[pk]; ok {
		return
	}
	e.omegas[pk] = struct{}{}
	e.omegaOrd = append(e.omegaOrd, pk)
}

func (e *engine) recordErr(n *kmNode, fired int32, poolID int32, eff effect) {
	exact := n.exact && eff.exact
	key := errSigKey{
		kind: uint8(eff.err.kind), mtype: eff.err.mtype,
		state: eff.err.state, event: eff.err.event, hasEv: eff.err.hasEv,
	}
	if rec, ok := e.errs[key]; ok {
		// Keep the first witness, but upgrade to a definite one when found.
		if exact && !rec.exact {
			rec.node, rec.pool, rec.eff, rec.exact = n, poolID, eff, true
		}
		return
	}
	if len(e.errOrd) >= maxErrSigs {
		return
	}
	e.errs[key] = &errRecord{info: eff.err, node: n, pool: poolID, eff: eff, exact: exact}
	e.errOrd = append(e.errOrd, key)
}

// --- trace rendering ---

// trace renders the abstract counterexample ending in rec: the edge labels
// from the root to the error.
func (e *engine) trace(rec *errRecord) []string {
	var nodes []*kmNode
	for n := rec.node; n != nil; n = n.parent {
		nodes = append(nodes, n)
	}
	var out []string
	for i := len(nodes) - 1; i >= 0; i-- {
		n := nodes[i]
		if n.fired < 0 {
			continue // root
		}
		out = append(out, e.edgeLabel(n.fired, n.pool, n.eff))
	}
	out = append(out, e.edgeLabel(rec.node.fired, rec.pool, rec.eff))
	return out
}

func (e *engine) edgeLabel(fired int32, poolID int32, eff effect) string {
	t := e.t
	cls := "?"
	if fired >= 0 {
		cls = t.className(t.in.metas[fired].class)
	}
	prefix := cls
	if poolID >= 0 {
		pk := t.in.places[poolID].pool
		prefix = fmt.Sprintf("%s ← %s (pooled)", cls, t.p.Events[pk.ev].Name)
	} else if fired >= 0 {
		if pl := t.in.places[fired]; pl.cfg != nil && pl.cfg.atRest() {
			if idx := firstDeliverable(pl.cfg, t.in.metas[fired]); idx >= 0 {
				prefix = fmt.Sprintf("%s ← %s", cls, t.p.Events[pl.cfg.queue[idx].ev].Name)
			}
		}
	}
	switch eff.kind {
	case oRest:
		return fmt.Sprintf("%s runs to rest", prefix)
	case oSend:
		if eff.folded {
			return fmt.Sprintf("%s sends %s to itself", prefix, t.p.Events[eff.ev].Name)
		}
		return fmt.Sprintf("%s sends %s to %s", prefix, t.p.Events[eff.ev].Name, t.className(eff.tgtClass))
	case oNew:
		return fmt.Sprintf("%s creates %s", prefix, t.className(eff.childClass))
	case oHalt:
		return fmt.Sprintf("%s deletes itself", prefix)
	case oErr:
		return fmt.Sprintf("%s: %s", prefix, eff.err.describe(t.p))
	default:
		return prefix
	}
}

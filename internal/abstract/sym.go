package abstract

import (
	"sort"

	"pgo/internal/ir"
)

// Symmetry reduction over interchangeable singleton classes. A program like
// german creates one client (and one driver) per index from textually
// repeated creation sites; the resulting singleton classes are isomorphic —
// the abstract transition system is invariant under any permutation π of
// same-type singleton classes applied to class ids and to every VMach
// reference. The search therefore only needs one representative per orbit:
// the visited set deduplicates markings by the lexicographically least
// encoding over all π. This collapses both the product of symmetric local
// states and, crucially, the orderings of symmetric entries inside other
// machines' inbox prefixes (the directory machine's deferred requests from
// k clients contribute k! orderings per orbit).
//
// Soundness: π must be an automorphism. Same-type singleton classes differ
// only in their creation site, and a singleton classification already
// guarantees the site fires at most once on any path (buildClasses demotes
// re-runnable sites to counted classes), so site identity never re-enters
// the semantics after creation; everything else the engine consults —
// machine type, liveness, handler tables, halting capability — is keyed by
// type, which π preserves. Exploring only orbit representatives preserves
// coverability of every error class: if an error is reachable from a
// dropped marking m, it is reachable (with classes renamed) from the
// visited π(m). Note the interplay with ω-acceleration is one-sided:
// acceleration still runs on each node's own ancestor chain, and symmetry
// can only remove frontier work, so P401/P402 verdicts are unaffected; at
// worst a symmetric domination goes undetected and an ω (P403) is found
// later or not at all — a loss of completeness, never of soundness.
//
// The main machine's class is excluded: it is created by the INIT rule, not
// a site, and is unique per program anyway.

// maxSymPerms bounds the permutation group size; beyond it the reduction is
// disabled (the per-enqueue canonicalization cost would exceed its savings).
const maxSymPerms = 1024

// symmetry holds the enumerated permutation group and per-permutation place
// translation caches.
type symmetry struct {
	t *tr
	// perms[k] maps each class id to its image; the identity is omitted.
	perms [][]classID
	// moved[k][c] reports perms[k] displaces class c (fast path filter).
	moved [][]bool
	// cache[k] memoizes place translation under perms[k].
	cache []map[int32]int32
	buf   []byte
}

// buildSymmetry enumerates the symmetry group, or returns nil when the
// program has no interchangeable classes (or too many to enumerate).
func buildSymmetry(t *tr) *symmetry {
	byType := map[ir.MachineTypeID][]classID{}
	for _, ci := range t.classes {
		if ci.singleton && ci.site != nil {
			byType[ci.typ] = append(byType[ci.typ], ci.id)
		}
	}
	var types []ir.MachineTypeID
	for mt, g := range byType {
		if len(g) >= 2 {
			types = append(types, mt)
		}
	}
	if len(types) == 0 {
		return nil
	}
	sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
	total := 1
	var groups [][]classID
	for _, mt := range types {
		g := byType[mt]
		sort.Slice(g, func(i, j int) bool { return g[i] < g[j] })
		groups = append(groups, g)
		for f := 2; f <= len(g); f++ {
			total *= f
		}
		if total > maxSymPerms {
			return nil
		}
	}

	identity := make([]classID, len(t.classes))
	for i := range identity {
		identity[i] = classID(i)
	}
	vecs := [][]classID{identity}
	for _, g := range groups {
		var next [][]classID
		permutations(len(g), func(idx []int) {
			for _, base := range vecs {
				v := append([]classID(nil), base...)
				for i, j := range idx {
					v[g[i]] = g[j]
				}
				next = append(next, v)
			}
		})
		vecs = next
	}

	s := &symmetry{t: t}
	for _, v := range vecs {
		id := true
		mv := make([]bool, len(v))
		for c, img := range v {
			if classID(c) != img {
				id = false
				mv[c] = true
			}
		}
		if id {
			continue
		}
		s.perms = append(s.perms, v)
		s.moved = append(s.moved, mv)
		s.cache = append(s.cache, map[int32]int32{})
	}
	if len(s.perms) == 0 {
		return nil
	}
	return s
}

// permutations invokes fn with every permutation of [0..n) (as an index
// slice reused across calls).
func permutations(n int, fn func([]int)) {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			fn(idx)
			return
		}
		for i := k; i < n; i++ {
			idx[k], idx[i] = idx[i], idx[k]
			rec(k + 1)
			idx[k], idx[i] = idx[i], idx[k]
		}
	}
	rec(0)
}

func (s *symmetry) permVal(k int, v Val) Val {
	if v.Kind == VMach && s.moved[k][v.class()] {
		return vMach(s.perms[k][v.class()])
	}
	return v
}

// touches reports whether perms[k] affects c at all.
func (s *symmetry) touches(k int, c *cfg) bool {
	mv := s.moved[k]
	if mv[c.class] {
		return true
	}
	hit := func(v Val) bool { return v.Kind == VMach && mv[v.class()] }
	for _, v := range c.vars {
		if hit(v) {
			return true
		}
	}
	for _, q := range c.queue {
		if hit(q.val) {
			return true
		}
	}
	return hit(c.msg) || hit(c.arg) || hit(c.raisedVal)
}

// permPlace translates place p under perms[k], interning the permuted
// configuration or pool place on first use.
func (s *symmetry) permPlace(k int, p int32) int32 {
	if out, ok := s.cache[k][p]; ok {
		return out
	}
	in := s.t.in
	pl := in.places[p]
	var out int32
	if pl.cfg == nil {
		pk := pl.pool
		pk.class = s.perms[k][pk.class]
		pk.val = s.permVal(k, pk.val)
		out = in.poolPlace(pk)
	} else if !s.touches(k, pl.cfg) {
		out = p
	} else {
		c := pl.cfg.clone()
		c.class = s.perms[k][c.class]
		for i := range c.vars {
			c.vars[i] = s.permVal(k, c.vars[i])
		}
		for i := range c.queue {
			c.queue[i].val = s.permVal(k, c.queue[i].val)
		}
		c.msg = s.permVal(k, c.msg)
		c.arg = s.permVal(k, c.arg)
		c.raisedVal = s.permVal(k, c.raisedVal)
		out = in.intern(c)
	}
	s.cache[k][p] = out
	return out
}

// canonKey returns the lexicographically least encoding of m over the
// symmetry group (including the identity): the orbit-canonical visited key.
func (s *symmetry) canonKey(m marking) string {
	var best string
	best, s.buf = m.key(s.buf)
	pm := make(marking, len(m))
	for k := range s.perms {
		for p := range pm {
			delete(pm, p)
		}
		for p, cnt := range m {
			pm[s.permPlace(k, p)] = cnt
		}
		var key string
		key, s.buf = pm.key(s.buf)
		if key < best {
			best = key
		}
	}
	return best
}

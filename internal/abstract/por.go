package abstract

import (
	"sort"

	"pgo/internal/ir"
)

// Partial-order reduction for the coverability engine, mirroring the
// singleton-ample-set reduction of internal/check/por.go. At a marking,
// instead of firing every live token, the engine may commit to a single
// token x when every macro step of x commutes with anything the rest of the
// system can do before x moves.
//
// The abstract engine's commutation argument is simpler than the concrete
// explorer's in two ways, both consequences of the always-cut-at-rest
// closure design:
//
//   - Closures never dequeue mid-run, so a macro step reads its own inbox
//     exactly once (the initial delivery) and never observes emptiness.
//     The concrete reduction's block-outcome condition disappears: an
//     x-step that ends at rest commutes with coalition appends to x
//     regardless of whether anything is deliverable afterwards.
//   - There is no global id counter: machine creation just adds a class
//     token, and counter increments commute, so creations need no mutual
//     exclusion against coalition creations.
//
// What remains is exactly the ⊕-inbox discipline: the event x dequeues must
// not be appendable by the coalition (a removal could otherwise flip a
// later dedup decision), appends to one inbox never commute with each other
// (so x's sends must target frozen tokens, and self-appends or halts demand
// that nobody can send to x at all).
//
// The reduction is gated to markings whose live tokens are all singletons
// with unspilled prefixes and whose pools are empty. This keeps tokens in
// bijection with machine instances — the regime where the interleaving
// explosion actually bites (german, the usb machines); counted markings are
// already collapsed by symmetry and stay small.
//
// Soundness also needs the cycle proviso (the ignoring problem): a reduced
// node must not postpone the rest of the system forever around a cycle. The
// engine uses the visited-set variant, as in the concrete explorers: if no
// ample successor is new to the search frontier, the node is expanded fully
// after all.

// porMaxSeeds bounds the ample-seed candidates tried per marking.
const porMaxSeeds = 4

// porEligible reports whether the reduction's token/instance bijection
// holds at m: every place with tokens is a singleton-class configuration
// with an unspilled prefix.
func (e *engine) porEligible(m marking) bool {
	for p, cnt := range m {
		if cnt <= 0 {
			continue
		}
		pl := e.t.in.places[p]
		if pl.cfg == nil {
			return false // pending pool tokens: order-abstracted inboxes
		}
		if !e.t.singleton(pl.cfg.class) || pl.cfg.spilled || cnt != 1 {
			return false
		}
	}
	return true
}

// seedMoves returns token p's full transition set at m: the run closure
// when enabled, the prefix-delivery closure when something is deliverable.
// delivEv is the dequeued event (or -1); ok is false when p cannot move.
func (e *engine) seedMoves(p int32) (effs []effect, delivEv ir.EventID, ok bool) {
	pl := e.t.in.places[p]
	meta := e.t.in.metas[p]
	if meta.enabled {
		return e.t.closureRun(p), -1, true
	}
	idx := firstDeliverable(pl.cfg, meta)
	if idx < 0 {
		return nil, -1, false
	}
	return e.t.closureDeliverPrefix(p), pl.cfg.queue[idx].ev, true
}

// coalition accumulates what the tokens that can act before x moves are
// able to do, by class for actors and by machine type for capabilities.
type coalition struct {
	e       *engine
	act     map[classID]bool
	carried map[classID]bool
	canSend []ir.EventSet
	spawned []bool
}

func (co *coalition) addStateCaps(t ir.MachineTypeID, s ir.StateID) {
	pf := co.e.pf
	for ti := range co.canSend {
		co.canSend[ti] = co.canSend[ti].Union(pf.SendEventsFrom[t][s][ti])
	}
	for _, sp := range pf.SpawnsFrom[t][s] {
		co.addSpawn(sp)
	}
}

func (co *coalition) addSpawn(t ir.MachineTypeID) {
	if co.spawned[t] {
		return
	}
	co.spawned[t] = true
	co.addStateCaps(t, co.e.pf.InitState[t])
}

// join adds the token of class c (at configuration cfg) to the coalition:
// the classes it holds references to become nameable, and the capabilities
// of every stack frame's state count (a pop resumes a lower frame).
func (co *coalition) join(c *cfg) {
	co.act[c.class] = true
	carry := func(v Val) {
		if v.Kind == VMach {
			co.carried[v.class()] = true
		}
	}
	for _, v := range c.vars {
		carry(v)
	}
	for _, q := range c.queue {
		carry(q.val)
	}
	carry(c.msg)
	carry(c.arg)
	carry(c.raisedVal)
	t := co.e.t.classes[c.class].typ
	for i := range c.stack {
		co.addStateCaps(t, c.stack[i].state)
	}
}

// ample reports whether {x} is a valid singleton ample set at m, given x's
// transition effects and dequeued event. Error effects are excluded: they
// are recorded as violations at expansion and stay reachable under any
// reordering of steps the remaining conditions accept.
func (e *engine) ample(m marking, x int32, effs []effect, delivEv ir.EventID) bool {
	t := e.t
	xClass := t.in.places[x].cfg.class
	xType := t.classes[xClass].typ

	co := &coalition{
		e:       e,
		act:     map[classID]bool{},
		carried: map[classID]bool{},
		canSend: make([]ir.EventSet, len(t.p.Machines)),
		spawned: make([]bool, len(t.p.Machines)),
	}
	type tok struct {
		place int32
		cfg   *cfg
	}
	var live []tok
	for p, cnt := range m {
		if cnt <= 0 || p == x {
			continue
		}
		pl := t.in.places[p]
		live = append(live, tok{p, pl.cfg})
		meta := t.in.metas[p]
		if meta.enabled || firstDeliverable(pl.cfg, meta) >= 0 {
			co.join(pl.cfg)
		}
	}
	// Wake closure: a frozen token joins if the coalition holds its class
	// reference and can send to its type — the send could un-block it.
	for changed := true; changed; {
		changed = false
		for _, tk := range live {
			c := tk.cfg.class
			if co.act[c] || !co.carried[c] {
				continue
			}
			if !co.canSend[t.classes[c].typ].IsEmpty() {
				co.join(tk.cfg)
				changed = true
			}
		}
	}
	var eOut ir.EventSet
	if co.carried[xClass] {
		eOut = co.canSend[xType]
	}

	if delivEv >= 0 && eOut.Contains(delivEv) {
		return false // x's removal could flip a coalition append's ⊕ dedup
	}
	nonErr := 0
	for i := range effs {
		eff := &effs[i]
		switch eff.kind {
		case oErr:
			continue
		case oUnsup:
			return false
		case oHalt:
			if !eOut.IsEmpty() {
				return false // send-to-halted errors in one order only
			}
		case oSend:
			if eff.folded {
				if !eOut.IsEmpty() {
					return false // two appenders to one ⊕ inbox
				}
			} else if co.act[eff.tgtClass] {
				return false // the receiver must stay frozen under x's append
			}
		}
		nonErr++
	}
	return nonErr > 0
}

// expandReduced attempts a POR-reduced expansion of n. It returns true when
// a valid ample seed was found AND its successors produced new frontier
// work (the visited-set cycle proviso); the caller falls back to full
// expansion otherwise.
func (e *engine) expandReduced(n *kmNode) bool {
	if e.pf == nil || !e.porEligible(n.m) {
		return false
	}
	var places []int32
	for p, cnt := range n.m {
		if cnt > 0 {
			places = append(places, p)
		}
	}
	sort.Slice(places, func(i, j int) bool { return places[i] < places[j] })
	tried := 0
	for _, p := range places {
		if tried >= porMaxSeeds {
			break
		}
		effs, delivEv, ok := e.seedMoves(p)
		if !ok {
			continue
		}
		tried++
		if !e.ample(n.m, p, effs, delivEv) {
			continue
		}
		if e.apply(n, p, -1, effs) > 0 {
			e.reduced++
			return true
		}
		// No new work from the ample set: the proviso fails (a cycle could
		// starve the rest of the system); expand fully. The already-applied
		// successors are deduplicated by the visited set.
		return false
	}
	return false
}

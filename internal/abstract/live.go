package abstract

import "pgo/internal/ir"

// Live-variable analysis powering dead-value scrubbing of resting
// configurations. A machine variable that is written before it is read on
// every path out of a rest point carries no information there, yet its
// stale value splits otherwise-identical markings — the directory machine
// of german, for instance, parks the id of the last requester in a
// variable that every handler overwrites first, multiplying its Idle
// configurations by the client count. Scrubbing dead variables to ⊥ at
// intern time collapses those states soundly: by definition of liveness no
// abstract run can observe the difference.
//
// The analysis is a standard backward may-read-before-write fixpoint over
// each machine's state graph, made conservative wherever control flow gets
// exotic: a raise flows into the union of every state's binding for the
// event (plus all exit bodies, for the unhandled pop path), loops keep
// their kills, and statements that thread the call stack (leave, return,
// call) or foreign functions fall back to "every variable the machine
// mentions anywhere". Frames below the top are covered at scrub time by
// unioning live sets over the whole stack, and configurations with a
// pushed return continuation are not scrubbed at all — the continuation's
// reads are not modeled.

// varset is a bitset over a machine's variable ids.
type varset []uint64

func newVarset(n int) varset { return make(varset, (n+63)/64) }

func (v varset) has(i ir.VarID) bool { return v[i/64]&(1<<(uint(i)%64)) != 0 }
func (v varset) set(i ir.VarID)      { v[i/64] |= 1 << (uint(i) % 64) }
func (v varset) clear(i ir.VarID)    { v[i/64] &^= 1 << (uint(i) % 64) }

func (v varset) clone() varset {
	n := make(varset, len(v))
	copy(n, v)
	return n
}

// or unions o into v, reporting whether v changed.
func (v varset) or(o varset) bool {
	changed := false
	for i := range v {
		if n := v[i] | o[i]; n != v[i] {
			v[i] = n
			changed = true
		}
	}
	return changed
}

// liveness holds, per machine and state, the variables that may be read
// before being written once the machine rests in that state.
type liveness struct {
	atRest [][]varset
}

// machLive is the per-machine fixpoint workspace.
type machLive struct {
	p  *ir.Program
	m  *ir.Machine
	nv int
	la []varset // live at rest in state s
	le []varset // live on entering state s (before its entry body)
	h  []varset // live at a `raise e`, over all possible handler states
	// all is the catch-all: every variable the machine reads anywhere.
	all varset
	// exits is the union of every exit body's live-in against an empty
	// live-out — the unhandled-event pop path, folded into every h[e].
	exits varset
}

func computeLiveness(p *ir.Program) *liveness {
	lv := &liveness{atRest: make([][]varset, len(p.Machines))}
	for mi, m := range p.Machines {
		ml := &machLive{p: p, m: m, nv: len(m.Vars)}
		ml.la = make([]varset, len(m.States))
		ml.le = make([]varset, len(m.States))
		ml.h = make([]varset, len(p.Events))
		for s := range m.States {
			ml.la[s] = newVarset(ml.nv)
			ml.le[s] = newVarset(ml.nv)
		}
		for e := range p.Events {
			ml.h[e] = newVarset(ml.nv)
		}
		ml.all = newVarset(ml.nv)
		for _, st := range m.States {
			ml.collectUses(st.Entry)
			ml.collectUses(st.Exit)
		}
		for _, a := range m.Actions {
			ml.collectUses(a.Body)
		}
		ml.exits = newVarset(ml.nv)

		for changed := true; changed; {
			changed = false
			ex := newVarset(ml.nv)
			for _, st := range m.States {
				ex.or(ml.liveBody(st.Exit, newVarset(ml.nv)))
			}
			changed = ml.exits.or(ex) || changed
			for e := range p.Events {
				changed = ml.h[e].or(ml.handlerLive(ir.EventID(e))) || changed
			}
			for si, st := range m.States {
				changed = ml.le[si].or(ml.liveBody(st.Entry, ml.la[si].clone())) || changed
				changed = ml.la[si].or(ml.restLive(st)) || changed
			}
		}
		lv.atRest[mi] = ml.la
	}
	return lv
}

// restLive computes the contribution of state st's own bindings to its
// live-at-rest set: each deliverable event's handler path.
func (ml *machLive) restLive(st *ir.State) varset {
	out := newVarset(ml.nv)
	for e := range ml.p.Events {
		out.or(ml.bindingLive(st, ir.EventID(e)))
	}
	return out
}

// bindingLive is the live-in of delivering event e while st is the current
// state, considering only st's own bindings (inherited actions belong to
// the caller's state and are covered by the stack union at scrub time).
func (ml *machLive) bindingLive(st *ir.State, e ir.EventID) varset {
	out := newVarset(ml.nv)
	switch tr := st.Trans[e]; tr.Kind {
	case ir.TransStep:
		out.or(ml.liveBody(st.Exit, ml.le[tr.Target].clone()))
	case ir.TransCall:
		// The callee runs, then a return resumes rest in st.
		out.or(ml.le[tr.Target])
		out.or(ml.la[st.ID])
	}
	if a := st.Action[e]; a != ir.NoAction {
		// The action body runs and the machine rests in st again.
		out.or(ml.liveBody(ml.m.Actions[a].Body, ml.la[st.ID].clone()))
	}
	return out
}

// handlerLive is the live set at a `raise e`: the event resolves against
// the current state, which the analysis does not track, so every state's
// binding counts, plus every exit body for the unhandled pop path.
func (ml *machLive) handlerLive(e ir.EventID) varset {
	out := ml.exits.clone()
	for _, st := range ml.m.States {
		out.or(ml.bindingLive(st, e))
	}
	return out
}

// liveBody is the backward transfer of a statement list: out is consumed
// (mutated) and returned.
func (ml *machLive) liveBody(body []*ir.Stmt, out varset) varset {
	for i := len(body) - 1; i >= 0; i-- {
		s := body[i]
		switch s.Op {
		case ir.SSkip:
		case ir.SAssign:
			out.clear(s.Var)
			ml.exprUses(s.Expr, out)
		case ir.SAssert:
			ml.exprUses(s.Expr, out)
		case ir.SIf:
			t := ml.liveBody(s.Body, out.clone())
			t.or(ml.liveBody(s.Else, out))
			out = t
			ml.exprUses(s.Expr, out)
		case ir.SWhile:
			// One conservative unrolling: the body may or may not run, and
			// kills inside it do not count (it can iterate).
			var gen varset
			ml.collectInto(s.Body, &gen)
			if gen != nil {
				out.or(gen)
			}
			ml.exprUses(s.Expr, out)
		case ir.SSend:
			ml.exprUses(s.Target, out)
			ml.exprUses(s.Expr, out)
		case ir.SNew:
			out.clear(s.Var)
			for _, init := range s.Inits {
				ml.exprUses(init.Expr, out)
			}
		case ir.SRaise:
			out = ml.h[s.Event].clone()
			ml.exprUses(s.Expr, out)
		case ir.SDelete:
			out = newVarset(ml.nv)
		default:
			// SLeave, SReturn, SCallState, SForeign: stack- or host-
			// dependent continuations — assume everything stays readable.
			out = ml.all.clone()
		}
	}
	return out
}

// exprUses adds e's variable reads to out.
func (ml *machLive) exprUses(e *ir.Expr, out varset) {
	if e == nil {
		return
	}
	if e.Op == ir.EVar {
		out.set(e.Var)
	}
	if e.Op == ir.ECall {
		// A foreign model body may read any variable.
		out.or(ml.all)
	}
	ml.exprUses(e.X, out)
	ml.exprUses(e.Y, out)
	for _, a := range e.Args {
		ml.exprUses(a, out)
	}
}

// collectUses folds every variable read in body into ml.all.
func (ml *machLive) collectUses(body []*ir.Stmt) {
	ir.WalkStmts(body, func(s *ir.Stmt) {
		ml.exprUses(s.Expr, ml.all)
		ml.exprUses(s.Target, ml.all)
		for _, init := range s.Inits {
			ml.exprUses(init.Expr, ml.all)
		}
		for _, a := range s.Args {
			ml.exprUses(a, ml.all)
		}
	})
}

// collectInto lazily builds the read set of body (no kills).
func (ml *machLive) collectInto(body []*ir.Stmt, gen *varset) {
	if *gen == nil {
		*gen = newVarset(ml.nv)
	}
	g := *gen
	ir.WalkStmts(body, func(s *ir.Stmt) {
		ml.exprUses(s.Expr, g)
		ml.exprUses(s.Target, g)
		for _, init := range s.Inits {
			ml.exprUses(init.Expr, g)
		}
		for _, a := range s.Args {
			ml.exprUses(a, g)
		}
	})
}

// scrubDead nulls c's dead variables when c rests with a plain stack (no
// pushed return continuations): a variable survives only if it is live at
// rest in some frame's state.
func (lv *liveness) scrubDead(typ ir.MachineTypeID, c *cfg) {
	for _, fr := range c.stack {
		if fr.ret != nil {
			return
		}
	}
	la := lv.atRest[typ]
	for v := range c.vars {
		live := false
		for _, fr := range c.stack {
			if la[fr.state].has(ir.VarID(v)) {
				live = true
				break
			}
		}
		if !live {
			c.vars[v] = vNull
		}
	}
}

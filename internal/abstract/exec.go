package abstract

import (
	"encoding/binary"
	"fmt"

	"pgo/internal/analysis"
	"pgo/internal/core"
	"pgo/internal/ir"
	"pgo/internal/source"
)

// tr is the translation context: the program, its instance classes, the
// interner, and the closure caches the coverability engine consumes.
type tr struct {
	p       *ir.Program
	classes []*classInfo
	canHalt []bool
	in      *interner
	opts    Options
	facts   *analysis.Report
	// sym is the singleton-class symmetry group; nil when the program has
	// no interchangeable classes.
	sym *symmetry
	// por holds the static independence facts shared by the adaptive
	// prefix heuristic below and the engine's partial-order reduction.
	por *analysis.PORFacts
	// clsPrefix is the effective exact-FIFO prefix per class. Singleton
	// classes reachable by sends from a counted (many) class get prefix 1:
	// unboundedly many senders overflow any finite prefix, so the exact
	// entries buy no precision while their orderings multiply markings —
	// pooling immediately lets ω-acceleration close the inbox off instead.
	clsPrefix []int

	// siteClass maps an SNew statement's Index to its class.
	siteClass map[int]classID

	runCache    map[locID][]effect
	prefixCache map[locID][]effect
	poolCache   map[poolDelivKey][]effect

	// unsupported latches the first construct outside the abstraction's
	// fragment; the analysis then reports VerdictUnsupported.
	unsupported string
	// truncated latches closure-enumeration overflow (too many decision
	// paths); a safe verdict is then downgraded to inconclusive.
	truncated bool
}

type poolDelivKey struct {
	loc locID
	pk  poolKey
}

func newTr(p *ir.Program, opts Options) *tr {
	classes := buildClasses(p)
	t := &tr{
		p:           p,
		classes:     classes,
		canHalt:     typeCanHalt(p),
		in:          newInterner(p, classes),
		opts:        opts,
		facts:       opts.Facts,
		siteClass:   map[int]classID{},
		runCache:    map[locID][]effect{},
		prefixCache: map[locID][]effect{},
		poolCache:   map[poolDelivKey][]effect{},
	}
	for _, ci := range classes {
		if ci.site != nil {
			t.siteClass[ci.site.Index] = ci.id
		}
	}
	t.sym = buildSymmetry(t)
	t.por = analysis.PORIndependence(p)

	manySendsTo := make([]bool, len(p.Machines))
	for _, ci := range classes {
		if ci.singleton {
			continue
		}
		for s := range p.Machines[ci.typ].States {
			for tgt := range p.Machines {
				if !t.por.SendEventsFrom[ci.typ][s][tgt].IsEmpty() {
					manySendsTo[tgt] = true
				}
			}
		}
	}
	t.clsPrefix = make([]int, len(classes))
	for _, ci := range classes {
		t.clsPrefix[ci.id] = opts.QueuePrefix
		if ci.singleton && manySendsTo[ci.typ] {
			t.clsPrefix[ci.id] = 1
		}
	}
	return t
}

func (t *tr) singleton(c classID) bool        { return t.classes[c].singleton }
func (t *tr) classType(c classID) *ir.Machine { return t.p.Machines[t.classes[c].typ] }

// --- effects: the outcomes of one abstract macro step ---

type oKind uint8

const (
	// oRest: the closure reached a rest point (continuation drained); the
	// machine's token moves to eff.next and waits for a delivery.
	oRest oKind = iota
	// oSend: a send completed (a scheduling point). If folded, the
	// delivery was already applied to eff.next (self-sends); otherwise the
	// engine routes (eff.ev, eff.val) to eff.tgtClass.
	oSend
	// oNew: a machine was created; eff.child is its initial location.
	oNew
	// oHalt: the machine deleted itself; its token disappears.
	oHalt
	// oErr: an error transition fired.
	oErr
	// oUnsup: the program left the abstraction's supported fragment.
	oUnsup
)

// errInfo captures an abstract error outcome.
type errInfo struct {
	kind   core.ErrKind
	mtype  ir.MachineTypeID
	state  string
	event  ir.EventID
	hasEv  bool
	span   source.Span
	detail string
}

type effect struct {
	kind  oKind
	exact bool // the path to this outcome took no abstraction-induced branch

	next locID // oRest, oSend, oNew: the stepping machine's new location

	// oSend
	ev       ir.EventID
	val      Val
	tgtClass classID
	folded   bool
	poolAdd  *poolKey

	// oNew
	child      locID
	childClass classID

	err errInfo // oErr
}

// --- the decision odometer ---

// decider enumerates the branch strings of one closure: each nondeterministic
// point (a `*` choice, or a branch forced open by an abstract value) is a
// positioned decision with a fixed arity, and advance() steps through the
// cartesian product depth-first.
type decider struct {
	bits    []uint8
	arity   []uint8
	inexact []bool
	pos     int
	// runInexact reports whether any decision visited by the current run
	// was abstraction-induced (as opposed to genuine program
	// nondeterminism, which concrete executions branch on too).
	runInexact bool
}

func (d *decider) next(arity int, inexact bool) int {
	if d.pos == len(d.bits) {
		d.bits = append(d.bits, 0)
		d.arity = append(d.arity, uint8(arity))
		d.inexact = append(d.inexact, inexact)
	}
	b := d.bits[d.pos]
	if d.inexact[d.pos] {
		d.runInexact = true
	}
	d.pos++
	return int(b)
}

// advance moves to the next decision string; false when exhausted.
func (d *decider) advance() bool {
	d.bits = d.bits[:d.pos]
	d.arity = d.arity[:d.pos]
	d.inexact = d.inexact[:d.pos]
	i := d.pos - 1
	for i >= 0 && d.bits[i]+1 >= d.arity[i] {
		i--
	}
	if i < 0 {
		return false
	}
	d.bits[i]++
	d.bits = d.bits[:i+1]
	d.arity = d.arity[:i+1]
	d.inexact = d.inexact[:i+1]
	d.pos = 0
	d.runInexact = false
	return true
}

// --- closure entry points (cached) ---

// closureRun returns the macro-step outcomes of an enabled location.
func (t *tr) closureRun(loc locID) []effect {
	if effs, ok := t.runCache[loc]; ok {
		return effs
	}
	base := t.in.places[loc].cfg
	effs := t.enumerate(func() *cfg { return base.clone() })
	t.runCache[loc] = effs
	return effs
}

// closureDeliverPrefix returns the outcomes of delivering the first
// deliverable prefix entry at a resting location. Exact: the prefix scan is
// the true DEQUEUE rule.
func (t *tr) closureDeliverPrefix(loc locID) []effect {
	if effs, ok := t.prefixCache[loc]; ok {
		return effs
	}
	base := t.in.places[loc].cfg
	meta := t.in.metas[loc]
	idx := firstDeliverable(base, meta)
	effs := t.enumerate(func() *cfg {
		c := base.clone()
		q := c.queue[idx]
		c.queue = append(append([]entry(nil), c.queue[:idx]...), c.queue[idx+1:]...)
		t.beginDelivery(c, q.ev, q.val)
		return c
	})
	t.prefixCache[loc] = effs
	return effs
}

// closureDeliverPool returns the outcomes of delivering a pooled entry at a
// resting location. Inexact: the pool has lost FIFO order, so this delivery
// is an over-approximating choice.
func (t *tr) closureDeliverPool(loc locID, pk poolKey) []effect {
	key := poolDelivKey{loc: loc, pk: pk}
	if effs, ok := t.poolCache[key]; ok {
		return effs
	}
	base := t.in.places[loc].cfg
	effs := t.enumerate(func() *cfg {
		c := base.clone()
		t.beginDelivery(c, pk.ev, pk.val)
		return c
	})
	// Pool order is abstract: no outcome of a pool delivery is definite.
	for i := range effs {
		effs[i].exact = false
	}
	t.poolCache[key] = effs
	return effs
}

func (t *tr) beginDelivery(c *cfg, ev ir.EventID, val Val) {
	c.msg = vEvent(ev)
	c.arg = val
	c.raised = ev
	c.raisedVal = val
	c.mode = modeRaise
	c.exitRun = false
}

// enumerate runs every decision string of the closure and returns the
// deduplicated outcome set.
func (t *tr) enumerate(mk func() *cfg) []effect {
	d := &decider{}
	var out []effect
	for paths := 0; ; paths++ {
		if paths >= t.opts.MaxPaths {
			t.truncated = true
			break
		}
		out = append(out, t.runOne(mk(), d)...)
		if !d.advance() {
			break
		}
	}
	return dedupeEffects(out)
}

func dedupeEffects(effs []effect) []effect {
	seen := map[string]int{}
	var buf []byte
	out := effs[:0]
	for _, e := range effs {
		buf = buf[:0]
		buf = append(buf, byte(e.kind), b2b(e.folded))
		buf = binary.AppendVarint(buf, int64(e.next))
		buf = binary.AppendVarint(buf, int64(e.ev))
		buf = append(buf, byte(e.val.Kind))
		buf = binary.AppendVarint(buf, e.val.N)
		buf = binary.AppendVarint(buf, int64(e.tgtClass))
		buf = binary.AppendVarint(buf, int64(e.child))
		if e.poolAdd != nil {
			buf = binary.AppendVarint(buf, int64(e.poolAdd.class))
			buf = binary.AppendVarint(buf, int64(e.poolAdd.ev))
			buf = append(buf, byte(e.poolAdd.val.Kind))
		}
		if e.kind == oErr {
			buf = append(buf, byte(e.err.kind), b2b(e.err.hasEv))
			buf = binary.AppendVarint(buf, int64(e.err.mtype))
			buf = binary.AppendVarint(buf, int64(e.err.event))
			buf = append(buf, e.err.state...)
		}
		k := string(buf)
		if i, ok := seen[k]; ok {
			// Keep the definite variant when both an exact and an inexact
			// path reach the same outcome.
			if e.exact {
				out[i].exact = true
			}
			continue
		}
		seen[k] = len(out)
		out = append(out, e)
	}
	return out
}

// --- the abstract executor ---

// runOne executes one decision string to the next scheduling point.
// It returns one effect in the common case; sends with several possible
// targets (and forked ⊕-dedup outcomes) return one effect per alternative,
// since a send always ends the macro step.
func (t *tr) runOne(c *cfg, d *decider) []effect {
	steps := 0
	for {
		steps++
		if steps > t.opts.MaxSteps {
			return []effect{t.errEffect(c, core.ErrDivergence, source.Span{}, "abstract closure exceeded step budget", false)}
		}
		switch c.mode {
		case modeRun:
			if c.cont == nil {
				// Rest point: every dequeue is a scheduling point under
				// the abstraction (a sound refinement of §5's bursts).
				return []effect{{kind: oRest, exact: !d.runInexact, next: t.in.intern(c)}}
			}
			if effs, done := t.execStmt(c, d); done {
				return effs
			}
		case modeRaise:
			if c.cont != nil {
				if effs, done := t.execStmt(c, d); done {
					return effs
				}
				continue
			}
			if err := t.resolveRaise(c, d); err != nil {
				return []effect{{kind: oErr, exact: !d.runInexact, err: *err}}
			}
		case modeReturn:
			if c.cont != nil {
				if effs, done := t.execStmt(c, d); done {
					return effs
				}
				continue
			}
			if err := t.pop2(c); err != nil {
				return []effect{{kind: oErr, exact: !d.runInexact, err: *err}}
			}
		}
	}
}

// execStmt executes the next continuation statement. done=true means the
// macro step ended (send, new, delete, error, or unsupported construct).
func (t *tr) execStmt(c *cfg, d *decider) ([]effect, bool) {
	s := c.cont.s
	c.cont = c.cont.next
	mt := t.classType(c.class)
	switch s.Op {
	case ir.SSkip:
		return nil, false
	case ir.SAssign:
		v, err := t.eval(c, s.Expr, d)
		if err != nil {
			return []effect{{kind: oErr, exact: !d.runInexact, err: *err}}, true
		}
		c.vars[s.Var] = v
		return nil, false
	case ir.SNew:
		childClass, ok := t.siteClass[s.Index]
		if !ok {
			return []effect{t.unsupEffect("untracked creation site")}, true
		}
		vals := make([]Val, len(t.p.Machines[s.Machine].Vars))
		for i := range vals {
			vals[i] = vNull
		}
		for _, init := range s.Inits {
			v, err := t.eval(c, init.Expr, d)
			if err != nil {
				return []effect{{kind: oErr, exact: !d.runInexact, err: *err}}, true
			}
			vals[init.Var] = t.escape(v, c.class)
		}
		if t.p.Machines[s.Machine].ErasedStub {
			return []effect{t.errEffect(c, core.ErrStub, s.Span, "ghost machines are erased from compiled programs", !d.runInexact)}, true
		}
		childLoc := t.in.intern(t.newCfg(childClass, vals))
		c.vars[s.Var] = vMach(childClass)
		return []effect{{
			kind: oNew, exact: !d.runInexact,
			next: t.in.intern(c), child: childLoc, childClass: childClass,
		}}, true
	case ir.SDelete:
		return []effect{{kind: oHalt, exact: !d.runInexact}}, true
	case ir.SSend:
		return t.execSend(c, s, d), true
	case ir.SRaise:
		payload := vNull
		if s.Expr != nil {
			v, err := t.eval(c, s.Expr, d)
			if err != nil {
				return []effect{{kind: oErr, exact: !d.runInexact, err: *err}}, true
			}
			payload = v
		}
		c.cont = nil
		c.msg = vEvent(s.Event)
		c.arg = payload
		c.raised = s.Event
		c.raisedVal = payload
		c.mode = modeRaise
		c.exitRun = false
		return nil, false
	case ir.SLeave:
		c.cont = nil
		return nil, false
	case ir.SReturn:
		st := mt.States[c.top().state]
		c.cont = t.in.pushBody(st.Exit, nil)
		c.mode = modeReturn
		return nil, false
	case ir.SAssert:
		verdict, err := t.evalCond(c, s.Expr, d, "assert condition is null", s.Span)
		if err != nil {
			return []effect{{kind: oErr, exact: !d.runInexact, err: *err}}, true
		}
		if !verdict {
			return []effect{t.errEffect(c, core.ErrAssert, s.Span, "", !d.runInexact)}, true
		}
		return nil, false
	case ir.SIf:
		verdict, err := t.evalCond(c, s.Expr, d, "if condition is null", s.Span)
		if err != nil {
			return []effect{{kind: oErr, exact: !d.runInexact, err: *err}}, true
		}
		if verdict {
			c.cont = t.in.pushBody(s.Body, c.cont)
		} else {
			c.cont = t.in.pushBody(s.Else, c.cont)
		}
		return nil, false
	case ir.SWhile:
		verdict, err := t.evalCond(c, s.Expr, d, "while condition is null", s.Span)
		if err != nil {
			return []effect{{kind: oErr, exact: !d.runInexact, err: *err}}, true
		}
		if verdict {
			c.cont = t.in.pushBody(s.Body, t.in.cons(s, c.cont))
		}
		return nil, false
	case ir.SCallState:
		if len(c.stack) >= t.opts.MaxStack {
			return []effect{t.unsupEffect("call-stack depth exceeds the abstraction bound")}, true
		}
		c.stack = append(c.stack, aframe{state: s.State, ret: c.cont})
		c.cont = t.in.pushBody(mt.States[s.State].Entry, nil)
		return nil, false
	case ir.SForeign:
		call := &ir.Expr{Op: ir.ECall, ForeignFn: s.Foreign, Args: s.Args, Span: s.Span}
		if _, err := t.eval(c, call, d); err != nil {
			return []effect{{kind: oErr, exact: !d.runInexact, err: *err}}, true
		}
		return nil, false
	default:
		return []effect{t.unsupEffect("unknown statement operator")}, true
	}
}

// execSend resolves a send statement's target and payload into effects.
func (t *tr) execSend(c *cfg, s *ir.Stmt, d *decider) []effect {
	tv, err := t.eval(c, s.Target, d)
	if err != nil {
		return []effect{{kind: oErr, exact: !d.runInexact, err: *err}}
	}
	evalPayload := func() (Val, *errInfo) {
		if s.Expr == nil {
			return vNull, nil
		}
		v, err := t.eval(c, s.Expr, d)
		if err != nil {
			return vNull, err
		}
		return t.escape(v, c.class), nil
	}

	switch tv.Kind {
	case VNull:
		return []effect{t.errEffect(c, core.ErrSendNull, s.Span, "", !d.runInexact)}
	case VMach, VSelf:
		payload, perr := evalPayload()
		if perr != nil {
			return []effect{{kind: oErr, exact: !d.runInexact, err: *perr}}
		}
		if tv.Kind == VSelf {
			// `this` in a many class: definitely alive; its merged inbox is
			// the class pool.
			pk := poolKey{class: c.class, ev: s.Event, val: payload}
			return []effect{{
				kind: oSend, exact: !d.runInexact, folded: true,
				next: t.in.intern(c), ev: s.Event, val: payload, poolAdd: &pk,
			}}
		}
		tc := tv.class()
		if t.singleton(tc) && tc == c.class {
			// Singleton self-send: fold the enqueue into the own prefix.
			var out []effect
			for _, alt := range t.enqueue(c, s.Event, payload) {
				eff := effect{
					kind: oSend, exact: alt.exact && !d.runInexact, folded: true,
					next: t.in.intern(alt.c), ev: s.Event, val: payload,
				}
				if alt.poolAdd != nil {
					pk := *alt.poolAdd
					eff.poolAdd = &pk
				}
				out = append(out, eff)
			}
			return out
		}
		return []effect{{
			kind: oSend, exact: !d.runInexact,
			next: t.in.intern(c), ev: s.Event, val: payload, tgtClass: tc,
		}}
	case VAny:
		// The target escaped the value abstraction; fall back to the
		// static points-to fact for this send site.
		if t.facts == nil || t.facts.SendTargets == nil {
			return []effect{t.unsupEffect("send target is abstract and no points-to facts are available")}
		}
		fact, ok := t.facts.SendTargets[s.Index]
		if !ok || fact.Unknown {
			return []effect{t.unsupEffect("send target escapes the points-to abstraction")}
		}
		payload, perr := evalPayload()
		if perr != nil {
			return []effect{{kind: oErr, exact: !d.runInexact, err: *perr}}
		}
		next := t.in.intern(c.clone())
		out := []effect{t.errEffect(c, core.ErrSendNull, s.Span, "", false)}
		for _, ty := range fact.Types {
			for _, ci := range t.classes {
				if ci.typ != ty {
					continue
				}
				out = append(out, effect{
					kind: oSend, exact: false,
					next: next, ev: s.Event, val: payload, tgtClass: ci.id,
				})
			}
		}
		return out
	default:
		return []effect{t.errEffect(c, core.ErrSendNull, s.Span, "send target is not a machine identifier", !d.runInexact)}
	}
}

// enqAlt is one possible result of an abstract ⊕ enqueue into a singleton
// machine's exact prefix.
type enqAlt struct {
	c       *cfg
	poolAdd *poolKey
	exact   bool
}

// enqueue applies the ⊕ enqueue of (ev, val) to c's inbox. While the exact
// prefix has room (and has never spilled), the concrete dedup-append is
// mirrored precisely, forking when payload equality is undecidable — an
// extra prefix entry is NOT harmless, because the FIFO scan tests entry
// positions. Once the prefix is full (or has spilled), entries go to the
// orderless class pool, where extra tokens only add behaviors
// (monotonicity), so no dedup fork is needed.
func (t *tr) enqueue(c *cfg, ev ir.EventID, val Val) []enqAlt {
	if c.spilled || len(c.queue) >= t.clsPrefix[c.class] {
		n := c.clone()
		n.spilled = true
		pk := poolKey{class: c.class, ev: ev, val: val}
		return []enqAlt{{c: n, poolAdd: &pk, exact: true}}
	}
	dup := triFalse
	for _, q := range c.queue {
		if q.ev != ev {
			continue
		}
		switch t.eqVals(q.val, val, c.class) {
		case triTrue:
			dup = triTrue
		case triBoth:
			if dup != triTrue {
				dup = triBoth
			}
		}
		if dup == triTrue {
			break
		}
	}
	appended := func() *cfg {
		n := c.clone()
		n.queue = append(n.queue, entry{ev: ev, val: val})
		return n
	}
	switch dup {
	case triTrue:
		return []enqAlt{{c: c.clone(), exact: true}}
	case triBoth:
		return []enqAlt{{c: c.clone(), exact: false}, {c: appended(), exact: false}}
	default:
		return []enqAlt{{c: appended(), exact: true}}
	}
}

// resolveRaise ports the STEP / CALL / ACTION / POP1 resolution.
func (t *tr) resolveRaise(c *cfg, d *decider) *errInfo {
	if len(c.stack) == 0 {
		return &errInfo{
			kind: core.ErrUnhandled, mtype: t.classes[c.class].typ,
			event: c.raised, hasEv: true, detail: t.p.Events[c.raised].Name,
		}
	}
	mt := t.classType(c.class)
	fr := c.top()
	st := mt.States[fr.state]
	e := c.raised

	switch trn := st.Trans[e]; trn.Kind {
	case ir.TransStep:
		if !c.exitRun {
			c.cont = t.in.pushBody(st.Exit, nil)
			c.exitRun = true
			return nil
		}
		fr.state = trn.Target
		c.mode = modeRun
		c.exitRun = false
		c.cont = t.in.pushBody(mt.States[trn.Target].Entry, nil)
		return nil
	case ir.TransCall:
		if len(c.stack) >= t.opts.MaxStack {
			t.unsup("call-stack depth exceeds the abstraction bound")
			return &errInfo{kind: core.ErrDivergence, mtype: t.classes[c.class].typ, state: st.Name, detail: "abstraction stack bound"}
		}
		c.stack = append(c.stack, aframe{state: trn.Target})
		c.mode = modeRun
		c.exitRun = false
		c.cont = t.in.pushBody(mt.States[trn.Target].Entry, nil)
		return nil
	}

	act := st.Action[e]
	if act == ir.NoAction {
		if inh := t.inheritedFor(c); inh[e] >= 0 {
			act = ir.ActionID(inh[e])
		}
	}
	if act != ir.NoAction {
		c.mode = modeRun
		c.exitRun = false
		c.cont = t.in.pushBody(mt.Actions[act].Body, nil)
		return nil
	}

	// POP1: exit preamble, then pop and re-raise.
	if !c.exitRun {
		c.cont = t.in.pushBody(st.Exit, nil)
		c.exitRun = true
		return nil
	}
	c.stack = c.stack[:len(c.stack)-1]
	c.exitRun = false
	if len(c.stack) == 0 {
		return &errInfo{
			kind: core.ErrUnhandled, mtype: mt.ID, state: st.Name,
			event: e, hasEv: true, detail: t.p.Events[e].Name,
		}
	}
	return nil
}

// pop2 ports the POP2 rule.
func (t *tr) pop2(c *cfg) *errInfo {
	fr := c.stack[len(c.stack)-1]
	c.stack = c.stack[:len(c.stack)-1]
	if len(c.stack) == 0 {
		return &errInfo{kind: core.ErrUnhandled, mtype: t.classes[c.class].typ, detail: "return from bottom state"}
	}
	c.mode = modeRun
	c.cont = fr.ret
	return nil
}

// inheritedFor recomputes the top frame's inherited handler map from the
// state chain (see interner.buildMeta for the derivation argument).
func (t *tr) inheritedFor(c *cfg) []int16 {
	mt := t.classType(c.class)
	inh := make([]int16, len(t.p.Events))
	for i := range inh {
		inh[i] = inhNone
	}
	for i := 1; i < len(c.stack); i++ {
		inh = computeInherited(t.p, mt.States[c.stack[i-1].state], inh)
	}
	return inh
}

// newCfg builds the initial configuration of a class instance (the NEW
// rule): vars at ⊥ overwritten by vals, initial state, entry pending.
func (t *tr) newCfg(class classID, vals []Val) *cfg {
	mt := t.classType(class)
	c := &cfg{
		class: class,
		vars:  vals,
		stack: []aframe{{state: mt.Init}},
		cont:  t.in.pushBody(mt.States[mt.Init].Entry, nil),
		mode:  modeRun,
	}
	return c
}

// escape translates machine-local values for export: `this` of a many
// class becomes a class reference (losing the exact-identity guarantee).
func (t *tr) escape(v Val, own classID) Val {
	if v.Kind == VSelf {
		return vMach(own)
	}
	return v
}

func (t *tr) errEffect(c *cfg, kind core.ErrKind, span source.Span, detail string, exact bool) effect {
	ei := errInfo{kind: kind, mtype: t.classes[c.class].typ, span: span, detail: detail}
	if len(c.stack) > 0 {
		ei.state = t.classType(c.class).States[c.top().state].Name
	}
	return effect{kind: oErr, exact: exact, err: ei}
}

func (t *tr) unsup(reason string) {
	if t.unsupported == "" {
		t.unsupported = reason
	}
}

func (t *tr) unsupEffect(reason string) effect {
	t.unsup(reason)
	return effect{kind: oUnsup}
}

// --- abstract expression evaluation ---

// evalCond evaluates a boolean condition, branching via the decider when
// the abstract value admits several outcomes. The returned error is the
// ⊥-condition error of the concrete semantics.
func (t *tr) evalCond(c *cfg, e *ir.Expr, d *decider, nullMsg string, span source.Span) (bool, *errInfo) {
	v, err := t.eval(c, e, d)
	if err != nil {
		return false, err
	}
	canT, canF, canOther := boolPoss(v)
	undef := func() *errInfo {
		ei := t.errEffect(c, core.ErrUndefCond, span, nullMsg, false).err
		return &ei
	}
	n := 0
	if canT {
		n++
	}
	if canF {
		n++
	}
	if canOther {
		n++
	}
	if n == 1 {
		if canOther {
			return false, undef()
		}
		return canT, nil
	}
	var outcomes []int // 0=true 1=false 2=undef
	if canT {
		outcomes = append(outcomes, 0)
	}
	if canF {
		outcomes = append(outcomes, 1)
	}
	if canOther {
		outcomes = append(outcomes, 2)
	}
	switch outcomes[d.next(len(outcomes), true)] {
	case 0:
		return true, nil
	case 1:
		return false, nil
	default:
		return false, undef()
	}
}

func (t *tr) eval(c *cfg, e *ir.Expr, d *decider) (Val, *errInfo) {
	switch e.Op {
	case ir.EInt:
		return vInt(e.Int), nil
	case ir.EBool:
		return vBool(e.Int != 0), nil
	case ir.ENull:
		return vNull, nil
	case ir.EThis:
		if t.singleton(c.class) {
			return vMach(c.class), nil
		}
		return Val{Kind: VSelf}, nil
	case ir.EMsg:
		return c.msg, nil
	case ir.EArg:
		return c.arg, nil
	case ir.EChoose:
		// Genuine program nondeterminism: concrete executions branch here
		// too, so the decision keeps the path definite.
		return vBool(d.next(2, false) == 1), nil
	case ir.EVar:
		return c.vars[e.Var], nil
	case ir.EEvent:
		return vEvent(e.Event), nil
	case ir.ENot:
		v, err := t.eval(c, e.X, d)
		if err != nil {
			return vNull, err
		}
		switch v.Kind {
		case VBool:
			return vBool(v.N == 0), nil
		case VAnyBool:
			return v, nil
		case VAny:
			return v, nil
		default:
			return vNull, nil
		}
	case ir.ENeg:
		v, err := t.eval(c, e.X, d)
		if err != nil {
			return vNull, err
		}
		switch v.Kind {
		case VInt:
			return vInt(-v.N), nil
		case VAnyInt, VAny:
			return v, nil
		default:
			return vNull, nil
		}
	case ir.EBinary:
		return t.evalBinary(c, e, d)
	case ir.ECall:
		return t.evalCall(c, e, d)
	default:
		ei := t.errEffect(c, core.ErrUndefCond, e.Span, "unknown expression operator", false).err
		return vNull, &ei
	}
}

func (t *tr) evalBinary(c *cfg, e *ir.Expr, d *decider) (Val, *errInfo) {
	xv, err := t.eval(c, e.X, d)
	if err != nil {
		return vNull, err
	}
	// Short-circuit exactly when the concrete evaluator does: only an
	// exact boolean left operand skips the right side.
	switch e.Bin {
	case ir.And:
		if xv.isExactBool() && xv.N == 0 {
			return vBool(false), nil
		}
	case ir.Or:
		if xv.isExactBool() && xv.N != 0 {
			return vBool(true), nil
		}
	}
	yv, err := t.eval(c, e.Y, d)
	if err != nil {
		return vNull, err
	}

	switch e.Bin {
	case ir.Eq, ir.Neq:
		res := t.eqVals(xv, yv, c.class)
		if e.Bin == ir.Neq {
			switch res {
			case triTrue:
				res = triFalse
			case triFalse:
				res = triTrue
			}
		}
		switch res {
		case triTrue:
			return vBool(true), nil
		case triFalse:
			return vBool(false), nil
		default:
			return Val{Kind: VAnyBool}, nil
		}
	case ir.And, ir.Or:
		at, af, ao := boolPoss(xv)
		bt, bf, bo := boolPoss(yv)
		var canT, canF, canN bool
		if e.Bin == ir.And {
			canF = af || (at && bf)
			canT = at && bt
			canN = ao || (at && bo)
		} else {
			canT = at || (af && bt)
			canF = af && bf
			canN = ao || (af && bo)
		}
		return joinBoolSet(canT, canF, canN), nil
	}

	aInt, aOther, aEx, an := intPoss(xv)
	bInt, bOther, bEx, bn := intPoss(yv)
	if !aInt || !bInt {
		return vNull, nil // definitely ⊥-propagating
	}
	mixed := aOther || bOther // an operand may also be a non-int (VAny)
	switch e.Bin {
	case ir.Add, ir.Sub, ir.Mul:
		if aEx && bEx {
			switch e.Bin {
			case ir.Add:
				return vInt(an + bn), nil
			case ir.Sub:
				return vInt(an - bn), nil
			default:
				return vInt(an * bn), nil
			}
		}
		if mixed {
			return Val{Kind: VAny}, nil
		}
		return Val{Kind: VAnyInt}, nil
	case ir.Div, ir.Mod:
		if bEx && bn == 0 {
			return vNull, nil
		}
		if aEx && bEx {
			if e.Bin == ir.Div {
				return vInt(an / bn), nil
			}
			return vInt(an % bn), nil
		}
		if !bEx {
			// The divisor may be zero (⊥ result) or not.
			return Val{Kind: VAny}, nil
		}
		if mixed {
			return Val{Kind: VAny}, nil
		}
		return Val{Kind: VAnyInt}, nil
	case ir.Lt, ir.Le, ir.Gt, ir.Ge:
		if aEx && bEx {
			switch e.Bin {
			case ir.Lt:
				return vBool(an < bn), nil
			case ir.Le:
				return vBool(an <= bn), nil
			case ir.Gt:
				return vBool(an > bn), nil
			default:
				return vBool(an >= bn), nil
			}
		}
		if mixed {
			return Val{Kind: VAny}, nil
		}
		return Val{Kind: VAnyBool}, nil
	}
	ei := t.errEffect(c, core.ErrUndefCond, e.Span, "unknown binary operator", false).err
	return vNull, &ei
}

func joinBoolSet(canT, canF, canN bool) Val {
	switch {
	case canN && (canT || canF):
		return Val{Kind: VAny}
	case canN:
		return vNull
	case canT && canF:
		return Val{Kind: VAnyBool}
	case canT:
		return vBool(true)
	default:
		return vBool(false)
	}
}

// eqVals is the abstract total-equality test (the ⊕/== semantics: values of
// different kinds are unequal; ⊥ equals only ⊥).
func (t *tr) eqVals(a, b Val, own classID) tri {
	if a == b {
		switch a.Kind {
		case VNull, VBool, VInt, VEvent, VSelf:
			return triTrue
		case VMach:
			if t.singleton(a.class()) {
				return triTrue
			}
			return triBoth
		default: // VAnyBool, VAnyInt, VAny
			return triBoth
		}
	}
	if a.Kind == VAny || b.Kind == VAny {
		return triBoth
	}
	// Order-normalize so each mixed pair is handled once.
	if a.Kind > b.Kind {
		a, b = b, a
	}
	switch {
	case a.Kind == VBool && b.Kind == VAnyBool:
		return triBoth
	case a.Kind == VInt && b.Kind == VAnyInt:
		return triBoth
	case a.Kind == VMach && b.Kind == VMach:
		// Different classes come from different creation sites: disjoint
		// instance sets. The same class compares equal only if singleton
		// (handled above as struct equality).
		return triFalse
	case a.Kind == VMach && b.Kind == VSelf:
		if a.class() == own && !t.singleton(own) {
			return triBoth
		}
		return triFalse
	default:
		return triFalse
	}
}

// evalCall evaluates a foreign call: the model body (if any) executes
// abstractly and the call yields ⊥; a modelless call is the explorer's
// ErrForeignMissing error (verification runs without host bindings).
func (t *tr) evalCall(c *cfg, e *ir.Expr, d *decider) (Val, *errInfo) {
	mt := t.classType(c.class)
	f := &mt.Foreigns[e.ForeignFn]
	for _, a := range e.Args {
		if _, err := t.eval(c, a, d); err != nil {
			return vNull, err
		}
	}
	if f.Model != nil {
		budget := t.opts.MaxSteps
		if err := t.execModel(c, f.Model, d, &budget); err != nil {
			return vNull, err
		}
		return vNull, nil
	}
	ei := t.errEffect(c, core.ErrForeignMissing, e.Span, f.Name, !d.runInexact).err
	return vNull, &ei
}

// execModel executes a foreign model body abstractly.
func (t *tr) execModel(c *cfg, body []*ir.Stmt, d *decider, budget *int) *errInfo {
	for _, s := range body {
		if *budget <= 0 {
			ei := t.errEffect(c, core.ErrDivergence, s.Span, "foreign model body exceeded step budget", false).err
			return &ei
		}
		*budget--
		switch s.Op {
		case ir.SSkip:
		case ir.SAssign:
			v, err := t.eval(c, s.Expr, d)
			if err != nil {
				return err
			}
			c.vars[s.Var] = v
		case ir.SAssert:
			verdict, err := t.evalCond(c, s.Expr, d, "assert condition is null", s.Span)
			if err != nil {
				return err
			}
			if !verdict {
				ei := t.errEffect(c, core.ErrAssert, s.Span, "in foreign model", !d.runInexact).err
				return &ei
			}
		case ir.SIf:
			verdict, err := t.evalCond(c, s.Expr, d, "if condition is null", s.Span)
			if err != nil {
				return err
			}
			branch := s.Body
			if !verdict {
				branch = s.Else
			}
			if err := t.execModel(c, branch, d, budget); err != nil {
				return err
			}
		case ir.SWhile:
			for {
				if *budget <= 0 {
					ei := t.errEffect(c, core.ErrDivergence, s.Span, "foreign model body exceeded step budget", false).err
					return &ei
				}
				verdict, err := t.evalCond(c, s.Expr, d, "while condition is null", s.Span)
				if err != nil {
					return err
				}
				if !verdict {
					break
				}
				if err := t.execModel(c, s.Body, d, budget); err != nil {
					return err
				}
			}
		case ir.SForeign:
			call := &ir.Expr{Op: ir.ECall, ForeignFn: s.Foreign, Args: s.Args, Span: s.Span}
			if _, err := t.eval(c, call, d); err != nil {
				return err
			}
		default:
			ei := t.errEffect(c, core.ErrUndefCond, s.Span, "statement not permitted in foreign model body", false).err
			return &ei
		}
	}
	return nil
}

// className renders a class for trace labels.
func (t *tr) className(c classID) string { return t.classes[c].name }

// describe renders an error signature for findings and traces.
func (ei *errInfo) describe(p *ir.Program) string {
	mt := p.Machines[ei.mtype]
	msg := fmt.Sprintf("%s in machine %s", ei.kind, mt.Name)
	if ei.state != "" {
		msg += fmt.Sprintf(" (state %s)", ei.state)
	}
	if ei.hasEv {
		msg += fmt.Sprintf(", event %s", p.Events[ei.event].Name)
	}
	if ei.detail != "" {
		msg += ": " + ei.detail
	}
	return msg
}

package abstract

import (
	"fmt"
	"sort"
	"time"

	"pgo/internal/analysis"
	"pgo/internal/core"
	"pgo/internal/ir"
	"pgo/internal/source"
)

// Diagnostic codes of the parameterized-verification pass. Like P1xx–P3xx,
// these are part of the tool interface and are never renumbered.
const (
	// CodeParamSafe: the coverability search proved that no assertion or
	// unhandled-event violation is reachable for any number of machine
	// instances and any queue lengths.
	CodeParamSafe = "P401"
	// CodeParamCounterexample: the abstraction reaches an error
	// configuration; the abstract trace is rendered, and callers replay it
	// concretely at small instance counts to confirm or mark it spurious.
	CodeParamCounterexample = "P402"
	// CodeParamUnboundedQueue: ω-acceleration proved a pooled inbox can
	// grow without bound — the sound upgrade of plint's P302–P304
	// boundedness heuristics.
	CodeParamUnboundedQueue = "P403"
)

// Options configures the coverability analysis. Zero values select the
// documented defaults.
type Options struct {
	// Facts is the static-analysis report of the same program; its
	// SendTargets points-to facts resolve sends whose target escapes the
	// value abstraction. Optional: without it such sends are unsupported.
	Facts *analysis.Report
	// MaxMarkings bounds the number of expanded coverability-tree nodes.
	MaxMarkings int
	// MaxPaths bounds decision paths enumerated per macro-step closure.
	MaxPaths int
	// MaxSteps bounds statements executed per decision path.
	MaxSteps int
	// QueuePrefix is the exact FIFO inbox prefix kept per singleton
	// instance before entries spill to the order-abstracted pool.
	QueuePrefix int
	// MaxStack bounds the abstract call-stack depth.
	MaxStack int
}

func (o Options) withDefaults() Options {
	if o.MaxMarkings <= 0 {
		o.MaxMarkings = 400_000
	}
	if o.MaxPaths <= 0 {
		o.MaxPaths = 256
	}
	if o.MaxSteps <= 0 {
		o.MaxSteps = 20_000
	}
	if o.QueuePrefix <= 0 {
		o.QueuePrefix = 16
	}
	if o.MaxStack <= 0 {
		o.MaxStack = 12
	}
	return o
}

// Verdict is the overall outcome of the analysis.
type Verdict int

const (
	// VerdictSafe: the search terminated with no reachable abstract error —
	// the program is safe for every instance count (P401).
	VerdictSafe Verdict = iota
	// VerdictCounterexample: at least one abstract error configuration is
	// coverable (P402 findings carry the traces).
	VerdictCounterexample
	// VerdictInconclusive: a budget was exhausted before the search
	// completed and no error was found; nothing is proven.
	VerdictInconclusive
	// VerdictUnsupported: the program uses a construct outside the
	// abstraction's fragment.
	VerdictUnsupported
)

func (v Verdict) String() string {
	switch v {
	case VerdictSafe:
		return "safe"
	case VerdictCounterexample:
		return "counterexample"
	case VerdictInconclusive:
		return "inconclusive"
	default:
		return "unsupported"
	}
}

// AbsError is one abstract error class reached by the search.
type AbsError struct {
	Kind    core.ErrKind
	Machine string // machine type in which the error manifests
	State   string // control state, when one is identified
	Event   string // event involved, when one is identified
	Message string
	// Definite: the witness path used only decisions a concrete execution
	// could take (no abstraction-induced branch, no pool reordering), so
	// the error is real, not a possible artifact of the abstraction.
	Definite bool
	// Trace is the abstract counterexample: one label per macro step.
	Trace []string
	Span  source.Span
}

// OmegaQueue is one pooled inbox proven unbounded by ω-acceleration.
type OmegaQueue struct {
	Class string // receiver instance class
	Event string
}

// ClassSummary describes one instance class of the counter system.
type ClassSummary struct {
	Name      string
	Machine   string
	Singleton bool
}

// Result is the outcome of one coverability analysis.
type Result struct {
	Verdict     Verdict
	Unsupported string // reason, when Verdict is VerdictUnsupported
	// Truncated: MaxMarkings or MaxPaths was exhausted (a safe verdict is
	// downgraded to inconclusive when set).
	Truncated bool

	Errors []AbsError
	Omegas []OmegaQueue

	Classes  []ClassSummary
	Markings int // coverability-tree nodes expanded
	Reduced  int // nodes expanded with a POR singleton ample set
	Places   int // counter dimensions materialized (basis size)
	Elapsed  time.Duration
}

// Analyze runs the counter-abstraction coverability analysis over p, which
// must be an unerased program (ghost machines model the environment, as in
// the explicit-state explorers).
func Analyze(p *ir.Program, opts Options) *Result {
	start := time.Now()
	t := newTr(p, opts.withDefaults())
	res := &Result{}
	for _, ci := range t.classes {
		res.Classes = append(res.Classes, ClassSummary{
			Name:      ci.name,
			Machine:   p.Machines[ci.typ].Name,
			Singleton: ci.singleton,
		})
	}

	eng := newEngine(t)
	eng.run(initialMarking(t))

	res.Markings = eng.markings
	res.Reduced = eng.reduced
	res.Places = len(t.in.places)
	res.Truncated = eng.truncated || t.truncated

	for _, key := range eng.errOrd {
		rec := eng.errs[key]
		res.Errors = append(res.Errors, AbsError{
			Kind:     rec.info.kind,
			Machine:  p.Machines[rec.info.mtype].Name,
			State:    rec.info.state,
			Event:    eventName(p, rec.info),
			Message:  rec.info.describe(p),
			Definite: rec.exact,
			Trace:    eng.trace(rec),
			Span:     rec.info.span,
		})
	}
	for _, pk := range eng.omegaOrd {
		res.Omegas = append(res.Omegas, OmegaQueue{
			Class: t.className(pk.class),
			Event: p.Events[pk.ev].Name,
		})
	}
	sort.Slice(res.Omegas, func(i, j int) bool {
		a, b := res.Omegas[i], res.Omegas[j]
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		return a.Event < b.Event
	})

	switch {
	case t.unsupported != "":
		res.Verdict = VerdictUnsupported
		res.Unsupported = t.unsupported
	case len(res.Errors) > 0:
		res.Verdict = VerdictCounterexample
	case res.Truncated:
		res.Verdict = VerdictInconclusive
	default:
		res.Verdict = VerdictSafe
	}
	res.Elapsed = time.Since(start)
	return res
}

func eventName(p *ir.Program, ei errInfo) string {
	if !ei.hasEv {
		return ""
	}
	return p.Events[ei.event].Name
}

// initialMarking builds the root marking: one token for the main machine's
// initial configuration (the INIT rule).
func initialMarking(t *tr) marking {
	mt := t.p.Machines[t.p.Main]
	vals := make([]Val, len(mt.Vars))
	for i := range vals {
		vals[i] = vNull
	}
	d := &decider{}
	c := t.newCfg(0, vals)
	for _, init := range t.p.MainInits {
		v, err := t.eval(c, init.Expr, d)
		if err != nil {
			// Main initializers are constant expressions; evaluation
			// cannot fail, but bail to unsupported defensively.
			t.unsup("main initializer failed to evaluate abstractly")
			v = Val{Kind: VAny}
		}
		c.vars[init.Var] = v
	}
	loc := t.in.intern(c)
	return marking{loc: 1}
}

// Findings renders the result as stable-coded findings alongside the
// P1xx–P3xx analysis codes. P402 messages carry the abstract error; callers
// that replay counterexamples concretely annotate them via the Confirmed
// parameter of FindingsWithReplay.
func (r *Result) Findings() []analysis.Finding {
	return r.findings(nil)
}

// ReplayStatus classifies the concrete replay of one P402 counterexample.
type ReplayStatus int

const (
	// ReplayNotRun: no concrete replay was attempted.
	ReplayNotRun ReplayStatus = iota
	// ReplayConfirmed: an explicit-state explorer reproduced an error of
	// the same class at a small instance count — the defect is real.
	ReplayConfirmed
	// ReplaySpurious: bounded exploration found no matching concrete
	// error; the counterexample may be an artifact of the abstraction.
	ReplaySpurious
)

func (s ReplayStatus) String() string {
	switch s {
	case ReplayConfirmed:
		return "confirmed"
	case ReplaySpurious:
		return "possibly-spurious"
	default:
		return "not-replayed"
	}
}

// FindingsWithReplay renders findings with per-error replay annotations;
// replay[i] classifies Errors[i] (shorter slices leave the rest ReplayNotRun).
func (r *Result) FindingsWithReplay(replay []ReplayStatus) []analysis.Finding {
	return r.findings(replay)
}

func (r *Result) findings(replay []ReplayStatus) []analysis.Finding {
	var out []analysis.Finding
	switch r.Verdict {
	case VerdictSafe:
		out = append(out, analysis.Finding{
			Code:     CodeParamSafe,
			Severity: analysis.SevInfo,
			Message: fmt.Sprintf(
				"parameterized-safe: no assertion or unhandled-event violation is reachable for any instance count (%d markings over a basis of %d places)",
				r.Markings, r.Places),
		})
	case VerdictCounterexample:
		for i, ae := range r.Errors {
			status := ReplayNotRun
			if i < len(replay) {
				status = replay[i]
			}
			msg := fmt.Sprintf("abstract counterexample: %s [%s]", ae.Message, status)
			out = append(out, analysis.Finding{
				Code:     CodeParamCounterexample,
				Severity: analysis.SevWarn,
				Span:     ae.Span,
				Machine:  ae.Machine,
				State:    ae.State,
				Event:    ae.Event,
				Message:  msg,
			})
		}
	}
	for _, oq := range r.Omegas {
		out = append(out, analysis.Finding{
			Code:     CodeParamUnboundedQueue,
			Severity: analysis.SevWarn,
			Machine:  oq.Class,
			Event:    oq.Event,
			Message: fmt.Sprintf(
				"pending %s events for %s instances grow without bound as the instance count increases",
				oq.Event, oq.Class),
		})
	}
	analysis.SortFindings(out)
	return out
}

package abstract_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pgo/internal/abstract"
	"pgo/internal/analysis"
	"pgo/internal/check"
	"pgo/internal/compile"
	"pgo/internal/core"
	"pgo/internal/ir"
	"pgo/internal/psamples"
)

// analyze compiles src and runs the coverability pass with the given
// marking budget (0 = the package default).
func analyze(t *testing.T, name, src string, maxMarkings int) (*abstract.Result, *ir.Program) {
	t.Helper()
	prog, diags, err := compile.Source(name, src)
	if err != nil {
		t.Fatalf("%s: compile: %v\n%v", name, err, diags)
	}
	rep := analysis.Analyze(prog)
	return abstract.Analyze(prog, abstract.Options{Facts: rep, MaxMarkings: maxMarkings}), prog
}

func readTestdata(t *testing.T, base string) string {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("..", "..", "testdata", base))
	if err != nil {
		t.Fatal(err)
	}
	return string(src)
}

func hasCode(fs []analysis.Finding, code string) bool {
	for _, f := range fs {
		if f.Code == code {
			return true
		}
	}
	return false
}

// German's directory protocol with two clients is safe; the coverability
// pass must terminate on its own (no budget truncation) and certify it
// with a P401. This is the pass's flagship positive result: the search
// closes only because symmetry reduction and the inbox abstraction tame
// the interleaving explosion.
func TestGermanParameterizedSafe(t *testing.T) {
	if testing.Short() {
		t.Skip("large abstract state space")
	}
	res, _ := analyze(t, "german2", psamples.German(2), 0)
	if res.Verdict != abstract.VerdictSafe {
		t.Fatalf("verdict = %v, want safe (unsupported=%q truncated=%v)",
			res.Verdict, res.Unsupported, res.Truncated)
	}
	if res.Truncated {
		t.Fatal("safe verdict with truncated search")
	}
	if fs := res.Findings(); !hasCode(fs, "P401") {
		t.Fatalf("no P401 finding in %v", fs)
	}
}

// The seeded-bug variant must NOT be certified: the abstraction finds the
// exclusive-grant assertion violation, and because the error path takes
// only concretely-executable decisions it is flagged definite.
func TestGermanBuggyCounterexample(t *testing.T) {
	if testing.Short() {
		t.Skip("large abstract state space")
	}
	res, _ := analyze(t, "german2-buggy", psamples.GermanBuggy(2), 0)
	if res.Verdict != abstract.VerdictCounterexample {
		t.Fatalf("verdict = %v, want counterexample", res.Verdict)
	}
	definite := false
	for _, ae := range res.Errors {
		if ae.Kind == core.ErrAssert && ae.Definite {
			definite = true
		}
	}
	if !definite {
		t.Fatalf("no definite assertion counterexample in %+v", res.Errors)
	}
}

// mutex_param spawns an unbounded client population: the pass must prove
// the server's holder assertion for every client count (P401) and at the
// same time prove the Acquire backlog unbounded (P403) — the
// counter-abstraction upgrade of plint's queue-growth heuristics.
func TestMutexParamSafeWithOmega(t *testing.T) {
	res, _ := analyze(t, "mutex_param", readTestdata(t, "mutex_param.p"), 0)
	if res.Verdict != abstract.VerdictSafe {
		t.Fatalf("verdict = %v, want safe (unsupported=%q truncated=%v)",
			res.Verdict, res.Unsupported, res.Truncated)
	}
	fs := res.Findings()
	if !hasCode(fs, "P401") || !hasCode(fs, "P403") {
		t.Fatalf("want P401 and P403, got %v", fs)
	}
	foundAcquire := false
	for _, oq := range res.Omegas {
		if oq.Event == "Acquire" {
			foundAcquire = true
		}
	}
	if !foundAcquire {
		t.Fatalf("omega set %v does not include the Acquire backlog", res.Omegas)
	}
}

// german_unsafe_paramN is safe at every closed size the directory was
// built for but breaks once a third cache exists; only the parameterized
// pass can see that. The abstract counterexample must replay concretely:
// the explicit explorer reproduces the assertion on a real schedule, and
// the finding is reported as a confirmed P402.
func TestUnsafeParamReplayConfirmed(t *testing.T) {
	res, prog := analyze(t, "german_unsafe_paramN", readTestdata(t, "german_unsafe_paramN.p"), 0)
	if res.Verdict != abstract.VerdictCounterexample {
		t.Fatalf("verdict = %v, want counterexample", res.Verdict)
	}

	sigs := make([]check.AbsSignature, len(res.Errors))
	for i, ae := range res.Errors {
		sigs[i] = check.AbsSignature{Kind: ae.Kind, Type: ae.Machine, Event: ae.Event}
	}
	hits, _, err := check.ReplaySignatures(prog, sigs, check.DefaultReplayOptions())
	if err != nil {
		t.Fatal(err)
	}
	statuses := make([]abstract.ReplayStatus, len(res.Errors))
	confirmedAssert := false
	for i, hit := range hits {
		if hit {
			statuses[i] = abstract.ReplayConfirmed
			if res.Errors[i].Machine == "Host" {
				confirmedAssert = true
			}
		} else {
			statuses[i] = abstract.ReplaySpurious
		}
	}
	if !confirmedAssert {
		t.Fatalf("Host assertion not confirmed by replay; errors=%+v hits=%v", res.Errors, hits)
	}
	found := false
	for _, f := range res.FindingsWithReplay(statuses) {
		if f.Code == "P402" && strings.Contains(f.Message, "[confirmed]") {
			found = true
		}
	}
	if !found {
		t.Fatal("no confirmed P402 finding")
	}
}

// The engine's exploration order is pinned (sorted fire order), so the
// marking count — which goes into findings, reports, and benchmarks — must
// not wobble between runs.
func TestDeterministicMarkings(t *testing.T) {
	src := readTestdata(t, "mutex_param.p")
	a, _ := analyze(t, "mutex_param", src, 0)
	b, _ := analyze(t, "mutex_param", src, 0)
	if a.Markings != b.Markings || a.Reduced != b.Reduced {
		t.Fatalf("nondeterministic search: %d/%d vs %d/%d markings/reduced",
			a.Markings, a.Reduced, b.Markings, b.Reduced)
	}
}

// Soundness crosscheck over the whole sample corpus: whenever the explicit
// explorer finds a real violation within a bounded search, the abstraction
// must not certify the program (P401 / VerdictSafe). The converse is not
// checked — the abstraction may report counterexamples the bounded
// concrete search cannot reach (over-approximation, larger N).
func TestAbstractSoundnessCrossCheck(t *testing.T) {
	// Marking budgets for samples whose abstract search is slow; the
	// property is budget-proof (a truncated run never reports safe), so a
	// small budget only trades completeness for time.
	budgets := map[string]int{
		"german":       4_000,
		"german-buggy": 4_000,
		"usb-dsm":      8_000,
		"usb-psm2":     20_000,
		"switchled":    20_000,
	}
	for _, s := range psamples.All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			if testing.Short() && budgets[s.Name] > 0 {
				t.Skip("large state space")
			}
			prog, diags, err := compile.Source(s.Name, s.Source)
			if err != nil {
				t.Fatalf("compile: %v\n%v", err, diags)
			}
			conc, err := check.Explore(prog, check.Options{
				Mode: check.DepthBounded, Bound: 14, MaxStates: 20_000, POR: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			budget := budgets[s.Name]
			if budget == 0 {
				budget = 50_000
			}
			rep := analysis.Analyze(prog)
			res := abstract.Analyze(prog, abstract.Options{Facts: rep, MaxMarkings: budget})
			if len(conc.Violations) > 0 && res.Verdict == abstract.VerdictSafe {
				t.Fatalf("UNSOUND: %d concrete violations (first: %v) but abstract verdict is safe",
					len(conc.Violations), conc.Violations[0].Err)
			}
		})
	}
}

package abstract

import (
	"encoding/binary"
	"math"
	"sort"

	"pgo/internal/ir"
)

// entry is one exact inbox-prefix entry: an event with its abstract payload.
type entry struct {
	ev  ir.EventID
	val Val
}

// cnode is an interned continuation cons cell. Structural sharing plus
// hash-consing gives every distinct continuation a stable id, which the
// configuration encoder uses.
type cnode struct {
	s    *ir.Stmt
	next *cnode
	id   int32
}

// aframe is one abstract call-stack frame. The inherited handler map of the
// concrete semantics is not stored: it is a pure function of the state
// chain below the frame and is recomputed (and cached per location) on
// demand.
type aframe struct {
	state ir.StateID
	ret   *cnode // continuation to resume on return; nil unless pushed by `call`
}

// Abstract machine modes (core.Mode minus the halted tombstone: halted
// machines simply lose their location token).
const (
	modeRun uint8 = iota
	modeRaise
	modeReturn
)

// cfg is the local abstract configuration of one machine instance: the
// counterpart of core.Config over abstract values, extended with the
// class identity and the inbox-prefix spill flag.
type cfg struct {
	class   classID
	mode    uint8
	exitRun bool
	// spilled marks that the exact FIFO prefix overflowed at least once:
	// later entries live in this class's counter pool, so once set, every
	// new enqueue goes to the pool (entries must stay behind the spilled
	// ones) and pool dequeues become possible when the prefix yields
	// nothing.
	spilled bool

	raised    ir.EventID
	raisedVal Val
	msg, arg  Val

	stack []aframe
	vars  []Val
	cont  *cnode
	queue []entry
}

func (c *cfg) clone() *cfg {
	n := *c
	n.stack = append([]aframe(nil), c.stack...)
	n.vars = append([]Val(nil), c.vars...)
	n.queue = append([]entry(nil), c.queue...)
	return &n
}

func (c *cfg) top() *aframe { return &c.stack[len(c.stack)-1] }

// atRest reports that the machine has no pending work: the next step is a
// dequeue (or it blocks).
func (c *cfg) atRest() bool { return c.mode == modeRun && c.cont == nil }

// locID identifies an interned configuration; it doubles as the place id of
// the configuration's counter in markings.
type locID = int32

// poolKey identifies a pooled-inbox counter place: pending (event, payload)
// entries addressed to instances of a class.
type poolKey struct {
	class classID
	ev    ir.EventID
	val   Val
}

// place is one counter dimension of the vector addition system: either a
// machine-configuration count or a pooled-inbox count.
type place struct {
	cfg  *cfg // nil for pool places
	pool poolKey
}

// locMeta caches per-location facts the coverability engine consults on
// every expansion.
type locMeta struct {
	class classID
	// enabled: the machine has pending work (continuation or an unresolved
	// raise/return); expansion runs the closure directly. Otherwise the
	// location is at rest and expansion delivers an event.
	enabled bool
	// deliv[e] reports whether a queued event e would be delivered (not
	// suppressed by the effective deferred set) at the location's top
	// frame. Valid for locations with a nonempty stack.
	deliv []bool
	// inh is the top frame's inherited handler map (see computeInherited).
	inh []int16
}

const (
	inhNone  int16 = -1
	inhDefer int16 = -2
)

// interner hash-conses continuations, configurations, and pool places.
type interner struct {
	p       *ir.Program
	classes []*classInfo
	lv      *liveness

	cnodes map[[2]int32]*cnode
	nextCN int32

	locs   map[string]locID
	places []place // indexed by place id; cfg places and pool places share the space
	metas  []*locMeta

	pools        map[poolKey]int32
	poolsByClass map[classID][]int32

	buf []byte
}

func newInterner(p *ir.Program, classes []*classInfo) *interner {
	return &interner{
		p:            p,
		classes:      classes,
		lv:           computeLiveness(p),
		cnodes:       map[[2]int32]*cnode{},
		locs:         map[string]locID{},
		pools:        map[poolKey]int32{},
		poolsByClass: map[classID][]int32{},
	}
}

// cons interns the cons cell (s, next).
func (in *interner) cons(s *ir.Stmt, next *cnode) *cnode {
	nid := int32(-1)
	if next != nil {
		nid = next.id
	}
	k := [2]int32{int32(s.Index), nid}
	if n, ok := in.cnodes[k]; ok {
		return n
	}
	n := &cnode{s: s, next: next, id: in.nextCN}
	in.nextCN++
	in.cnodes[k] = n
	return n
}

// pushBody prepends body to k, interning every cell.
func (in *interner) pushBody(body []*ir.Stmt, k *cnode) *cnode {
	for i := len(body) - 1; i >= 0; i-- {
		k = in.cons(body[i], k)
	}
	return k
}

// poolPlace interns the pool place for pk.
func (in *interner) poolPlace(pk poolKey) int32 {
	if id, ok := in.pools[pk]; ok {
		return id
	}
	id := int32(len(in.places))
	in.places = append(in.places, place{pool: pk})
	in.metas = append(in.metas, nil)
	in.pools[pk] = id
	in.poolsByClass[pk.class] = append(in.poolsByClass[pk.class], id)
	return id
}

func (in *interner) putVal(v Val) {
	in.buf = append(in.buf, byte(v.Kind))
	in.buf = binary.AppendVarint(in.buf, v.N)
}

// intern canonicalizes c (scrubbing dead fields), encodes it, and returns
// its stable location id. The caller must not mutate c afterwards; intern
// takes ownership.
func (in *interner) intern(c *cfg) locID {
	// Scrub fields that are semantically dead in the current mode so
	// equivalent configurations collapse: outside a raise, the raised
	// event and exit flag are meaningless; at rest, msg/arg are always
	// overwritten by the next dequeue before any statement reads them.
	if c.mode != modeRaise {
		c.raised = 0
		c.raisedVal = Val{}
		c.exitRun = false
	}
	if c.atRest() {
		c.msg = Val{}
		c.arg = Val{}
		if in.lv != nil {
			// Variables dead at this rest point (written before any read on
			// every continuation) carry no information; nulling them merges
			// configurations that differ only in stale values.
			in.lv.scrubDead(in.classes[c.class].typ, c)
		}
	}

	in.buf = in.buf[:0]
	in.buf = binary.AppendVarint(in.buf, int64(c.class))
	in.buf = append(in.buf, c.mode, b2b(c.exitRun), b2b(c.spilled))
	in.buf = binary.AppendVarint(in.buf, int64(c.raised))
	in.putVal(c.raisedVal)
	in.putVal(c.msg)
	in.putVal(c.arg)
	in.buf = binary.AppendVarint(in.buf, int64(len(c.stack)))
	for _, fr := range c.stack {
		in.buf = binary.AppendVarint(in.buf, int64(fr.state))
		rid := int32(-1)
		if fr.ret != nil {
			rid = fr.ret.id
		}
		in.buf = binary.AppendVarint(in.buf, int64(rid))
	}
	for _, v := range c.vars {
		in.putVal(v)
	}
	cid := int32(-1)
	if c.cont != nil {
		cid = c.cont.id
	}
	in.buf = binary.AppendVarint(in.buf, int64(cid))
	in.buf = binary.AppendVarint(in.buf, int64(len(c.queue)))
	for _, q := range c.queue {
		in.buf = binary.AppendVarint(in.buf, int64(q.ev))
		in.putVal(q.val)
	}

	key := string(in.buf)
	if id, ok := in.locs[key]; ok {
		return id
	}
	id := int32(len(in.places))
	in.places = append(in.places, place{cfg: c})
	in.metas = append(in.metas, in.buildMeta(c))
	in.locs[key] = id
	return id
}

func b2b(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// buildMeta computes the cached per-location facts.
func (in *interner) buildMeta(c *cfg) *locMeta {
	m := &locMeta{class: c.class, enabled: c.cont != nil || c.mode != modeRun}
	if len(c.stack) == 0 {
		return m
	}
	mt := in.p.Machines[in.classes[c.class].typ]
	// Reconstruct the top frame's inherited handler map from the state
	// chain: frame 0 inherits nothing; frame i inherits from the state of
	// frame i-1 (which cannot have changed while frame i exists).
	inh := make([]int16, len(in.p.Events))
	for i := range inh {
		inh[i] = inhNone
	}
	for i := 1; i < len(c.stack); i++ {
		inh = computeInherited(in.p, mt.States[c.stack[i-1].state], inh)
	}
	m.inh = inh
	st := mt.States[c.top().state]
	m.deliv = make([]bool, len(in.p.Events))
	for e := range in.p.Events {
		handled := st.Trans[e].Kind != ir.TransNone || st.Action[e] != ir.NoAction
		deferred := inh[e] == inhDefer || st.Deferred.Contains(ir.EventID(e))
		m.deliv[e] = handled || !deferred
	}
	return m
}

// computeInherited ports core's CALL-rule handler-map computation: the
// callee masks events the caller state transitions on, binds the caller's
// actions, marks the caller's deferrals, and inherits the rest.
func computeInherited(p *ir.Program, st *ir.State, parent []int16) []int16 {
	out := make([]int16, len(p.Events))
	for e := range out {
		switch {
		case st.Trans[e].Kind != ir.TransNone:
			out[e] = inhNone
		case st.Action[e] != ir.NoAction:
			out[e] = int16(st.Action[e])
		case st.Deferred.Contains(ir.EventID(e)):
			out[e] = inhDefer
		default:
			out[e] = parent[e]
		}
	}
	return out
}

// firstDeliverable returns the index of the first prefix entry the DEQUEUE
// rule would deliver, or -1. Exact: prefix order is the true FIFO order.
func firstDeliverable(c *cfg, meta *locMeta) int {
	for i, q := range c.queue {
		if meta.deliv[q.ev] {
			return i
		}
	}
	return -1
}

// --- markings ---

// omega is the ω sentinel of the Karp–Miller construction: "arbitrarily
// many" tokens in a place.
const omega = int32(math.MaxInt32)

// marking counts tokens per place. Places absent from the map hold zero.
type marking map[int32]int32

func (m marking) clone() marking {
	n := make(marking, len(m)+2)
	for k, v := range m {
		n[k] = v
	}
	return n
}

// add increments place p by d (saturating at ω), removing zero entries.
func (m marking) add(p int32, d int32) {
	v := m[p]
	if v == omega {
		return
	}
	v += d
	if v <= 0 {
		delete(m, p)
		return
	}
	m[p] = v
}

func (m marking) get(p int32) int32 { return m[p] }

// leq reports m ≤ o pointwise (ω dominates everything).
func (m marking) leq(o marking) bool {
	for p, v := range m {
		ov := o[p]
		if ov != omega && (v == omega || v > ov) {
			return false
		}
	}
	return true
}

func (m marking) equal(o marking) bool {
	return len(m) == len(o) && m.leq(o) && o.leq(m)
}

// key returns a canonical string encoding for the visited set.
func (m marking) key(buf []byte) (string, []byte) {
	ids := make([]int32, 0, len(m))
	for p := range m {
		ids = append(ids, p)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	buf = buf[:0]
	for _, p := range ids {
		buf = binary.AppendVarint(buf, int64(p))
		buf = binary.AppendVarint(buf, int64(m[p]))
	}
	return string(buf), buf
}

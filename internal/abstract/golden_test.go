package abstract_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"pgo/internal/abstract"
	"pgo/internal/analysis"
)

var update = flag.Bool("update", false, "rewrite golden files")

// Golden plint -abstract reports for the seeded parameterized programs:
// the combined finding list (flow analyses + P4xx coverability findings)
// rendered exactly as `plint -abstract -json` renders it. The engine's
// exploration order is deterministic, so the P401 marking counts in the
// messages are stable.
// Regenerate with: go test ./internal/abstract -run TestGoldenAbstractReports -update
func TestGoldenAbstractReports(t *testing.T) {
	for _, name := range []string{"mutex_param", "german_unsafe_paramN"} {
		name := name
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join("..", "..", "testdata", name+".p"))
			if err != nil {
				t.Fatal(err)
			}
			findings, rep, prog, err := analysis.RunWithProgram(name, string(src))
			if err != nil {
				t.Fatalf("analysis failed: %v", err)
			}
			res := abstract.Analyze(prog, abstract.Options{Facts: rep})
			findings = append(findings, res.Findings()...)
			analysis.SortFindings(findings)

			var buf bytes.Buffer
			if err := analysis.WriteJSON(&buf, name, findings); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "golden", name+".json")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file %s (run with -update): %v", path, err)
			}
			if !bytes.Equal(want, buf.Bytes()) {
				t.Fatalf("golden mismatch for %s:\n--- want ---\n%s\n--- got ---\n%s", path, want, buf.Bytes())
			}
		})
	}
}

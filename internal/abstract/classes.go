package abstract

import (
	"fmt"

	"pgo/internal/ir"
)

// classID indexes translation.classes. Instances are grouped by creation
// site: one class per SNew statement plus one for the main machine. The
// grouping is the abstraction's notion of identity — references to a
// singleton class denote a unique machine, references to a many class
// denote "some instance created here".
type classID int32

type classInfo struct {
	id   classID
	typ  ir.MachineTypeID
	site *ir.Stmt // nil for the main-machine class
	// singleton reports that the creation site provably executes at most
	// once across the whole program, so at most one instance of this class
	// ever exists.
	singleton bool
	name      string
}

// buildClasses enumerates creation-site classes and computes the
// singleton/many classification as a greatest fixpoint: every class starts
// singleton and is demoted when its site sits in a loop, in a body that can
// rerun (state exits, action handlers, re-enterable state entries), or in a
// machine type that may itself have more than one instance.
func buildClasses(p *ir.Program) []*classInfo {
	var classes []*classInfo
	// The main machine is created exactly once by the runtime.
	classes = append(classes, &classInfo{typ: p.Main, site: nil, singleton: true})

	// siteCtx records where each SNew statement sits.
	type siteCtx struct {
		class     *classInfo
		container ir.MachineTypeID
		rerun     bool // the enclosing body can execute more than once per instance
		inLoop    bool
	}
	var sites []*siteCtx

	collect := func(container ir.MachineTypeID, body []*ir.Stmt, rerun bool) {
		var walk func(ss []*ir.Stmt, inLoop bool)
		walk = func(ss []*ir.Stmt, inLoop bool) {
			for _, s := range ss {
				if s.Op == ir.SNew {
					ci := &classInfo{typ: s.Machine, site: s, singleton: true}
					classes = append(classes, ci)
					sites = append(sites, &siteCtx{class: ci, container: container, rerun: rerun, inLoop: inLoop})
				}
				walk(s.Body, inLoop || s.Op == ir.SWhile)
				walk(s.Else, inLoop)
			}
		}
		walk(body, false)
	}

	for _, m := range p.Machines {
		// A state's entry body reruns iff the state can be entered again
		// after its first activation: any transition or call statement
		// targets it. (Popping back to a frame resumes it without rerunning
		// the entry.)
		reenter := make([]bool, len(m.States))
		for _, st := range m.States {
			for e := range p.Events {
				if tr := st.Trans[e]; tr.Kind != ir.TransNone {
					reenter[tr.Target] = true
				}
			}
			ir.WalkStmts(st.Entry, func(s *ir.Stmt) {
				if s.Op == ir.SCallState {
					reenter[s.State] = true
				}
			})
			ir.WalkStmts(st.Exit, func(s *ir.Stmt) {
				if s.Op == ir.SCallState {
					reenter[s.State] = true
				}
			})
		}
		for _, a := range m.Actions {
			ir.WalkStmts(a.Body, func(s *ir.Stmt) {
				if s.Op == ir.SCallState {
					reenter[s.State] = true
				}
			})
		}
		for si, st := range m.States {
			collect(m.ID, st.Entry, reenter[si])
			// Exit bodies run on every state exit; conservatively rerunnable.
			collect(m.ID, st.Exit, true)
		}
		for _, a := range m.Actions {
			// Action handlers run once per delivered event.
			collect(m.ID, a.Body, true)
		}
	}

	// classesOf[t] lists the classes instantiating machine type t.
	classesOf := make([][]*classInfo, len(p.Machines))
	for _, ci := range classes {
		classesOf[ci.typ] = append(classesOf[ci.typ], ci)
	}

	// Demote to fixpoint. typeSingleton(t) holds when type t provably has
	// at most one instance: exactly one class, and that class singleton.
	typeSingleton := func(t ir.MachineTypeID) bool {
		cs := classesOf[t]
		return len(cs) == 1 && cs[0].singleton
	}
	for changed := true; changed; {
		changed = false
		for _, sc := range sites {
			if !sc.class.singleton {
				continue
			}
			if sc.inLoop || sc.rerun || !typeSingleton(sc.container) {
				sc.class.singleton = false
				changed = true
			}
		}
	}

	// Names: the type name, disambiguated by an ordinal when several sites
	// create the same type.
	ordinal := make(map[ir.MachineTypeID]int)
	for i, ci := range classes {
		ci.id = classID(i)
		tn := p.Machines[ci.typ].Name
		if len(classesOf[ci.typ]) > 1 {
			ordinal[ci.typ]++
			ci.name = fmt.Sprintf("%s#%d", tn, ordinal[ci.typ])
		} else {
			ci.name = tn
		}
	}
	return classes
}

// typeCanHalt reports, per machine type, whether any reachable code of the
// type contains a delete statement — used to decide whether a send to a
// many-class reference must fork an ErrSendDeleted outcome.
func typeCanHalt(p *ir.Program) []bool {
	out := make([]bool, len(p.Machines))
	for ti, m := range p.Machines {
		found := false
		see := func(s *ir.Stmt) {
			if s.Op == ir.SDelete {
				found = true
			}
		}
		for _, st := range m.States {
			ir.WalkStmts(st.Entry, see)
			ir.WalkStmts(st.Exit, see)
		}
		for _, a := range m.Actions {
			ir.WalkStmts(a.Body, see)
		}
		out[ti] = found
	}
	return out
}

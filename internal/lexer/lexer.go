// Package lexer implements the scanner for the P surface language.
//
// The scanner is hand written: P's token set is small and error recovery
// (skipping an illegal rune and continuing) is easier to control by hand.
// Comments use // to end of line and /* ... */ (non-nesting).
package lexer

import (
	"unicode"
	"unicode/utf8"

	"pgo/internal/source"
	"pgo/internal/token"
)

// Token is a scanned token with its source span and literal text.
type Token struct {
	Kind token.Kind
	Span source.Span
	Text string // literal text for Ident, Int, String, Illegal
}

// Lexer scans P source text into tokens.
type Lexer struct {
	src   string
	off   int // byte offset of next rune
	line  int
	col   int
	diags *source.DiagList
}

// New returns a lexer over src reporting problems to diags.
// diags may be nil, in which case lexical errors surface only as Illegal
// tokens.
func New(src string, diags *source.DiagList) *Lexer {
	return &Lexer{src: src, line: 1, col: 1, diags: diags}
}

// Tokenize scans the entire input and returns all tokens, ending with EOF.
func Tokenize(src string, diags *source.DiagList) []Token {
	lx := New(src, diags)
	var toks []Token
	for {
		t := lx.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks
		}
	}
}

func (l *Lexer) pos() source.Pos { return source.Pos{Line: l.line, Col: l.col} }

func (l *Lexer) peek() rune {
	if l.off >= len(l.src) {
		return -1
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.off:])
	return r
}

func (l *Lexer) peek2() rune {
	if l.off >= len(l.src) {
		return -1
	}
	_, w := utf8.DecodeRuneInString(l.src[l.off:])
	if l.off+w >= len(l.src) {
		return -1
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.off+w:])
	return r
}

func (l *Lexer) advance() rune {
	if l.off >= len(l.src) {
		return -1
	}
	r, w := utf8.DecodeRuneInString(l.src[l.off:])
	l.off += w
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *Lexer) skipSpaceAndComments() {
	for {
		switch r := l.peek(); {
		case r == ' ' || r == '\t' || r == '\r' || r == '\n':
			l.advance()
		case r == '/' && l.peek2() == '/':
			for l.peek() != '\n' && l.peek() != -1 {
				l.advance()
			}
		case r == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance() // '/'
			l.advance() // '*'
			closed := false
			for l.peek() != -1 {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed && l.diags != nil {
				l.diags.Errorf(source.Span{Start: start, End: l.pos()}, "unterminated block comment")
			}
		default:
			return
		}
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentCont(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// Next scans and returns the next token.
func (l *Lexer) Next() Token {
	l.skipSpaceAndComments()
	start := l.pos()
	startOff := l.off
	r := l.peek()
	if r == -1 {
		return Token{Kind: token.EOF, Span: source.Span{Start: start, End: start}}
	}

	mk := func(k token.Kind) Token {
		return Token{Kind: k, Span: source.Span{Start: start, End: l.pos()}, Text: l.src[startOff:l.off]}
	}

	switch {
	case isIdentStart(r):
		for isIdentCont(l.peek()) {
			l.advance()
		}
		text := l.src[startOff:l.off]
		return Token{Kind: token.Lookup(text), Span: source.Span{Start: start, End: l.pos()}, Text: text}
	case unicode.IsDigit(r):
		for unicode.IsDigit(l.peek()) {
			l.advance()
		}
		if isIdentStart(l.peek()) {
			for isIdentCont(l.peek()) {
				l.advance()
			}
			tok := mk(token.Illegal)
			if l.diags != nil {
				l.diags.Errorf(tok.Span, "malformed number %q", tok.Text)
			}
			return tok
		}
		return mk(token.Int)
	}

	l.advance()
	switch r {
	case '=':
		if l.peek() == '=' {
			l.advance()
			return mk(token.Eq)
		}
		return mk(token.Assign)
	case '+':
		return mk(token.Plus)
	case '-':
		return mk(token.Minus)
	case '*':
		return mk(token.Star)
	case '/':
		return mk(token.Slash)
	case '%':
		return mk(token.Percent)
	case '!':
		if l.peek() == '=' {
			l.advance()
			return mk(token.Neq)
		}
		return mk(token.Not)
	case '<':
		if l.peek() == '=' {
			l.advance()
			return mk(token.Le)
		}
		return mk(token.Lt)
	case '>':
		if l.peek() == '=' {
			l.advance()
			return mk(token.Ge)
		}
		return mk(token.Gt)
	case '&':
		if l.peek() == '&' {
			l.advance()
			return mk(token.AndAnd)
		}
	case '|':
		if l.peek() == '|' {
			l.advance()
			return mk(token.OrOr)
		}
	case '(':
		return mk(token.LParen)
	case ')':
		return mk(token.RParen)
	case '{':
		return mk(token.LBrace)
	case '}':
		return mk(token.RBrace)
	case ',':
		return mk(token.Comma)
	case ';':
		return mk(token.Semi)
	case ':':
		return mk(token.Colon)
	case '.':
		return mk(token.Dot)
	}
	tok := mk(token.Illegal)
	if l.diags != nil {
		l.diags.Errorf(tok.Span, "illegal character %q", string(r))
	}
	return tok
}

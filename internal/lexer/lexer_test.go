package lexer_test

import (
	"testing"

	"pgo/internal/lexer"
	"pgo/internal/source"
	"pgo/internal/token"
)

func kinds(toks []lexer.Token) []token.Kind {
	out := make([]token.Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestBasicTokens(t *testing.T) {
	var diags source.DiagList
	toks := lexer.Tokenize(`machine M { var x: int; } // comment`, &diags)
	want := []token.Kind{
		token.KwMachine, token.Ident, token.LBrace, token.KwVar, token.Ident,
		token.Colon, token.KwInt, token.Semi, token.RBrace, token.EOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v (all: %v)", i, got[i], want[i], got)
		}
	}
	if diags.HasErrors() {
		t.Fatalf("unexpected diagnostics: %s", diags.String())
	}
}

func TestOperators(t *testing.T) {
	var diags source.DiagList
	toks := lexer.Tokenize(`== != <= >= < > && || ! = + - * / %`, &diags)
	want := []token.Kind{
		token.Eq, token.Neq, token.Le, token.Ge, token.Lt, token.Gt,
		token.AndAnd, token.OrOr, token.Not, token.Assign, token.Plus,
		token.Minus, token.Star, token.Slash, token.Percent, token.EOF,
	}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestPositions(t *testing.T) {
	var diags source.DiagList
	toks := lexer.Tokenize("event A;\nevent B;", &diags)
	// Second "event" keyword is at line 2 column 1.
	if toks[3].Span.Start != (source.Pos{Line: 2, Col: 1}) {
		t.Fatalf("position = %v, want 2:1", toks[3].Span.Start)
	}
	if toks[4].Span.Start != (source.Pos{Line: 2, Col: 7}) {
		t.Fatalf("position = %v, want 2:7", toks[4].Span.Start)
	}
}

func TestBlockComments(t *testing.T) {
	var diags source.DiagList
	toks := lexer.Tokenize("a /* skip\nmulti line */ b", &diags)
	if len(toks) != 3 || toks[0].Text != "a" || toks[1].Text != "b" {
		t.Fatalf("tokens = %v", toks)
	}
	if diags.HasErrors() {
		t.Fatalf("diagnostics: %s", diags.String())
	}
}

func TestUnterminatedBlockComment(t *testing.T) {
	var diags source.DiagList
	lexer.Tokenize("a /* never closed", &diags)
	if !diags.HasErrors() {
		t.Fatal("unterminated comment not reported")
	}
}

func TestIllegalRune(t *testing.T) {
	var diags source.DiagList
	toks := lexer.Tokenize("a @ b", &diags)
	if toks[1].Kind != token.Illegal {
		t.Fatalf("expected Illegal, got %v", toks[1].Kind)
	}
	if !diags.HasErrors() {
		t.Fatal("illegal rune not reported")
	}
	// Scanning continues after the bad rune.
	if toks[2].Text != "b" {
		t.Fatalf("recovery failed: %v", toks)
	}
}

func TestMalformedNumber(t *testing.T) {
	var diags source.DiagList
	toks := lexer.Tokenize("123abc", &diags)
	if toks[0].Kind != token.Illegal {
		t.Fatalf("expected Illegal for 123abc, got %v", toks[0].Kind)
	}
	if !diags.HasErrors() {
		t.Fatal("malformed number not reported")
	}
}

func TestKeywordLookup(t *testing.T) {
	cases := map[string]token.Kind{
		"machine": token.KwMachine,
		"ghost":   token.KwGhost,
		"defer":   token.KwDefer,
		"Machine": token.Ident, // case sensitive
		"foo":     token.Ident,
	}
	for s, want := range cases {
		if got := token.Lookup(s); got != want {
			t.Errorf("Lookup(%q) = %v, want %v", s, got, want)
		}
	}
}

func TestEOFIsSticky(t *testing.T) {
	var diags source.DiagList
	lx := lexer.New("x", &diags)
	lx.Next() // x
	for i := 0; i < 3; i++ {
		if tok := lx.Next(); tok.Kind != token.EOF {
			t.Fatalf("Next after EOF = %v", tok.Kind)
		}
	}
}

func TestUnicodeIdentifiers(t *testing.T) {
	var diags source.DiagList
	toks := lexer.Tokenize("état _x x9", &diags)
	if toks[0].Text != "état" || toks[1].Text != "_x" || toks[2].Text != "x9" {
		t.Fatalf("tokens = %v", toks)
	}
	if diags.HasErrors() {
		t.Fatalf("diagnostics: %s", diags.String())
	}
}

package ir

import (
	"fmt"
	"strings"
)

// Dump renders the lowered program as a stable, human-readable disassembly:
// the event table, and for each machine its variables, foreign functions,
// actions, and states with handler tables and statement bodies. It is the
// debugging view of the "generated code" data structures (pc -ir) and the
// anchor of the golden tests.
func Dump(p *Program) string {
	d := &dumper{prog: p}
	fmt.Fprintf(&d.b, "program %s", p.Name)
	if p.Erased {
		d.b.WriteString(" (erased)")
	}
	fmt.Fprintf(&d.b, "\nmain = %s\n", p.Machines[p.Main].Name)
	if len(p.MainInits) > 0 {
		d.b.WriteString("main inits:")
		for _, in := range p.MainInits {
			fmt.Fprintf(&d.b, " %s=%s", p.Machines[p.Main].Vars[in.Var].Name, d.expr(in.Expr))
		}
		d.b.WriteByte('\n')
	}
	d.b.WriteString("\nevents:\n")
	for i, e := range p.Events {
		if e.Payload == TypeVoid {
			fmt.Fprintf(&d.b, "  %3d %s\n", i, e.Name)
		} else {
			fmt.Fprintf(&d.b, "  %3d %s(%s)\n", i, e.Name, e.Payload)
		}
	}
	for _, m := range p.Machines {
		d.machine(m)
	}
	return d.b.String()
}

type dumper struct {
	prog *Program
	b    strings.Builder
	mach *Machine
}

func (d *dumper) machine(m *Machine) {
	d.mach = m
	kind := "machine"
	if m.Ghost {
		kind = "ghost machine"
	}
	fmt.Fprintf(&d.b, "\n%s %s (id %d)", kind, m.Name, m.ID)
	if m.ErasedStub {
		d.b.WriteString(" [erased stub]\n")
		return
	}
	d.b.WriteByte('\n')
	for i, v := range m.Vars {
		g := ""
		if v.Ghost {
			g = " ghost"
		}
		fmt.Fprintf(&d.b, "  var %d %s: %s%s\n", i, v.Name, v.Type, g)
	}
	for i, f := range m.Foreigns {
		var params []string
		for _, t := range f.Params {
			params = append(params, t.String())
		}
		fmt.Fprintf(&d.b, "  foreign %d %s(%s): %s", i, f.Name, strings.Join(params, ", "), f.Result)
		if f.Model != nil {
			d.b.WriteString(" model:\n")
			d.stmts(f.Model, 2)
		} else {
			d.b.WriteByte('\n')
		}
	}
	for i, a := range m.Actions {
		fmt.Fprintf(&d.b, "  action %d %s:\n", i, a.Name)
		d.stmts(a.Body, 2)
	}
	for _, s := range m.States {
		d.state(s)
	}
}

func (d *dumper) state(s *State) {
	fmt.Fprintf(&d.b, "  state %d %s", s.ID, s.Name)
	if s.ID == d.mach.Init {
		d.b.WriteString(" [initial]")
	}
	d.b.WriteByte('\n')
	if !s.Deferred.IsEmpty() {
		fmt.Fprintf(&d.b, "    defer %s\n", d.events(s.Deferred))
	}
	if !s.Postponed.IsEmpty() {
		fmt.Fprintf(&d.b, "    postpone %s\n", d.events(s.Postponed))
	}
	for e, tr := range s.Trans {
		switch tr.Kind {
		case TransStep:
			fmt.Fprintf(&d.b, "    on %s goto %s\n", d.prog.Events[e].Name, d.mach.States[tr.Target].Name)
		case TransCall:
			fmt.Fprintf(&d.b, "    on %s push %s\n", d.prog.Events[e].Name, d.mach.States[tr.Target].Name)
		}
	}
	for e, a := range s.Action {
		if a != NoAction {
			fmt.Fprintf(&d.b, "    on %s do %s\n", d.prog.Events[e].Name, d.mach.Actions[a].Name)
		}
	}
	if len(s.Entry) > 0 {
		d.b.WriteString("    entry:\n")
		d.stmts(s.Entry, 3)
	}
	if len(s.Exit) > 0 {
		d.b.WriteString("    exit:\n")
		d.stmts(s.Exit, 3)
	}
}

func (d *dumper) events(set EventSet) string {
	var names []string
	for _, e := range set.Events() {
		names = append(names, d.prog.Events[e].Name)
	}
	return strings.Join(names, ", ")
}

func (d *dumper) stmts(ss []*Stmt, indent int) {
	pad := strings.Repeat("  ", indent)
	for _, s := range ss {
		switch s.Op {
		case SSkip:
			fmt.Fprintf(&d.b, "%sskip\n", pad)
		case SAssign:
			fmt.Fprintf(&d.b, "%s%s = %s\n", pad, d.varName(s.Var), d.expr(s.Expr))
		case SNew:
			var inits []string
			target := d.prog.Machines[s.Machine]
			for _, in := range s.Inits {
				inits = append(inits, fmt.Sprintf("%s=%s", target.Vars[in.Var].Name, d.expr(in.Expr)))
			}
			fmt.Fprintf(&d.b, "%s%s = new %s(%s)\n", pad, d.varName(s.Var), target.Name, strings.Join(inits, ", "))
		case SDelete:
			fmt.Fprintf(&d.b, "%sdelete\n", pad)
		case SSend:
			if s.Expr != nil {
				fmt.Fprintf(&d.b, "%ssend %s, %s, %s\n", pad, d.expr(s.Target), d.prog.Events[s.Event].Name, d.expr(s.Expr))
			} else {
				fmt.Fprintf(&d.b, "%ssend %s, %s\n", pad, d.expr(s.Target), d.prog.Events[s.Event].Name)
			}
		case SRaise:
			if s.Expr != nil {
				fmt.Fprintf(&d.b, "%sraise %s, %s\n", pad, d.prog.Events[s.Event].Name, d.expr(s.Expr))
			} else {
				fmt.Fprintf(&d.b, "%sraise %s\n", pad, d.prog.Events[s.Event].Name)
			}
		case SLeave:
			fmt.Fprintf(&d.b, "%sleave\n", pad)
		case SReturn:
			fmt.Fprintf(&d.b, "%sreturn\n", pad)
		case SAssert:
			fmt.Fprintf(&d.b, "%sassert %s\n", pad, d.expr(s.Expr))
		case SIf:
			fmt.Fprintf(&d.b, "%sif %s:\n", pad, d.expr(s.Expr))
			d.stmts(s.Body, indent+1)
			if len(s.Else) > 0 {
				fmt.Fprintf(&d.b, "%selse:\n", pad)
				d.stmts(s.Else, indent+1)
			}
		case SWhile:
			fmt.Fprintf(&d.b, "%swhile %s:\n", pad, d.expr(s.Expr))
			d.stmts(s.Body, indent+1)
		case SCallState:
			fmt.Fprintf(&d.b, "%scall %s\n", pad, d.mach.States[s.State].Name)
		case SForeign:
			var args []string
			for _, a := range s.Args {
				args = append(args, d.expr(a))
			}
			fmt.Fprintf(&d.b, "%s%s(%s)\n", pad, d.mach.Foreigns[s.Foreign].Name, strings.Join(args, ", "))
		default:
			fmt.Fprintf(&d.b, "%s?stmt(%d)\n", pad, s.Op)
		}
	}
}

func (d *dumper) varName(v VarID) string {
	if int(v) < len(d.mach.Vars) {
		return d.mach.Vars[v].Name
	}
	return fmt.Sprintf("var%d", v)
}

func (d *dumper) expr(e *Expr) string {
	switch e.Op {
	case EInt:
		return fmt.Sprintf("%d", e.Int)
	case EBool:
		if e.Int != 0 {
			return "true"
		}
		return "false"
	case ENull:
		return "null"
	case EThis:
		return "this"
	case EMsg:
		return "msg"
	case EArg:
		return "arg"
	case EChoose:
		return "*"
	case EVar:
		return d.varName(e.Var)
	case EEvent:
		return d.prog.Events[e.Event].Name
	case ENot:
		return "!" + d.expr(e.X)
	case ENeg:
		return "-" + d.expr(e.X)
	case EBinary:
		return fmt.Sprintf("(%s %s %s)", d.expr(e.X), e.Bin, d.expr(e.Y))
	case ECall:
		var args []string
		for _, a := range e.Args {
			args = append(args, d.expr(a))
		}
		return fmt.Sprintf("%s(%s)", d.mach.Foreigns[e.ForeignFn].Name, strings.Join(args, ", "))
	default:
		return fmt.Sprintf("?expr(%d)", e.Op)
	}
}

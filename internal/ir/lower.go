package ir

import (
	"fmt"

	"pgo/internal/ast"
	"pgo/internal/source"
	"pgo/internal/types"
)

// Lower converts a checked program into the lowered table representation.
// It must only be called when semantic analysis reported no errors.
func Lower(name string, chk *types.Checked) (*Program, error) {
	if chk.MainMachine == nil {
		return nil, fmt.Errorf("ir: program has no main machine")
	}
	lw := &lowerer{chk: chk, prog: &Program{Name: name}}
	for _, e := range chk.Events {
		sp := source.Span{}
		if e.Decl != nil {
			sp = e.Decl.Name.Sp
		}
		lw.prog.Events = append(lw.prog.Events, Event{Name: e.Name, Payload: lowerType(e.Payload), Span: sp})
	}
	for _, m := range chk.Machines {
		lm, err := lw.lowerMachine(m)
		if err != nil {
			return nil, err
		}
		lw.prog.Machines = append(lw.prog.Machines, lm)
	}
	lw.prog.Main = MachineTypeID(chk.MainMachine.ID)
	mainSym := chk.MainMachine
	lw.mach = mainSym
	for _, init := range chk.AST.Main.Inits {
		v, ok := mainSym.VarByName[init.Name.Name]
		if !ok {
			return nil, fmt.Errorf("ir: main initializer names unknown variable %s", init.Name.Name)
		}
		e, err := lw.lowerExpr(init.Expr)
		if err != nil {
			return nil, err
		}
		lw.prog.MainInits = append(lw.prog.MainInits, Init{Var: VarID(v.ID), Expr: e})
	}
	lw.prog.NumStmts = lw.nextIndex
	if err := lw.prog.Validate(); err != nil {
		return nil, err
	}
	return lw.prog, nil
}

func lowerType(t types.Type) Type {
	switch t {
	case types.Void:
		return TypeVoid
	case types.Bool:
		return TypeBool
	case types.Int:
		return TypeInt
	case types.Event:
		return TypeEvent
	case types.ID:
		return TypeID
	default:
		return TypeAny
	}
}

type lowerer struct {
	chk       *types.Checked
	prog      *Program
	mach      *types.MachineSym
	nextIndex int
}

func (lw *lowerer) alloc(op StmtOp) *Stmt {
	s := &Stmt{Op: op, Index: lw.nextIndex}
	lw.nextIndex++
	return s
}

func (lw *lowerer) lowerMachine(sym *types.MachineSym) (*Machine, error) {
	lw.mach = sym
	m := &Machine{
		Name:  sym.Name,
		ID:    MachineTypeID(sym.ID),
		Ghost: sym.Ghost,
		Init:  0,
	}
	if sym.Decl != nil {
		m.Span = sym.Decl.Name.Sp
	}
	for _, v := range sym.Vars {
		m.Vars = append(m.Vars, Var{Name: v.Name, Type: lowerType(v.Type), Ghost: v.Ghost})
	}
	for _, f := range sym.Foreigns {
		lf := Foreign{Name: f.Name, Result: lowerType(f.Result), ModelID: ForeignID(f.ID)}
		for _, pt := range f.Params {
			lf.Params = append(lf.Params, lowerType(pt))
		}
		if f.Decl.Model != nil {
			body, err := lw.lowerBlock(f.Decl.Model)
			if err != nil {
				return nil, err
			}
			lf.Model = body
		}
		m.Foreigns = append(m.Foreigns, lf)
	}
	for _, a := range sym.Actions {
		body, err := lw.lowerBlock(a.Decl.Body)
		if err != nil {
			return nil, err
		}
		m.Actions = append(m.Actions, Action{Name: a.Name, Body: body})
	}

	// A shared no-op action backs "on E ignore" bindings; allocated lazily.
	ignoreID := NoAction
	getIgnore := func() ActionID {
		if ignoreID == NoAction {
			ignoreID = ActionID(len(m.Actions))
			m.Actions = append(m.Actions, Action{Name: "$ignore"})
		}
		return ignoreID
	}

	ne := len(lw.prog.Events)
	for _, st := range sym.States {
		ls := &State{Name: st.Name, ID: StateID(st.ID)}
		if st.Decl != nil {
			ls.Span = st.Decl.Name.Sp
		}
		ls.Trans = make([]Transition, ne)
		ls.Action = make([]ActionID, ne)
		for i := range ls.Action {
			ls.Action[i] = NoAction
		}
		for _, id := range st.Decl.Deferred {
			if ev, ok := lw.chk.EventByName[id.Name]; ok {
				ls.Deferred.Add(EventID(ev.ID))
			}
		}
		for _, id := range st.Decl.Postponed {
			if ev, ok := lw.chk.EventByName[id.Name]; ok {
				ls.Postponed.Add(EventID(ev.ID))
			}
		}
		for _, tr := range st.Decl.Trans {
			ev, ok := lw.chk.EventByName[tr.Event.Name]
			if !ok {
				return nil, fmt.Errorf("ir: unresolved event %s", tr.Event.Name)
			}
			eid := EventID(ev.ID)
			switch tr.Kind {
			case ast.TransStep, ast.TransCall:
				target, ok := sym.StateByName[tr.Target.Name]
				if !ok {
					return nil, fmt.Errorf("ir: unresolved state %s.%s", sym.Name, tr.Target.Name)
				}
				kind := TransStep
				if tr.Kind == ast.TransCall {
					kind = TransCall
				}
				ls.Trans[eid] = Transition{Kind: kind, Target: StateID(target.ID)}
			case ast.TransAction:
				a, ok := sym.ActionByName[tr.Target.Name]
				if !ok {
					return nil, fmt.Errorf("ir: unresolved action %s.%s", sym.Name, tr.Target.Name)
				}
				ls.Action[eid] = ActionID(a.ID)
			case ast.TransIgnore:
				ls.Action[eid] = getIgnore()
			}
		}
		if st.Decl.Entry != nil {
			body, err := lw.lowerBlock(st.Decl.Entry)
			if err != nil {
				return nil, err
			}
			ls.Entry = body
		}
		if st.Decl.Exit != nil {
			body, err := lw.lowerBlock(st.Decl.Exit)
			if err != nil {
				return nil, err
			}
			ls.Exit = body
		}
		m.States = append(m.States, ls)
	}
	return m, nil
}

func (lw *lowerer) lowerBlock(b *ast.Block) ([]*Stmt, error) {
	var out []*Stmt
	for _, s := range b.Stmts {
		ls, err := lw.lowerStmt(s)
		if err != nil {
			return nil, err
		}
		out = append(out, ls...)
	}
	return out, nil
}

// lowerStmt returns the lowered form of s. Blocks flatten into sequences.
func (lw *lowerer) lowerStmt(s ast.Stmt) ([]*Stmt, error) {
	switch s := s.(type) {
	case *ast.Block:
		return lw.lowerBlock(s)
	case *ast.SkipStmt:
		out := lw.alloc(SSkip)
		out.Span = s.Sp
		return []*Stmt{out}, nil
	case *ast.AssignStmt:
		v, ok := lw.mach.VarByName[s.Name.Name]
		if !ok {
			return nil, fmt.Errorf("ir: unresolved variable %s.%s", lw.mach.Name, s.Name.Name)
		}
		e, err := lw.lowerExpr(s.Expr)
		if err != nil {
			return nil, err
		}
		out := lw.alloc(SAssign)
		out.Var = VarID(v.ID)
		out.Expr = e
		out.Span = s.Sp
		return []*Stmt{out}, nil
	case *ast.NewStmt:
		v, ok := lw.mach.VarByName[s.Name.Name]
		if !ok {
			return nil, fmt.Errorf("ir: unresolved variable %s.%s", lw.mach.Name, s.Name.Name)
		}
		target, ok := lw.chk.MachineByName[s.Machine.Name]
		if !ok {
			return nil, fmt.Errorf("ir: unresolved machine %s", s.Machine.Name)
		}
		out := lw.alloc(SNew)
		out.Var = VarID(v.ID)
		out.Machine = MachineTypeID(target.ID)
		out.Span = s.Sp
		for _, init := range s.Inits {
			tv, ok := target.VarByName[init.Name.Name]
			if !ok {
				return nil, fmt.Errorf("ir: unresolved initializer %s.%s", target.Name, init.Name.Name)
			}
			e, err := lw.lowerExpr(init.Expr)
			if err != nil {
				return nil, err
			}
			out.Inits = append(out.Inits, Init{Var: VarID(tv.ID), Expr: e})
		}
		return []*Stmt{out}, nil
	case *ast.DeleteStmt:
		out := lw.alloc(SDelete)
		out.Span = s.Sp
		return []*Stmt{out}, nil
	case *ast.SendStmt:
		ev, ok := lw.chk.EventByName[s.Event.Name]
		if !ok {
			return nil, fmt.Errorf("ir: unresolved event %s", s.Event.Name)
		}
		target, err := lw.lowerExpr(s.Target)
		if err != nil {
			return nil, err
		}
		out := lw.alloc(SSend)
		out.Event = EventID(ev.ID)
		out.Target = target
		out.Span = s.Sp
		if s.Payload != nil {
			p, err := lw.lowerExpr(s.Payload)
			if err != nil {
				return nil, err
			}
			out.Expr = p
		}
		return []*Stmt{out}, nil
	case *ast.RaiseStmt:
		ev, ok := lw.chk.EventByName[s.Event.Name]
		if !ok {
			return nil, fmt.Errorf("ir: unresolved event %s", s.Event.Name)
		}
		out := lw.alloc(SRaise)
		out.Event = EventID(ev.ID)
		out.Span = s.Sp
		if s.Payload != nil {
			p, err := lw.lowerExpr(s.Payload)
			if err != nil {
				return nil, err
			}
			out.Expr = p
		}
		return []*Stmt{out}, nil
	case *ast.LeaveStmt:
		out := lw.alloc(SLeave)
		out.Span = s.Sp
		return []*Stmt{out}, nil
	case *ast.ReturnStmt:
		out := lw.alloc(SReturn)
		out.Span = s.Sp
		return []*Stmt{out}, nil
	case *ast.AssertStmt:
		e, err := lw.lowerExpr(s.Expr)
		if err != nil {
			return nil, err
		}
		out := lw.alloc(SAssert)
		out.Expr = e
		out.Span = s.Sp
		return []*Stmt{out}, nil
	case *ast.IfStmt:
		cond, err := lw.lowerExpr(s.Cond)
		if err != nil {
			return nil, err
		}
		out := lw.alloc(SIf)
		out.Expr = cond
		out.Span = s.Sp
		out.Body, err = lw.lowerBlock(s.Then)
		if err != nil {
			return nil, err
		}
		if s.Else != nil {
			out.Else, err = lw.lowerStmt(s.Else)
			if err != nil {
				return nil, err
			}
		}
		return []*Stmt{out}, nil
	case *ast.WhileStmt:
		cond, err := lw.lowerExpr(s.Cond)
		if err != nil {
			return nil, err
		}
		out := lw.alloc(SWhile)
		out.Expr = cond
		out.Span = s.Sp
		out.Body, err = lw.lowerBlock(s.Body)
		if err != nil {
			return nil, err
		}
		return []*Stmt{out}, nil
	case *ast.CallStmt:
		st, ok := lw.mach.StateByName[s.State.Name]
		if !ok {
			return nil, fmt.Errorf("ir: unresolved state %s.%s", lw.mach.Name, s.State.Name)
		}
		out := lw.alloc(SCallState)
		out.State = StateID(st.ID)
		out.Span = s.Sp
		return []*Stmt{out}, nil
	case *ast.ExprStmt:
		f, ok := lw.chk.ForeignUse[s.Call]
		if !ok {
			return nil, fmt.Errorf("ir: unresolved foreign call %s", s.Call.Name.Name)
		}
		out := lw.alloc(SForeign)
		out.Foreign = ForeignID(f.ID)
		out.Span = s.Sp
		for _, a := range s.Call.Args {
			e, err := lw.lowerExpr(a)
			if err != nil {
				return nil, err
			}
			out.Args = append(out.Args, e)
		}
		return []*Stmt{out}, nil
	default:
		return nil, fmt.Errorf("ir: unknown statement node %T", s)
	}
}

func (lw *lowerer) lowerExpr(e ast.Expr) (*Expr, error) {
	ghost := lw.chk.ExprGhost[e]
	switch e := e.(type) {
	case *ast.Lit:
		out := &Expr{Span: e.Sp, Ghost: ghost}
		switch e.Kind {
		case ast.LitInt:
			out.Op, out.Int = EInt, e.Int
		case ast.LitTrue:
			out.Op, out.Int = EBool, 1
		case ast.LitFalse:
			out.Op, out.Int = EBool, 0
		case ast.LitNull:
			out.Op = ENull
		case ast.LitThis:
			out.Op = EThis
		case ast.LitMsg:
			out.Op = EMsg
		case ast.LitArg:
			out.Op = EArg
		case ast.LitChoose:
			out.Op = EChoose
			out.Ghost = true
		default:
			return nil, fmt.Errorf("ir: unknown literal kind %d", e.Kind)
		}
		return out, nil
	case *ast.NameExpr:
		if v, ok := lw.chk.VarUse[e]; ok {
			return &Expr{Op: EVar, Var: VarID(v.ID), Ghost: v.Ghost || ghost, Span: e.Sp}, nil
		}
		if ev, ok := lw.chk.EventUse[e]; ok {
			return &Expr{Op: EEvent, Event: EventID(ev.ID), Span: e.Sp}, nil
		}
		// Fall back to direct lookup (e.g. main initializers checked with a
		// different machine context).
		if lw.mach != nil {
			if v, ok := lw.mach.VarByName[e.Name.Name]; ok {
				return &Expr{Op: EVar, Var: VarID(v.ID), Ghost: v.Ghost, Span: e.Sp}, nil
			}
		}
		if ev, ok := lw.chk.EventByName[e.Name.Name]; ok {
			return &Expr{Op: EEvent, Event: EventID(ev.ID), Span: e.Sp}, nil
		}
		return nil, fmt.Errorf("ir: unresolved name %s", e.Name.Name)
	case *ast.UnaryExpr:
		x, err := lw.lowerExpr(e.X)
		if err != nil {
			return nil, err
		}
		op := ENot
		if e.Op == ast.OpNeg {
			op = ENeg
		}
		return &Expr{Op: op, X: x, Ghost: ghost || x.Ghost, Span: e.Sp}, nil
	case *ast.BinaryExpr:
		x, err := lw.lowerExpr(e.X)
		if err != nil {
			return nil, err
		}
		y, err := lw.lowerExpr(e.Y)
		if err != nil {
			return nil, err
		}
		return &Expr{Op: EBinary, Bin: BinOp(e.Op), X: x, Y: y, Ghost: ghost || x.Ghost || y.Ghost, Span: e.Sp}, nil
	case *ast.CallExpr:
		f, ok := lw.chk.ForeignUse[e]
		if !ok {
			return nil, fmt.Errorf("ir: unresolved foreign call %s", e.Name.Name)
		}
		out := &Expr{Op: ECall, ForeignFn: ForeignID(f.ID), Ghost: ghost, Span: e.Sp}
		for _, a := range e.Args {
			la, err := lw.lowerExpr(a)
			if err != nil {
				return nil, err
			}
			out.Args = append(out.Args, la)
			out.Ghost = out.Ghost || la.Ghost
		}
		return out, nil
	default:
		return nil, fmt.Errorf("ir: unknown expression node %T", e)
	}
}

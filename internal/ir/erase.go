package ir

// Erase implements the paper's ghost erasure (§3.3): it returns a copy of
// the program in which ghost machines are stubbed out and every ghost
// operation inside a real machine is replaced by skip. The type system
// guarantees the transformation preserves the behaviour of real machines.
//
// Erased operations inside real machines:
//   - assignments to ghost variables, and assignments whose right-hand side
//     is ghost (the checker only permits those into ghost variables);
//   - new of a ghost machine (its target is necessarily a ghost variable);
//   - send whose target expression is ghost (a send to a ghost machine);
//   - assert whose condition is ghost;
//   - foreign model bodies (at run time the host implementation is called).
//
// Statement indices are preserved so fingerprints of erased and unerased
// configurations remain comparable per machine.
func Erase(p *Program) *Program {
	out := &Program{
		Name:      p.Name + ".erased",
		Events:    p.Events,
		Main:      p.Main,
		MainInits: p.MainInits,
		NumStmts:  p.NumStmts,
		Erased:    true,
	}
	for _, m := range p.Machines {
		if m.Ghost {
			out.Machines = append(out.Machines, &Machine{
				Name:       m.Name,
				ID:         m.ID,
				Ghost:      true,
				ErasedStub: true,
				Init:       0,
				States:     []*State{stubState(len(p.Events))},
				Span:       m.Span,
			})
			continue
		}
		out.Machines = append(out.Machines, eraseMachine(p, m))
	}
	return out
}

func stubState(numEvents int) *State {
	s := &State{Name: "$erased", ID: 0}
	s.Trans = make([]Transition, numEvents)
	s.Action = make([]ActionID, numEvents)
	for i := range s.Action {
		s.Action[i] = NoAction
	}
	return s
}

func eraseMachine(p *Program, m *Machine) *Machine {
	e := &eraser{prog: p, mach: m}
	out := &Machine{
		Name:  m.Name,
		ID:    m.ID,
		Ghost: false,
		Vars:  m.Vars,
		Init:  m.Init,
		Span:  m.Span,
	}
	for _, f := range m.Foreigns {
		nf := f
		nf.Model = nil // host implementation is used during execution
		out.Foreigns = append(out.Foreigns, nf)
	}
	for _, a := range m.Actions {
		out.Actions = append(out.Actions, Action{Name: a.Name, Body: e.eraseStmts(a.Body)})
	}
	for _, s := range m.States {
		ns := &State{
			Name:      s.Name,
			ID:        s.ID,
			Span:      s.Span,
			Deferred:  s.Deferred,
			Postponed: s.Postponed,
			Trans:     s.Trans,
			Action:    s.Action,
			Entry:     e.eraseStmts(s.Entry),
			Exit:      e.eraseStmts(s.Exit),
		}
		out.States = append(out.States, ns)
	}
	return out
}

type eraser struct {
	prog *Program
	mach *Machine
}

// isGhostVar reports whether v is a ghost variable of the current machine.
func (e *eraser) isGhostVar(v VarID) bool {
	return int(v) < len(e.mach.Vars) && e.mach.Vars[v].Ghost
}

// eraseStmts rewrites a statement sequence, dropping erased statements.
func (e *eraser) eraseStmts(in []*Stmt) []*Stmt {
	var out []*Stmt
	for _, s := range in {
		if ns := e.eraseStmt(s); ns != nil {
			out = append(out, ns)
		}
	}
	return out
}

// eraseStmt returns the erased statement, or nil if it is removed entirely.
func (e *eraser) eraseStmt(s *Stmt) *Stmt {
	switch s.Op {
	case SAssign:
		if e.isGhostVar(s.Var) || s.Expr.Ghost {
			return nil
		}
		return s
	case SNew:
		if e.prog.Machines[s.Machine].Ghost {
			return nil
		}
		// Drop ghost-variable initializers of the created real machine.
		target := e.prog.Machines[s.Machine]
		var inits []Init
		changed := false
		for _, in := range s.Inits {
			if int(in.Var) < len(target.Vars) && target.Vars[in.Var].Ghost {
				changed = true
				continue
			}
			inits = append(inits, in)
		}
		if !changed {
			return s
		}
		ns := *s
		ns.Inits = inits
		return &ns
	case SSend:
		if s.Target.Ghost {
			return nil
		}
		return s
	case SAssert:
		if s.Expr.Ghost {
			return nil
		}
		return s
	case SIf:
		// The checker forbids ghost conditions in real machines, so only the
		// branches need rewriting.
		ns := *s
		ns.Body = e.eraseStmts(s.Body)
		ns.Else = e.eraseStmts(s.Else)
		return &ns
	case SWhile:
		ns := *s
		ns.Body = e.eraseStmts(s.Body)
		return &ns
	default:
		return s
	}
}

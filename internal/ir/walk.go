package ir

// WalkStmts calls fn for every statement in body, recursing into the
// Body and Else blocks of compound statements (pre-order).
func WalkStmts(body []*Stmt, fn func(*Stmt)) {
	for _, s := range body {
		fn(s)
		WalkStmts(s.Body, fn)
		WalkStmts(s.Else, fn)
	}
}

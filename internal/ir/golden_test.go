package ir_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pgo/internal/compile"
	"pgo/internal/ir"
	"pgo/internal/psamples"
)

var update = flag.Bool("update", false, "rewrite golden files")

// Golden IR dumps for the stable hand-written samples: any change to
// lowering, erasure, or the dumper shows up as a readable diff.
// Regenerate with: go test ./internal/ir -run TestGolden -update
func TestGoldenIRDumps(t *testing.T) {
	for _, name := range []string{"pingpong", "elevator", "boundedbuffer"} {
		name := name
		t.Run(name, func(t *testing.T) {
			s, ok := psamples.ByName(name)
			if !ok {
				t.Fatalf("no sample %s", name)
			}
			prog, diags, err := compile.Source(name, s.Source)
			if err != nil {
				t.Fatalf("compile: %v\n%s", err, diags.String())
			}
			compareGolden(t, name+".ir", ir.Dump(prog))
			compareGolden(t, name+".erased.ir", ir.Dump(ir.Erase(prog)))
		})
	}
}

func compareGolden(t *testing.T, file, got string) {
	t.Helper()
	path := filepath.Join("testdata", file)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (run with -update): %v", path, err)
	}
	if string(want) != got {
		t.Fatalf("golden mismatch for %s:\n--- want ---\n%s\n--- got ---\n%s\nfirst divergence: %q",
			path, want, got, firstDiff(string(want), got))
	}
}

func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return al[i] + " vs " + bl[i]
		}
	}
	return "(length difference)"
}

// The dump itself must be deterministic.
func TestDumpDeterministic(t *testing.T) {
	s, _ := psamples.ByName("german")
	prog, diags, err := compile.Source("german", s.Source)
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, diags.String())
	}
	if ir.Dump(prog) != ir.Dump(prog) {
		t.Fatal("Dump is not deterministic")
	}
}

// Package ir defines the lowered representation of a P program: indexed
// tables of events, machines, states, actions and foreign functions, with
// statements and expressions resolved to ids. This mirrors the data
// structures the paper's compiler emits as C arrays indexed by enumerations
// (§4 "Generated code"). Both the model checker and the execution runtime
// interpret this representation.
package ir

import (
	"fmt"

	"pgo/internal/source"
)

// EventID indexes Program.Events.
type EventID int

// MachineTypeID indexes Program.Machines.
type MachineTypeID int

// StateID indexes Machine.States.
type StateID int

// ActionID indexes Machine.Actions. NoAction marks an unbound slot.
type ActionID int

// NoAction marks the absence of an action binding.
const NoAction ActionID = -1

// VarID indexes Machine.Vars.
type VarID int

// ForeignID indexes Machine.Foreigns.
type ForeignID int

// Type enumerates the declared types of variables and payloads.
type Type int

const (
	TypeVoid Type = iota
	TypeBool
	TypeInt
	TypeEvent
	TypeID
	TypeAny
)

func (t Type) String() string {
	switch t {
	case TypeVoid:
		return "void"
	case TypeBool:
		return "bool"
	case TypeInt:
		return "int"
	case TypeEvent:
		return "event"
	case TypeID:
		return "id"
	case TypeAny:
		return "any"
	default:
		return "type(?)"
	}
}

// Program is a complete lowered P program.
type Program struct {
	Name     string
	Events   []Event
	Machines []*Machine

	// Main is the machine instantiated first during verification, with
	// constant initializers.
	Main      MachineTypeID
	MainInits []Init

	// NumStmts is the number of registered statement nodes; every Stmt in
	// the program has a unique Index < NumStmts, used for configuration
	// fingerprinting.
	NumStmts int

	// Erased reports whether the erasure pass ran: ghost machines are
	// stubbed out and ghost operations in real machines replaced by skip.
	Erased bool
}

// Event is a declared event.
type Event struct {
	Name    string
	Payload Type // TypeVoid when the event carries no payload
	// Span locates the declaration in the source (for diagnostics).
	Span source.Span
}

// Machine is a lowered machine type.
type Machine struct {
	Name  string
	ID    MachineTypeID
	Ghost bool
	// ErasedStub marks a ghost machine in an erased program: it must not be
	// instantiated at run time.
	ErasedStub bool

	Vars     []Var
	States   []*State
	Actions  []Action
	Foreigns []Foreign

	// Init is the machine's initial state (the first declared state).
	Init StateID

	// Span locates the declaration in the source (for diagnostics).
	Span source.Span
}

// Var is a machine-local variable.
type Var struct {
	Name  string
	Type  Type
	Ghost bool
}

// TransKind distinguishes the per-event outgoing transition of a state.
type TransKind uint8

const (
	// TransNone means no transition is defined for the event.
	TransNone TransKind = iota
	// TransStep is a step transition (exit current, enter target).
	TransStep
	// TransCall pushes the target state on the call stack.
	TransCall
)

// Transition is a state's response to one event.
type Transition struct {
	Kind   TransKind
	Target StateID
}

// State is a lowered control state with dense per-event handler tables.
type State struct {
	Name string
	ID   StateID
	// Span locates the declaration in the source (for diagnostics).
	Span      source.Span
	Deferred  EventSet
	Postponed EventSet
	Entry     []*Stmt
	Exit      []*Stmt
	// Trans[e] and Action[e] are the transition and action binding for
	// event e; both slices have length len(Program.Events).
	Trans  []Transition
	Action []ActionID
}

// Action is a named handler body.
type Action struct {
	Name string
	Body []*Stmt
}

// Foreign is a foreign-function slot. The host implementation is bound by
// name at run time; Model is the erasable P body used during verification.
type Foreign struct {
	Name    string
	Params  []Type
	Result  Type
	Model   []*Stmt // nil if no model was given
	ModelID ForeignID
}

// Init is a resolved variable initializer.
type Init struct {
	Var  VarID
	Expr *Expr
}

// ------------------------------------------------------------------- stmts

// StmtOp enumerates the lowered statement forms.
type StmtOp uint8

const (
	SSkip StmtOp = iota
	SAssign
	SNew
	SDelete
	SSend
	SRaise
	SLeave
	SReturn
	SAssert
	SIf
	SWhile
	SCallState
	SForeign // foreign call as a statement
)

var stmtOpNames = [...]string{
	"skip", "assign", "new", "delete", "send", "raise", "leave", "return",
	"assert", "if", "while", "call", "foreign",
}

func (op StmtOp) String() string {
	if int(op) < len(stmtOpNames) {
		return stmtOpNames[op]
	}
	return fmt.Sprintf("stmt(%d)", int(op))
}

// Stmt is a lowered statement. Fields are used according to Op.
type Stmt struct {
	Op    StmtOp
	Index int // unique within the program

	Var     VarID         // SAssign, SNew target
	Machine MachineTypeID // SNew
	Inits   []Init        // SNew
	Event   EventID       // SSend, SRaise
	Target  *Expr         // SSend target
	Expr    *Expr         // SAssign rhs, SSend/SRaise payload, SAssert/SIf/SWhile condition
	Body    []*Stmt       // SIf then, SWhile body
	Else    []*Stmt       // SIf else
	State   StateID       // SCallState
	Foreign ForeignID     // SForeign
	Args    []*Expr       // SForeign

	Span source.Span
}

// ------------------------------------------------------------------- exprs

// ExprOp enumerates the lowered expression forms.
type ExprOp uint8

const (
	EInt ExprOp = iota
	EBool
	ENull
	EThis
	EMsg
	EArg
	EChoose
	EVar
	EEvent // event constant
	ENot
	ENeg
	EBinary
	ECall // foreign call
)

// BinOp enumerates binary operators (shared numbering with ast.BinaryOp).
type BinOp uint8

const (
	Add BinOp = iota
	Sub
	Mul
	Div
	Mod
	Eq
	Neq
	Lt
	Le
	Gt
	Ge
	And
	Or
)

var binOpNames = [...]string{"+", "-", "*", "/", "%", "==", "!=", "<", "<=", ">", ">=", "&&", "||"}

func (op BinOp) String() string {
	if int(op) < len(binOpNames) {
		return binOpNames[op]
	}
	return fmt.Sprintf("binop(%d)", int(op))
}

// Expr is a lowered expression.
type Expr struct {
	Op    ExprOp
	Int   int64   // EInt value, EBool 0/1
	Var   VarID   // EVar
	Event EventID // EEvent
	Bin   BinOp   // EBinary
	X, Y  *Expr   // ENot/ENeg use X; EBinary uses X, Y

	ForeignFn ForeignID // ECall
	Args      []*Expr   // ECall

	// Ghost marks expressions whose value depends on ghost state (computed
	// by the type checker for real machines; always true inside ghost
	// machines).
	Ghost bool

	Span source.Span
}

// ----------------------------------------------------------------- helpers

// EventByName returns the id of the named event.
func (p *Program) EventByName(name string) (EventID, bool) {
	for i, e := range p.Events {
		if e.Name == name {
			return EventID(i), true
		}
	}
	return 0, false
}

// MachineByName returns the machine type with the given name.
func (p *Program) MachineByName(name string) (*Machine, bool) {
	for _, m := range p.Machines {
		if m.Name == name {
			return m, true
		}
	}
	return nil, false
}

// StateByName returns the id of the named state in m.
func (m *Machine) StateByName(name string) (StateID, bool) {
	for _, s := range m.States {
		if s.Name == name {
			return s.ID, true
		}
	}
	return 0, false
}

// VarByName returns the id of the named variable in m.
func (m *Machine) VarByName(name string) (VarID, bool) {
	for i, v := range m.Vars {
		if v.Name == name {
			return VarID(i), true
		}
	}
	return 0, false
}

// CountPStates returns the number of control states of machine m, the
// "P states" column of the paper's Figure 8.
func (m *Machine) CountPStates() int { return len(m.States) }

// CountPTransitions returns the number of declared transitions and action
// bindings of machine m, the "P transitions" column of Figure 8.
func (m *Machine) CountPTransitions() int {
	n := 0
	for _, s := range m.States {
		for _, t := range s.Trans {
			if t.Kind != TransNone {
				n++
			}
		}
		for _, a := range s.Action {
			if a != NoAction {
				n++
			}
		}
	}
	return n
}

// Validate performs internal-consistency checks on the lowered program and
// returns the first problem found, if any. It is cheap and intended for use
// in tests and at tool start-up.
func (p *Program) Validate() error {
	ne := len(p.Events)
	if int(p.Main) >= len(p.Machines) || p.Main < 0 {
		return fmt.Errorf("ir: main machine id %d out of range", p.Main)
	}
	for mi, m := range p.Machines {
		if m.ID != MachineTypeID(mi) {
			return fmt.Errorf("ir: machine %s has id %d at index %d", m.Name, m.ID, mi)
		}
		if len(m.States) == 0 {
			return fmt.Errorf("ir: machine %s has no states", m.Name)
		}
		for si, s := range m.States {
			if s.ID != StateID(si) {
				return fmt.Errorf("ir: state %s.%s has id %d at index %d", m.Name, s.Name, s.ID, si)
			}
			if len(s.Trans) != ne || len(s.Action) != ne {
				return fmt.Errorf("ir: state %s.%s handler tables sized %d/%d, want %d", m.Name, s.Name, len(s.Trans), len(s.Action), ne)
			}
			for e, t := range s.Trans {
				if t.Kind != TransNone && (int(t.Target) >= len(m.States) || t.Target < 0) {
					return fmt.Errorf("ir: state %s.%s transition on %s targets invalid state %d", m.Name, s.Name, p.Events[e].Name, t.Target)
				}
			}
			for e, a := range s.Action {
				if a != NoAction && (int(a) >= len(m.Actions) || a < 0) {
					return fmt.Errorf("ir: state %s.%s binds invalid action %d on %s", m.Name, s.Name, a, p.Events[e].Name)
				}
			}
		}
	}
	return nil
}

package ir_test

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"pgo/internal/ir"
)

// genSet is a quick.Generator wrapper: a random event set over ids < 200.
type genSet struct {
	events []uint8
}

func (genSet) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(20)
	ev := make([]uint8, n)
	for i := range ev {
		ev[i] = uint8(r.Intn(200))
	}
	return reflect.ValueOf(genSet{events: ev})
}

func (g genSet) set() ir.EventSet {
	var s ir.EventSet
	for _, e := range g.events {
		s.Add(ir.EventID(e))
	}
	return s
}

func TestEventSetBasics(t *testing.T) {
	var s ir.EventSet
	if !s.IsEmpty() || s.Len() != 0 {
		t.Fatal("zero value not empty")
	}
	s.Add(3)
	s.Add(100)
	s.Add(3)
	if s.Len() != 2 || !s.Contains(3) || !s.Contains(100) || s.Contains(4) {
		t.Fatalf("set = %v", s.Events())
	}
	s.Remove(3)
	if s.Contains(3) || s.Len() != 1 {
		t.Fatal("remove failed")
	}
	s.Remove(999) // no-op beyond capacity
}

// Membership after Add matches a reference map implementation.
func TestEventSetMatchesMapModel(t *testing.T) {
	f := func(g genSet) bool {
		s := g.set()
		ref := map[ir.EventID]bool{}
		for _, e := range g.events {
			ref[ir.EventID(e)] = true
		}
		if s.Len() != len(ref) {
			return false
		}
		for e := range ref {
			if !s.Contains(e) {
				return false
			}
		}
		for _, e := range s.Events() {
			if !ref[e] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Union and Minus satisfy their set-algebra definitions.
func TestEventSetAlgebra(t *testing.T) {
	f := func(a, b genSet) bool {
		sa, sb := a.set(), b.set()
		u := sa.Union(sb)
		m := sa.Minus(sb)
		for e := ir.EventID(0); e < 220; e++ {
			if u.Contains(e) != (sa.Contains(e) || sb.Contains(e)) {
				return false
			}
			if m.Contains(e) != (sa.Contains(e) && !sb.Contains(e)) {
				return false
			}
		}
		// Operands unchanged (operations are functional).
		return sa.Equal(a.set()) && sb.Equal(b.set())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Fingerprints are canonical: equal sets encode identically regardless of
// internal capacity, and unequal sets encode differently.
func TestEventSetFingerprintCanonical(t *testing.T) {
	f := func(a, b genSet) bool {
		sa, sb := a.set(), b.set()
		// Force different capacities by adding and removing a high event.
		sa2 := sa.Clone()
		sa2.Add(210)
		sa2.Remove(210)
		if !sa.Equal(sa2) {
			return false
		}
		fpA := string(sa.AppendFingerprint(nil))
		fpA2 := string(sa2.AppendFingerprint(nil))
		fpB := string(sb.AppendFingerprint(nil))
		if fpA != fpA2 {
			return false
		}
		return (fpA == fpB) == sa.Equal(sb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEventSetCloneIndependent(t *testing.T) {
	s := ir.NewEventSet(1, 2, 3)
	c := s.Clone()
	c.Add(64)
	c.Remove(1)
	if !s.Contains(1) || s.Contains(64) {
		t.Fatal("clone aliases original")
	}
}

package ir_test

import (
	"testing"

	"pgo/internal/ir"
	"pgo/internal/parser"
	"pgo/internal/source"
	"pgo/internal/types"
)

func lower(t *testing.T, src string) *ir.Program {
	t.Helper()
	var diags source.DiagList
	prog := parser.Parse(src, &diags)
	chk := types.Check(prog, &diags)
	if diags.HasErrors() {
		t.Fatalf("frontend failed:\n%s", diags.String())
	}
	lp, err := ir.Lower("test", chk)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return lp
}

const sample = `
event A(int);
event B;
ghost machine G {
  var client: id;
  state S {
    entry { if * { send client, B; } }
  }
}
machine M {
  ghost var g: id;
  var x: int;
  action Drop { skip; }
  state S1 {
    defer B;
    postpone B;
    entry {
      g = new G(client = this);
      x = 0;
    }
    exit { x = x + 1; }
    on A goto S2;
    on B do Drop;
  }
  state S2 {
    entry { skip; }
    on A push S1;
    on B ignore;
  }
}
main M(x = 5);
`

func TestLoweredTables(t *testing.T) {
	p := lower(t, sample)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Events) != 2 {
		t.Fatalf("events = %d", len(p.Events))
	}
	a, ok := p.EventByName("A")
	if !ok || p.Events[a].Payload != ir.TypeInt {
		t.Fatalf("event A payload = %v", p.Events[a].Payload)
	}
	m, ok := p.MachineByName("M")
	if !ok {
		t.Fatal("no machine M")
	}
	s1, _ := m.StateByName("S1")
	b, _ := p.EventByName("B")
	st := m.States[s1]
	if !st.Deferred.Contains(b) {
		t.Fatal("B not in deferred set of S1")
	}
	if !st.Postponed.Contains(b) {
		t.Fatal("B not in postponed set of S1")
	}
	if st.Trans[a].Kind != ir.TransStep {
		t.Fatalf("S1 on A = %v, want step", st.Trans[a].Kind)
	}
	if st.Action[b] == ir.NoAction {
		t.Fatal("S1 should bind an action on B")
	}
	s2, _ := m.StateByName("S2")
	if m.States[s2].Trans[a].Kind != ir.TransCall {
		t.Fatal("S2 on A should be a call transition")
	}
	// ignore synthesizes a $ignore action.
	if m.States[s2].Action[b] == ir.NoAction {
		t.Fatal("S2 on B should bind the synthesized ignore action")
	}
	if m.Actions[m.States[s2].Action[b]].Name != "$ignore" {
		t.Fatalf("bound action = %s", m.Actions[m.States[s2].Action[b]].Name)
	}
}

func TestMainInitsLowered(t *testing.T) {
	p := lower(t, sample)
	if len(p.MainInits) != 1 {
		t.Fatalf("main inits = %d", len(p.MainInits))
	}
	if p.MainInits[0].Expr.Op != ir.EInt || p.MainInits[0].Expr.Int != 5 {
		t.Fatalf("main init expr = %+v", p.MainInits[0].Expr)
	}
}

func TestStmtIndicesUnique(t *testing.T) {
	p := lower(t, sample)
	seen := map[int]bool{}
	var walk func(ss []*ir.Stmt)
	walk = func(ss []*ir.Stmt) {
		for _, s := range ss {
			if seen[s.Index] {
				t.Fatalf("statement index %d reused", s.Index)
			}
			if s.Index >= p.NumStmts {
				t.Fatalf("index %d >= NumStmts %d", s.Index, p.NumStmts)
			}
			seen[s.Index] = true
			walk(s.Body)
			walk(s.Else)
		}
	}
	for _, m := range p.Machines {
		for _, st := range m.States {
			walk(st.Entry)
			walk(st.Exit)
		}
		for _, a := range m.Actions {
			walk(a.Body)
		}
		for _, f := range m.Foreigns {
			walk(f.Model)
		}
	}
}

func TestCountsForFigure8(t *testing.T) {
	p := lower(t, sample)
	m, _ := p.MachineByName("M")
	if got := m.CountPStates(); got != 2 {
		t.Fatalf("P states = %d, want 2", got)
	}
	// S1: step on A + action on B; S2: call on A + ignore on B.
	if got := m.CountPTransitions(); got != 4 {
		t.Fatalf("P transitions = %d, want 4", got)
	}
}

func TestGhostTaintPropagates(t *testing.T) {
	p := lower(t, `
event E;
ghost machine G { state S { entry { skip; } } }
machine M {
  ghost var g: id;
  ghost var gx: int;
  state S {
    entry {
      g = new G();
      gx = gx + 1;
      send g, E;
    }
  }
}
main M();
`)
	m, _ := p.MachineByName("M")
	entry := m.States[0].Entry
	send := entry[2]
	if send.Op != ir.SSend {
		t.Fatalf("third stmt = %v", send.Op)
	}
	if !send.Target.Ghost {
		t.Fatal("send target should be ghost-tainted")
	}
}

func TestEraseRemovesGhostOps(t *testing.T) {
	p := lower(t, sample)
	e := ir.Erase(p)
	if !e.Erased {
		t.Fatal("Erased flag unset")
	}
	g, _ := e.MachineByName("G")
	if !g.ErasedStub {
		t.Fatal("ghost machine not stubbed")
	}
	m, _ := e.MachineByName("M")
	entry := m.States[0].Entry
	// The ghost new is gone; x = 0 remains.
	if len(entry) != 1 || entry[0].Op != ir.SAssign {
		t.Fatalf("erased entry = %d stmts, first %v", len(entry), entry[0].Op)
	}
	// Statement indices survive erasure for fingerprint compatibility.
	if e.NumStmts != p.NumStmts {
		t.Fatalf("NumStmts changed: %d vs %d", e.NumStmts, p.NumStmts)
	}
}

func TestEraseKeepsRealAsserts(t *testing.T) {
	p := lower(t, `
event E;
ghost machine G { state S { entry { skip; } } }
machine M {
  ghost var gx: int;
  var x: int;
  state S {
    entry {
      assert x == 0;
      assert gx == 0;
    }
  }
}
main M();
`)
	e := ir.Erase(p)
	m, _ := e.MachineByName("M")
	entry := m.States[0].Entry
	if len(entry) != 1 || entry[0].Op != ir.SAssert {
		t.Fatalf("erased entry = %+v, want only the real assert", entry)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	p := lower(t, sample)
	m, _ := p.MachineByName("M")
	a, _ := p.EventByName("A")
	saved := m.States[0].Trans[a]
	m.States[0].Trans[a] = ir.Transition{Kind: ir.TransStep, Target: 99}
	if err := p.Validate(); err == nil {
		t.Fatal("validation missed out-of-range transition target")
	}
	m.States[0].Trans[a] = saved
	if err := p.Validate(); err != nil {
		t.Fatalf("restored program should validate: %v", err)
	}
}

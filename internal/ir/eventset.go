package ir

import "math/bits"

// EventSet is a bitset over EventIDs. The zero value is the empty set; sets
// are sized on first insertion and grow as needed.
type EventSet struct {
	words []uint64
}

// NewEventSet returns a set containing the given events.
func NewEventSet(events ...EventID) EventSet {
	var s EventSet
	for _, e := range events {
		s.Add(e)
	}
	return s
}

// Add inserts e into the set.
func (s *EventSet) Add(e EventID) {
	w := int(e) / 64
	for len(s.words) <= w {
		s.words = append(s.words, 0)
	}
	s.words[w] |= 1 << (uint(e) % 64)
}

// Remove deletes e from the set.
func (s *EventSet) Remove(e EventID) {
	w := int(e) / 64
	if w < len(s.words) {
		s.words[w] &^= 1 << (uint(e) % 64)
	}
}

// Contains reports whether e is in the set.
func (s EventSet) Contains(e EventID) bool {
	w := int(e) / 64
	return w < len(s.words) && s.words[w]&(1<<(uint(e)%64)) != 0
}

// Len returns the number of events in the set.
func (s EventSet) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// IsEmpty reports whether the set has no elements.
func (s EventSet) IsEmpty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the set.
func (s EventSet) Clone() EventSet {
	if len(s.words) == 0 {
		return EventSet{}
	}
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return EventSet{words: w}
}

// UnionWith adds every element of t to s in place.
func (s *EventSet) UnionWith(t EventSet) {
	for i, w := range t.words {
		for len(s.words) <= i {
			s.words = append(s.words, 0)
		}
		s.words[i] |= w
	}
}

// Clear removes every element, keeping the allocated capacity.
func (s *EventSet) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Union returns s ∪ t as a new set.
func (s EventSet) Union(t EventSet) EventSet {
	out := s.Clone()
	for i, w := range t.words {
		for len(out.words) <= i {
			out.words = append(out.words, 0)
		}
		out.words[i] |= w
	}
	return out
}

// Minus returns s \ t as a new set.
func (s EventSet) Minus(t EventSet) EventSet {
	out := s.Clone()
	for i := range out.words {
		if i < len(t.words) {
			out.words[i] &^= t.words[i]
		}
	}
	return out
}

// Equal reports whether s and t contain the same events.
func (s EventSet) Equal(t EventSet) bool {
	n := len(s.words)
	if len(t.words) > n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		var a, b uint64
		if i < len(s.words) {
			a = s.words[i]
		}
		if i < len(t.words) {
			b = t.words[i]
		}
		if a != b {
			return false
		}
	}
	return true
}

// Events returns the members in increasing order.
func (s EventSet) Events() []EventID {
	var out []EventID
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, EventID(wi*64+b))
			w &^= 1 << uint(b)
		}
	}
	return out
}

// AppendFingerprint appends a canonical encoding of the set to buf.
func (s EventSet) AppendFingerprint(buf []byte) []byte {
	// Trim trailing zero words so logically-equal sets encode identically.
	n := len(s.words)
	for n > 0 && s.words[n-1] == 0 {
		n--
	}
	buf = append(buf, byte(n))
	for i := 0; i < n; i++ {
		w := s.words[i]
		buf = append(buf,
			byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
			byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
	}
	return buf
}

// Seeded defects: Pump cycles Boot -> Spin -> Spin on raised events alone,
// stamping a fresh payload on every lap (P302), and Flood sends inside a
// while(true) loop with no exit (P304). Each floods its own Sink's queue
// without ever dequeuing.
event Item(int);
event Tick;
event unit;

machine Env {
  var a: id;
  var b: id;

  state Boot {
    entry {
      a = new Pump();
      b = new Flood();
    }
  }
}

machine Pump {
  var sink: id;
  var n: int;

  state Boot {
    entry {
      n = 0;
      sink = new Sink();
      raise unit;
    }
    on unit goto Spin;
  }

  state Spin {
    entry {
      n = n + 1;
      send sink, Item, n;
      raise unit;
    }
    on unit goto Spin;
  }
}

machine Flood {
  var sink: id;

  state Go {
    entry {
      sink = new Sink();
      while true {
        send sink, Tick;
      }
    }
  }
}

machine Sink {
  state Rest {
    entry { skip; }
    on Item goto Rest;
    on Tick goto Rest;
  }
}

main Env();

// Seeded defect: Listener's transition on Ping is dead (P201) — Ping is
// only ever sent to Worker, never to Listener, and Listener never raises
// it. The event is alive elsewhere, so the frontend's whole-program P001
// stays quiet and the per-machine flow analysis must catch it.
event Ping;
event Nudge;

machine Env {
  var w: id;
  var l: id;

  state Boot {
    entry {
      w = new Worker();
      l = new Listener();
      send w, Ping;
      send l, Nudge;
    }
  }
}

machine Worker {
  state Idle {
    entry { skip; }
    on Ping goto Idle;
  }
}

machine Listener {
  state Wait {
    entry { skip; }
    on Nudge goto Wait;
    on Ping goto Wait;
  }
}

main Env();

// Seeded defect: the only state of Sink that handles Ping is unreachable,
// so Driver's send is certain to raise an unhandled-event error (P101); the
// frontend additionally flags the unreachable state itself (P004).
event Ping;

machine Driver {
  var sink: id;

  state Boot {
    entry {
      sink = new Sink();
      send sink, Ping;
    }
  }
}

machine Sink {
  state Idle {
    entry { skip; }
  }

  state Handling {
    entry { skip; }
    on Ping goto Idle;
  }
}

main Driver();

package analysis_test

import (
	"os"
	"path/filepath"
	"testing"

	"pgo/internal/analysis"
	"pgo/internal/psamples"
)

func runSample(t *testing.T, name string) []analysis.Finding {
	t.Helper()
	s, ok := psamples.ByName(name)
	if !ok {
		t.Fatalf("no sample %s", name)
	}
	findings, _, err := analysis.Run(name, s.Source)
	if err != nil {
		t.Fatalf("%s: analysis failed: %v", name, err)
	}
	return findings
}

func runTestdata(t *testing.T, file string) []analysis.Finding {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", file))
	if err != nil {
		t.Fatal(err)
	}
	findings, _, err := analysis.Run(file, string(src))
	if err != nil {
		t.Fatalf("%s: analysis failed: %v", file, err)
	}
	return findings
}

func find(fs []analysis.Finding, code, machine, state, event string) *analysis.Finding {
	for i, f := range fs {
		if f.Code != code {
			continue
		}
		if machine != "" && f.Machine != machine {
			continue
		}
		if state != "" && f.State != state {
			continue
		}
		if event != "" && f.Event != event {
			continue
		}
		return &fs[i]
	}
	return nil
}

// The elevator bug from the paper's §2: the buggy variant drops Opening's
// handling of CloseDoor, and the event-flow analysis must predict the
// unhandled delivery there — and only there.
func TestElevatorBugPredicted(t *testing.T) {
	buggy := runSample(t, "elevator-buggy")
	f := find(buggy, analysis.CodePossiblyUnhandled, "Elevator", "Opening", "CloseDoor")
	if f == nil {
		t.Fatal("elevator-buggy: no P102 for Elevator.Opening x CloseDoor")
	}
	if f.Severity != analysis.SevWarn {
		t.Errorf("severity = %v, want warning (Elevator is a real machine)", f.Severity)
	}

	good := runSample(t, "elevator")
	for _, f := range good {
		if f.Code == analysis.CodePossiblyUnhandled && f.Machine == "Elevator" {
			t.Errorf("elevator: unexpected P102 on the fixed machine: %s", f)
		}
	}
}

// The correlation refinements must keep the richer protocols quiet: german's
// Host answers requester ids stored from payloads (multi-instance clients),
// and switchled's OS sends only a bounded startup stimulus. Neither may
// produce warnings on real machines.
func TestRefinementsSuppressFalsePositives(t *testing.T) {
	for _, name := range []string{"german", "switchled", "pingpong", "ring", "boundedbuffer"} {
		for _, f := range runSample(t, name) {
			if f.Severity == analysis.SevWarn {
				t.Errorf("%s: unexpected warning: %s", name, f)
			}
		}
	}
}

// The seeded defects under testdata must each be flagged with their code.
func TestSeededDefects(t *testing.T) {
	fs := runTestdata(t, "unreachable_handler.p")
	if f := find(fs, analysis.CodeCertainUnhandled, "Sink", "", "Ping"); f == nil {
		t.Error("unreachable_handler.p: no P101 for Sink x Ping")
	} else if f.Severity != analysis.SevError {
		t.Errorf("P101 severity = %v, want error", f.Severity)
	}
	if find(fs, "P004", "", "", "") == nil {
		t.Error("unreachable_handler.p: no frontend P004 for the unreachable state")
	}

	fs = runTestdata(t, "send_loop.p")
	if find(fs, analysis.CodeSendPump, "Pump", "", "") == nil {
		t.Error("send_loop.p: no P302 for Pump's raise cycle")
	}
	if find(fs, analysis.CodeInfiniteSendLoop, "Flood", "", "") == nil {
		t.Error("send_loop.p: no P304 for Flood's while(true) send")
	}

	fs = runTestdata(t, "dead_transition.p")
	if find(fs, analysis.CodeDeadTransition, "Listener", "Wait", "Ping") == nil {
		t.Error("dead_transition.p: no P201 for Listener.Wait x Ping")
	}
}

// Communication-graph structure for a known topology: pingpong is a two-node
// cycle with definite targets.
func TestCommGraphPingpong(t *testing.T) {
	fs := runSample(t, "pingpong")
	if find(fs, analysis.CodeCommCycle, "", "", "") == nil {
		t.Error("pingpong: no P301 communication-cycle finding")
	}
}

// The dedup downgrade: boundedbuffer's producer pumps Put with a modular
// sequence stamp, so the pump must be reported as the bounded P303, not the
// unbounded P302.
func TestFinitePayloadDowngrade(t *testing.T) {
	fs := runSample(t, "boundedbuffer")
	if find(fs, analysis.CodeDedupBoundedPump, "Producer", "", "") == nil {
		t.Error("boundedbuffer: no P303 for Producer")
	}
	if find(fs, analysis.CodeSendPump, "Producer", "", "") != nil {
		t.Error("boundedbuffer: Producer's modular payload must not be P302")
	}
}

// usb keeps exactly one order-sensitivity residual: ResumeOp at Idle (the
// OS mails Suspend immediately before ResumeOp, which the event-set
// abstraction cannot see). The once-spontaneous refinement must have
// suppressed every other state.
func TestUsbResidual(t *testing.T) {
	fs := runSample(t, "usb-hsm")
	warns := 0
	for _, f := range fs {
		if f.Severity != analysis.SevWarn {
			continue
		}
		warns++
		if f.Code != analysis.CodePossiblyUnhandled || f.State != "Idle" || f.Event != "ResumeOp" {
			t.Errorf("usb-hsm: unexpected warning: %s", f)
		}
	}
	if warns != 1 {
		t.Errorf("usb-hsm: %d warnings, want exactly the ResumeOp-at-Idle residual", warns)
	}
}

package analysis

import (
	"fmt"
	"strings"

	"pgo/internal/ir"
)

// eventFlowFindings reports the unhandled-event predictions (P101–P103):
// events flowing into a machine type that its reachable states cannot
// absorb. The analysis distinguishes three grades of certainty.
//
//   - P101 (error): a reachable site definitely sends e to type m and no
//     reachable state of m handles or defers e — every delivery pops the
//     stack empty, the paper's unhandled-event error.
//   - P103 (warning): as P101, but every site's target is ambiguous, so the
//     delivery depends on where the id points at run time.
//   - P102 (warning, info on ghost machines): e is covered somewhere but a
//     spontaneous occurrence can find the machine resting in a state whose
//     frame (including every possible caller chain) does not cover it.
func (f *facts) eventFlowFindings() []Finding {
	var out []Finding
	for mi, mf := range f.mf {
		if !mf.reach {
			continue
		}
		canRest := false
		for _, st := range mf.m.States {
			if mf.stReach[st.ID] && mf.mayRest[st.ID] {
				canRest = true
				break
			}
		}
		for _, ev := range f.inbox[mi].Events() {
			coveredSomewhere := false
			for _, st := range mf.m.States {
				if mf.stReach[st.ID] && mf.cov[st.ID][ev] {
					coveredSomewhere = true
					break
				}
			}
			evName := f.p.Events[ev].Name
			if !coveredSomewhere {
				// A machine that never rests never dequeues, so the queued
				// event sits unread forever (a liveness matter, not a safety
				// one).
				if !canRest {
					continue
				}
				if site := f.definiteAt[mi][ev]; site != nil {
					out = append(out, Finding{
						Code:     CodeCertainUnhandled,
						Severity: SevError,
						Span:     site.st.Span,
						Machine:  mf.m.Name,
						Event:    evName,
						Message: fmt.Sprintf(
							"event %s is sent to machine %s, which handles or defers it in no reachable state: delivery is certain to raise an unhandled-event error",
							evName, mf.m.Name),
					})
				} else if site := f.firstAt[mi][ev]; site != nil {
					out = append(out, Finding{
						Code:     CodeUnhandledAmbiguous,
						Severity: SevWarn,
						Span:     site.st.Span,
						Machine:  mf.m.Name,
						Event:    evName,
						Message: fmt.Sprintf(
							"event %s may be sent to machine %s, which handles or defers it in no reachable state: such a delivery would raise an unhandled-event error",
							evName, mf.m.Name),
					})
				}
				continue
			}
			if !f.spont[mi].Contains(ev) {
				continue
			}
			recurring := f.spontRe[mi].Contains(ev)
			allowed := f.onceAt[mi][ev]
			senders := f.spontSenders(ir.MachineTypeID(mi), ev)
			when := "at any time"
			if !recurring {
				when = "unsolicited during its sender's startup"
			}
			for _, st := range mf.m.States {
				s := st.ID
				if !mf.stReach[s] || !mf.mayRest[s] || mf.effCov[s][ev] {
					continue
				}
				// A once-only stimulus can surprise the machine only in states
				// it can occupy before consuming any of the startup burst.
				if !recurring && (allowed == nil || !allowed[s]) {
					continue
				}
				sev := SevWarn
				if mf.m.Ghost {
					sev = SevInfo
				}
				out = append(out, Finding{
					Code:     CodePossiblyUnhandled,
					Severity: sev,
					Span:     st.Span,
					Machine:  mf.m.Name,
					State:    st.Name,
					Event:    evName,
					Message: fmt.Sprintf(
						"machine %s can receive event %s %s (sent by %s), but resting state %s neither handles nor defers it: the delivery would raise an unhandled-event error",
						mf.m.Name, evName, when, senders, st.Name),
				})
			}
		}
	}
	return out
}

// spontSenders names the machines whose sends make ev spontaneous for m,
// for use in messages.
func (f *facts) spontSenders(m ir.MachineTypeID, ev ir.EventID) string {
	var names []string
	seen := map[ir.MachineTypeID]bool{}
	for _, site := range f.sites {
		if site.st.Event != ev || (!site.tgt.types[m] && !site.tgt.unknown) || seen[site.from] {
			continue
		}
		seen[site.from] = true
		names = append(names, f.p.Machines[site.from].Name)
	}
	if len(names) == 0 {
		return "an unknown machine"
	}
	return strings.Join(names, ", ")
}

// deadTransitionFindings reports P201: transitions and action bindings on
// events that can never be pending in the machine — never sent to it by any
// reachable site and never raised within it. Events that are dead program-
// wide are left to the frontend's P001.
func (f *facts) deadTransitionFindings() []Finding {
	var out []Finding
	for mi, mf := range f.mf {
		if !mf.reach {
			continue
		}
		for _, st := range mf.m.States {
			if !mf.stReach[st.ID] {
				continue
			}
			for e := range f.p.Events {
				ev := ir.EventID(e)
				handled := st.Trans[e].Kind != ir.TransNone || st.Action[e] != ir.NoAction
				if !handled || f.inbox[mi].Contains(ev) || mf.raised.Contains(ev) {
					continue
				}
				// Only report events alive somewhere else; fully dead events
				// are the frontend's P001.
				if !f.sentAny.Contains(ev) && !f.raisedAny.Contains(ev) {
					continue
				}
				what := "transition"
				if st.Trans[e].Kind == ir.TransNone {
					what = "action binding"
				}
				out = append(out, Finding{
					Code:     CodeDeadTransition,
					Severity: SevWarn,
					Span:     st.Span,
					Machine:  mf.m.Name,
					State:    st.Name,
					Event:    f.p.Events[e].Name,
					Message: fmt.Sprintf(
						"%s on event %s in state %s.%s is dead: %s is never sent to machine %s and never raised inside it",
						what, f.p.Events[e].Name, mf.m.Name, st.Name, f.p.Events[e].Name, mf.m.Name),
				})
			}
		}
	}
	return out
}

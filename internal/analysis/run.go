package analysis

import (
	"fmt"

	"pgo/internal/ir"
	"pgo/internal/parser"
	"pgo/internal/source"
	"pgo/internal/types"
)

// Run is the full lint pipeline over P source text: parse, type-check, run
// the frontend hygiene lint, lower, and analyze, returning the merged and
// sorted findings. This is the engine behind cmd/plint and the golden-file
// tests; compilation errors are returned as an error with the diagnostics
// rendered in its message.
func Run(name, src string) ([]Finding, *Report, error) {
	findings, rep, _, err := RunWithProgram(name, src)
	return findings, rep, err
}

// RunWithProgram is Run, additionally returning the lowered (unerased)
// program so callers can chain IR-level passes — notably the counter
// abstraction of internal/abstract — onto the same compilation.
func RunWithProgram(name, src string) ([]Finding, *Report, *ir.Program, error) {
	var diags source.DiagList
	ast := parser.Parse(src, &diags)
	if diags.HasErrors() {
		return nil, nil, nil, fmt.Errorf("%s: parse failed:\n%s", name, diags.String())
	}
	chk := types.Check(ast, &diags)
	if diags.HasErrors() {
		return nil, nil, nil, fmt.Errorf("%s: type check failed:\n%s", name, diags.String())
	}
	types.Lint(chk, &diags)
	prog, err := ir.Lower(name, chk)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("%s: lowering failed: %w", name, err)
	}
	rep := Analyze(prog)
	findings := append(FromDiagnostics(diags.All()), rep.Findings...)
	SortFindings(findings)
	return findings, rep, prog, nil
}

// FromDiagnostics adopts frontend diagnostics (the coded hygiene warnings
// of types.Lint and types.Check) as findings so one report carries both
// layers. Diagnostics without a stable code are skipped — they are either
// hard errors, which abort the pipeline, or purely presentational notes.
func FromDiagnostics(diags []source.Diagnostic) []Finding {
	var out []Finding
	for _, d := range diags {
		if d.Code == "" {
			continue
		}
		sev := SevInfo
		if d.Severity == source.Warning {
			sev = SevWarn
		} else if d.Severity == source.Error {
			sev = SevError
		}
		out = append(out, Finding{
			Code:     d.Code,
			Severity: sev,
			Span:     d.Span,
			Message:  d.Message,
		})
	}
	return out
}

package analysis

import (
	"fmt"
	"sort"
	"strings"

	"pgo/internal/ir"
	"pgo/internal/source"
)

// CommEdge aggregates the send sites from one machine type to another.
type CommEdge struct {
	From, To ir.MachineTypeID
	Events   ir.EventSet
	// Possible marks edges that exist only through ambiguous targets (the
	// points-to set of every site also admits other machine types).
	Possible bool
	Span     source.Span // first contributing send site
}

// CommGraph is the machine communication graph: nodes are the reachable
// machine types, edges the aggregated send relationships.
type CommGraph struct {
	Prog      *ir.Program
	Reachable []bool // indexed by MachineTypeID
	Edges     []*CommEdge
}

// BuildComm computes just the communication graph of p (the cheap subset of
// Analyze used by pdot -comm).
func BuildComm(p *ir.Program) *CommGraph {
	return newFacts(p).commGraph()
}

func (f *facts) commGraph() *CommGraph {
	g := &CommGraph{Prog: f.p, Reachable: make([]bool, len(f.p.Machines))}
	for mi, mf := range f.mf {
		g.Reachable[mi] = mf.reach
	}
	index := map[[2]ir.MachineTypeID]*CommEdge{}
	for _, site := range f.sites {
		one, definite := site.tgt.single()
		for ti := range f.p.Machines {
			if !site.tgt.types[ti] && !site.tgt.unknown {
				continue
			}
			key := [2]ir.MachineTypeID{site.from, ir.MachineTypeID(ti)}
			e := index[key]
			if e == nil {
				e = &CommEdge{From: site.from, To: ir.MachineTypeID(ti), Possible: true, Span: site.st.Span}
				index[key] = e
				g.Edges = append(g.Edges, e)
			}
			e.Events.Add(site.st.Event)
			if definite && ir.MachineTypeID(ti) == one {
				e.Possible = false
			}
		}
	}
	sort.Slice(g.Edges, func(i, j int) bool {
		if g.Edges[i].From != g.Edges[j].From {
			return g.Edges[i].From < g.Edges[j].From
		}
		return g.Edges[i].To < g.Edges[j].To
	})
	return g
}

// boundednessFindings reports the communication-structure diagnostics:
// P301 send cycles, P302/P303 dequeue-free send pumps, and P304 infinite
// send loops.
func (f *facts) boundednessFindings(g *CommGraph) []Finding {
	out := f.cycleFindings(g)
	out = append(out, f.pumpFindings()...)
	out = append(out, f.sendLoopFindings()...)
	return out
}

// cycleFindings detects cycles in the communication graph (P301). A cycle
// means the machines can feed each other work; whether the feedback is
// bounded depends on deferral and dequeue discipline, so the finding is
// informational, with a note when no machine on the cycle defers any of the
// cycle's events.
func (f *facts) cycleFindings(g *CommGraph) []Finding {
	n := len(f.p.Machines)
	adj := make([][]int, n)
	for _, e := range g.Edges {
		adj[e.From] = append(adj[e.From], int(e.To))
	}
	sccs := stronglyConnected(n, adj)

	var out []Finding
	for _, scc := range sccs {
		inSCC := make([]bool, n)
		for _, v := range scc {
			inSCC[v] = true
		}
		selfLoop := false
		if len(scc) == 1 {
			for _, w := range adj[scc[0]] {
				if w == scc[0] {
					selfLoop = true
				}
			}
			if !selfLoop {
				continue
			}
		}
		// Gather the cycle's edges and events.
		var names []string
		var cycleEvents ir.EventSet
		var span source.Span
		for _, e := range g.Edges {
			if inSCC[e.From] && inSCC[e.To] {
				cycleEvents = cycleEvents.Union(e.Events)
				if !span.IsValid() {
					span = e.Span
				}
			}
		}
		for _, v := range scc {
			names = append(names, f.p.Machines[v].Name)
		}
		deferred := false
		for _, v := range scc {
			for _, st := range f.p.Machines[v].States {
				for _, ev := range cycleEvents.Events() {
					if st.Deferred.Contains(ev) {
						deferred = true
					}
				}
			}
		}
		note := ""
		if !deferred {
			note = "; no state on the cycle defers any of them"
		}
		out = append(out, Finding{
			Code:     CodeCommCycle,
			Severity: SevInfo,
			Span:     span,
			Machine:  names[0],
			Message: fmt.Sprintf("communication cycle %s: events %s circulate%s",
				strings.Join(names, " -> ")+" -> "+names[0], eventNames(f.p, cycleEvents), note),
		})
	}
	return out
}

// pumpFindings detects dequeue-free send pumps (P302/P303): a cycle of
// states connected by step transitions on events the cycle itself raises in
// its entry code. A machine on such a cycle spins without ever reaching a
// dequeue point; any send inside the cycle then floods its target. Constant
// payloads are absorbed by the runtime's deduplicating enqueue (⊕), which
// downgrades the finding to informational.
func (f *facts) pumpFindings() []Finding {
	var out []Finding
	for _, mf := range f.mf {
		if !mf.reach {
			continue
		}
		n := len(mf.m.States)
		for _, scc := range stronglyConnected(n, mf.raiseAdj) {
			if len(scc) == 1 && !containsInt(mf.raiseAdj[scc[0]], scc[0]) {
				continue
			}
			var sends []*ir.Stmt
			var sent ir.EventSet
			news := 0
			varying := false
			for _, v := range scc {
				walkStmts(mf.m.States[v].Entry, func(s *ir.Stmt) {
					switch s.Op {
					case ir.SSend:
						sends = append(sends, s)
						sent.Add(s.Event)
						if !constPayload(s.Expr) && !f.finitePayload(mf, s.Expr) {
							varying = true
						}
					case ir.SNew:
						news++
					}
				})
			}
			if len(sends) == 0 && news == 0 {
				continue
			}
			var stateNames []string
			for _, v := range scc {
				stateNames = append(stateNames, mf.m.States[v].Name)
			}
			span := mf.m.States[scc[0]].Span
			if len(sends) > 0 {
				span = sends[0].Span
			}
			cycle := strings.Join(stateNames, " -> ")
			if len(scc) == 1 {
				cycle = stateNames[0] + " -> " + stateNames[0]
			}
			if varying || news > 0 {
				detail := "sends with varying payloads"
				if news > 0 {
					detail = "creates machines"
					if len(sends) > 0 {
						detail = "sends and creates machines"
					}
				}
				out = append(out, Finding{
					Code:     CodeSendPump,
					Severity: SevWarn,
					Span:     span,
					Machine:  mf.m.Name,
					Message: fmt.Sprintf(
						"machine %s can cycle through %s on raised events alone — never dequeuing — and %s on every lap: receiver queues can grow without bound",
						mf.m.Name, cycle, detail),
				})
			} else {
				out = append(out, Finding{
					Code:     CodeDedupBoundedPump,
					Severity: SevInfo,
					Span:     span,
					Machine:  mf.m.Name,
					Message: fmt.Sprintf(
						"machine %s can cycle through %s on raised events alone, resending %s with finitely many distinct payloads; the deduplicating enqueue keeps receiver queues bounded",
						mf.m.Name, cycle, eventNames(f.p, sent)),
				})
			}
		}
	}
	return out
}

// constPayload reports whether a send payload is absent or a per-instance
// constant, so repeated sends are absorbed by enqueue deduplication.
func constPayload(e *ir.Expr) bool {
	if e == nil {
		return true
	}
	switch e.Op {
	case ir.EInt, ir.EBool, ir.ENull, ir.EEvent, ir.EThis:
		return true
	}
	return false
}

// finitePayload reports whether a send payload is a variable that provably
// ranges over a finite value set — every assignment to it in the machine
// (and every creation-time initializer) is a constant or a modular
// expression. Such payloads are also absorbed by enqueue deduplication,
// which can hold at most one queue entry per distinct value.
func (f *facts) finitePayload(mf *machFacts, e *ir.Expr) bool {
	if e == nil || e.Op != ir.EVar {
		return false
	}
	v := e.Var
	ok := true
	for _, c := range mf.conts {
		walkStmts(c.body, func(s *ir.Stmt) {
			if s.Op == ir.SAssign && s.Var == v && !finiteExpr(s.Expr) {
				ok = false
			}
			if s.Op == ir.SNew && s.Var == v {
				ok = false
			}
		})
	}
	for _, other := range f.mf {
		if !other.reach {
			continue
		}
		for _, c := range other.conts {
			walkStmts(c.body, func(s *ir.Stmt) {
				if s.Op != ir.SNew || s.Machine != mf.id {
					return
				}
				for _, init := range s.Inits {
					if init.Var == v && !finiteExpr(init.Expr) {
						ok = false
					}
				}
			})
		}
	}
	if mf.id == f.p.Main {
		for _, iv := range f.p.MainInits {
			if iv.Var == v && !finiteExpr(iv.Expr) {
				ok = false
			}
		}
	}
	return ok
}

// finiteExpr recognizes expressions with a statically finite value range:
// constants and right-constant modular reductions.
func finiteExpr(e *ir.Expr) bool {
	if e == nil {
		return false
	}
	switch e.Op {
	case ir.EInt, ir.EBool, ir.ENull, ir.EEvent:
		return true
	case ir.EBinary:
		return e.Bin == ir.Mod && e.Y != nil && e.Y.Op == ir.EInt
	}
	return false
}

// sendLoopFindings detects P304: a send or new inside a while(true) loop
// that contains no statement that could leave the loop (raise, return,
// leave, delete, or a failing assert), so the machine floods its targets
// without ever dequeuing.
func (f *facts) sendLoopFindings() []Finding {
	var out []Finding
	for _, mf := range f.mf {
		if !mf.reach {
			continue
		}
		for _, c := range mf.conts {
			if !mf.reachableOwner(c) {
				continue
			}
			walkStmts(c.body, func(s *ir.Stmt) {
				if s.Op != ir.SWhile || !isConstTrue(s.Expr) {
					return
				}
				sends, escapes := false, false
				walkStmts(s.Body, func(b *ir.Stmt) {
					switch b.Op {
					case ir.SSend, ir.SNew:
						sends = true
					case ir.SRaise, ir.SReturn, ir.SLeave, ir.SDelete:
						escapes = true
					case ir.SAssert:
						if isConstFalse(b.Expr) {
							escapes = true
						}
					}
				})
				if sends && !escapes {
					out = append(out, Finding{
						Code:     CodeInfiniteSendLoop,
						Severity: SevWarn,
						Span:     s.Span,
						Machine:  mf.m.Name,
						Message: fmt.Sprintf(
							"machine %s sends or creates machines inside a while(true) loop with no exit: receiver queues grow without bound",
							mf.m.Name),
					})
				}
			})
		}
	}
	return out
}

// stronglyConnected returns the strongly connected components of the graph
// with n vertices and adjacency lists adj (Tarjan's algorithm, iterative
// enough for our sizes via recursion), in deterministic order of their
// smallest vertex.
func stronglyConnected(n int, adj [][]int) [][]int {
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	var sccs [][]int
	next := 0
	var strong func(v int)
	strong = func(v int) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if index[w] < 0 {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sort.Ints(scc)
			sccs = append(sccs, scc)
		}
	}
	for v := 0; v < n; v++ {
		if index[v] < 0 {
			strong(v)
		}
	}
	sort.Slice(sccs, func(i, j int) bool { return sccs[i][0] < sccs[j][0] })
	return sccs
}

func eventNames(p *ir.Program, set ir.EventSet) string {
	var names []string
	for _, e := range set.Events() {
		names = append(names, p.Events[e].Name)
	}
	return strings.Join(names, ", ")
}
